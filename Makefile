# Convenience targets for the lulesh-go reproduction.

GO ?= go

.PHONY: all build test race fuzz cover bench verify figures examples clean perfgate chaos net benchgate sweep bce tracegate overlap serve

# The race lane is a first-class gate: all runtime/scheduler changes must
# survive the race detector, not just the plain test run.
all: build test race

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Longer randomized exploration of the work-stealing deque; the checked-in
# seed corpus already runs (in milliseconds) as part of `make test`.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzDeque -fuzztime=30s ./internal/amt/

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# The artifact-style correctness gate.
verify:
	$(GO) run ./cmd/luleshverify

# The observability gate: instrumented dispatch must stay within the
# overhead budget (percent; override with PERF_OVERHEAD_BUDGET), and the
# recording path must be race-clean.
perfgate:
	$(GO) test -run TestForEachBlockOverheadBudget -count=1 -v ./internal/perf/
	$(GO) test -run TestDistTraceOverheadBudget -count=1 -v ./internal/dist/
	$(GO) test -race -count=1 ./internal/perf/ ./internal/trace/

# The tracing gate: the span/clock/merge tests race-clean, a 4-rank wire
# run with tracing on, and smoke checks over its artifacts — the merged
# Chrome trace must contain flow arrows, the fleet snapshot must feed
# the stall report.
tracegate:
	$(GO) test -race -count=1 -run 'Trace|Clock|Fleet|Stall|Blob|WaitBucket' \
		./internal/wire/ ./internal/comm/ ./internal/perf/ ./internal/dist/
	$(GO) build -o /tmp/lulesh-trace ./cmd/lulesh
	/tmp/lulesh-trace -np 4 -s 8 -i 20 -q \
		-trace /tmp/lulesh-trace.json -fleet-out /tmp/lulesh-fleet.json
	grep -q '"ph":"s"' /tmp/lulesh-trace.json
	grep -q '"ph":"f"' /tmp/lulesh-trace.json
	$(GO) run ./cmd/luleshbench -stall-report /tmp/lulesh-fleet.json

# The chaos gate: fault injection, retry/backoff recovery, and
# checkpoint-based restart must all hold under the race detector, and a
# faulted end-to-end run must reproduce the unfaulted energies exactly.
chaos:
	$(GO) test -race -count=1 -run 'Fault|Crash|Corrupt|Recover|Checkpoint|Reorder|Duplicate|Deadline' \
		./internal/comm/ ./internal/dist/ ./internal/checkpoint/
	$(GO) run ./cmd/lulesh -ranks 2 -s 8 -i 30 \
		-faults drop=0.05,dup=0.02,crash=1@20 -fault-seed 9 \
		-exchange-deadline 20ms -checkpoint-every 5

# The network gate: the TCP fabric's protocol tests under the race
# detector, the frame-decoder fuzz corpus, a clean multi-process smoke
# run, a chaos run (drops over real sockets plus a SIGKILLed rank
# recovering from durable checkpoints), and the wire ≡ in-process
# bitwise-identity proof.
net:
	$(GO) test -race -count=1 -run 'Wire|Bootstrap|Exchange|PeerDeath|Goodbye|FileStore|Frame|Header|Float|Slab' \
		./internal/wire/ ./internal/dist/
	$(GO) test -run=NONE -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/wire/
	$(GO) build -race -o /tmp/lulesh-net ./cmd/lulesh
	/tmp/lulesh-net -np 4 -s 8 -i 20 -q
	/tmp/lulesh-net -np 4 -s 8 -i 30 -q -faults drop=0.02,dup=0.02 \
		-checkpoint-every 5 -wire-kill 2@12
	$(GO) run ./cmd/luleshverify -net

# The overlap gate: the boundary-first schedule, tree allreduce and
# coalesced-frame paths race-clean; bitwise identity of every toggle
# combination against the synchronous schedule, per scenario, including
# an 8-process wire run of the fully overlapped schedule against an
# in-process synchronous ground truth (inside luleshverify -net); then
# the headroom check — an 8-rank run with injected link latency must
# keep its overlap headroom (from the stall report, see ROADMAP item 3)
# under the recorded ceiling. Like BCE_CEILING this is a recorded
# regression backstop, not a target: ~63–66 % was measured on the
# single-core reference container (EXPERIMENTS.md "Overlapping the hot
# network path"), where headroom is mostly rank serialization; tighten
# it on real multi-core runners. The gated run uses async+coalesce with
# the tree reduction off: a binomial tree serializes 2·log2(n) latency
# hops where the flat gather pays concurrent ones, so under injected
# latency the tree is the wrong tool — its win is rank-0 message count,
# which TestTreeReduceMessageCounts pins exactly.
OVERLAP_HEADROOM_CEILING ?= 70
overlap:
	$(GO) test -race -count=1 -run 'Overlap|TreeReduce|AttributeStep|ZeroExchange|Delay|AllReduceMinTree' \
		./internal/dist/ ./internal/comm/ ./internal/domain/
	$(GO) run ./cmd/luleshverify -s 6 -i 12 -net
	$(GO) run ./cmd/luleshverify -s 6 -i 12 -net -scenario piston
	$(GO) run ./cmd/luleshverify -s 6 -i 12 -net -scenario multimat
	$(GO) build -o /tmp/lulesh-overlap ./cmd/lulesh
	/tmp/lulesh-overlap -ranks 8 -s 8 -i 40 -q -latency 200us \
		-fleet-out /tmp/lulesh-overlap-sync.json
	/tmp/lulesh-overlap -ranks 8 -s 8 -i 40 -q -latency 200us \
		-dist-async -coalesce -fleet-out /tmp/lulesh-overlap-async.json
	@echo "--- stall report: sync + 200us injected latency ---"
	@$(GO) run ./cmd/luleshbench -stall-report /tmp/lulesh-overlap-sync.json \
		| tee /tmp/lulesh-overlap-sync-stall.txt
	@echo "--- stall report: async+coalesce + 200us injected latency ---"
	@$(GO) run ./cmd/luleshbench -stall-report /tmp/lulesh-overlap-async.json \
		| tee /tmp/lulesh-overlap-async-stall.txt
	@pct=$$(sed -n 's/.*overlap headroom.*(\([0-9.]*\)% of wall.*/\1/p' \
		/tmp/lulesh-overlap-async-stall.txt); \
	echo "overlapped headroom: $$pct% of wall (ceiling $(OVERLAP_HEADROOM_CEILING)%)"; \
	if [ -z "$$pct" ]; then echo "FAIL: no headroom line in stall report"; exit 1; fi; \
	awk -v p=$$pct -v c=$(OVERLAP_HEADROOM_CEILING) 'BEGIN { exit !(p <= c) }' || { \
		echo "FAIL: overlap headroom regressed above the recorded ceiling"; exit 1; }

# The bounds-check-elimination gate: count the static check sites the
# compiler leaves in the hot-kernel package and fail if the count rises
# above the recorded ceiling (per-file breakdown in EXPERIMENTS.md). The
# remaining sites are data-dependent indirect loads (mesh connectivity)
# plus one-per-call view setup; the hot loop bodies themselves are clean.
# -a busts the build cache so the diagnostics always print.
BCE_CEILING ?= 330
bce:
	@n=$$($(GO) build -a -gcflags='-d=ssa/check_bce' ./internal/kernels/ 2>&1 | grep -c 'Found Is'); \
	echo "check_bce sites in internal/kernels: $$n (ceiling $(BCE_CEILING))"; \
	if [ $$n -gt $(BCE_CEILING) ]; then \
		echo "FAIL: bounds-check sites regressed above the recorded ceiling"; \
		exit 1; \
	fi

# The control-plane gate: the serve package (shared-pool job contexts,
# fair queue, admission control, SSE, store, HTTP API) race-clean; then a
# race-instrumented luleshd driven over real HTTP — three concurrent jobs
# via curl, SSE progress + terminal frames asserted on the wire, every
# result re-validated through `luleshd -validate` (perf.BenchRecord
# schema), SIGTERM drain leaving a flushed INDEX.json; finally the
# in-process load generator with the p99 budget. The budget is a recorded
# regression backstop for the race-instrumented binary on the single-core
# reference box, not a target: the plain build measured p99=81ms over 500
# jobs (EXPERIMENTS.md "Simulation as a service").
SERVE_P99_BUDGET ?= 10s
serve:
	$(GO) test -race -count=1 ./internal/serve/
	$(GO) build -race -o /tmp/luleshd ./cmd/luleshd
	@set -e; \
	rm -rf /tmp/luleshd-ci; mkdir -p /tmp/luleshd-ci; \
	/tmp/luleshd -addr 127.0.0.1:18790 -threads 2 \
		-results-dir /tmp/luleshd-ci/results >/tmp/luleshd-ci/server.log 2>&1 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null || true' EXIT; \
	ok=; for i in $$(seq 1 50); do \
		curl -sf -o /dev/null http://127.0.0.1:18790/healthz && { ok=1; break; }; \
		sleep 0.2; done; \
	[ -n "$$ok" ] || { echo "FAIL: luleshd never came up"; cat /tmp/luleshd-ci/server.log; exit 1; }; \
	ids=; for spec in \
		'{"scenario":"sedov","size":5,"iterations":12}' \
		'{"scenario":"piston","size":6,"iterations":12,"tenant":"ci-b"}' \
		'{"scenario":"multimat:regions=8","size":5,"iterations":12,"tenant":"ci-c"}'; do \
		id=$$(curl -sf -X POST -d "$$spec" http://127.0.0.1:18790/jobs \
			| grep -o 'job-[0-9]*' | head -1); \
		[ -n "$$id" ] || { echo "FAIL: submit rejected: $$spec"; exit 1; }; \
		ids="$$ids $$id"; done; \
	echo "submitted:$$ids"; \
	first=$${ids# }; first=$${first%% *}; \
	curl -s --max-time 30 -N http://127.0.0.1:18790/jobs/$$first/events \
		> /tmp/luleshd-ci/events.txt; \
	grep -q '^event: progress' /tmp/luleshd-ci/events.txt \
		|| { echo "FAIL: no SSE progress frames"; exit 1; }; \
	grep -q '^event: done' /tmp/luleshd-ci/events.txt \
		|| { echo "FAIL: no SSE terminal frame"; exit 1; }; \
	for id in $$ids; do \
		code=; for i in $$(seq 1 150); do \
			code=$$(curl -s -o /tmp/luleshd-ci/res-$$id.json -w '%{http_code}' \
				http://127.0.0.1:18790/jobs/$$id/result); \
			[ "$$code" = 200 ] && break; sleep 0.2; done; \
		[ "$$code" = 200 ] || { echo "FAIL: $$id result never ready ($$code)"; exit 1; }; \
		/tmp/luleshd -validate /tmp/luleshd-ci/res-$$id.json; done; \
	kill -TERM $$pid; wait $$pid || true; trap - EXIT; \
	[ -f /tmp/luleshd-ci/results/INDEX.json ] \
		|| { echo "FAIL: drain left no INDEX.json"; exit 1; }; \
	echo "serve smoke: 3 jobs, SSE frames, validated results, drained + flushed"
	/tmp/luleshd -selftest 100 -selftest-clients 8 -threads 2 \
		-selftest-p99-budget $(SERVE_P99_BUDGET)

# The perf-trajectory gate: re-measure the configurations pinned by the
# committed BENCH_<n>.json baselines (scenarios x backends) and fail on a
# >10% grind-time regression. Ratios are median-normalized so a uniformly
# slower machine does not trip the gate; see internal/perf/gate.go.
benchgate:
	$(GO) run ./cmd/luleshbench -benchgate -baseline . -reps 3

# Re-run the scenario sweep behind the committed baselines. Append new
# trajectory points with: make sweep SWEEP_FLAGS='-record .'
sweep:
	$(GO) run ./cmd/luleshbench -sweep -sizes 10 -threads 2 -backends omp,task -reps 5 $(SWEEP_FLAGS)

# Regenerate every table/figure of the paper's evaluation.
figures:
	$(GO) run ./cmd/luleshbench -fig 9
	$(GO) run ./cmd/luleshbench -fig 10
	$(GO) run ./cmd/luleshbench -fig 11
	$(GO) run ./cmd/luleshbench -fig naive
	$(GO) run ./cmd/luleshbench -fig dist
	$(GO) run ./cmd/luleshbench -table 1
	$(GO) run ./cmd/luleshbench -ablation

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taskgraph
	$(GO) run ./examples/regions
	$(GO) run ./examples/ablation
	$(GO) run ./examples/distributed

clean:
	$(GO) clean ./...
