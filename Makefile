# Convenience targets for the lulesh-go reproduction.

GO ?= go

.PHONY: all build test race cover bench verify figures examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# The artifact-style correctness gate.
verify:
	$(GO) run ./cmd/luleshverify

# Regenerate every table/figure of the paper's evaluation.
figures:
	$(GO) run ./cmd/luleshbench -fig 9
	$(GO) run ./cmd/luleshbench -fig 10
	$(GO) run ./cmd/luleshbench -fig 11
	$(GO) run ./cmd/luleshbench -fig naive
	$(GO) run ./cmd/luleshbench -fig dist
	$(GO) run ./cmd/luleshbench -table 1
	$(GO) run ./cmd/luleshbench -ablation

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/taskgraph
	$(GO) run ./examples/regions
	$(GO) run ./examples/ablation
	$(GO) run ./examples/distributed

clean:
	$(GO) clean ./...
