module lulesh

go 1.22
