// Quickstart: build a Sedov blast wave domain, run it to completion on the
// many-task backend, and print the figures of merit — the minimal usage of
// the library's public API.
package main

import (
	"fmt"
	"log"
	"runtime"

	"lulesh/internal/core"
	"lulesh/internal/domain"
)

func main() {
	// A 20^3-element Sedov problem with the reference's default 11
	// material regions.
	d := domain.NewSedov(domain.DefaultConfig(20))

	// The paper's configuration: all four tasking techniques enabled,
	// Table I partition sizes, one worker per core.
	threads := runtime.GOMAXPROCS(0)
	b := core.NewBackendTask(d, core.DefaultOptions(20, threads))
	defer b.Close()

	res, err := core.Run(d, b, core.RunConfig{})
	if err != nil {
		log.Fatalf("simulation failed: %v", err)
	}

	fmt.Printf("Sedov blast wave, %d^3 elements, %d threads (%s backend)\n",
		res.Size, res.Threads, res.Backend)
	fmt.Printf("  cycles            : %d\n", res.Iterations)
	fmt.Printf("  final sim time    : %.6e\n", res.FinalTime)
	fmt.Printf("  final origin e    : %.6e\n", res.OriginEnergy)
	fmt.Printf("  wall time         : %v\n", res.Elapsed)
	fmt.Printf("  FOM               : %.1f kilo-element-updates/s\n", res.FOM())
	fmt.Printf("  worker utilization: %.1f%%\n", 100*res.Utilization)
}
