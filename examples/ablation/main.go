// Ablation quantifies the contribution of each tasking technique from
// Section IV of the paper by disabling one at a time in the task backend
// and comparing runtimes — plus a "none" variant with every technique off,
// which degenerates to partitioned tasks with a barrier after every stage.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"lulesh/internal/core"
	"lulesh/internal/domain"
	"lulesh/internal/stats"
)

func main() {
	const size = 16
	const iters = 30
	threads := runtime.GOMAXPROCS(0)

	variants := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"full (paper config)", func(o *core.Options) {}},
		{"no cross-loop chains", func(o *core.Options) { o.Chain = false }},
		{"no kernel fusion", func(o *core.Options) { o.Fuse = false }},
		{"no parallel force families", func(o *core.Options) { o.ParallelForces = false }},
		{"no parallel regions", func(o *core.Options) { o.ParallelRegions = false }},
		{"none (Fig 5 style)", func(o *core.Options) {
			o.Chain = false
			o.Fuse = false
			o.ParallelForces = false
			o.ParallelRegions = false
		}},
		{"full + heavy-region priority", func(o *core.Options) {
			o.PrioritizeHeavyRegions = true
		}},
	}

	fmt.Printf("Technique ablation on a %d^3 Sedov problem, %d iterations, %d threads\n\n",
		size, iters, threads)
	t := stats.NewTable("variant", "runtime [s]", "vs full", "utilization")

	var base float64
	var baseEnergy float64
	for i, v := range variants {
		d := domain.NewSedov(domain.DefaultConfig(size))
		opt := core.DefaultOptions(size, threads)
		v.mod(&opt)
		b := core.NewBackendTask(d, opt)
		res, err := core.Run(d, b, core.RunConfig{MaxIterations: iters})
		b.Close()
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		sec := res.Elapsed.Seconds()
		if i == 0 {
			base = sec
			baseEnergy = res.OriginEnergy
		} else if res.OriginEnergy != baseEnergy {
			log.Fatalf("%s: result changed (%v vs %v) — ablations must be "+
				"performance-only", v.name, res.OriginEnergy, baseEnergy)
		}
		t.AddRow(v.name, sec, fmt.Sprintf("%.2fx", sec/base), res.Utilization)
	}
	t.Write(os.Stdout)
	fmt.Println("\nEvery variant computes the bitwise-identical physics; the")
	fmt.Println("techniques trade scheduling overhead and parallel slack only.")
}
