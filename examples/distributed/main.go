// Distributed demonstrates the paper's future-work experiment: LULESH
// decomposed across simulated ranks, comparing the synchronous MPI-style
// exchange (block at every phase boundary) against the asynchronous
// schedule that overlaps communication with interior computation — the
// benefit the paper anticipates from HPX's asynchronous mechanisms over
// "the mostly synchronous data exchange mechanisms of MPI".
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"lulesh/internal/dist"
	"lulesh/internal/stats"
)

func main() {
	const size = 12 // per-rank slab: size x size x size elements
	const iters = 40
	const latency = 500 * time.Microsecond // simulated interconnect

	fmt.Printf("Multi-domain LULESH: %d^3 elements per rank, %d iterations, "+
		"%v link latency\n\n", size, iters, latency)

	t := stats.NewTable("ranks", "schedule", "runtime [s]", "max comm wait [s]",
		"origin energy")
	for _, ranks := range []int{1, 2, 3} {
		for _, async := range []bool{false, true} {
			cfg := dist.DefaultConfig(size, ranks)
			cfg.Async = async
			cfg.Latency = latency
			cfg.MaxIterations = iters
			res, err := dist.Run(cfg)
			if err != nil {
				log.Fatalf("ranks=%d async=%v: %v", ranks, async, err)
			}
			maxWait := 0.0
			for _, rs := range res.Ranks {
				if w := rs.Comm.Wait.Seconds(); w > maxWait {
					maxWait = w
				}
			}
			name := "sync (MPI-style)"
			if async {
				name = "async (overlap)"
			}
			t.AddRow(ranks, name, res.Elapsed.Seconds(), maxWait, res.OriginEnergy)
		}
	}
	t.Write(os.Stdout)

	fmt.Println("\nBoth schedules compute bitwise-identical physics (same origin")
	fmt.Println("energy); the async schedule hides message latency behind the")
	fmt.Println("interior computation, shrinking the time ranks spend blocked.")
}
