// Regions studies the mechanism behind the paper's Figure 10: material
// regions create load imbalance (unequal sizes, 1x/2x/20x EOS repetition),
// and the fork-join reference pays one barrier per loop per region while
// the task backend runs all region chains concurrently. Sweeping the
// region count shows the fork-join runtime degrading and the task backend
// staying nearly flat.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"runtime"

	"lulesh/internal/core"
	"lulesh/internal/domain"
	"lulesh/internal/mesh"
	"lulesh/internal/stats"
)

func main() {
	const size = 16
	const iters = 25
	threads := runtime.GOMAXPROCS(0)

	// First show the imbalance itself for the default decomposition.
	m := mesh.New(size)
	regs := mesh.NewRegions(m, 11, 1, 1)
	fmt.Printf("Region decomposition of a %d^3 mesh (11 regions):\n\n", size)
	rt := stats.NewTable("region", "elements", "EOS reps", "relative cost")
	total := 0.0
	costs := make([]float64, regs.NumReg)
	for r, list := range regs.ElemList {
		costs[r] = float64(len(list) * regs.Rep(r))
		total += costs[r]
	}
	for r, list := range regs.ElemList {
		rt.AddRow(r, len(list), regs.Rep(r), costs[r]/total)
	}
	rt.Write(os.Stdout)
	fmt.Println()

	// Then sweep the region count, comparing the two runtimes.
	fmt.Printf("Runtime vs region count (%d iterations, %d threads):\n\n", iters, threads)
	t := stats.NewTable("regions", "omp [s]", "task [s]", "speedup")
	for _, nr := range []int{1, 6, 11, 16, 21, 31} {
		omp := run(size, nr, iters, func(d *domain.Domain) core.Backend {
			return core.NewBackendOMP(d, threads)
		})
		task := run(size, nr, iters, func(d *domain.Domain) core.Backend {
			return core.NewBackendTask(d, core.DefaultOptions(size, threads))
		})
		t.AddRow(nr, omp, task, omp/task)
	}
	t.Write(os.Stdout)
	fmt.Println("\nExpected shape (paper Fig 10): the task advantage grows with")
	fmt.Println("the region count, because each extra region adds many small")
	fmt.Println("barriered loops to the fork-join version while the task graph")
	fmt.Println("size stays constant.")
}

// run reports the best of three repetitions to damp scheduler noise.
func run(size, nr, iters int, mk func(*domain.Domain) core.Backend) float64 {
	best := math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		d := domain.NewSedov(domain.Config{EdgeElems: size, NumReg: nr, Balance: 1, Cost: 1})
		b := mk(d)
		res, err := core.Run(d, b, core.RunConfig{MaxIterations: iters})
		b.Close()
		if err != nil {
			log.Fatalf("run failed: %v", err)
		}
		if s := res.Elapsed.Seconds(); s < best {
			best = s
		}
	}
	return best
}
