// Taskgraph demonstrates the AMT runtime directly, walking through the
// paper's code transformations (Figures 4-8) on a synthetic four-kernel
// pipeline and timing each style:
//
//  1. fork-join: a barrier after every loop (the OpenMP structure),
//  2. partitioned tasks with barriers (Figure 5),
//  3. independent per-partition task chains via continuations (Figure 6),
//  4. chains with fused kernels (Figure 7),
//  5. two independent chain families launched together (Figure 8).
package main

import (
	"fmt"
	"runtime"
	"time"

	"lulesh/internal/amt"
	"lulesh/internal/omp"
)

const (
	n    = 1 << 20 // elements per kernel
	part = 1 << 14 // partition size (the paper's P)
)

// kernel is a stand-in loop body: a few multiply-accumulates per element,
// like CalcVelocityForNodes / CalcPositionForNodes in the paper.
func kernel(data []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		data[i] = data[i]*1.000001 + 0.5
	}
}

func main() {
	workers := runtime.GOMAXPROCS(0)
	data := make([]float64, n)
	aux := make([]float64, n)

	// Style 1 — fork-join, one barrier per loop (Figure 4's OpenMP shape).
	pool := omp.NewPool(workers)
	t0 := time.Now()
	for k := 0; k < 4; k++ {
		pool.ParallelForBlock(n, func(lo, hi int) { kernel(data, lo, hi) })
	}
	forkJoin := time.Since(t0)
	pool.Close()

	s := amt.NewScheduler(amt.WithWorkers(workers))
	defer s.Close()

	// Style 2 — manual partitioning, still a barrier after each loop
	// (Figure 5).
	t0 = time.Now()
	for k := 0; k < 4; k++ {
		var fs []*amt.Void
		for lo := 0; lo < n; lo += part {
			lo, hi := lo, min(lo+part, n)
			fs = append(fs, amt.Run(s, func() { kernel(data, lo, hi) }))
		}
		amt.WaitAll(fs) // synchronization barrier
	}
	barriered := time.Since(t0)

	// Style 3 — per-partition chains with continuations; one barrier at
	// the end (Figure 6).
	t0 = time.Now()
	var chains []*amt.Void
	for lo := 0; lo < n; lo += part {
		lo, hi := lo, min(lo+part, n)
		f := amt.Run(s, func() { kernel(data, lo, hi) })
		for k := 1; k < 4; k++ {
			f = amt.ThenRun(f, func(amt.Unit) { kernel(data, lo, hi) })
		}
		chains = append(chains, f)
	}
	amt.WaitAll(chains)
	chained := time.Since(t0)

	// Style 4 — fuse consecutive kernels into one task, halving the task
	// count (Figure 7). The loops stay separate inside the task.
	t0 = time.Now()
	chains = chains[:0]
	for lo := 0; lo < n; lo += part {
		lo, hi := lo, min(lo+part, n)
		f := amt.Run(s, func() {
			kernel(data, lo, hi)
			kernel(data, lo, hi)
		})
		f = amt.ThenRun(f, func(amt.Unit) {
			kernel(data, lo, hi)
			kernel(data, lo, hi)
		})
		chains = append(chains, f)
	}
	amt.WaitAll(chains)
	fused := time.Since(t0)

	// Style 5 — two independent kernel families (think stress and
	// hourglass forces). First sequentially chained, then launched
	// together as Figure 8 does; both process the same total work.
	t0 = time.Now()
	chains = chains[:0]
	for lo := 0; lo < n; lo += part {
		lo, hi := lo, min(lo+part, n)
		f := amt.Run(s, func() { kernel(data, lo, hi); kernel(data, lo, hi) })
		f = amt.ThenRun(f, func(amt.Unit) { kernel(aux, lo, hi); kernel(aux, lo, hi) })
		chains = append(chains, f)
	}
	amt.WaitAll(chains)
	sequentialFamilies := time.Since(t0)

	t0 = time.Now()
	chains = chains[:0]
	for lo := 0; lo < n; lo += part {
		lo, hi := lo, min(lo+part, n)
		chains = append(chains,
			amt.Run(s, func() { kernel(data, lo, hi); kernel(data, lo, hi) }),
			amt.Run(s, func() { kernel(aux, lo, hi); kernel(aux, lo, hi) }),
		)
	}
	amt.WaitAll(chains)
	parallelFamilies := time.Since(t0)

	fmt.Printf("four synthetic kernels over %d elements, %d workers, P=%d\n\n",
		n, workers, part)
	fmt.Printf("  fork-join, barrier/loop (Fig 4):  %v\n", forkJoin)
	fmt.Printf("  tasks + barriers       (Fig 5):  %v\n", barriered)
	fmt.Printf("  continuation chains    (Fig 6):  %v\n", chained)
	fmt.Printf("  fused chains           (Fig 7):  %v\n", fused)
	fmt.Printf("  two families, chained        :  %v\n", sequentialFamilies)
	fmt.Printf("  two families, parallel (Fig 8):  %v\n", parallelFamilies)
	c := s.CountersSnapshot()
	fmt.Printf("\nAMT counters: %v\n", c)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
