package kernels

import (
	"math"
	"math/rand"
	"testing"

	"lulesh/internal/domain"
)

func testDomain(s int) *domain.Domain {
	return domain.NewSedov(domain.DefaultConfig(s))
}

func TestInitStressTerms(t *testing.T) {
	d := testDomain(2)
	for e := range d.P {
		d.P[e] = float64(e)
		d.Q[e] = 0.5 * float64(e)
	}
	ne := d.NumElem()
	sigxx := make([]float64, ne)
	sigyy := make([]float64, ne)
	sigzz := make([]float64, ne)
	InitStressTerms(d, sigxx, sigyy, sigzz, 0, ne)
	for e := 0; e < ne; e++ {
		want := -1.5 * float64(e)
		if sigxx[e] != want || sigyy[e] != want || sigzz[e] != want {
			t.Fatalf("sig[%d] = (%v,%v,%v), want %v", e, sigxx[e], sigyy[e], sigzz[e], want)
		}
	}
}

func TestIntegrateStressVolumes(t *testing.T) {
	// With zero stress the forces vanish but determ still carries the
	// element volumes.
	d := testDomain(3)
	ne := d.NumElem()
	zero := make([]float64, ne)
	determ := make([]float64, ne)
	fx := make([]float64, 8*ne)
	fy := make([]float64, 8*ne)
	fz := make([]float64, 8*ne)
	IntegrateStress(d, zero, zero, zero, determ, fx, fy, fz, 0, ne)
	for e := 0; e < ne; e++ {
		if math.Abs(determ[e]-d.Volo[e]) > 1e-12 {
			t.Fatalf("determ[%d] = %v, want %v", e, determ[e], d.Volo[e])
		}
	}
	for i := range fx {
		if fx[i] != 0 || fy[i] != 0 || fz[i] != 0 {
			t.Fatal("zero stress must give zero forces")
		}
	}
}

func TestIntegrateStressUniformPressureNetForce(t *testing.T) {
	// Uniform pressure on the whole mesh: interior node forces cancel,
	// and the total force over all nodes is zero (closed surface of the
	// summed contributions ... corner contributions cancel pairwise).
	d := testDomain(3)
	ne := d.NumElem()
	nn := d.NumNode()
	sig := make([]float64, ne)
	for e := range sig {
		sig[e] = -2.5 // sig = -p with p = 2.5
	}
	determ := make([]float64, ne)
	fx := make([]float64, 8*ne)
	fy := make([]float64, 8*ne)
	fz := make([]float64, 8*ne)
	IntegrateStress(d, sig, sig, sig, determ, fx, fy, fz, 0, ne)
	GatherCornerForces(d, fx, fy, fz, 0, nn, false)

	var sx, sy, sz float64
	for n := 0; n < nn; n++ {
		sx += d.Fx[n]
		sy += d.Fy[n]
		sz += d.Fz[n]
	}
	if math.Abs(sx) > 1e-9 || math.Abs(sy) > 1e-9 || math.Abs(sz) > 1e-9 {
		t.Fatalf("net force (%v,%v,%v), want 0", sx, sy, sz)
	}
	// A strictly interior node sees balanced contributions: zero force.
	en := d.Mesh.EdgeNodes
	inner := 1*en*en + 1*en + 1
	if math.Abs(d.Fx[inner]) > 1e-9 || math.Abs(d.Fy[inner]) > 1e-9 ||
		math.Abs(d.Fz[inner]) > 1e-9 {
		t.Fatalf("interior node force (%v,%v,%v), want 0",
			d.Fx[inner], d.Fy[inner], d.Fz[inner])
	}
}

func TestCheckDeterm(t *testing.T) {
	determ := []float64{1, 2, 3, -0.5, 4}
	var f Flag
	CheckDeterm(determ, 0, 3, &f)
	if f.Err() != nil {
		t.Fatal("positive prefix should not raise")
	}
	CheckDeterm(determ, 0, 5, &f)
	if f.Err() != ErrVolume {
		t.Fatalf("err = %v, want ErrVolume", f.Err())
	}
}

func TestHourglassPrepDetermAndError(t *testing.T) {
	d := testDomain(2)
	ne := d.NumElem()
	sc := make([]float64, 8*ne)
	sc2 := make([]float64, 8*ne)
	sc3 := make([]float64, 8*ne)
	x8 := make([]float64, 8*ne)
	y8 := make([]float64, 8*ne)
	z8 := make([]float64, 8*ne)
	determ := make([]float64, ne)
	var f Flag
	d.V[3] = 0.5
	HourglassPrep(d, sc, sc2, sc3, x8, y8, z8, determ, 0, 0, ne, &f)
	if f.Err() != nil {
		t.Fatalf("unexpected error: %v", f.Err())
	}
	for e := 0; e < ne; e++ {
		if math.Abs(determ[e]-d.Volo[e]*d.V[e]) > 1e-15 {
			t.Fatalf("determ[%d] = %v, want volo*v = %v", e, determ[e], d.Volo[e]*d.V[e])
		}
	}
	d.V[1] = -0.1
	HourglassPrep(d, sc, sc2, sc3, x8, y8, z8, determ, 0, 0, ne, &f)
	if f.Err() != ErrVolume {
		t.Fatalf("negative volume not detected: %v", f.Err())
	}
}

func TestHourglassPrepBaseOffset(t *testing.T) {
	// Task-local scratch (base = lo) must produce the same values as
	// global scratch (base = 0).
	d := testDomain(3)
	ne := d.NumElem()
	lo, hi := 5, 17
	n := hi - lo
	mk := func(sz int) []float64 { return make([]float64, 8*sz) }
	g1, g2, g3, g4, g5, g6 := mk(ne), mk(ne), mk(ne), mk(ne), mk(ne), mk(ne)
	l1, l2, l3, l4, l5, l6 := mk(n), mk(n), mk(n), mk(n), mk(n), mk(n)
	dg := make([]float64, ne)
	dl := make([]float64, ne)
	var f Flag
	HourglassPrep(d, g1, g2, g3, g4, g5, g6, dg, 0, lo, hi, &f)
	HourglassPrep(d, l1, l2, l3, l4, l5, l6, dl, lo, lo, hi, &f)
	for i := 0; i < 8*n; i++ {
		if g1[8*lo+i] != l1[i] || g4[8*lo+i] != l4[i] {
			t.Fatalf("base-offset scratch mismatch at %d", i)
		}
	}
	for e := lo; e < hi; e++ {
		if dg[e] != dl[e] {
			t.Fatalf("determ mismatch at %d", e)
		}
	}
}

func TestFBHourglassZeroVelocity(t *testing.T) {
	d := testDomain(2)
	ne := d.NumElem()
	mk := func() []float64 { return make([]float64, 8*ne) }
	dv1, dv2, dv3, x8, y8, z8 := mk(), mk(), mk(), mk(), mk(), mk()
	determ := make([]float64, ne)
	var f Flag
	for e := range d.SS {
		d.SS[e] = 1.0
	}
	HourglassPrep(d, dv1, dv2, dv3, x8, y8, z8, determ, 0, 0, ne, &f)
	fx, fy, fz := mk(), mk(), mk()
	FBHourglass(d, dv1, dv2, dv3, x8, y8, z8, determ, 3.0, 0, 0, ne, fx, fy, fz)
	for i := range fx {
		if fx[i] != 0 || fy[i] != 0 || fz[i] != 0 {
			t.Fatal("zero velocities must give zero hourglass force")
		}
	}
}

func TestZeroForces(t *testing.T) {
	d := testDomain(2)
	for n := range d.Fx {
		d.Fx[n], d.Fy[n], d.Fz[n] = 1, 2, 3
	}
	ZeroForces(d, 0, d.NumNode())
	for n := range d.Fx {
		if d.Fx[n] != 0 || d.Fy[n] != 0 || d.Fz[n] != 0 {
			t.Fatal("forces not zeroed")
		}
	}
}

func TestGatherCornerForcesMatchesScatter(t *testing.T) {
	// The CSR gather must equal a direct scatter-add over elements.
	d := testDomain(3)
	ne := d.NumElem()
	nn := d.NumNode()
	rng := rand.New(rand.NewSource(5))
	fx := make([]float64, 8*ne)
	fy := make([]float64, 8*ne)
	fz := make([]float64, 8*ne)
	for i := range fx {
		fx[i] = rng.Float64()
		fy[i] = rng.Float64()
		fz[i] = rng.Float64()
	}
	wantX := make([]float64, nn)
	wantY := make([]float64, nn)
	wantZ := make([]float64, nn)
	for e := 0; e < ne; e++ {
		for c := 0; c < 8; c++ {
			n := d.Mesh.Nodelist[8*e+c]
			wantX[n] += fx[8*e+c]
			wantY[n] += fy[8*e+c]
			wantZ[n] += fz[8*e+c]
		}
	}
	GatherCornerForces(d, fx, fy, fz, 0, nn, false)
	for n := 0; n < nn; n++ {
		if math.Abs(d.Fx[n]-wantX[n]) > 1e-12 ||
			math.Abs(d.Fy[n]-wantY[n]) > 1e-12 ||
			math.Abs(d.Fz[n]-wantZ[n]) > 1e-12 {
			t.Fatalf("gather mismatch at node %d", n)
		}
	}
}

func TestGatherCornerForcesAdd(t *testing.T) {
	d := testDomain(2)
	ne := d.NumElem()
	nn := d.NumNode()
	ones := make([]float64, 8*ne)
	for i := range ones {
		ones[i] = 1
	}
	GatherCornerForces(d, ones, ones, ones, 0, nn, false)
	base := make([]float64, nn)
	copy(base, d.Fx)
	GatherCornerForces(d, ones, ones, ones, 0, nn, true)
	for n := 0; n < nn; n++ {
		if d.Fx[n] != 2*base[n] {
			t.Fatalf("add gather: node %d = %v, want %v", n, d.Fx[n], 2*base[n])
		}
	}
}

func TestGatherTwoEqualsSequentialGathers(t *testing.T) {
	// The fused task-backend gather must be bitwise identical to the
	// reference's overwrite-then-add pair.
	d1 := testDomain(3)
	d2 := testDomain(3)
	ne := d1.NumElem()
	nn := d1.NumNode()
	rng := rand.New(rand.NewSource(9))
	mk := func() []float64 {
		v := make([]float64, 8*ne)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	sx, sy, sz := mk(), mk(), mk()
	hx, hy, hz := mk(), mk(), mk()
	GatherCornerForces(d1, sx, sy, sz, 0, nn, false)
	GatherCornerForces(d1, hx, hy, hz, 0, nn, true)
	GatherTwoCornerForces(d2, sx, sy, sz, hx, hy, hz, 0, nn)
	for n := 0; n < nn; n++ {
		if d1.Fx[n] != d2.Fx[n] || d1.Fy[n] != d2.Fy[n] || d1.Fz[n] != d2.Fz[n] {
			t.Fatalf("fused gather differs at node %d: %v vs %v", n, d1.Fx[n], d2.Fx[n])
		}
	}
}

func TestFlagPrecedenceAndReset(t *testing.T) {
	var f Flag
	if f.Err() != nil {
		t.Fatal("fresh flag should be nil")
	}
	f.RaiseQStop()
	f.RaiseVolume() // first raise wins
	if f.Err() != ErrQStop {
		t.Fatalf("err = %v, want ErrQStop (first raise wins)", f.Err())
	}
	f.Reset()
	if f.Err() != nil {
		t.Fatal("reset flag should be nil")
	}
	f.RaiseVolume()
	if f.Err() != ErrVolume {
		t.Fatalf("err = %v, want ErrVolume", f.Err())
	}
}
