package kernels

// Hourglass-control micro-kernels: the volume derivatives and the
// Flanagan-Belytschko anti-hourglass force of LULESH 2.0.

// hourglass mode shape vectors (the Gamma matrix of Flanagan-Belytschko).
var gamma = [4][8]float64{
	{1, 1, -1, -1, -1, -1, 1, 1},
	{1, -1, -1, 1, -1, 1, 1, -1},
	{1, -1, 1, -1, 1, -1, 1, -1},
	{-1, 1, -1, 1, 1, -1, 1, -1},
}

// voluDer computes one node's volume derivative contribution (VoluDer).
func voluDer(x0, x1, x2, x3, x4, x5,
	y0, y1, y2, y3, y4, y5,
	z0, z1, z2, z3, z4, z5 float64) (dvdx, dvdy, dvdz float64) {

	const twelfth = 1.0 / 12.0

	dvdx = (y1+y2)*(z0+z1) - (y0+y1)*(z1+z2) +
		(y0+y4)*(z3+z4) - (y3+y4)*(z0+z4) -
		(y2+y5)*(z3+z5) + (y3+y5)*(z2+z5)
	dvdy = -(x1+x2)*(z0+z1) + (x0+x1)*(z1+z2) -
		(x0+x4)*(z3+z4) + (x3+x4)*(z0+z4) +
		(x2+x5)*(z3+z5) - (x3+x5)*(z2+z5)
	dvdz = -(y1+y2)*(x0+x1) + (y0+y1)*(x1+x2) -
		(y0+y4)*(x3+x4) + (y3+y4)*(x0+x4) +
		(y2+y5)*(x3+x5) - (y3+y5)*(x2+x5)

	return dvdx * twelfth, dvdy * twelfth, dvdz * twelfth
}

// ElemVolumeDerivative computes the volume derivatives at all eight corners
// of an element (CalcElemVolumeDerivative).
func ElemVolumeDerivative(dvdx, dvdy, dvdz *[8]float64, x, y, z *[8]float64) {
	dvdx[0], dvdy[0], dvdz[0] = voluDer(
		x[1], x[2], x[3], x[4], x[5], x[7],
		y[1], y[2], y[3], y[4], y[5], y[7],
		z[1], z[2], z[3], z[4], z[5], z[7])
	dvdx[3], dvdy[3], dvdz[3] = voluDer(
		x[0], x[1], x[2], x[7], x[4], x[6],
		y[0], y[1], y[2], y[7], y[4], y[6],
		z[0], z[1], z[2], z[7], z[4], z[6])
	dvdx[2], dvdy[2], dvdz[2] = voluDer(
		x[3], x[0], x[1], x[6], x[7], x[5],
		y[3], y[0], y[1], y[6], y[7], y[5],
		z[3], z[0], z[1], z[6], z[7], z[5])
	dvdx[1], dvdy[1], dvdz[1] = voluDer(
		x[2], x[3], x[0], x[5], x[6], x[4],
		y[2], y[3], y[0], y[5], y[6], y[4],
		z[2], z[3], z[0], z[5], z[6], z[4])
	dvdx[4], dvdy[4], dvdz[4] = voluDer(
		x[7], x[6], x[5], x[0], x[3], x[1],
		y[7], y[6], y[5], y[0], y[3], y[1],
		z[7], z[6], z[5], z[0], z[3], z[1])
	dvdx[5], dvdy[5], dvdz[5] = voluDer(
		x[4], x[7], x[6], x[1], x[0], x[2],
		y[4], y[7], y[6], y[1], y[0], y[2],
		z[4], z[7], z[6], z[1], z[0], z[2])
	dvdx[6], dvdy[6], dvdz[6] = voluDer(
		x[5], x[4], x[7], x[2], x[1], x[3],
		y[5], y[4], y[7], y[2], y[1], y[3],
		z[5], z[4], z[7], z[2], z[1], z[3])
	dvdx[7], dvdy[7], dvdz[7] = voluDer(
		x[6], x[5], x[4], x[3], x[2], x[0],
		y[6], y[5], y[4], y[3], y[2], y[0],
		z[6], z[5], z[4], z[3], z[2], z[0])
}

// ElemFBHourglassForce applies the hourglass-resisting force to the eight
// corners from the velocities and hourglass shape matrix
// (CalcElemFBHourglassForce).
func ElemFBHourglassForce(xd, yd, zd *[8]float64, hourgam *[8][4]float64,
	coefficient float64, hgfx, hgfy, hgfz *[8]float64) {

	var hxx [4]float64
	for i := 0; i < 4; i++ {
		hxx[i] = hourgam[0][i]*xd[0] + hourgam[1][i]*xd[1] +
			hourgam[2][i]*xd[2] + hourgam[3][i]*xd[3] +
			hourgam[4][i]*xd[4] + hourgam[5][i]*xd[5] +
			hourgam[6][i]*xd[6] + hourgam[7][i]*xd[7]
	}
	for i := 0; i < 8; i++ {
		hgfx[i] = coefficient * (hourgam[i][0]*hxx[0] + hourgam[i][1]*hxx[1] +
			hourgam[i][2]*hxx[2] + hourgam[i][3]*hxx[3])
	}

	for i := 0; i < 4; i++ {
		hxx[i] = hourgam[0][i]*yd[0] + hourgam[1][i]*yd[1] +
			hourgam[2][i]*yd[2] + hourgam[3][i]*yd[3] +
			hourgam[4][i]*yd[4] + hourgam[5][i]*yd[5] +
			hourgam[6][i]*yd[6] + hourgam[7][i]*yd[7]
	}
	for i := 0; i < 8; i++ {
		hgfy[i] = coefficient * (hourgam[i][0]*hxx[0] + hourgam[i][1]*hxx[1] +
			hourgam[i][2]*hxx[2] + hourgam[i][3]*hxx[3])
	}

	for i := 0; i < 4; i++ {
		hxx[i] = hourgam[0][i]*zd[0] + hourgam[1][i]*zd[1] +
			hourgam[2][i]*zd[2] + hourgam[3][i]*zd[3] +
			hourgam[4][i]*zd[4] + hourgam[5][i]*zd[5] +
			hourgam[6][i]*zd[6] + hourgam[7][i]*zd[7]
	}
	for i := 0; i < 8; i++ {
		hgfz[i] = coefficient * (hourgam[i][0]*hxx[0] + hourgam[i][1]*hxx[1] +
			hourgam[i][2]*hxx[2] + hourgam[i][3]*hxx[3])
	}
}
