package kernels

// Arena is a bump allocator for float64 scratch: one backing allocation
// per (worker, phase) carved into plane views and recycled across
// timesteps. The paper's HPX port keeps each task's temporaries task-local
// so a partition's scratch stays cache-resident; the arena realizes that
// here while collapsing what used to be one allocation per scratch plane
// (15 for the EOS, 6 for the hourglass control) into a single contiguous
// block, so a partition's scratch planes sit next to each other in memory
// exactly like the domain's field slabs do.
//
// Take never zeroes: every kernel writes its scratch before reading it
// (the pooled pre-arena scratch was already reused dirty across regions
// and timesteps, and bitwise identity holds — asserted by the backend
// equivalence tests).
type Arena struct {
	buf []float64
	off int
	// allocs counts backing (re)allocations, so tests can assert the
	// steady state performs none.
	allocs int
}

// NewArena returns an arena with capacity for n float64s.
func NewArena(n int) *Arena {
	a := &Arena{}
	a.Grow(n)
	return a
}

// Grow ensures the backing store holds at least n float64s and resets the
// bump pointer. Outstanding views into the old backing remain valid slices
// but are no longer part of the arena; callers re-Take after a Grow.
func (a *Arena) Grow(n int) {
	a.off = 0
	if cap(a.buf) >= n {
		a.buf = a.buf[:cap(a.buf)]
		return
	}
	a.buf = make([]float64, n)
	a.allocs++
}

// Reset recycles the arena for the next phase or timestep: subsequent
// Takes re-carve the same backing from the start. No memory is released
// or zeroed.
func (a *Arena) Reset() { a.off = 0 }

// Take carves the next n entries as a capacity-capped view. It grows the
// backing if the remaining space is short — steady-state callers size the
// arena once (Grow) so Take never allocates on the hot path.
func (a *Arena) Take(n int) []float64 {
	if a.off+n > len(a.buf) {
		need := len(a.buf)*2 + n
		old := a.buf[:a.off]
		a.buf = make([]float64, need)
		copy(a.buf, old)
		a.allocs++
	}
	v := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return v
}

// Cap reports the backing capacity in float64s.
func (a *Arena) Cap() int { return len(a.buf) }

// Allocs reports how many times the backing store was (re)allocated.
func (a *Arena) Allocs() int { return a.allocs }
