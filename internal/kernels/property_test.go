package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests on kernel invariants under randomized (bounded) state.

func TestMonoQRegionNonNegativeProperty(t *testing.T) {
	// The artificial viscosity terms are never negative: the limiter phi
	// is clamped to [0, monoq_max_slope] and the velocity-gradient
	// products are clamped non-positive before entering qlin/qquad.
	d := testDomain(4)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		for e := 0; e < d.NumElem(); e++ {
			d.Vnew[e] = 0.5 + rng.Float64()
			d.Vdov[e] = 2 * (rng.Float64() - 0.5)
			d.DelvXi[e] = 2 * (rng.Float64() - 0.5)
			d.DelvEta[e] = 2 * (rng.Float64() - 0.5)
			d.DelvZeta[e] = 2 * (rng.Float64() - 0.5)
			d.DelxXi[e] = 0.01 + rng.Float64()
			d.DelxEta[e] = 0.01 + rng.Float64()
			d.DelxZeta[e] = 0.01 + rng.Float64()
		}
		for _, regList := range d.Regions.ElemList {
			MonoQRegion(d, regList, 0, len(regList))
		}
		for e := 0; e < d.NumElem(); e++ {
			if d.Ql[e] < 0 || d.Qq[e] < 0 {
				t.Fatalf("trial %d: negative q terms at %d: ql=%v qq=%v",
					trial, e, d.Ql[e], d.Qq[e])
			}
			if math.IsNaN(d.Ql[e]) || math.IsNaN(d.Qq[e]) {
				t.Fatalf("trial %d: NaN q terms at %d", trial, e)
			}
		}
	}
}

func TestCalcPressureInvariants(t *testing.T) {
	// For any bounded inputs: p >= pmin, and p is either 0 or at least
	// pCut in magnitude (the cutoff snaps small values).
	f := func(e16, c16 int16) bool {
		e := float64(e16) / 100.0
		comp := math.Abs(float64(c16)) / 1e4 // compression >= 0
		pNew := make([]float64, 1)
		bvc := make([]float64, 1)
		pbvc := make([]float64, 1)
		eArr := []float64{e}
		cArr := []float64{comp}
		vnewc := []float64{1.0}
		regList := []int32{0}
		const pmin, pCut = 0.0, 1e-7
		CalcPressure(pNew, bvc, pbvc, eArr, cArr, vnewc, regList, 0,
			pmin, pCut, 1e9, 0, 1)
		p := pNew[0]
		if p < pmin {
			return false
		}
		if p != 0 && math.Abs(p) < pCut {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCalcEnergyFloorProperty(t *testing.T) {
	// Whatever the (bounded) inputs, the final energy respects the floor
	// and the final q is finite and non-negative for compression.
	d := testDomain(2)
	rng := rand.New(rand.NewSource(77))
	regList := []int32{0}
	vnewc := make([]float64, d.NumElem())
	s := NewEOSScratch(1)
	for trial := 0; trial < 200; trial++ {
		vnewc[0] = 0.3 + rng.Float64()
		s.EOld[0] = 200 * (rng.Float64() - 0.25)
		s.POld[0] = 10 * rng.Float64()
		s.QOld[0] = rng.Float64()
		s.Delvc[0] = 0.2 * (rng.Float64() - 0.5)
		s.Compression[0] = 1.0/vnewc[0] - 1.0
		vchalf := vnewc[0] - s.Delvc[0]*0.5
		s.CompHalfStep[0] = 1.0/vchalf - 1.0
		s.QqOld[0] = rng.Float64()
		s.QlOld[0] = rng.Float64()
		s.Work[0] = 0
		CalcEnergy(d, vnewc, regList, s, 0, 0, 1)
		if s.ENew[0] < d.Par.Emin {
			t.Fatalf("trial %d: energy %v below floor", trial, s.ENew[0])
		}
		if math.IsNaN(s.ENew[0]) || math.IsNaN(s.QNew[0]) {
			t.Fatalf("trial %d: NaN output", trial)
		}
		if s.Delvc[0] <= 0 && s.QNew[0] < 0 {
			t.Fatalf("trial %d: negative viscosity %v under compression",
				trial, s.QNew[0])
		}
	}
}

func TestUpdateVolumesSnapProperty(t *testing.T) {
	f := func(raw int16) bool {
		d := testDomain(1)
		v := 1.0 + float64(raw)/1e7 // values straddling the cut
		d.Vnew[0] = v
		UpdateVolumes(d, d.Par.VCut, 0, 1)
		if math.Abs(v-1.0) < d.Par.VCut {
			return d.V[0] == 1.0
		}
		return d.V[0] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVelocityCutoffIdempotent(t *testing.T) {
	// Applying the velocity update with zero acceleration twice changes
	// nothing (cutoff is idempotent).
	d := testDomain(2)
	rng := rand.New(rand.NewSource(5))
	for n := range d.Xd {
		d.Xd[n] = (rng.Float64() - 0.5) * 1e-6
		d.Yd[n] = (rng.Float64() - 0.5) * 10
		d.Zd[n] = 0
		d.Xdd[n], d.Ydd[n], d.Zdd[n] = 0, 0, 0
	}
	CalcVelocity(d, 0.1, d.Par.UCut, 0, d.NumNode())
	snapshot := make([]float64, d.NumNode())
	copy(snapshot, d.Xd)
	CalcVelocity(d, 0.1, d.Par.UCut, 0, d.NumNode())
	for n := range d.Xd {
		if d.Xd[n] != snapshot[n] {
			t.Fatalf("cutoff not idempotent at node %d", n)
		}
	}
}

func TestCourantMonotoneInSoundSpeed(t *testing.T) {
	// A faster sound speed can only tighten (reduce) the Courant dt.
	d := testDomain(2)
	regList := []int32{0}
	d.Arealg[0] = 0.1
	d.Vdov[0] = 1
	d.SS[0] = 1.0
	slow := CourantConstraint(d, regList, 0, 1)
	d.SS[0] = 2.0
	fast := CourantConstraint(d, regList, 0, 1)
	if fast >= slow {
		t.Fatalf("courant not monotone: ss=1 -> %v, ss=2 -> %v", slow, fast)
	}
}

func TestHydroInverselyProportionalToVdov(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0}
	d.Vdov[0] = 0.01
	loose := HydroConstraint(d, regList, 0, 1)
	d.Vdov[0] = 0.1
	tight := HydroConstraint(d, regList, 0, 1)
	if tight >= loose {
		t.Fatalf("hydro not monotone in |vdov|: %v vs %v", tight, loose)
	}
	ratio := loose / tight
	if math.Abs(ratio-10) > 1e-9 {
		t.Fatalf("hydro should scale inversely with vdov: ratio %v", ratio)
	}
}
