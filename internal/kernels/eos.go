package kernels

import (
	"math"

	"lulesh/internal/domain"
)

// Equation-of-state kernels (ApplyMaterialPropertiesForElems /
// EvalEOSForElems / CalcEnergyForElems / CalcPressureForElems /
// CalcSoundSpeedForElems).
//
// The EOS operates on a compacted view of one region's elements: scratch
// arrays are indexed by position within the region element list, and
// regList maps back to element numbers. Each function below corresponds to
// one worksharing loop of the reference so the fork-join backend can put a
// barrier after each, while the task backend calls them back-to-back inside
// one region-chain task.

// EOSScratch holds the per-region temporary arrays of EvalEOSForElems. The
// paper's HPX version allocates these task-locally for data locality; the
// reference allocates them per region call. Ensure resizes lazily so
// backends can pool scratch across iterations.
type EOSScratch struct {
	EOld, Delvc, POld, QOld   []float64
	Compression, CompHalfStep []float64
	QqOld, QlOld, Work        []float64
	PNew, ENew, QNew          []float64
	Bvc, Pbvc, PHalfStep      []float64
}

// NewEOSScratch allocates scratch for up to n region elements.
func NewEOSScratch(n int) *EOSScratch {
	s := &EOSScratch{}
	s.Ensure(n)
	return s
}

// Ensure grows the scratch arrays to hold at least n entries.
func (s *EOSScratch) Ensure(n int) {
	if len(s.EOld) >= n {
		return
	}
	s.EOld = make([]float64, n)
	s.Delvc = make([]float64, n)
	s.POld = make([]float64, n)
	s.QOld = make([]float64, n)
	s.Compression = make([]float64, n)
	s.CompHalfStep = make([]float64, n)
	s.QqOld = make([]float64, n)
	s.QlOld = make([]float64, n)
	s.Work = make([]float64, n)
	s.PNew = make([]float64, n)
	s.ENew = make([]float64, n)
	s.QNew = make([]float64, n)
	s.Bvc = make([]float64, n)
	s.Pbvc = make([]float64, n)
	s.PHalfStep = make([]float64, n)
}

// EOSGather compresses the element state of regList[lo:hi] into the scratch
// arrays (the gather loop of EvalEOSForElems). base is the scratch offset
// of regList[lo] (0 when scratch covers the whole region; lo's partition
// offset for task-local scratch).
func EOSGather(d *domain.Domain, regList []int32, s *EOSScratch, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		elem := regList[i]
		j := i - lo + base
		s.EOld[j] = d.E[elem]
		s.Delvc[j] = d.Delv[elem]
		s.POld[j] = d.P[elem]
		s.QOld[j] = d.Q[elem]
		s.QqOld[j] = d.Qq[elem]
		s.QlOld[j] = d.Ql[elem]
	}
}

// EOSCompression computes compression and half-step compression for
// regList[lo:hi] (the second loop of EvalEOSForElems).
func EOSCompression(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		elem := regList[i]
		j := i - lo + base
		s.Compression[j] = 1.0/vnewc[elem] - 1.0
		vchalf := vnewc[elem] - s.Delvc[j]*0.5
		s.CompHalfStep[j] = 1.0/vchalf - 1.0
	}
}

// EOSClampVMin applies the eosvmin special case.
func EOSClampVMin(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, eosvmin float64, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		elem := regList[i]
		j := i - lo + base
		if vnewc[elem] <= eosvmin {
			s.CompHalfStep[j] = s.Compression[j]
		}
	}
}

// EOSClampVMax applies the eosvmax special case.
func EOSClampVMax(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, eosvmax float64, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		elem := regList[i]
		j := i - lo + base
		if vnewc[elem] >= eosvmax {
			s.POld[j] = 0
			s.Compression[j] = 0
			s.CompHalfStep[j] = 0
		}
	}
}

// EOSZeroWork clears the work array (LULESH carries a work term that is
// identically zero for the Sedov problem but participates in the energy
// update).
func EOSZeroWork(s *EOSScratch, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		s.Work[i-lo+base] = 0
	}
}

// CalcPressure computes pressure from energy and compression for scratch
// entries [jlo, jhi) (CalcPressureForElems). vnewc is element-indexed via
// regList; regOff maps scratch index j to regList position j+regOff.
func CalcPressure(pNew, bvc, pbvc, eOld, compression []float64,
	vnewc []float64, regList []int32, regOff int,
	pmin, pCut, eosvmax float64, jlo, jhi int) {

	const c1s = 2.0 / 3.0
	for i := jlo; i < jhi; i++ {
		bvc[i] = c1s * (compression[i] + 1.0)
		pbvc[i] = c1s
	}
	for i := jlo; i < jhi; i++ {
		pNew[i] = bvc[i] * eOld[i]
		if math.Abs(pNew[i]) < pCut {
			pNew[i] = 0
		}
		if vnewc[regList[i+regOff]] >= eosvmax {
			pNew[i] = 0
		}
		if pNew[i] < pmin {
			pNew[i] = pmin
		}
	}
}

// EnergyStep1 is the first energy predictor of CalcEnergyForElems.
func EnergyStep1(s *EOSScratch, emin float64, jlo, jhi int) {
	for i := jlo; i < jhi; i++ {
		s.ENew[i] = s.EOld[i] - 0.5*s.Delvc[i]*(s.POld[i]+s.QOld[i]) + 0.5*s.Work[i]
		if s.ENew[i] < emin {
			s.ENew[i] = emin
		}
	}
}

// EnergyStep2 computes the half-step viscosity and corrects the energy
// (second loop of CalcEnergyForElems).
func EnergyStep2(s *EOSScratch, rho0 float64, jlo, jhi int) {
	for i := jlo; i < jhi; i++ {
		vhalf := 1.0 / (1.0 + s.CompHalfStep[i])
		if s.Delvc[i] > 0 {
			s.QNew[i] = 0
		} else {
			ssc := (s.Pbvc[i]*s.ENew[i] + vhalf*vhalf*s.Bvc[i]*s.PHalfStep[i]) / rho0
			if ssc <= 0.1111111e-36 {
				ssc = 0.3333333e-18
			} else {
				ssc = math.Sqrt(ssc)
			}
			s.QNew[i] = ssc*s.QlOld[i] + s.QqOld[i]
		}
		s.ENew[i] = s.ENew[i] + 0.5*s.Delvc[i]*
			(3.0*(s.POld[i]+s.QOld[i])-4.0*(s.PHalfStep[i]+s.QNew[i]))
	}
}

// EnergyStep3 adds the remaining work term and applies cutoffs (third loop
// of CalcEnergyForElems).
func EnergyStep3(s *EOSScratch, eCut, emin float64, jlo, jhi int) {
	for i := jlo; i < jhi; i++ {
		s.ENew[i] += 0.5 * s.Work[i]
		if math.Abs(s.ENew[i]) < eCut {
			s.ENew[i] = 0
		}
		if s.ENew[i] < emin {
			s.ENew[i] = emin
		}
	}
}

// EnergyStep4 applies the full-step corrector (fourth loop of
// CalcEnergyForElems).
func EnergyStep4(s *EOSScratch, vnewc []float64, regList []int32, regOff int,
	rho0, eCut, emin float64, jlo, jhi int) {

	const sixth = 1.0 / 6.0
	for i := jlo; i < jhi; i++ {
		var qTilde float64
		if s.Delvc[i] > 0 {
			qTilde = 0
		} else {
			v := vnewc[regList[i+regOff]]
			ssc := (s.Pbvc[i]*s.ENew[i] + v*v*s.Bvc[i]*s.PNew[i]) / rho0
			if ssc <= 0.1111111e-36 {
				ssc = 0.3333333e-18
			} else {
				ssc = math.Sqrt(ssc)
			}
			qTilde = ssc*s.QlOld[i] + s.QqOld[i]
		}
		s.ENew[i] = s.ENew[i] - (7.0*(s.POld[i]+s.QOld[i])-
			8.0*(s.PHalfStep[i]+s.QNew[i])+(s.PNew[i]+qTilde))*s.Delvc[i]*sixth
		if math.Abs(s.ENew[i]) < eCut {
			s.ENew[i] = 0
		}
		if s.ENew[i] < emin {
			s.ENew[i] = emin
		}
	}
}

// EnergyStep5 finalizes the viscosity (fifth loop of CalcEnergyForElems).
func EnergyStep5(s *EOSScratch, vnewc []float64, regList []int32, regOff int,
	rho0, qCut float64, jlo, jhi int) {

	for i := jlo; i < jhi; i++ {
		if s.Delvc[i] <= 0 {
			v := vnewc[regList[i+regOff]]
			ssc := (s.Pbvc[i]*s.ENew[i] + v*v*s.Bvc[i]*s.PNew[i]) / rho0
			if ssc <= 0.1111111e-36 {
				ssc = 0.3333333e-18
			} else {
				ssc = math.Sqrt(ssc)
			}
			s.QNew[i] = ssc*s.QlOld[i] + s.QqOld[i]
			if math.Abs(s.QNew[i]) < qCut {
				s.QNew[i] = 0
			}
		}
	}
}

// CalcEnergy runs the complete energy/pressure update of CalcEnergyForElems
// for scratch entries [jlo, jhi).
func CalcEnergy(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, regOff, jlo, jhi int) {

	p := &d.Par
	rho0 := p.RefDens
	EnergyStep1(s, p.Emin, jlo, jhi)
	CalcPressure(s.PHalfStep, s.Bvc, s.Pbvc, s.ENew, s.CompHalfStep,
		vnewc, regList, regOff, p.Pmin, p.PCut, p.EOSvMax, jlo, jhi)
	EnergyStep2(s, rho0, jlo, jhi)
	EnergyStep3(s, p.ECut, p.Emin, jlo, jhi)
	CalcPressure(s.PNew, s.Bvc, s.Pbvc, s.ENew, s.Compression,
		vnewc, regList, regOff, p.Pmin, p.PCut, p.EOSvMax, jlo, jhi)
	EnergyStep4(s, vnewc, regList, regOff, rho0, p.ECut, p.Emin, jlo, jhi)
	CalcPressure(s.PNew, s.Bvc, s.Pbvc, s.ENew, s.Compression,
		vnewc, regList, regOff, p.Pmin, p.PCut, p.EOSvMax, jlo, jhi)
	EnergyStep5(s, vnewc, regList, regOff, rho0, p.QCut, jlo, jhi)
}

// EOSStore writes the new pressure, energy and viscosity back to the
// domain for regList[lo:hi].
func EOSStore(d *domain.Domain, regList []int32, s *EOSScratch, base, lo, hi int) {
	for i := lo; i < hi; i++ {
		elem := regList[i]
		j := i - lo + base
		d.P[elem] = s.PNew[j]
		d.E[elem] = s.ENew[j]
		d.Q[elem] = s.QNew[j]
	}
}

// CalcSoundSpeed updates the element sound speeds for regList[lo:hi]
// (CalcSoundSpeedForElems).
func CalcSoundSpeed(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, base, lo, hi int) {

	rho0 := d.Par.RefDens
	for i := lo; i < hi; i++ {
		elem := regList[i]
		j := i - lo + base
		ssTmp := (s.Pbvc[j]*s.ENew[j] +
			vnewc[elem]*vnewc[elem]*s.Bvc[j]*s.PNew[j]) / rho0
		if ssTmp <= 0.1111111e-36 {
			ssTmp = 0.3333333e-18
		} else {
			ssTmp = math.Sqrt(ssTmp)
		}
		d.SS[elem] = ssTmp
	}
}

// EvalEOS runs the full equation-of-state update for the elements
// regList[lo:hi] of one region, repeating the computation rep times to
// model expensive materials exactly as the reference does (only the last
// repetition's values are stored). Scratch must hold hi-lo entries
// starting at index 0.
func EvalEOS(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, rep, lo, hi int) {

	p := &d.Par
	n := hi - lo
	s.Ensure(n)
	for j := 0; j < rep; j++ {
		EOSGather(d, regList, s, 0, lo, hi)
		EOSCompression(d, vnewc, regList, s, 0, lo, hi)
		if p.EOSvMin != 0 {
			EOSClampVMin(d, vnewc, regList, s, p.EOSvMin, 0, lo, hi)
		}
		if p.EOSvMax != 0 {
			EOSClampVMax(d, vnewc, regList, s, p.EOSvMax, 0, lo, hi)
		}
		EOSZeroWork(s, 0, lo, hi)
		CalcEnergy(d, vnewc, regList, s, lo, 0, n)
	}
	EOSStore(d, regList, s, 0, lo, hi)
	CalcSoundSpeed(d, vnewc, regList, s, 0, lo, hi)
}
