package kernels

import (
	"math"

	"lulesh/internal/domain"
)

// Equation-of-state kernels (ApplyMaterialPropertiesForElems /
// EvalEOSForElems / CalcEnergyForElems / CalcPressureForElems /
// CalcSoundSpeedForElems).
//
// The EOS operates on a compacted view of one region's elements: scratch
// arrays are indexed by position within the region element list, and
// regList maps back to element numbers. Each function below corresponds to
// one worksharing loop of the reference so the fork-join backend can put a
// barrier after each, while the task backend calls them back-to-back inside
// one region-chain task.
//
// Every loop walks equal-length views of the scratch planes and the region
// list (re-sliced to a common length so the compiler drops the bounds
// checks; verified with -d=ssa/check_bce). Only the indirect element-plane
// accesses through regList keep their checks.

// EOSScratch holds the per-region temporary arrays of EvalEOSForElems. The
// paper's HPX version allocates these task-locally for data locality; the
// reference allocates them per region call. Ensure resizes lazily so
// backends can pool scratch across iterations.
//
// All fifteen planes are carved from one arena (a single backing
// allocation), so one partition's EOS temporaries are contiguous in memory
// and growing the scratch — e.g. when the adaptive grain controller widens
// partitions mid-run — costs one allocation, not fifteen.
type EOSScratch struct {
	EOld, Delvc, POld, QOld   []float64
	Compression, CompHalfStep []float64
	QqOld, QlOld, Work        []float64
	PNew, ENew, QNew          []float64
	Bvc, Pbvc, PHalfStep      []float64

	arena Arena
}

// eosPlanes is the number of scratch planes carved per region element.
const eosPlanes = 15

// NewEOSScratch allocates scratch for up to n region elements.
func NewEOSScratch(n int) *EOSScratch {
	s := &EOSScratch{}
	s.Ensure(n)
	return s
}

// Ensure grows the scratch arrays to hold at least n entries.
func (s *EOSScratch) Ensure(n int) {
	if len(s.EOld) >= n {
		return
	}
	s.arena.Grow(eosPlanes * n)
	s.EOld = s.arena.Take(n)
	s.Delvc = s.arena.Take(n)
	s.POld = s.arena.Take(n)
	s.QOld = s.arena.Take(n)
	s.Compression = s.arena.Take(n)
	s.CompHalfStep = s.arena.Take(n)
	s.QqOld = s.arena.Take(n)
	s.QlOld = s.arena.Take(n)
	s.Work = s.arena.Take(n)
	s.PNew = s.arena.Take(n)
	s.ENew = s.arena.Take(n)
	s.QNew = s.arena.Take(n)
	s.Bvc = s.arena.Take(n)
	s.Pbvc = s.arena.Take(n)
	s.PHalfStep = s.arena.Take(n)
}

// Allocs reports backing allocations performed so far (tests assert the
// steady state adds none).
func (s *EOSScratch) Allocs() int { return s.arena.Allocs() }

// EOSGather compresses the element state of regList[lo:hi] into the scratch
// arrays (the gather loop of EvalEOSForElems). base is the scratch offset
// of regList[lo] (0 when scratch covers the whole region; lo's partition
// offset for task-local scratch).
func EOSGather(d *domain.Domain, regList []int32, s *EOSScratch, base, lo, hi int) {
	rl := regList[lo:hi]
	eOld := s.EOld[base : base+len(rl)]
	delvc := s.Delvc[base : base+len(rl)]
	pOld := s.POld[base : base+len(rl)]
	qOld := s.QOld[base : base+len(rl)]
	qqOld := s.QqOld[base : base+len(rl)]
	qlOld := s.QlOld[base : base+len(rl)]
	eP, delvP, pP, qP, qqP, qlP := d.E, d.Delv, d.P, d.Q, d.Qq, d.Ql
	for j, elem := range rl {
		eOld[j] = eP[elem]
		delvc[j] = delvP[elem]
		pOld[j] = pP[elem]
		qOld[j] = qP[elem]
		qqOld[j] = qqP[elem]
		qlOld[j] = qlP[elem]
	}
}

// EOSCompression computes compression and half-step compression for
// regList[lo:hi] (the second loop of EvalEOSForElems).
func EOSCompression(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, base, lo, hi int) {
	rl := regList[lo:hi]
	compression := s.Compression[base : base+len(rl)]
	compHalfStep := s.CompHalfStep[base : base+len(rl)]
	delvc := s.Delvc[base : base+len(rl)]
	for j, elem := range rl {
		compression[j] = 1.0/vnewc[elem] - 1.0
		vchalf := vnewc[elem] - delvc[j]*0.5
		compHalfStep[j] = 1.0/vchalf - 1.0
	}
}

// EOSClampVMin applies the eosvmin special case.
func EOSClampVMin(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, eosvmin float64, base, lo, hi int) {
	rl := regList[lo:hi]
	compression := s.Compression[base : base+len(rl)]
	compHalfStep := s.CompHalfStep[base : base+len(rl)]
	for j, elem := range rl {
		if vnewc[elem] <= eosvmin {
			compHalfStep[j] = compression[j]
		}
	}
}

// EOSClampVMax applies the eosvmax special case.
func EOSClampVMax(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, eosvmax float64, base, lo, hi int) {
	rl := regList[lo:hi]
	pOld := s.POld[base : base+len(rl)]
	compression := s.Compression[base : base+len(rl)]
	compHalfStep := s.CompHalfStep[base : base+len(rl)]
	for j, elem := range rl {
		if vnewc[elem] >= eosvmax {
			pOld[j] = 0
			compression[j] = 0
			compHalfStep[j] = 0
		}
	}
}

// EOSZeroWork clears the work array (LULESH carries a work term that is
// identically zero for the Sedov problem but participates in the energy
// update).
func EOSZeroWork(s *EOSScratch, base, lo, hi int) {
	work := s.Work[base : base+(hi-lo)]
	for j := range work {
		work[j] = 0
	}
}

// CalcPressure computes pressure from energy and compression for scratch
// entries [jlo, jhi) (CalcPressureForElems). vnewc is element-indexed via
// regList; regOff maps scratch index j to regList position j+regOff.
func CalcPressure(pNew, bvc, pbvc, eOld, compression []float64,
	vnewc []float64, regList []int32, regOff int,
	pmin, pCut, eosvmax float64, jlo, jhi int) {

	const c1s = 2.0 / 3.0
	b := bvc[jlo:jhi]
	pb := pbvc[jlo:jhi]
	comp := compression[jlo:jhi]
	for i := range b {
		b[i] = c1s * (comp[i] + 1.0)
		pb[i] = c1s
	}
	pn := pNew[jlo:jhi]
	e := eOld[jlo:jhi]
	rl := regList[jlo+regOff : jhi+regOff][:len(b)]
	for i := range pn {
		pn[i] = b[i] * e[i]
		if math.Abs(pn[i]) < pCut {
			pn[i] = 0
		}
		if vnewc[rl[i]] >= eosvmax {
			pn[i] = 0
		}
		if pn[i] < pmin {
			pn[i] = pmin
		}
	}
}

// EnergyStep1 is the first energy predictor of CalcEnergyForElems.
func EnergyStep1(s *EOSScratch, emin float64, jlo, jhi int) {
	eNew := s.ENew[jlo:jhi]
	eOld := s.EOld[jlo:jhi]
	delvc := s.Delvc[jlo:jhi]
	pOld := s.POld[jlo:jhi]
	qOld := s.QOld[jlo:jhi]
	work := s.Work[jlo:jhi]
	for i := range eNew {
		eNew[i] = eOld[i] - 0.5*delvc[i]*(pOld[i]+qOld[i]) + 0.5*work[i]
		if eNew[i] < emin {
			eNew[i] = emin
		}
	}
}

// EnergyStep2 computes the half-step viscosity and corrects the energy
// (second loop of CalcEnergyForElems).
func EnergyStep2(s *EOSScratch, rho0 float64, jlo, jhi int) {
	eNew := s.ENew[jlo:jhi]
	compHalfStep := s.CompHalfStep[jlo:jhi]
	delvc := s.Delvc[jlo:jhi]
	qNew := s.QNew[jlo:jhi]
	pbvc := s.Pbvc[jlo:jhi]
	bvc := s.Bvc[jlo:jhi]
	pHalfStep := s.PHalfStep[jlo:jhi]
	pOld := s.POld[jlo:jhi]
	qOld := s.QOld[jlo:jhi]
	qlOld := s.QlOld[jlo:jhi]
	qqOld := s.QqOld[jlo:jhi]
	for i := range eNew {
		vhalf := 1.0 / (1.0 + compHalfStep[i])
		if delvc[i] > 0 {
			qNew[i] = 0
		} else {
			ssc := (pbvc[i]*eNew[i] + vhalf*vhalf*bvc[i]*pHalfStep[i]) / rho0
			if ssc <= 0.1111111e-36 {
				ssc = 0.3333333e-18
			} else {
				ssc = math.Sqrt(ssc)
			}
			qNew[i] = ssc*qlOld[i] + qqOld[i]
		}
		eNew[i] = eNew[i] + 0.5*delvc[i]*
			(3.0*(pOld[i]+qOld[i])-4.0*(pHalfStep[i]+qNew[i]))
	}
}

// EnergyStep3 adds the remaining work term and applies cutoffs (third loop
// of CalcEnergyForElems).
func EnergyStep3(s *EOSScratch, eCut, emin float64, jlo, jhi int) {
	eNew := s.ENew[jlo:jhi]
	work := s.Work[jlo:jhi]
	for i := range eNew {
		eNew[i] += 0.5 * work[i]
		if math.Abs(eNew[i]) < eCut {
			eNew[i] = 0
		}
		if eNew[i] < emin {
			eNew[i] = emin
		}
	}
}

// EnergyStep4 applies the full-step corrector (fourth loop of
// CalcEnergyForElems).
func EnergyStep4(s *EOSScratch, vnewc []float64, regList []int32, regOff int,
	rho0, eCut, emin float64, jlo, jhi int) {

	const sixth = 1.0 / 6.0
	eNew := s.ENew[jlo:jhi]
	delvc := s.Delvc[jlo:jhi]
	pbvc := s.Pbvc[jlo:jhi]
	bvc := s.Bvc[jlo:jhi]
	pNew := s.PNew[jlo:jhi]
	pHalfStep := s.PHalfStep[jlo:jhi]
	pOld := s.POld[jlo:jhi]
	qOld := s.QOld[jlo:jhi]
	qNew := s.QNew[jlo:jhi]
	qlOld := s.QlOld[jlo:jhi]
	qqOld := s.QqOld[jlo:jhi]
	rl := regList[jlo+regOff : jhi+regOff][:len(eNew)]
	for i := range eNew {
		var qTilde float64
		if delvc[i] > 0 {
			qTilde = 0
		} else {
			v := vnewc[rl[i]]
			ssc := (pbvc[i]*eNew[i] + v*v*bvc[i]*pNew[i]) / rho0
			if ssc <= 0.1111111e-36 {
				ssc = 0.3333333e-18
			} else {
				ssc = math.Sqrt(ssc)
			}
			qTilde = ssc*qlOld[i] + qqOld[i]
		}
		eNew[i] = eNew[i] - (7.0*(pOld[i]+qOld[i])-
			8.0*(pHalfStep[i]+qNew[i])+(pNew[i]+qTilde))*delvc[i]*sixth
		if math.Abs(eNew[i]) < eCut {
			eNew[i] = 0
		}
		if eNew[i] < emin {
			eNew[i] = emin
		}
	}
}

// EnergyStep5 finalizes the viscosity (fifth loop of CalcEnergyForElems).
func EnergyStep5(s *EOSScratch, vnewc []float64, regList []int32, regOff int,
	rho0, qCut float64, jlo, jhi int) {

	delvc := s.Delvc[jlo:jhi]
	pbvc := s.Pbvc[jlo:jhi]
	bvc := s.Bvc[jlo:jhi]
	eNew := s.ENew[jlo:jhi]
	pNew := s.PNew[jlo:jhi]
	qNew := s.QNew[jlo:jhi]
	qlOld := s.QlOld[jlo:jhi]
	qqOld := s.QqOld[jlo:jhi]
	rl := regList[jlo+regOff : jhi+regOff][:len(delvc)]
	for i := range delvc {
		if delvc[i] <= 0 {
			v := vnewc[rl[i]]
			ssc := (pbvc[i]*eNew[i] + v*v*bvc[i]*pNew[i]) / rho0
			if ssc <= 0.1111111e-36 {
				ssc = 0.3333333e-18
			} else {
				ssc = math.Sqrt(ssc)
			}
			qNew[i] = ssc*qlOld[i] + qqOld[i]
			if math.Abs(qNew[i]) < qCut {
				qNew[i] = 0
			}
		}
	}
}

// CalcEnergy runs the complete energy/pressure update of CalcEnergyForElems
// for scratch entries [jlo, jhi).
func CalcEnergy(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, regOff, jlo, jhi int) {

	p := &d.Par
	rho0 := p.RefDens
	EnergyStep1(s, p.Emin, jlo, jhi)
	CalcPressure(s.PHalfStep, s.Bvc, s.Pbvc, s.ENew, s.CompHalfStep,
		vnewc, regList, regOff, p.Pmin, p.PCut, p.EOSvMax, jlo, jhi)
	EnergyStep2(s, rho0, jlo, jhi)
	EnergyStep3(s, p.ECut, p.Emin, jlo, jhi)
	CalcPressure(s.PNew, s.Bvc, s.Pbvc, s.ENew, s.Compression,
		vnewc, regList, regOff, p.Pmin, p.PCut, p.EOSvMax, jlo, jhi)
	EnergyStep4(s, vnewc, regList, regOff, rho0, p.ECut, p.Emin, jlo, jhi)
	CalcPressure(s.PNew, s.Bvc, s.Pbvc, s.ENew, s.Compression,
		vnewc, regList, regOff, p.Pmin, p.PCut, p.EOSvMax, jlo, jhi)
	EnergyStep5(s, vnewc, regList, regOff, rho0, p.QCut, jlo, jhi)
}

// EOSStore writes the new pressure, energy and viscosity back to the
// domain for regList[lo:hi].
func EOSStore(d *domain.Domain, regList []int32, s *EOSScratch, base, lo, hi int) {
	rl := regList[lo:hi]
	pNew := s.PNew[base : base+len(rl)]
	eNew := s.ENew[base : base+len(rl)]
	qNew := s.QNew[base : base+len(rl)]
	pP, eP, qP := d.P, d.E, d.Q
	for j, elem := range rl {
		pP[elem] = pNew[j]
		eP[elem] = eNew[j]
		qP[elem] = qNew[j]
	}
}

// CalcSoundSpeed updates the element sound speeds for regList[lo:hi]
// (CalcSoundSpeedForElems).
func CalcSoundSpeed(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, base, lo, hi int) {

	rho0 := d.Par.RefDens
	rl := regList[lo:hi]
	pbvc := s.Pbvc[base : base+len(rl)]
	eNew := s.ENew[base : base+len(rl)]
	bvc := s.Bvc[base : base+len(rl)]
	pNew := s.PNew[base : base+len(rl)]
	ssP := d.SS
	for j, elem := range rl {
		ssTmp := (pbvc[j]*eNew[j] +
			vnewc[elem]*vnewc[elem]*bvc[j]*pNew[j]) / rho0
		if ssTmp <= 0.1111111e-36 {
			ssTmp = 0.3333333e-18
		} else {
			ssTmp = math.Sqrt(ssTmp)
		}
		ssP[elem] = ssTmp
	}
}

// EvalEOS runs the full equation-of-state update for the elements
// regList[lo:hi] of one region, repeating the computation rep times to
// model expensive materials exactly as the reference does (only the last
// repetition's values are stored). Scratch must hold hi-lo entries
// starting at index 0.
func EvalEOS(d *domain.Domain, vnewc []float64, regList []int32,
	s *EOSScratch, rep, lo, hi int) {

	p := &d.Par
	n := hi - lo
	s.Ensure(n)
	for j := 0; j < rep; j++ {
		EOSGather(d, regList, s, 0, lo, hi)
		EOSCompression(d, vnewc, regList, s, 0, lo, hi)
		if p.EOSvMin != 0 {
			EOSClampVMin(d, vnewc, regList, s, p.EOSvMin, 0, lo, hi)
		}
		if p.EOSvMax != 0 {
			EOSClampVMax(d, vnewc, regList, s, p.EOSvMax, 0, lo, hi)
		}
		EOSZeroWork(s, 0, lo, hi)
		CalcEnergy(d, vnewc, regList, s, lo, 0, n)
	}
	EOSStore(d, regList, s, 0, lo, hi)
	CalcSoundSpeed(d, vnewc, regList, s, 0, lo, hi)
}
