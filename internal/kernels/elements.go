package kernels

import (
	"math"

	"lulesh/internal/domain"
	"lulesh/internal/mesh"
)

// Element update kernels: kinematics, strain rates, monotonic artificial
// viscosity, volume bookkeeping (the LagrangeElements phase).

// Ptiny is the tiny-denominator guard of the monotonic Q kernels.
const Ptiny = 1.0e-36

// CalcKinematics computes new element volumes, characteristic lengths and
// principal velocity gradients for elements [lo, hi)
// (CalcKinematicsForElems).
func CalcKinematics(d *domain.Domain, dt float64, lo, hi int) {
	var x, y, z [8]float64
	var xd, yd, zd [8]float64
	var b [3][8]float64
	var dvel [3]float64
	for k := lo; k < hi; k++ {
		nl := d.Mesh.Nodelist[8*k : 8*k+8]
		for c := 0; c < 8; c++ {
			n := nl[c]
			x[c] = d.X[n]
			y[c] = d.Y[n]
			z[c] = d.Z[n]
		}

		volume := domain.ElemVolume(&x, &y, &z)
		relativeVolume := volume / d.Volo[k]
		d.Vnew[k] = relativeVolume
		d.Delv[k] = relativeVolume - d.V[k]
		d.Arealg[k] = ElemCharacteristicLength(&x, &y, &z, volume)

		for c := 0; c < 8; c++ {
			n := nl[c]
			xd[c] = d.Xd[n]
			yd[c] = d.Yd[n]
			zd[c] = d.Zd[n]
		}
		dt2 := 0.5 * dt
		for j := 0; j < 8; j++ {
			x[j] -= dt2 * xd[j]
			y[j] -= dt2 * yd[j]
			z[j] -= dt2 * zd[j]
		}
		detJ := ShapeFunctionDerivatives(&x, &y, &z, &b)
		ElemVelocityGradient(&xd, &yd, &zd, &b, detJ, &dvel)
		d.Dxx[k] = dvel[0]
		d.Dyy[k] = dvel[1]
		d.Dzz[k] = dvel[2]
	}
}

// CalcStrainRate converts principal strains to deviatoric form and records
// vdov for elements [lo, hi), raising a volume error on non-positive new
// volumes (the second loop of CalcLagrangeElements).
func CalcStrainRate(d *domain.Domain, lo, hi int, flag *Flag) {
	for k := lo; k < hi; k++ {
		vdov := d.Dxx[k] + d.Dyy[k] + d.Dzz[k]
		vdovthird := vdov / 3.0
		d.Vdov[k] = vdov
		d.Dxx[k] -= vdovthird
		d.Dyy[k] -= vdovthird
		d.Dzz[k] -= vdovthird
		if d.Vnew[k] <= 0 {
			flag.RaiseVolume()
		}
	}
}

// MonoQGradients computes the velocity and position gradients used by the
// monotonic Q for elements [lo, hi) (CalcMonotonicQGradientsForElems).
func MonoQGradients(d *domain.Domain, lo, hi int) {
	for i := lo; i < hi; i++ {
		nl := d.Mesh.Nodelist[8*i : 8*i+8]
		n0, n1, n2, n3 := nl[0], nl[1], nl[2], nl[3]
		n4, n5, n6, n7 := nl[4], nl[5], nl[6], nl[7]

		x0, x1, x2, x3 := d.X[n0], d.X[n1], d.X[n2], d.X[n3]
		x4, x5, x6, x7 := d.X[n4], d.X[n5], d.X[n6], d.X[n7]
		y0, y1, y2, y3 := d.Y[n0], d.Y[n1], d.Y[n2], d.Y[n3]
		y4, y5, y6, y7 := d.Y[n4], d.Y[n5], d.Y[n6], d.Y[n7]
		z0, z1, z2, z3 := d.Z[n0], d.Z[n1], d.Z[n2], d.Z[n3]
		z4, z5, z6, z7 := d.Z[n4], d.Z[n5], d.Z[n6], d.Z[n7]

		xv0, xv1, xv2, xv3 := d.Xd[n0], d.Xd[n1], d.Xd[n2], d.Xd[n3]
		xv4, xv5, xv6, xv7 := d.Xd[n4], d.Xd[n5], d.Xd[n6], d.Xd[n7]
		yv0, yv1, yv2, yv3 := d.Yd[n0], d.Yd[n1], d.Yd[n2], d.Yd[n3]
		yv4, yv5, yv6, yv7 := d.Yd[n4], d.Yd[n5], d.Yd[n6], d.Yd[n7]
		zv0, zv1, zv2, zv3 := d.Zd[n0], d.Zd[n1], d.Zd[n2], d.Zd[n3]
		zv4, zv5, zv6, zv7 := d.Zd[n4], d.Zd[n5], d.Zd[n6], d.Zd[n7]

		vol := d.Volo[i] * d.Vnew[i]
		norm := 1.0 / (vol + Ptiny)

		dxj := -0.25 * ((x0 + x1 + x5 + x4) - (x3 + x2 + x6 + x7))
		dyj := -0.25 * ((y0 + y1 + y5 + y4) - (y3 + y2 + y6 + y7))
		dzj := -0.25 * ((z0 + z1 + z5 + z4) - (z3 + z2 + z6 + z7))

		dxi := 0.25 * ((x1 + x2 + x6 + x5) - (x0 + x3 + x7 + x4))
		dyi := 0.25 * ((y1 + y2 + y6 + y5) - (y0 + y3 + y7 + y4))
		dzi := 0.25 * ((z1 + z2 + z6 + z5) - (z0 + z3 + z7 + z4))

		dxk := 0.25 * ((x4 + x5 + x6 + x7) - (x0 + x1 + x2 + x3))
		dyk := 0.25 * ((y4 + y5 + y6 + y7) - (y0 + y1 + y2 + y3))
		dzk := 0.25 * ((z4 + z5 + z6 + z7) - (z0 + z1 + z2 + z3))

		// find delvk and delxk ( i cross j )
		ax := dyi*dzj - dzi*dyj
		ay := dzi*dxj - dxi*dzj
		az := dxi*dyj - dyi*dxj

		d.DelxZeta[i] = vol / math.Sqrt(ax*ax+ay*ay+az*az+Ptiny)

		ax *= norm
		ay *= norm
		az *= norm

		dxv := 0.25 * ((xv4 + xv5 + xv6 + xv7) - (xv0 + xv1 + xv2 + xv3))
		dyv := 0.25 * ((yv4 + yv5 + yv6 + yv7) - (yv0 + yv1 + yv2 + yv3))
		dzv := 0.25 * ((zv4 + zv5 + zv6 + zv7) - (zv0 + zv1 + zv2 + zv3))

		d.DelvZeta[i] = ax*dxv + ay*dyv + az*dzv

		// find delxi and delvi ( j cross k )
		ax = dyj*dzk - dzj*dyk
		ay = dzj*dxk - dxj*dzk
		az = dxj*dyk - dyj*dxk

		d.DelxXi[i] = vol / math.Sqrt(ax*ax+ay*ay+az*az+Ptiny)

		ax *= norm
		ay *= norm
		az *= norm

		dxv = 0.25 * ((xv1 + xv2 + xv6 + xv5) - (xv0 + xv3 + xv7 + xv4))
		dyv = 0.25 * ((yv1 + yv2 + yv6 + yv5) - (yv0 + yv3 + yv7 + yv4))
		dzv = 0.25 * ((zv1 + zv2 + zv6 + zv5) - (zv0 + zv3 + zv7 + zv4))

		d.DelvXi[i] = ax*dxv + ay*dyv + az*dzv

		// find delxj and delvj ( k cross i )
		ax = dyk*dzi - dzk*dyi
		ay = dzk*dxi - dxk*dzi
		az = dxk*dyi - dyk*dxi

		d.DelxEta[i] = vol / math.Sqrt(ax*ax+ay*ay+az*az+Ptiny)

		ax *= norm
		ay *= norm
		az *= norm

		dxv = -0.25 * ((xv0 + xv1 + xv5 + xv4) - (xv3 + xv2 + xv6 + xv7))
		dyv = -0.25 * ((yv0 + yv1 + yv5 + yv4) - (yv3 + yv2 + yv6 + yv7))
		dzv = -0.25 * ((zv0 + zv1 + zv5 + zv4) - (zv3 + zv2 + zv6 + zv7))

		d.DelvEta[i] = ax*dxv + ay*dyv + az*dzv
	}
}

// MonoQRegion applies the monotonic slope limiter and computes the linear
// and quadratic artificial-viscosity terms for the elements
// regList[lo:hi] of one region (CalcMonotonicQRegionForElems).
func MonoQRegion(d *domain.Domain, regList []int32, lo, hi int) {
	p := &d.Par
	monoqLimiterMult := p.MonoqLimiterMult
	monoqMaxSlope := p.MonoqMaxSlope
	qlcMonoq := p.QlcMonoq
	qqcMonoq := p.QqcMonoq

	for ielem := lo; ielem < hi; ielem++ {
		i := regList[ielem]
		bcMask := d.Mesh.ElemBC[i]

		// phixi
		norm := 1.0 / (d.DelvXi[i] + Ptiny)
		var delvm, delvp float64
		switch bcMask & mesh.XiM {
		case mesh.XiMComm, 0:
			delvm = d.DelvXi[d.Mesh.Lxim[i]]
		case mesh.XiMSymm:
			delvm = d.DelvXi[i]
		case mesh.XiMFree:
			delvm = 0
		}
		switch bcMask & mesh.XiP {
		case mesh.XiPComm, 0:
			delvp = d.DelvXi[d.Mesh.Lxip[i]]
		case mesh.XiPSymm:
			delvp = d.DelvXi[i]
		case mesh.XiPFree:
			delvp = 0
		}
		delvm *= norm
		delvp *= norm
		phixi := 0.5 * (delvm + delvp)
		delvm *= monoqLimiterMult
		delvp *= monoqLimiterMult
		if delvm < phixi {
			phixi = delvm
		}
		if delvp < phixi {
			phixi = delvp
		}
		if phixi < 0 {
			phixi = 0
		}
		if phixi > monoqMaxSlope {
			phixi = monoqMaxSlope
		}

		// phieta
		norm = 1.0 / (d.DelvEta[i] + Ptiny)
		switch bcMask & mesh.EtaM {
		case mesh.EtaMComm, 0:
			delvm = d.DelvEta[d.Mesh.Letam[i]]
		case mesh.EtaMSymm:
			delvm = d.DelvEta[i]
		case mesh.EtaMFree:
			delvm = 0
		}
		switch bcMask & mesh.EtaP {
		case mesh.EtaPComm, 0:
			delvp = d.DelvEta[d.Mesh.Letap[i]]
		case mesh.EtaPSymm:
			delvp = d.DelvEta[i]
		case mesh.EtaPFree:
			delvp = 0
		}
		delvm *= norm
		delvp *= norm
		phieta := 0.5 * (delvm + delvp)
		delvm *= monoqLimiterMult
		delvp *= monoqLimiterMult
		if delvm < phieta {
			phieta = delvm
		}
		if delvp < phieta {
			phieta = delvp
		}
		if phieta < 0 {
			phieta = 0
		}
		if phieta > monoqMaxSlope {
			phieta = monoqMaxSlope
		}

		// phizeta
		norm = 1.0 / (d.DelvZeta[i] + Ptiny)
		switch bcMask & mesh.ZetaM {
		case mesh.ZetaMComm, 0:
			delvm = d.DelvZeta[d.Mesh.Lzetam[i]]
		case mesh.ZetaMSymm:
			delvm = d.DelvZeta[i]
		case mesh.ZetaMFree:
			delvm = 0
		}
		switch bcMask & mesh.ZetaP {
		case mesh.ZetaPComm, 0:
			delvp = d.DelvZeta[d.Mesh.Lzetap[i]]
		case mesh.ZetaPSymm:
			delvp = d.DelvZeta[i]
		case mesh.ZetaPFree:
			delvp = 0
		}
		delvm *= norm
		delvp *= norm
		phizeta := 0.5 * (delvm + delvp)
		delvm *= monoqLimiterMult
		delvp *= monoqLimiterMult
		if delvm < phizeta {
			phizeta = delvm
		}
		if delvp < phizeta {
			phizeta = delvp
		}
		if phizeta < 0 {
			phizeta = 0
		}
		if phizeta > monoqMaxSlope {
			phizeta = monoqMaxSlope
		}

		// Remove length scale.
		var qlin, qquad float64
		if d.Vdov[i] > 0 {
			qlin = 0
			qquad = 0
		} else {
			delvxxi := d.DelvXi[i] * d.DelxXi[i]
			delvxeta := d.DelvEta[i] * d.DelxEta[i]
			delvxzeta := d.DelvZeta[i] * d.DelxZeta[i]
			if delvxxi > 0 {
				delvxxi = 0
			}
			if delvxeta > 0 {
				delvxeta = 0
			}
			if delvxzeta > 0 {
				delvxzeta = 0
			}
			rho := d.ElemMass[i] / (d.Volo[i] * d.Vnew[i])
			qlin = -qlcMonoq * rho *
				(delvxxi*(1.0-phixi) + delvxeta*(1.0-phieta) + delvxzeta*(1.0-phizeta))
			qquad = qqcMonoq * rho *
				(delvxxi*delvxxi*(1.0-phixi*phixi) +
					delvxeta*delvxeta*(1.0-phieta*phieta) +
					delvxzeta*delvxzeta*(1.0-phizeta*phizeta))
		}
		d.Qq[i] = qquad
		d.Ql[i] = qlin
	}
}

// QStopCheck raises a qstop error if any artificial viscosity in [lo, hi)
// exceeds the stability threshold (the check at the end of CalcQForElems).
func QStopCheck(d *domain.Domain, lo, hi int, flag *Flag) {
	qstop := d.Par.QStop
	for i := lo; i < hi; i++ {
		if d.Q[i] > qstop {
			flag.RaiseQStop()
			return
		}
	}
}

// CopyVnewc copies the new relative volumes into the working array for
// elements [lo, hi) (start of ApplyMaterialPropertiesForElems).
func CopyVnewc(d *domain.Domain, vnewc []float64, lo, hi int) {
	copy(vnewc[lo:hi], d.Vnew[lo:hi])
}

// ClampVnewcLow applies the eosvmin floor to vnewc for elements [lo, hi).
func ClampVnewcLow(vnewc []float64, eosvmin float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		if vnewc[i] < eosvmin {
			vnewc[i] = eosvmin
		}
	}
}

// ClampVnewcHigh applies the eosvmax ceiling to vnewc for elements [lo, hi).
func ClampVnewcHigh(vnewc []float64, eosvmax float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		if vnewc[i] > eosvmax {
			vnewc[i] = eosvmax
		}
	}
}

// CheckVBounds raises a volume error if any (clamped) old relative volume
// in [lo, hi) is non-positive (the abort check in
// ApplyMaterialPropertiesForElems).
func CheckVBounds(d *domain.Domain, lo, hi int, flag *Flag) {
	eosvmin := d.Par.EOSvMin
	eosvmax := d.Par.EOSvMax
	for i := lo; i < hi; i++ {
		vc := d.V[i]
		if eosvmin != 0 && vc < eosvmin {
			vc = eosvmin
		}
		if eosvmax != 0 && vc > eosvmax {
			vc = eosvmax
		}
		if vc <= 0 {
			flag.RaiseVolume()
			return
		}
	}
}

// UpdateVolumes commits the new relative volumes for elements [lo, hi),
// snapping values within vCut of 1.0 (UpdateVolumesForElems).
func UpdateVolumes(d *domain.Domain, vCut float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		tmpV := d.Vnew[i]
		if math.Abs(tmpV-1.0) < vCut {
			tmpV = 1.0
		}
		d.V[i] = tmpV
	}
}
