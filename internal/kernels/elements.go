package kernels

import (
	"math"

	"lulesh/internal/domain"
	"lulesh/internal/mesh"
)

// Element update kernels: kinematics, strain rates, monotonic artificial
// viscosity, volume bookkeeping (the LagrangeElements phase).

// Ptiny is the tiny-denominator guard of the monotonic Q kernels.
const Ptiny = 1.0e-36

// CalcKinematics computes new element volumes, characteristic lengths and
// principal velocity gradients for elements [lo, hi)
// (CalcKinematicsForElems).
func CalcKinematics(d *domain.Domain, dt float64, lo, hi int) {
	volo := d.Volo[lo:hi]
	vnew := d.Vnew[lo:hi]
	delv := d.Delv[lo:hi]
	vold := d.V[lo:hi]
	arealg := d.Arealg[lo:hi]
	dxx := d.Dxx[lo:hi]
	dyy := d.Dyy[lo:hi]
	dzz := d.Dzz[lo:hi]
	xp, yp, zp := d.X, d.Y, d.Z
	xdp, ydp, zdp := d.Xd, d.Yd, d.Zd
	nodelist := d.Mesh.Nodelist
	var x, y, z [8]float64
	var xd, yd, zd [8]float64
	var b [3][8]float64
	var dvel [3]float64
	for i := range volo {
		nl := (*[8]int32)(nodelist[8*(lo+i):])
		gatherElemNodes(xp, yp, zp, nl, &x, &y, &z)

		volume := domain.ElemVolume(&x, &y, &z)
		relativeVolume := volume / volo[i]
		vnew[i] = relativeVolume
		delv[i] = relativeVolume - vold[i]
		arealg[i] = ElemCharacteristicLength(&x, &y, &z, volume)

		gatherElemNodes(xdp, ydp, zdp, nl, &xd, &yd, &zd)
		dt2 := 0.5 * dt
		for j := 0; j < 8; j++ {
			x[j] -= dt2 * xd[j]
			y[j] -= dt2 * yd[j]
			z[j] -= dt2 * zd[j]
		}
		detJ := ShapeFunctionDerivatives(&x, &y, &z, &b)
		ElemVelocityGradient(&xd, &yd, &zd, &b, detJ, &dvel)
		dxx[i] = dvel[0]
		dyy[i] = dvel[1]
		dzz[i] = dvel[2]
	}
}

// CalcStrainRate converts principal strains to deviatoric form and records
// vdov for elements [lo, hi), raising a volume error on non-positive new
// volumes (the second loop of CalcLagrangeElements).
func CalcStrainRate(d *domain.Domain, lo, hi int, flag *Flag) {
	dxx := d.Dxx[lo:hi]
	dyy := d.Dyy[lo:hi]
	dzz := d.Dzz[lo:hi]
	vdovOut := d.Vdov[lo:hi]
	vnew := d.Vnew[lo:hi]
	for i := range dxx {
		vdov := dxx[i] + dyy[i] + dzz[i]
		vdovthird := vdov / 3.0
		vdovOut[i] = vdov
		dxx[i] -= vdovthird
		dyy[i] -= vdovthird
		dzz[i] -= vdovthird
		if vnew[i] <= 0 {
			flag.RaiseVolume()
		}
	}
}

// MonoQGradients computes the velocity and position gradients used by the
// monotonic Q for elements [lo, hi) (CalcMonotonicQGradientsForElems).
func MonoQGradients(d *domain.Domain, lo, hi int) {
	volo := d.Volo[lo:hi]
	vnewv := d.Vnew[lo:hi]
	delxXi := d.DelxXi[lo:hi]
	delxEta := d.DelxEta[lo:hi]
	delxZeta := d.DelxZeta[lo:hi]
	delvXi := d.DelvXi[lo:hi]
	delvEta := d.DelvEta[lo:hi]
	delvZeta := d.DelvZeta[lo:hi]
	xp, yp, zp := d.X, d.Y, d.Z
	xdp, ydp, zdp := d.Xd, d.Yd, d.Zd
	nodelist := d.Mesh.Nodelist
	for i := range volo {
		nl := (*[8]int32)(nodelist[8*(lo+i):])
		n0, n1, n2, n3 := nl[0], nl[1], nl[2], nl[3]
		n4, n5, n6, n7 := nl[4], nl[5], nl[6], nl[7]

		x0, x1, x2, x3 := xp[n0], xp[n1], xp[n2], xp[n3]
		x4, x5, x6, x7 := xp[n4], xp[n5], xp[n6], xp[n7]
		y0, y1, y2, y3 := yp[n0], yp[n1], yp[n2], yp[n3]
		y4, y5, y6, y7 := yp[n4], yp[n5], yp[n6], yp[n7]
		z0, z1, z2, z3 := zp[n0], zp[n1], zp[n2], zp[n3]
		z4, z5, z6, z7 := zp[n4], zp[n5], zp[n6], zp[n7]

		xv0, xv1, xv2, xv3 := xdp[n0], xdp[n1], xdp[n2], xdp[n3]
		xv4, xv5, xv6, xv7 := xdp[n4], xdp[n5], xdp[n6], xdp[n7]
		yv0, yv1, yv2, yv3 := ydp[n0], ydp[n1], ydp[n2], ydp[n3]
		yv4, yv5, yv6, yv7 := ydp[n4], ydp[n5], ydp[n6], ydp[n7]
		zv0, zv1, zv2, zv3 := zdp[n0], zdp[n1], zdp[n2], zdp[n3]
		zv4, zv5, zv6, zv7 := zdp[n4], zdp[n5], zdp[n6], zdp[n7]

		vol := volo[i] * vnewv[i]
		norm := 1.0 / (vol + Ptiny)

		dxj := -0.25 * ((x0 + x1 + x5 + x4) - (x3 + x2 + x6 + x7))
		dyj := -0.25 * ((y0 + y1 + y5 + y4) - (y3 + y2 + y6 + y7))
		dzj := -0.25 * ((z0 + z1 + z5 + z4) - (z3 + z2 + z6 + z7))

		dxi := 0.25 * ((x1 + x2 + x6 + x5) - (x0 + x3 + x7 + x4))
		dyi := 0.25 * ((y1 + y2 + y6 + y5) - (y0 + y3 + y7 + y4))
		dzi := 0.25 * ((z1 + z2 + z6 + z5) - (z0 + z3 + z7 + z4))

		dxk := 0.25 * ((x4 + x5 + x6 + x7) - (x0 + x1 + x2 + x3))
		dyk := 0.25 * ((y4 + y5 + y6 + y7) - (y0 + y1 + y2 + y3))
		dzk := 0.25 * ((z4 + z5 + z6 + z7) - (z0 + z1 + z2 + z3))

		// find delvk and delxk ( i cross j )
		ax := dyi*dzj - dzi*dyj
		ay := dzi*dxj - dxi*dzj
		az := dxi*dyj - dyi*dxj

		delxZeta[i] = vol / math.Sqrt(ax*ax+ay*ay+az*az+Ptiny)

		ax *= norm
		ay *= norm
		az *= norm

		dxv := 0.25 * ((xv4 + xv5 + xv6 + xv7) - (xv0 + xv1 + xv2 + xv3))
		dyv := 0.25 * ((yv4 + yv5 + yv6 + yv7) - (yv0 + yv1 + yv2 + yv3))
		dzv := 0.25 * ((zv4 + zv5 + zv6 + zv7) - (zv0 + zv1 + zv2 + zv3))

		delvZeta[i] = ax*dxv + ay*dyv + az*dzv

		// find delxi and delvi ( j cross k )
		ax = dyj*dzk - dzj*dyk
		ay = dzj*dxk - dxj*dzk
		az = dxj*dyk - dyj*dxk

		delxXi[i] = vol / math.Sqrt(ax*ax+ay*ay+az*az+Ptiny)

		ax *= norm
		ay *= norm
		az *= norm

		dxv = 0.25 * ((xv1 + xv2 + xv6 + xv5) - (xv0 + xv3 + xv7 + xv4))
		dyv = 0.25 * ((yv1 + yv2 + yv6 + yv5) - (yv0 + yv3 + yv7 + yv4))
		dzv = 0.25 * ((zv1 + zv2 + zv6 + zv5) - (zv0 + zv3 + zv7 + zv4))

		delvXi[i] = ax*dxv + ay*dyv + az*dzv

		// find delxj and delvj ( k cross i )
		ax = dyk*dzi - dzk*dyi
		ay = dzk*dxi - dxk*dzi
		az = dxk*dyi - dyk*dxi

		delxEta[i] = vol / math.Sqrt(ax*ax+ay*ay+az*az+Ptiny)

		ax *= norm
		ay *= norm
		az *= norm

		dxv = -0.25 * ((xv0 + xv1 + xv5 + xv4) - (xv3 + xv2 + xv6 + xv7))
		dyv = -0.25 * ((yv0 + yv1 + yv5 + yv4) - (yv3 + yv2 + yv6 + yv7))
		dzv = -0.25 * ((zv0 + zv1 + zv5 + zv4) - (zv3 + zv2 + zv6 + zv7))

		delvEta[i] = ax*dxv + ay*dyv + az*dzv
	}
}

// MonoQRegion applies the monotonic slope limiter and computes the linear
// and quadratic artificial-viscosity terms for the elements
// regList[lo:hi] of one region (CalcMonotonicQRegionForElems).
func MonoQRegion(d *domain.Domain, regList []int32, lo, hi int) {
	p := &d.Par
	monoqLimiterMult := p.MonoqLimiterMult
	monoqMaxSlope := p.MonoqMaxSlope
	qlcMonoq := p.QlcMonoq
	qqcMonoq := p.QqcMonoq

	m := d.Mesh
	elemBC := m.ElemBC
	lxim, lxip := m.Lxim, m.Lxip
	letam, letap := m.Letam, m.Letap
	lzetam, lzetap := m.Lzetam, m.Lzetap
	delvXi, delvEta, delvZeta := d.DelvXi, d.DelvEta, d.DelvZeta
	delxXi, delxEta, delxZeta := d.DelxXi, d.DelxEta, d.DelxZeta
	vdovP, voloP, vnewP := d.Vdov, d.Volo, d.Vnew
	elemMass := d.ElemMass
	qqP, qlP := d.Qq, d.Ql

	for _, i := range regList[lo:hi] {
		bcMask := elemBC[i]

		// phixi
		norm := 1.0 / (delvXi[i] + Ptiny)
		var delvm, delvp float64
		switch bcMask & mesh.XiM {
		case mesh.XiMComm, 0:
			delvm = delvXi[lxim[i]]
		case mesh.XiMSymm:
			delvm = delvXi[i]
		case mesh.XiMFree:
			delvm = 0
		}
		switch bcMask & mesh.XiP {
		case mesh.XiPComm, 0:
			delvp = delvXi[lxip[i]]
		case mesh.XiPSymm:
			delvp = delvXi[i]
		case mesh.XiPFree:
			delvp = 0
		}
		delvm *= norm
		delvp *= norm
		phixi := 0.5 * (delvm + delvp)
		delvm *= monoqLimiterMult
		delvp *= monoqLimiterMult
		if delvm < phixi {
			phixi = delvm
		}
		if delvp < phixi {
			phixi = delvp
		}
		if phixi < 0 {
			phixi = 0
		}
		if phixi > monoqMaxSlope {
			phixi = monoqMaxSlope
		}

		// phieta
		norm = 1.0 / (delvEta[i] + Ptiny)
		switch bcMask & mesh.EtaM {
		case mesh.EtaMComm, 0:
			delvm = delvEta[letam[i]]
		case mesh.EtaMSymm:
			delvm = delvEta[i]
		case mesh.EtaMFree:
			delvm = 0
		}
		switch bcMask & mesh.EtaP {
		case mesh.EtaPComm, 0:
			delvp = delvEta[letap[i]]
		case mesh.EtaPSymm:
			delvp = delvEta[i]
		case mesh.EtaPFree:
			delvp = 0
		}
		delvm *= norm
		delvp *= norm
		phieta := 0.5 * (delvm + delvp)
		delvm *= monoqLimiterMult
		delvp *= monoqLimiterMult
		if delvm < phieta {
			phieta = delvm
		}
		if delvp < phieta {
			phieta = delvp
		}
		if phieta < 0 {
			phieta = 0
		}
		if phieta > monoqMaxSlope {
			phieta = monoqMaxSlope
		}

		// phizeta
		norm = 1.0 / (delvZeta[i] + Ptiny)
		switch bcMask & mesh.ZetaM {
		case mesh.ZetaMComm, 0:
			delvm = delvZeta[lzetam[i]]
		case mesh.ZetaMSymm:
			delvm = delvZeta[i]
		case mesh.ZetaMFree:
			delvm = 0
		}
		switch bcMask & mesh.ZetaP {
		case mesh.ZetaPComm, 0:
			delvp = delvZeta[lzetap[i]]
		case mesh.ZetaPSymm:
			delvp = delvZeta[i]
		case mesh.ZetaPFree:
			delvp = 0
		}
		delvm *= norm
		delvp *= norm
		phizeta := 0.5 * (delvm + delvp)
		delvm *= monoqLimiterMult
		delvp *= monoqLimiterMult
		if delvm < phizeta {
			phizeta = delvm
		}
		if delvp < phizeta {
			phizeta = delvp
		}
		if phizeta < 0 {
			phizeta = 0
		}
		if phizeta > monoqMaxSlope {
			phizeta = monoqMaxSlope
		}

		// Remove length scale.
		var qlin, qquad float64
		if vdovP[i] > 0 {
			qlin = 0
			qquad = 0
		} else {
			delvxxi := delvXi[i] * delxXi[i]
			delvxeta := delvEta[i] * delxEta[i]
			delvxzeta := delvZeta[i] * delxZeta[i]
			if delvxxi > 0 {
				delvxxi = 0
			}
			if delvxeta > 0 {
				delvxeta = 0
			}
			if delvxzeta > 0 {
				delvxzeta = 0
			}
			rho := elemMass[i] / (voloP[i] * vnewP[i])
			qlin = -qlcMonoq * rho *
				(delvxxi*(1.0-phixi) + delvxeta*(1.0-phieta) + delvxzeta*(1.0-phizeta))
			qquad = qqcMonoq * rho *
				(delvxxi*delvxxi*(1.0-phixi*phixi) +
					delvxeta*delvxeta*(1.0-phieta*phieta) +
					delvxzeta*delvxzeta*(1.0-phizeta*phizeta))
		}
		qqP[i] = qquad
		qlP[i] = qlin
	}
}

// QStopCheck raises a qstop error if any artificial viscosity in [lo, hi)
// exceeds the stability threshold (the check at the end of CalcQForElems).
func QStopCheck(d *domain.Domain, lo, hi int, flag *Flag) {
	qstop := d.Par.QStop
	for _, q := range d.Q[lo:hi] {
		if q > qstop {
			flag.RaiseQStop()
			return
		}
	}
}

// CopyVnewc copies the new relative volumes into the working array for
// elements [lo, hi) (start of ApplyMaterialPropertiesForElems).
func CopyVnewc(d *domain.Domain, vnewc []float64, lo, hi int) {
	copy(vnewc[lo:hi], d.Vnew[lo:hi])
}

// ClampVnewcLow applies the eosvmin floor to vnewc for elements [lo, hi).
func ClampVnewcLow(vnewc []float64, eosvmin float64, lo, hi int) {
	v := vnewc[lo:hi]
	for i := range v {
		if v[i] < eosvmin {
			v[i] = eosvmin
		}
	}
}

// ClampVnewcHigh applies the eosvmax ceiling to vnewc for elements [lo, hi).
func ClampVnewcHigh(vnewc []float64, eosvmax float64, lo, hi int) {
	v := vnewc[lo:hi]
	for i := range v {
		if v[i] > eosvmax {
			v[i] = eosvmax
		}
	}
}

// CheckVBounds raises a volume error if any (clamped) old relative volume
// in [lo, hi) is non-positive (the abort check in
// ApplyMaterialPropertiesForElems).
func CheckVBounds(d *domain.Domain, lo, hi int, flag *Flag) {
	eosvmin := d.Par.EOSvMin
	eosvmax := d.Par.EOSvMax
	for _, vc := range d.V[lo:hi] {
		if eosvmin != 0 && vc < eosvmin {
			vc = eosvmin
		}
		if eosvmax != 0 && vc > eosvmax {
			vc = eosvmax
		}
		if vc <= 0 {
			flag.RaiseVolume()
			return
		}
	}
}

// UpdateVolumes commits the new relative volumes for elements [lo, hi),
// snapping values within vCut of 1.0 (UpdateVolumesForElems).
func UpdateVolumes(d *domain.Domain, vCut float64, lo, hi int) {
	vnew := d.Vnew[lo:hi]
	v := d.V[lo:hi]
	for i := range vnew {
		tmpV := vnew[i]
		if math.Abs(tmpV-1.0) < vCut {
			tmpV = 1.0
		}
		v[i] = tmpV
	}
}
