package kernels

import (
	"testing"

	"lulesh/internal/domain"
)

func TestArenaTakeCarvesDisjointViews(t *testing.T) {
	a := NewArena(10)
	x := a.Take(4)
	y := a.Take(6)
	if len(x) != 4 || len(y) != 6 {
		t.Fatalf("lengths: got %d, %d", len(x), len(y))
	}
	for i := range x {
		x[i] = 1
	}
	for i := range y {
		y[i] = 2
	}
	for i, v := range x {
		if v != 1 {
			t.Fatalf("x[%d] clobbered: %v", i, v)
		}
	}
	// Capacity-capped views: an append through one plane must not bleed
	// into its neighbour.
	x = append(x, 99)
	if y[0] != 2 {
		t.Fatalf("append through x bled into y: %v", y[0])
	}
}

func TestArenaResetRecarvesSameBacking(t *testing.T) {
	a := NewArena(8)
	x1 := a.Take(8)
	x1[0] = 42
	a.Reset()
	x2 := a.Take(8)
	if &x1[0] != &x2[0] {
		t.Fatal("Reset should recycle the same backing store")
	}
	if x2[0] != 42 {
		t.Fatal("Reset must not zero the backing")
	}
	if a.Allocs() != 1 {
		t.Fatalf("allocs = %d, want 1 (initial only)", a.Allocs())
	}
}

func TestArenaGrowOnlyOnShortfall(t *testing.T) {
	a := NewArena(4)
	base := a.Allocs()
	a.Grow(3) // fits: no new backing
	if a.Allocs() != base {
		t.Fatalf("Grow within capacity reallocated (allocs %d -> %d)", base, a.Allocs())
	}
	a.Grow(16)
	if a.Allocs() != base+1 {
		t.Fatalf("Grow beyond capacity: allocs = %d, want %d", a.Allocs(), base+1)
	}
	if a.Cap() < 16 {
		t.Fatalf("Cap = %d, want >= 16", a.Cap())
	}
	// Take past the end must still hand out a valid view.
	a.Reset()
	_ = a.Take(10)
	v := a.Take(10)
	if len(v) != 10 {
		t.Fatalf("overflow Take length = %d", len(v))
	}
}

// TestEvalEOSSteadyStateAllocs locks in the arena optimization: once the
// scratch is sized for the largest region, repeated EvalEOS calls — the
// per-timestep steady state — must not allocate at all.
func TestEvalEOSSteadyStateAllocs(t *testing.T) {
	d := domain.NewSedov(domain.Config{EdgeElems: 6, NumReg: 11, Balance: 1, Cost: 1})
	maxReg := 0
	for _, l := range d.Regions.ElemList {
		if len(l) > maxReg {
			maxReg = len(l)
		}
	}
	s := NewEOSScratch(maxReg)
	vnewc := make([]float64, d.NumElem())
	copy(vnewc, d.V)

	if got := s.Allocs(); got != 1 {
		t.Fatalf("scratch setup allocs = %d, want 1", got)
	}
	avg := testing.AllocsPerRun(10, func() {
		for r, regList := range d.Regions.ElemList {
			EvalEOS(d, vnewc, regList, s, d.Regions.Rep(r), 0, len(regList))
		}
	})
	if avg != 0 {
		t.Fatalf("EvalEOS steady state allocates %.1f objects per sweep, want 0", avg)
	}
	if got := s.Allocs(); got != 1 {
		t.Fatalf("scratch backing reallocated in steady state: allocs = %d", got)
	}
}

// TestEOSScratchReuseBitwise proves recycling dirty scratch across region
// sweeps is safe: a pooled scratch left dirty by a full sweep must produce
// the same domain state as a fresh scratch per sweep, bit for bit.
func TestEOSScratchReuseBitwise(t *testing.T) {
	build := func() (*domain.Domain, []float64) {
		d := domain.NewSedov(domain.Config{EdgeElems: 5, NumReg: 7, Balance: 1, Cost: 3})
		// Perturb state so the EOS has real work on every element.
		for e := 0; e < d.NumElem(); e++ {
			d.E[e] = float64(e%13) * 1e-3
			d.Delv[e] = float64(e%7-3) * 1e-5
			d.Q[e] = float64(e%5) * 1e-4
		}
		vnewc := make([]float64, d.NumElem())
		for e := range vnewc {
			vnewc[e] = 1.0 + float64(e%11-5)*1e-6
		}
		return d, vnewc
	}

	sweep := func(d *domain.Domain, vnewc []float64, s *EOSScratch) {
		for r, regList := range d.Regions.ElemList {
			EvalEOS(d, vnewc, regList, s, d.Regions.Rep(r), 0, len(regList))
		}
	}

	dPool, vPool := build()
	pooled := NewEOSScratch(1) // deliberately undersized: Ensure must grow it
	for iter := 0; iter < 3; iter++ {
		sweep(dPool, vPool, pooled)
	}

	dFresh, vFresh := build()
	for iter := 0; iter < 3; iter++ {
		sweep(dFresh, vFresh, NewEOSScratch(dFresh.NumElem()))
	}

	for e := 0; e < dPool.NumElem(); e++ {
		if dPool.P[e] != dFresh.P[e] || dPool.E[e] != dFresh.E[e] ||
			dPool.Q[e] != dFresh.Q[e] || dPool.SS[e] != dFresh.SS[e] {
			t.Fatalf("element %d diverged with pooled scratch: p %v vs %v, e %v vs %v",
				e, dPool.P[e], dFresh.P[e], dPool.E[e], dFresh.E[e])
		}
	}
}
