package kernels

import (
	"math"
	"math/rand"
	"testing"

	"lulesh/internal/domain"
)

func unitCube() (x, y, z [8]float64) {
	coords := [8][3]float64{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
	}
	for c := 0; c < 8; c++ {
		x[c], y[c], z[c] = coords[c][0], coords[c][1], coords[c][2]
	}
	return
}

// perturbedCube returns a mildly distorted hexahedron that is still convex.
func perturbedCube(rng *rand.Rand, eps float64) (x, y, z [8]float64) {
	x, y, z = unitCube()
	for c := 0; c < 8; c++ {
		x[c] += eps * (rng.Float64() - 0.5)
		y[c] += eps * (rng.Float64() - 0.5)
		z[c] += eps * (rng.Float64() - 0.5)
	}
	return
}

func TestShapeFunctionDerivativesVolumeCube(t *testing.T) {
	x, y, z := unitCube()
	var b [3][8]float64
	v := ShapeFunctionDerivatives(&x, &y, &z, &b)
	if math.Abs(v-1.0) > 1e-14 {
		t.Fatalf("jacobian volume = %v, want 1", v)
	}
}

func TestShapeFunctionDerivativesMatchVolumeForBoxes(t *testing.T) {
	// For affine elements the Jacobian determinant equals the exact
	// hexahedron volume.
	x, y, z := unitCube()
	for i := 0; i < 8; i++ {
		x[i] = 2*x[i] + 0.5*y[i] // sheared, scaled box
		y[i] *= 3
		z[i] *= 0.25
	}
	var b [3][8]float64
	v := ShapeFunctionDerivatives(&x, &y, &z, &b)
	want := domain.ElemVolume(&x, &y, &z)
	if math.Abs(v-want) > 1e-12*math.Abs(want) {
		t.Fatalf("jacobian volume = %v, triple-product volume = %v", v, want)
	}
}

func TestShapeFunctionDerivativesGradientProperty(t *testing.T) {
	// b[d][n] / volume approximates the gradient of node n's shape
	// function, so sum_n b[d][n] = 0 (partition of unity) and
	// sum_n b[d][n] * coord_e[n] = volume * delta_de (linear completeness).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		x, y, z := perturbedCube(rng, 0.2)
		var b [3][8]float64
		v := ShapeFunctionDerivatives(&x, &y, &z, &b)
		for dim := 0; dim < 3; dim++ {
			sum := 0.0
			for n := 0; n < 8; n++ {
				sum += b[dim][n]
			}
			if math.Abs(sum) > 1e-12 {
				t.Fatalf("partition of unity violated: dim %d sum %v", dim, sum)
			}
		}
		coords := [3]*[8]float64{&x, &y, &z}
		for dim := 0; dim < 3; dim++ {
			for e := 0; e < 3; e++ {
				dot := 0.0
				for n := 0; n < 8; n++ {
					dot += b[dim][n] * coords[e][n]
				}
				want := 0.0
				if dim == e {
					want = v
				}
				if math.Abs(dot-want) > 1e-9*math.Max(1, math.Abs(v)) {
					t.Fatalf("linear completeness violated: b[%d]·%d = %v, want %v",
						dim, e, dot, want)
				}
			}
		}
	}
}

func TestElemNodeNormalsClosedSurface(t *testing.T) {
	// The outward area normals of a closed polyhedron sum to zero.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		x, y, z := perturbedCube(rng, 0.3)
		var pfx, pfy, pfz [8]float64
		ElemNodeNormals(&pfx, &pfy, &pfz, &x, &y, &z)
		var sx, sy, sz float64
		for n := 0; n < 8; n++ {
			sx += pfx[n]
			sy += pfy[n]
			sz += pfz[n]
		}
		if math.Abs(sx) > 1e-12 || math.Abs(sy) > 1e-12 || math.Abs(sz) > 1e-12 {
			t.Fatalf("normals sum to (%v,%v,%v), want 0", sx, sy, sz)
		}
	}
}

func TestElemNodeNormalsUnitCubeValues(t *testing.T) {
	// Each unit-cube face has area 1 split over 4 corners (0.25 each);
	// every node touches one face per axis, so |pf| = 0.25 per axis with
	// sign matching the outward direction.
	x, y, z := unitCube()
	var pfx, pfy, pfz [8]float64
	ElemNodeNormals(&pfx, &pfy, &pfz, &x, &y, &z)
	for n := 0; n < 8; n++ {
		wantX := -0.25
		if x[n] == 1 {
			wantX = 0.25
		}
		wantY := -0.25
		if y[n] == 1 {
			wantY = 0.25
		}
		wantZ := -0.25
		if z[n] == 1 {
			wantZ = 0.25
		}
		if math.Abs(pfx[n]-wantX) > 1e-14 ||
			math.Abs(pfy[n]-wantY) > 1e-14 ||
			math.Abs(pfz[n]-wantZ) > 1e-14 {
			t.Fatalf("node %d normal (%v,%v,%v), want (%v,%v,%v)",
				n, pfx[n], pfy[n], pfz[n], wantX, wantY, wantZ)
		}
	}
}

func TestSumElemStressesToNodeForces(t *testing.T) {
	var b [3][8]float64
	for n := 0; n < 8; n++ {
		b[0][n] = float64(n + 1)
		b[1][n] = float64(n) * 2
		b[2][n] = -float64(n)
	}
	var fx, fy, fz [8]float64
	SumElemStressesToNodeForces(&b, 2.0, 3.0, -1.0, &fx, &fy, &fz)
	for n := 0; n < 8; n++ {
		if fx[n] != -2.0*b[0][n] || fy[n] != -3.0*b[1][n] || fz[n] != 1.0*b[2][n] {
			t.Fatalf("node %d forces (%v,%v,%v)", n, fx[n], fy[n], fz[n])
		}
	}
}

func TestElemCharacteristicLengthUnitCube(t *testing.T) {
	x, y, z := unitCube()
	if l := ElemCharacteristicLength(&x, &y, &z, 1.0); math.Abs(l-1.0) > 1e-12 {
		t.Fatalf("unit cube characteristic length = %v, want 1", l)
	}
}

func TestElemCharacteristicLengthScales(t *testing.T) {
	x, y, z := unitCube()
	h := 0.37
	for i := 0; i < 8; i++ {
		x[i] *= h
		y[i] *= h
		z[i] *= h
	}
	if l := ElemCharacteristicLength(&x, &y, &z, h*h*h); math.Abs(l-h) > 1e-12 {
		t.Fatalf("scaled cube characteristic length = %v, want %v", l, h)
	}
}

func TestElemVelocityGradientUniformExpansion(t *testing.T) {
	// v = (ax, by, cz) gives principal gradients (a, b, c).
	x, y, z := unitCube()
	a, bb, c := 0.5, -0.25, 1.5
	var xd, yd, zd [8]float64
	for n := 0; n < 8; n++ {
		xd[n] = a * x[n]
		yd[n] = bb * y[n]
		zd[n] = c * z[n]
	}
	var b [3][8]float64
	detJ := ShapeFunctionDerivatives(&x, &y, &z, &b)
	var d [3]float64
	ElemVelocityGradient(&xd, &yd, &zd, &b, detJ, &d)
	if math.Abs(d[0]-a) > 1e-12 || math.Abs(d[1]-bb) > 1e-12 || math.Abs(d[2]-c) > 1e-12 {
		t.Fatalf("gradient = %v, want (%v,%v,%v)", d, a, bb, c)
	}
}

func TestElemVelocityGradientRigidTranslation(t *testing.T) {
	x, y, z := unitCube()
	var xd, yd, zd [8]float64
	for n := 0; n < 8; n++ {
		xd[n], yd[n], zd[n] = 3, -2, 7
	}
	var b [3][8]float64
	detJ := ShapeFunctionDerivatives(&x, &y, &z, &b)
	var d [3]float64
	ElemVelocityGradient(&xd, &yd, &zd, &b, detJ, &d)
	for i := 0; i < 3; i++ {
		if math.Abs(d[i]) > 1e-12 {
			t.Fatalf("rigid translation produced gradient %v", d)
		}
	}
}

func TestElemVolumeDerivativeFiniteDifference(t *testing.T) {
	// dvdx[n] must equal dV/dx_n; verify against central differences on
	// random distorted hexahedra.
	rng := rand.New(rand.NewSource(11))
	const h = 1e-6
	for trial := 0; trial < 20; trial++ {
		x, y, z := perturbedCube(rng, 0.2)
		var dvdx, dvdy, dvdz [8]float64
		ElemVolumeDerivative(&dvdx, &dvdy, &dvdz, &x, &y, &z)
		for n := 0; n < 8; n++ {
			check := func(coord *[8]float64, got float64, name string) {
				orig := coord[n]
				coord[n] = orig + h
				vp := domain.ElemVolume(&x, &y, &z)
				coord[n] = orig - h
				vm := domain.ElemVolume(&x, &y, &z)
				coord[n] = orig
				fd := (vp - vm) / (2 * h)
				if math.Abs(fd-got) > 1e-6 {
					t.Fatalf("trial %d node %d %s: analytic %v vs FD %v",
						trial, n, name, got, fd)
				}
			}
			check(&x, dvdx[n], "dvdx")
			check(&y, dvdy[n], "dvdy")
			check(&z, dvdz[n], "dvdz")
		}
	}
}

func TestFBHourglassForceZeroForLinearField(t *testing.T) {
	// The hourglass shape vectors are orthogonal to linear velocity
	// fields; a rigid or linear motion must produce zero hourglass force.
	x, y, z := unitCube()
	var dvdx, dvdy, dvdz [8]float64
	ElemVolumeDerivative(&dvdx, &dvdy, &dvdz, &x, &y, &z)
	volinv := 1.0
	var hourgam [8][4]float64
	for i1 := 0; i1 < 4; i1++ {
		var hmx, hmy, hmz float64
		for n := 0; n < 8; n++ {
			hmx += x[n] * gamma[i1][n]
			hmy += y[n] * gamma[i1][n]
			hmz += z[n] * gamma[i1][n]
		}
		for n := 0; n < 8; n++ {
			hourgam[n][i1] = gamma[i1][n] - volinv*(dvdx[n]*hmx+dvdy[n]*hmy+dvdz[n]*hmz)
		}
	}
	// Linear velocity field v = A·r + b.
	var xd, yd, zd [8]float64
	for n := 0; n < 8; n++ {
		xd[n] = 1.5*x[n] - 0.5*y[n] + 2*z[n] + 3
		yd[n] = 0.25*x[n] + y[n] - z[n] - 1
		zd[n] = -x[n] + 0.75*y[n] + 0.1*z[n] + 0.5
	}
	var hgfx, hgfy, hgfz [8]float64
	ElemFBHourglassForce(&xd, &yd, &zd, &hourgam, 1.0, &hgfx, &hgfy, &hgfz)
	for n := 0; n < 8; n++ {
		if math.Abs(hgfx[n]) > 1e-12 || math.Abs(hgfy[n]) > 1e-12 || math.Abs(hgfz[n]) > 1e-12 {
			t.Fatalf("linear field produced hourglass force at node %d: (%v,%v,%v)",
				n, hgfx[n], hgfy[n], hgfz[n])
		}
	}
}

func TestFBHourglassForceResistsHourglassMode(t *testing.T) {
	// A velocity field proportional to an hourglass mode must produce a
	// force opposing it (negative coefficient => force opposite velocity).
	x, y, z := unitCube()
	var dvdx, dvdy, dvdz [8]float64
	ElemVolumeDerivative(&dvdx, &dvdy, &dvdz, &x, &y, &z)
	var hourgam [8][4]float64
	for i1 := 0; i1 < 4; i1++ {
		var hmx, hmy, hmz float64
		for n := 0; n < 8; n++ {
			hmx += x[n] * gamma[i1][n]
			hmy += y[n] * gamma[i1][n]
			hmz += z[n] * gamma[i1][n]
		}
		for n := 0; n < 8; n++ {
			hourgam[n][i1] = gamma[i1][n] - (dvdx[n]*hmx + dvdy[n]*hmy + dvdz[n]*hmz)
		}
	}
	var xd, yd, zd [8]float64
	for n := 0; n < 8; n++ {
		xd[n] = gamma[0][n] // pure hourglass mode in x
	}
	var hgfx, hgfy, hgfz [8]float64
	ElemFBHourglassForce(&xd, &yd, &zd, &hourgam, -1.0, &hgfx, &hgfy, &hgfz)
	dot := 0.0
	for n := 0; n < 8; n++ {
		dot += hgfx[n] * xd[n]
	}
	if dot >= 0 {
		t.Fatalf("hourglass force does not oppose the mode: dot = %v", dot)
	}
	for n := 0; n < 8; n++ {
		if hgfy[n] != 0 || hgfz[n] != 0 {
			t.Fatalf("x-mode produced cross-axis force at node %d", n)
		}
	}
}

func TestGammaModesOrthogonalToLinear(t *testing.T) {
	// Each gamma vector sums to zero and is orthogonal to the reference
	// cube coordinates (the defining property of hourglass modes).
	x, y, z := unitCube()
	for i1 := 0; i1 < 4; i1++ {
		var sum, dx, dy, dz float64
		for n := 0; n < 8; n++ {
			sum += gamma[i1][n]
			dx += gamma[i1][n] * (x[n] - 0.5)
			dy += gamma[i1][n] * (y[n] - 0.5)
			dz += gamma[i1][n] * (z[n] - 0.5)
		}
		if sum != 0 || dx != 0 || dy != 0 || dz != 0 {
			t.Fatalf("gamma[%d] not orthogonal: sum=%v dot=(%v,%v,%v)",
				i1, sum, dx, dy, dz)
		}
	}
}

func TestAreaFaceUnitSquare(t *testing.T) {
	// areaFace returns 16*A^2 for a planar quadrilateral of area A.
	a := areaFace(0, 1, 1, 0, 0, 0, 1, 1, 0, 0, 0, 0)
	if math.Abs(a-16.0) > 1e-12 {
		t.Fatalf("unit square face metric = %v, want 16", a)
	}
}
