// Package kernels contains the computational kernels of LULESH 2.0, ported
// function-for-function from the reference implementation. Two layers are
// exposed:
//
//   - element-local micro-kernels (this file and hourglass.go) operating on
//     fixed-size [8]float64 corner arrays, and
//   - range kernels (force.go, nodal.go, elements.go, eos.go,
//     constraints.go) operating on half-open index ranges [lo, hi) of a
//     Domain, so that every parallel backend — fork-join, naive task, or the
//     paper's many-task approach — can impose its own partitioning without
//     duplicating physics.
//
// All loop bodies, constants and even floating-point operation orders match
// LULESH 2.0, which makes results bitwise comparable across backends and
// thread counts.
package kernels

import "math"

// ShapeFunctionDerivatives computes the shape-function derivative matrix
// b[3][8] and the element volume (determinant) from the corner coordinates,
// replicating CalcElemShapeFunctionDerivatives.
func ShapeFunctionDerivatives(x, y, z *[8]float64, b *[3][8]float64) (volume float64) {
	fjxxi := 0.125 * ((x[6] - x[0]) + (x[5] - x[3]) - (x[7] - x[1]) - (x[4] - x[2]))
	fjxet := 0.125 * ((x[6] - x[0]) - (x[5] - x[3]) + (x[7] - x[1]) - (x[4] - x[2]))
	fjxze := 0.125 * ((x[6] - x[0]) + (x[5] - x[3]) + (x[7] - x[1]) + (x[4] - x[2]))

	fjyxi := 0.125 * ((y[6] - y[0]) + (y[5] - y[3]) - (y[7] - y[1]) - (y[4] - y[2]))
	fjyet := 0.125 * ((y[6] - y[0]) - (y[5] - y[3]) + (y[7] - y[1]) - (y[4] - y[2]))
	fjyze := 0.125 * ((y[6] - y[0]) + (y[5] - y[3]) + (y[7] - y[1]) + (y[4] - y[2]))

	fjzxi := 0.125 * ((z[6] - z[0]) + (z[5] - z[3]) - (z[7] - z[1]) - (z[4] - z[2]))
	fjzet := 0.125 * ((z[6] - z[0]) - (z[5] - z[3]) + (z[7] - z[1]) - (z[4] - z[2]))
	fjzze := 0.125 * ((z[6] - z[0]) + (z[5] - z[3]) + (z[7] - z[1]) + (z[4] - z[2]))

	// Cofactors of the Jacobian.
	cjxxi := (fjyet * fjzze) - (fjzet * fjyze)
	cjxet := -(fjyxi * fjzze) + (fjzxi * fjyze)
	cjxze := (fjyxi * fjzet) - (fjzxi * fjyet)

	cjyxi := -(fjxet * fjzze) + (fjzet * fjxze)
	cjyet := (fjxxi * fjzze) - (fjzxi * fjxze)
	cjyze := -(fjxxi * fjzet) + (fjzxi * fjxet)

	cjzxi := (fjxet * fjyze) - (fjyet * fjxze)
	cjzet := -(fjxxi * fjyze) + (fjyxi * fjxze)
	cjzze := (fjxxi * fjyet) - (fjyxi * fjxet)

	// Partials for nodes 0..3; (4..7) follow by symmetry.
	b[0][0] = -cjxxi - cjxet - cjxze
	b[0][1] = cjxxi - cjxet - cjxze
	b[0][2] = cjxxi + cjxet - cjxze
	b[0][3] = -cjxxi + cjxet - cjxze
	b[0][4] = -b[0][2]
	b[0][5] = -b[0][3]
	b[0][6] = -b[0][0]
	b[0][7] = -b[0][1]

	b[1][0] = -cjyxi - cjyet - cjyze
	b[1][1] = cjyxi - cjyet - cjyze
	b[1][2] = cjyxi + cjyet - cjyze
	b[1][3] = -cjyxi + cjyet - cjyze
	b[1][4] = -b[1][2]
	b[1][5] = -b[1][3]
	b[1][6] = -b[1][0]
	b[1][7] = -b[1][1]

	b[2][0] = -cjzxi - cjzet - cjzze
	b[2][1] = cjzxi - cjzet - cjzze
	b[2][2] = cjzxi + cjzet - cjzze
	b[2][3] = -cjzxi + cjzet - cjzze
	b[2][4] = -b[2][2]
	b[2][5] = -b[2][3]
	b[2][6] = -b[2][0]
	b[2][7] = -b[2][1]

	return 8.0 * (fjxet*cjxet + fjyet*cjyet + fjzet*cjzet)
}

// sumElemFaceNormal adds one face's area contribution to the normals of the
// four face corners (SumElemFaceNormal).
func sumElemFaceNormal(pfx, pfy, pfz *[8]float64, n0, n1, n2, n3 int,
	x, y, z *[8]float64) {

	bisectX0 := 0.5 * (x[n3] + x[n2] - x[n1] - x[n0])
	bisectY0 := 0.5 * (y[n3] + y[n2] - y[n1] - y[n0])
	bisectZ0 := 0.5 * (z[n3] + z[n2] - z[n1] - z[n0])
	bisectX1 := 0.5 * (x[n2] + x[n1] - x[n3] - x[n0])
	bisectY1 := 0.5 * (y[n2] + y[n1] - y[n3] - y[n0])
	bisectZ1 := 0.5 * (z[n2] + z[n1] - z[n3] - z[n0])
	areaX := 0.25 * (bisectY0*bisectZ1 - bisectZ0*bisectY1)
	areaY := 0.25 * (bisectZ0*bisectX1 - bisectX0*bisectZ1)
	areaZ := 0.25 * (bisectX0*bisectY1 - bisectY0*bisectX1)

	pfx[n0] += areaX
	pfx[n1] += areaX
	pfx[n2] += areaX
	pfx[n3] += areaX
	pfy[n0] += areaY
	pfy[n1] += areaY
	pfy[n2] += areaY
	pfy[n3] += areaY
	pfz[n0] += areaZ
	pfz[n1] += areaZ
	pfz[n2] += areaZ
	pfz[n3] += areaZ
}

// ElemNodeNormals computes the area-weighted node normals of an element by
// summing its six face normals (CalcElemNodeNormals).
func ElemNodeNormals(pfx, pfy, pfz *[8]float64, x, y, z *[8]float64) {
	for i := 0; i < 8; i++ {
		pfx[i] = 0
		pfy[i] = 0
		pfz[i] = 0
	}
	sumElemFaceNormal(pfx, pfy, pfz, 0, 1, 2, 3, x, y, z)
	sumElemFaceNormal(pfx, pfy, pfz, 0, 4, 5, 1, x, y, z)
	sumElemFaceNormal(pfx, pfy, pfz, 1, 5, 6, 2, x, y, z)
	sumElemFaceNormal(pfx, pfy, pfz, 2, 6, 7, 3, x, y, z)
	sumElemFaceNormal(pfx, pfy, pfz, 3, 7, 4, 0, x, y, z)
	sumElemFaceNormal(pfx, pfy, pfz, 4, 7, 6, 5, x, y, z)
}

// SumElemStressesToNodeForces turns the stress components and node normals
// into per-corner force contributions (SumElemStressesToNodeForces).
func SumElemStressesToNodeForces(b *[3][8]float64, stressXX, stressYY, stressZZ float64,
	fx, fy, fz *[8]float64) {
	for i := 0; i < 8; i++ {
		fx[i] = -stressXX * b[0][i]
		fy[i] = -stressYY * b[1][i]
		fz[i] = -stressZZ * b[2][i]
	}
}

// areaFace computes the squared-area metric of one quadrilateral face used
// by the characteristic-length calculation (AreaFace).
func areaFace(x0, x1, x2, x3, y0, y1, y2, y3, z0, z1, z2, z3 float64) float64 {
	fx := (x2 - x0) - (x3 - x1)
	fy := (y2 - y0) - (y3 - y1)
	fz := (z2 - z0) - (z3 - z1)
	gx := (x2 - x0) + (x3 - x1)
	gy := (y2 - y0) + (y3 - y1)
	gz := (z2 - z0) + (z3 - z1)
	return (fx*fx+fy*fy+fz*fz)*(gx*gx+gy*gy+gz*gz) -
		(fx*gx+fy*gy+fz*gz)*(fx*gx+fy*gy+fz*gz)
}

// ElemCharacteristicLength computes the element characteristic length from
// its corner coordinates and volume (CalcElemCharacteristicLength).
func ElemCharacteristicLength(x, y, z *[8]float64, volume float64) float64 {
	charLength := 0.0
	a := areaFace(x[0], x[1], x[2], x[3], y[0], y[1], y[2], y[3], z[0], z[1], z[2], z[3])
	charLength = math.Max(a, charLength)
	a = areaFace(x[4], x[5], x[6], x[7], y[4], y[5], y[6], y[7], z[4], z[5], z[6], z[7])
	charLength = math.Max(a, charLength)
	a = areaFace(x[0], x[1], x[5], x[4], y[0], y[1], y[5], y[4], z[0], z[1], z[5], z[4])
	charLength = math.Max(a, charLength)
	a = areaFace(x[1], x[2], x[6], x[5], y[1], y[2], y[6], y[5], z[1], z[2], z[6], z[5])
	charLength = math.Max(a, charLength)
	a = areaFace(x[2], x[3], x[7], x[6], y[2], y[3], y[7], y[6], z[2], z[3], z[7], z[6])
	charLength = math.Max(a, charLength)
	a = areaFace(x[3], x[0], x[4], x[7], y[3], y[0], y[4], y[7], z[3], z[0], z[4], z[7])
	charLength = math.Max(a, charLength)
	return 4.0 * volume / math.Sqrt(charLength)
}

// ElemVelocityGradient computes the principal velocity gradient components
// d[0..2] (CalcElemVelocityGradient; the off-diagonal components the
// reference computes into d[3..5] are dead values there and omitted here).
func ElemVelocityGradient(xvel, yvel, zvel *[8]float64, b *[3][8]float64,
	detJ float64, d *[3]float64) {

	invDetJ := 1.0 / detJ
	pfx := &b[0]
	pfy := &b[1]
	pfz := &b[2]
	d[0] = invDetJ * (pfx[0]*(xvel[0]-xvel[6]) +
		pfx[1]*(xvel[1]-xvel[7]) +
		pfx[2]*(xvel[2]-xvel[4]) +
		pfx[3]*(xvel[3]-xvel[5]))
	d[1] = invDetJ * (pfy[0]*(yvel[0]-yvel[6]) +
		pfy[1]*(yvel[1]-yvel[7]) +
		pfy[2]*(yvel[2]-yvel[4]) +
		pfy[3]*(yvel[3]-yvel[5]))
	d[2] = invDetJ * (pfz[0]*(zvel[0]-zvel[6]) +
		pfz[1]*(zvel[1]-zvel[7]) +
		pfz[2]*(zvel[2]-zvel[4]) +
		pfz[3]*(zvel[3]-zvel[5]))
}
