package kernels

import (
	"math"
	"testing"
)

func TestCalcKinematicsAtRest(t *testing.T) {
	d := testDomain(3)
	CalcKinematics(d, 1e-7, 0, d.NumElem())
	for e := 0; e < d.NumElem(); e++ {
		if math.Abs(d.Vnew[e]-1.0) > 1e-12 {
			t.Fatalf("vnew[%d] = %v at rest", e, d.Vnew[e])
		}
		if math.Abs(d.Delv[e]) > 1e-12 {
			t.Fatalf("delv[%d] = %v at rest", e, d.Delv[e])
		}
		if d.Dxx[e] != 0 || d.Dyy[e] != 0 || d.Dzz[e] != 0 {
			t.Fatalf("strain rate nonzero at rest: elem %d", e)
		}
		h := 1.125 / 3
		if math.Abs(d.Arealg[e]-h) > 1e-12 {
			t.Fatalf("arealg[%d] = %v, want %v", e, d.Arealg[e], h)
		}
	}
}

func TestCalcKinematicsUniformExpansion(t *testing.T) {
	// Velocity field v = c * r expands every element: dxx=dyy=dzz=c and
	// vnew > 1 after positions move (positions here unchanged, so vnew
	// reflects current coords = 1; the strain rates still read c).
	d := testDomain(2)
	c := 0.5
	for n := 0; n < d.NumNode(); n++ {
		d.Xd[n] = c * d.X[n]
		d.Yd[n] = c * d.Y[n]
		d.Zd[n] = c * d.Z[n]
	}
	dt := 1e-4
	CalcKinematics(d, dt, 0, d.NumElem())
	// The gradient is evaluated at the half-step configuration
	// x - dt/2*v = (1 - c*dt/2)*x, so the measured rate is c/(1 - c*dt/2).
	want := c / (1 - c*dt/2)
	for e := 0; e < d.NumElem(); e++ {
		if math.Abs(d.Dxx[e]-want) > 1e-9 || math.Abs(d.Dyy[e]-want) > 1e-9 ||
			math.Abs(d.Dzz[e]-want) > 1e-9 {
			t.Fatalf("elem %d strain (%v,%v,%v), want %v",
				e, d.Dxx[e], d.Dyy[e], d.Dzz[e], want)
		}
	}
}

func TestCalcStrainRateDeviatoric(t *testing.T) {
	d := testDomain(2)
	for e := 0; e < d.NumElem(); e++ {
		d.Dxx[e] = 3
		d.Dyy[e] = 2
		d.Dzz[e] = 1
		d.Vnew[e] = 1
	}
	var f Flag
	CalcStrainRate(d, 0, d.NumElem(), &f)
	if f.Err() != nil {
		t.Fatal(f.Err())
	}
	for e := 0; e < d.NumElem(); e++ {
		if d.Vdov[e] != 6 {
			t.Fatalf("vdov[%d] = %v, want 6", e, d.Vdov[e])
		}
		if d.Dxx[e] != 1 || d.Dyy[e] != 0 || d.Dzz[e] != -1 {
			t.Fatalf("deviatoric strains (%v,%v,%v)", d.Dxx[e], d.Dyy[e], d.Dzz[e])
		}
		trace := d.Dxx[e] + d.Dyy[e] + d.Dzz[e]
		if math.Abs(trace) > 1e-15 {
			t.Fatalf("deviatoric trace = %v", trace)
		}
	}
}

func TestCalcStrainRateVolumeError(t *testing.T) {
	d := testDomain(2)
	d.Vnew[3] = -0.25
	var f Flag
	CalcStrainRate(d, 0, d.NumElem(), &f)
	if f.Err() != ErrVolume {
		t.Fatalf("err = %v, want ErrVolume", f.Err())
	}
}

func TestMonoQGradientsUniformVelocityZeroDelv(t *testing.T) {
	// Rigid translation: velocity gradients delv_* are zero, position
	// gradients delx_* stay positive (they encode element extent).
	d := testDomain(3)
	for e := range d.Vnew {
		d.Vnew[e] = 1
	}
	for n := 0; n < d.NumNode(); n++ {
		d.Xd[n], d.Yd[n], d.Zd[n] = 2, -3, 4
	}
	MonoQGradients(d, 0, d.NumElem())
	for e := 0; e < d.NumElem(); e++ {
		if math.Abs(d.DelvXi[e]) > 1e-12 || math.Abs(d.DelvEta[e]) > 1e-12 ||
			math.Abs(d.DelvZeta[e]) > 1e-12 {
			t.Fatalf("rigid motion gave delv (%v,%v,%v) at %d",
				d.DelvXi[e], d.DelvEta[e], d.DelvZeta[e], e)
		}
		if d.DelxXi[e] <= 0 || d.DelxEta[e] <= 0 || d.DelxZeta[e] <= 0 {
			t.Fatalf("delx must be positive at %d", e)
		}
	}
}

func TestMonoQGradientsCompression(t *testing.T) {
	// Velocity field v = -c*r compresses along every axis: delv_* < 0.
	d := testDomain(3)
	for e := range d.Vnew {
		d.Vnew[e] = 1
	}
	for n := 0; n < d.NumNode(); n++ {
		d.Xd[n] = -0.5 * d.X[n]
		d.Yd[n] = -0.5 * d.Y[n]
		d.Zd[n] = -0.5 * d.Z[n]
	}
	MonoQGradients(d, 0, d.NumElem())
	for e := 0; e < d.NumElem(); e++ {
		if d.DelvXi[e] >= 0 || d.DelvEta[e] >= 0 || d.DelvZeta[e] >= 0 {
			t.Fatalf("compression gave delv (%v,%v,%v) at %d",
				d.DelvXi[e], d.DelvEta[e], d.DelvZeta[e], e)
		}
	}
}

func TestMonoQRegionExpansionGivesZeroQ(t *testing.T) {
	d := testDomain(3)
	for e := range d.Vnew {
		d.Vnew[e] = 1
		d.Vdov[e] = 1.0 // expanding
		d.DelvXi[e] = 0.1
		d.DelvEta[e] = 0.1
		d.DelvZeta[e] = 0.1
		d.DelxXi[e] = 0.3
		d.DelxEta[e] = 0.3
		d.DelxZeta[e] = 0.3
	}
	for _, regList := range d.Regions.ElemList {
		MonoQRegion(d, regList, 0, len(regList))
	}
	for e := 0; e < d.NumElem(); e++ {
		if d.Ql[e] != 0 || d.Qq[e] != 0 {
			t.Fatalf("expanding element %d has q terms (%v,%v)", e, d.Ql[e], d.Qq[e])
		}
	}
}

func TestMonoQRegionCompressionGivesPositiveQ(t *testing.T) {
	// With uniform compression the limiter phi saturates at 1 for
	// interior elements (zero q), but next to a free surface delvp = 0
	// halves phi, leaving a genuine shock viscosity. Check the far-corner
	// element (free surfaces in all three + directions).
	d := testDomain(3)
	for e := range d.Vnew {
		d.Vnew[e] = 1
		d.Vdov[e] = -1.0 // compressing
		d.DelvXi[e] = -0.1
		d.DelvEta[e] = -0.1
		d.DelvZeta[e] = -0.1
		d.DelxXi[e] = 0.3
		d.DelxEta[e] = 0.3
		d.DelxZeta[e] = 0.3
	}
	for _, regList := range d.Regions.ElemList {
		MonoQRegion(d, regList, 0, len(regList))
	}
	corner := d.NumElem() - 1
	if d.Ql[corner] <= 0 || d.Qq[corner] <= 0 {
		t.Fatalf("free-surface corner element has q terms (%v,%v), want > 0",
			d.Ql[corner], d.Qq[corner])
	}
	// And the fully interior element stays limiter-neutral.
	s := d.Mesh.EdgeElems
	interior := 1*s*s + 1*s + 1
	if d.Ql[interior] != 0 || d.Qq[interior] != 0 {
		t.Fatalf("interior element q = (%v,%v), want 0", d.Ql[interior], d.Qq[interior])
	}
}

func TestMonoQRegionUniformFieldLimiterNeutral(t *testing.T) {
	// With identical delv on an element and its neighbours the limiter
	// phi reaches its clamp at 1 for interior elements, reducing q by the
	// (1 - phi) factors to exactly zero.
	d := testDomain(5)
	for e := range d.Vnew {
		d.Vnew[e] = 1
		d.Vdov[e] = -1
		d.DelvXi[e] = -0.2
		d.DelvEta[e] = -0.2
		d.DelvZeta[e] = -0.2
		d.DelxXi[e] = 0.1
		d.DelxEta[e] = 0.1
		d.DelxZeta[e] = 0.1
	}
	for _, regList := range d.Regions.ElemList {
		MonoQRegion(d, regList, 0, len(regList))
	}
	// A strictly interior element (no BC flags) has phi=1 in all
	// directions: qlin = qquad = 0.
	s := d.Mesh.EdgeElems
	interior := 2*s*s + 2*s + 2
	if d.Mesh.ElemBC[interior] != 0 {
		t.Fatal("test element is not interior")
	}
	if d.Ql[interior] != 0 || d.Qq[interior] != 0 {
		t.Fatalf("interior uniform-field q = (%v,%v), want 0",
			d.Ql[interior], d.Qq[interior])
	}
}

func TestQStopCheck(t *testing.T) {
	d := testDomain(2)
	var f Flag
	QStopCheck(d, 0, d.NumElem(), &f)
	if f.Err() != nil {
		t.Fatal("clean domain raised qstop")
	}
	d.Q[5] = d.Par.QStop * 2
	QStopCheck(d, 0, d.NumElem(), &f)
	if f.Err() != ErrQStop {
		t.Fatalf("err = %v, want ErrQStop", f.Err())
	}
}

func TestVnewcClamps(t *testing.T) {
	d := testDomain(2)
	ne := d.NumElem()
	d.Vnew[0] = 0.5
	d.Vnew[1] = 2.0
	vnewc := make([]float64, ne)
	CopyVnewc(d, vnewc, 0, ne)
	if vnewc[0] != 0.5 || vnewc[1] != 2.0 {
		t.Fatal("copy wrong")
	}
	ClampVnewcLow(vnewc, 0.9, 0, ne)
	if vnewc[0] != 0.9 {
		t.Fatalf("low clamp: %v", vnewc[0])
	}
	ClampVnewcHigh(vnewc, 1.5, 0, ne)
	if vnewc[1] != 1.5 {
		t.Fatalf("high clamp: %v", vnewc[1])
	}
}

func TestCheckVBounds(t *testing.T) {
	d := testDomain(2)
	var f Flag
	CheckVBounds(d, 0, d.NumElem(), &f)
	if f.Err() != nil {
		t.Fatal("healthy volumes raised error")
	}
	// eosvmin clamps tiny-but-positive volumes up, so only v <= 0 after
	// clamping triggers; with eosvmin > 0 a negative v is clamped to
	// eosvmin... exactly as in the reference, the error fires only when
	// the clamped value is <= 0, which requires eosvmin == 0.
	d.Par.EOSvMin = 0
	d.V[2] = -1
	CheckVBounds(d, 0, d.NumElem(), &f)
	if f.Err() != ErrVolume {
		t.Fatalf("err = %v, want ErrVolume", f.Err())
	}
}

func TestUpdateVolumes(t *testing.T) {
	d := testDomain(2)
	d.Vnew[0] = 1.0 + 1e-12 // inside v_cut of 1.0
	d.Vnew[1] = 0.75
	UpdateVolumes(d, d.Par.VCut, 0, d.NumElem())
	if d.V[0] != 1.0 {
		t.Fatalf("snap to 1.0 failed: %v", d.V[0])
	}
	if d.V[1] != 0.75 {
		t.Fatalf("volume not committed: %v", d.V[1])
	}
}
