package kernels

import (
	"errors"
	"sync/atomic"
)

// Simulation abort conditions, mirroring the reference's VolumeError and
// QStopError exit codes.
var (
	ErrVolume = errors.New("lulesh: volume error (non-positive element volume)")
	ErrQStop  = errors.New("lulesh: artificial viscosity exceeded qstop")
)

const (
	codeOK int32 = iota
	codeVolume
	codeQStop
)

// Flag is a sticky error indicator that parallel kernels raise and the
// driver checks at synchronization points. The first raised code wins.
type Flag struct {
	v atomic.Int32
}

func (f *Flag) raise(code int32) {
	f.v.CompareAndSwap(codeOK, code)
}

// RaiseVolume records a volume error.
func (f *Flag) RaiseVolume() { f.raise(codeVolume) }

// RaiseQStop records a qstop error.
func (f *Flag) RaiseQStop() { f.raise(codeQStop) }

// Err returns the recorded error, or nil.
func (f *Flag) Err() error {
	switch f.v.Load() {
	case codeVolume:
		return ErrVolume
	case codeQStop:
		return ErrQStop
	default:
		return nil
	}
}

// Reset clears the flag.
func (f *Flag) Reset() { f.v.Store(codeOK) }
