package kernels

import (
	"math"
	"testing"
)

func TestCourantConstraintBasic(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0, 1, 2}
	for _, e := range regList {
		d.SS[e] = 2.0
		d.Arealg[e] = 0.1
		d.Vdov[e] = 0.5 // expanding, nonzero: constraint active
	}
	// dtf = arealg / sqrt(ss^2) = 0.1/2 = 0.05 (no quadratic term since
	// vdov > 0).
	got := CourantConstraint(d, regList, 0, len(regList))
	if math.Abs(got-0.05) > 1e-15 {
		t.Fatalf("courant = %v, want 0.05", got)
	}
}

func TestCourantConstraintCompressionTerm(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0}
	d.SS[0] = 1.0
	d.Arealg[0] = 0.5
	d.Vdov[0] = -2.0
	qqc2 := 64.0 * d.Par.Qqc * d.Par.Qqc
	want := 0.5 / math.Sqrt(1.0+qqc2*0.25*4.0)
	got := CourantConstraint(d, regList, 0, 1)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("courant with compression = %v, want %v", got, want)
	}
}

func TestCourantConstraintIgnoresStaticElements(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0, 1}
	d.SS[0] = 1e-6
	d.Arealg[0] = 1e-9
	d.Vdov[0] = 0 // static: no constraint even though dtf would be tiny
	d.SS[1] = 1.0
	d.Arealg[1] = 1.0
	d.Vdov[1] = 1.0
	got := CourantConstraint(d, regList, 0, 2)
	if math.Abs(got-1.0) > 1e-15 {
		t.Fatalf("courant = %v, want 1 (static element must be ignored)", got)
	}
}

func TestCourantConstraintEmptyRange(t *testing.T) {
	d := testDomain(2)
	if got := CourantConstraint(d, nil, 0, 0); got != HugeDt {
		t.Fatalf("empty range courant = %v, want HugeDt", got)
	}
}

func TestHydroConstraintBasic(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0, 1, 2}
	d.Vdov[0] = 0.01
	d.Vdov[1] = -0.5 // dominates: dvovmax/0.5
	d.Vdov[2] = 0
	want := d.Par.Dvovmax / (0.5 + 1e-20)
	got := HydroConstraint(d, regList, 0, 3)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("hydro = %v, want %v", got, want)
	}
}

func TestHydroConstraintAllStatic(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0, 1}
	got := HydroConstraint(d, regList, 0, 2)
	if got != HugeDt {
		t.Fatalf("hydro with zero vdov = %v, want HugeDt", got)
	}
}

func TestConstraintPartitionMinEqualsWholeMin(t *testing.T) {
	// min over partitions == min over the whole region (exactness of the
	// min reduction the task backend relies on).
	d := testDomain(3)
	regList := d.Regions.ElemList[0]
	for e := 0; e < d.NumElem(); e++ {
		d.SS[e] = 1.0 + 0.01*float64(e%13)
		d.Arealg[e] = 0.1 + 0.001*float64(e%7)
		d.Vdov[e] = -0.1 * float64(e%3)
	}
	whole := CourantConstraint(d, regList, 0, len(regList))
	part := HugeDt
	for lo := 0; lo < len(regList); lo += 4 {
		hi := lo + 4
		if hi > len(regList) {
			hi = len(regList)
		}
		if v := CourantConstraint(d, regList, lo, hi); v < part {
			part = v
		}
	}
	if whole != part {
		t.Fatalf("partitioned min %v != whole min %v", part, whole)
	}
}
