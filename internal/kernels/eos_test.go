package kernels

import (
	"math"
	"testing"
)

func TestEOSScratchEnsure(t *testing.T) {
	s := NewEOSScratch(4)
	if len(s.EOld) != 4 || len(s.PHalfStep) != 4 {
		t.Fatal("initial sizing wrong")
	}
	s.Ensure(2) // shrink request is a no-op
	if len(s.EOld) != 4 {
		t.Fatal("Ensure shrank scratch")
	}
	s.Ensure(10)
	if len(s.EOld) != 10 || len(s.QNew) != 10 || len(s.Work) != 10 {
		t.Fatal("Ensure did not grow all arrays")
	}
}

func TestEOSGatherBaseConventions(t *testing.T) {
	d := testDomain(2)
	for e := range d.E {
		d.E[e] = float64(e)
		d.Delv[e] = 2 * float64(e)
		d.P[e] = 3 * float64(e)
		d.Q[e] = 4 * float64(e)
		d.Qq[e] = 5 * float64(e)
		d.Ql[e] = 6 * float64(e)
	}
	regList := []int32{1, 3, 5, 7}
	// Global scratch convention: base = lo.
	g := NewEOSScratch(4)
	EOSGather(d, regList, g, 2, 2, 4)
	if g.EOld[2] != 5 || g.EOld[3] != 7 || g.QlOld[3] != 42 {
		t.Fatalf("global gather wrong: %v", g.EOld)
	}
	// Task-local scratch convention: base = 0.
	l := NewEOSScratch(2)
	EOSGather(d, regList, l, 0, 2, 4)
	if l.EOld[0] != 5 || l.EOld[1] != 7 || l.POld[1] != 21 {
		t.Fatalf("local gather wrong: %v", l.EOld)
	}
}

func TestEOSCompression(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0, 1}
	vnewc := make([]float64, d.NumElem())
	vnewc[0] = 0.5 // compression = 1/0.5 - 1 = 1
	vnewc[1] = 2.0 // compression = -0.5
	s := NewEOSScratch(2)
	s.Delvc[0] = 0 // vchalf = vnewc
	s.Delvc[1] = 1 // vchalf = 2 - 0.5 = 1.5
	EOSCompression(d, vnewc, regList, s, 0, 0, 2)
	if math.Abs(s.Compression[0]-1.0) > 1e-15 || math.Abs(s.Compression[1]+0.5) > 1e-15 {
		t.Fatalf("compression = %v", s.Compression[:2])
	}
	if math.Abs(s.CompHalfStep[0]-1.0) > 1e-15 ||
		math.Abs(s.CompHalfStep[1]-(1.0/1.5-1.0)) > 1e-15 {
		t.Fatalf("compHalfStep = %v", s.CompHalfStep[:2])
	}
}

func TestEOSClamps(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0, 1}
	vnewc := []float64{1e-10, 1e10}
	for len(vnewc) < d.NumElem() {
		vnewc = append(vnewc, 1)
	}
	s := NewEOSScratch(2)
	s.Compression[0] = 7
	s.CompHalfStep[0] = 1
	s.POld[1] = 5
	s.Compression[1] = 5
	s.CompHalfStep[1] = 5
	EOSClampVMin(d, vnewc, regList, s, 1e-9, 0, 0, 2)
	if s.CompHalfStep[0] != 7 {
		t.Fatalf("vmin clamp: compHalfStep = %v, want compression 7", s.CompHalfStep[0])
	}
	EOSClampVMax(d, vnewc, regList, s, 1e9, 0, 0, 2)
	if s.POld[1] != 0 || s.Compression[1] != 0 || s.CompHalfStep[1] != 0 {
		t.Fatal("vmax clamp did not zero state")
	}
}

func TestCalcPressureIdealCase(t *testing.T) {
	// p = (2/3) * (compression + 1) * e; with compression 0 and e = 3,
	// p = 2.
	pNew := make([]float64, 1)
	bvc := make([]float64, 1)
	pbvc := make([]float64, 1)
	e := []float64{3.0}
	comp := []float64{0.0}
	vnewc := []float64{1.0}
	regList := []int32{0}
	CalcPressure(pNew, bvc, pbvc, e, comp, vnewc, regList, 0, 0, 1e-7, 1e9, 0, 1)
	if math.Abs(pNew[0]-2.0) > 1e-15 {
		t.Fatalf("p = %v, want 2", pNew[0])
	}
	if bvc[0] != 2.0/3.0 || pbvc[0] != 2.0/3.0 {
		t.Fatalf("bvc/pbvc = %v/%v", bvc[0], pbvc[0])
	}
}

func TestCalcPressureCutoffsAndFloor(t *testing.T) {
	pNew := make([]float64, 3)
	bvc := make([]float64, 3)
	pbvc := make([]float64, 3)
	e := []float64{1e-9, -5.0, 1.0}
	comp := []float64{0, 0, 0}
	vnewc := []float64{1, 1, 2e9}
	regList := []int32{0, 1, 2}
	CalcPressure(pNew, bvc, pbvc, e, comp, vnewc, regList, 0, 0, 1e-7, 1e9, 0, 3)
	if pNew[0] != 0 {
		t.Errorf("tiny pressure not cut: %v", pNew[0])
	}
	if pNew[1] != 0 {
		t.Errorf("pressure floor (pmin=0) not applied: %v", pNew[1])
	}
	if pNew[2] != 0 {
		t.Errorf("eosvmax pressure not zeroed: %v", pNew[2])
	}
}

func TestCalcEnergyZeroDelvKeepsEnergy(t *testing.T) {
	// With delvc = 0 and work = 0 the predictor/corrector collapses to
	// e_new = e_old.
	d := testDomain(2)
	regList := []int32{0, 1, 2}
	n := len(regList)
	vnewc := make([]float64, d.NumElem())
	for i := range vnewc {
		vnewc[i] = 1
	}
	s := NewEOSScratch(n)
	for i := 0; i < n; i++ {
		s.EOld[i] = float64(i + 1)
		s.POld[i] = 0.5
		s.QOld[i] = 0.1
		s.Delvc[i] = 0
		s.Compression[i] = 0
		s.CompHalfStep[i] = 0
		s.Work[i] = 0
		s.QqOld[i] = 0.2
		s.QlOld[i] = 0.3
	}
	CalcEnergy(d, vnewc, regList, s, 0, 0, n)
	for i := 0; i < n; i++ {
		if math.Abs(s.ENew[i]-float64(i+1)) > 1e-12 {
			t.Fatalf("e_new[%d] = %v, want %v", i, s.ENew[i], float64(i+1))
		}
		// q_new for delvc <= 0: ssc*ql + qq with e,p > 0 — positive.
		if s.QNew[i] <= 0 {
			t.Fatalf("q_new[%d] = %v, want > 0", i, s.QNew[i])
		}
	}
}

func TestCalcEnergyEminFloor(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0}
	vnewc := make([]float64, d.NumElem())
	vnewc[0] = 1
	s := NewEOSScratch(1)
	s.EOld[0] = d.Par.Emin * 2 // far below the floor
	s.Delvc[0] = 0
	CalcEnergy(d, vnewc, regList, s, 0, 0, 1)
	if s.ENew[0] < d.Par.Emin {
		t.Fatalf("energy below floor: %v", s.ENew[0])
	}
}

func TestEOSStoreWritesBack(t *testing.T) {
	d := testDomain(2)
	regList := []int32{2, 4}
	s := NewEOSScratch(2)
	s.PNew[0], s.ENew[0], s.QNew[0] = 1, 2, 3
	s.PNew[1], s.ENew[1], s.QNew[1] = 4, 5, 6
	EOSStore(d, regList, s, 0, 0, 2)
	if d.P[2] != 1 || d.E[2] != 2 || d.Q[2] != 3 {
		t.Fatal("store elem 2 wrong")
	}
	if d.P[4] != 4 || d.E[4] != 5 || d.Q[4] != 6 {
		t.Fatal("store elem 4 wrong")
	}
}

func TestCalcSoundSpeed(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0}
	vnewc := make([]float64, d.NumElem())
	vnewc[0] = 1
	s := NewEOSScratch(1)
	s.Pbvc[0] = 2.0 / 3.0
	s.ENew[0] = 3.0
	s.Bvc[0] = 2.0 / 3.0
	s.PNew[0] = 2.0
	CalcSoundSpeed(d, vnewc, regList, s, 0, 0, 1)
	want := math.Sqrt((2.0/3.0)*3.0 + (2.0/3.0)*2.0)
	if math.Abs(d.SS[0]-want) > 1e-14 {
		t.Fatalf("ss = %v, want %v", d.SS[0], want)
	}
}

func TestCalcSoundSpeedFloor(t *testing.T) {
	d := testDomain(2)
	regList := []int32{0}
	vnewc := make([]float64, d.NumElem())
	vnewc[0] = 1
	s := NewEOSScratch(1)
	// Negative energy drives the argument negative: the floor applies.
	s.Pbvc[0] = 2.0 / 3.0
	s.ENew[0] = -1
	s.Bvc[0] = 0
	s.PNew[0] = 0
	CalcSoundSpeed(d, vnewc, regList, s, 0, 0, 1)
	if d.SS[0] != 0.3333333e-18 {
		t.Fatalf("ss floor = %v", d.SS[0])
	}
}

func TestEvalEOSRepRedundancy(t *testing.T) {
	// Repeating the EOS evaluation rep times must not change the result:
	// the reference re-gathers unmodified inputs each repetition and only
	// stores after the loop. This is the property the paper's region-level
	// load imbalance rests on.
	d1 := testDomain(3)
	d2 := testDomain(3)
	prime := func(d *[]float64, mul float64) {
		for i := range *d {
			(*d)[i] = mul * float64(i%7+1) * 1e-3
		}
	}
	// Prime identical nontrivial state on both domains.
	for _, dd := range [2]*[]float64{&d1.E, &d2.E} {
		prime(dd, 2)
	}
	for _, dd := range [2]*[]float64{&d1.Delv, &d2.Delv} {
		prime(dd, -1)
	}
	for _, dd := range [2]*[]float64{&d1.P, &d2.P} {
		prime(dd, 0.5)
	}
	for _, dd := range [2]*[]float64{&d1.Qq, &d2.Qq} {
		prime(dd, 0.1)
	}
	for _, dd := range [2]*[]float64{&d1.Ql, &d2.Ql} {
		prime(dd, 0.2)
	}
	vnewc := make([]float64, d1.NumElem())
	for i := range vnewc {
		vnewc[i] = 1.0 - 1e-3*float64(i%5)
	}
	regList := d1.Regions.ElemList[0]
	s1 := NewEOSScratch(len(regList))
	s2 := NewEOSScratch(len(regList))
	EvalEOS(d1, vnewc, regList, s1, 1, 0, len(regList))
	EvalEOS(d2, vnewc, regList, s2, 20, 0, len(regList))
	for _, e := range regList {
		if d1.P[e] != d2.P[e] || d1.E[e] != d2.E[e] || d1.Q[e] != d2.Q[e] ||
			d1.SS[e] != d2.SS[e] {
			t.Fatalf("rep changed the result at element %d", e)
		}
	}
}

func TestEvalEOSPartitionedEqualsWhole(t *testing.T) {
	// Evaluating a region in partitions (the task backend) must equal
	// evaluating it in one piece (the reference).
	d1 := testDomain(3)
	d2 := testDomain(3)
	for i := range d1.E {
		d1.E[i] = float64(i%11) * 1e-2
		d2.E[i] = d1.E[i]
		d1.Delv[i] = -1e-4 * float64(i%3)
		d2.Delv[i] = d1.Delv[i]
	}
	vnewc := make([]float64, d1.NumElem())
	for i := range vnewc {
		vnewc[i] = 1.0 - 1e-4*float64(i%7)
	}
	regList := d1.Regions.ElemList[1]
	n := len(regList)
	s := NewEOSScratch(n)
	EvalEOS(d1, vnewc, regList, s, 2, 0, n)

	part := 3
	for lo := 0; lo < n; lo += part {
		hi := lo + part
		if hi > n {
			hi = n
		}
		sp := NewEOSScratch(hi - lo)
		EvalEOS(d2, vnewc, regList, sp, 2, lo, hi)
	}
	for _, e := range regList {
		if d1.P[e] != d2.P[e] || d1.E[e] != d2.E[e] || d1.Q[e] != d2.Q[e] ||
			d1.SS[e] != d2.SS[e] {
			t.Fatalf("partitioned EOS differs at element %d", e)
		}
	}
}
