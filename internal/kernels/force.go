package kernels

import (
	"math"

	"lulesh/internal/domain"
)

// Force-calculation range kernels (the LagrangeNodal force phase):
// stress terms, stress integration, hourglass control, and the
// element-corner to node force gather.
//
// As in the parallel reference implementation, element kernels write
// per-element-corner force arrays (fxElem[8*e+c]) and a node-indexed gather
// pass sums the corners afterwards; this avoids scatter races and keeps the
// summation order — and therefore the floating-point result — identical for
// every backend and thread count.
//
// Dense loops run over equal-length [lo:hi) plane views so the compiler
// drops the bounds checks; gathers hoist the CSR arrays and walk subslices
// (verified with -d=ssa/check_bce). Only the data-dependent indirect loads
// (node indices from the mesh) keep their checks.

// InitStressTerms fills the stress arrays for elements [lo, hi):
// sig·· = -p - q (InitStressTermsForElems).
func InitStressTerms(d *domain.Domain, sigxx, sigyy, sigzz []float64, lo, hi int) {
	p := d.P[lo:hi]
	q := d.Q[lo:hi]
	sx := sigxx[lo:hi]
	sy := sigyy[lo:hi]
	sz := sigzz[lo:hi]
	for i := range p {
		s := -p[i] - q[i]
		sx[i] = s
		sy[i] = s
		sz[i] = s
	}
}

// gatherElemNodes loads element corners nl from the coordinate planes.
// The node indices are data-dependent so the plane loads keep their bounds
// checks; the array-pointer nodelist view avoids the per-corner checks on
// the connectivity itself.
func gatherElemNodes(xp, yp, zp []float64, nl *[8]int32, x, y, z *[8]float64) {
	for c := 0; c < 8; c++ {
		n := nl[c]
		x[c] = xp[n]
		y[c] = yp[n]
		z[c] = zp[n]
	}
}

// IntegrateStress integrates the stress over elements [lo, hi), producing
// per-corner forces and element volumes (IntegrateStressForElems). determ
// and the fxElem arrays are element-indexed over the whole mesh.
func IntegrateStress(d *domain.Domain, sigxx, sigyy, sigzz, determ,
	fxElem, fyElem, fzElem []float64, lo, hi int) {

	xp, yp, zp := d.X, d.Y, d.Z
	nodelist := d.Mesh.Nodelist
	sx := sigxx[lo:hi]
	sy := sigyy[lo:hi]
	sz := sigzz[lo:hi]
	dv := determ[lo:hi]
	var x, y, z [8]float64
	var fx, fy, fz [8]float64
	var b [3][8]float64
	for i := range dv {
		k := lo + i
		nl := (*[8]int32)(nodelist[8*k:])
		gatherElemNodes(xp, yp, zp, nl, &x, &y, &z)
		dv[i] = ShapeFunctionDerivatives(&x, &y, &z, &b)
		ElemNodeNormals(&b[0], &b[1], &b[2], &x, &y, &z)
		SumElemStressesToNodeForces(&b, sx[i], sy[i], sz[i], &fx, &fy, &fz)
		// Array-pointer stores: one slice-length check per array instead of
		// per-corner bounds checks.
		*(*[8]float64)(fxElem[8*k:]) = fx
		*(*[8]float64)(fyElem[8*k:]) = fy
		*(*[8]float64)(fzElem[8*k:]) = fz
	}
}

// CheckDeterm raises a volume error if any element volume in [lo, hi) is
// non-positive (the determinant check in CalcVolumeForceForElems).
func CheckDeterm(determ []float64, lo, hi int, flag *Flag) {
	for _, v := range determ[lo:hi] {
		if v <= 0 {
			flag.RaiseVolume()
			return
		}
	}
}

// HourglassPrep computes the volume derivatives and gathers coordinates for
// elements [lo, hi) (the first loop of CalcHourglassControlForElems).
// The dvdx..z8n scratch arrays are indexed at (e-base)*8, so callers may
// pass either mesh-sized arrays with base 0 (the reference's layout) or
// task-local arrays with base lo (the paper's task-local temporaries).
// determ is element-indexed over the whole mesh and receives volo*v.
func HourglassPrep(d *domain.Domain, dvdx, dvdy, dvdz, x8n, y8n, z8n,
	determ []float64, base, lo, hi int, flag *Flag) {

	xp, yp, zp := d.X, d.Y, d.Z
	nodelist := d.Mesh.Nodelist
	volo := d.Volo[lo:hi]
	vrel := d.V[lo:hi]
	dv := determ[lo:hi]
	var x, y, z [8]float64
	var pfx, pfy, pfz [8]float64
	for j := range dv {
		i := lo + j
		nl := (*[8]int32)(nodelist[8*i:])
		gatherElemNodes(xp, yp, zp, nl, &x, &y, &z)
		ElemVolumeDerivative(&pfx, &pfy, &pfz, &x, &y, &z)
		o := (i - base) * 8
		// Array-pointer stores: one slice-length check per array instead of
		// eight per-corner bounds checks.
		*(*[8]float64)(dvdx[o:]) = pfx
		*(*[8]float64)(dvdy[o:]) = pfy
		*(*[8]float64)(dvdz[o:]) = pfz
		*(*[8]float64)(x8n[o:]) = x
		*(*[8]float64)(y8n[o:]) = y
		*(*[8]float64)(z8n[o:]) = z
		dv[j] = volo[j] * vrel[j]
		if vrel[j] <= 0 {
			flag.RaiseVolume()
		}
	}
}

// FBHourglass computes the Flanagan-Belytschko hourglass force for elements
// [lo, hi) into per-corner force arrays (CalcFBHourglassForceForElems).
// Scratch arrays use the same base convention as HourglassPrep.
func FBHourglass(d *domain.Domain, dvdx, dvdy, dvdz, x8n, y8n, z8n,
	determ []float64, hourg float64, base, lo, hi int,
	fxElem, fyElem, fzElem []float64) {

	xdp, ydp, zdp := d.Xd, d.Yd, d.Zd
	nodelist := d.Mesh.Nodelist
	dv := determ[lo:hi]
	ssv := d.SS[lo:hi]
	emv := d.ElemMass[lo:hi]
	var hourgam [8][4]float64
	var xd1, yd1, zd1 [8]float64
	var hgfx, hgfy, hgfz [8]float64
	for j := range dv {
		i2 := lo + j
		// Array-pointer views of the eight-corner slabs: one slice-length
		// check each instead of per-corner bounds checks in the gather
		// loops below.
		nl := (*[8]int32)(nodelist[8*i2:])
		o := (i2 - base) * 8
		x8 := (*[8]float64)(x8n[o:])
		y8 := (*[8]float64)(y8n[o:])
		z8 := (*[8]float64)(z8n[o:])
		dx8 := (*[8]float64)(dvdx[o:])
		dy8 := (*[8]float64)(dvdy[o:])
		dz8 := (*[8]float64)(dvdz[o:])
		volinv := 1.0 / dv[j]
		for i1 := 0; i1 < 4; i1++ {
			g := &gamma[i1]
			hourmodx := x8[0]*g[0] + x8[1]*g[1] + x8[2]*g[2] + x8[3]*g[3] +
				x8[4]*g[4] + x8[5]*g[5] + x8[6]*g[6] + x8[7]*g[7]
			hourmody := y8[0]*g[0] + y8[1]*g[1] + y8[2]*g[2] + y8[3]*g[3] +
				y8[4]*g[4] + y8[5]*g[5] + y8[6]*g[6] + y8[7]*g[7]
			hourmodz := z8[0]*g[0] + z8[1]*g[1] + z8[2]*g[2] + z8[3]*g[3] +
				z8[4]*g[4] + z8[5]*g[5] + z8[6]*g[6] + z8[7]*g[7]
			for j := 0; j < 8; j++ {
				hourgam[j][i1] = g[j] - volinv*(dx8[j]*hourmodx+
					dy8[j]*hourmody+dz8[j]*hourmodz)
			}
		}

		ss1 := ssv[j]
		mass1 := emv[j]
		volume13 := math.Cbrt(dv[j])
		for c := 0; c < 8; c++ {
			n := nl[c]
			xd1[c] = xdp[n]
			yd1[c] = ydp[n]
			zd1[c] = zdp[n]
		}
		coefficient := -hourg * 0.01 * ss1 * mass1 / volume13
		ElemFBHourglassForce(&xd1, &yd1, &zd1, &hourgam, coefficient, &hgfx, &hgfy, &hgfz)
		*(*[8]float64)(fxElem[8*i2:]) = hgfx
		*(*[8]float64)(fyElem[8*i2:]) = hgfy
		*(*[8]float64)(fzElem[8*i2:]) = hgfz
	}
}

// ZeroForces clears the nodal force arrays for nodes [lo, hi)
// (the start of CalcForceForNodes).
func ZeroForces(d *domain.Domain, lo, hi int) {
	nb := d.NodeBlock(lo, hi)
	clear(nb.Fx)
	clear(nb.Fy)
	clear(nb.Fz)
}

// GatherCornerForces sums per-element-corner forces into the nodal force
// arrays for nodes [lo, hi). With add=false the nodal force is overwritten
// (the stress gather); with add=true contributions are accumulated on top
// (the hourglass gather of the reference).
func GatherCornerForces(d *domain.Domain, fxElem, fyElem, fzElem []float64,
	lo, hi int, add bool) {

	m := d.Mesh
	// starts[i] / starts[i+1] bracket node lo+i's corner run; ranging over
	// the offset tail view proves every output index in range.
	nb := d.NodeBlock(lo, hi)
	starts := m.NodeElemStart[lo : hi+1]
	ends := starts[1:]
	cl := m.NodeElemCornerList
	fxOut := nb.Fx[:len(ends)]
	fyOut := nb.Fy[:len(ends)]
	fzOut := nb.Fz[:len(ends)]
	prev := starts[0]
	for i, end := range ends {
		var fx, fy, fz float64
		for _, c := range cl[prev:end] {
			fx += fxElem[c]
			fy += fyElem[c]
			fz += fzElem[c]
		}
		prev = end
		if add {
			fxOut[i] += fx
			fyOut[i] += fy
			fzOut[i] += fz
		} else {
			fxOut[i] = fx
			fyOut[i] = fy
			fzOut[i] = fz
		}
	}
}

// GatherTwoCornerForces performs the stress gather and the hourglass gather
// for nodes [lo, hi) in one pass (used by the task backend to fuse the two
// node loops into one task). The result is bitwise identical to calling
// GatherCornerForces twice: each family is summed separately and the two
// partial sums are added last, exactly as the reference's += does.
func GatherTwoCornerForces(d *domain.Domain, sxElem, syElem, szElem,
	hxElem, hyElem, hzElem []float64, lo, hi int) {

	m := d.Mesh
	nb := d.NodeBlock(lo, hi)
	starts := m.NodeElemStart[lo : hi+1]
	ends := starts[1:]
	cl := m.NodeElemCornerList
	fxOut := nb.Fx[:len(ends)]
	fyOut := nb.Fy[:len(ends)]
	fzOut := nb.Fz[:len(ends)]
	prev := starts[0]
	for i, end := range ends {
		corners := cl[prev:end]
		var sx, sy, sz float64
		for _, c := range corners {
			sx += sxElem[c]
			sy += syElem[c]
			sz += szElem[c]
		}
		var hx, hy, hz float64
		for _, c := range corners {
			hx += hxElem[c]
			hy += hyElem[c]
			hz += hzElem[c]
		}
		prev = end
		fxOut[i] = sx + hx
		fyOut[i] = sy + hy
		fzOut[i] = sz + hz
	}
}
