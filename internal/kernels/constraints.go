package kernels

import (
	"math"

	"lulesh/internal/domain"
)

// Time-constraint kernels (CalcTimeConstraintsForElems).

// HugeDt is the sentinel "no constraint" time step of the reference.
const HugeDt = 1.0e20

// CourantConstraint returns the minimum Courant-limited time step over the
// elements regList[lo:hi] (CalcCourantConstraintForElems). Elements with
// zero vdov impose no constraint.
func CourantConstraint(d *domain.Domain, regList []int32, lo, hi int) float64 {
	qqc := d.Par.Qqc
	qqc2 := 64.0 * qqc * qqc
	dtcourant := HugeDt
	for i := lo; i < hi; i++ {
		indx := regList[i]
		dtf := d.SS[indx] * d.SS[indx]
		if d.Vdov[indx] < 0 {
			dtf += qqc2 * d.Arealg[indx] * d.Arealg[indx] *
				d.Vdov[indx] * d.Vdov[indx]
		}
		dtf = math.Sqrt(dtf)
		dtf = d.Arealg[indx] / dtf
		if d.Vdov[indx] != 0 && dtf < dtcourant {
			dtcourant = dtf
		}
	}
	return dtcourant
}

// HydroConstraint returns the minimum volume-change-limited time step over
// the elements regList[lo:hi] (CalcHydroConstraintForElems).
func HydroConstraint(d *domain.Domain, regList []int32, lo, hi int) float64 {
	dvovmax := d.Par.Dvovmax
	dthydro := HugeDt
	for i := lo; i < hi; i++ {
		indx := regList[i]
		if d.Vdov[indx] != 0 {
			dtdvov := dvovmax / (math.Abs(d.Vdov[indx]) + 1.0e-20)
			if dthydro > dtdvov {
				dthydro = dtdvov
			}
		}
	}
	return dthydro
}
