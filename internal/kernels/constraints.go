package kernels

import (
	"math"

	"lulesh/internal/domain"
)

// Time-constraint kernels (CalcTimeConstraintsForElems).

// HugeDt is the sentinel "no constraint" time step of the reference.
const HugeDt = 1.0e20

// CourantConstraint returns the minimum Courant-limited time step over the
// elements regList[lo:hi] (CalcCourantConstraintForElems). Elements with
// zero vdov impose no constraint.
func CourantConstraint(d *domain.Domain, regList []int32, lo, hi int) float64 {
	qqc := d.Par.Qqc
	qqc2 := 64.0 * qqc * qqc
	dtcourant := HugeDt
	ss, vdov, arealg := d.SS, d.Vdov, d.Arealg
	for _, indx := range regList[lo:hi] {
		dtf := ss[indx] * ss[indx]
		if vdov[indx] < 0 {
			dtf += qqc2 * arealg[indx] * arealg[indx] *
				vdov[indx] * vdov[indx]
		}
		dtf = math.Sqrt(dtf)
		dtf = arealg[indx] / dtf
		if vdov[indx] != 0 && dtf < dtcourant {
			dtcourant = dtf
		}
	}
	return dtcourant
}

// HydroConstraint returns the minimum volume-change-limited time step over
// the elements regList[lo:hi] (CalcHydroConstraintForElems).
func HydroConstraint(d *domain.Domain, regList []int32, lo, hi int) float64 {
	dvovmax := d.Par.Dvovmax
	dthydro := HugeDt
	vdov := d.Vdov
	for _, indx := range regList[lo:hi] {
		if vdov[indx] != 0 {
			dtdvov := dvovmax / (math.Abs(vdov[indx]) + 1.0e-20)
			if dthydro > dtdvov {
				dthydro = dtdvov
			}
		}
	}
	return dthydro
}
