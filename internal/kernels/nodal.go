package kernels

import (
	"math"

	"lulesh/internal/domain"
	"lulesh/internal/mesh"
)

// Nodal update kernels: acceleration, acceleration boundary conditions,
// velocity and position integration (the back half of LagrangeNodal).

// CalcAcceleration computes nodal accelerations from forces and masses for
// nodes [lo, hi) (CalcAccelerationForNodes).
func CalcAcceleration(d *domain.Domain, lo, hi int) {
	for i := lo; i < hi; i++ {
		d.Xdd[i] = d.Fx[i] / d.NodalMass[i]
		d.Ydd[i] = d.Fy[i] / d.NodalMass[i]
		d.Zdd[i] = d.Fz[i] / d.NodalMass[i]
	}
}

// ApplyAccelBCList zeroes one acceleration component for the nodes listed
// in list[lo:hi], mirroring the reference's three symmetry-plane loops in
// ApplyAccelerationBoundaryConditionsForNodes. axis is 0, 1 or 2 for the
// x, y and z symmetry planes.
func ApplyAccelBCList(d *domain.Domain, list []int32, axis, lo, hi int) {
	var acc []float64
	switch axis {
	case 0:
		acc = d.Xdd
	case 1:
		acc = d.Ydd
	default:
		acc = d.Zdd
	}
	for i := lo; i < hi; i++ {
		acc[list[i]] = 0
	}
}

// ApplyAccelBCFlags zeroes the acceleration components of symmetry-plane
// nodes in [lo, hi) using the per-node symmetry flags. Numerically
// identical to ApplyAccelBCList over the three planes; the flag form lets
// the task backend fuse the boundary condition into its node-partition
// tasks instead of running three extra loops.
func ApplyAccelBCFlags(d *domain.Domain, lo, hi int) {
	flags := d.Mesh.SymmFlags
	for i := lo; i < hi; i++ {
		f := flags[i]
		if f == 0 {
			continue
		}
		if f&mesh.SymmFlagX != 0 {
			d.Xdd[i] = 0
		}
		if f&mesh.SymmFlagY != 0 {
			d.Ydd[i] = 0
		}
		if f&mesh.SymmFlagZ != 0 {
			d.Zdd[i] = 0
		}
	}
}

// CalcVelocity integrates nodal velocities for nodes [lo, hi), snapping
// tiny components to zero (CalcVelocityForNodes).
func CalcVelocity(d *domain.Domain, dt, uCut float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		xdtmp := d.Xd[i] + d.Xdd[i]*dt
		if math.Abs(xdtmp) < uCut {
			xdtmp = 0
		}
		d.Xd[i] = xdtmp

		ydtmp := d.Yd[i] + d.Ydd[i]*dt
		if math.Abs(ydtmp) < uCut {
			ydtmp = 0
		}
		d.Yd[i] = ydtmp

		zdtmp := d.Zd[i] + d.Zdd[i]*dt
		if math.Abs(zdtmp) < uCut {
			zdtmp = 0
		}
		d.Zd[i] = zdtmp
	}
}

// CalcPosition integrates nodal positions for nodes [lo, hi)
// (CalcPositionForNodes).
func CalcPosition(d *domain.Domain, dt float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		d.X[i] += d.Xd[i] * dt
		d.Y[i] += d.Yd[i] * dt
		d.Z[i] += d.Zd[i] * dt
	}
}
