package kernels

import (
	"math"

	"lulesh/internal/domain"
	"lulesh/internal/mesh"
)

// Nodal update kernels: acceleration, acceleration boundary conditions,
// velocity and position integration (the back half of LagrangeNodal).
//
// Each kernel takes equal-length [lo:hi) subslice views of the node planes
// and re-slices them to a common length so the compiler can prove every
// index in range and drop the bounds checks (verified with
// -d=ssa/check_bce). The loop bodies keep the reference's arithmetic
// order, so the results stay bitwise identical.

// CalcAcceleration computes nodal accelerations from forces and masses for
// nodes [lo, hi) (CalcAccelerationForNodes).
func CalcAcceleration(d *domain.Domain, lo, hi int) {
	nb := d.NodeBlock(lo, hi)
	xdd := nb.Xdd
	ydd := nb.Ydd[:len(xdd)]
	zdd := nb.Zdd[:len(xdd)]
	fx := nb.Fx[:len(xdd)]
	fy := nb.Fy[:len(xdd)]
	fz := nb.Fz[:len(xdd)]
	mass := nb.Mass[:len(xdd)]
	for i := range xdd {
		xdd[i] = fx[i] / mass[i]
		ydd[i] = fy[i] / mass[i]
		zdd[i] = fz[i] / mass[i]
	}
}

// ApplyAccelBCList zeroes one acceleration component for the nodes listed
// in list[lo:hi], mirroring the reference's three symmetry-plane loops in
// ApplyAccelerationBoundaryConditionsForNodes. axis is 0, 1 or 2 for the
// x, y and z symmetry planes.
func ApplyAccelBCList(d *domain.Domain, list []int32, axis, lo, hi int) {
	var acc []float64
	switch axis {
	case 0:
		acc = d.Xdd
	case 1:
		acc = d.Ydd
	default:
		acc = d.Zdd
	}
	// The node indices are data-dependent, so those loads keep their
	// bounds checks; ranging over the list view removes the list's own.
	for _, n := range list[lo:hi] {
		acc[n] = 0
	}
}

// ApplyAccelBCFlags zeroes the acceleration components of symmetry-plane
// nodes in [lo, hi) using the per-node symmetry flags. Numerically
// identical to ApplyAccelBCList over the three planes; the flag form lets
// the task backend fuse the boundary condition into its node-partition
// tasks instead of running three extra loops.
func ApplyAccelBCFlags(d *domain.Domain, lo, hi int) {
	nb := d.NodeBlock(lo, hi)
	flags := d.Mesh.SymmFlags[lo:hi]
	xdd := nb.Xdd[:len(flags)]
	ydd := nb.Ydd[:len(flags)]
	zdd := nb.Zdd[:len(flags)]
	for i, f := range flags {
		if f == 0 {
			continue
		}
		if f&mesh.SymmFlagX != 0 {
			xdd[i] = 0
		}
		if f&mesh.SymmFlagY != 0 {
			ydd[i] = 0
		}
		if f&mesh.SymmFlagZ != 0 {
			zdd[i] = 0
		}
	}
}

// CalcVelocity integrates nodal velocities for nodes [lo, hi), snapping
// tiny components to zero (CalcVelocityForNodes).
func CalcVelocity(d *domain.Domain, dt, uCut float64, lo, hi int) {
	nb := d.NodeBlock(lo, hi)
	xd := nb.Xd
	yd := nb.Yd[:len(xd)]
	zd := nb.Zd[:len(xd)]
	xdd := nb.Xdd[:len(xd)]
	ydd := nb.Ydd[:len(xd)]
	zdd := nb.Zdd[:len(xd)]
	for i := range xd {
		xdtmp := xd[i] + xdd[i]*dt
		if math.Abs(xdtmp) < uCut {
			xdtmp = 0
		}
		xd[i] = xdtmp

		ydtmp := yd[i] + ydd[i]*dt
		if math.Abs(ydtmp) < uCut {
			ydtmp = 0
		}
		yd[i] = ydtmp

		zdtmp := zd[i] + zdd[i]*dt
		if math.Abs(zdtmp) < uCut {
			zdtmp = 0
		}
		zd[i] = zdtmp
	}
}

// CalcPosition integrates nodal positions for nodes [lo, hi)
// (CalcPositionForNodes).
func CalcPosition(d *domain.Domain, dt float64, lo, hi int) {
	nb := d.NodeBlock(lo, hi)
	x := nb.X
	y := nb.Y[:len(x)]
	z := nb.Z[:len(x)]
	xd := nb.Xd[:len(x)]
	yd := nb.Yd[:len(x)]
	zd := nb.Zd[:len(x)]
	for i := range x {
		x[i] += xd[i] * dt
		y[i] += yd[i] * dt
		z[i] += zd[i] * dt
	}
}
