package kernels

import (
	"math"
	"math/rand"
	"testing"

	"lulesh/internal/mesh"
)

func TestCalcAcceleration(t *testing.T) {
	d := testDomain(2)
	for n := range d.Fx {
		d.Fx[n] = 2 * float64(n+1)
		d.Fy[n] = -float64(n + 1)
		d.Fz[n] = 0.5 * float64(n+1)
	}
	CalcAcceleration(d, 0, d.NumNode())
	for n := range d.Xdd {
		m := d.NodalMass[n]
		if d.Xdd[n] != d.Fx[n]/m || d.Ydd[n] != d.Fy[n]/m || d.Zdd[n] != d.Fz[n]/m {
			t.Fatalf("acceleration wrong at node %d", n)
		}
	}
}

func TestAccelBCFlagsMatchesLists(t *testing.T) {
	// The fused flag-based boundary condition must be exactly equivalent
	// to the reference's three list loops.
	d1 := testDomain(3)
	d2 := testDomain(3)
	rng := rand.New(rand.NewSource(2))
	for n := range d1.Xdd {
		v := rng.NormFloat64()
		d1.Xdd[n], d2.Xdd[n] = v, v
		v = rng.NormFloat64()
		d1.Ydd[n], d2.Ydd[n] = v, v
		v = rng.NormFloat64()
		d1.Zdd[n], d2.Zdd[n] = v, v
	}
	ApplyAccelBCList(d1, d1.Mesh.SymmX, 0, 0, len(d1.Mesh.SymmX))
	ApplyAccelBCList(d1, d1.Mesh.SymmY, 1, 0, len(d1.Mesh.SymmY))
	ApplyAccelBCList(d1, d1.Mesh.SymmZ, 2, 0, len(d1.Mesh.SymmZ))
	ApplyAccelBCFlags(d2, 0, d2.NumNode())
	for n := range d1.Xdd {
		if d1.Xdd[n] != d2.Xdd[n] || d1.Ydd[n] != d2.Ydd[n] || d1.Zdd[n] != d2.Zdd[n] {
			t.Fatalf("BC mismatch at node %d", n)
		}
	}
}

func TestAccelBCZeroesOnlySymmetryComponents(t *testing.T) {
	d := testDomain(2)
	for n := range d.Xdd {
		d.Xdd[n], d.Ydd[n], d.Zdd[n] = 1, 1, 1
	}
	ApplyAccelBCFlags(d, 0, d.NumNode())
	for n := range d.Xdd {
		f := d.Mesh.SymmFlags[n]
		if (f&mesh.SymmFlagX != 0) != (d.Xdd[n] == 0) {
			t.Fatalf("x BC wrong at node %d", n)
		}
		if (f&mesh.SymmFlagY != 0) != (d.Ydd[n] == 0) {
			t.Fatalf("y BC wrong at node %d", n)
		}
		if (f&mesh.SymmFlagZ != 0) != (d.Zdd[n] == 0) {
			t.Fatalf("z BC wrong at node %d", n)
		}
	}
}

func TestCalcVelocityIntegration(t *testing.T) {
	d := testDomain(2)
	dt := 0.25
	for n := range d.Xd {
		d.Xd[n] = 1.0
		d.Xdd[n] = 4.0
		d.Yd[n] = -2.0
		d.Ydd[n] = 0.0
		d.Zd[n] = 0.0
		d.Zdd[n] = -8.0
	}
	CalcVelocity(d, dt, 1e-7, 0, d.NumNode())
	for n := range d.Xd {
		if d.Xd[n] != 2.0 || d.Yd[n] != -2.0 || d.Zd[n] != -2.0 {
			t.Fatalf("velocity at node %d = (%v,%v,%v)", n, d.Xd[n], d.Yd[n], d.Zd[n])
		}
	}
}

func TestCalcVelocityCutoff(t *testing.T) {
	d := testDomain(1)
	d.Xd[0] = 1e-9
	d.Xdd[0] = 0
	d.Yd[0] = -1e-8
	d.Ydd[0] = 0
	d.Zd[0] = 1e-6 // above the cut
	d.Zdd[0] = 0
	CalcVelocity(d, 1.0, 1e-7, 0, 1)
	if d.Xd[0] != 0 || d.Yd[0] != 0 {
		t.Fatalf("sub-cutoff velocities not snapped: %v %v", d.Xd[0], d.Yd[0])
	}
	if d.Zd[0] != 1e-6 {
		t.Fatalf("above-cutoff velocity altered: %v", d.Zd[0])
	}
}

func TestCalcPosition(t *testing.T) {
	d := testDomain(2)
	dt := 0.5
	x0 := make([]float64, d.NumNode())
	copy(x0, d.X)
	for n := range d.Xd {
		d.Xd[n] = float64(n)
		d.Yd[n] = 1.0
		d.Zd[n] = -1.0
	}
	y0 := make([]float64, d.NumNode())
	copy(y0, d.Y)
	z0 := make([]float64, d.NumNode())
	copy(z0, d.Z)
	CalcPosition(d, dt, 0, d.NumNode())
	for n := range d.X {
		if math.Abs(d.X[n]-(x0[n]+float64(n)*dt)) > 1e-15 ||
			math.Abs(d.Y[n]-(y0[n]+dt)) > 1e-15 ||
			math.Abs(d.Z[n]-(z0[n]-dt)) > 1e-15 {
			t.Fatalf("position at node %d wrong", n)
		}
	}
}

func TestNodalKernelsRangeRestriction(t *testing.T) {
	// Kernels must touch only [lo, hi).
	d := testDomain(3)
	for n := range d.Fx {
		d.Fx[n], d.Fy[n], d.Fz[n] = 1, 1, 1
	}
	lo, hi := 5, 12
	CalcAcceleration(d, lo, hi)
	for n := 0; n < d.NumNode(); n++ {
		inside := n >= lo && n < hi
		if inside && d.Xdd[n] == 0 {
			t.Fatalf("node %d in range not updated", n)
		}
		if !inside && d.Xdd[n] != 0 {
			t.Fatalf("node %d outside range modified", n)
		}
	}
}
