package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"time"
)

// ExitRecoverable is the exit status a worker process uses to say "I
// failed in a way checkpoint restart can fix" (a lost peer, an exchange
// timeout). The launcher relaunches the whole fabric on it; any other
// nonzero status is fatal. 75 is the BSD EX_TEMPFAIL convention.
const ExitRecoverable = 75

// PickRendezvous binds an ephemeral localhost port and releases it,
// returning an address the fabric can rendezvous on. The usual
// bind-then-close race is acceptable here: the launcher uses it
// immediately, and a collision surfaces as a bootstrap error, not
// corruption.
func PickRendezvous() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// LaunchSpec tells Launch how to run one multi-process fabric.
type LaunchSpec struct {
	NP     int    // number of worker processes (ranks)
	Binary string // worker executable (usually os.Executable())

	// Args builds the argument list for one worker. attempt counts
	// restarts (0 = first launch) so workers can disable one-shot fault
	// plans on relaunch; rendezvous is the fabric's bootstrap address,
	// fresh per attempt.
	Args func(rank, attempt int, rendezvous string) []string

	// MaxRestarts bounds full-fabric relaunches after a recoverable
	// failure. 0 means no restarts.
	MaxRestarts int

	Stdout, Stderr io.Writer // worker output (defaults: os.Stdout/err)
}

type procResult struct {
	rank int
	err  error // nil on exit 0
}

// Launch forks NP worker processes, waits for them, and — when a worker
// fails recoverably (ExitRecoverable, or killed by a signal) — kills
// the survivors and relaunches the whole fabric so every rank restarts
// from the last committed checkpoint together. It returns nil when all
// workers of some attempt exit cleanly.
func Launch(spec LaunchSpec) error {
	if spec.NP < 1 {
		return fmt.Errorf("wire: launch needs NP >= 1, got %d", spec.NP)
	}
	if spec.Stdout == nil {
		spec.Stdout = os.Stdout
	}
	if spec.Stderr == nil {
		spec.Stderr = os.Stderr
	}
	for attempt := 0; ; attempt++ {
		rendezvous, err := PickRendezvous()
		if err != nil {
			return fmt.Errorf("wire: pick rendezvous: %w", err)
		}
		failure, err := runAttempt(spec, attempt, rendezvous)
		if err != nil {
			return err
		}
		if failure == nil {
			return nil
		}
		if !recoverableExit(failure.err) || attempt >= spec.MaxRestarts {
			return fmt.Errorf("wire: rank %d (attempt %d): %w", failure.rank, attempt, failure.err)
		}
		fmt.Fprintf(spec.Stderr, "launcher: rank %d failed recoverably (%v); relaunching fabric (attempt %d/%d)\n",
			failure.rank, failure.err, attempt+1, spec.MaxRestarts)
	}
}

// runAttempt starts one full fabric and waits it out. It returns the
// first failure (nil if every rank exited 0); on any failure the
// surviving workers are killed so the next attempt starts from a clean
// slate.
func runAttempt(spec LaunchSpec, attempt int, rendezvous string) (*procResult, error) {
	cmds := make([]*exec.Cmd, spec.NP)
	for rank := 0; rank < spec.NP; rank++ {
		cmd := exec.Command(spec.Binary, spec.Args(rank, attempt, rendezvous)...)
		cmd.Stdout = spec.Stdout
		cmd.Stderr = spec.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:rank] {
				c.Process.Kill()
				c.Wait()
			}
			return nil, fmt.Errorf("wire: start rank %d: %w", rank, err)
		}
		cmds[rank] = cmd
	}
	results := make(chan procResult, spec.NP)
	for rank, cmd := range cmds {
		go func(rank int, cmd *exec.Cmd) {
			results <- procResult{rank: rank, err: cmd.Wait()}
		}(rank, cmd)
	}
	var failure *procResult
	for done := 0; done < spec.NP; done++ {
		r := <-results
		if r.err != nil && failure == nil {
			failure = &r
			// First failure dooms the attempt: kill the survivors now
			// rather than letting them burn their retry budgets.
			for rank, cmd := range cmds {
				if rank != r.rank {
					cmd.Process.Kill()
				}
			}
		}
	}
	return failure, nil
}

// recoverableExit classifies a worker's death: ExitRecoverable from the
// worker's own recovery classification, or a signal kill (the chaos
// test's SIGKILL, an OOM kill) — both are what checkpoint restart
// exists for. A worker that exited with any other code made a
// deliberate fatal report.
func recoverableExit(err error) bool {
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		return false
	}
	if ee.ExitCode() == ExitRecoverable {
		return true
	}
	return ee.ExitCode() == -1 // killed by a signal
}

// Cookie derives a per-run shared secret for the hello signature. It
// needs to be unpredictable only across unrelated runs on one host, so
// launcher PID and start time suffice.
func Cookie() string {
	return fmt.Sprintf("lulesh-%d-%d", os.Getpid(), time.Now().UnixNano())
}
