package wire

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lulesh/internal/comm"
)

// joinAll hosts a whole fabric in one test process: every rank runs
// Join concurrently against a fresh rendezvous address, exactly as the
// launcher's worker processes would.
func joinAll(t *testing.T, size int, mutate func(rank int, cfg *Config)) []*Fabric {
	t.Helper()
	rdv, err := PickRendezvous()
	if err != nil {
		t.Fatalf("PickRendezvous: %v", err)
	}
	fabs := make([]*Fabric, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := Config{
				Rank: r, Size: size, Rendezvous: rdv, Cookie: "test-cookie",
				Geometry:         Geometry{Size: 8, Iterations: 10, Schedule: "sync"},
				HandshakeTimeout: 5 * time.Second,
			}
			if mutate != nil {
				mutate(r, &cfg)
			}
			fabs[r], errs[r] = Join(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, f := range fabs {
			if f != nil {
				f.Close()
			}
		}
	})
	return fabs
}

func TestExchangeOverSockets(t *testing.T) {
	const size = 4
	fabs := joinAll(t, size, nil)
	eps := make([]*comm.Endpoint, size)
	for r, f := range fabs {
		c := f.Cluster(comm.Options{})
		eps[r] = c.Endpoint(r)
	}

	// Full all-pairs exchange: every rank sends a distinct slab to every
	// other rank and verifies what it gets back.
	var wg sync.WaitGroup
	fail := make(chan string, size*size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for p := 0; p < size; p++ {
				if p == r {
					continue
				}
				eps[r].Send(p, comm.TagReduce, []float64{float64(r), float64(p), 3.25})
			}
			for p := 0; p < size; p++ {
				if p == r {
					continue
				}
				got, err := eps[r].RecvDeadline(p, comm.TagReduce)
				if err != nil {
					fail <- err.Error()
					return
				}
				if len(got) != 3 || got[0] != float64(p) || got[1] != float64(r) || got[2] != 3.25 {
					fail <- "bad payload"
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}

	s := fabs[0].Stats()
	if s.FramesOut < int64(size-1) || s.BytesOut == 0 {
		t.Errorf("rank 0 stats implausible: %+v", s)
	}
}

func TestGoodbyeLinger(t *testing.T) {
	fabs := joinAll(t, 2, nil)
	eps := make([]*comm.Endpoint, 2)
	for r, f := range fabs {
		eps[r] = f.Cluster(comm.Options{}).Endpoint(r)
	}
	var wg sync.WaitGroup
	for r := range fabs {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fabs[r].Goodbye()
			fabs[r].Linger(eps[r], 5*time.Second)
		}(r)
	}
	wg.Wait()
	for r, f := range fabs {
		if s := f.Stats(); s.ByesSeen != 1 || s.PeersDead != 0 {
			t.Errorf("rank %d: byes=%d dead=%d, want 1/0", r, s.ByesSeen, s.PeersDead)
		}
	}
}

func TestPeerDeathDetection(t *testing.T) {
	fabs := joinAll(t, 2, nil)
	c0 := fabs[0].Cluster(comm.Options{ExchangeDeadline: 50 * time.Millisecond, RetryLimit: 2})
	fabs[1].Cluster(comm.Options{})
	ep := c0.Endpoint(0)

	// Rank 1 vanishes without a bye (socket close = FIN, no goodbye
	// frame): rank 0 must classify the loss as a crashed peer.
	fabs[1].Close()
	_, err := ep.RecvDeadline(1, comm.TagReduce)
	if !errors.Is(err, comm.ErrRankCrashed) && !errors.Is(err, comm.ErrExchangeTimeout) {
		t.Fatalf("recv from dead peer: %v, want rank-crashed or exchange-timeout", err)
	}
	if fabs[0].PeerDead(1) == nil {
		t.Error("PeerDead(1) still nil after the peer closed without a bye")
	}
}

func TestBootstrapRejectsWrongCookie(t *testing.T) {
	rdv, err := PickRendezvous()
	if err != nil {
		t.Fatal(err)
	}
	geo := Geometry{Size: 8, Iterations: 10, Schedule: "sync"}
	rootErr := make(chan error, 1)
	go func() {
		_, err := Join(Config{Rank: 0, Size: 2, Rendezvous: rdv, Cookie: "right",
			Geometry: geo, HandshakeTimeout: 3 * time.Second})
		rootErr <- err
	}()
	_, werr := Join(Config{Rank: 1, Size: 2, Rendezvous: rdv, Cookie: "wrong",
		Geometry: geo, HandshakeTimeout: 3 * time.Second})
	if rerr := <-rootErr; rerr == nil {
		t.Error("root accepted a wrong-cookie hello")
	} else if !strings.Contains(rerr.Error(), "signature") {
		t.Errorf("root error %q does not mention the signature", rerr)
	}
	if werr == nil {
		t.Error("worker with the wrong cookie joined")
	}
}

func TestBootstrapRejectsGeometryMismatch(t *testing.T) {
	rdv, err := PickRendezvous()
	if err != nil {
		t.Fatal(err)
	}
	rootErr := make(chan error, 1)
	go func() {
		_, err := Join(Config{Rank: 0, Size: 2, Rendezvous: rdv, Cookie: "c",
			Geometry:         Geometry{Size: 8, Iterations: 10, Schedule: "sync"},
			HandshakeTimeout: 3 * time.Second})
		rootErr <- err
	}()
	_, werr := Join(Config{Rank: 1, Size: 2, Rendezvous: rdv, Cookie: "c",
		Geometry:         Geometry{Size: 16, Iterations: 10, Schedule: "sync"},
		HandshakeTimeout: 3 * time.Second})
	rerr := <-rootErr
	if rerr == nil {
		t.Error("root accepted a mismatched geometry")
	}
	if rerr != nil && !strings.Contains(rerr.Error(), "solves") {
		t.Errorf("root error %q does not name the geometry clash", rerr)
	}
	_ = werr // the worker sees either the refusal or a closed socket
}

func TestBootstrapRejectsDoubleJoin(t *testing.T) {
	rdv, err := PickRendezvous()
	if err != nil {
		t.Fatal(err)
	}
	geo := Geometry{Size: 8, Iterations: 10, Schedule: "sync"}
	rootErr := make(chan error, 1)
	go func() {
		_, err := Join(Config{Rank: 0, Size: 3, Rendezvous: rdv, Cookie: "c",
			Geometry: geo, HandshakeTimeout: 3 * time.Second})
		rootErr <- err
	}()
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := Join(Config{Rank: 1, Size: 3, Rendezvous: rdv, Cookie: "c",
				Geometry: geo, HandshakeTimeout: 3 * time.Second})
			done <- err
		}()
	}
	if rerr := <-rootErr; rerr == nil || !strings.Contains(rerr.Error(), "twice") {
		t.Errorf("root: %v, want a joined-twice refusal", rerr)
	}
	<-done
	<-done
}

// The send path must stay allocation-free in steady state: the slab is
// copied into a recycled frame buffer and the unsafe byte view hits the
// socket without further copies. This drives a real TCP socket and the
// full sender stack — Endpoint.Send through Fabric.SendData, the frame
// freelist and the writer goroutine. The receiving end drains raw bytes
// with a reused buffer so the reported allocations are the sender's
// alone (an in-process receiver cluster would add its own deliberate
// per-message receive allocations to the global count).
func BenchmarkWireSendSlab(b *testing.B) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			b.Error(err)
			close(accepted)
			return
		}
		accepted <- c
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	peer, ok := <-accepted
	if !ok {
		b.FailNow()
	}
	go func() {
		buf := make([]byte, 1<<16)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	defer peer.Close()

	cfg := Config{Rank: 0, Size: 2, Cookie: "bench"}.withDefaults()
	f := newFabric(cfg)
	f.conns[1] = newPeerConn(f, 1, nc)
	ep := f.Cluster(comm.Options{}).Endpoint(0)
	defer f.Close()

	slab := make([]float64, 45*45)
	ep.Send(1, comm.TagReduce, slab) // warm the stream's reuse buffers
	b.SetBytes(int64(8 * len(slab)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep.Send(1, comm.TagReduce, slab)
	}
}
