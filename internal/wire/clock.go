package wire

import "time"

// Clock-offset estimation (NTP-lite). Merged fleet traces need every
// rank's spans on one clock; the fabric estimates each peer's clock
// offset with header-only ping/pong probes:
//
//	t0  local clock when the ping leaves (stamped into sendNs by the
//	    writer goroutine)
//	t1  peer clock when the pong leaves (the peer's reader echoes t0
//	    into the pong's seq field; the pong's own sendNs is t1)
//	t3  local clock when the pong arrives
//
// Assuming symmetric paths, offset = t1 − (t0+t3)/2 estimates
// peerClock − localClock with error bounded by half the round trip, so
// the sample with the smallest RTT wins. Probes run at bootstrap
// (Cluster sends a burst) and whenever the driver calls SyncClock —
// every N steps in traced runs — to track drift.

// clockProbes is the bootstrap burst size; the minimum-RTT filter picks
// the best of these.
const clockProbes = 4

// clockSample folds one completed ping/pong round trip into the
// connection's estimate, keeping the lowest-RTT sample. Reader
// goroutine; the mutex guards against Fabric.ClockOffset readers.
func (p *peerConn) clockSample(t1, t0, t3 int64) {
	rtt := t3 - t0
	if rtt < 0 {
		return // nonsense echo (clock stepped mid-probe); drop it
	}
	off := t1 - (t0+t3)/2
	p.mu.Lock()
	if !p.clockOK || rtt < p.clockRTTNs {
		p.clockOffNs, p.clockRTTNs, p.clockOK = off, rtt, true
	}
	p.mu.Unlock()
}

// PingPeer enqueues one clock probe toward a peer. Fire and forget: the
// estimate updates when the echo returns.
func (f *Fabric) PingPeer(peer int) {
	pc := f.conns[peer]
	if pc == nil || pc.dead() != nil {
		return
	}
	fr := pc.getFrame()
	fr.typ, fr.tag, fr.seq, fr.delay = framePing, 0, 0, 0
	fr.data = fr.data[:0]
	_ = pc.enqueue(fr)
}

// SyncClock probes rank 0 n times (n <= 0 uses the bootstrap burst
// size). Rank 0 defines the fleet clock, so it never probes.
func (f *Fabric) SyncClock(n int) {
	if f.rank == 0 || f.size < 2 {
		return
	}
	if n <= 0 {
		n = clockProbes
	}
	for i := 0; i < n; i++ {
		f.PingPeer(0)
	}
}

// ClockOffset reports the best estimate of peerClock − localClock and
// the round trip it was measured over. ok is false until the first echo
// returns (or for self / unconnected peers).
func (f *Fabric) ClockOffset(peer int) (offset, rtt time.Duration, ok bool) {
	if peer == f.rank {
		return 0, 0, true
	}
	pc := f.conns[peer]
	if pc == nil {
		return 0, 0, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return time.Duration(pc.clockOffNs), time.Duration(pc.clockRTTNs), pc.clockOK
}

// RootOffset is ClockOffset(0): what to add to local timestamps to land
// on rank 0's clock — the fleet trace's time base.
func (f *Fabric) RootOffset() (offset, rtt time.Duration, ok bool) {
	return f.ClockOffset(0)
}
