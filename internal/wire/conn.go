package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lulesh/internal/comm"
)

// sendQueueCap bounds the per-connection send queue: a sender that gets
// this far ahead of the writer goroutine blocks until the queue drains
// (backpressure), instead of growing without bound. The exchange
// protocol keeps only a handful of messages in flight per pair, so the
// queue fills only when the peer genuinely stops draining.
const sendQueueCap = 64

// errPeerClosed reports a send attempted after the fabric shut the
// connection down.
var errPeerClosed = errors.New("wire: connection closed")

// frame is one queued outgoing message. Frames cycle through a
// per-connection freelist, and their float payload buffers are reused
// across sends, so the steady-state send path allocates nothing.
type frame struct {
	typ   byte
	tag   comm.Tag
	seq   uint64
	delay time.Duration
	data  []float64
}

// peerConn is one full-duplex TCP connection to a peer rank. Sends are
// enqueued (from the local rank's goroutine) onto sendq and drained in
// batches by the writer goroutine, which also emits heartbeats; the
// reader goroutine decodes incoming frames and injects them into the
// local comm cluster. Either goroutine marks the connection dead on
// failure, which the endpoint protocol surfaces as ErrRankCrashed.
type peerConn struct {
	peer int
	fb   *Fabric
	nc   net.Conn
	bw   *bufio.Writer

	sendq chan *frame
	free  chan *frame

	closed    chan struct{}
	closeOnce sync.Once
	writerWG  sync.WaitGroup
	readerWG  sync.WaitGroup

	mu       sync.Mutex
	deadErr  error
	graceful bool // peer sent bye: its silence is completion, not failure

	// Best clock-offset sample for this peer (clock.go), guarded by mu.
	clockOffNs int64
	clockRTTNs int64
	clockOK    bool

	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	framesIn  atomic.Int64
	framesOut atomic.Int64
	ctrlIn    atomic.Int64

	hdrBuf  [headerLen]byte // writer goroutine only
	scratch []byte          // big-endian-host encode buffer (writer only)
	readBuf []byte          // reader goroutine only

	failed bool // writer-local: stop writing after the first error
}

func newPeerConn(fb *Fabric, peer int, nc net.Conn) *peerConn {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // ghost slabs are latency-bound, not bandwidth-bound
	}
	return &peerConn{
		peer:  peer,
		fb:    fb,
		nc:    nc,
		bw:    bufio.NewWriterSize(nc, 64<<10),
		sendq: make(chan *frame, sendQueueCap),
		// One slot beyond the send queue: queue-full frames plus the one
		// in the writer's hands all fit back, so steady state never drops
		// a warm buffer from the freelist.
		free:   make(chan *frame, sendQueueCap+1),
		closed: make(chan struct{}),
	}
}

// getFrame pops a frame from the freelist, or allocates during warm-up.
func (p *peerConn) getFrame() *frame {
	select {
	case fr := <-p.free:
		return fr
	default:
		return &frame{}
	}
}

func (p *peerConn) recycle(fr *frame) {
	select {
	case p.free <- fr:
	default:
	}
}

// enqueue hands a frame to the writer goroutine, blocking while the
// bounded queue is full. The writer drains the queue even after the
// connection dies, so this cannot wedge; once the fabric is closed the
// frame is recycled and the send reports errPeerClosed.
func (p *peerConn) enqueue(fr *frame) error {
	select {
	case p.sendq <- fr:
		return nil
	case <-p.closed:
		p.recycle(fr)
		return errPeerClosed
	}
}

// dead returns the connection's failure, nil while it is healthy or
// after the peer said goodbye (an orderly end of run is not a failure).
func (p *peerConn) dead() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.graceful {
		return nil
	}
	return p.deadErr
}

func (p *peerConn) markDead(err error) {
	p.mu.Lock()
	if p.deadErr == nil {
		p.deadErr = err
	}
	p.mu.Unlock()
}

func (p *peerConn) markGraceful() {
	p.mu.Lock()
	p.graceful = true
	p.mu.Unlock()
	p.fb.byes.Add(1)
}

// start launches the writer and reader goroutines. The reader needs the
// fabric's cluster to inject into, so start runs from Fabric.Cluster.
func (p *peerConn) start() {
	p.writerWG.Add(1)
	go p.writer()
	p.readerWG.Add(1)
	go p.reader()
}

// close shuts the connection down in order: stop the writer (it drains
// and flushes pending frames, bye included), then close the socket,
// which unblocks the reader.
func (p *peerConn) close() {
	p.closeOnce.Do(func() { close(p.closed) })
	p.writerWG.Wait()
	p.nc.Close()
	p.readerWG.Wait()
}

// writer drains sendq in batches — one flush per wakeup, not per frame —
// and heartbeats through idle stretches so the peer's read deadline
// measures liveness, not traffic. After a write error it keeps draining
// (discarding) so senders blocked on the queue are released; it exits
// only when the fabric closes the connection.
func (p *peerConn) writer() {
	defer p.writerWG.Done()
	tick := time.NewTicker(p.fb.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-p.closed:
			for {
				select {
				case fr := <-p.sendq:
					p.writeFrame(fr)
					p.recycle(fr)
				default:
					p.flush()
					return
				}
			}
		case fr := <-p.sendq:
			p.writeFrame(fr)
			p.recycle(fr)
		drain:
			for {
				select {
				case fr := <-p.sendq:
					p.writeFrame(fr)
					p.recycle(fr)
				default:
					break drain
				}
			}
			p.flush()
		case <-tick.C:
			p.writeHeader(frameHeader{typ: frameHeartbeat, from: p.fb.rank})
			p.flush()
		}
	}
}

func (p *peerConn) writeFrame(fr *frame) {
	// Span context is stamped at write time, not enqueue time: sendNs is
	// the instant the bytes head for the socket, which is what the
	// receiver's clock-offset alignment pairs against. For pongs, seq
	// already carries the echoed probe clock (reader side) and sendNs
	// becomes the echo's own transmit time t1.
	now := time.Now()
	h := frameHeader{
		typ:    fr.typ,
		tag:    fr.tag,
		from:   p.fb.rank,
		seq:    fr.seq,
		delay:  fr.delay,
		sendNs: now.UnixNano(),
		step:   uint32(p.fb.stepNum.Load()),
		phase:  phaseForTag(fr.tag),
	}
	if fr.typ == frameData {
		h.payload = uint32(8 * len(fr.data))
	}
	p.writeHeader(h)
	if p.failed {
		return
	}
	if fr.typ == frameData && len(fr.data) > 0 {
		var err error
		if hostLittleEndian {
			_, err = p.bw.Write(floatsAsBytes(fr.data))
		} else {
			p.scratch = appendFloatsPortable(p.scratch[:0], fr.data)
			_, err = p.bw.Write(p.scratch)
		}
		if err != nil {
			p.fail(err)
			return
		}
		p.bytesOut.Add(int64(8 * len(fr.data)))
	}
}

func (p *peerConn) writeHeader(h frameHeader) {
	if p.failed {
		return
	}
	putHeader(p.hdrBuf[:], h)
	if _, err := p.bw.Write(p.hdrBuf[:]); err != nil {
		p.fail(err)
		return
	}
	p.bytesOut.Add(headerLen)
	p.framesOut.Add(1)
}

func (p *peerConn) flush() {
	if p.failed {
		return
	}
	// A peer that stops draining would park us in Flush forever; the
	// deadline turns that into a detected failure instead.
	p.nc.SetWriteDeadline(time.Now().Add(p.fb.cfg.PeerTimeout))
	if err := p.bw.Flush(); err != nil {
		p.fail(err)
	}
}

func (p *peerConn) fail(err error) {
	p.failed = true
	p.markDead(fmt.Errorf("wire: write to rank %d: %w", p.peer, err))
}

// reader decodes incoming frames and feeds them to the fabric. The read
// deadline is the hang detector: a healthy peer heartbeats well inside
// PeerTimeout, so a deadline miss means the peer (or the path to it) is
// gone even though the socket never closed.
func (p *peerConn) reader() {
	defer p.readerWG.Done()
	hdr := make([]byte, headerLen)
	for {
		p.nc.SetReadDeadline(time.Now().Add(p.fb.cfg.PeerTimeout))
		if _, err := io.ReadFull(p.nc, hdr); err != nil {
			p.readerExit(err)
			return
		}
		h, err := parseHeader(hdr)
		if err != nil {
			p.readerExit(err)
			return
		}
		if h.from != p.peer {
			p.readerExit(fmt.Errorf("wire: frame claims rank %d on rank %d's connection", h.from, p.peer))
			return
		}
		if n := int(h.payload); n > 0 {
			if cap(p.readBuf) < n {
				p.readBuf = make([]byte, n)
			}
			p.readBuf = p.readBuf[:n]
			if _, err := io.ReadFull(p.nc, p.readBuf); err != nil {
				p.readerExit(err)
				return
			}
		} else {
			p.readBuf = p.readBuf[:0]
		}
		p.bytesIn.Add(headerLen + int64(h.payload))
		p.framesIn.Add(1)
		switch h.typ {
		case frameData:
			// The receiving endpoint's mailbox retains the payload, so
			// each data frame decodes into fresh memory.
			p.fb.cluster.InjectData(p.peer, h.tag, h.seq, h.delay, decodeFloats(p.readBuf))
			if tr := p.fb.tracer; tr != nil && h.tag != comm.TagTrace {
				tr.RecordRecv(p.peer, h.tag, h.seq, int(h.step), int(h.payload), time.Now(), h.sendNs)
			}
		case frameCtrl:
			p.ctrlIn.Add(1)
			p.fb.cluster.InjectCtrl(p.peer, h.tag, h.seq)
		case frameHeartbeat:
			// liveness only
		case framePing:
			// Echo the probe's clock back in the seq field; the writer
			// stamps the pong's own transmit time (t1) into sendNs.
			fr := p.getFrame()
			fr.typ, fr.tag, fr.seq, fr.delay = framePong, 0, uint64(h.sendNs), 0
			fr.data = fr.data[:0]
			_ = p.enqueue(fr) // a closing fabric just drops the echo
		case framePong:
			p.clockSample(h.sendNs /* t1 */, int64(h.seq) /* t0 */, time.Now().UnixNano() /* t3 */)
		case frameBye:
			p.markGraceful()
		default:
			p.readerExit(fmt.Errorf("wire: unexpected %s frame after handshake", frameTypeName(h.typ)))
			return
		}
	}
}

// readerExit classifies why the read loop ended. A close initiated by
// our own fabric, or any silence after the peer's bye, is orderly;
// everything else — EOF without bye (the peer process died), a reset, a
// deadline miss, a protocol violation — marks the peer dead.
func (p *peerConn) readerExit(err error) {
	select {
	case <-p.closed:
		return
	default:
	}
	p.mu.Lock()
	graceful := p.graceful
	p.mu.Unlock()
	if graceful {
		return
	}
	p.markDead(fmt.Errorf("wire: connection to rank %d lost: %w", p.peer, err))
}
