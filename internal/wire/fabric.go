package wire

import (
	"fmt"
	"sync/atomic"
	"time"

	"lulesh/internal/comm"
)

// Fabric is one rank's connected view of the TCP mesh: a live peerConn
// per remote rank, promoted into a comm remote cluster by Cluster. It
// implements comm.RemoteLink, so the endpoint protocol drives it without
// knowing sockets exist.
type Fabric struct {
	cfg     Config
	rank    int
	size    int
	conns   []*peerConn // indexed by rank; conns[rank] is nil (self)
	cluster *comm.Cluster

	byes    atomic.Int64 // peers that announced an orderly end of run
	started atomic.Bool

	// Distributed tracing: span sink fed by the writer/reader goroutines
	// (set before Cluster; nil = disabled) and the driver timestep
	// stamped into outgoing frame headers.
	tracer  comm.TraceSink
	stepNum atomic.Int64
}

func newFabric(cfg Config) *Fabric {
	return &Fabric{
		cfg:   cfg,
		rank:  cfg.Rank,
		size:  cfg.Size,
		conns: make([]*peerConn, cfg.Size),
	}
}

// SetTracer attaches a span sink to the wire layer: every data frame
// written records a send span and every data frame read records a recv
// span carrying the sender's header clock. Must be called between Join
// and Cluster — the per-connection goroutines read the field unlocked.
func (f *Fabric) SetTracer(s comm.TraceSink) {
	if f.started.Load() {
		panic("wire: SetTracer after Cluster")
	}
	f.tracer = s
}

// SetStep stamps subsequent outgoing frames with the driver's timestep.
func (f *Fabric) SetStep(step int) { f.stepNum.Store(int64(step)) }

// Rank reports the local rank.
func (f *Fabric) Rank() int { return f.rank }

// Size reports the fabric size.
func (f *Fabric) Size() int { return f.size }

// Cluster wraps the fabric in a comm remote cluster and starts the
// per-connection writer and reader goroutines. opt carries the
// fault-tolerance knobs (deadline, retry budget, fault injection); the
// transport still runs on the sender, so drop/delay/dup/reorder
// injection composes with the wire unchanged. Call once.
func (f *Fabric) Cluster(opt comm.Options) *comm.Cluster {
	if !f.started.CompareAndSwap(false, true) {
		panic("wire: Fabric.Cluster called twice")
	}
	f.cluster = comm.NewRemoteCluster(f.rank, f.size, opt, f)
	for _, pc := range f.conns {
		if pc != nil {
			pc.start()
		}
	}
	// Clock bootstrap: workers probe rank 0 so fleet traces can align
	// every rank's spans to one clock (see clock.go). Fire and forget —
	// the echoes fold in while the run warms up.
	f.SyncClock(clockProbes)
	return f.cluster
}

// SendData implements comm.RemoteLink: serialize one data message toward
// a peer. The payload is copied into a recycled frame buffer before
// return (the caller reuses data for the stream's next message), and the
// enqueue blocks when the bounded send queue is full — backpressure, not
// unbounded buffering. A dead peer fails fast; the endpoint's failure
// detection owns the consequences.
func (f *Fabric) SendData(to int, tag comm.Tag, seq uint64, delay time.Duration, data []float64) error {
	pc := f.conns[to]
	if pc == nil {
		return fmt.Errorf("wire: no connection to rank %d", to)
	}
	if err := pc.dead(); err != nil {
		return err
	}
	fr := pc.getFrame()
	fr.typ, fr.tag, fr.seq, fr.delay = frameData, tag, seq, delay
	if cap(fr.data) < len(data) {
		fr.data = make([]float64, len(data))
	}
	fr.data = fr.data[:len(data)]
	copy(fr.data, data)
	if err := pc.enqueue(fr); err != nil {
		return err
	}
	// The send span is recorded here, on the caller's goroutine, not at
	// write time: the caller's next action (including the post-run trace
	// drain) must observe it. TagTrace is the gather's own meta-traffic —
	// tracing it would race the drain by construction on both ends.
	if tr := f.tracer; tr != nil && tag != comm.TagTrace {
		tr.RecordSend(to, tag, seq, int(f.stepNum.Load()), 8*len(data), time.Now())
	}
	return nil
}

// SendCtrl implements comm.RemoteLink: a header-only resend request.
func (f *Fabric) SendCtrl(to int, tag comm.Tag, seq uint64) error {
	pc := f.conns[to]
	if pc == nil {
		return fmt.Errorf("wire: no connection to rank %d", to)
	}
	if err := pc.dead(); err != nil {
		return err
	}
	fr := pc.getFrame()
	fr.typ, fr.tag, fr.seq, fr.delay = frameCtrl, tag, seq, 0
	fr.data = fr.data[:0]
	return pc.enqueue(fr)
}

// PeerDead implements comm.RemoteLink: the connection failure for a
// peer, nil while it is healthy or after its orderly bye.
func (f *Fabric) PeerDead(peer int) error {
	pc := f.conns[peer]
	if pc == nil {
		return nil
	}
	return pc.dead()
}

// Goodbye announces an orderly end of run to every live peer. Callers
// should keep polling the endpoint for a grace period afterwards (see
// Linger) so peers still recovering lost messages get their resends.
func (f *Fabric) Goodbye() {
	for _, pc := range f.conns {
		if pc == nil || pc.dead() != nil {
			continue
		}
		fr := pc.getFrame()
		fr.typ, fr.tag, fr.seq, fr.delay = frameBye, 0, 0, 0
		fr.data = fr.data[:0]
		_ = pc.enqueue(fr)
	}
}

// Linger services resend requests until every peer has said goodbye (or
// died), or the grace period expires. Without this, a rank that finishes
// first would tear down its send buffers while a peer behind an injected
// message loss still needs a retransmission.
func (f *Fabric) Linger(ep *comm.Endpoint, grace time.Duration) {
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		ep.Poll()
		done := true
		for r, pc := range f.conns {
			if pc == nil {
				continue
			}
			if pc.dead() == nil && f.byesFrom(r) == 0 {
				done = false
				break
			}
		}
		if done {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (f *Fabric) byesFrom(r int) int {
	pc := f.conns[r]
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.graceful {
		return 1
	}
	return 0
}

// Close tears the fabric down: each writer drains and flushes its queue
// (the bye included), then the sockets close and the readers exit.
func (f *Fabric) Close() {
	f.closeConns()
}

func (f *Fabric) closeConns() {
	for _, pc := range f.conns {
		if pc != nil {
			pc.close()
		}
	}
}

// Stats is a snapshot of the fabric's wire-level counters, summed over
// all peer connections.
type Stats struct {
	BytesIn    int64
	BytesOut   int64
	FramesIn   int64
	FramesOut  int64
	CtrlIn     int64 // resend requests received over the wire
	QueueDepth int   // frames currently queued to writers
	PeersDead  int   // connections lost without a bye
	ByesSeen   int   // peers that ended the run in order
}

// Stats sums the per-connection counters.
func (f *Fabric) Stats() Stats {
	var s Stats
	for _, pc := range f.conns {
		if pc == nil {
			continue
		}
		s.BytesIn += pc.bytesIn.Load()
		s.BytesOut += pc.bytesOut.Load()
		s.FramesIn += pc.framesIn.Load()
		s.FramesOut += pc.framesOut.Load()
		s.CtrlIn += pc.ctrlIn.Load()
		s.QueueDepth += len(pc.sendq)
		pc.mu.Lock()
		if pc.graceful {
			s.ByesSeen++
		} else if pc.deadErr != nil {
			s.PeersDead++
		}
		pc.mu.Unlock()
	}
	return s
}

// Gauges exports the wire counters in the flat name/value form the perf
// metrics endpoint serves, as the network phase of the run.
func (f *Fabric) Gauges() map[string]float64 {
	s := f.Stats()
	g := map[string]float64{
		"wire_bytes_in":    float64(s.BytesIn),
		"wire_bytes_out":   float64(s.BytesOut),
		"wire_frames_in":   float64(s.FramesIn),
		"wire_frames_out":  float64(s.FramesOut),
		"wire_ctrl_in":     float64(s.CtrlIn),
		"wire_queue_depth": float64(s.QueueDepth),
		"wire_peers_dead":  float64(s.PeersDead),
	}
	if off, rtt, ok := f.RootOffset(); ok && f.rank != 0 {
		g["wire_clock_offset_ns"] = float64(off)
		g["wire_clock_rtt_ns"] = float64(rtt)
	}
	return g
}
