package wire

import (
	"sync"
	"testing"
	"time"

	"lulesh/internal/comm"
)

// recSink is a minimal comm.TraceSink capturing spans for assertions.
type recSink struct {
	mu    sync.Mutex
	sends []sinkSpan
	recvs []sinkSpan
}

type sinkSpan struct {
	peer   int
	tag    comm.Tag
	seq    uint64
	step   int
	bytes  int
	sendNs int64
}

func (s *recSink) RecordSend(peer int, tag comm.Tag, seq uint64, step, bytes int, at time.Time) {
	s.mu.Lock()
	s.sends = append(s.sends, sinkSpan{peer: peer, tag: tag, seq: seq, step: step, bytes: bytes})
	s.mu.Unlock()
}

func (s *recSink) RecordRecv(peer int, tag comm.Tag, seq uint64, step, bytes int, at time.Time, sendNs int64) {
	s.mu.Lock()
	s.recvs = append(s.recvs, sinkSpan{peer: peer, tag: tag, seq: seq, step: step, bytes: bytes, sendNs: sendNs})
	s.mu.Unlock()
}

// TestClockOffsetBootstrap: Cluster fires the ping burst, so shortly
// after startup every worker holds a plausible offset to rank 0 and
// rank 0 reports the identity.
func TestClockOffsetBootstrap(t *testing.T) {
	fabs := joinAll(t, 2, nil)
	for _, f := range fabs {
		f.Cluster(comm.Options{})
	}

	if off, rtt, ok := fabs[0].RootOffset(); !ok || off != 0 || rtt != 0 {
		t.Fatalf("rank 0 self offset: got (%v, %v, %v), want (0, 0, true)", off, rtt, ok)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		off, rtt, ok := fabs[1].RootOffset()
		if ok {
			// Same process, same clock: the estimate must land within the
			// round trip it rode on, and localhost RTT stays far under 1s.
			if rtt <= 0 || rtt > time.Second {
				t.Fatalf("implausible rtt %v", rtt)
			}
			if off < -rtt || off > rtt {
				t.Fatalf("offset %v outside ±rtt %v on a shared clock", off, rtt)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no clock sample arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWireSpanContext: data frames carry (step, send clock) end to end —
// the sender's tracer sees the send, the receiver's tracer sees the recv
// with the sender's header clock and the same stream ordinal.
func TestWireSpanContext(t *testing.T) {
	sinks := [2]*recSink{{}, {}}
	fabs := joinAll(t, 2, nil)
	eps := make([]*comm.Endpoint, 2)
	for r, f := range fabs {
		f.SetTracer(sinks[r])
		eps[r] = f.Cluster(comm.Options{}).Endpoint(r)
	}

	before := time.Now().UnixNano()
	fabs[0].SetStep(7)
	eps[0].Send(1, comm.TagDelvXi, []float64{1, 2, 3})
	got, err := eps[1].RecvDeadline(0, comm.TagDelvXi)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("payload length %d", len(got))
	}

	find := func(spans []sinkSpan, tag comm.Tag) (sinkSpan, bool) {
		for _, s := range spans {
			if s.tag == tag {
				return s, true
			}
		}
		return sinkSpan{}, false
	}
	sinks[0].mu.Lock()
	snd, okS := find(sinks[0].sends, comm.TagDelvXi)
	sinks[0].mu.Unlock()
	if !okS {
		t.Fatal("sender recorded no send span")
	}
	// The recv span is recorded on the reader goroutine; give it a beat.
	var rcv sinkSpan
	deadline := time.Now().Add(5 * time.Second)
	for {
		sinks[1].mu.Lock()
		s, okR := find(sinks[1].recvs, comm.TagDelvXi)
		sinks[1].mu.Unlock()
		if okR {
			rcv = s
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("receiver recorded no recv span")
		}
		time.Sleep(time.Millisecond)
	}

	if snd.peer != 1 || snd.step != 7 || snd.bytes != 24 {
		t.Errorf("send span %+v: want peer 1, step 7, 24 bytes", snd)
	}
	if rcv.peer != 0 || rcv.step != 7 || rcv.seq != snd.seq {
		t.Errorf("recv span %+v does not pair with send %+v", rcv, snd)
	}
	if rcv.sendNs < before || rcv.sendNs > time.Now().UnixNano() {
		t.Errorf("recv carries sender clock %d outside the send window", rcv.sendNs)
	}
}
