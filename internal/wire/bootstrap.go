package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"runtime"
	"time"
)

// protoVersion is bumped on any wire-format change; peers refuse to mix.
// v2: 40-byte header carrying span context (send clock, step, phase) and
// the ping/pong clock-probe frames.
const protoVersion = 2

// Defaults for Config's zero durations.
const (
	DefaultHeartbeat        = 250 * time.Millisecond
	DefaultPeerTimeout      = 10 * time.Second
	DefaultHandshakeTimeout = 15 * time.Second
)

// Geometry pins the problem every rank must agree on before a single
// slab crosses the wire: a rank joining with a different edge size or
// schedule would exchange garbage that no checksum catches.
type Geometry struct {
	Size       int    // elements per domain edge
	Iterations int    // timestep budget (0 = run to completion)
	Schedule   string // "sync" or "async"
}

// Config describes one rank's view of the fabric to join.
type Config struct {
	Rank int
	Size int

	// Rendezvous is rank 0's bootstrap address (host:port). Rank 0
	// listens on it; every other rank dials it.
	Rendezvous string

	// Cookie is the run's shared secret: hellos are signed with it, so
	// a stray process from another run (or another build) is rejected at
	// the handshake instead of corrupting the exchange.
	Cookie string

	Geometry Geometry

	Heartbeat        time.Duration // keepalive interval (DefaultHeartbeat)
	PeerTimeout      time.Duration // silence budget before a peer is declared dead
	HandshakeTimeout time.Duration // bootstrap I/O deadline
}

func (c Config) withDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = DefaultHeartbeat
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = DefaultPeerTimeout
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = DefaultHandshakeTimeout
	}
	return c
}

// buildVersion identifies the wire protocol and the toolchain that
// compiled this process. Ranks built from different toolchains may
// differ in floating-point code generation, which would break the
// bitwise-identity guarantee — so the handshake refuses the mix.
func buildVersion() string {
	return fmt.Sprintf("wire/%d %s", protoVersion, runtime.Version())
}

// hello is the signed introduction every rank presents: who it is, what
// fabric it expects, what problem it is solving, and (for nonzero
// ranks) where its peer listener accepts connections.
type hello struct {
	Rank     int
	Size     int
	Build    string
	Geometry Geometry
	Addr     string
}

// welcome is rank 0's signed reply once all hellos are in: the address
// map that lets the workers wire up their own peer connections.
type welcome struct {
	Addrs []string // indexed by rank; Addrs[0] unused
}

// sign prefixes a gob-encoded handshake payload with a CRC-32 keyed by
// the cookie. This is an integrity check and a shared-secret gate for
// processes on a trusted fabric, not cryptographic authentication.
func sign(cookie string, body []byte) []byte {
	sum := crc32.NewIEEE()
	io.WriteString(sum, cookie)
	sum.Write(body)
	out := make([]byte, 4+len(body))
	binary.LittleEndian.PutUint32(out[:4], sum.Sum32())
	copy(out[4:], body)
	return out
}

func unsign(cookie string, payload []byte) ([]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("wire: handshake payload too short (%d bytes)", len(payload))
	}
	body := payload[4:]
	sum := crc32.NewIEEE()
	io.WriteString(sum, cookie)
	sum.Write(body)
	if got := binary.LittleEndian.Uint32(payload[:4]); got != sum.Sum32() {
		return nil, fmt.Errorf("wire: handshake signature mismatch (wrong cookie, or corrupt frame)")
	}
	return body, nil
}

func encodeSigned(cookie string, v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return sign(cookie, buf.Bytes()), nil
}

func decodeSigned(cookie string, payload []byte, v any) error {
	body, err := unsign(cookie, payload)
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}

// writeHandshakeFrame sends one bootstrap frame synchronously (the
// writer goroutines are not running yet).
func writeHandshakeFrame(c net.Conn, typ byte, from int, payload []byte) error {
	var hdr [headerLen]byte
	putHeader(hdr[:], frameHeader{typ: typ, from: from, payload: uint32(len(payload))})
	if _, err := c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.Write(payload)
	return err
}

// readHandshakeFrame reads one bootstrap frame of the expected type.
func readHandshakeFrame(c net.Conn, wantTyp byte) (frameHeader, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return frameHeader{}, nil, err
	}
	h, err := parseHeader(hdr[:])
	if err != nil {
		return frameHeader{}, nil, err
	}
	if h.typ != wantTyp {
		return frameHeader{}, nil, fmt.Errorf("wire: expected %s frame, got %s",
			frameTypeName(wantTyp), frameTypeName(h.typ))
	}
	payload := make([]byte, h.payload)
	if _, err := io.ReadFull(c, payload); err != nil {
		return frameHeader{}, nil, err
	}
	return h, payload, nil
}

// validateHello cross-checks a peer's hello against our own view of the
// run. Any disagreement — size, geometry, toolchain, protocol — is a
// configuration error worth refusing at bootstrap.
func (c Config) validateHello(h hello) error {
	if h.Rank < 0 || h.Rank >= c.Size {
		return fmt.Errorf("wire: hello from rank %d outside fabric of %d", h.Rank, c.Size)
	}
	if h.Size != c.Size {
		return fmt.Errorf("wire: rank %d joined a %d-rank fabric, we are %d", h.Rank, h.Size, c.Size)
	}
	if h.Build != buildVersion() {
		return fmt.Errorf("wire: rank %d built as %q, we are %q", h.Rank, h.Build, buildVersion())
	}
	if h.Geometry != c.Geometry {
		return fmt.Errorf("wire: rank %d solves %+v, we solve %+v", h.Rank, h.Geometry, c.Geometry)
	}
	return nil
}

// Join runs the bootstrap and returns the connected fabric.
//
// Rank 0 listens on the rendezvous address and collects one signed
// hello per worker; when the fabric is complete it answers each with a
// signed welcome carrying the full peer-listener address map, and keeps
// those rendezvous connections as its peer connections. Every other
// rank opens its own peer listener first, dials the rendezvous, and —
// after the welcome — dials each lower-numbered worker while accepting
// connections from higher-numbered ones, exchanging hello/ack on each
// so both ends prove the cookie and agree on the run.
func Join(cfg Config) (*Fabric, error) {
	cfg = cfg.withDefaults()
	if cfg.Size < 1 || cfg.Rank < 0 || cfg.Rank >= cfg.Size {
		return nil, fmt.Errorf("wire: rank %d out of fabric [0,%d)", cfg.Rank, cfg.Size)
	}
	f := newFabric(cfg)
	if cfg.Size == 1 {
		return f, nil // a fabric of one has no wire to build
	}
	var err error
	if cfg.Rank == 0 {
		err = f.bootstrapRoot()
	} else {
		err = f.bootstrapWorker()
	}
	if err != nil {
		f.closeConns()
		return nil, err
	}
	return f, nil
}

// bootstrapRoot is rank 0's side: accept size-1 hellos, then welcome
// everyone with the address map.
func (f *Fabric) bootstrapRoot() error {
	ln, err := net.Listen("tcp", f.cfg.Rendezvous)
	if err != nil {
		return fmt.Errorf("wire: rendezvous listen %s: %w", f.cfg.Rendezvous, err)
	}
	defer ln.Close()
	deadline := time.Now().Add(f.cfg.HandshakeTimeout)
	addrs := make([]string, f.cfg.Size)
	conns := make([]net.Conn, f.cfg.Size)
	promoted := false
	defer func() {
		if promoted {
			return
		}
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for joined := 0; joined < f.cfg.Size-1; {
		c, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("wire: rendezvous accept: %w", err)
		}
		c.SetDeadline(deadline)
		_, payload, err := readHandshakeFrame(c, frameHello)
		if err != nil {
			c.Close()
			return fmt.Errorf("wire: rendezvous hello: %w", err)
		}
		var h hello
		if err := decodeSigned(f.cfg.Cookie, payload, &h); err != nil {
			c.Close()
			return err
		}
		if err := f.cfg.validateHello(h); err != nil {
			c.Close()
			return err
		}
		if conns[h.Rank] != nil {
			c.Close()
			return fmt.Errorf("wire: rank %d joined twice", h.Rank)
		}
		conns[h.Rank], addrs[h.Rank] = c, h.Addr
		joined++
	}
	wel, err := encodeSigned(f.cfg.Cookie, welcome{Addrs: addrs})
	if err != nil {
		return err
	}
	for r := 1; r < f.cfg.Size; r++ {
		if err := writeHandshakeFrame(conns[r], frameWelcome, 0, wel); err != nil {
			return fmt.Errorf("wire: welcome to rank %d: %w", r, err)
		}
	}
	// The rendezvous connections are rank 0's peer connections.
	for r := 1; r < f.cfg.Size; r++ {
		conns[r].SetDeadline(time.Time{})
		f.conns[r] = newPeerConn(f, r, conns[r])
	}
	promoted = true
	return nil
}

// dialRetry dials with retry until the budget runs out: the launcher
// starts all ranks at once, so a worker routinely reaches the rendezvous
// (or a peer listener) a few milliseconds before it is bound.
func dialRetry(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return c, nil
		}
		if remaining := time.Until(deadline); remaining < 10*time.Millisecond {
			return nil, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// bootstrapWorker is every other rank's side: peer listener up, dial the
// rendezvous, then wire the worker mesh — dial below, accept above.
func (f *Fabric) bootstrapWorker() error {
	cfg := f.cfg
	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		return fmt.Errorf("wire: peer listen: %w", err)
	}
	defer ln.Close()

	root, err := dialRetry(cfg.Rendezvous, cfg.HandshakeTimeout)
	if err != nil {
		return fmt.Errorf("wire: dial rendezvous %s: %w", cfg.Rendezvous, err)
	}
	deadline := time.Now().Add(cfg.HandshakeTimeout)
	root.SetDeadline(deadline)

	// Advertise the peer listener at whatever local address reached the
	// rendezvous — correct on multi-homed hosts, loopback on localhost.
	localHost, _, err := net.SplitHostPort(root.LocalAddr().String())
	if err != nil {
		root.Close()
		return err
	}
	_, lnPort, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		root.Close()
		return err
	}
	myHello := hello{
		Rank:     cfg.Rank,
		Size:     cfg.Size,
		Build:    buildVersion(),
		Geometry: cfg.Geometry,
		Addr:     net.JoinHostPort(localHost, lnPort),
	}
	hp, err := encodeSigned(cfg.Cookie, myHello)
	if err != nil {
		root.Close()
		return err
	}
	if err := writeHandshakeFrame(root, frameHello, cfg.Rank, hp); err != nil {
		root.Close()
		return fmt.Errorf("wire: hello to rendezvous: %w", err)
	}
	_, payload, err := readHandshakeFrame(root, frameWelcome)
	if err != nil {
		root.Close()
		return fmt.Errorf("wire: welcome: %w", err)
	}
	var wel welcome
	if err := decodeSigned(cfg.Cookie, payload, &wel); err != nil {
		root.Close()
		return err
	}
	if len(wel.Addrs) != cfg.Size {
		root.Close()
		return fmt.Errorf("wire: welcome maps %d ranks, fabric is %d", len(wel.Addrs), cfg.Size)
	}
	root.SetDeadline(time.Time{})
	f.conns[0] = newPeerConn(f, 0, root)

	// Accept connections from higher-numbered workers concurrently with
	// dialing the lower-numbered ones: with every rank dialing down and
	// accepting up, the mesh completes without circular waits.
	type accepted struct {
		rank int
		conn net.Conn
		err  error
	}
	expect := cfg.Size - 1 - cfg.Rank
	acceptCh := make(chan accepted, expect)
	go func() {
		for i := 0; i < expect; i++ {
			c, err := ln.Accept()
			if err != nil {
				acceptCh <- accepted{err: err}
				return
			}
			c.SetDeadline(deadline)
			_, payload, err := readHandshakeFrame(c, frameHello)
			if err != nil {
				c.Close()
				acceptCh <- accepted{err: err}
				return
			}
			var h hello
			if err := decodeSigned(cfg.Cookie, payload, &h); err == nil {
				err = cfg.validateHello(h)
			}
			if err != nil {
				c.Close()
				acceptCh <- accepted{err: err}
				return
			}
			ack, err := encodeSigned(cfg.Cookie, myHello)
			if err == nil {
				err = writeHandshakeFrame(c, frameAck, cfg.Rank, ack)
			}
			if err != nil {
				c.Close()
				acceptCh <- accepted{err: err}
				return
			}
			acceptCh <- accepted{rank: h.Rank, conn: c}
		}
	}()

	for peer := 1; peer < cfg.Rank; peer++ {
		c, err := net.DialTimeout("tcp", wel.Addrs[peer], cfg.HandshakeTimeout)
		if err != nil {
			return fmt.Errorf("wire: dial rank %d at %s: %w", peer, wel.Addrs[peer], err)
		}
		c.SetDeadline(deadline)
		if err := writeHandshakeFrame(c, frameHello, cfg.Rank, hp); err != nil {
			c.Close()
			return fmt.Errorf("wire: hello to rank %d: %w", peer, err)
		}
		_, ackPayload, err := readHandshakeFrame(c, frameAck)
		if err != nil {
			c.Close()
			return fmt.Errorf("wire: ack from rank %d: %w", peer, err)
		}
		var h hello
		if err := decodeSigned(cfg.Cookie, ackPayload, &h); err == nil {
			if h.Rank != peer {
				err = fmt.Errorf("wire: dialed rank %d, got rank %d", peer, h.Rank)
			} else {
				err = cfg.validateHello(h)
			}
		}
		if err != nil {
			c.Close()
			return err
		}
		c.SetDeadline(time.Time{})
		f.conns[peer] = newPeerConn(f, peer, c)
	}

	for i := 0; i < expect; i++ {
		a := <-acceptCh
		if a.err != nil {
			return fmt.Errorf("wire: peer accept: %w", a.err)
		}
		if f.conns[a.rank] != nil {
			a.conn.Close()
			return fmt.Errorf("wire: rank %d connected twice", a.rank)
		}
		a.conn.SetDeadline(time.Time{})
		f.conns[a.rank] = newPeerConn(f, a.rank, a.conn)
	}
	return nil
}
