package wire

import (
	"bytes"
	"math"
	"testing"
	"time"

	"lulesh/internal/comm"
)

func TestHeaderRoundTrip(t *testing.T) {
	cases := []frameHeader{
		{typ: frameData, tag: comm.TagReduce, from: 3, seq: 42, payload: 64},
		{typ: frameCtrl, tag: 2, from: 1, seq: 1<<40 + 7},
		{typ: frameHeartbeat, from: 65535},
		{typ: frameHello, payload: 123},
		{typ: frameWelcome, payload: MaxPayload},
		{typ: frameAck, payload: 1},
		{typ: frameBye, from: 9, seq: 0},
		{typ: frameData, payload: 0, delay: 3 * time.Millisecond},
		{typ: frameData, payload: 8, delay: -1},
		// Span context: the v2 header fields round-trip independently.
		{typ: frameData, tag: comm.TagDelvXi, payload: 16,
			sendNs: time.Date(2026, 1, 2, 3, 4, 5, 6, time.UTC).UnixNano(),
			step:   123456, phase: phaseGhost},
		{typ: frameData, payload: 8, sendNs: -1, phase: phaseReduce},
		{typ: framePing, seq: 7, sendNs: 99},
		{typ: framePong, seq: 99, sendNs: 100, step: 4},
	}
	for _, want := range cases {
		var b [headerLen]byte
		putHeader(b[:], want)
		got, err := parseHeader(b[:])
		if err != nil {
			t.Fatalf("parseHeader(%+v): %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestPhaseForTag(t *testing.T) {
	cases := []struct {
		tag  comm.Tag
		want byte
	}{
		{comm.TagReduce, phaseReduce},
		{comm.TagNodalMass, phaseGhost},
		{comm.TagForceX, phaseGhost},
		{comm.TagDelvZeta, phaseGhost},
		{comm.TagForces, phaseGhost}, // coalesced frames stay ghost-class
		{comm.TagDelv, phaseGhost},
		{comm.TagTrace, phaseOther},
		{comm.Tag(0), phaseOther},
	}
	for _, c := range cases {
		if got := phaseForTag(c.tag); got != c.want {
			t.Errorf("phaseForTag(%v) = %d, want %d", c.tag, got, c.want)
		}
	}
}

func TestParseHeaderRejects(t *testing.T) {
	mk := func(h frameHeader) []byte {
		var b [headerLen]byte
		putHeader(b[:], h)
		return b[:]
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"short", make([]byte, headerLen-1)},
		{"empty", nil},
		{"type zero", mk(frameHeader{typ: 0})},
		{"type beyond max", mk(frameHeader{typ: frameTypeMax + 1})},
		{"oversized payload", mk(frameHeader{typ: frameData, payload: MaxPayload + 8})},
		{"data payload not 8-aligned", mk(frameHeader{typ: frameData, payload: 12})},
		{"ctrl with payload", mk(frameHeader{typ: frameCtrl, payload: 8})},
		{"heartbeat with payload", mk(frameHeader{typ: frameHeartbeat, payload: 1})},
		{"bye with payload", mk(frameHeader{typ: frameBye, payload: 24})},
		{"ping with payload", mk(frameHeader{typ: framePing, payload: 8})},
		{"pong with payload", mk(frameHeader{typ: framePong, payload: 8})},
	}
	for _, tc := range cases {
		if _, err := parseHeader(tc.b); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestDecodeFrame(t *testing.T) {
	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(i)
	}
	var b [headerLen]byte
	putHeader(b[:], frameHeader{typ: frameData, tag: 1, from: 2, seq: 7, payload: 32})
	full := append(b[:], payload...)

	h, got, n, err := decodeFrame(full)
	if err != nil {
		t.Fatalf("decodeFrame: %v", err)
	}
	if n != len(full) || h.seq != 7 || h.from != 2 || !bytes.Equal(got, payload) {
		t.Fatalf("decodeFrame: n=%d h=%+v payload=%x", n, h, got)
	}

	// Every truncation of a valid frame must error, never panic.
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := decodeFrame(full[:cut]); err == nil {
			t.Errorf("truncated to %d bytes: no error", cut)
		}
	}
}

func TestFloatCodecRoundTrip(t *testing.T) {
	src := []float64{0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1),
		math.Copysign(0, -1), math.SmallestNonzeroFloat64, math.MaxFloat64, math.NaN()}
	portable := appendFloatsPortable(nil, src)
	if hostLittleEndian {
		if !bytes.Equal(floatsAsBytes(src), portable) {
			t.Fatal("unsafe byte view disagrees with portable encoding")
		}
	}
	got := decodeFloatsInto(nil, portable)
	if len(got) != len(src) {
		t.Fatalf("decoded %d floats, want %d", len(got), len(src))
	}
	for i := range src {
		if math.Float64bits(got[i]) != math.Float64bits(src[i]) {
			t.Errorf("elem %d: got %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(src[i]))
		}
	}
	// Reused buffer path: decode into an oversized destination.
	buf := make([]float64, 0, 64)
	got = decodeFloatsInto(buf, portable[:32])
	if len(got) != 4 {
		t.Fatalf("partial decode: %d floats, want 4", len(got))
	}
}

func FuzzDecodeFrame(f *testing.F) {
	var b [headerLen]byte
	putHeader(b[:], frameHeader{typ: frameData, payload: 16})
	f.Add(append(b[:], make([]byte, 16)...))
	putHeader(b[:], frameHeader{typ: frameBye})
	f.Add(b[:headerLen:headerLen])
	putHeader(b[:], frameHeader{typ: frameHello, payload: 4})
	f.Add(append(b[:], 1, 2, 3, 4))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, headerLen+8))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, n, err := decodeFrame(data)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if int(h.payload) != len(payload) {
			t.Fatalf("header says %d payload bytes, got %d", h.payload, len(payload))
		}
		if n != headerLen+len(payload) || n > len(data) {
			t.Fatalf("consumed %d of %d bytes with %d payload", n, len(data), len(payload))
		}
	})
}

// The steady-state ghost exchange must not allocate per slab in either
// direction; these are enforced (not just reported) so a regression
// fails the suite, not only the benchmarks.
func TestSlabCodecAllocFree(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("zero-copy path is little-endian only")
	}
	slab := make([]float64, 45*45) // one 45^2 ghost face, the paper's default size
	dst := make([]float64, len(slab))
	encode := func() {
		b := floatsAsBytes(slab)
		if len(b) != 8*len(slab) {
			t.Fatal("bad view")
		}
	}
	decode := func() {
		dst = decodeFloatsInto(dst, floatsAsBytes(slab))
	}
	if n := testing.AllocsPerRun(100, encode); n != 0 {
		t.Errorf("encode allocates %v per slab, want 0", n)
	}
	if n := testing.AllocsPerRun(100, decode); n != 0 {
		t.Errorf("decode allocates %v per slab, want 0", n)
	}
}

func BenchmarkEncodeSlab(b *testing.B) {
	slab := make([]float64, 45*45)
	var sink []byte
	b.SetBytes(int64(8 * len(slab)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if hostLittleEndian {
			sink = floatsAsBytes(slab)
		} else {
			sink = appendFloatsPortable(sink[:0], slab)
		}
	}
	_ = sink
}

func BenchmarkDecodeSlab(b *testing.B) {
	slab := make([]float64, 45*45)
	raw := appendFloatsPortable(nil, slab)
	dst := make([]float64, len(slab))
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = decodeFloatsInto(dst, raw)
	}
	_ = dst
}
