// Package wire is the TCP fabric behind comm's remote mode: it lets the
// multi-domain LULESH driver span OS processes, one rank per process,
// with the same exchange protocol — sequence numbers, resend requests,
// deadline/retry failure detection — that internal/comm proves
// in-process.
//
// A fabric is built in two steps. Join runs the rendezvous bootstrap
// (rank 0 listens, every other rank dials and exchanges a signed hello;
// see bootstrap.go) and leaves one full-duplex TCP connection per peer
// pair. Fabric.Cluster then wraps the connections in a comm remote
// cluster and starts the per-connection reader goroutines; from there the
// distributed driver uses its ordinary Endpoint and never sees a socket.
//
// Frames are length-prefixed with a fixed 40-byte little-endian header;
// data payloads are raw float64 slabs written straight from the sender's
// reused stream buffer (zero-copy on little-endian hosts), so the
// steady-state ghost exchange allocates nothing on the send path.
//
// The header also carries span context for distributed tracing: the
// sender's wall clock at write time, the driver's timestep and the
// exchange phase, so the receiver can record a recv span paired with
// the sender's send span. Dedicated ping/pong frames echo those clocks
// to estimate per-peer clock offsets (clock.go).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
	"unsafe"

	"lulesh/internal/comm"
)

// Frame types. Hello/welcome/ack appear only during the bootstrap
// handshake; data/ctrl/heartbeat/bye are the steady-state traffic.
const (
	frameData      byte = iota + 1 // float64 slab: one comm message
	frameCtrl                      // resend request (header-only: tag+seq)
	frameHeartbeat                 // keepalive (header-only)
	frameHello                     // signed rank introduction (bootstrap)
	frameWelcome                   // rank 0's signed address map (bootstrap)
	frameAck                       // signed hello response on a peer dial
	frameBye                       // orderly end-of-run (header-only)
	framePing                      // clock probe (header-only; sendNs = t0)
	framePong                      // clock echo (header-only; seq = echoed t0, sendNs = t1)

	frameTypeMax = framePong
)

// headerLen is the fixed frame header size: every frame starts with
//
//	[0:4)   payload length in bytes (uint32 LE)
//	[4]     frame type
//	[5]     comm tag (data/ctrl frames)
//	[6:8)   sender rank (uint16 LE)
//	[8:16)  stream sequence number (uint64 LE)
//	[16:24) residual injected delay, nanoseconds (int64 LE)
//	[24:32) sender wall clock at write, unix nanoseconds (int64 LE)
//	[32:36) driver timestep (uint32 LE)
//	[36]    exchange phase class (phaseGhost/phaseReduce/phaseOther)
//	[37:40) reserved (zero)
//
// followed by exactly `payload length` bytes. The last three fields are
// the propagated span context: a peer build with a different header
// layout is refused at the handshake (protoVersion), so the layout can
// evolve without in-band versioning.
const headerLen = 40

// Exchange phase classes stamped into byte 36 of data frames — the
// coarse attribution the receiver files its recv span under.
const (
	phaseOther  byte = iota // ctrl / bootstrap / anything untagged
	phaseGhost              // ghost and boundary slab exchanges
	phaseReduce             // the dt allreduce (comm.TagReduce)
)

// phaseForTag classifies a comm tag into its phase byte.
func phaseForTag(tag comm.Tag) byte {
	switch {
	case tag == comm.TagReduce:
		return phaseReduce
	case tag >= comm.TagNodalMass && tag <= comm.TagDelvZeta:
		return phaseGhost
	case tag == comm.TagForces || tag == comm.TagDelv:
		// Coalesced per-peer boundary frames: still ghost-exchange traffic,
		// just one frame per (peer, step) instead of three.
		return phaseGhost
	}
	return phaseOther
}

// MaxPayload bounds a frame's payload: large enough for any ghost slab
// the driver exchanges (a face of a 1000^3 domain is ~8 MB), small
// enough that a corrupt or hostile length field cannot make the reader
// allocate unbounded memory.
const MaxPayload = 64 << 20

type frameHeader struct {
	payload uint32
	typ     byte
	tag     comm.Tag
	from    int
	seq     uint64
	delay   time.Duration
	sendNs  int64  // sender wall clock at write (0 = unstamped)
	step    uint32 // driver timestep at send
	phase   byte   // phaseGhost / phaseReduce / phaseOther
}

func putHeader(b []byte, h frameHeader) {
	binary.LittleEndian.PutUint32(b[0:4], h.payload)
	b[4] = h.typ
	b[5] = byte(h.tag)
	binary.LittleEndian.PutUint16(b[6:8], uint16(h.from))
	binary.LittleEndian.PutUint64(b[8:16], h.seq)
	binary.LittleEndian.PutUint64(b[16:24], uint64(int64(h.delay)))
	binary.LittleEndian.PutUint64(b[24:32], uint64(h.sendNs))
	binary.LittleEndian.PutUint32(b[32:36], h.step)
	b[36] = h.phase
	b[37], b[38], b[39] = 0, 0, 0
}

// parseHeader validates and decodes one frame header. It never panics
// and never trusts the length field beyond MaxPayload, so a reader can
// size its payload buffer from the result without an allocation attack.
func parseHeader(b []byte) (frameHeader, error) {
	if len(b) < headerLen {
		return frameHeader{}, fmt.Errorf("wire: short header: %d of %d bytes", len(b), headerLen)
	}
	h := frameHeader{
		payload: binary.LittleEndian.Uint32(b[0:4]),
		typ:     b[4],
		tag:     comm.Tag(b[5]),
		from:    int(binary.LittleEndian.Uint16(b[6:8])),
		seq:     binary.LittleEndian.Uint64(b[8:16]),
		delay:   time.Duration(int64(binary.LittleEndian.Uint64(b[16:24]))),
		sendNs:  int64(binary.LittleEndian.Uint64(b[24:32])),
		step:    binary.LittleEndian.Uint32(b[32:36]),
		phase:   b[36],
	}
	if h.typ < frameData || h.typ > frameTypeMax {
		return frameHeader{}, fmt.Errorf("wire: unknown frame type %d", h.typ)
	}
	if h.payload > MaxPayload {
		return frameHeader{}, fmt.Errorf("wire: payload %d exceeds max %d", h.payload, MaxPayload)
	}
	switch h.typ {
	case frameData:
		if h.payload%8 != 0 {
			return frameHeader{}, fmt.Errorf("wire: data payload %d not a multiple of 8", h.payload)
		}
	case frameCtrl, frameHeartbeat, frameBye, framePing, framePong:
		if h.payload != 0 {
			return frameHeader{}, fmt.Errorf("wire: %s frame with %d-byte payload", frameTypeName(h.typ), h.payload)
		}
	}
	return h, nil
}

// decodeFrame parses one complete frame from b, returning the header,
// the payload (a subslice of b — no copy) and the total bytes consumed.
// Truncated, oversized and garbage input all return an error; nothing
// here panics or allocates proportionally to a corrupt length field.
func decodeFrame(b []byte) (h frameHeader, payload []byte, n int, err error) {
	h, err = parseHeader(b)
	if err != nil {
		return frameHeader{}, nil, 0, err
	}
	n = headerLen + int(h.payload)
	if len(b) < n {
		return frameHeader{}, nil, 0, fmt.Errorf("wire: truncated frame: have %d of %d bytes", len(b), n)
	}
	return h, b[headerLen:n], n, nil
}

func frameTypeName(t byte) string {
	switch t {
	case frameData:
		return "data"
	case frameCtrl:
		return "ctrl"
	case frameHeartbeat:
		return "heartbeat"
	case frameHello:
		return "hello"
	case frameWelcome:
		return "welcome"
	case frameAck:
		return "ack"
	case frameBye:
		return "bye"
	case framePing:
		return "ping"
	case framePong:
		return "pong"
	default:
		return fmt.Sprintf("type(%d)", t)
	}
}

// hostLittleEndian is decided once at init: on little-endian hosts
// (every platform this project targets in practice) float64 slabs cross
// the unsafe boundary as direct byte views of the same memory; on
// big-endian hosts the per-element fallback below keeps the wire format
// identical.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// floatsAsBytes returns the little-endian byte view of f without
// copying. Only valid on little-endian hosts; callers must check
// hostLittleEndian. The view aliases f — it must be fully consumed
// (written to the socket) before f is reused.
func floatsAsBytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(f))), 8*len(f))
}

// appendFloatsPortable encodes f into dst element by element — the
// big-endian-host fallback producing the same little-endian wire bytes.
func appendFloatsPortable(dst []byte, f []float64) []byte {
	for _, v := range f {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decodeFloatsInto decodes a little-endian float64 payload into dst,
// growing it only when the capacity is short — steady-state decode into
// a reused buffer performs no allocation.
func decodeFloatsInto(dst []float64, b []byte) []float64 {
	n := len(b) / 8
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if hostLittleEndian {
		copy(floatsAsBytes(dst), b)
		return dst
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return dst
}

// decodeFloats decodes a payload into a fresh slice. The fabric reader
// uses this for incoming data frames: the receiving endpoint's mailbox
// retains the slice, so it must own its memory.
func decodeFloats(b []byte) []float64 {
	return decodeFloatsInto(nil, b)
}
