// Package stats provides the small statistics and table-formatting
// utilities used by the benchmark harness: run-time aggregation over
// repeated measurements and fixed-width table rendering for the
// figure/table reproductions.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Sample aggregates repeated scalar measurements (e.g. run times).
type Sample struct {
	values []float64
}

// Add appends one measurement.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N reports the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range s.values {
		t += v
	}
	return t / float64(len(s.values))
}

// Min returns the smallest measurement, or +Inf for an empty sample.
func (s *Sample) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.values {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement, or -Inf for an empty sample.
func (s *Sample) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.values {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// when fewer than two measurements exist.
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the median measurement, or 0 for an empty sample.
func (s *Sample) Median() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), s.values...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return 0.5 * (c[n/2-1] + c[n/2])
}

// Rate returns part/whole as a float, or 0 when whole is 0 — the safe
// ratio helper for counter-derived rates (steals per task, affinity hits
// per hinted task).
func Rate(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// Imbalance measures load imbalance over per-worker totals as
// max/mean - 1: 0 for a perfectly even distribution, 1.0 when the most
// loaded worker carries twice the average — the metric behind the paper's
// region-imbalance discussion (Figure 10). Empty or all-zero input
// reports 0.
func Imbalance(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum, max := 0.0, math.Inf(-1)
	for _, v := range values {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum <= 0 {
		return 0
	}
	mean := sum / float64(len(values))
	return max/mean - 1
}

// Table renders rows with right-aligned, auto-sized columns — the output
// format of the figure harness.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, ncol)
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%*s", width[i], c)
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	rule := make([]string, ncol)
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as comma-separated values. Fields containing
// a comma, quote or line break are quoted per RFC 4180, so cells like
// counter labels ("steals, total") cannot shift columns.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvLine(t.header)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, csvLine(r)); err != nil {
			return err
		}
	}
	return nil
}

func csvLine(cells []string) string {
	quoted := make([]string, len(cells))
	for i, c := range cells {
		quoted[i] = csvField(c)
	}
	return strings.Join(quoted, ",")
}

// csvField quotes one CSV field per RFC 4180 when it contains a separator,
// quote or line break; plain fields pass through unchanged.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
