package stats

import (
	"strings"
	"testing"
	"time"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{255, 0},
		{256, 1},
		{511, 1},
		{512, 2},
		{1023, 2},
		{int64(time.Millisecond), 12}, // 1e6 ns: 256<<11 = 524288 <= 1e6 < 256<<12
		{1 << 62, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := HistBucket(c.ns); got != c.want {
			t.Fatalf("HistBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
		// Consistency: the value must lie below its bucket's upper bound.
		if c.want < HistBuckets-1 && c.ns >= HistUpper(c.want) {
			t.Fatalf("value %d not below upper bound %d of bucket %d",
				c.ns, HistUpper(c.want), c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.P99() != 0 {
		t.Fatal("empty histogram must report zero quantiles")
	}
	// 90 values in the 1µs bucket, 10 in the 1ms bucket.
	for i := 0; i < 90; i++ {
		h.Add(int64(time.Microsecond))
	}
	for i := 0; i < 10; i++ {
		h.Add(int64(time.Millisecond))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	us := HistUpper(HistBucket(int64(time.Microsecond)))
	ms := HistUpper(HistBucket(int64(time.Millisecond)))
	if got := h.Quantile(0.50); got != us {
		t.Fatalf("p50 = %d, want %d", got, us)
	}
	if got := h.Quantile(0.89); got != us {
		t.Fatalf("p89 = %d, want %d", got, us)
	}
	if got := h.Quantile(0.95); got != ms {
		t.Fatalf("p95 = %d, want %d", got, ms)
	}
	if h.P99() != time.Duration(ms) {
		t.Fatalf("p99 = %v", h.P99())
	}
	// Quantiles are clamped, monotone at the extremes.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("quantile clamping broken")
	}
}

func TestHistogramMergeAndBuckets(t *testing.T) {
	var a, b Histogram
	a.Add(300)                     // bucket 1
	b.Add(300)                     // bucket 1
	b.Add(1024)                    // bucket 3
	b.AddBucket(-5, 2)             // clamps to 0
	b.AddBucket(HistBuckets+10, 1) // clamps to last
	a.Merge(&b)
	if a.Counts[1] != 2 || a.Counts[3] != 1 || a.Counts[0] != 2 ||
		a.Counts[HistBuckets-1] != 1 {
		t.Fatalf("merge counts wrong: %v", a.Counts)
	}
	if a.N() != 6 {
		t.Fatalf("N = %d", a.N())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if h.String() != "(empty)" {
		t.Fatalf("empty string = %q", h.String())
	}
	h.Add(int64(4 * time.Microsecond))
	if s := h.String(); !strings.Contains(s, ":1") {
		t.Fatalf("string = %q", s)
	}
}
