package stats

import (
	"fmt"
	"math/bits"
	"strings"
	"time"
)

// HistBuckets is the number of log2 duration buckets a Histogram holds.
// Bucket 0 collects values below HistBase nanoseconds; bucket i collects
// [HistBase<<(i-1), HistBase<<i); the last bucket is open-ended. With
// HistBase = 256 ns the range spans 256 ns to ~9 min, covering everything
// from a pathological sub-microsecond task to a stalled phase.
const (
	HistBuckets = 32
	HistBase    = 256 // ns, upper bound of bucket 0
)

// HistBucket returns the bucket index for a nanosecond value.
func HistBucket(ns int64) int {
	if ns < HistBase {
		return 0
	}
	// bits.Len64(ns/HistBase) is the position of the highest set bit of the
	// value expressed in HistBase units; +1 skips the sub-base bucket.
	b := bits.Len64(uint64(ns) / HistBase)
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// HistUpper returns the exclusive upper bound (in ns) of bucket i; the last
// bucket reports the largest representable bound it still distinguishes.
func HistUpper(i int) int64 {
	if i >= HistBuckets-1 {
		i = HistBuckets - 1
	}
	return HistBase << uint(i)
}

// Histogram is a fixed log2-bucketed histogram of nanosecond values — the
// duration-distribution type behind the per-phase p50/p95/p99 columns. It
// is a plain value type; concurrent writers should accumulate in their own
// shards (e.g. per-worker atomics) and merge into one Histogram on
// snapshot.
type Histogram struct {
	Counts [HistBuckets]int64
}

// Add records one nanosecond value.
func (h *Histogram) Add(ns int64) { h.Counts[HistBucket(ns)]++ }

// AddBucket records n values into bucket i (the shard-merge path).
func (h *Histogram) AddBucket(i int, n int64) {
	if i < 0 {
		i = 0
	}
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Counts[i] += n
}

// Merge adds other's counts into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, n := range other.Counts {
		h.Counts[i] += n
	}
}

// N reports the total number of recorded values.
func (h *Histogram) N() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns an upper-bound estimate (in ns) of the q-quantile
// (0 <= q <= 1): the upper edge of the bucket containing the q-th value.
// It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.N()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target value, 1-based; q=0 maps to the first value.
	rank := int64(q*float64(n-1)) + 1
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			return HistUpper(i)
		}
	}
	return HistUpper(HistBuckets - 1)
}

// P50, P95 and P99 are the conventional percentile shorthands, as
// durations.
func (h *Histogram) P50() time.Duration { return time.Duration(h.Quantile(0.50)) }
func (h *Histogram) P95() time.Duration { return time.Duration(h.Quantile(0.95)) }
func (h *Histogram) P99() time.Duration { return time.Duration(h.Quantile(0.99)) }

// String renders the non-empty buckets compactly, e.g.
// "[4µs,8µs):120 [8µs,16µs):34".
func (h *Histogram) String() string {
	var parts []string
	lower := int64(0)
	for i, c := range h.Counts {
		upper := HistUpper(i)
		if c > 0 {
			parts = append(parts, fmt.Sprintf("[%v,%v):%d",
				time.Duration(lower), time.Duration(upper), c))
		}
		lower = upper
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}
