package stats

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Median() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty min/max sentinels wrong")
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Known dataset: population sd = 2, sample sd = sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("sd = %v, want %v", s.StdDev(), want)
	}
	if s.Median() != 4.5 {
		t.Fatalf("median = %v", s.Median())
	}
}

func TestSampleMedianOdd(t *testing.T) {
	var s Sample
	for _, v := range []float64{9, 1, 5} {
		s.Add(v)
	}
	if s.Median() != 5 {
		t.Fatalf("median = %v", s.Median())
	}
}

func TestSampleSingleValue(t *testing.T) {
	var s Sample
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Min() != 3.5 || s.Max() != 3.5 ||
		s.Median() != 3.5 || s.StdDev() != 0 {
		t.Fatal("single-value sample stats wrong")
	}
}

func TestSampleProperties(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Keep magnitudes bounded so the mean cannot overflow.
			s.Add(math.Mod(v, 1e6))
		}
		if len(vals) == 0 {
			return true
		}
		return s.Min() <= s.Mean()+1e-9*math.Abs(s.Mean())+1e-300 &&
			s.Mean() <= s.Max()+1e-9*math.Abs(s.Max())+1e-300 &&
			s.StdDev() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRate(t *testing.T) {
	cases := []struct {
		part, whole int64
		want        float64
	}{
		{0, 0, 0},
		{5, 0, 0}, // no division by zero
		{0, 10, 0},
		{5, 10, 0.5},
		{300, 600, 0.5},
		{10, 10, 1},
		{20, 10, 2},
	}
	for _, c := range cases {
		if got := Rate(c.part, c.whole); got != c.want {
			t.Fatalf("Rate(%d, %d) = %v, want %v", c.part, c.whole, got, c.want)
		}
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		want   float64
	}{
		{"empty", nil, 0},
		{"all-zero", []float64{0, 0, 0}, 0},
		{"uniform", []float64{3, 3, 3, 3}, 0},
		{"single", []float64{7}, 0},
		{"max-twice-mean", []float64{4, 0}, 1}, // mean 2, max 4
		{"mild", []float64{1, 1, 1, 5}, 1.5},   // mean 2, max 5
	}
	for _, c := range cases {
		got := Imbalance(c.values)
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%s: Imbalance(%v) = %v, want %v", c.name, c.values, got, c.want)
		}
	}
}

func TestImbalanceNonNegativeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		bounded := make([]float64, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return true
			}
			// Keep magnitudes bounded so the sum cannot overflow.
			bounded = append(bounded, math.Mod(v, 1e6))
		}
		return Imbalance(bounded) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("size", "runtime", "speedup")
	tb.AddRow(45, 1.5, 2.25)
	tb.AddRow(150, 120.25, 1.33)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "size") || !strings.Contains(lines[0], "speedup") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "45") || !strings.Contains(lines[2], "2.25") {
		t.Fatalf("row wrong: %q", lines[2])
	}
	// All lines equally wide (alignment).
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Fatalf("misaligned table:\n%s", out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, "x")
	tb.AddRow(2.5, "y")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,x\n2.5,y\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(0.000123456)
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.0001235") {
		t.Fatalf("float formatting: %q", sb.String())
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("label", "value")
	tb.AddRow("steals, total", 3)
	tb.AddRow(`says "hi"`, 1)
	tb.AddRow("line\nbreak", 2)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "label,value\n" +
		"\"steals, total\",3\n" +
		"\"says \"\"hi\"\"\",1\n" +
		"\"line\nbreak\",2\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
	// Round-trip through a strict RFC 4180 reader.
	r := csv.NewReader(strings.NewReader(sb.String()))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("encoding/csv rejects output: %v", err)
	}
	if len(recs) != 4 || recs[1][0] != "steals, total" ||
		recs[2][0] != `says "hi"` || recs[3][0] != "line\nbreak" {
		t.Fatalf("round-trip mismatch: %q", recs)
	}
}
