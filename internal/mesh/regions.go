package mesh

import "fmt"

// Region cost models: how the EOS repetition factor Rep is derived from a
// region's index. CostModelReference is LULESH 2.0's distribution;
// CostModelExtreme (the multimat scenario) pushes far more of the regions
// into the expensive tiers and adds a 10x-steeper top tier, producing the
// many-small-expensive-regions imbalance regime the locality and
// adaptive-grain scheduling work targets.
const (
	CostModelReference = "" // zero value: the LULESH 2.0 distribution
	CostModelExtreme   = "extreme"
)

// Regions is the material-region decomposition of the mesh elements.
// LULESH models heterogeneous materials by splitting elements into regions
// of differing size and by repeating the equation-of-state evaluation for
// some regions (the rep factor), creating deliberate load imbalance.
type Regions struct {
	NumReg  int
	Cost    int    // the reference's -c flag (default 1)
	Balance int    // the reference's -b flag (default 1)
	Model   string // cost model (CostModelReference or CostModelExtreme)

	// RegNumList[e] is the 1-based region number of element e.
	RegNumList []int32
	// ElemList[r] lists the elements of region r (0-based region index),
	// in ascending element order as produced by the reference.
	ElemList [][]int32
}

// lcg is a portable substitute for the C rand()/srand(0) stream the
// reference uses to build regions. It follows the classic MS LCG
// (state*214013+2531011, output bits 16..30 → [0,32767]). Only the shape
// of the resulting size distribution matters for the experiments
// (load imbalance between regions), not the exact glibc stream, which is
// neither portable nor specified.
type lcg struct{ state uint32 }

func (r *lcg) next() int {
	r.state = r.state*214013 + 2531011
	return int(r.state>>16) & 0x7fff
}

// NewRegions reproduces LULESH 2.0's CreateRegionIndexSets for a single
// domain (myRank = 0): elements are assigned in random runs, where the
// region of each run is drawn from a distribution weighted by
// (regionIndex+1)^balance and run lengths follow the reference's binned
// distribution.
func NewRegions(m *Mesh, numReg, balance, cost int) *Regions {
	if numReg < 1 {
		panic(fmt.Sprintf("mesh: numReg must be >= 1, got %d", numReg))
	}
	r := &Regions{
		NumReg:     numReg,
		Cost:       cost,
		Balance:    balance,
		RegNumList: make([]int32, m.NumElem),
	}
	rng := &lcg{state: 0} // srand(0)

	if numReg == 1 {
		for i := range r.RegNumList {
			r.RegNumList[i] = 1
		}
	} else {
		// Relative weights of the regions (regBinEnd is the CDF).
		regBinEnd := make([]int, numReg)
		costDenominator := 0
		for i := 0; i < numReg; i++ {
			costDenominator += ipow(i+1, balance)
			regBinEnd[i] = costDenominator
		}
		pickRegion := func() int32 {
			v := rng.next() % costDenominator
			i := 0
			for v >= regBinEnd[i] {
				i++
			}
			return int32(i%numReg) + 1
		}
		lastReg := int32(-1)
		nextIndex := 0
		for nextIndex < m.NumElem {
			regionNum := pickRegion()
			for regionNum == lastReg {
				regionNum = pickRegion()
			}
			// Run length from the reference's binned distribution.
			binSize := rng.next() % 1000
			var elements int
			switch {
			case binSize < 773:
				elements = rng.next()%15 + 1
			case binSize < 937:
				elements = rng.next()%16 + 16
			case binSize < 970:
				elements = rng.next()%32 + 32
			case binSize < 974:
				elements = rng.next()%64 + 64
			case binSize < 978:
				elements = rng.next()%128 + 128
			case binSize < 981:
				elements = rng.next()%256 + 256
			default:
				elements = rng.next()%1537 + 512
			}
			runto := nextIndex + elements
			for nextIndex < runto && nextIndex < m.NumElem {
				r.RegNumList[nextIndex] = regionNum
				nextIndex++
			}
			lastReg = regionNum
		}
	}

	// Compact per-region element lists (ascending element order).
	sizes := make([]int, numReg)
	for _, rn := range r.RegNumList {
		sizes[rn-1]++
	}
	r.ElemList = make([][]int32, numReg)
	for i, sz := range sizes {
		r.ElemList[i] = make([]int32, 0, sz)
	}
	for e, rn := range r.RegNumList {
		r.ElemList[rn-1] = append(r.ElemList[rn-1], int32(e))
	}
	return r
}

// Rep returns the EOS repetition factor of region r (0-based).
//
// Under CostModelReference it reproduces the reference's load-imbalance
// model: the cheapest half of the regions evaluate the EOS once, most of
// the rest (1+cost) times, and the last ~5 % of regions 10*(1+cost) times.
// With the default cost of 1 that is 1x / 2x / 20x, the "doubles the
// computation for 45 % of the regions and increases it even by twenty
// times for 5 %" of the paper.
//
// Under CostModelExtreme only the cheapest quarter stays at 1x, the next
// quarter costs (1+cost), the next 10*(1+cost), and the top eighth
// 100*(1+cost) — a two-decade spread designed to overwhelm static
// partitioning.
func (r *Regions) Rep(reg int) int {
	if r.Model == CostModelExtreme {
		switch {
		case reg < r.NumReg/4:
			return 1
		case reg < r.NumReg/2:
			return 1 + r.Cost
		case reg < r.NumReg-(r.NumReg+7)/8:
			return 10 * (1 + r.Cost)
		default:
			return 100 * (1 + r.Cost)
		}
	}
	switch {
	case reg < r.NumReg/2:
		return 1
	case reg < r.NumReg-(r.NumReg+15)/20:
		return 1 + r.Cost
	default:
		return 10 * (1 + r.Cost)
	}
}

func ipow(base, exp int) int {
	p := 1
	for i := 0; i < exp; i++ {
		p *= base
	}
	return p
}
