package mesh

import (
	"testing"
	"testing/quick"
)

func TestRegionsPanicOnBadCount(t *testing.T) {
	m := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("NewRegions with numReg=0 should panic")
		}
	}()
	NewRegions(m, 0, 1, 1)
}

func TestSingleRegionCoversEverything(t *testing.T) {
	m := New(4)
	r := NewRegions(m, 1, 1, 1)
	if len(r.ElemList) != 1 || len(r.ElemList[0]) != m.NumElem {
		t.Fatalf("single region does not own all elements")
	}
	for _, rn := range r.RegNumList {
		if rn != 1 {
			t.Fatalf("region number %d, want 1", rn)
		}
	}
}

func TestRegionListsPartitionElements(t *testing.T) {
	m := New(6)
	for _, nr := range []int{2, 5, 11, 16, 21} {
		r := NewRegions(m, nr, 1, 1)
		seen := make([]bool, m.NumElem)
		total := 0
		for reg, list := range r.ElemList {
			prev := int32(-1)
			for _, e := range list {
				if e <= prev {
					t.Fatalf("region %d list not ascending", reg)
				}
				prev = e
				if seen[e] {
					t.Fatalf("element %d in two regions", e)
				}
				seen[e] = true
				if int(r.RegNumList[e]) != reg+1 {
					t.Fatalf("RegNumList[%d] = %d, want %d", e, r.RegNumList[e], reg+1)
				}
				total++
			}
		}
		if total != m.NumElem {
			t.Fatalf("nr=%d: regions cover %d of %d elements", nr, total, m.NumElem)
		}
	}
}

func TestRegionNumbersInRange(t *testing.T) {
	m := New(5)
	r := NewRegions(m, 11, 1, 1)
	for e, rn := range r.RegNumList {
		if rn < 1 || int(rn) > 11 {
			t.Fatalf("element %d has region number %d", e, rn)
		}
	}
}

func TestRegionsDeterministic(t *testing.T) {
	m := New(5)
	a := NewRegions(m, 11, 1, 1)
	b := NewRegions(m, 11, 1, 1)
	for e := range a.RegNumList {
		if a.RegNumList[e] != b.RegNumList[e] {
			t.Fatalf("region assignment not deterministic at element %d", e)
		}
	}
}

func TestRegionsAreRuns(t *testing.T) {
	// The assignment proceeds in runs of consecutive elements, so adjacent
	// elements usually share a region; count the run transitions and check
	// they are far fewer than the element count.
	m := New(8)
	r := NewRegions(m, 11, 1, 1)
	transitions := 0
	for e := 1; e < m.NumElem; e++ {
		if r.RegNumList[e] != r.RegNumList[e-1] {
			transitions++
		}
	}
	if transitions == 0 {
		t.Fatal("expected more than one run for 512 elements")
	}
	if transitions > m.NumElem/2 {
		t.Fatalf("too many transitions (%d of %d): not run-structured",
			transitions, m.NumElem)
	}
	// Consecutive runs always change region (the reference redraws until
	// the region differs).
	// (Already implied by counting transitions between runs.)
}

func TestRepLoadImbalanceModel(t *testing.T) {
	// Reference formula with cost=1: first half 1x, middle 1+cost,
	// last (numReg+15)/20 regions 10*(1+cost).
	m := New(2)
	r := NewRegions(m, 11, 1, 1)
	wantReps := map[int]int{
		0: 1, 1: 1, 2: 1, 3: 1, 4: 1, // r < 11/2 = 5
		5: 2, 6: 2, 7: 2, 8: 2, 9: 2, // r < 11 - (26/20=1) = 10
		10: 20, // the expensive 5%
	}
	for reg, want := range wantReps {
		if got := r.Rep(reg); got != want {
			t.Errorf("Rep(%d) = %d, want %d", reg, got, want)
		}
	}
}

func TestRepWithHigherCost(t *testing.T) {
	m := New(2)
	r := NewRegions(m, 20, 1, 3)
	if r.Rep(0) != 1 {
		t.Errorf("cheap region rep = %d", r.Rep(0))
	}
	if r.Rep(10) != 4 { // 1 + cost
		t.Errorf("middle region rep = %d, want 4", r.Rep(10))
	}
	if r.Rep(19) != 40 { // 10 * (1 + cost)
		t.Errorf("expensive region rep = %d, want 40", r.Rep(19))
	}
}

func TestBalanceSkewsRegionSizes(t *testing.T) {
	// With balance > 1 the weight of region i is (i+1)^balance, so
	// later regions receive far more elements on average.
	m := New(10)
	r := NewRegions(m, 8, 3, 1)
	firstHalf, secondHalf := 0, 0
	for reg, list := range r.ElemList {
		if reg < 4 {
			firstHalf += len(list)
		} else {
			secondHalf += len(list)
		}
	}
	if secondHalf <= firstHalf {
		t.Errorf("balance=3 should skew sizes: first half %d, second half %d",
			firstHalf, secondHalf)
	}
}

func TestRegionsSizesVary(t *testing.T) {
	// The random-run construction should produce unequal region sizes —
	// that inequality is the load imbalance the paper exploits.
	m := New(10)
	r := NewRegions(m, 11, 1, 1)
	min, max := m.NumElem, 0
	for _, list := range r.ElemList {
		if len(list) < min {
			min = len(list)
		}
		if len(list) > max {
			max = len(list)
		}
	}
	if min == max {
		t.Error("all regions identical in size; expected imbalance")
	}
}

func TestLCGRange(t *testing.T) {
	r := &lcg{state: 0}
	for i := 0; i < 100000; i++ {
		v := r.next()
		if v < 0 || v > 0x7fff {
			t.Fatalf("lcg output %d out of [0, 32767]", v)
		}
	}
}

func TestLCGDeterministic(t *testing.T) {
	a, b := &lcg{state: 0}, &lcg{state: 0}
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("lcg streams diverge for equal seeds")
		}
	}
}

func TestIpow(t *testing.T) {
	cases := []struct{ base, exp, want int }{
		{2, 0, 1}, {2, 1, 2}, {2, 10, 1024}, {3, 3, 27}, {1, 100, 1}, {7, 2, 49},
	}
	for _, c := range cases {
		if got := ipow(c.base, c.exp); got != c.want {
			t.Errorf("ipow(%d,%d) = %d, want %d", c.base, c.exp, got, c.want)
		}
	}
}

func TestRegionsPropertyPartition(t *testing.T) {
	f := func(s8, nr8 uint8) bool {
		s := int(s8)%4 + 2
		nr := int(nr8)%12 + 1
		m := New(s)
		r := NewRegions(m, nr, 1, 1)
		count := 0
		for _, list := range r.ElemList {
			count += len(list)
		}
		return count == m.NumElem && len(r.ElemList) == nr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
