package mesh

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) should panic")
		}
	}()
	New(0)
}

func TestCounts(t *testing.T) {
	for _, s := range []int{1, 2, 3, 5, 8} {
		m := New(s)
		if m.NumElem != s*s*s {
			t.Errorf("s=%d: NumElem = %d", s, m.NumElem)
		}
		if m.NumNode != (s+1)*(s+1)*(s+1) {
			t.Errorf("s=%d: NumNode = %d", s, m.NumNode)
		}
		if len(m.Nodelist) != 8*m.NumElem {
			t.Errorf("s=%d: Nodelist len %d", s, len(m.Nodelist))
		}
	}
}

// nodeAt returns the node index of lattice coordinates (i, j, k).
func nodeAt(m *Mesh, i, j, k int) int32 {
	en := m.EdgeNodes
	return int32(k*en*en + j*en + i)
}

// elemAt returns the element index of lattice coordinates (i, j, k).
func elemAt(m *Mesh, i, j, k int) int {
	s := m.EdgeElems
	return k*s*s + j*s + i
}

func TestNodelistGeometry(t *testing.T) {
	m := New(3)
	for k := 0; k < 3; k++ {
		for j := 0; j < 3; j++ {
			for i := 0; i < 3; i++ {
				e := elemAt(m, i, j, k)
				nl := m.Nodelist[8*e : 8*e+8]
				want := []int32{
					nodeAt(m, i, j, k),
					nodeAt(m, i+1, j, k),
					nodeAt(m, i+1, j+1, k),
					nodeAt(m, i, j+1, k),
					nodeAt(m, i, j, k+1),
					nodeAt(m, i+1, j, k+1),
					nodeAt(m, i+1, j+1, k+1),
					nodeAt(m, i, j+1, k+1),
				}
				for c := 0; c < 8; c++ {
					if nl[c] != want[c] {
						t.Fatalf("elem(%d,%d,%d) corner %d = %d, want %d",
							i, j, k, c, nl[c], want[c])
					}
				}
			}
		}
	}
}

func TestNodelistInRangeAndDistinct(t *testing.T) {
	m := New(4)
	for e := 0; e < m.NumElem; e++ {
		seen := map[int32]bool{}
		for c := 0; c < 8; c++ {
			n := m.Nodelist[8*e+c]
			if n < 0 || int(n) >= m.NumNode {
				t.Fatalf("elem %d corner %d out of range: %d", e, c, n)
			}
			if seen[n] {
				t.Fatalf("elem %d has duplicate corner node %d", e, n)
			}
			seen[n] = true
		}
	}
}

func TestInteriorNeighbours(t *testing.T) {
	m := New(4)
	s := m.EdgeElems
	for k := 1; k < s-1; k++ {
		for j := 1; j < s-1; j++ {
			for i := 1; i < s-1; i++ {
				e := elemAt(m, i, j, k)
				if int(m.Lxim[e]) != elemAt(m, i-1, j, k) {
					t.Fatalf("lxim(%d)", e)
				}
				if int(m.Lxip[e]) != elemAt(m, i+1, j, k) {
					t.Fatalf("lxip(%d)", e)
				}
				if int(m.Letam[e]) != elemAt(m, i, j-1, k) {
					t.Fatalf("letam(%d)", e)
				}
				if int(m.Letap[e]) != elemAt(m, i, j+1, k) {
					t.Fatalf("letap(%d)", e)
				}
				if int(m.Lzetam[e]) != elemAt(m, i, j, k-1) {
					t.Fatalf("lzetam(%d)", e)
				}
				if int(m.Lzetap[e]) != elemAt(m, i, j, k+1) {
					t.Fatalf("lzetap(%d)", e)
				}
			}
		}
	}
}

func TestBoundaryConditionFaceCounts(t *testing.T) {
	m := New(5)
	s := m.EdgeElems
	counts := map[int32]int{}
	for _, bc := range m.ElemBC {
		for _, flag := range []int32{XiMSymm, XiPFree, EtaMSymm, EtaPFree, ZetaMSymm, ZetaPFree} {
			if bc&flag != 0 {
				counts[flag]++
			}
		}
	}
	for _, flag := range []int32{XiMSymm, XiPFree, EtaMSymm, EtaPFree, ZetaMSymm, ZetaPFree} {
		if counts[flag] != s*s {
			t.Errorf("flag %#x set on %d elements, want %d", flag, counts[flag], s*s)
		}
	}
}

func TestBoundaryConditionPlacement(t *testing.T) {
	m := New(4)
	s := m.EdgeElems
	for k := 0; k < s; k++ {
		for j := 0; j < s; j++ {
			for i := 0; i < s; i++ {
				bc := m.ElemBC[elemAt(m, i, j, k)]
				check := func(cond bool, flag int32, name string) {
					if cond != (bc&flag != 0) {
						t.Fatalf("elem(%d,%d,%d): %s flag mismatch", i, j, k, name)
					}
				}
				check(i == 0, XiMSymm, "XiMSymm")
				check(i == s-1, XiPFree, "XiPFree")
				check(j == 0, EtaMSymm, "EtaMSymm")
				check(j == s-1, EtaPFree, "EtaPFree")
				check(k == 0, ZetaMSymm, "ZetaMSymm")
				check(k == s-1, ZetaPFree, "ZetaPFree")
			}
		}
	}
}

func TestNoCommFlags(t *testing.T) {
	m := New(3)
	comm := int32(XiMComm | XiPComm | EtaMComm | EtaPComm | ZetaMComm | ZetaPComm)
	for e, bc := range m.ElemBC {
		if bc&comm != 0 {
			t.Fatalf("single-domain mesh has COMM flag on element %d", e)
		}
	}
}

func TestSymmetryPlaneLists(t *testing.T) {
	m := New(4)
	en := m.EdgeNodes
	if len(m.SymmX) != en*en || len(m.SymmY) != en*en || len(m.SymmZ) != en*en {
		t.Fatalf("symmetry list sizes: %d %d %d, want %d",
			len(m.SymmX), len(m.SymmY), len(m.SymmZ), en*en)
	}
	for _, n := range m.SymmX {
		if int(n)%en != 0 {
			t.Fatalf("SymmX node %d is not on the x=0 plane", n)
		}
	}
	for _, n := range m.SymmY {
		if (int(n)/en)%en != 0 {
			t.Fatalf("SymmY node %d is not on the y=0 plane", n)
		}
	}
	for _, n := range m.SymmZ {
		if int(n)/(en*en) != 0 {
			t.Fatalf("SymmZ node %d is not on the z=0 plane", n)
		}
	}
}

func TestSymmFlagsMatchLists(t *testing.T) {
	m := New(5)
	want := make([]uint8, m.NumNode)
	for _, n := range m.SymmX {
		want[n] |= SymmFlagX
	}
	for _, n := range m.SymmY {
		want[n] |= SymmFlagY
	}
	for _, n := range m.SymmZ {
		want[n] |= SymmFlagZ
	}
	for n := range want {
		if m.SymmFlags[n] != want[n] {
			t.Fatalf("SymmFlags[%d] = %b, want %b", n, m.SymmFlags[n], want[n])
		}
	}
	// The origin node lies on all three planes.
	if m.SymmFlags[0] != SymmFlagX|SymmFlagY|SymmFlagZ {
		t.Fatalf("origin flags = %b", m.SymmFlags[0])
	}
}

func TestNodeElemCornerListComplete(t *testing.T) {
	m := New(4)
	if int(m.NodeElemStart[m.NumNode]) != 8*m.NumElem {
		t.Fatalf("corner list covers %d corners, want %d",
			m.NodeElemStart[m.NumNode], 8*m.NumElem)
	}
	// Every (elem, corner) pair appears exactly once, under its node.
	seen := make([]bool, 8*m.NumElem)
	for n := 0; n < m.NumNode; n++ {
		for idx := m.NodeElemStart[n]; idx < m.NodeElemStart[n+1]; idx++ {
			c := m.NodeElemCornerList[idx]
			if seen[c] {
				t.Fatalf("corner %d listed twice", c)
			}
			seen[c] = true
			if m.Nodelist[c] != int32(n) {
				t.Fatalf("corner %d filed under node %d but belongs to node %d",
					c, n, m.Nodelist[c])
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("corner %d missing from gather list", c)
		}
	}
}

func TestNodeElemCornerCounts(t *testing.T) {
	m := New(3)
	// A corner node of the cube touches 1 element, an interior node 8.
	origin := m.NodeElemStart[1] - m.NodeElemStart[0]
	if origin != 1 {
		t.Errorf("origin node touches %d elements, want 1", origin)
	}
	inner := nodeAt(m, 1, 1, 1)
	cnt := m.NodeElemStart[inner+1] - m.NodeElemStart[inner]
	if cnt != 8 {
		t.Errorf("interior node touches %d elements, want 8", cnt)
	}
}

func TestMeshDeterministic(t *testing.T) {
	f := func(s8 uint8) bool {
		s := int(s8)%5 + 1
		a, b := New(s), New(s)
		if len(a.Nodelist) != len(b.Nodelist) {
			return false
		}
		for i := range a.Nodelist {
			if a.Nodelist[i] != b.Nodelist[i] {
				return false
			}
		}
		for i := range a.ElemBC {
			if a.ElemBC[i] != b.ElemBC[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSizeOneMesh(t *testing.T) {
	m := New(1)
	if m.NumElem != 1 || m.NumNode != 8 {
		t.Fatalf("1-element mesh: %d elems %d nodes", m.NumElem, m.NumNode)
	}
	// The single element has every boundary flag.
	bc := m.ElemBC[0]
	for _, flag := range []int32{XiMSymm, XiPFree, EtaMSymm, EtaPFree, ZetaMSymm, ZetaPFree} {
		if bc&flag == 0 {
			t.Errorf("flag %#x missing on the only element", flag)
		}
	}
}
