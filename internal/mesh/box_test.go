package mesh

import "testing"

func TestNewBoxDimensions(t *testing.T) {
	m := NewBox(2, 3, 4)
	if m.NumElem != 24 || m.NumNode != 3*4*5 {
		t.Fatalf("box dims: %d elems %d nodes", m.NumElem, m.NumNode)
	}
	if m.Nx != 2 || m.Ny != 3 || m.Nz != 4 {
		t.Fatalf("box extents %dx%dx%d", m.Nx, m.Ny, m.Nz)
	}
}

func TestNewBoxPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBox(0,1,1) should panic")
		}
	}()
	NewBox(0, 1, 1)
}

func TestCubeEqualsBox(t *testing.T) {
	a := New(3)
	b := NewBox(3, 3, 3)
	for i := range a.Nodelist {
		if a.Nodelist[i] != b.Nodelist[i] {
			t.Fatal("cube and box connectivity differ")
		}
	}
	for i := range a.ElemBC {
		if a.ElemBC[i] != b.ElemBC[i] {
			t.Fatal("cube and box boundary conditions differ")
		}
	}
	for i := range a.Lzetam {
		if a.Lzetam[i] != b.Lzetam[i] || a.Letam[i] != b.Letam[i] {
			t.Fatal("cube and box neighbour tables differ")
		}
	}
}

func TestBoxNeighboursInterior(t *testing.T) {
	m := NewBox(3, 4, 5)
	elem := func(i, j, k int) int { return k*12 + j*3 + i }
	e := elem(1, 2, 2)
	if int(m.Letam[e]) != elem(1, 1, 2) || int(m.Letap[e]) != elem(1, 3, 2) {
		t.Fatal("eta neighbours wrong for box")
	}
	if int(m.Lzetam[e]) != elem(1, 2, 1) || int(m.Lzetap[e]) != elem(1, 2, 3) {
		t.Fatal("zeta neighbours wrong for box")
	}
}

func TestCommZFacesFlagsAndGhosts(t *testing.T) {
	m := NewBox(2, 2, 3, WithCommZ(true, true))
	plane := 4
	if m.GhostZMin != m.NumElem || m.GhostZMax != m.NumElem+plane {
		t.Fatalf("ghost bases %d/%d", m.GhostZMin, m.GhostZMax)
	}
	if m.NumElemGhost != m.NumElem+2*plane {
		t.Fatalf("NumElemGhost = %d", m.NumElemGhost)
	}
	for i := 0; i < plane; i++ {
		if m.ElemBC[i]&ZetaMComm == 0 || m.ElemBC[i]&ZetaMSymm != 0 {
			t.Fatalf("bottom-plane elem %d BC %#x", i, m.ElemBC[i])
		}
		if int(m.Lzetam[i]) != m.GhostZMin+i {
			t.Fatalf("bottom lzetam[%d] = %d", i, m.Lzetam[i])
		}
		top := m.NumElem - plane + i
		if m.ElemBC[top]&ZetaPComm == 0 || m.ElemBC[top]&ZetaPFree != 0 {
			t.Fatalf("top-plane elem %d BC %#x", top, m.ElemBC[top])
		}
		if int(m.Lzetap[top]) != m.GhostZMax+i {
			t.Fatalf("top lzetap[%d] = %d", top, m.Lzetap[top])
		}
	}
}

func TestCommZMinOnly(t *testing.T) {
	m := NewBox(2, 2, 2, WithCommZ(true, false))
	if m.GhostZMin != m.NumElem || m.GhostZMax != -1 {
		t.Fatalf("ghost bases %d/%d", m.GhostZMin, m.GhostZMax)
	}
	if m.NumElemGhost != m.NumElem+4 {
		t.Fatalf("NumElemGhost = %d", m.NumElemGhost)
	}
	// z-max stays a free surface.
	top := m.NumElem - 1
	if m.ElemBC[top]&ZetaPFree == 0 {
		t.Fatal("z-max should remain free")
	}
	// No z symmetry node list when z-min is a comm face.
	if len(m.SymmZ) != 0 {
		t.Fatalf("SymmZ should be empty, has %d", len(m.SymmZ))
	}
	for n := 0; n < m.NumNode; n++ {
		if m.SymmFlags[n]&SymmFlagZ != 0 {
			t.Fatalf("node %d carries z symmetry flag on a comm face", n)
		}
	}
}

func TestPlaneNodes(t *testing.T) {
	m := NewBox(2, 3, 4)
	bottom := m.PlaneNodes(0)
	if len(bottom) != 3*4 {
		t.Fatalf("plane node count %d", len(bottom))
	}
	for i, n := range bottom {
		if int(n) != i {
			t.Fatalf("bottom plane node %d = %d", i, n)
		}
	}
	top := m.PlaneNodes(4)
	if int(top[0]) != m.NumNode-3*4 {
		t.Fatalf("top plane starts at %d", top[0])
	}
}

func TestPlaneElems(t *testing.T) {
	m := NewBox(2, 3, 4)
	p := m.PlaneElems(2)
	if len(p) != 6 {
		t.Fatalf("plane elem count %d", len(p))
	}
	for i, e := range p {
		if int(e) != 2*6+i {
			t.Fatalf("plane elem %d = %d", i, e)
		}
	}
}

func TestBoxSymmetryListSizes(t *testing.T) {
	m := NewBox(2, 3, 4)
	if len(m.SymmX) != 4*5 {
		t.Fatalf("SymmX size %d, want %d", len(m.SymmX), 4*5)
	}
	if len(m.SymmY) != 3*5 {
		t.Fatalf("SymmY size %d, want %d", len(m.SymmY), 3*5)
	}
	if len(m.SymmZ) != 3*4 {
		t.Fatalf("SymmZ size %d, want %d", len(m.SymmZ), 3*4)
	}
}
