// Package mesh builds the regular hexahedral mesh used by the LULESH proxy
// application: element-to-node connectivity, element face neighbours,
// boundary-condition flags, symmetry-plane node sets, node-to-element-corner
// gather lists, and the weighted random region decomposition.
//
// New builds the classic cubic single-domain mesh (s^3 elements,
// (s+1)^3 nodes). NewBox builds a general nx×ny×nz box, optionally with
// communication faces in the zeta direction — the building block of the
// multi-domain decomposition in internal/dist, where a stack of boxes
// forms one global problem and boundary planes are exchanged between
// ranks (the COMM boundary conditions of the MPI reference).
//
// Index conventions, neighbour tables and boundary-condition encodings
// replicate LULESH 2.0 (LLNL-TR-490254) exactly, including its quirks
// (see the neighbour-table comment below).
package mesh

import "fmt"

// Boundary-condition flags for each element face, exactly as encoded in
// LULESH 2.0. M is the face on the negative side of the axis, P the
// positive side. SYMM marks a symmetry plane, FREE a free surface, COMM a
// face owned by a neighbouring domain whose gradients arrive as ghost
// values.
const (
	XiM       = 0x00007
	XiMSymm   = 0x00001
	XiMFree   = 0x00002
	XiMComm   = 0x00004
	XiP       = 0x00038
	XiPSymm   = 0x00008
	XiPFree   = 0x00010
	XiPComm   = 0x00020
	EtaM      = 0x001c0
	EtaMSymm  = 0x00040
	EtaMFree  = 0x00080
	EtaMComm  = 0x00100
	EtaP      = 0x00e00
	EtaPSymm  = 0x00200
	EtaPFree  = 0x00400
	EtaPComm  = 0x00800
	ZetaM     = 0x07000
	ZetaMSymm = 0x01000
	ZetaMFree = 0x02000
	ZetaMComm = 0x04000
	ZetaP     = 0x38000
	ZetaPSymm = 0x08000
	ZetaPFree = 0x10000
	ZetaPComm = 0x20000
)

// Symmetry flags per node (SymmFlags), used by backends that fuse the
// acceleration boundary condition into the acceleration kernel.
const (
	SymmFlagX = 1 << iota
	SymmFlagY
	SymmFlagZ
)

// Mesh holds the immutable topology of a LULESH domain.
type Mesh struct {
	// Nx, Ny, Nz are the element counts per dimension. The classic cubic
	// problem has Nx = Ny = Nz = EdgeElems.
	Nx, Ny, Nz int
	EdgeElems  int // Nx, kept for the cubic problem-size convention
	EdgeNodes  int // Nx + 1
	NumElem    int // Nx*Ny*Nz
	NumNode    int // (Nx+1)*(Ny+1)*(Nz+1)

	// CommZMin / CommZMax mark the zeta faces owned by a neighbouring
	// domain (internal/dist). Those faces carry COMM boundary conditions
	// instead of SYMM/FREE, and their face neighbours point into the
	// ghost ranges below.
	CommZMin, CommZMax bool

	// GhostZMin / GhostZMax are the starting indices of the ghost element
	// ranges appended (virtually) after NumElem in gradient arrays, or -1
	// when the corresponding face is not a communication face. Each ghost
	// range holds Nx*Ny entries, indexed like the adjacent plane.
	GhostZMin, GhostZMax int
	// NumElemGhost is NumElem plus all ghost slots; gradient arrays
	// (delv_xi/eta/zeta) must have this length.
	NumElemGhost int

	// Nodelist maps element e to its 8 corner nodes,
	// Nodelist[8*e : 8*e+8], in the LULESH local node order.
	Nodelist []int32

	// Element face neighbours in the xi (column), eta (row) and zeta
	// (plane) directions. As in LULESH 2.0, the xi table is filled with
	// plain i-1 / i+1 even across row boundaries: the boundary-condition
	// flags guarantee those entries are never dereferenced, and we keep
	// the quirk for bit-exact fidelity with the reference. On COMM faces
	// the zeta neighbours point into the ghost ranges.
	Lxim, Lxip     []int32
	Letam, Letap   []int32
	Lzetam, Lzetap []int32

	// ElemBC holds the per-element boundary-condition flag word.
	ElemBC []int32

	// SymmX, SymmY and SymmZ list the nodes lying on the x=0, y=0 and
	// z=0 symmetry planes. SymmZ is empty when the z=0 face is a
	// communication face.
	SymmX, SymmY, SymmZ []int32

	// SymmFlags[n] is the bitwise OR of SymmFlag{X,Y,Z} for node n.
	SymmFlags []uint8

	// NodeElemStart / NodeElemCornerList form the CSR-style gather map
	// from node n to the element corners that touch it: entries
	// NodeElemCornerList[NodeElemStart[n]:NodeElemStart[n+1]] hold
	// elem*8+corner indices into per-corner force arrays.
	NodeElemStart      []int32
	NodeElemCornerList []int32
}

// New builds the classic cubic single-domain mesh with edgeElems elements
// per edge.
func New(edgeElems int) *Mesh {
	return NewBox(edgeElems, edgeElems, edgeElems)
}

// BoxOption configures NewBox.
type BoxOption func(*Mesh)

// WithCommZ marks the z-min and/or z-max faces as communication faces
// shared with neighbouring domains.
func WithCommZ(zmin, zmax bool) BoxOption {
	return func(m *Mesh) {
		m.CommZMin = zmin
		m.CommZMax = zmax
	}
}

// NewBox builds the full topology for an nx × ny × nz element box.
func NewBox(nx, ny, nz int, opts ...BoxOption) *Mesh {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("mesh: dimensions must be >= 1, got %dx%dx%d", nx, ny, nz))
	}
	m := &Mesh{
		Nx: nx, Ny: ny, Nz: nz,
		EdgeElems: nx,
		EdgeNodes: nx + 1,
	}
	m.NumElem = nx * ny * nz
	m.NumNode = (nx + 1) * (ny + 1) * (nz + 1)
	for _, o := range opts {
		o(m)
	}
	m.GhostZMin, m.GhostZMax = -1, -1
	m.NumElemGhost = m.NumElem
	plane := nx * ny
	if m.CommZMin {
		m.GhostZMin = m.NumElemGhost
		m.NumElemGhost += plane
	}
	if m.CommZMax {
		m.GhostZMax = m.NumElemGhost
		m.NumElemGhost += plane
	}
	m.buildNodelist()
	m.buildNeighbours()
	m.buildBoundaryConditions()
	m.buildSymmetryPlanes()
	m.buildNodeElemCorners()
	return m
}

func (m *Mesh) buildNodelist() {
	enx := m.Nx + 1
	eny := m.Ny + 1
	m.Nodelist = make([]int32, 8*m.NumElem)
	zidx := 0
	nidx := 0
	for plane := 0; plane < m.Nz; plane++ {
		for row := 0; row < m.Ny; row++ {
			for col := 0; col < m.Nx; col++ {
				nl := m.Nodelist[8*zidx : 8*zidx+8]
				nl[0] = int32(nidx)
				nl[1] = int32(nidx + 1)
				nl[2] = int32(nidx + enx + 1)
				nl[3] = int32(nidx + enx)
				nl[4] = int32(nidx + enx*eny)
				nl[5] = int32(nidx + enx*eny + 1)
				nl[6] = int32(nidx + enx*eny + enx + 1)
				nl[7] = int32(nidx + enx*eny + enx)
				zidx++
				nidx++
			}
			nidx++ // skip the last node of the row
		}
		nidx += enx // skip the last row of the plane
	}
}

func (m *Mesh) buildNeighbours() {
	ne := m.NumElem
	nx := m.Nx
	plane := m.Nx * m.Ny
	m.Lxim = make([]int32, ne)
	m.Lxip = make([]int32, ne)
	m.Letam = make([]int32, ne)
	m.Letap = make([]int32, ne)
	m.Lzetam = make([]int32, ne)
	m.Lzetap = make([]int32, ne)

	// xi direction (LULESH fills these across row boundaries on purpose;
	// the BC masks shield the bogus entries).
	m.Lxim[0] = 0
	for i := 1; i < ne; i++ {
		m.Lxim[i] = int32(i - 1)
		m.Lxip[i-1] = int32(i)
	}
	m.Lxip[ne-1] = int32(ne - 1)

	// eta direction (stride nx; the same quirk applies across planes).
	for i := 0; i < nx; i++ {
		m.Letam[i] = int32(i)
		m.Letap[ne-nx+i] = int32(ne - nx + i)
	}
	for i := nx; i < ne; i++ {
		m.Letam[i] = int32(i - nx)
		m.Letap[i-nx] = int32(i)
	}

	// zeta direction (stride nx*ny). On communication faces the
	// neighbours point into the ghost ranges.
	for i := 0; i < plane; i++ {
		if m.CommZMin {
			m.Lzetam[i] = int32(m.GhostZMin + i)
		} else {
			m.Lzetam[i] = int32(i)
		}
		if m.CommZMax {
			m.Lzetap[ne-plane+i] = int32(m.GhostZMax + i)
		} else {
			m.Lzetap[ne-plane+i] = int32(ne - plane + i)
		}
	}
	for i := plane; i < ne; i++ {
		m.Lzetam[i] = int32(i - plane)
		m.Lzetap[i-plane] = int32(i)
	}
}

func (m *Mesh) buildBoundaryConditions() {
	nx, ny, nz := m.Nx, m.Ny, m.Nz
	ne := m.NumElem
	plane := nx * ny
	m.ElemBC = make([]int32, ne)
	elem := func(i, j, k int) int { return k*plane + j*nx + i }
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				e := elem(i, j, k)
				if i == 0 {
					m.ElemBC[e] |= XiMSymm
				}
				if i == nx-1 {
					m.ElemBC[e] |= XiPFree
				}
				if j == 0 {
					m.ElemBC[e] |= EtaMSymm
				}
				if j == ny-1 {
					m.ElemBC[e] |= EtaPFree
				}
				if k == 0 {
					if m.CommZMin {
						m.ElemBC[e] |= ZetaMComm
					} else {
						m.ElemBC[e] |= ZetaMSymm
					}
				}
				if k == nz-1 {
					if m.CommZMax {
						m.ElemBC[e] |= ZetaPComm
					} else {
						m.ElemBC[e] |= ZetaPFree
					}
				}
			}
		}
	}
	_ = ne
}

func (m *Mesh) buildSymmetryPlanes() {
	enx, eny, enz := m.Nx+1, m.Ny+1, m.Nz+1
	node := func(i, j, k int) int32 { return int32(k*enx*eny + j*enx + i) }

	m.SymmX = m.SymmX[:0]
	m.SymmY = m.SymmY[:0]
	m.SymmZ = m.SymmZ[:0]
	for k := 0; k < enz; k++ {
		for j := 0; j < eny; j++ {
			m.SymmX = append(m.SymmX, node(0, j, k))
		}
	}
	for k := 0; k < enz; k++ {
		for i := 0; i < enx; i++ {
			m.SymmY = append(m.SymmY, node(i, 0, k))
		}
	}
	if !m.CommZMin {
		for j := 0; j < eny; j++ {
			for i := 0; i < enx; i++ {
				m.SymmZ = append(m.SymmZ, node(i, j, 0))
			}
		}
	}
	m.SymmFlags = make([]uint8, m.NumNode)
	for _, n := range m.SymmX {
		m.SymmFlags[n] |= SymmFlagX
	}
	for _, n := range m.SymmY {
		m.SymmFlags[n] |= SymmFlagY
	}
	for _, n := range m.SymmZ {
		m.SymmFlags[n] |= SymmFlagZ
	}
}

func (m *Mesh) buildNodeElemCorners() {
	count := make([]int32, m.NumNode)
	for e := 0; e < m.NumElem; e++ {
		for c := 0; c < 8; c++ {
			count[m.Nodelist[8*e+c]]++
		}
	}
	m.NodeElemStart = make([]int32, m.NumNode+1)
	for n := 0; n < m.NumNode; n++ {
		m.NodeElemStart[n+1] = m.NodeElemStart[n] + count[n]
	}
	m.NodeElemCornerList = make([]int32, m.NodeElemStart[m.NumNode])
	fill := make([]int32, m.NumNode)
	copy(fill, m.NodeElemStart[:m.NumNode])
	for e := 0; e < m.NumElem; e++ {
		for c := 0; c < 8; c++ {
			n := m.Nodelist[8*e+c]
			m.NodeElemCornerList[fill[n]] = int32(8*e + c)
			fill[n]++
		}
	}
}

// PlaneNodes returns the node indices of the z = kPlane node plane
// (kPlane in [0, Nz]), in row-major (j, i) order — the exchange unit of
// the multi-domain decomposition.
func (m *Mesh) PlaneNodes(kPlane int) []int32 {
	enx, eny := m.Nx+1, m.Ny+1
	out := make([]int32, 0, enx*eny)
	base := kPlane * enx * eny
	for j := 0; j < eny; j++ {
		for i := 0; i < enx; i++ {
			out = append(out, int32(base+j*enx+i))
		}
	}
	return out
}

// PlaneElems returns the element indices of the z = kPlane element plane
// (kPlane in [0, Nz-1]), in row-major order — the ghost-exchange unit of
// the monotonic-Q gradients.
func (m *Mesh) PlaneElems(kPlane int) []int32 {
	plane := m.Nx * m.Ny
	out := make([]int32, plane)
	for i := range out {
		out[i] = int32(kPlane*plane + i)
	}
	return out
}
