package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"lulesh/internal/core"
	"lulesh/internal/domain"
)

// makeCheckpoint produces a valid checkpoint byte stream to damage.
func makeCheckpoint(t *testing.T) []byte {
	t.Helper()
	cfg := domain.DefaultConfig(4)
	d := domain.NewSedov(cfg)
	b := core.NewBackendSerial(d)
	defer b.Close()
	stepN(t, d, b, 5)
	var buf bytes.Buffer
	if err := SaveCube(&buf, d, cfg); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadDetectsTruncation(t *testing.T) {
	blob := makeCheckpoint(t)
	// Every truncation point — inside the header, inside the payload, one
	// byte short — must be detected and classified as corruption.
	for _, cut := range []int{0, 3, len(blob) / 2, len(blob) - 1} {
		_, err := Load(bytes.NewReader(blob[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d not classified as ErrCorrupt: %v", cut, err)
		}
	}
}

func TestLoadDetectsBitFlips(t *testing.T) {
	blob := makeCheckpoint(t)
	// Flip one bit at several positions across the stream: header, length
	// field, early payload, late payload. Each must fail with ErrCorrupt.
	for _, pos := range []int{0, 9, 15, 40, len(blob) / 2, len(blob) - 2} {
		damaged := append([]byte(nil), blob...)
		damaged[pos] ^= 0x10
		_, err := Load(bytes.NewReader(damaged))
		if err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d not classified as ErrCorrupt: %v", pos, err)
		}
	}
	// The undamaged stream still loads (the damage loop must not be the
	// reason the checks pass).
	if _, err := Load(bytes.NewReader(blob)); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	blob := append([]byte(nil), makeCheckpoint(t)...)
	blob[len(frameHeader)] = frameVersion + 1
	_, err := Load(bytes.NewReader(blob))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version not rejected as corrupt: %v", err)
	}
}

func TestGarbageClassifiedCorrupt(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte("definitely not a checkpoint, not even close")))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage not classified as ErrCorrupt: %v", err)
	}
}

func TestSaveRankLoadRankRoundTrip(t *testing.T) {
	bc := domain.BoxConfig{Nx: 3, Ny: 3, Nz: 3, NumReg: 2, Balance: 1, Cost: 1,
		CommZMax: true, DepositEnergy: true, Spacing: 1.125 / 3}
	d := domain.NewSedovBox(bc)
	// Give the exchanged state recognizable values.
	for i := range d.NodalMass {
		d.NodalMass[i] = float64(i) * 0.5
	}
	ne := d.NumElem()
	for i := range d.DelvXi[ne:] {
		d.DelvXi[ne+i] = float64(i) + 0.25
		d.DelvEta[ne+i] = float64(i) + 0.5
		d.DelvZeta[ne+i] = float64(i) + 0.75
	}
	d.Cycle = 12

	var buf bytes.Buffer
	meta := RankMeta{Rank: 1, Ranks: 4, Epoch: 12}
	if err := SaveRank(&buf, d, bc, meta); err != nil {
		t.Fatal(err)
	}
	got, gm, err := LoadRank(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gm.Rank != 1 || gm.Ranks != 4 || gm.Epoch != 12 {
		t.Fatalf("meta round-trip: %+v", gm)
	}
	for i := range d.NodalMass {
		if got.NodalMass[i] != d.NodalMass[i] {
			t.Fatalf("NodalMass[%d] lost", i)
		}
	}
	for i := range d.DelvXi[ne:] {
		if got.DelvXi[ne+i] != d.DelvXi[ne+i] ||
			got.DelvEta[ne+i] != d.DelvEta[ne+i] ||
			got.DelvZeta[ne+i] != d.DelvZeta[ne+i] {
			t.Fatalf("ghost gradients lost at %d", i)
		}
	}
	if got.Cycle != 12 {
		t.Fatalf("cycle lost: %d", got.Cycle)
	}
}

func TestLoadRankRejectsPlainCheckpoint(t *testing.T) {
	// A single-domain checkpoint must not be accepted by the rank loader
	// (and vice versa) — the payload magics are distinct.
	blob := makeCheckpoint(t)
	if _, _, err := LoadRank(bytes.NewReader(blob)); err == nil {
		t.Fatal("LoadRank accepted a plain checkpoint")
	}

	bc := domain.BoxConfig{Nx: 2, Ny: 2, Nz: 2, NumReg: 1, DepositEnergy: true}
	d := domain.NewSedovBox(bc)
	var buf bytes.Buffer
	if err := SaveRank(&buf, d, bc, RankMeta{Ranks: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("Load accepted a rank checkpoint")
	}
}

func TestRankCheckpointCorruptionDetected(t *testing.T) {
	bc := domain.BoxConfig{Nx: 2, Ny: 2, Nz: 2, NumReg: 1, DepositEnergy: true}
	d := domain.NewSedovBox(bc)
	var buf bytes.Buffer
	if err := SaveRank(&buf, d, bc, RankMeta{Ranks: 1}); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	damaged := append([]byte(nil), blob...)
	damaged[len(damaged)/2] ^= 0x01
	if _, _, err := LoadRank(bytes.NewReader(damaged)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rank checkpoint bit flip not ErrCorrupt: %v", err)
	}
	if _, _, err := LoadRank(bytes.NewReader(blob[:len(blob)-3])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rank checkpoint truncation not ErrCorrupt: %v", err)
	}
}
