package checkpoint_test

import (
	"bytes"
	"errors"
	"fmt"

	"lulesh/internal/checkpoint"
	"lulesh/internal/core"
	"lulesh/internal/domain"
)

// Example runs a small Sedov problem for a few cycles, checkpoints it, and
// restores it: the resumed domain continues exactly where the saved one
// stopped.
func Example() {
	cfg := domain.DefaultConfig(4)
	d := domain.NewSedov(cfg)
	b := core.NewBackendSerial(d)
	defer b.Close()
	for i := 0; i < 10; i++ {
		core.TimeIncrement(d)
		if err := b.Step(d); err != nil {
			panic(err)
		}
	}

	var buf bytes.Buffer
	if err := checkpoint.SaveCube(&buf, d, cfg); err != nil {
		panic(err)
	}
	restored, err := checkpoint.Load(&buf)
	if err != nil {
		panic(err)
	}

	fmt.Println("cycle restored:", restored.Cycle == d.Cycle)
	fmt.Println("clock restored:", restored.Time == d.Time)
	fmt.Println("energy restored:", restored.E[0] == d.E[0])
	// Output:
	// cycle restored: true
	// clock restored: true
	// energy restored: true
}

// ExampleLoad_corrupt shows the integrity check: a damaged checkpoint is
// rejected with an error classified by ErrCorrupt instead of feeding a
// garbage state into a restart.
func ExampleLoad_corrupt() {
	cfg := domain.DefaultConfig(2)
	d := domain.NewSedov(cfg)
	var buf bytes.Buffer
	if err := checkpoint.SaveCube(&buf, d, cfg); err != nil {
		panic(err)
	}

	blob := buf.Bytes()
	blob[len(blob)/2] ^= 0x04 // one flipped bit anywhere in the stream

	_, err := checkpoint.Load(bytes.NewReader(blob))
	fmt.Println("rejected:", err != nil)
	fmt.Println("classified corrupt:", errors.Is(err, checkpoint.ErrCorrupt))
	// Output:
	// rejected: true
	// classified corrupt: true
}
