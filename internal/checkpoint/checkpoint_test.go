package checkpoint

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"lulesh/internal/core"
	"lulesh/internal/domain"
)

func stepN(t *testing.T, d *domain.Domain, b core.Backend, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		core.TimeIncrement(d)
		if err := b.Step(d); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResumeBitwiseExact: checkpoint mid-run, resume, and compare against
// the uninterrupted run — every field must match bit for bit.
func TestResumeBitwiseExact(t *testing.T) {
	cfg := domain.DefaultConfig(6)

	// Uninterrupted reference: 30 steps.
	ref := domain.NewSedov(cfg)
	bref := core.NewBackendSerial(ref)
	defer bref.Close()
	stepN(t, ref, bref, 30)

	// Interrupted run: 18 steps, checkpoint, resume, 12 more.
	d := domain.NewSedov(cfg)
	b := core.NewBackendSerial(d)
	stepN(t, d, b, 18)
	var buf bytes.Buffer
	if err := SaveCube(&buf, d, cfg); err != nil {
		t.Fatal(err)
	}
	b.Close()

	resumed, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b2 := core.NewBackendSerial(resumed)
	defer b2.Close()
	stepN(t, resumed, b2, 12)

	if resumed.Cycle != ref.Cycle || resumed.Time != ref.Time {
		t.Fatalf("clock diverged: %d/%v vs %d/%v",
			resumed.Cycle, resumed.Time, ref.Cycle, ref.Time)
	}
	pairs := []struct {
		name string
		a, b []float64
	}{
		{"X", ref.X, resumed.X}, {"Xd", ref.Xd, resumed.Xd},
		{"E", ref.E, resumed.E}, {"P", ref.P, resumed.P},
		{"Q", ref.Q, resumed.Q}, {"V", ref.V, resumed.V},
		{"SS", ref.SS, resumed.SS},
	}
	for _, pr := range pairs {
		for i := range pr.a {
			if pr.a[i] != pr.b[i] {
				t.Fatalf("%s[%d] diverged after resume: %v vs %v",
					pr.name, i, pr.a[i], pr.b[i])
			}
		}
	}
}

// TestResumeWithDifferentBackend: a checkpoint taken under one backend
// resumes identically under another (all backends are bitwise equivalent).
func TestResumeWithDifferentBackend(t *testing.T) {
	cfg := domain.DefaultConfig(5)
	ref := domain.NewSedov(cfg)
	bref := core.NewBackendSerial(ref)
	defer bref.Close()
	stepN(t, ref, bref, 20)

	d := domain.NewSedov(cfg)
	b := core.NewBackendOMP(d, 2)
	stepN(t, d, b, 10)
	var buf bytes.Buffer
	if err := SaveCube(&buf, d, cfg); err != nil {
		t.Fatal(err)
	}
	b.Close()

	resumed, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b2 := core.NewBackendTask(resumed, core.DefaultOptions(5, 2))
	defer b2.Close()
	stepN(t, resumed, b2, 10)

	if resumed.E[0] != ref.E[0] || resumed.Time != ref.Time {
		t.Fatalf("cross-backend resume diverged: e0 %v vs %v",
			resumed.E[0], ref.E[0])
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	d := domain.NewSedov(domain.DefaultConfig(2))
	if err := SaveCube(&buf, d, domain.DefaultConfig(2)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic inside the gob payload by re-encoding a bogus one
	// is fiddly; instead check that a valid save round-trips and the
	// loaded domain matches the saved state exactly.
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.E {
		if got.E[i] != d.E[i] {
			t.Fatalf("round-trip E[%d] mismatch", i)
		}
	}
	if got.Deltatime != d.Deltatime || got.Cycle != d.Cycle {
		t.Fatal("round-trip clock mismatch")
	}
}

func TestSaveBoxConfig(t *testing.T) {
	bc := domain.BoxConfig{Nx: 3, Ny: 2, Nz: 4, NumReg: 2, DepositEnergy: true}
	d := domain.NewSedovBox(bc)
	var buf bytes.Buffer
	if err := Save(&buf, d, bc); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mesh.Nx != 3 || got.Mesh.Ny != 2 || got.Mesh.Nz != 4 {
		t.Fatalf("box shape lost: %dx%dx%d", got.Mesh.Nx, got.Mesh.Ny, got.Mesh.Nz)
	}
}

func TestLoadRejectsMismatchedArrays(t *testing.T) {
	// Tamper: serialize state whose arrays do not match its config.
	bc := domain.BoxConfig{Nx: 2, Ny: 2, Nz: 2, NumReg: 1, DepositEnergy: true}
	d := domain.NewSedovBox(bc)
	var buf bytes.Buffer
	// Claim a larger mesh in the config than the arrays were sized for.
	bad := bc
	bad.Nx = 4
	if err := Save(&buf, d, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
}

func TestSaveToFailingWriter(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(2))
	if err := Save(failWriter{}, d, domain.BoxConfig{Nx: 2, Ny: 2, Nz: 2,
		NumReg: 1, DepositEnergy: true}); err == nil {
		t.Fatal("write failure not propagated")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errShort
}

var errShort = fmt.Errorf("short write")
