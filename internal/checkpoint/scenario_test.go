package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"lulesh/internal/core"
	"lulesh/internal/domain"
)

// TestScenarioResumeBitwiseExact: for every registered scenario, a
// checkpoint taken mid-run resumes bit-for-bit against the uninterrupted
// run. This only holds if apply() replays the scenario (piston face BCs,
// multimat cost model) instead of hardcoding the sedov constructor.
func TestScenarioResumeBitwiseExact(t *testing.T) {
	for _, name := range domain.ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			cfg := domain.DefaultConfig(6)
			spec := domain.ScenarioSpec{Name: name}

			build := func() *domain.Domain {
				d, err := domain.BuildScenarioCube(spec, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return d
			}

			ref := build()
			bref := core.NewBackendSerial(ref)
			defer bref.Close()
			stepN(t, ref, bref, 30)

			d := build()
			b := core.NewBackendSerial(d)
			stepN(t, d, b, 18)
			var buf bytes.Buffer
			if err := SaveCube(&buf, d, cfg); err != nil {
				t.Fatal(err)
			}
			b.Close()

			resumed, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !resumed.Scenario.Equal(d.Scenario) {
				t.Fatalf("scenario tag lost on restore: %q vs %q",
					resumed.Scenario.String(), d.Scenario.String())
			}
			b2 := core.NewBackendSerial(resumed)
			defer b2.Close()
			stepN(t, resumed, b2, 12)

			if resumed.Cycle != ref.Cycle || resumed.Time != ref.Time {
				t.Fatalf("clock diverged: %d/%v vs %d/%v",
					resumed.Cycle, resumed.Time, ref.Cycle, ref.Time)
			}
			pairs := []struct {
				field string
				a, b  []float64
			}{
				{"X", ref.X, resumed.X}, {"Xd", ref.Xd, resumed.Xd},
				{"E", ref.E, resumed.E}, {"P", ref.P, resumed.P},
				{"Q", ref.Q, resumed.Q}, {"V", ref.V, resumed.V},
			}
			for _, pr := range pairs {
				for i := range pr.a {
					if pr.a[i] != pr.b[i] {
						t.Fatalf("%s[%d] diverged after resume: %v vs %v",
							pr.field, i, pr.a[i], pr.b[i])
					}
				}
			}
		})
	}
}

// TestScenarioOptionsSurviveRestore: non-default scenario options (piston
// speed, multimat region shape) must round-trip through the checkpoint, or
// the restored topology silently differs from the saved one.
func TestScenarioOptionsSurviveRestore(t *testing.T) {
	cfg := domain.DefaultConfig(4)
	spec := domain.ScenarioSpec{Name: domain.ScenarioPiston,
		Options: map[string]string{"speed": "250"}}
	d, err := domain.BuildScenarioCube(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCube(&buf, d, cfg); err != nil {
		t.Fatal(err)
	}
	resumed, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Scenario.String(); got != "piston:speed=250" {
		t.Fatalf("restored spec = %q, want piston:speed=250", got)
	}
	// The rebuilt topology carries the piston wall: x-max face nodes keep
	// their pinned x-acceleration flag.
	enx := resumed.Mesh.Nx + 1
	if resumed.Mesh.SymmFlags[enx-1] == 0 {
		t.Fatal("restored piston domain lost its face pin")
	}
}

// TestExpectScenario: the restore guard accepts matching tags (including a
// legacy zero tag against an explicit sedov) and rejects mismatches with
// ErrScenarioMismatch.
func TestExpectScenario(t *testing.T) {
	cfg := domain.DefaultConfig(4)
	sedov, err := domain.BuildScenarioCube(domain.ScenarioSpec{Name: "sedov"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	piston, err := domain.BuildScenarioCube(domain.ScenarioSpec{Name: "piston"}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if err := ExpectScenario(sedov, domain.ScenarioSpec{}); err != nil {
		t.Errorf("zero spec must accept sedov: %v", err)
	}
	if err := ExpectScenario(sedov, domain.ScenarioSpec{Name: "sedov"}); err != nil {
		t.Errorf("explicit sedov must accept sedov: %v", err)
	}
	legacy := *sedov
	legacy.Scenario = domain.ScenarioSpec{} // pre-scenario checkpoint tag
	if err := ExpectScenario(&legacy, domain.ScenarioSpec{Name: "sedov"}); err != nil {
		t.Errorf("legacy tag must pass an explicit sedov run: %v", err)
	}

	err = ExpectScenario(piston, domain.ScenarioSpec{Name: "sedov"})
	if !errors.Is(err, ErrScenarioMismatch) {
		t.Errorf("piston checkpoint vs sedov run: want ErrScenarioMismatch, got %v", err)
	}
	err = ExpectScenario(piston, domain.ScenarioSpec{Name: "piston",
		Options: map[string]string{"speed": "999"}})
	if !errors.Is(err, ErrScenarioMismatch) {
		t.Errorf("differing options: want ErrScenarioMismatch, got %v", err)
	}
}

// TestRankCheckpointCarriesScenario: the multi-domain rank checkpoints go
// through the same state struct, so the tag must survive there too.
func TestRankCheckpointCarriesScenario(t *testing.T) {
	bc := domain.BoxConfig{Nx: 4, Ny: 4, Nz: 4, NumReg: 8, Balance: 1, Cost: 1,
		DepositEnergy: true}
	spec := domain.ScenarioSpec{Name: domain.ScenarioMultimat}
	d, err := domain.BuildScenario(spec, bc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveRank(&buf, d, bc, RankMeta{Rank: 1, Ranks: 2, Epoch: 7}); err != nil {
		t.Fatal(err)
	}
	resumed, meta, err := LoadRank(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Rank != 1 || meta.Epoch != 7 {
		t.Fatalf("rank meta lost: %+v", meta)
	}
	if !resumed.Scenario.Equal(d.Scenario) {
		t.Fatalf("rank checkpoint lost scenario: %q vs %q",
			resumed.Scenario.String(), d.Scenario.String())
	}
	if err := ExpectScenario(resumed, domain.ScenarioSpec{Name: "sedov"}); !errors.Is(err, ErrScenarioMismatch) {
		t.Errorf("multimat rank checkpoint vs sedov run: want mismatch, got %v", err)
	}
}
