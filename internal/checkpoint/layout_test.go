package checkpoint

import (
	"bytes"
	"testing"

	"lulesh/internal/core"
	"lulesh/internal/domain"
)

// The checkpoint payload stores field planes as plain slice values, so a
// blob is layout-neutral: it can be written from a slab-backed domain and
// restored into a scalar-backed one (or vice versa) without any format
// change. These tests pin that down.

func sedovBox(size int, layout domain.Layout) domain.BoxConfig {
	return domain.BoxConfig{
		Nx: size, Ny: size, Nz: size,
		NumReg: 11, Balance: 1, Cost: 1,
		DepositEnergy: true,
		FieldLayout:   layout,
	}
}

func compareState(t *testing.T, name string, ref, got *domain.Domain) {
	t.Helper()
	if got.Cycle != ref.Cycle || got.Time != ref.Time {
		t.Fatalf("%s: clock diverged: %d/%v vs %d/%v",
			name, got.Cycle, got.Time, ref.Cycle, ref.Time)
	}
	pairs := []struct {
		field string
		a, b  []float64
	}{
		{"X", ref.X, got.X}, {"Y", ref.Y, got.Y}, {"Z", ref.Z, got.Z},
		{"Xd", ref.Xd, got.Xd}, {"Yd", ref.Yd, got.Yd}, {"Zd", ref.Zd, got.Zd},
		{"E", ref.E, got.E}, {"P", ref.P, got.P}, {"Q", ref.Q, got.Q},
		{"V", ref.V, got.V}, {"SS", ref.SS, got.SS},
	}
	for _, pr := range pairs {
		for i := range pr.a {
			if pr.a[i] != pr.b[i] {
				t.Fatalf("%s: %s[%d] diverged: %v vs %v",
					name, pr.field, i, pr.a[i], pr.b[i])
			}
		}
	}
}

// TestCrossLayoutRestore saves a slab-layout run mid-flight with a config
// requesting the scalar layout (and vice versa). Load rebuilds under the
// requested layout and the continued run must match an uninterrupted
// slab-layout reference bit for bit in both directions.
func TestCrossLayoutRestore(t *testing.T) {
	const size, pre, post = 6, 18, 12

	ref, err := domain.BuildScenario(domain.ScenarioSpec{}, sedovBox(size, domain.LayoutSlab))
	if err != nil {
		t.Fatal(err)
	}
	bref := core.NewBackendSerial(ref)
	defer bref.Close()
	stepN(t, ref, bref, pre+post)

	for _, tc := range []struct {
		name     string
		runUnder domain.Layout // layout of the domain that writes the blob
		saveAs   domain.Layout // layout recorded in the blob's config
	}{
		{"slab-to-scalar", domain.LayoutSlab, domain.LayoutScalar},
		{"scalar-to-slab", domain.LayoutScalar, domain.LayoutSlab},
		{"scalar-to-scalar", domain.LayoutScalar, domain.LayoutScalar},
	} {
		d, err := domain.BuildScenario(domain.ScenarioSpec{}, sedovBox(size, tc.runUnder))
		if err != nil {
			t.Fatal(err)
		}
		if d.Layout != tc.runUnder {
			t.Fatalf("%s: built layout %v, want %v", tc.name, d.Layout, tc.runUnder)
		}
		b := core.NewBackendSerial(d)
		stepN(t, d, b, pre)
		var buf bytes.Buffer
		if err := Save(&buf, d, sedovBox(size, tc.saveAs)); err != nil {
			t.Fatalf("%s: save: %v", tc.name, err)
		}
		b.Close()

		resumed, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", tc.name, err)
		}
		if resumed.Layout != tc.saveAs {
			t.Fatalf("%s: restored layout %v, want %v", tc.name, resumed.Layout, tc.saveAs)
		}
		b2 := core.NewBackendSerial(resumed)
		stepN(t, resumed, b2, post)
		b2.Close()
		compareState(t, tc.name, ref, resumed)
	}
}

// TestRankRoundTripScalarLayout runs the rank codec (base state + ghost
// gradient planes) over a scalar-layout comm domain and checks every
// restored plane, including the ghost tails that live past NumElem.
func TestRankRoundTripScalarLayout(t *testing.T) {
	cfg := domain.BoxConfig{
		Nx: 4, Ny: 4, Nz: 4,
		NumReg: 3, Balance: 1, Cost: 1,
		CommZMax:      true,
		DepositEnergy: true,
		FieldLayout:   domain.LayoutScalar,
	}
	d, err := domain.BuildScenario(domain.ScenarioSpec{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ne := d.NumElem()
	if len(d.DelvXi) == ne {
		t.Fatal("comm domain should carry ghost gradient planes")
	}
	for i := range d.DelvXi {
		d.DelvXi[i] = float64(i) * 0.5
		d.DelvEta[i] = float64(i) * 0.25
		d.DelvZeta[i] = float64(i) * 0.125
	}
	var buf bytes.Buffer
	if err := SaveRank(&buf, d, cfg, RankMeta{Rank: 1, Ranks: 2, Epoch: 7}); err != nil {
		t.Fatal(err)
	}
	got, meta, err := LoadRank(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Layout != domain.LayoutScalar {
		t.Fatalf("restored layout %v, want scalar", got.Layout)
	}
	if meta.Rank != 1 || meta.Ranks != 2 || meta.Epoch != 7 {
		t.Fatalf("meta round trip: %+v", meta)
	}
	// Only the ghost tails [ne:] ride in the blob; the interior of the
	// gradient planes is per-step scratch and is not checkpointed.
	for i := ne; i < len(d.DelvXi); i++ {
		if got.DelvXi[i] != d.DelvXi[i] ||
			got.DelvEta[i] != d.DelvEta[i] ||
			got.DelvZeta[i] != d.DelvZeta[i] {
			t.Fatalf("ghost gradient plane diverged at %d", i)
		}
	}
	for i := range d.NodalMass {
		if got.NodalMass[i] != d.NodalMass[i] {
			t.Fatalf("nodal mass diverged at %d", i)
		}
	}
}
