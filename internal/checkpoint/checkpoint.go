// Package checkpoint serializes and restores the complete mutable state of
// a LULESH domain, so long runs can stop and resume. Restart is exact: a
// resumed run reproduces the uninterrupted run bit for bit (asserted by
// tests), because the checkpoint captures every quantity the leapfrog
// iteration reads, including the time-stepping state, and the mesh topology
// and region decomposition are rebuilt deterministically from the recorded
// configuration.
//
// Checkpoints are framed with a CRC-32 checksum over the encoded payload:
// a truncated or bit-flipped file is detected at Load time and reported as
// a typed error wrapping ErrCorrupt, never fed into a garbage restart.
//
// Beyond single domains (Save/Load), the package checkpoints one rank of
// the multi-domain driver (SaveRank/LoadRank): the base domain state plus
// the rank's exchanged nodal masses, its ghost-plane velocity gradients,
// and the comm epoch (the timestep the coordinated checkpoint was taken
// at) — everything internal/dist needs to restart a cluster from its last
// coordinated checkpoint after a rank failure.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"lulesh/internal/domain"
)

// ErrCorrupt is wrapped by every Load failure caused by a damaged stream —
// bad header, truncation, checksum mismatch, or an undecodable payload.
// Callers distinguish "the file is damaged" (restore from an older
// checkpoint) from "this is not a checkpoint at all" via errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt")

// ErrScenarioMismatch is wrapped by restore-path errors when a checkpoint's
// scenario tag disagrees with the scenario the run was asked to execute.
// Resuming a piston run from a sedov checkpoint silently merges two
// different problems; callers that know the intended scenario must reject
// the file instead.
var ErrScenarioMismatch = errors.New("checkpoint: scenario mismatch")

// ExpectScenario rejects a restored domain whose scenario tag does not
// match the spec the run was started with. Both sides are compared in
// normalized form (full effective options), so a user-written "piston"
// matches a tag of "piston:speed=100", and an explicit "sedov" matches a
// legacy checkpoint written before scenario tagging (whose tag decodes as
// the zero spec).
func ExpectScenario(d *domain.Domain, want domain.ScenarioSpec) error {
	normWant, err := domain.NormalizeScenarioSpec(want)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrScenarioMismatch, err)
	}
	normTag, err := domain.NormalizeScenarioSpec(d.Scenario)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrScenarioMismatch, err)
	}
	if !normTag.Equal(normWant) {
		return fmt.Errorf("%w: checkpoint was written by %q, run wants %q",
			ErrScenarioMismatch, normTag.String(), normWant.String())
	}
	return nil
}

// Frame layout: header + version byte, CRC-32 (IEEE) of the payload, the
// payload length, then the gob-encoded state.
const (
	frameHeader  = "LULESHCP"
	frameVersion = 2
)

// Magic strings inside the gob payload guard against feeding one
// checkpoint kind into the other loader.
const (
	magic     = "lulesh-checkpoint-v2"
	rankMagic = "lulesh-rank-checkpoint-v1"
)

// state is the serialized form: the box configuration and the scenario
// spec to rebuild mesh/regions/boundary-conditions deterministically
// through the scenario registry, plus every mutable array and the clock.
// Scenario was added after v2 shipped; gob tolerates its absence, and a
// zero spec normalizes to sedov — exactly what every pre-scenario
// checkpoint contained.
type state struct {
	Magic string

	Cfg      domain.BoxConfig
	Scenario domain.ScenarioSpec

	X, Y, Z    []float64
	Xd, Yd, Zd []float64

	E, P, Q    []float64
	Ql, Qq     []float64
	V, SS      []float64
	Delv, Vdov []float64
	Arealg     []float64

	Time      float64
	Deltatime float64
	Dtcourant float64
	Dthydro   float64
	Cycle     int
}

// RankMeta is the per-rank extra state of a multi-domain checkpoint: the
// rank's identity, the comm epoch (cycle) the coordinated checkpoint
// closed at, the exchanged nodal masses (so restart skips the init-time
// mass exchange), and the ghost-plane gradient slots.
type RankMeta struct {
	Rank  int
	Ranks int
	Epoch int

	NodalMass                                []float64
	GhostDelvXi, GhostDelvEta, GhostDelvZeta []float64
}

// rankState wraps the base domain state with the rank extras.
type rankState struct {
	Magic string
	Base  state
	Meta  RankMeta
}

// capture assembles the serializable state of d.
func capture(d *domain.Domain, cfg domain.BoxConfig) state {
	return state{
		Magic:    magic,
		Cfg:      cfg,
		Scenario: d.Scenario,
		X:        d.X, Y: d.Y, Z: d.Z,
		Xd: d.Xd, Yd: d.Yd, Zd: d.Zd,
		E: d.E, P: d.P, Q: d.Q,
		Ql: d.Ql, Qq: d.Qq,
		V: d.V, SS: d.SS,
		Delv: d.Delv, Vdov: d.Vdov,
		Arealg:    d.Arealg,
		Time:      d.Time,
		Deltatime: d.Deltatime,
		Dtcourant: d.Dtcourant,
		Dthydro:   d.Dthydro,
		Cycle:     d.Cycle,
	}
}

// apply rebuilds a domain from captured state. The immutable topology and
// boundary conditions come from replaying the recorded scenario through the
// registry — not from a hardcoded constructor — so piston and multimat
// checkpoints restore the face BCs and cost model they were built with.
func apply(st state) (*domain.Domain, error) {
	d, err := domain.BuildScenario(st.Scenario, st.Cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: rebuild scenario %q: %v",
			ErrCorrupt, st.Scenario.String(), err)
	}
	if len(st.X) != d.NumNode() || len(st.E) != d.NumElem() {
		return nil, fmt.Errorf("%w: array sizes do not match the recorded configuration", ErrCorrupt)
	}
	copy(d.X, st.X)
	copy(d.Y, st.Y)
	copy(d.Z, st.Z)
	copy(d.Xd, st.Xd)
	copy(d.Yd, st.Yd)
	copy(d.Zd, st.Zd)
	copy(d.E, st.E)
	copy(d.P, st.P)
	copy(d.Q, st.Q)
	copy(d.Ql, st.Ql)
	copy(d.Qq, st.Qq)
	copy(d.V, st.V)
	copy(d.SS, st.SS)
	copy(d.Delv, st.Delv)
	copy(d.Vdov, st.Vdov)
	copy(d.Arealg, st.Arealg)
	d.Time = st.Time
	d.Deltatime = st.Deltatime
	d.Dtcourant = st.Dtcourant
	d.Dthydro = st.Dthydro
	d.Cycle = st.Cycle
	return d, nil
}

// writeFrame encodes v with gob and writes the checksummed frame.
func writeFrame(w io.Writer, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	var hdr [len(frameHeader) + 1 + 4 + 8]byte
	copy(hdr[:], frameHeader)
	hdr[len(frameHeader)] = frameVersion
	binary.BigEndian.PutUint32(hdr[len(frameHeader)+1:], crc32.ChecksumIEEE(payload.Bytes()))
	binary.BigEndian.PutUint64(hdr[len(frameHeader)+5:], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("checkpoint: write payload: %w", err)
	}
	return nil
}

// readFrame verifies the header, length and checksum and returns the
// payload. Any damage surfaces as an error wrapping ErrCorrupt.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [len(frameHeader) + 1 + 4 + 8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	if string(hdr[:len(frameHeader)]) != frameHeader {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	if hdr[len(frameHeader)] != frameVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, hdr[len(frameHeader)])
	}
	wantCRC := binary.BigEndian.Uint32(hdr[len(frameHeader)+1:])
	length := binary.BigEndian.Uint64(hdr[len(frameHeader)+5:])
	const maxPayload = 1 << 32 // no realistic checkpoint exceeds 4 GiB
	if length > maxPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrCorrupt, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch (want %08x, got %08x)", ErrCorrupt, wantCRC, got)
	}
	return payload, nil
}

// Save writes a checkpoint of d. cfg must be the configuration d was
// created with (it is stored so Load can rebuild the immutable topology).
func Save(w io.Writer, d *domain.Domain, cfg domain.BoxConfig) error {
	st := capture(d, cfg)
	return writeFrame(w, &st)
}

// SaveCube is Save for cubic single-domain problems (domain.NewSedov or
// any domain.BuildScenarioCube result).
func SaveCube(w io.Writer, d *domain.Domain, cfg domain.Config) error {
	return Save(w, d, domain.BoxConfig{
		Nx: cfg.EdgeElems, Ny: cfg.EdgeElems, Nz: cfg.EdgeElems,
		NumReg: cfg.NumReg, Balance: cfg.Balance, Cost: cfg.Cost,
		DepositEnergy: true,
	})
}

// Load reconstructs a domain from a checkpoint stream. The returned domain
// continues exactly where Save left off.
func Load(r io.Reader) (*domain.Domain, error) {
	payload, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	var st state
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	if st.Magic != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", st.Magic)
	}
	return apply(st)
}

// Verify reads one checkpoint frame and checks its header, length and
// CRC-32 without decoding or applying the payload. The distributed
// driver uses it to decide whether an on-disk coordinated checkpoint is
// safe to restart a whole cluster from: a torn or damaged blob fails
// here, wrapping ErrCorrupt, before any rank commits to the epoch.
func Verify(r io.Reader) error {
	_, err := readFrame(r)
	return err
}

// SaveRank writes one multi-domain rank's checkpoint: the base domain
// state plus the exchanged nodal masses and ghost gradient planes, stamped
// with the rank identity and comm epoch from meta (whose slice fields are
// captured from d and may be left nil by the caller).
func SaveRank(w io.Writer, d *domain.Domain, cfg domain.BoxConfig, meta RankMeta) error {
	ne := d.NumElem()
	meta.NodalMass = d.NodalMass
	meta.GhostDelvXi = d.DelvXi[ne:]
	meta.GhostDelvEta = d.DelvEta[ne:]
	meta.GhostDelvZeta = d.DelvZeta[ne:]
	st := rankState{Magic: rankMagic, Base: capture(d, cfg), Meta: meta}
	return writeFrame(w, &st)
}

// LoadRank reconstructs one rank's domain and its exchange metadata from a
// rank checkpoint stream. The nodal masses and ghost gradient planes are
// restored into the domain, so the restarted rank must not repeat the
// init-time mass exchange.
func LoadRank(r io.Reader) (*domain.Domain, RankMeta, error) {
	payload, err := readFrame(r)
	if err != nil {
		return nil, RankMeta{}, err
	}
	var st rankState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, RankMeta{}, fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	if st.Magic != rankMagic {
		return nil, RankMeta{}, fmt.Errorf("checkpoint: bad rank magic %q", st.Magic)
	}
	d, err := apply(st.Base)
	if err != nil {
		return nil, RankMeta{}, err
	}
	ne := d.NumElem()
	if len(st.Meta.NodalMass) != d.NumNode() ||
		len(st.Meta.GhostDelvXi) != len(d.DelvXi[ne:]) ||
		len(st.Meta.GhostDelvEta) != len(d.DelvEta[ne:]) ||
		len(st.Meta.GhostDelvZeta) != len(d.DelvZeta[ne:]) {
		return nil, RankMeta{}, fmt.Errorf("%w: rank extras do not match the recorded configuration", ErrCorrupt)
	}
	copy(d.NodalMass, st.Meta.NodalMass)
	copy(d.DelvXi[ne:], st.Meta.GhostDelvXi)
	copy(d.DelvEta[ne:], st.Meta.GhostDelvEta)
	copy(d.DelvZeta[ne:], st.Meta.GhostDelvZeta)
	return d, st.Meta, nil
}
