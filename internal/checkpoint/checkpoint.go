// Package checkpoint serializes and restores the complete mutable state of
// a LULESH domain, so long runs can stop and resume. Restart is exact: a
// resumed run reproduces the uninterrupted run bit for bit (asserted by
// tests), because the checkpoint captures every quantity the leapfrog
// iteration reads, including the time-stepping state, and the mesh topology
// and region decomposition are rebuilt deterministically from the recorded
// configuration.
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"

	"lulesh/internal/domain"
)

// magic guards against feeding arbitrary gob streams into Load.
const magic = "lulesh-checkpoint-v1"

// state is the serialized form: the box configuration to rebuild
// mesh/regions deterministically, plus every mutable array and the clock.
type state struct {
	Magic string

	Cfg domain.BoxConfig

	X, Y, Z    []float64
	Xd, Yd, Zd []float64

	E, P, Q    []float64
	Ql, Qq     []float64
	V, SS      []float64
	Delv, Vdov []float64
	Arealg     []float64

	Time      float64
	Deltatime float64
	Dtcourant float64
	Dthydro   float64
	Cycle     int
}

// Save writes a checkpoint of d. cfg must be the configuration d was
// created with (it is stored so Load can rebuild the immutable topology).
func Save(w io.Writer, d *domain.Domain, cfg domain.BoxConfig) error {
	st := state{
		Magic: magic,
		Cfg:   cfg,
		X:     d.X, Y: d.Y, Z: d.Z,
		Xd: d.Xd, Yd: d.Yd, Zd: d.Zd,
		E: d.E, P: d.P, Q: d.Q,
		Ql: d.Ql, Qq: d.Qq,
		V: d.V, SS: d.SS,
		Delv: d.Delv, Vdov: d.Vdov,
		Arealg:    d.Arealg,
		Time:      d.Time,
		Deltatime: d.Deltatime,
		Dtcourant: d.Dtcourant,
		Dthydro:   d.Dthydro,
		Cycle:     d.Cycle,
	}
	return gob.NewEncoder(w).Encode(&st)
}

// SaveCube is Save for domains created with domain.NewSedov.
func SaveCube(w io.Writer, d *domain.Domain, cfg domain.Config) error {
	return Save(w, d, domain.BoxConfig{
		Nx: cfg.EdgeElems, Ny: cfg.EdgeElems, Nz: cfg.EdgeElems,
		NumReg: cfg.NumReg, Balance: cfg.Balance, Cost: cfg.Cost,
		DepositEnergy: true,
	})
}

// Load reconstructs a domain from a checkpoint stream. The returned domain
// continues exactly where Save left off.
func Load(r io.Reader) (*domain.Domain, error) {
	var st state
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if st.Magic != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", st.Magic)
	}
	d := domain.NewSedovBox(st.Cfg)
	if len(st.X) != d.NumNode() || len(st.E) != d.NumElem() {
		return nil, fmt.Errorf("checkpoint: array sizes do not match the recorded configuration")
	}
	copy(d.X, st.X)
	copy(d.Y, st.Y)
	copy(d.Z, st.Z)
	copy(d.Xd, st.Xd)
	copy(d.Yd, st.Yd)
	copy(d.Zd, st.Zd)
	copy(d.E, st.E)
	copy(d.P, st.P)
	copy(d.Q, st.Q)
	copy(d.Ql, st.Ql)
	copy(d.Qq, st.Qq)
	copy(d.V, st.V)
	copy(d.SS, st.SS)
	copy(d.Delv, st.Delv)
	copy(d.Vdov, st.Vdov)
	copy(d.Arealg, st.Arealg)
	d.Time = st.Time
	d.Deltatime = st.Deltatime
	d.Dtcourant = st.Dtcourant
	d.Dthydro = st.Dthydro
	d.Cycle = st.Cycle
	return d, nil
}
