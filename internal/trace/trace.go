// Package trace records task and region execution spans and exports them
// in the Chrome trace-event format (chrome://tracing, Perfetto). It plays
// the role APEX plays for HPX: making the scheduling behaviour behind the
// utilization numbers visible — one timeline row per worker, one slice per
// task or parallel-region body, with the idle gaps that Figure 11
// quantifies showing up as white space.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one completed execution span.
type Event struct {
	Name  string
	TID   int // worker / thread id (one timeline row each)
	Start time.Time
	Dur   time.Duration
}

// CounterSample is one sampled scalar value on the trace timeline (e.g.
// the scheduler's idle rate or affinity hit rate once per timestep) —
// HPX's sampled performance counters, next to APEX's task spans.
type CounterSample struct {
	Name  string
	T     time.Time
	Value float64
}

// Recorder accumulates spans from concurrent workers.
type Recorder struct {
	mu           sync.Mutex
	epoch        time.Time
	events       []Event
	counters     []CounterSample
	limit        int
	eventDrops   int64
	counterDrops int64
}

// NewRecorder creates a recorder. limit bounds the number of stored events
// (0 = DefaultLimit); further spans are dropped, keeping tracing safe on
// long runs.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Recorder{epoch: time.Now(), limit: limit}
}

// DefaultLimit is the default event cap.
const DefaultLimit = 1 << 20

// Record stores one completed span. Spans past the limit are counted as
// dropped rather than silently discarded.
func (r *Recorder) Record(name string, tid int, start time.Time, dur time.Duration) {
	r.mu.Lock()
	if len(r.events) < r.limit {
		r.events = append(r.events, Event{Name: name, TID: tid, Start: start, Dur: dur})
	} else {
		r.eventDrops++
	}
	r.mu.Unlock()
}

// RecordBatch stores many completed spans under one lock acquisition — the
// drain path for the perf subsystem's per-worker ring buffers. Spans past
// the limit are counted as dropped.
func (r *Recorder) RecordBatch(events []Event) {
	if len(events) == 0 {
		return
	}
	r.mu.Lock()
	room := r.limit - len(r.events)
	if room < 0 {
		room = 0
	}
	if room > len(events) {
		room = len(events)
	}
	r.events = append(r.events, events[:room]...)
	r.eventDrops += int64(len(events) - room)
	r.mu.Unlock()
}

// RecordCounter stores one sampled counter value at time t. Samples share
// the event limit so a per-step counter cannot grow without bound either;
// samples past the limit are counted as dropped.
func (r *Recorder) RecordCounter(name string, t time.Time, value float64) {
	r.mu.Lock()
	if len(r.counters) < r.limit {
		r.counters = append(r.counters, CounterSample{Name: name, T: t, Value: value})
	} else {
		r.counterDrops++
	}
	r.mu.Unlock()
}

// Dropped reports how many spans and counter samples were discarded
// because the recorder was full. Non-zero values mean the trace is
// truncated and totals underestimate the run.
func (r *Recorder) Dropped() (events, counters int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventDrops, r.counterDrops
}

// Counters returns a snapshot of the stored counter samples.
func (r *Recorder) Counters() []CounterSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CounterSample, len(r.counters))
	copy(out, r.counters)
	return out
}

// Do runs fn and records it as a span.
func (r *Recorder) Do(name string, tid int, fn func()) {
	start := time.Now()
	fn()
	r.Record(name, tid, start, time.Since(start))
}

// Len reports the number of stored events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a snapshot of the stored events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset drops all stored events and counter samples and restarts the
// epoch.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.counters = r.counters[:0]
	r.eventDrops = 0
	r.counterDrops = 0
	r.epoch = time.Now()
	r.mu.Unlock()
}

// chromeEvent is the trace-event JSON shape ("X" = complete event,
// "C" = counter sample rendered as a stacked area track).
type chromeEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`            // microseconds since epoch
	Dur  float64            `json:"dur,omitempty"` // microseconds
	PID  int                `json:"pid"`
	TID  int                `json:"tid"`
	Args map[string]float64 `json:"args,omitempty"`
}

// WriteChromeTrace emits the stored events and counter samples as a
// Chrome trace-event JSON array, loadable by chrome://tracing and
// Perfetto. Counter samples become "C" events, which the viewers render
// as value tracks above the worker timelines.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	r.mu.Lock()
	evs := make([]chromeEvent, 0, len(r.events)+len(r.counters))
	for _, e := range r.events {
		evs = append(evs, chromeEvent{
			Name: e.Name,
			Ph:   "X",
			Ts:   float64(e.Start.Sub(r.epoch)) / float64(time.Microsecond),
			Dur:  float64(e.Dur) / float64(time.Microsecond),
			PID:  0,
			TID:  e.TID,
		})
	}
	for _, c := range r.counters {
		evs = append(evs, chromeEvent{
			Name: c.Name,
			Ph:   "C",
			Ts:   float64(c.T.Sub(r.epoch)) / float64(time.Microsecond),
			PID:  0,
			Args: map[string]float64{"value": c.Value},
		})
	}
	// A truncated trace must say so in-band: emit the drop totals as a
	// final counter track so viewers (and scripts) see the trace is partial.
	if r.eventDrops > 0 || r.counterDrops > 0 {
		evs = append(evs, chromeEvent{
			Name: "trace dropped (truncated)",
			Ph:   "C",
			Ts:   float64(time.Since(r.epoch)) / float64(time.Microsecond),
			PID:  0,
			Args: map[string]float64{
				"events":   float64(r.eventDrops),
				"counters": float64(r.counterDrops),
			},
		})
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// Summary aggregates the recorded spans per name.
type Summary struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Summarize groups events by name, ordered by descending total time. When
// the recorder dropped spans, a final "(dropped ...)" entry reports how
// many, so a truncated trace is never mistaken for a complete one.
func (r *Recorder) Summarize() []Summary {
	r.mu.Lock()
	byName := map[string]*Summary{}
	var order []string
	for _, e := range r.events {
		s, ok := byName[e.Name]
		if !ok {
			s = &Summary{Name: e.Name}
			byName[e.Name] = s
			order = append(order, e.Name)
		}
		s.Count++
		s.Total += e.Dur
		if e.Dur > s.Max {
			s.Max = e.Dur
		}
	}
	drops := r.eventDrops
	r.mu.Unlock()
	out := make([]Summary, 0, len(order)+1)
	for _, n := range order {
		out = append(out, *byName[n])
	}
	// Insertion sort by descending total (tiny n).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Total > out[j-1].Total; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if drops > 0 {
		out = append(out, Summary{
			Name:  fmt.Sprintf("(dropped %d spans past limit)", drops),
			Count: int(drops),
		})
	}
	return out
}
