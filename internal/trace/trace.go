// Package trace records task and region execution spans and exports them
// in the Chrome trace-event format (chrome://tracing, Perfetto). It plays
// the role APEX plays for HPX: making the scheduling behaviour behind the
// utilization numbers visible — one timeline row per worker, one slice per
// task or parallel-region body, with the idle gaps that Figure 11
// quantifies showing up as white space.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one completed execution span.
type Event struct {
	Name  string
	PID   int // process / rank id (one timeline group each; 0 in-process)
	TID   int // worker / thread id (one timeline row each)
	Start time.Time
	Dur   time.Duration
	Args  map[string]float64 // optional per-span values shown in the viewer
}

// Flow is one cross-row dependency arrow: the viewers draw a line from
// the start point to the end point (Chrome "s"/"f" flow events). Fleet
// traces use it to connect a rank's send span to the peer's recv span.
type Flow struct {
	Name             string
	FromPID, FromTID int
	From             time.Time
	ToPID, ToTID     int
	To               time.Time
}

// CounterSample is one sampled scalar value on the trace timeline (e.g.
// the scheduler's idle rate or affinity hit rate once per timestep) —
// HPX's sampled performance counters, next to APEX's task spans.
type CounterSample struct {
	Name  string
	T     time.Time
	Value float64
}

// Recorder accumulates spans from concurrent workers.
type Recorder struct {
	mu           sync.Mutex
	epoch        time.Time
	events       []Event
	counters     []CounterSample
	flows        []Flow
	procNames    map[int]string
	threadNames  map[[2]int]string
	limit        int
	eventDrops   int64
	counterDrops int64
	flowDrops    int64
}

// NewRecorder creates a recorder. limit bounds the number of stored events
// (0 = DefaultLimit); further spans are dropped, keeping tracing safe on
// long runs.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Recorder{epoch: time.Now(), limit: limit}
}

// DefaultLimit is the default event cap.
const DefaultLimit = 1 << 20

// Record stores one completed span. Spans past the limit are counted as
// dropped rather than silently discarded.
func (r *Recorder) Record(name string, tid int, start time.Time, dur time.Duration) {
	r.mu.Lock()
	if len(r.events) < r.limit {
		r.events = append(r.events, Event{Name: name, TID: tid, Start: start, Dur: dur})
	} else {
		r.eventDrops++
	}
	r.mu.Unlock()
}

// RecordEvent stores one completed span with full addressing (pid, tid,
// optional args) — the merge path for fleet traces, where pid is the rank.
func (r *Recorder) RecordEvent(e Event) {
	r.mu.Lock()
	if len(r.events) < r.limit {
		r.events = append(r.events, e)
	} else {
		r.eventDrops++
	}
	r.mu.Unlock()
}

// RecordFlow stores one dependency arrow between two timeline points.
// Flows share the event limit; flows past it are counted as dropped.
func (r *Recorder) RecordFlow(f Flow) {
	r.mu.Lock()
	if len(r.flows) < r.limit {
		r.flows = append(r.flows, f)
	} else {
		r.flowDrops++
	}
	r.mu.Unlock()
}

// SetProcessName labels a pid's timeline group (Chrome "process_name"
// metadata). Fleet traces use it to title each rank's row set.
func (r *Recorder) SetProcessName(pid int, name string) {
	r.mu.Lock()
	if r.procNames == nil {
		r.procNames = map[int]string{}
	}
	r.procNames[pid] = name
	r.mu.Unlock()
}

// SetThreadName labels one (pid, tid) timeline row.
func (r *Recorder) SetThreadName(pid, tid int, name string) {
	r.mu.Lock()
	if r.threadNames == nil {
		r.threadNames = map[[2]int]string{}
	}
	r.threadNames[[2]int{pid, tid}] = name
	r.mu.Unlock()
}

// SetEpoch pins the timestamp origin. The merge path uses it to anchor
// absolute (unix-nano based) fleet timestamps at the earliest span instead
// of the recorder's creation time.
func (r *Recorder) SetEpoch(t time.Time) {
	r.mu.Lock()
	r.epoch = t
	r.mu.Unlock()
}

// RecordBatch stores many completed spans under one lock acquisition — the
// drain path for the perf subsystem's per-worker ring buffers. Spans past
// the limit are counted as dropped.
func (r *Recorder) RecordBatch(events []Event) {
	if len(events) == 0 {
		return
	}
	r.mu.Lock()
	room := r.limit - len(r.events)
	if room < 0 {
		room = 0
	}
	if room > len(events) {
		room = len(events)
	}
	r.events = append(r.events, events[:room]...)
	r.eventDrops += int64(len(events) - room)
	r.mu.Unlock()
}

// RecordCounter stores one sampled counter value at time t. Samples share
// the event limit so a per-step counter cannot grow without bound either;
// samples past the limit are counted as dropped.
func (r *Recorder) RecordCounter(name string, t time.Time, value float64) {
	r.mu.Lock()
	if len(r.counters) < r.limit {
		r.counters = append(r.counters, CounterSample{Name: name, T: t, Value: value})
	} else {
		r.counterDrops++
	}
	r.mu.Unlock()
}

// Dropped reports how many spans and counter samples were discarded
// because the recorder was full. Non-zero values mean the trace is
// truncated and totals underestimate the run.
func (r *Recorder) Dropped() (events, counters int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.eventDrops, r.counterDrops
}

// Counters returns a snapshot of the stored counter samples.
func (r *Recorder) Counters() []CounterSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CounterSample, len(r.counters))
	copy(out, r.counters)
	return out
}

// Do runs fn and records it as a span.
func (r *Recorder) Do(name string, tid int, fn func()) {
	start := time.Now()
	fn()
	r.Record(name, tid, start, time.Since(start))
}

// Len reports the number of stored events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a snapshot of the stored events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset drops all stored events and counter samples and restarts the
// epoch.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.counters = r.counters[:0]
	r.flows = r.flows[:0]
	r.procNames = nil
	r.threadNames = nil
	r.eventDrops = 0
	r.counterDrops = 0
	r.flowDrops = 0
	r.epoch = time.Now()
	r.mu.Unlock()
}

// chromeEvent is the trace-event JSON shape ("X" = complete event,
// "C" = counter sample rendered as a stacked area track).
type chromeEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`            // microseconds since epoch
	Dur  float64            `json:"dur,omitempty"` // microseconds
	PID  int                `json:"pid"`
	TID  int                `json:"tid"`
	Args map[string]float64 `json:"args,omitempty"`
}

// chromeMeta is the metadata shape ("M" events: process_name /
// thread_name), whose args carry strings rather than numbers.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromeFlow is one endpoint of a flow arrow ("s" start / "f" finish).
// The shared id pairs the two endpoints; bp:"e" binds the finish to the
// enclosing slice so the arrow lands on the recv span.
type chromeFlow struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	ID   int     `json:"id"`
	Ts   float64 `json:"ts"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	BP   string  `json:"bp,omitempty"`
}

// WriteChromeTrace emits the stored events and counter samples as a
// Chrome trace-event JSON array, loadable by chrome://tracing and
// Perfetto. Counter samples become "C" events, which the viewers render
// as value tracks above the worker timelines.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	r.mu.Lock()
	us := func(t time.Time) float64 {
		return float64(t.Sub(r.epoch)) / float64(time.Microsecond)
	}
	evs := make([]any, 0, len(r.events)+len(r.counters)+2*len(r.flows)+len(r.procNames)+len(r.threadNames))
	for pid, name := range r.procNames {
		evs = append(evs, chromeMeta{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": name},
		})
	}
	for key, name := range r.threadNames {
		evs = append(evs, chromeMeta{
			Name: "thread_name", Ph: "M", PID: key[0], TID: key[1],
			Args: map[string]string{"name": name},
		})
	}
	for _, e := range r.events {
		evs = append(evs, chromeEvent{
			Name: e.Name,
			Ph:   "X",
			Ts:   us(e.Start),
			Dur:  float64(e.Dur) / float64(time.Microsecond),
			PID:  e.PID,
			TID:  e.TID,
			Args: e.Args,
		})
	}
	for i, f := range r.flows {
		evs = append(evs,
			chromeFlow{Name: f.Name, Cat: "net", Ph: "s", ID: i + 1,
				Ts: us(f.From), PID: f.FromPID, TID: f.FromTID},
			chromeFlow{Name: f.Name, Cat: "net", Ph: "f", ID: i + 1,
				Ts: us(f.To), PID: f.ToPID, TID: f.ToTID, BP: "e"})
	}
	for _, c := range r.counters {
		evs = append(evs, chromeEvent{
			Name: c.Name,
			Ph:   "C",
			Ts:   us(c.T),
			PID:  0,
			Args: map[string]float64{"value": c.Value},
		})
	}
	// A truncated trace must say so in-band: emit the drop totals as a
	// final counter track so viewers (and scripts) see the trace is partial.
	if r.eventDrops > 0 || r.counterDrops > 0 || r.flowDrops > 0 {
		evs = append(evs, chromeEvent{
			Name: "trace dropped (truncated)",
			Ph:   "C",
			Ts:   float64(time.Since(r.epoch)) / float64(time.Microsecond),
			PID:  0,
			Args: map[string]float64{
				"events":   float64(r.eventDrops),
				"counters": float64(r.counterDrops),
				"flows":    float64(r.flowDrops),
			},
		})
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// Summary aggregates the recorded spans per name.
type Summary struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Summarize groups events by name, ordered by descending total time. When
// the recorder dropped spans, a final "(dropped ...)" entry reports how
// many, so a truncated trace is never mistaken for a complete one.
func (r *Recorder) Summarize() []Summary {
	r.mu.Lock()
	byName := map[string]*Summary{}
	var order []string
	for _, e := range r.events {
		s, ok := byName[e.Name]
		if !ok {
			s = &Summary{Name: e.Name}
			byName[e.Name] = s
			order = append(order, e.Name)
		}
		s.Count++
		s.Total += e.Dur
		if e.Dur > s.Max {
			s.Max = e.Dur
		}
	}
	drops := r.eventDrops
	r.mu.Unlock()
	out := make([]Summary, 0, len(order)+1)
	for _, n := range order {
		out = append(out, *byName[n])
	}
	// Insertion sort by descending total (tiny n).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Total > out[j-1].Total; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if drops > 0 {
		out = append(out, Summary{
			Name:  fmt.Sprintf("(dropped %d spans past limit)", drops),
			Count: int(drops),
		})
	}
	return out
}
