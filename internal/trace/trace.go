// Package trace records task and region execution spans and exports them
// in the Chrome trace-event format (chrome://tracing, Perfetto). It plays
// the role APEX plays for HPX: making the scheduling behaviour behind the
// utilization numbers visible — one timeline row per worker, one slice per
// task or parallel-region body, with the idle gaps that Figure 11
// quantifies showing up as white space.
package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one completed execution span.
type Event struct {
	Name  string
	TID   int // worker / thread id (one timeline row each)
	Start time.Time
	Dur   time.Duration
}

// Recorder accumulates spans from concurrent workers.
type Recorder struct {
	mu     sync.Mutex
	epoch  time.Time
	events []Event
	limit  int
}

// NewRecorder creates a recorder. limit bounds the number of stored events
// (0 = DefaultLimit); further spans are dropped, keeping tracing safe on
// long runs.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Recorder{epoch: time.Now(), limit: limit}
}

// DefaultLimit is the default event cap.
const DefaultLimit = 1 << 20

// Record stores one completed span.
func (r *Recorder) Record(name string, tid int, start time.Time, dur time.Duration) {
	r.mu.Lock()
	if len(r.events) < r.limit {
		r.events = append(r.events, Event{Name: name, TID: tid, Start: start, Dur: dur})
	}
	r.mu.Unlock()
}

// Do runs fn and records it as a span.
func (r *Recorder) Do(name string, tid int, fn func()) {
	start := time.Now()
	fn()
	r.Record(name, tid, start, time.Since(start))
}

// Len reports the number of stored events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a snapshot of the stored events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Reset drops all stored events and restarts the epoch.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.epoch = time.Now()
	r.mu.Unlock()
}

// chromeEvent is the trace-event JSON shape ("X" = complete event).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds since epoch
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// WriteChromeTrace emits the stored events as a Chrome trace-event JSON
// array, loadable by chrome://tracing and Perfetto.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	r.mu.Lock()
	evs := make([]chromeEvent, len(r.events))
	for i, e := range r.events {
		evs[i] = chromeEvent{
			Name: e.Name,
			Ph:   "X",
			Ts:   float64(e.Start.Sub(r.epoch)) / float64(time.Microsecond),
			Dur:  float64(e.Dur) / float64(time.Microsecond),
			PID:  0,
			TID:  e.TID,
		}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}

// Summary aggregates the recorded spans per name.
type Summary struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Summarize groups events by name, ordered by descending total time.
func (r *Recorder) Summarize() []Summary {
	r.mu.Lock()
	byName := map[string]*Summary{}
	var order []string
	for _, e := range r.events {
		s, ok := byName[e.Name]
		if !ok {
			s = &Summary{Name: e.Name}
			byName[e.Name] = s
			order = append(order, e.Name)
		}
		s.Count++
		s.Total += e.Dur
		if e.Dur > s.Max {
			s.Max = e.Dur
		}
	}
	r.mu.Unlock()
	out := make([]Summary, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	// Insertion sort by descending total (tiny n).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Total > out[j-1].Total; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
