package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndLen(t *testing.T) {
	r := NewRecorder(0)
	now := time.Now()
	r.Record("a", 0, now, time.Millisecond)
	r.Record("b", 1, now, 2*time.Millisecond)
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Name != "a" || evs[1].TID != 1 {
		t.Fatalf("events wrong: %+v", evs)
	}
}

func TestDoRecordsSpan(t *testing.T) {
	r := NewRecorder(0)
	ran := false
	r.Do("work", 3, func() {
		ran = true
		time.Sleep(2 * time.Millisecond)
	})
	if !ran {
		t.Fatal("Do did not run fn")
	}
	evs := r.Events()
	if len(evs) != 1 || evs[0].Name != "work" || evs[0].TID != 3 {
		t.Fatalf("span wrong: %+v", evs)
	}
	if evs[0].Dur < time.Millisecond {
		t.Fatalf("duration %v too small", evs[0].Dur)
	}
}

func TestLimitDropsExcess(t *testing.T) {
	r := NewRecorder(3)
	now := time.Now()
	for i := 0; i < 10; i++ {
		r.Record("x", 0, now, 0)
	}
	if r.Len() != 3 {
		t.Fatalf("limit not applied: %d events", r.Len())
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(0)
	r.Record("x", 0, time.Now(), 0)
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not clear events")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("t", g, time.Now(), time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("recorded %d of 800", r.Len())
	}
}

func TestChromeTraceJSONValid(t *testing.T) {
	r := NewRecorder(0)
	base := time.Now()
	r.Record("stress", 0, base, 500*time.Microsecond)
	r.Record("hourglass", 1, base.Add(time.Millisecond), 250*time.Microsecond)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 2 {
		t.Fatalf("%d events in trace", len(evs))
	}
	if evs[0]["ph"] != "X" || evs[0]["name"] != "stress" {
		t.Fatalf("event shape wrong: %v", evs[0])
	}
	if evs[1]["dur"].(float64) != 250 {
		t.Fatalf("dur not in microseconds: %v", evs[1]["dur"])
	}
}

func TestRecordCounter(t *testing.T) {
	r := NewRecorder(0)
	base := time.Now()
	r.RecordCounter("idle-rate", base, 0.12)
	r.RecordCounter("idle-rate", base.Add(time.Millisecond), 0.08)
	r.RecordCounter("affinity-hit-rate", base, 0.93)
	cs := r.Counters()
	if len(cs) != 3 {
		t.Fatalf("stored %d counter samples", len(cs))
	}
	if cs[0].Name != "idle-rate" || cs[0].Value != 0.12 {
		t.Fatalf("sample[0] = %+v", cs[0])
	}
	if cs[2].Name != "affinity-hit-rate" {
		t.Fatalf("sample[2] = %+v", cs[2])
	}
	r.Reset()
	if len(r.Counters()) != 0 {
		t.Fatal("Reset did not clear counter samples")
	}
}

func TestCounterLimit(t *testing.T) {
	r := NewRecorder(3)
	now := time.Now()
	for i := 0; i < 10; i++ {
		r.RecordCounter("x", now, float64(i))
	}
	if len(r.Counters()) != 3 {
		t.Fatalf("limit not applied: %d samples", len(r.Counters()))
	}
}

func TestChromeTraceCounterEvents(t *testing.T) {
	r := NewRecorder(0)
	base := time.Now()
	r.Record("stress", 0, base, 500*time.Microsecond)
	r.RecordCounter("idle-rate", base.Add(time.Millisecond), 0.25)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 2 {
		t.Fatalf("%d events in trace", len(evs))
	}
	// Span events stay "X" with a dur; counter samples follow as "C"
	// events carrying the value in args.
	if evs[0]["ph"] != "X" {
		t.Fatalf("span event shape wrong: %v", evs[0])
	}
	c := evs[1]
	if c["ph"] != "C" || c["name"] != "idle-rate" {
		t.Fatalf("counter event shape wrong: %v", c)
	}
	if _, hasDur := c["dur"]; hasDur {
		t.Fatalf("counter event carries a dur: %v", c)
	}
	args, ok := c["args"].(map[string]interface{})
	if !ok || args["value"].(float64) != 0.25 {
		t.Fatalf("counter args wrong: %v", c["args"])
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(0)
	now := time.Now()
	r.Record("eos", 0, now, 5*time.Millisecond)
	r.Record("stress", 0, now, 2*time.Millisecond)
	r.Record("eos", 1, now, 3*time.Millisecond)
	s := r.Summarize()
	if len(s) != 2 {
		t.Fatalf("%d summaries", len(s))
	}
	if s[0].Name != "eos" || s[0].Count != 2 || s[0].Total != 8*time.Millisecond {
		t.Fatalf("summary[0] = %+v", s[0])
	}
	if s[0].Max != 5*time.Millisecond {
		t.Fatalf("max = %v", s[0].Max)
	}
	if s[1].Name != "stress" {
		t.Fatalf("ordering wrong: %+v", s)
	}
}

func TestDroppedCounts(t *testing.T) {
	r := NewRecorder(3)
	now := time.Now()
	for i := 0; i < 10; i++ {
		r.Record("x", 0, now, 0)
		r.RecordCounter("c", now, 1)
	}
	ev, cs := r.Dropped()
	if ev != 7 || cs != 7 {
		t.Fatalf("Dropped() = %d, %d; want 7, 7", ev, cs)
	}
	r.Reset()
	if ev, cs := r.Dropped(); ev != 0 || cs != 0 {
		t.Fatalf("Reset did not clear drops: %d, %d", ev, cs)
	}
}

func TestRecordBatch(t *testing.T) {
	r := NewRecorder(5)
	now := time.Now()
	batch := make([]Event, 8)
	for i := range batch {
		batch[i] = Event{Name: "b", TID: i, Start: now, Dur: time.Microsecond}
	}
	r.RecordBatch(batch[:2])
	if r.Len() != 2 {
		t.Fatalf("Len = %d after first batch", r.Len())
	}
	r.RecordBatch(batch) // only 3 slots left
	if r.Len() != 5 {
		t.Fatalf("Len = %d after overflowing batch", r.Len())
	}
	if ev, _ := r.Dropped(); ev != 5 {
		t.Fatalf("dropped %d events, want 5", ev)
	}
	r.RecordBatch(nil) // must be a no-op
	if ev, _ := r.Dropped(); ev != 5 {
		t.Fatalf("empty batch changed drops: %d", ev)
	}
}

func TestSummarizeSurfacesDrops(t *testing.T) {
	r := NewRecorder(1)
	now := time.Now()
	r.Record("kept", 0, now, time.Millisecond)
	r.Record("lost", 0, now, time.Millisecond)
	r.Record("lost", 0, now, time.Millisecond)
	s := r.Summarize()
	if len(s) != 2 {
		t.Fatalf("%d summaries, want kept + drop marker", len(s))
	}
	last := s[len(s)-1]
	if last.Count != 2 || !strings.Contains(last.Name, "dropped 2") {
		t.Fatalf("drop marker wrong: %+v", last)
	}
}

func TestChromeTraceSurfacesDrops(t *testing.T) {
	r := NewRecorder(1)
	now := time.Now()
	r.Record("kept", 0, now, time.Millisecond)
	r.Record("lost", 0, now, time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	last := evs[len(evs)-1]
	if last["ph"] != "C" || !strings.Contains(last["name"].(string), "dropped") {
		t.Fatalf("no drop marker event: %v", last)
	}
	args := last["args"].(map[string]interface{})
	if args["events"].(float64) != 1 {
		t.Fatalf("drop marker args wrong: %v", args)
	}
}

func TestConcurrentRecordCounterAndReset(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.RecordCounter("idle", time.Now(), 0.5)
					r.Record("span", 0, time.Now(), time.Microsecond)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		r.Reset()
		r.Summarize()
		r.Dropped()
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	r.Reset()
	if r.Len() != 0 || len(r.Counters()) != 0 {
		t.Fatal("final Reset left data behind")
	}
}
