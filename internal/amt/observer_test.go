package amt

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWithObserverReceivesSpans(t *testing.T) {
	var spans atomic.Int64
	var busy atomic.Int64
	s := NewScheduler(WithWorkers(2),
		WithObserver(func(worker int, start time.Time, dur time.Duration) {
			if worker < 0 || worker >= 2 {
				t.Errorf("worker id %d out of range", worker)
			}
			spans.Add(1)
			busy.Add(int64(dur))
		}))
	defer s.Close()
	var fs []*Void
	for i := 0; i < 50; i++ {
		fs = append(fs, Run(s, func() { time.Sleep(100 * time.Microsecond) }))
	}
	WaitAll(fs)
	if spans.Load() != 50 {
		t.Fatalf("observer saw %d spans, want 50", spans.Load())
	}
	if busy.Load() <= 0 {
		t.Fatal("observer durations empty")
	}
}

func TestSetObserverAtRuntime(t *testing.T) {
	s := NewScheduler(WithWorkers(1))
	defer s.Close()
	Run(s, func() {}).Get() // no observer yet

	var n atomic.Int64
	s.SetObserver(func(int, time.Time, time.Duration) { n.Add(1) })
	Run(s, func() {}).Get()
	s.Quiesce()
	if n.Load() == 0 {
		t.Fatal("runtime-installed observer not called")
	}

	s.SetObserver(nil)
	before := n.Load()
	Run(s, func() {}).Get()
	s.Quiesce()
	if n.Load() != before {
		t.Fatal("cleared observer still called")
	}
}

func TestCountersString(t *testing.T) {
	s := NewScheduler(WithWorkers(1))
	defer s.Close()
	Run(s, func() {}).Get()
	if s.CountersSnapshot().String() == "" {
		t.Fatal("empty counters string")
	}
}

func TestUtilizationEmptySnapshot(t *testing.T) {
	c := Counters{Workers: 2}
	if c.Utilization() != 0 {
		t.Fatal("zero-wall utilization should be 0")
	}
	c = Counters{Workers: 1, Wall: time.Second, Utilizable: time.Second,
		Busy: 2 * time.Second}
	if c.Utilization() != 1 {
		t.Fatal("utilization must clamp at 1")
	}
}

func TestInflightAccessor(t *testing.T) {
	s := NewScheduler(WithWorkers(1))
	defer s.Close()
	s.Quiesce()
	if s.Inflight() != 0 {
		t.Fatalf("quiesced scheduler reports %d inflight", s.Inflight())
	}
	release := make(chan struct{})
	f := Run(s, func() { <-release })
	if s.Inflight() == 0 {
		t.Error("running task not counted inflight")
	}
	close(release)
	f.Get()
}

func TestWorkersParkAndWake(t *testing.T) {
	// Force the park path: go idle long enough for workers to exhaust
	// their spin budget, then submit again.
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	Run(s, func() {}).Get()
	time.Sleep(50 * time.Millisecond) // workers park
	var n atomic.Int64
	var fs []*Void
	for i := 0; i < 10; i++ {
		fs = append(fs, Run(s, func() { n.Add(1) }))
	}
	WaitAll(fs)
	if n.Load() != 10 {
		t.Fatalf("parked workers lost tasks: %d of 10", n.Load())
	}
}
