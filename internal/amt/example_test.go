package amt_test

import (
	"fmt"

	"lulesh/internal/amt"
)

// The futurization style of the paper's Figure 1: create a task, attach a
// continuation, and block only when the result is needed.
func Example_futurization() {
	s := amt.NewScheduler(amt.WithWorkers(2))
	defer s.Close()

	// create task (executed asynchronously)
	f1 := amt.Async(s, func() int { return 42 })

	// attach continuation
	f2 := amt.Then(f1, func(v int) int { return v + 1 })

	// create more tasks ...

	// block until the result is ready
	fmt.Println(f2.Get())
	// Output: 43
}

// The paper's Figure 6 pattern: partition a loop into tasks, chain the
// next kernel as a continuation per partition, and synchronize once.
func Example_taskChains() {
	s := amt.NewScheduler(amt.WithWorkers(2))
	defer s.Close()

	const n, p = 1000, 250
	data := make([]float64, n)

	var chains []*amt.Void
	for lo := 0; lo < n; lo += p {
		lo, hi := lo, min(lo+p, n)
		f := amt.Run(s, func() { // kernel 1 on this partition
			for i := lo; i < hi; i++ {
				data[i] = float64(i)
			}
		})
		f = amt.ThenRun(f, func(amt.Unit) { // kernel 2, chained
			for i := lo; i < hi; i++ {
				data[i] *= 2
			}
		})
		chains = append(chains, f)
	}
	amt.WaitAll(chains) // the single synchronization barrier

	fmt.Println(data[10], data[999])
	// Output: 20 1998
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
