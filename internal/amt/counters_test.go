package amt

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Derived-metric coverage for the Counters snapshot type, including the
// zero-wall / zero-task edge cases a fresh or idle scheduler produces.

func TestCountersUtilization(t *testing.T) {
	cases := []struct {
		name string
		c    Counters
		want float64
	}{
		{"zero wall", Counters{Workers: 4}, 0},
		{"negative utilizable", Counters{Utilizable: -time.Second}, 0},
		{"half busy", Counters{Busy: time.Second, Utilizable: 2 * time.Second}, 0.5},
		{"clamped above one", Counters{Busy: 3 * time.Second, Utilizable: 2 * time.Second}, 1},
	}
	for _, c := range cases {
		if got := c.c.Utilization(); got != c.want {
			t.Errorf("%s: Utilization() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCountersAffinityHitRate(t *testing.T) {
	if rate, ok := (Counters{}).AffinityHitRate(); ok || rate != 0 {
		t.Fatalf("no hinted tasks: got %v, %v", rate, ok)
	}
	c := Counters{AffHits: 3, AffMisses: 1}
	rate, ok := c.AffinityHitRate()
	if !ok || rate != 0.75 {
		t.Fatalf("AffinityHitRate() = %v, %v; want 0.75, true", rate, ok)
	}
	if rate, ok := (Counters{AffMisses: 5}).AffinityHitRate(); !ok || rate != 0 {
		t.Fatalf("all misses: got %v, %v; want 0, true", rate, ok)
	}
}

func TestCountersFramesPerSteal(t *testing.T) {
	if got := (Counters{Stolen: 7}).FramesPerSteal(); got != 0 {
		t.Fatalf("zero steals: FramesPerSteal() = %v", got)
	}
	if got := (Counters{Steals: 2, Stolen: 7}).FramesPerSteal(); got != 3.5 {
		t.Fatalf("FramesPerSteal() = %v, want 3.5", got)
	}
}

func TestCountersParkedRate(t *testing.T) {
	if got := (Counters{Parked: time.Second}).ParkedRate(); got != 0 {
		t.Fatalf("zero utilizable: ParkedRate() = %v", got)
	}
	c := Counters{Parked: time.Second, Utilizable: 4 * time.Second}
	if got := c.ParkedRate(); got != 0.25 {
		t.Fatalf("ParkedRate() = %v, want 0.25", got)
	}
	over := Counters{Parked: 3 * time.Second, Utilizable: time.Second}
	if got := over.ParkedRate(); got != 1 {
		t.Fatalf("ParkedRate() not clamped: %v", got)
	}
}

func TestCountersStringSegments(t *testing.T) {
	// Zero-value snapshot: no affinity or park segments, no division blowups.
	s := Counters{}.String()
	if !strings.Contains(s, "util=0.0%") || strings.Contains(s, "aff=") ||
		strings.Contains(s, "parks=") {
		t.Fatalf("zero-value String() = %q", s)
	}
	full := Counters{
		Workers: 2, Wall: time.Second, Busy: time.Second,
		Utilizable: 2 * time.Second, Tasks: 10,
		AffHits: 1, AffMisses: 1,
		Parks: 4, Parked: time.Second,
	}.String()
	for _, want := range []string{"util=50.0%", "aff=50.0%", "parks=4", "parked=50.0%"} {
		if !strings.Contains(full, want) {
			t.Fatalf("String() = %q missing %q", full, want)
		}
	}
}

func TestSchedulerParkAccounting(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	// Let the workers run out of work and park. Parked time is only
	// accounted once a worker wakes, so alternate idle stretches with a
	// waking task and poll the snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		Run(s, func() {}).Get() // wakes any parked worker, banking its parkNs
		c := s.CountersSnapshot()
		if c.Parks > 0 && c.Parked > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond) // long enough to exhaust spinRounds
	}
	t.Fatalf("no park activity recorded: %+v", s.CountersSnapshot())
}

// recordingSink counts RecordTask calls and aggregates the fields the perf
// subsystem depends on.
type recordingSink struct {
	tasks    atomic.Int64
	stolen   atomic.Int64
	withWait atomic.Int64
	phases   [8]atomic.Int64
}

func (r *recordingSink) RecordTask(worker int, phase uint32, start time.Time,
	dur, queueWait time.Duration, stolen bool) {
	r.tasks.Add(1)
	if stolen {
		r.stolen.Add(1)
	}
	if queueWait > 0 {
		r.withWait.Add(1)
	}
	if int(phase) < len(r.phases) {
		r.phases[phase].Add(1)
	}
}

func TestTaskSinkReceivesPhaseAndQueueWait(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	sink := &recordingSink{}
	s.SetSink(sink)

	s.SetPhase(3)
	ForEachBlock(s, 0, 1024, 16, func(lo, hi int) {
		time.Sleep(10 * time.Microsecond)
	}).Get()
	s.SetPhase(0)
	s.Quiesce()

	if n := sink.tasks.Load(); n != 64 {
		t.Fatalf("sink saw %d tasks, want 64", n)
	}
	if got := sink.phases[3].Load(); got != 64 {
		t.Fatalf("phase 3 saw %d tasks, want 64", got)
	}
	if sink.withWait.Load() == 0 {
		t.Fatal("no task carried a queue-wait stamp")
	}
	// Removing the sink stops delivery.
	s.SetSink(nil)
	before := sink.tasks.Load()
	Run(s, func() {}).Get()
	s.Quiesce()
	if sink.tasks.Load() != before {
		t.Fatal("sink still invoked after SetSink(nil)")
	}
}

func TestTaskSinkContinuationPhaseCapturedAtAttach(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	sink := &recordingSink{}
	s.SetSink(sink)

	// Build the graph under phase 5, then advance the published phase
	// before releasing it: the continuation must still carry 5.
	gate := newFuture[Unit](s)
	s.SetPhase(5)
	var wg sync.WaitGroup
	wg.Add(1)
	done := ThenRun(gate, func(Unit) { wg.Done() })
	s.SetPhase(6)
	gate.set(Unit{})
	done.Get()
	wg.Wait()
	s.Quiesce()

	if got := sink.phases[5].Load(); got != 1 {
		t.Fatalf("continuation recorded under phase 5 %d times, want 1 (phase6=%d)",
			got, sink.phases[6].Load())
	}
}

func TestTaskSinkStolenFlag(t *testing.T) {
	s := NewScheduler(WithWorkers(4), WithStealHalf(true))
	defer s.Close()
	sink := &recordingSink{}
	s.SetSink(sink)

	// Pin everything on worker 0 so the other three must steal.
	var fns []func()
	for i := 0; i < 256; i++ {
		fns = append(fns, func() { time.Sleep(20 * time.Microsecond) })
	}
	homes := make([]int, len(fns))
	WaitAll(RunBatchAt(s, fns, homes))
	s.Quiesce()

	if sink.tasks.Load() != int64(len(fns)) {
		t.Fatalf("sink saw %d tasks, want %d", sink.tasks.Load(), len(fns))
	}
	if sink.stolen.Load() == 0 {
		t.Skip("no steals occurred (single-core timing); stolen flag untestable here")
	}
}
