package amt

import (
	"sync"
	"sync/atomic"
)

// Unit is the value type of futures that carry no payload, analogous to
// hpx::future<void>.
type Unit struct{}

// Void is a future carrying no value.
type Void = Future[Unit]

// Future holds the state and eventual result of an asynchronous operation,
// analogous to hpx::future<T>. A Future becomes ready exactly once.
// Continuations attached with Then / ThenRun execute as new tasks on the
// future's scheduler once it is ready.
type Future[T any] struct {
	s *Scheduler

	mu       sync.Mutex
	done     bool
	val      T
	panicErr *PanicError   // set instead of val by AsyncSafe on panic
	ch       chan struct{} // lazily created for blocking Get
	ready    []func()      // inline callbacks, run once on completion
}

func newFuture[T any](s *Scheduler) *Future[T] {
	return &Future[T]{s: s}
}

// MakeReady returns a future that is already ready with value v.
func MakeReady[T any](s *Scheduler, v T) *Future[T] {
	f := newFuture[T](s)
	f.done = true
	f.val = v
	return f
}

// set completes the future. Calling set twice panics: a future is a
// single-assignment cell.
func (f *Future[T]) set(v T) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		panic("amt: future completed twice")
	}
	f.val = v
	f.done = true
	cbs := f.ready
	f.ready = nil
	ch := f.ch
	f.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	for _, cb := range cbs {
		cb()
	}
}

// onReady arranges for cb to run inline (on the completing goroutine) once
// the future is ready. It is the low-overhead hook used by combinators;
// user-visible continuations go through Then, which spawns a real task.
func (f *Future[T]) onReady(cb func()) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		cb()
		return
	}
	f.ready = append(f.ready, cb)
	f.mu.Unlock()
}

// Ready reports whether the future has completed.
func (f *Future[T]) Ready() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done
}

// Get blocks until the future is ready and returns its value. Call Get from
// outside the worker pool (e.g. the main goroutine); task bodies should use
// continuations instead, exactly as in HPX. If the task completed
// exceptionally (AsyncSafe captured a panic), Get rethrows the panic on
// the calling goroutine, like an exceptional HPX future.
func (f *Future[T]) Get() T {
	f.mu.Lock()
	if f.done {
		v, pe := f.val, f.panicErr
		f.mu.Unlock()
		if pe != nil {
			panic(pe)
		}
		return v
	}
	if f.ch == nil {
		f.ch = make(chan struct{})
	}
	ch := f.ch
	f.mu.Unlock()
	<-ch
	if f.panicErr != nil {
		panic(f.panicErr)
	}
	return f.val
}

// Scheduler returns the scheduler continuations of this future run on.
func (f *Future[T]) Scheduler() *Scheduler { return f.s }

// Async submits fn for asynchronous execution and returns a future for its
// result, analogous to hpx::async.
func Async[T any](s *Scheduler, fn func() T) *Future[T] {
	f := newFuture[T](s)
	s.Spawn(func() { f.set(fn()) })
	return f
}

// Run submits a void task and returns a Void future that becomes ready when
// it finishes.
func Run(s *Scheduler, fn func()) *Void {
	f := newFuture[Unit](s)
	s.Spawn(func() {
		fn()
		f.set(Unit{})
	})
	return f
}

// RunAt submits a void task with an affinity hint (SpawnAt): the task is
// placed on worker home's deque so data it re-touches stays in that
// worker's cache. home < 0 degrades to Run.
func RunAt(s *Scheduler, home int, fn func()) *Void {
	f := newFuture[Unit](s)
	s.SpawnAt(home, func() {
		fn()
		f.set(Unit{})
	})
	return f
}

// RunBatch submits one independent void task per function with a single
// batched spawn — one bookkeeping update and one wake sweep instead of
// len(fns) — and returns a future per task. Use AfterAll to join them.
func RunBatch(s *Scheduler, fns []func()) []*Void {
	outs := make([]*Void, len(fns))
	ts := make([]Task, len(fns))
	for i, fn := range fns {
		f := newFuture[Unit](s)
		outs[i] = f
		fn, f := fn, f
		ts[i] = func() {
			fn()
			f.set(Unit{})
		}
	}
	s.SpawnBatch(ts)
	return outs
}

// RunBatchAt is RunBatch with per-task affinity hints (SpawnBatchAt).
// homes may be nil, in which case placement falls back to round-robin.
func RunBatchAt(s *Scheduler, fns []func(), homes []int) []*Void {
	outs := make([]*Void, len(fns))
	ts := make([]Task, len(fns))
	for i, fn := range fns {
		f := newFuture[Unit](s)
		outs[i] = f
		fn, f := fn, f
		ts[i] = func() {
			fn()
			f.set(Unit{})
		}
	}
	s.SpawnBatchAt(ts, homes)
	return outs
}

// ThenRunBatchAt attaches one void continuation per function to f. When f
// becomes ready the whole family is submitted with a single batched,
// home-interleaved spawn (SpawnBatchAt) — one bookkeeping update and one
// wake sweep instead of len(fns) spawn/wake round-trips, and every
// worker's hinted frames land on its deque within the first placement
// round. This is the launch shape of a barrier→stage transition in the
// task backend: all of a stage's partition chains become ready at once.
// homes may be nil (round-robin placement, the BatchSpawn-only case).
func ThenRunBatchAt[T any](f *Future[T], fns []func(T), homes []int) []*Void {
	outs := make([]*Void, len(fns))
	ts := make([]Task, len(fns))
	for i, fn := range fns {
		out := newFuture[Unit](f.s)
		outs[i] = out
		fn, out := fn, out
		ts[i] = func() {
			fn(f.val)
			out.set(Unit{})
		}
	}
	if len(ts) > 0 {
		// Capture the phase now, at attach time during the sequential graph
		// construction: when the barrier trips and the batch actually spawns
		// the scheduler may already be publishing the next phase tag.
		ph := f.s.curPhase.Load()
		f.onReady(func() { f.s.spawnBatchAtPhase(ph, ts, homes) })
	}
	return outs
}

// Then attaches a continuation to f, analogous to hpx::future<T>::then.
// fn runs as a new task once f is ready; the returned future carries fn's
// result.
func Then[T, U any](f *Future[T], fn func(T) U) *Future[U] {
	out := newFuture[U](f.s)
	ph := f.s.curPhase.Load() // attach-time phase, not trip-time
	f.onReady(func() {
		f.s.spawnPhase(ph, func() { out.set(fn(f.val)) })
	})
	return out
}

// ThenRun attaches a void continuation to f.
func ThenRun[T any](f *Future[T], fn func(T)) *Void {
	out := newFuture[Unit](f.s)
	ph := f.s.curPhase.Load()
	f.onReady(func() {
		f.s.spawnPhase(ph, func() {
			fn(f.val)
			out.set(Unit{})
		})
	})
	return out
}

// ThenRunAt attaches a void continuation with an affinity hint: once f is
// ready, fn runs as a task placed on worker home's deque. This is what
// keeps a partition's whole per-iteration chain — and the same chain next
// iteration — on one worker, so the ~45 kernel launches per timestep
// re-touch warm cache lines instead of migrating the partition around the
// pool. home < 0 degrades to ThenRun.
func ThenRunAt[T any](f *Future[T], home int, fn func(T)) *Void {
	out := newFuture[Unit](f.s)
	ph := f.s.curPhase.Load()
	f.onReady(func() {
		f.s.spawnAtPhase(ph, home, func() {
			fn(f.val)
			out.set(Unit{})
		})
	})
	return out
}

// latch is a single-word atomic countdown: arrive() signals one event and
// the last arrival runs done inline. It is the join primitive behind the
// all-of combinators and the parallel algorithms — one atomic decrement
// per chunk instead of a mutex acquisition or a per-chunk future. n must
// be > 0.
type latch struct {
	left atomic.Int64
	done func()
}

func newLatch(n int, done func()) *latch {
	l := &latch{done: done}
	l.left.Store(int64(n))
	return l
}

func (l *latch) arrive() {
	if l.left.Add(-1) == 0 {
		l.done()
	}
}

// AfterAll returns a Void future that becomes ready once every future in fs
// is ready, analogous to hpx::when_all over void futures. The returned
// future completes inline with the last dependency; use AfterAllRun to
// attach follow-up work as a task.
func AfterAll(s *Scheduler, fs []*Void) *Void {
	out := newFuture[Unit](s)
	if len(fs) == 0 {
		out.done = true
		return out
	}
	l := newLatch(len(fs), func() { out.set(Unit{}) })
	for _, f := range fs {
		f.onReady(l.arrive)
	}
	return out
}

// AfterAllRun runs fn as a task once every future in fs is ready and
// returns a Void future for fn's completion. This is the
// hpx::when_all(...).then(...) idiom the paper uses for its per-iteration
// synchronization barriers.
func AfterAllRun(s *Scheduler, fs []*Void, fn func()) *Void {
	out := newFuture[Unit](s)
	ph := s.curPhase.Load() // attach-time phase, not trip-time
	launch := func() {
		s.spawnPhase(ph, func() {
			fn()
			out.set(Unit{})
		})
	}
	if len(fs) == 0 {
		launch()
		return out
	}
	l := newLatch(len(fs), launch)
	for _, f := range fs {
		f.onReady(l.arrive)
	}
	return out
}

// WhenAll returns a future carrying the values of all futures in fs, in
// order, analogous to hpx::when_all over valued futures.
func WhenAll[T any](s *Scheduler, fs []*Future[T]) *Future[[]T] {
	out := newFuture[[]T](s)
	n := len(fs)
	if n == 0 {
		out.done = true
		return out
	}
	vals := make([]T, n)
	l := newLatch(n, func() { out.set(vals) })
	for i, f := range fs {
		i, f := i, f
		f.onReady(func() {
			vals[i] = f.val
			l.arrive()
		})
	}
	return out
}

// WaitAll blocks until every future in fs is ready, analogous to
// hpx::wait_all. Call from outside the worker pool.
func WaitAll(fs []*Void) {
	for _, f := range fs {
		f.Get()
	}
}

// RunHigh submits a void task at high priority and returns a Void future
// for its completion.
func RunHigh(s *Scheduler, fn func()) *Void {
	f := newFuture[Unit](s)
	s.SpawnHigh(func() {
		fn()
		f.set(Unit{})
	})
	return f
}

// ThenRunHigh attaches a high-priority void continuation to f.
func ThenRunHigh[T any](f *Future[T], fn func(T)) *Void {
	out := newFuture[Unit](f.s)
	ph := f.s.curPhase.Load()
	f.onReady(func() {
		f.s.spawnHighPhase(ph, func() {
			fn(f.val)
			out.set(Unit{})
		})
	})
	return out
}
