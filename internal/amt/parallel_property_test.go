package amt

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// Property tests locking in the parallel-algorithm contract across the
// whole (begin, end, grain) parameter space — including empty ranges,
// negative-length ranges, non-positive grains, and sub-grain ranges that
// the runtime executes inline on the caller. Style matches the
// testing/quick properties of internal/omp/pool_test.go and internal/mesh.

// boundedRange derives a begin/end/grain triple from raw fuzz inputs:
// begin anywhere in int16, length in [-64, 2048), grain over all of int8
// (so zero, negative and over-length grains all occur).
func boundedRange(b int16, length int16, g int8) (begin, end, grain int) {
	begin = int(b)
	l := int(length)%2112 - 64
	end = begin + l
	grain = int(g)
	return begin, end, grain
}

// TestForEachBlockPropertyExactCover: ForEachBlock visits every index of
// [begin, end) exactly once and never an index outside it.
func TestForEachBlockPropertyExactCover(t *testing.T) {
	s := newTestScheduler(t)
	f := func(b int16, length int16, g int8) bool {
		begin, end, grain := boundedRange(b, length, g)
		n := 0
		if end > begin {
			n = end - begin
		}
		hits := make([]atomic.Int32, n)
		var outside atomic.Int32
		ForEachBlock(s, begin, end, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i < begin || i >= end {
					outside.Add(1)
				} else {
					hits[i-begin].Add(1)
				}
			}
		}).Get()
		if outside.Load() != 0 {
			return false
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestForEachPropertyExactCover: the per-index form upholds the same
// exactly-once contract.
func TestForEachPropertyExactCover(t *testing.T) {
	s := newTestScheduler(t)
	f := func(b int16, length int16, g int8) bool {
		begin, end, grain := boundedRange(b, length, g)
		n := 0
		if end > begin {
			n = end - begin
		}
		hits := make([]atomic.Int32, n)
		var outside atomic.Int32
		ForEach(s, begin, end, grain, func(i int) {
			if i < begin || i >= end {
				outside.Add(1)
			} else {
				hits[i-begin].Add(1)
			}
		}).Get()
		if outside.Load() != 0 {
			return false
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestReducePropertyMatchesSerial: an integer-sum Reduce equals the serial
// fold for arbitrary ranges and grains (exact arithmetic, so this covers
// both the chunk partitioning and the in-order combine), and an empty or
// reversed range yields the identity.
func TestReducePropertyMatchesSerial(t *testing.T) {
	s := newTestScheduler(t)
	f := func(b int16, length int16, g int8) bool {
		begin, end, grain := boundedRange(b, length, g)
		got := Reduce(s, begin, end, grain, 0,
			func(acc int, i int) int { return acc + i },
			func(x, y int) int { return x + y }).Get()
		want := 0
		for i := begin; i < end; i++ {
			want += i
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestForEachBlockSubGrainEdgeCases pins the inline fast path explicitly:
// empty, reversed, single-index, exactly-grain and below-grain ranges all
// complete immediately with exact coverage.
func TestForEachBlockSubGrainEdgeCases(t *testing.T) {
	s := newTestScheduler(t)
	cases := []struct{ begin, end, grain int }{
		{0, 0, 8},    // empty
		{5, 5, 0},    // empty, degenerate grain
		{10, 3, 4},   // reversed
		{-3, -3, 1},  // empty at negative offset
		{7, 8, 16},   // single index, sub-grain
		{0, 16, 16},  // exactly one grain
		{-8, 4, 100}, // negative begin, sub-grain
		{0, 17, 16},  // one index past a grain: 2 chunks
		{-5, 40, 7},  // negative begin, multi-chunk
	}
	for _, c := range cases {
		n := 0
		if c.end > c.begin {
			n = c.end - c.begin
		}
		hits := make([]atomic.Int32, n)
		done := ForEachBlock(s, c.begin, c.end, c.grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i-c.begin].Add(1)
			}
		})
		done.Get()
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("case %+v: index %d visited %d times", c, c.begin+i, hits[i].Load())
			}
		}
		if n <= c.grain && !done.Ready() {
			t.Fatalf("case %+v: sub-grain range should be ready immediately", c)
		}
	}
}

// TestReduceInlineMatchesChunked: the inline sub-grain path and the
// chunked path produce bitwise-identical results for a fixed grain —
// combine(identity, partial) is applied in both.
func TestReduceInlineMatchesChunked(t *testing.T) {
	s := newTestScheduler(t)
	fold := func(acc float64, i int) float64 { return acc + 1.0/float64(i+1) }
	comb := func(a, b float64) float64 { return a + b }
	// grain >= n → inline; the same range with grain = n (single chunk,
	// also inline) and chunked with smaller grain must satisfy the
	// documented determinism-per-grain contract independently.
	inline := Reduce(s, 0, 100, 1000, 0.0, fold, comb).Get()
	single := Reduce(s, 0, 100, 100, 0.0, fold, comb).Get()
	if inline != single {
		t.Fatalf("inline %v != single-chunk %v", inline, single)
	}
}
