package amt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countSink counts records per phase; safe for concurrent RecordTask.
type countSink struct {
	tasks  atomic.Int64
	phases [64]atomic.Int64
}

func (c *countSink) RecordTask(worker int, phase uint32, start time.Time, dur, queueWait time.Duration, stolen bool) {
	c.tasks.Add(1)
	if int(phase) < len(c.phases) {
		c.phases[phase].Add(1)
	}
}

// TestNewJobSharesPool verifies job front-ends multiplex onto one pool and
// the root keeps the pool identity.
func TestNewJobSharesPool(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	j1 := s.NewJob()
	j2 := j1.NewJob() // derivable from any front-end
	if !s.SharesPoolWith(j1) || !s.SharesPoolWith(j2) || !j1.SharesPoolWith(j2) {
		t.Fatal("job front-ends must share the root's pool")
	}
	if j1.Workers() != s.Workers() {
		t.Fatalf("job sees %d workers, root %d", j1.Workers(), s.Workers())
	}
}

// TestJobQuiesceIsolation: a job's Quiesce must wait for exactly its own
// tasks — it must return while another job still has work in flight.
func TestJobQuiesceIsolation(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()

	slow := s.NewJob()
	fast := s.NewJob()

	release := make(chan struct{})
	var slowDone atomic.Bool
	slow.Spawn(func() {
		<-release
		slowDone.Store(true)
	})

	var fastRan atomic.Int64
	for i := 0; i < 100; i++ {
		fast.Spawn(func() { fastRan.Add(1) })
	}
	fast.Quiesce() // must not block on slow's parked task
	if got := fastRan.Load(); got != 100 {
		t.Fatalf("fast job: %d/100 tasks ran after Quiesce", got)
	}
	if slowDone.Load() {
		t.Fatal("slow job finished before release — test lost its isolation witness")
	}
	if slow.Inflight() != 1 {
		t.Fatalf("slow inflight = %d, want 1", slow.Inflight())
	}
	close(release)
	slow.Quiesce()
	if !slowDone.Load() {
		t.Fatal("slow task did not run")
	}
}

// TestJobSinkIsolation: two jobs with different sinks and phases on one
// pool; every record must land in its own job's sink with its own phase.
func TestJobSinkIsolation(t *testing.T) {
	s := NewScheduler(WithWorkers(4))
	defer s.Close()

	jA, jB := s.NewJob(), s.NewJob()
	var sA, sB countSink
	jA.SetSink(&sA)
	jB.SetSink(&sB)
	jA.SetPhase(3)
	jB.SetPhase(7)

	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			jA.Spawn(func() {})
		}
		jA.Quiesce()
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			jB.Spawn(func() {})
		}
		jB.Quiesce()
	}()
	wg.Wait()

	if got := sA.tasks.Load(); got != n {
		t.Fatalf("job A sink saw %d records, want %d", got, n)
	}
	if got := sB.tasks.Load(); got != n {
		t.Fatalf("job B sink saw %d records, want %d", got, n)
	}
	if got := sA.phases[3].Load(); got != n {
		t.Fatalf("job A phase-3 records = %d, want %d (cross-job phase bleed)", got, n)
	}
	if got := sB.phases[7].Load(); got != n {
		t.Fatalf("job B phase-7 records = %d, want %d (cross-job phase bleed)", got, n)
	}
}

// TestJobCloseKeepsPoolAlive: closing a job front-end must quiesce only
// that job; the pool must keep executing for its siblings, and the root
// Close afterwards must still shut down cleanly.
func TestJobCloseKeepsPoolAlive(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	j := s.NewJob()
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		j.Spawn(func() { n.Add(1) })
	}
	j.Close() // quiesce job only
	if got := n.Load(); got != 50 {
		t.Fatalf("job tasks after job Close: %d/50", got)
	}
	// Pool still alive: the root front-end keeps working.
	var m atomic.Int64
	s.Spawn(func() { m.Add(1) })
	s.Quiesce()
	if m.Load() != 1 {
		t.Fatal("pool dead after job Close")
	}
	s.Close()
}

// TestConcurrentJobGraphs runs many full future/continuation graphs from
// concurrent jobs over one pool under the race detector, asserting each
// graph's arithmetic is undisturbed.
func TestConcurrentJobGraphs(t *testing.T) {
	s := NewScheduler(WithWorkers(4))
	defer s.Close()

	const jobs = 16
	var wg sync.WaitGroup
	wg.Add(jobs)
	errs := make(chan error, jobs)
	for jid := 0; jid < jobs; jid++ {
		j := s.NewJob()
		go func(j *Scheduler, jid int) {
			defer wg.Done()
			// sum(0..999) via chunked reduce, then a continuation doubling it.
			sum := Reduce(j, 0, 1000, 37, 0,
				func(acc, i int) int { return acc + i },
				func(a, b int) int { return a + b })
			fin := Then(sum, func(v int) int { return 2 * v })
			if got, want := fin.Get(), 999*1000; got != want {
				errs <- fmt.Errorf("job %d: got %d, want %d", jid, got, want)
			}
			j.Quiesce()
		}(j, jid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
