package amt

import "time"

// Parallel algorithms in the style of hpx::for_each and hpx::reduce.
// The naive LULESH port the paper criticizes ([16]) is built from exactly
// these: every loop becomes a ForEach followed by a wait, which reintroduces
// one synchronization barrier per loop.
//
// The dispatch path is deliberately allocation-free per chunk: chunks are
// pooled frames carrying (body, lo, hi) and the join is a single atomic
// countdown latch, so a parallel region costs one future, one latch and one
// wake sweep regardless of its chunk count. Ranges no longer than one grain
// are executed inline on the caller — one chunk's worth of work does not
// pay for a dispatch.

// ForEachBlock partitions the index range [begin, end) into chunks of at
// most grain indices, runs body(lo, hi) for each chunk as an independent
// task, and returns a Void future that becomes ready when every chunk has
// finished. grain < 1 is treated as a single chunk spanning the whole range.
func ForEachBlock(s *Scheduler, begin, end, grain int, body func(lo, hi int)) *Void {
	return ForEachBlockAt(s, begin, end, grain, nil, body)
}

// ForEachBlockAt is ForEachBlock with locality-aware placement: when home
// is non-nil, each chunk [lo, hi) is enqueued directly on worker
// home(lo, hi)'s deque (reduced modulo the worker count) and tagged with
// that affinity hint, so repeated regions over the same range keep each
// slice on one worker's cache. A negative home(lo, hi) falls back to the
// default spread for that chunk. Hints bias placement only; stealing
// still rebalances, and every index is executed exactly once either way.
func ForEachBlockAt(s *Scheduler, begin, end, grain int,
	home func(lo, hi int) int, body func(lo, hi int)) *Void {

	out := newFuture[Unit](s)
	if end <= begin {
		out.done = true
		return out
	}
	if grain < 1 || end-begin <= grain {
		body(begin, end)
		out.done = true
		return out
	}
	nchunks := (end - begin + grain - 1) / grain
	l := newLatch(nchunks, func() { out.set(Unit{}) })
	// One phase capture and one clock read cover the whole batch: chunks
	// are enqueued microseconds apart, far below histogram resolution.
	ph := s.curPhase.Load()
	var enq time.Time
	if s.sink.Load() != nil {
		enq = time.Now()
	}
	s.beginBatch(nchunks)
	if home == nil {
		c := 0
		for lo := begin; lo < end; lo += grain {
			hi := lo + grain
			if hi > end {
				hi = end
			}
			f := newFrame()
			f.body, f.lo, f.hi, f.latch = body, lo, hi, l
			f.phase, f.enq, f.job = ph, enq, s
			s.enqueueAt(c, f)
			c++
		}
		s.p.wakeN(nchunks)
		return out
	}
	// Hinted chunks are placed home-interleaved (see pushInterleaved):
	// ascending-lo emission under a block-distributed home would push all
	// of worker 0's chunks before worker 1's and hand the early chunks to
	// whichever worker is already idle-stealing.
	frames := make([]*frame, nchunks)
	targets := make([]int, nchunks)
	c := 0
	for lo := begin; lo < end; lo += grain {
		hi := lo + grain
		if hi > end {
			hi = end
		}
		f := newFrame()
		f.body, f.lo, f.hi, f.latch = body, lo, hi, l
		f.phase, f.enq, f.job = ph, enq, s
		i := c % s.p.nw
		if h := home(lo, hi); h >= 0 {
			i = h % s.p.nw
			f.home = int32(i)
		}
		frames[c] = f
		targets[c] = i
		c++
	}
	s.p.pushInterleaved(frames, targets)
	s.p.wakeN(nchunks)
	return out
}

// ForEach applies body to every index in [begin, end) using chunked tasks,
// analogous to hpx::for_each with a parallel execution policy.
func ForEach(s *Scheduler, begin, end, grain int, body func(i int)) *Void {
	return ForEachBlock(s, begin, end, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Reduce computes a deterministic parallel reduction over [begin, end):
// each chunk folds its indices with fold starting from identity, and the
// per-chunk partial results are combined *in chunk order* with combine, so
// the result is bitwise reproducible for a fixed grain regardless of the
// number of workers.
func Reduce[T any](s *Scheduler, begin, end, grain int, identity T,
	fold func(acc T, i int) T, combine func(a, b T) T) *Future[T] {

	out := newFuture[T](s)
	if end <= begin {
		out.done = true
		out.val = identity
		return out
	}
	if grain < 1 || end-begin <= grain {
		acc := identity
		for i := begin; i < end; i++ {
			acc = fold(acc, i)
		}
		out.done = true
		out.val = combine(identity, acc)
		return out
	}
	nchunks := (end - begin + grain - 1) / grain
	partial := make([]T, nchunks)
	l := newLatch(nchunks, func() {
		acc := identity
		for _, p := range partial {
			acc = combine(acc, p)
		}
		out.set(acc)
	})
	// One closure serves every chunk; the chunk index is recovered from the
	// block bounds, so the per-chunk frames stay allocation-free.
	body := func(lo, hi int) {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = fold(acc, i)
		}
		partial[(lo-begin)/grain] = acc
	}
	ph := s.curPhase.Load()
	var enq time.Time
	if s.sink.Load() != nil {
		enq = time.Now()
	}
	s.beginBatch(nchunks)
	c := 0
	for lo := begin; lo < end; lo += grain {
		hi := lo + grain
		if hi > end {
			hi = end
		}
		f := newFrame()
		f.body, f.lo, f.hi, f.latch = body, lo, hi, l
		f.phase, f.enq, f.job = ph, enq, s
		s.enqueueAt(c, f)
		c++
	}
	s.p.wakeN(nchunks)
	return out
}
