package amt

// Parallel algorithms in the style of hpx::for_each and hpx::reduce.
// The naive LULESH port the paper criticizes ([16]) is built from exactly
// these: every loop becomes a ForEach followed by a wait, which reintroduces
// one synchronization barrier per loop.

// ForEachBlock partitions the index range [begin, end) into chunks of at
// most grain indices, runs body(lo, hi) for each chunk as an independent
// task, and returns a Void future that becomes ready when every chunk has
// finished. grain < 1 is treated as a single chunk spanning the whole range.
func ForEachBlock(s *Scheduler, begin, end, grain int, body func(lo, hi int)) *Void {
	out := newFuture[Unit](s)
	if end <= begin {
		out.done = true
		return out
	}
	if grain < 1 {
		grain = end - begin
	}
	nchunks := (end - begin + grain - 1) / grain
	cd := &countdown{left: nchunks, done: func() { out.set(Unit{}) }}
	c := 0
	for lo := begin; lo < end; lo += grain {
		hi := lo + grain
		if hi > end {
			hi = end
		}
		lo, hi := lo, hi
		s.spawnAt(c, func() {
			body(lo, hi)
			cd.fire()
		})
		c++
	}
	return out
}

// ForEach applies body to every index in [begin, end) using chunked tasks,
// analogous to hpx::for_each with a parallel execution policy.
func ForEach(s *Scheduler, begin, end, grain int, body func(i int)) *Void {
	return ForEachBlock(s, begin, end, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Reduce computes a deterministic parallel reduction over [begin, end):
// each chunk folds its indices with fold starting from identity, and the
// per-chunk partial results are combined *in chunk order* with combine, so
// the result is bitwise reproducible for a fixed grain regardless of the
// number of workers.
func Reduce[T any](s *Scheduler, begin, end, grain int, identity T,
	fold func(acc T, i int) T, combine func(a, b T) T) *Future[T] {

	out := newFuture[T](s)
	if end <= begin {
		out.done = true
		out.val = identity
		return out
	}
	if grain < 1 {
		grain = end - begin
	}
	nchunks := (end - begin + grain - 1) / grain
	partial := make([]T, nchunks)
	cd := &countdown{left: nchunks, done: func() {
		acc := identity
		for _, p := range partial {
			acc = combine(acc, p)
		}
		out.set(acc)
	}}
	c := 0
	for lo := begin; lo < end; lo += grain {
		hi := lo + grain
		if hi > end {
			hi = end
		}
		lo, hi, idx := lo, hi, c
		s.spawnAt(idx, func() {
			acc := identity
			for i := lo; i < hi; i++ {
				acc = fold(acc, i)
			}
			partial[idx] = acc
			cd.fire()
		})
		c++
	}
	return out
}
