// Package amt implements an asynchronous many-task (AMT) runtime in the
// spirit of the HPX C++ framework: lightweight tasks scheduled onto a fixed
// pool of worker goroutines (one per "execution thread"), futures with
// continuations, when_all-style combinators, parallel algorithms, and
// utilization counters.
//
// The runtime reproduces the properties of HPX that the paper
// "Speeding-Up LULESH on HPX" (Kalkhof & Koch, SC 2024) relies on:
//
//   - cheap task creation relative to OS threads,
//   - dynamic load balancing via work stealing between workers,
//   - dependency graphs expressed through futures and continuations rather
//     than barriers,
//   - per-worker busy/idle accounting (HPX's idle-rate performance counter).
//
// A Scheduler owns N workers. Each worker has a private double-ended task
// queue: the owner pushes and pops at the bottom (LIFO, cache friendly),
// thieves steal from the top (FIFO). Tasks submitted from outside the pool
// are distributed round-robin across worker queues. Idle workers first scan
// every queue and then park on a condition variable; producers wake them.
//
// # Job contexts
//
// A Scheduler value is a *front-end* onto a shared worker pool. NewScheduler
// creates a pool plus its root front-end; NewJob derives additional
// front-ends that multiplex independent task graphs — "jobs" — onto the same
// workers. Each front-end carries its own phase tag, its own task sink and
// its own in-flight count, so concurrent jobs keep isolated perf attribution
// and can Quiesce independently, while placement, stealing and park/wake
// stay pool-global. This is the multi-tenant substrate of the luleshd
// control plane: thousands of simulation jobs as task graphs on one pool.
package amt

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Task is the unit of work executed by the scheduler.
type Task func()

// pool is the shared substance of a scheduler: the workers, their deques,
// the park/wake protocol and the activity counters. Every front-end
// (Scheduler) spawning into the pool shares all of it.
type pool struct {
	workers []*worker
	nw      int

	// pending counts queued-but-not-yet-started tasks across all jobs. It
	// is the ticket that keeps the park/wake protocol free of lost
	// wakeups: producers increment it before checking for sleepers, and
	// workers re-check it under the lock before sleeping.
	pending atomic.Int64

	// inflight counts tasks submitted and not yet finished, across all
	// jobs. Close waits for it to reach zero before stopping the workers.
	inflight atomic.Int64

	rr atomic.Uint64 // round-robin cursor for external submissions

	// stealHalf switches thieves from one-frame steals to half-deque
	// sweeps (WithStealHalf). Immutable after construction.
	stealHalf bool

	mu     sync.Mutex
	cond   *sync.Cond
	idle   atomic.Int32 // workers parked or about to park
	closed bool

	epoch time.Time // start of the current counter epoch

	observer atomic.Pointer[func(worker int, start time.Time, dur time.Duration)]

	wg sync.WaitGroup
}

// Scheduler is one job's front-end onto a (possibly shared) worker pool.
// It must be created with NewScheduler — which also creates the pool — or
// derived from an existing scheduler with NewJob, and released with Close.
//
// The per-front-end state is exactly what distinguishes concurrent jobs:
// the phase tag stamped onto spawned frames, the task sink their execution
// records flow to, and the in-flight count Quiesce waits on. Everything
// else — placement, stealing, waking, worker counters — is pool-global.
type Scheduler struct {
	p *pool

	// root marks the front-end whose Close tears down the worker pool.
	// Job front-ends (NewJob) only quiesce their own work on Close.
	root bool

	// inflight counts this job's submitted-but-unfinished tasks. Quiesce
	// waits for it to reach zero; other jobs' tasks never block it.
	inflight atomic.Int64

	// curPhase is the solver phase tag stamped onto newly spawned frames
	// (SetPhase). Continuation-attach sites capture it at attach time, so
	// frames created later by a tripping barrier still carry the phase
	// that was current when the dependency was declared.
	curPhase atomic.Uint32

	// sink receives one record per executed task (worker, phase, span,
	// queue wait, stolen flag) — the feed for the perf subsystem's
	// per-phase utilization accounting. nil when profiling is off; the
	// spawn path then skips the enqueue timestamp entirely. Per job, so
	// concurrent jobs on one pool keep isolated profilers.
	sink atomic.Pointer[TaskSink]
}

// TaskSink consumes per-task execution records. Implementations must be
// lock-free or near enough: RecordTask runs on the worker after every
// task body. queueWait is zero when the frame was not stamped (sink
// installed mid-flight) and stolen reports whether a steal sweep migrated
// the frame off the deque it was spawned on.
type TaskSink interface {
	RecordTask(worker int, phase uint32, start time.Time, dur, queueWait time.Duration, stolen bool)
}

// SetSink installs or removes (nil) the per-task record consumer for this
// front-end's tasks. Other jobs sharing the pool are unaffected.
func (s *Scheduler) SetSink(sink TaskSink) {
	if sink == nil {
		s.sink.Store(nil)
		return
	}
	s.sink.Store(&sink)
}

// SetPhase publishes the phase tag stamped onto subsequently spawned
// tasks — the solver calls it once per kernel family per timestep. Zero
// is the untagged default. Per front-end: concurrent jobs publish phases
// independently.
func (s *Scheduler) SetPhase(p uint32) { s.curPhase.Store(p) }

// Phase returns the current phase tag.
func (s *Scheduler) Phase() uint32 { return s.curPhase.Load() }

// stamp tags a freshly created frame with its owning job, its phase and,
// when a sink is installed, the enqueue time for queue-wait accounting.
func (s *Scheduler) stamp(f *frame, ph uint32) {
	f.job = s
	f.phase = ph
	if s.sink.Load() != nil {
		f.enq = time.Now()
	}
}

type worker struct {
	id      int
	dq      deque // normal-priority tasks
	hp      deque // high-priority tasks (HPX's priority local scheduling)
	rng     *rand.Rand
	busy    atomic.Int64 // nanoseconds spent executing task bodies
	tasks   atomic.Int64 // number of tasks executed
	steal   atomic.Int64 // number of successful steal sweeps
	stolen  atomic.Int64 // frames migrated by those sweeps (> steal with steal-half)
	affHit  atomic.Int64 // hinted frames executed on their preferred worker
	affMiss atomic.Int64 // hinted frames executed elsewhere (migrated by a steal)
	parks   atomic.Int64 // times this worker parked on the condition variable
	parkNs  atomic.Int64 // nanoseconds spent parked (blocked in cond.Wait)

	stealBuf []*frame // owner-private scratch for steal-half sweeps
}

// Option configures a Scheduler.
type Option func(*config)

type config struct {
	numWorkers int
	stealHalf  bool
	observer   func(worker int, start time.Time, dur time.Duration)
}

// WithObserver installs a hook invoked after every executed task with the
// worker id and the task's execution span. Used to feed a trace.Recorder
// (the APEX-style timeline of internal/trace); the hook runs on the worker
// and must be cheap and concurrency-safe. Pool-global: it observes every
// job's tasks.
func WithObserver(fn func(worker int, start time.Time, dur time.Duration)) Option {
	return func(c *config) { c.observer = fn }
}

// SetObserver installs or replaces the task observer at runtime.
func (s *Scheduler) SetObserver(fn func(worker int, start time.Time, dur time.Duration)) {
	if fn == nil {
		s.p.observer.Store(nil)
		return
	}
	s.p.observer.Store(&fn)
}

// WithWorkers sets the number of worker goroutines ("execution threads").
// Values below 1 are treated as 1.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.numWorkers = n
	}
}

// WithStealHalf makes thieves migrate up to half of a victim's queue in one
// sweep instead of a single frame. Task Bench-style studies show steal
// traffic dominating AMT overhead at fine grain; batched steals amortize
// the per-steal synchronization over many frames and let a lagging worker
// catch up in one move. Execution semantics are unchanged — every frame
// still runs exactly once.
func WithStealHalf(enabled bool) Option {
	return func(c *config) { c.stealHalf = enabled }
}

// NewScheduler creates a worker pool and returns its root front-end. The
// default worker count is runtime.GOMAXPROCS(0), mirroring HPX's default of
// one worker OS-thread per core.
func NewScheduler(opts ...Option) *Scheduler {
	cfg := config{numWorkers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	p := &pool{nw: cfg.numWorkers, stealHalf: cfg.stealHalf, epoch: time.Now()}
	if cfg.observer != nil {
		p.observer.Store(&cfg.observer)
	}
	p.cond = sync.NewCond(&p.mu)
	p.workers = make([]*worker, p.nw)
	for i := range p.workers {
		p.workers[i] = &worker{
			id:       i,
			rng:      rand.New(rand.NewSource(int64(i)*0x9E3779B9 + 1)),
			stealBuf: make([]*frame, 0, stealHalfMax),
		}
	}
	s := &Scheduler{p: p, root: true}
	p.wg.Add(p.nw)
	for _, w := range p.workers {
		go p.run(w)
	}
	return s
}

// NewJob derives a fresh front-end onto this scheduler's worker pool: an
// isolated job context. The job shares the workers, deques and steal
// machinery but carries its own phase tag, its own task sink and its own
// in-flight count, so
//
//   - two jobs' perf records never mix (each installs its own profiler),
//   - a job's Quiesce waits only for that job's tasks,
//   - a job's Close never tears down the pool other jobs are running on.
//
// Futures and combinators created through the job front-end spawn their
// continuations through it too, so a whole task graph built from one job
// stays attributed to it. NewJob may be called from any front-end; the
// result is always a sibling on the same pool.
func (s *Scheduler) NewJob() *Scheduler {
	return &Scheduler{p: s.p}
}

// SharesPoolWith reports whether two front-ends multiplex onto the same
// worker pool — true for any scheduler and its NewJob derivatives.
func (s *Scheduler) SharesPoolWith(o *Scheduler) bool { return s.p == o.p }

// Workers reports the number of worker goroutines in the shared pool.
func (s *Scheduler) Workers() int { return s.p.nw }

// Spawn submits a task for asynchronous execution. It never blocks.
// Spawning on a closed scheduler panics.
func (s *Scheduler) Spawn(t Task) { s.spawnPhase(s.curPhase.Load(), t) }

// spawnPhase is Spawn with an explicit phase tag — the internal entry
// continuation-attach sites use after capturing the phase at attach time.
func (s *Scheduler) spawnPhase(ph uint32, t Task) {
	if t == nil {
		panic("amt: Spawn called with nil task")
	}
	f := newFrame()
	f.fn = t
	s.stamp(f, ph)
	s.beginBatch(1)
	i := int(s.p.rr.Add(1)-1) % s.p.nw
	s.p.workers[i].dq.pushBottom(f)
	s.p.wake()
}

// SpawnAt submits a task with an affinity hint: the frame is placed
// directly on worker home's deque (reduced modulo the worker count) and
// tagged so the hit/miss counters can report whether it actually ran
// there. A negative home degrades to plain Spawn. The hint biases
// placement only — idle workers still steal the frame, so affinity never
// causes starvation; it just makes the common, balanced case re-touch
// data where it is already cached.
func (s *Scheduler) SpawnAt(home int, t Task) {
	s.spawnAtPhase(s.curPhase.Load(), home, t)
}

func (s *Scheduler) spawnAtPhase(ph uint32, home int, t Task) {
	if t == nil {
		panic("amt: SpawnAt called with nil task")
	}
	if home < 0 {
		s.spawnPhase(ph, t)
		return
	}
	home %= s.p.nw
	f := newFrame()
	f.fn = t
	f.home = int32(home)
	s.stamp(f, ph)
	s.beginBatch(1)
	s.p.workers[home].dq.pushBottom(f)
	s.p.wake()
}

// SpawnBatchAt is SpawnBatch with per-task affinity hints: task ts[i] is
// placed on worker homes[i] (negative entries fall back to round-robin).
// homes may be nil, making it equivalent to SpawnBatch. Like SpawnBatch it
// performs one bookkeeping update and one wake sweep for the whole batch.
func (s *Scheduler) SpawnBatchAt(ts []Task, homes []int) {
	s.spawnBatchAtPhase(s.curPhase.Load(), ts, homes)
}

func (s *Scheduler) spawnBatchAtPhase(ph uint32, ts []Task, homes []int) {
	if homes == nil {
		s.spawnBatchPhase(ph, ts)
		return
	}
	n := len(ts)
	if n == 0 {
		return
	}
	if len(homes) != n {
		panic("amt: SpawnBatchAt homes/tasks length mismatch")
	}
	for _, t := range ts {
		if t == nil {
			panic("amt: SpawnBatchAt called with nil task")
		}
	}
	s.beginBatch(n)
	base := int(s.p.rr.Add(uint64(n)) - uint64(n))
	frames := make([]*frame, n)
	targets := make([]int, n)
	for k, t := range ts {
		f := newFrame()
		f.fn = t
		i := (base + k) % s.p.nw
		if h := homes[k]; h >= 0 {
			i = h % s.p.nw
			f.home = int32(i)
		}
		s.stamp(f, ph)
		frames[k] = f
		targets[k] = i
	}
	s.p.pushInterleaved(frames, targets)
	s.p.wakeN(n)
}

// SpawnHigh submits a high-priority task: workers drain high-priority
// queues (their own and steals) before any normal task, mirroring HPX's
// priority local scheduling policy. Relative order among equal-priority
// tasks is unchanged.
func (s *Scheduler) SpawnHigh(t Task) { s.spawnHighPhase(s.curPhase.Load(), t) }

func (s *Scheduler) spawnHighPhase(ph uint32, t Task) {
	if t == nil {
		panic("amt: SpawnHigh called with nil task")
	}
	f := newFrame()
	f.fn = t
	s.stamp(f, ph)
	s.beginBatch(1)
	i := int(s.p.rr.Add(1)-1) % s.p.nw
	s.p.workers[i].hp.pushBottom(f)
	s.p.wake()
}

// SpawnBatch submits every task in ts with one bookkeeping update, one
// round-robin placement sweep and a single wake of the idle workers,
// instead of len(ts) Spawn/wake round-trips. It never blocks. The batch
// counts as submitted atomically: pending and inflight are raised before
// any frame is visible, preserving the lost-wakeup-free park protocol.
func (s *Scheduler) SpawnBatch(ts []Task) { s.spawnBatchPhase(s.curPhase.Load(), ts) }

func (s *Scheduler) spawnBatchPhase(ph uint32, ts []Task) {
	n := len(ts)
	if n == 0 {
		return
	}
	for _, t := range ts {
		if t == nil {
			panic("amt: SpawnBatch called with nil task")
		}
	}
	s.beginBatch(n)
	base := int(s.p.rr.Add(uint64(n)) - uint64(n))
	for k, t := range ts {
		f := newFrame()
		f.fn = t
		s.stamp(f, ph)
		s.p.workers[(base+k)%s.p.nw].dq.pushBottom(f)
	}
	s.p.wakeN(n)
}

// beginBatch raises the pending/inflight tickets for n frames about to be
// enqueued with enqueueAt. Counts go first so a worker that observes a
// frame early can never drive the counters negative past a Quiesce. The
// job's own inflight rises alongside the pool's: Quiesce watches the
// former, Close the latter.
func (s *Scheduler) beginBatch(n int) {
	s.inflight.Add(int64(n))
	s.p.inflight.Add(int64(n))
	s.p.pending.Add(int64(n))
}

// enqueueAt places a pre-counted frame on the queue of worker i, without
// waking anyone; the batch producer wakes once at the end (wakeN).
func (s *Scheduler) enqueueAt(i int, f *frame) {
	s.p.workers[i%s.p.nw].dq.pushBottom(f)
}

func (p *pool) wake() {
	if p.idle.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.cond.Signal()
	p.mu.Unlock()
}

// wakeN wakes up to n parked workers with a single lock acquisition —
// the batch analog of wake.
func (p *pool) wakeN(n int) {
	if p.idle.Load() == 0 {
		return
	}
	p.mu.Lock()
	if n >= p.nw {
		p.cond.Broadcast()
	} else {
		for ; n > 0; n-- {
			p.cond.Signal()
		}
	}
	p.mu.Unlock()
}

// pushInterleaved pushes pre-counted frames onto their target deques in
// round-robin order across workers (first frame of every worker, then the
// second of every worker, ...), preserving submission order within each
// deque. Launch sites enumerate mesh partitions in ascending order, which
// under a block-distributed affinity map emits all of worker 0's frames
// before any of worker 1's; pushed in that order, a worker going idle at a
// stage boundary sees only *other* workers' hinted frames and steals them
// — and the owners then steal the thief's late-arriving frames back, so
// under contention roughly half of all hinted frames migrated (measured
// ~50% affinity hit rate on 2 workers, i.e. chance). Interleaving makes
// every worker's first frame land within the first sweep round, so wakers
// and spinning thieves find their own work before resorting to stealing.
func (p *pool) pushInterleaved(frames []*frame, targets []int) {
	// Counting sort by target worker — three fixed-size allocations, no
	// slice regrowth: start[w] marks worker w's group in sorted, cur[w]
	// doubles as the fill cursor and then the round-robin walk cursor.
	n := len(frames)
	start := make([]int, p.nw+1)
	for _, w := range targets {
		start[w+1]++
	}
	for w := 0; w < p.nw; w++ {
		start[w+1] += start[w]
	}
	sorted := make([]*frame, n)
	cur := make([]int, p.nw)
	copy(cur, start)
	for k, f := range frames {
		w := targets[k]
		sorted[cur[w]] = f
		cur[w]++
	}
	copy(cur, start)
	for left := n; left > 0; {
		for w := 0; w < p.nw; w++ {
			if cur[w] < start[w+1] {
				p.workers[w].dq.pushBottom(sorted[cur[w]])
				cur[w]++
				left--
			}
		}
	}
}

// spinRounds bounds the busy-wait of an idle worker before it parks,
// mirroring HPX's brief active wait between task arrivals.
const spinRounds = 1 << 12

// run is the worker loop.
func (p *pool) run(w *worker) {
	defer p.wg.Done()
	for {
		t := p.find(w)
		for spun := 0; t == nil && spun < spinRounds; spun++ {
			runtime.Gosched()
			if p.pending.Load() > 0 {
				t = p.find(w)
			}
		}
		if t == nil {
			if p.park(w) {
				return // closed
			}
			continue
		}
		// Read the tags before run() recycles the frame. job identifies
		// the front-end the frame was spawned through: its sink gets the
		// record, its inflight count the decrement.
		job, home, phase, stolen, enq := t.job, t.home, t.phase, t.stolen, t.enq
		start := time.Now()
		t.run()
		dur := time.Since(start)
		w.busy.Add(int64(dur))
		w.tasks.Add(1)
		if home >= 0 {
			if int(home) == w.id {
				w.affHit.Add(1)
			} else {
				w.affMiss.Add(1)
			}
		}
		if obs := p.observer.Load(); obs != nil {
			(*obs)(w.id, start, dur)
		}
		if sk := job.sink.Load(); sk != nil {
			var qw time.Duration
			if !enq.IsZero() {
				qw = start.Sub(enq)
			}
			(*sk).RecordTask(w.id, phase, start, dur, qw, stolen)
		}
		job.inflight.Add(-1)
		p.inflight.Add(-1)
	}
}

// find looks for runnable work: own high-priority queue, every other
// worker's high-priority queue, own normal queue, then normal steals.
func (p *pool) find(w *worker) *frame {
	if t := w.hp.popBottom(); t != nil {
		p.pending.Add(-1)
		return t
	}
	off := w.rng.Intn(p.nw)
	for k := 0; k < p.nw; k++ {
		v := p.workers[(off+k)%p.nw]
		if v == w {
			continue
		}
		if t := v.hp.popTop(); t != nil {
			p.pending.Add(-1)
			w.steal.Add(1)
			w.stolen.Add(1)
			t.stolen = true
			return t
		}
	}
	if t := w.dq.popBottom(); t != nil {
		p.pending.Add(-1)
		return t
	}
	// Steal: scan victims starting from a random offset so thieves spread.
	for k := 0; k < p.nw; k++ {
		v := p.workers[(off+k)%p.nw]
		if v == w {
			continue
		}
		if p.stealHalf {
			if t := p.stealHalfFrom(w, v); t != nil {
				return t
			}
			continue
		}
		if t := v.dq.popTop(); t != nil {
			p.pending.Add(-1)
			w.steal.Add(1)
			w.stolen.Add(1)
			t.stolen = true
			return t
		}
	}
	return nil
}

// stealHalfFrom migrates up to half of v's queue to w in one sweep. The
// first stolen frame is returned for immediate execution; the rest are
// re-queued on w's own deque. Only the returned frame leaves the pending
// count — the re-queued frames are still queued work, merely relocated, so
// the park/wake ticket protocol is untouched and other thieves can steal
// them onward from w.
func (p *pool) stealHalfFrom(w, v *worker) *frame {
	buf := v.dq.stealHalf(w.stealBuf[:0])
	w.stealBuf = buf
	if len(buf) == 0 {
		return nil
	}
	f := buf[0]
	f.stolen = true
	for i := 1; i < len(buf); i++ {
		// Mark before pushBottom publishes the frame: every frame the
		// sweep migrated counts as stolen, even when the thief's own
		// deque hands it out later.
		buf[i].stolen = true
		w.dq.pushBottom(buf[i])
		buf[i] = nil
	}
	buf[0] = nil
	p.pending.Add(-1)
	w.steal.Add(1)
	w.stolen.Add(int64(len(buf)))
	return f
}

// park blocks until work may be available or the scheduler closes.
// It returns true when the scheduler has been closed. Each blocked stretch
// is accounted on the worker (parks, parkNs) — the measured side of the
// idle-rate counter, splitting "idle because parked" from "idle because
// spinning between steals".
func (p *pool) park(w *worker) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return true
		}
		// Register as idle before re-checking pending: producers bump
		// pending before inspecting the idle count, so one side always
		// sees the other (no lost wakeup).
		p.idle.Add(1)
		if p.pending.Load() > 0 {
			p.idle.Add(-1)
			return false
		}
		t0 := time.Now()
		w.parks.Add(1)
		p.cond.Wait()
		w.parkNs.Add(int64(time.Since(t0)))
		p.idle.Add(-1)
	}
}

// Quiesce blocks until every task submitted *through this front-end*
// (including continuations spawned by running tasks) has finished
// executing. Other jobs sharing the pool neither block it nor are waited
// for. It may be called from outside the pool only.
func (s *Scheduler) Quiesce() {
	for s.inflight.Load() != 0 {
		runtime.Gosched()
	}
}

// Close releases the front-end. On the root scheduler it drains every
// job's outstanding work, shuts the pool down and waits for the workers to
// exit; the pool is unusable afterwards. On a job front-end (NewJob) it
// only quiesces the job's own tasks — the pool and its other jobs keep
// running, which is what lets a finished job release its backend while the
// server keeps serving.
func (s *Scheduler) Close() {
	if !s.root {
		s.Quiesce()
		return
	}
	for s.p.inflight.Load() != 0 {
		runtime.Gosched()
	}
	s.p.mu.Lock()
	s.p.closed = true
	s.p.cond.Broadcast()
	s.p.mu.Unlock()
	s.p.wg.Wait()
}

// Counters is a snapshot of scheduler activity since the last ResetCounters
// (or scheduler creation). It mirrors the HPX idle-rate performance counter
// the paper uses for Figure 11. Counters are pool-global: under
// multi-tenant use they aggregate every job on the pool (per-job
// attribution flows through the per-job task sinks instead).
type Counters struct {
	Workers         int           // number of workers
	Wall            time.Duration // wall time covered by the snapshot
	Busy            time.Duration // summed task-body execution time, all workers
	Tasks           int64         // tasks executed
	Steals          int64         // successful steal sweeps
	Stolen          int64         // frames migrated by steals (> Steals under steal-half)
	AffHits         int64         // affinity-hinted frames executed on their preferred worker
	AffMisses       int64         // affinity-hinted frames executed on some other worker
	Parks           int64         // times a worker parked on the condition variable
	Parked          time.Duration // summed time workers spent parked
	PerWorker       []time.Duration
	PerWorkerTasks  []int64
	PerWorkerSteals []int64
	PerWorkerParked []time.Duration
	Utilizable      time.Duration // Wall * Workers
}

// Utilization is the ratio of productive time to total worker time,
// i.e. the quantity plotted in the paper's Figure 11.
func (c Counters) Utilization() float64 {
	if c.Utilizable <= 0 {
		return 0
	}
	u := float64(c.Busy) / float64(c.Utilizable)
	if u > 1 {
		u = 1
	}
	return u
}

// AffinityHitRate is the fraction of affinity-hinted tasks that executed
// on their preferred worker — the locality analog of the idle-rate
// counter. The second result is false when no hinted task has run.
func (c Counters) AffinityHitRate() (float64, bool) {
	hinted := c.AffHits + c.AffMisses
	if hinted == 0 {
		return 0, false
	}
	return float64(c.AffHits) / float64(hinted), true
}

// FramesPerSteal is the average number of frames one successful steal
// sweep migrated (1 without steal-half).
func (c Counters) FramesPerSteal() float64 {
	if c.Steals == 0 {
		return 0
	}
	return float64(c.Stolen) / float64(c.Steals)
}

// ParkedRate is the fraction of total worker time spent parked — the
// complement of utilization attributable to an empty pool rather than to
// scheduling overhead or spin-waiting.
func (c Counters) ParkedRate() float64 {
	if c.Utilizable <= 0 {
		return 0
	}
	r := float64(c.Parked) / float64(c.Utilizable)
	if r > 1 {
		r = 1
	}
	return r
}

func (c Counters) String() string {
	out := fmt.Sprintf("workers=%d wall=%v busy=%v util=%.1f%% tasks=%d steals=%d stolen=%d",
		c.Workers, c.Wall, c.Busy, 100*c.Utilization(), c.Tasks, c.Steals, c.Stolen)
	if rate, ok := c.AffinityHitRate(); ok {
		out += fmt.Sprintf(" aff=%.1f%%", 100*rate)
	}
	if c.Parks > 0 {
		out += fmt.Sprintf(" parks=%d parked=%.1f%%", c.Parks, 100*c.ParkedRate())
	}
	return out
}

// ResetCounters starts a new measurement epoch for the whole pool.
func (s *Scheduler) ResetCounters() {
	p := s.p
	for _, w := range p.workers {
		w.busy.Store(0)
		w.tasks.Store(0)
		w.steal.Store(0)
		w.stolen.Store(0)
		w.affHit.Store(0)
		w.affMiss.Store(0)
		w.parks.Store(0)
		w.parkNs.Store(0)
	}
	p.mu.Lock()
	p.epoch = time.Now()
	p.mu.Unlock()
}

// CountersSnapshot returns activity accumulated since the last ResetCounters.
func (s *Scheduler) CountersSnapshot() Counters {
	p := s.p
	p.mu.Lock()
	epoch := p.epoch
	p.mu.Unlock()
	c := Counters{Workers: p.nw, Wall: time.Since(epoch)}
	c.PerWorker = make([]time.Duration, p.nw)
	c.PerWorkerTasks = make([]int64, p.nw)
	c.PerWorkerSteals = make([]int64, p.nw)
	c.PerWorkerParked = make([]time.Duration, p.nw)
	for i, w := range p.workers {
		b := time.Duration(w.busy.Load())
		c.PerWorker[i] = b
		c.Busy += b
		c.PerWorkerTasks[i] = w.tasks.Load()
		c.PerWorkerSteals[i] = w.steal.Load()
		c.PerWorkerParked[i] = time.Duration(w.parkNs.Load())
		c.Tasks += c.PerWorkerTasks[i]
		c.Steals += c.PerWorkerSteals[i]
		c.Parked += c.PerWorkerParked[i]
		c.Stolen += w.stolen.Load()
		c.AffHits += w.affHit.Load()
		c.AffMisses += w.affMiss.Load()
		c.Parks += w.parks.Load()
	}
	c.Utilizable = c.Wall * time.Duration(p.nw)
	return c
}

// Inflight reports the number of this front-end's submitted-but-unfinished
// tasks. Intended for tests and debugging assertions.
func (s *Scheduler) Inflight() int64 { return s.inflight.Load() }

// PoolInflight reports the number of submitted-but-unfinished tasks across
// every job on the pool.
func (s *Scheduler) PoolInflight() int64 { return s.p.inflight.Load() }
