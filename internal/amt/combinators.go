package amt

import (
	"fmt"
	"sync"
)

// Additional HPX-style combinators: dataflow over multiple predecessors,
// when_any, and panic propagation through futures (the analog of HPX
// futures carrying exceptions).

// Dataflow runs fn once both futures are ready, passing their values —
// the two-input form of hpx::dataflow.
func Dataflow[A, B, R any](s *Scheduler, fa *Future[A], fb *Future[B],
	fn func(A, B) R) *Future[R] {

	out := newFuture[R](s)
	l := newLatch(2, func() {
		s.Spawn(func() { out.set(fn(fa.val, fb.val)) })
	})
	fa.onReady(l.arrive)
	fb.onReady(l.arrive)
	return out
}

// Dataflow3 is the three-input form of Dataflow.
func Dataflow3[A, B, C, R any](s *Scheduler, fa *Future[A], fb *Future[B],
	fc *Future[C], fn func(A, B, C) R) *Future[R] {

	out := newFuture[R](s)
	l := newLatch(3, func() {
		s.Spawn(func() { out.set(fn(fa.val, fb.val, fc.val)) })
	})
	fa.onReady(l.arrive)
	fb.onReady(l.arrive)
	fc.onReady(l.arrive)
	return out
}

// WhenAny returns a future carrying the index and value of the first
// future in fs to become ready, analogous to hpx::when_any. fs must be
// non-empty.
func WhenAny[T any](s *Scheduler, fs []*Future[T]) *Future[struct {
	Index int
	Value T
}] {
	type anyResult = struct {
		Index int
		Value T
	}
	if len(fs) == 0 {
		panic("amt: WhenAny requires at least one future")
	}
	out := newFuture[anyResult](s)
	var once sync.Once
	for i, f := range fs {
		i, f := i, f
		f.onReady(func() {
			once.Do(func() {
				out.set(anyResult{Index: i, Value: f.val})
			})
		})
	}
	return out
}

// PanicError wraps a panic value recovered inside an asynchronous task so
// it can be rethrown by Future.Get on the waiting goroutine — the
// behaviour of exceptional HPX futures.
type PanicError struct {
	Value any
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("amt: task panicked: %v", p.Value)
}

// AsyncSafe is Async with panic capture: if fn panics, the panic is
// stored in the future and rethrown (wrapped in *PanicError) by Get.
func AsyncSafe[T any](s *Scheduler, fn func() T) *Future[T] {
	f := newFuture[T](s)
	s.Spawn(func() {
		defer func() {
			if r := recover(); r != nil {
				f.setPanic(&PanicError{Value: r})
			}
		}()
		f.set(fn())
	})
	return f
}

// setPanic completes the future exceptionally.
func (f *Future[T]) setPanic(pe *PanicError) {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		panic("amt: future completed twice")
	}
	f.panicErr = pe
	f.done = true
	cbs := f.ready
	f.ready = nil
	ch := f.ch
	f.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	for _, cb := range cbs {
		cb()
	}
}

// Err returns the captured panic of an exceptionally completed future, or
// nil. It does not block; query Ready first or after Get.
func (f *Future[T]) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.panicErr == nil {
		return nil
	}
	return f.panicErr
}
