package amt

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachBlockCoversRangeExactlyOnce(t *testing.T) {
	s := newTestScheduler(t)
	f := func(n8 uint8, g8 uint8) bool {
		n := int(n8)
		grain := int(g8)
		var mu sync.Mutex
		seen := make(map[int]int)
		ForEachBlock(s, 0, n, grain, func(lo, hi int) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		}).Get()
		if len(seen) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if seen[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestForEachBlockEmptyRange(t *testing.T) {
	s := newTestScheduler(t)
	ran := false
	f := ForEachBlock(s, 5, 5, 2, func(lo, hi int) { ran = true })
	if !f.Ready() {
		t.Fatal("empty range should complete immediately")
	}
	f.Get()
	if ran {
		t.Fatal("body should not run for empty range")
	}
}

func TestForEachBlockReversedRange(t *testing.T) {
	s := newTestScheduler(t)
	f := ForEachBlock(s, 10, 3, 2, func(lo, hi int) { t.Error("body ran") })
	f.Get()
}

func TestForEachBlockNonPositiveGrain(t *testing.T) {
	s := newTestScheduler(t)
	var calls atomic.Int64
	ForEachBlock(s, 0, 100, 0, func(lo, hi int) {
		calls.Add(1)
		if lo != 0 || hi != 100 {
			t.Errorf("grain<=0 should make one chunk, got [%d,%d)", lo, hi)
		}
	}).Get()
	if calls.Load() != 1 {
		t.Fatalf("chunks = %d, want 1", calls.Load())
	}
}

func TestForEachBlockChunkBounds(t *testing.T) {
	s := newTestScheduler(t)
	var mu sync.Mutex
	var chunks [][2]int
	ForEachBlock(s, 0, 10, 3, func(lo, hi int) {
		mu.Lock()
		chunks = append(chunks, [2]int{lo, hi})
		mu.Unlock()
	}).Get()
	if len(chunks) != 4 {
		t.Fatalf("10/3 should make 4 chunks, got %d: %v", len(chunks), chunks)
	}
	for _, c := range chunks {
		if c[1]-c[0] > 3 || c[1]-c[0] < 1 {
			t.Fatalf("chunk %v exceeds grain", c)
		}
	}
}

func TestForEachAppliesPerIndex(t *testing.T) {
	s := newTestScheduler(t)
	n := 1000
	out := make([]int64, n)
	ForEach(s, 0, n, 37, func(i int) {
		atomic.AddInt64(&out[i], int64(i))
	}).Get()
	for i, v := range out {
		if v != int64(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestReduceSum(t *testing.T) {
	s := newTestScheduler(t)
	n := 10000
	got := Reduce(s, 0, n, 61, 0,
		func(acc int, i int) int { return acc + i },
		func(a, b int) int { return a + b }).Get()
	want := n * (n - 1) / 2
	if got != want {
		t.Fatalf("Reduce sum = %d, want %d", got, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	s := newTestScheduler(t)
	got := Reduce(s, 3, 3, 10, -7,
		func(acc int, i int) int { return acc + i },
		func(a, b int) int { return a + b }).Get()
	if got != -7 {
		t.Fatalf("empty Reduce = %d, want identity -7", got)
	}
}

func TestReduceDeterministicFloatOrder(t *testing.T) {
	// Floating-point reduction must be bitwise reproducible for a fixed
	// grain, regardless of scheduling: partials combine in chunk order.
	run := func(workers int) float64 {
		s := NewScheduler(WithWorkers(workers))
		defer s.Close()
		return Reduce(s, 0, 100000, 173, 0.0,
			func(acc float64, i int) float64 { return acc + 1.0/float64(i+1) },
			func(a, b float64) float64 { return a + b }).Get()
	}
	r1 := run(1)
	r2 := run(4)
	if r1 != r2 {
		t.Fatalf("Reduce not deterministic across worker counts: %v vs %v", r1, r2)
	}
}

func TestReduceMin(t *testing.T) {
	s := newTestScheduler(t)
	vals := []float64{5, 3, 8, 1.5, 9, 2}
	got := Reduce(s, 0, len(vals), 2, 1e300,
		func(acc float64, i int) float64 {
			if vals[i] < acc {
				return vals[i]
			}
			return acc
		},
		func(a, b float64) float64 {
			if b < a {
				return b
			}
			return a
		}).Get()
	if got != 1.5 {
		t.Fatalf("Reduce min = %v, want 1.5", got)
	}
}

func TestForEachBlockParallelismActuallyConcurrent(t *testing.T) {
	s := newTestScheduler(t) // 2 workers
	var inFlight, maxInFlight atomic.Int64
	ForEachBlock(s, 0, 8, 1, func(lo, hi int) {
		cur := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
				break
			}
		}
		for i := 0; i < 100000; i++ {
			_ = i * i
		}
		inFlight.Add(-1)
	}).Get()
	if maxInFlight.Load() < 2 {
		t.Logf("no overlap observed (possible on a loaded machine): max=%d",
			maxInFlight.Load())
	}
}
