package amt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpawnHighRunsAllTasks(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	var n atomic.Int64
	for i := 0; i < 1000; i++ {
		s.SpawnHigh(func() { n.Add(1) })
	}
	s.Quiesce()
	if n.Load() != 1000 {
		t.Fatalf("ran %d of 1000 high-priority tasks", n.Load())
	}
}

func TestSpawnHighNilPanics(t *testing.T) {
	s := NewScheduler(WithWorkers(1))
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("SpawnHigh(nil) should panic")
		}
	}()
	s.SpawnHigh(nil)
}

func TestHighPriorityJumpsQueue(t *testing.T) {
	// Single worker: fill the normal queue behind a long-running blocker,
	// then submit a high-priority task. It must run before the queued
	// normal tasks.
	s := NewScheduler(WithWorkers(1))
	defer s.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocker := Run(s, func() {
		close(started)
		<-release
	})
	<-started

	var order []string
	var mu sync.Mutex
	mark := func(tag string) func() {
		return func() {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}
	var fs []*Void
	for i := 0; i < 5; i++ {
		fs = append(fs, Run(s, mark("normal")))
	}
	fs = append(fs, RunHigh(s, mark("high")))
	close(release)
	blocker.Get()
	WaitAll(fs)

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("ran %d tasks", len(order))
	}
	if order[0] != "high" {
		t.Fatalf("high-priority task did not jump the queue: %v", order)
	}
}

func TestRunHighFuture(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	var hit atomic.Bool
	RunHigh(s, func() { hit.Store(true) }).Get()
	if !hit.Load() {
		t.Fatal("RunHigh body did not run")
	}
}

func TestThenRunHighChains(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	f := Async(s, func() int { return 7 })
	var got atomic.Int64
	ThenRunHigh(f, func(v int) { got.Store(int64(v)) }).Get()
	if got.Load() != 7 {
		t.Fatalf("continuation saw %d", got.Load())
	}
}

func TestHighPriorityStealing(t *testing.T) {
	// High-priority tasks parked on a busy worker's queue must be stolen
	// by idle workers before they touch normal backlog.
	s := NewScheduler(WithWorkers(4))
	defer s.Close()
	var n atomic.Int64
	var fs []*Void
	for i := 0; i < 64; i++ {
		fs = append(fs, RunHigh(s, func() {
			time.Sleep(200 * time.Microsecond)
			n.Add(1)
		}))
	}
	WaitAll(fs)
	if n.Load() != 64 {
		t.Fatalf("ran %d of 64", n.Load())
	}
}

func TestMixedPrioritiesComplete(t *testing.T) {
	s := NewScheduler(WithWorkers(3))
	defer s.Close()
	var hi, lo atomic.Int64
	var fs []*Void
	for i := 0; i < 500; i++ {
		if i%3 == 0 {
			fs = append(fs, RunHigh(s, func() { hi.Add(1) }))
		} else {
			fs = append(fs, Run(s, func() { lo.Add(1) }))
		}
	}
	WaitAll(fs)
	if hi.Load() != 167 || lo.Load() != 333 {
		t.Fatalf("hi=%d lo=%d", hi.Load(), lo.Load())
	}
}
