package amt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Microbenchmarks of the runtime primitives that set the task backend's
// overhead floor. Run with `go test -bench=. -benchmem ./internal/amt/`.
// Every benchmark reports allocations so a regression on the dispatch
// path's alloc-free invariant (pooled frames, latch joins) fails review
// visibly.

func BenchmarkSpawnThroughput(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Spawn(func() {})
	}
	s.Quiesce()
}

func BenchmarkSpawnBatchThroughput(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	ts := make([]Task, 16)
	for i := range ts {
		ts[i] = func() {}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpawnBatch(ts)
	}
	s.Quiesce()
}

func BenchmarkRunGetLatency(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(s, func() {}).Get()
	}
}

func BenchmarkThenChain(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := Run(s, func() {})
		for k := 0; k < 3; k++ {
			f = ThenRun(f, func(Unit) {})
		}
		f.Get()
	}
}

func BenchmarkAfterAllJoin(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	fs := make([]*Void, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs = fs[:0]
		for k := 0; k < 16; k++ {
			fs = append(fs, Run(s, func() {}))
		}
		AfterAll(s, fs).Get()
	}
}

func BenchmarkRunBatchJoin(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	fns := make([]func(), 16)
	for i := range fns {
		fns[i] = func() {}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AfterAll(s, RunBatch(s, fns)).Get()
	}
}

func BenchmarkForEachChunked(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	data := make([]float64, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForEachBlock(s, 0, len(data), 4096, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] += 1
			}
		}).Get()
	}
}

func BenchmarkForEach(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	data := make([]float64, 1<<13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForEach(s, 0, len(data), 1024, func(j int) {
			data[j] += 1
		}).Get()
	}
}

func BenchmarkForEachInlineSubGrain(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	data := make([]float64, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForEachBlock(s, 0, len(data), 4096, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] += 1
			}
		}).Get()
	}
}

func BenchmarkReduce(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	data := make([]float64, 1<<13)
	for i := range data {
		data[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reduce(s, 0, len(data), 1024, 0.0,
			func(acc float64, j int) float64 { return acc + data[j] },
			func(x, y float64) float64 { return x + y }).Get()
	}
}

// TestQuiesceRacesConcurrentSpawn stresses the Quiesce/Spawn interplay:
// Quiesce must never hang, never observe a negative inflight count, and a
// final Quiesce after the producer joins must account for every task —
// the invariant the batched submission path (counts before frames) exists
// to protect. Run under -race as part of the race lane.
func TestQuiesceRacesConcurrentSpawn(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	var n atomic.Int64
	const spawns = 3000
	batch := make([]Task, 8)
	for i := range batch {
		batch[i] = func() { n.Add(1) }
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < spawns; i++ {
			if i%3 == 0 {
				s.SpawnBatch(batch)
			} else {
				s.Spawn(func() { n.Add(1) })
			}
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < 100; i++ {
		s.Quiesce()
		if got := s.Inflight(); got < 0 {
			t.Fatalf("inflight went negative: %d", got)
		}
	}
	wg.Wait()
	s.Quiesce()
	batches := int64((spawns + 2) / 3)
	want := batches*int64(len(batch)) + (int64(spawns) - batches)
	if got := n.Load(); got != want {
		t.Fatalf("after final Quiesce ran %d tasks, want %d", got, want)
	}
	if got := s.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after Quiesce, want 0", got)
	}
}
