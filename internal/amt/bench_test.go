package amt

import "testing"

// Microbenchmarks of the runtime primitives that set the task backend's
// overhead floor. Run with `go test -bench=. ./internal/amt/`.

func BenchmarkSpawnThroughput(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Spawn(func() {})
	}
	s.Quiesce()
}

func BenchmarkRunGetLatency(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(s, func() {}).Get()
	}
}

func BenchmarkThenChain(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := Run(s, func() {})
		for k := 0; k < 3; k++ {
			f = ThenRun(f, func(Unit) {})
		}
		f.Get()
	}
}

func BenchmarkAfterAllJoin(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	fs := make([]*Void, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs = fs[:0]
		for k := 0; k < 16; k++ {
			fs = append(fs, Run(s, func() {}))
		}
		AfterAll(s, fs).Get()
	}
}

func BenchmarkForEachChunked(b *testing.B) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	data := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForEachBlock(s, 0, len(data), 4096, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] += 1
			}
		}).Get()
	}
}
