package amt

import "sync"

// deque is a mutex-protected double-ended task queue backed by a growable
// ring buffer. The owner worker pushes and pops at the bottom; thieves pop
// from the top. LULESH tasks are coarse (tens of microseconds to
// milliseconds), so a short critical section per operation is negligible
// next to task bodies while staying trivially correct under the race
// detector.
type deque struct {
	mu   sync.Mutex
	buf  []Task
	head int // index of the oldest element (steal end)
	n    int // number of elements
}

const dequeMinCap = 64

// pushBottom appends t at the bottom (the owner end).
func (d *deque) pushBottom(t Task) {
	d.mu.Lock()
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = t
	d.n++
	d.mu.Unlock()
}

// popBottom removes and returns the most recently pushed task, or nil.
func (d *deque) popBottom() Task {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil
	}
	d.n--
	i := (d.head + d.n) % len(d.buf)
	t := d.buf[i]
	d.buf[i] = nil
	d.mu.Unlock()
	return t
}

// popTop removes and returns the oldest task (the steal end), or nil.
func (d *deque) popTop() Task {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	d.mu.Unlock()
	return t
}

// size reports the current number of queued tasks.
func (d *deque) size() int {
	d.mu.Lock()
	n := d.n
	d.mu.Unlock()
	return n
}

func (d *deque) grow() {
	newCap := len(d.buf) * 2
	if newCap < dequeMinCap {
		newCap = dequeMinCap
	}
	nb := make([]Task, newCap)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}
