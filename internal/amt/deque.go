package amt

import (
	"sync"
	"time"
)

// frame is the unit of queued work: either a plain task body (fn) or a
// block of a parallel algorithm (body over [lo, hi)) with an optional
// completion latch. Frames are pooled so the steady-state dispatch path of
// a parallel region performs no per-chunk heap allocation — the analog of
// HPX recycling its task descriptors.
type frame struct {
	fn     Task             // plain task body (Spawn, SpawnHigh, SpawnBatch)
	body   func(lo, hi int) // block body (ForEachBlock, Reduce)
	lo, hi int              // block bounds when body is set
	latch  *latch           // fired after the body returns, if non-nil

	// home is the frame's affinity hint: the worker whose cache is
	// expected to hold the frame's data, or -1 when unhinted. Placement
	// honors the hint; execution does not — any worker may steal the
	// frame, so the hint trades locality without constraining load
	// balance. The executing worker compares home against its own id to
	// maintain the affinity hit/miss counters.
	home int32

	// phase tags the frame with the solver phase that spawned it (see
	// Scheduler.SetPhase). Captured at spawn time — for continuations, at
	// attach time during the sequential dependency-graph construction —
	// because by the time a barrier trips and the frame is created the
	// scheduler may already be publishing the next phase.
	phase uint32

	// stolen marks a frame migrated off its original deque by a steal
	// sweep; the executing worker forwards it to the task sink.
	stolen bool

	// job is the front-end the frame was spawned through. The executing
	// worker decrements that job's in-flight count and routes the task
	// record to that job's sink, keeping concurrent jobs on one pool
	// isolated. Always set by the spawn paths before the frame is
	// published.
	job *Scheduler

	// enq is the enqueue timestamp for queue-wait accounting. Stamped
	// only while a task sink is installed (time.Now is not free on the
	// spawn path); the zero value means "not stamped".
	enq time.Time
}

var framePool = sync.Pool{New: func() any { return &frame{home: noHome} }}

// noHome marks a frame without an affinity hint.
const noHome = -1

// newFrame returns a cleared frame from the pool.
func newFrame() *frame { return framePool.Get().(*frame) }

// run executes the frame's body, recycles the frame, and then fires the
// latch. The frame is returned to the pool before the latch fires so a
// completion callback that spawns more work can reuse it immediately; the
// frame must not be touched after run returns.
func (f *frame) run() {
	if f.fn != nil {
		f.fn()
	} else {
		f.body(f.lo, f.hi)
	}
	l := f.latch
	f.fn, f.body, f.latch, f.home = nil, nil, nil, noHome
	f.phase, f.stolen, f.enq, f.job = 0, false, time.Time{}, nil
	framePool.Put(f)
	if l != nil {
		l.arrive()
	}
}

// deque is a mutex-protected double-ended queue of task frames backed by a
// growable ring buffer. The owner worker pushes and pops at the bottom;
// thieves pop from the top. LULESH tasks are coarse (tens of microseconds
// to milliseconds), so a short critical section per operation is negligible
// next to task bodies while staying trivially correct under the race
// detector.
type deque struct {
	mu   sync.Mutex
	buf  []*frame
	head int // index of the oldest element (steal end)
	n    int // number of elements
}

const dequeMinCap = 64

// pushBottom appends f at the bottom (the owner end).
func (d *deque) pushBottom(f *frame) {
	d.mu.Lock()
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = f
	d.n++
	d.mu.Unlock()
}

// popBottom removes and returns the most recently pushed frame, or nil.
func (d *deque) popBottom() *frame {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil
	}
	d.n--
	i := (d.head + d.n) % len(d.buf)
	f := d.buf[i]
	d.buf[i] = nil
	d.mu.Unlock()
	return f
}

// popTop removes and returns the oldest frame (the steal end), or nil.
func (d *deque) popTop() *frame {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return nil
	}
	f := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	d.mu.Unlock()
	return f
}

// stealHalfMax caps how many frames one steal-half sweep migrates, so a
// single thief cannot drain a very deep victim queue past what it can
// plausibly execute before the next rebalance.
const stealHalfMax = 32

// stealHalf removes up to half of the queued frames (rounded up, capped at
// stealHalfMax) from the top — the steal end — in one critical section and
// appends them to buf in queue order. It returns the extended buf, empty
// when the deque was empty. One lock acquisition migrates the whole batch,
// which is what cuts steal attempts on queues refilled ~45 times per
// timestep.
func (d *deque) stealHalf(buf []*frame) []*frame {
	d.mu.Lock()
	k := (d.n + 1) / 2
	if k > stealHalfMax {
		k = stealHalfMax
	}
	for i := 0; i < k; i++ {
		buf = append(buf, d.buf[d.head])
		d.buf[d.head] = nil
		d.head = (d.head + 1) % len(d.buf)
		d.n--
	}
	d.mu.Unlock()
	return buf
}

// size reports the current number of queued frames.
func (d *deque) size() int {
	d.mu.Lock()
	n := d.n
	d.mu.Unlock()
	return n
}

func (d *deque) grow() {
	newCap := len(d.buf) * 2
	if newCap < dequeMinCap {
		newCap = dequeMinCap
	}
	nb := make([]*frame, newCap)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}
