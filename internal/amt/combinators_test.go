package amt

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestDataflowTwoInputs(t *testing.T) {
	s := newTestScheduler(t)
	fa := Async(s, func() int { return 6 })
	fb := Async(s, func() int { return 7 })
	out := Dataflow(s, fa, fb, func(a, b int) int { return a * b })
	if got := out.Get(); got != 42 {
		t.Fatalf("dataflow = %d, want 42", got)
	}
}

func TestDataflowMixedTypes(t *testing.T) {
	s := newTestScheduler(t)
	fa := Async(s, func() string { return "x" })
	fb := Async(s, func() int { return 3 })
	out := Dataflow(s, fa, fb, func(a string, b int) string {
		return strings.Repeat(a, b)
	})
	if got := out.Get(); got != "xxx" {
		t.Fatalf("dataflow = %q", got)
	}
}

func TestDataflowWaitsForBoth(t *testing.T) {
	s := newTestScheduler(t)
	var done atomic.Int32
	fa := Async(s, func() Unit { done.Add(1); return Unit{} })
	fb := Async(s, func() Unit {
		time.Sleep(10 * time.Millisecond)
		done.Add(1)
		return Unit{}
	})
	var seen int32
	Dataflow(s, fa, fb, func(Unit, Unit) Unit {
		seen = done.Load()
		return Unit{}
	}).Get()
	if seen != 2 {
		t.Fatalf("dataflow body ran with %d of 2 inputs done", seen)
	}
}

func TestDataflowOnReadyFutures(t *testing.T) {
	s := newTestScheduler(t)
	out := Dataflow(s, MakeReady(s, 1), MakeReady(s, 2),
		func(a, b int) int { return a + b })
	if got := out.Get(); got != 3 {
		t.Fatalf("dataflow on ready inputs = %d", got)
	}
}

func TestDataflow3(t *testing.T) {
	s := newTestScheduler(t)
	out := Dataflow3(s,
		Async(s, func() int { return 1 }),
		Async(s, func() int { return 2 }),
		Async(s, func() int { return 3 }),
		func(a, b, c int) int { return a + 10*b + 100*c })
	if got := out.Get(); got != 321 {
		t.Fatalf("dataflow3 = %d", got)
	}
}

func TestWhenAnyFirstWins(t *testing.T) {
	s := newTestScheduler(t)
	slow := Async(s, func() int { time.Sleep(50 * time.Millisecond); return 1 })
	fast := Async(s, func() int { return 2 })
	res := WhenAny(s, []*Future[int]{slow, fast}).Get()
	if res.Index != 1 || res.Value != 2 {
		t.Fatalf("WhenAny = %+v, want fast future (index 1)", res)
	}
}

func TestWhenAnySingle(t *testing.T) {
	s := newTestScheduler(t)
	res := WhenAny(s, []*Future[int]{MakeReady(s, 9)}).Get()
	if res.Index != 0 || res.Value != 9 {
		t.Fatalf("WhenAny single = %+v", res)
	}
}

func TestWhenAnyEmptyPanics(t *testing.T) {
	s := newTestScheduler(t)
	defer func() {
		if recover() == nil {
			t.Fatal("WhenAny(nil) should panic")
		}
	}()
	WhenAny[int](s, nil)
}

func TestWhenAnyFiresOnce(t *testing.T) {
	s := newTestScheduler(t)
	fs := make([]*Future[int], 16)
	for i := range fs {
		i := i
		fs[i] = Async(s, func() int { return i })
	}
	res := WhenAny(s, fs).Get()
	if res.Value != res.Index {
		t.Fatalf("index/value mismatch: %+v", res)
	}
	s.Quiesce() // remaining futures completing must not re-set
}

func TestAsyncSafeNormalPath(t *testing.T) {
	s := newTestScheduler(t)
	f := AsyncSafe(s, func() int { return 5 })
	if got := f.Get(); got != 5 {
		t.Fatalf("AsyncSafe value = %d", got)
	}
	if f.Err() != nil {
		t.Fatalf("Err = %v on clean future", f.Err())
	}
}

func TestAsyncSafeCapturesPanic(t *testing.T) {
	s := newTestScheduler(t)
	f := AsyncSafe(s, func() int { panic("boom") })
	// Wait for completion without Get (which would rethrow).
	for !f.Ready() {
		time.Sleep(time.Millisecond)
	}
	err := f.Err()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Err = %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("panic value not preserved: %v", err)
	}
}

func TestGetRethrowsPanic(t *testing.T) {
	s := newTestScheduler(t)
	f := AsyncSafe(s, func() int { panic("kaput") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Get should rethrow the task panic")
		}
		pe, ok := r.(*PanicError)
		if !ok || pe.Value != "kaput" {
			t.Fatalf("rethrown value = %v", r)
		}
	}()
	f.Get()
}

func TestGetRethrowsPanicAfterBlocking(t *testing.T) {
	s := newTestScheduler(t)
	f := AsyncSafe(s, func() int {
		time.Sleep(10 * time.Millisecond)
		panic("late")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("blocking Get should rethrow")
		}
	}()
	f.Get()
}

func TestAsyncSafeContinuationsStillFire(t *testing.T) {
	// Even an exceptional future completes, so dependent barriers do not
	// deadlock (the continuation sees the zero value).
	s := newTestScheduler(t)
	f := AsyncSafe(s, func() int { panic("x") })
	done := ThenRun(f, func(v int) {
		if v != 0 {
			t.Errorf("continuation saw %d, want zero value", v)
		}
	})
	done.Get()
}
