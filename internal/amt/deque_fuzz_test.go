package amt

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// FuzzDeque drives randomized concurrent push/pop/steal schedules against
// one deque — an owner goroutine interpreting the fuzzed script against the
// bottom end while two thieves attack the top, one with single-frame popTop
// and one with stealHalf sweeps — and asserts the queue's fundamental
// safety property: every pushed frame is popped exactly once, none lost,
// none duplicated, none invented. The seed corpus covers push-only,
// drain-heavy, alternating, and yield-punctuated schedules; the fuzzer
// mutates from there.
func FuzzDeque(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{0}, 80)) // push-only burst, forces grow()
	f.Add(bytes.Repeat([]byte{0, 2}, 50))
	f.Add(bytes.Repeat([]byte{0, 0, 2, 3}, 30))
	f.Add([]byte{2, 2, 2, 0, 3, 0, 2, 0, 1, 1, 2, 2, 2, 2})
	// Long push runs so the stealHalf thief sees multi-frame sweeps (and,
	// at >64 queued, the stealHalfMax cap) racing popBottom and popTop.
	f.Add(bytes.Repeat([]byte{0, 0, 0, 0, 0, 0, 3}, 30))
	f.Add(append(bytes.Repeat([]byte{0}, 200), bytes.Repeat([]byte{2, 3}, 25)...))
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}
		var d deque
		// Each byte can push at most one frame; ids index this table.
		hits := make([]atomic.Int32, len(script))
		var stop atomic.Bool
		var wg sync.WaitGroup
		// Thief 0 steals one frame at a time; thief 1 sweeps half the
		// queue per steal, like a steal-half scheduler under contention.
		for th := 0; th < 2; th++ {
			wg.Add(1)
			go func(half bool) {
				defer wg.Done()
				var buf []*frame
				for {
					if half {
						buf = d.stealHalf(buf[:0])
						for _, fr := range buf {
							hits[fr.lo].Add(1)
						}
						if len(buf) > 0 {
							continue
						}
					} else if fr := d.popTop(); fr != nil {
						hits[fr.lo].Add(1)
						continue
					}
					if stop.Load() {
						return
					}
					runtime.Gosched()
				}
			}(th == 1)
		}
		pushes := 0
		for _, op := range script {
			switch op % 4 {
			case 0, 1: // owner pushes the next frame id
				d.pushBottom(&frame{lo: pushes})
				pushes++
			case 2: // owner pops its own bottom end
				if fr := d.popBottom(); fr != nil {
					hits[fr.lo].Add(1)
				}
			default: // let the thieves interleave
				runtime.Gosched()
			}
		}
		stop.Store(true)
		wg.Wait()
		for fr := d.popTop(); fr != nil; fr = d.popTop() {
			hits[fr.lo].Add(1)
		}
		for id := 0; id < pushes; id++ {
			if n := hits[id].Load(); n != 1 {
				t.Fatalf("frame %d popped %d times, want exactly 1 (script %v)",
					id, n, script)
			}
		}
		for id := pushes; id < len(hits); id++ {
			if n := hits[id].Load(); n != 0 {
				t.Fatalf("never-pushed frame id %d popped %d times", id, n)
			}
		}
	})
}
