package amt

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerRunsAllTasks(t *testing.T) {
	s := NewScheduler(WithWorkers(4))
	defer s.Close()
	var n atomic.Int64
	const total = 10000
	for i := 0; i < total; i++ {
		s.Spawn(func() { n.Add(1) })
	}
	s.Quiesce()
	if got := n.Load(); got != total {
		t.Fatalf("executed %d tasks, want %d", got, total)
	}
}

func TestSchedulerDefaultWorkers(t *testing.T) {
	s := NewScheduler()
	defer s.Close()
	if s.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d, want GOMAXPROCS = %d",
			s.Workers(), runtime.GOMAXPROCS(0))
	}
}

func TestSchedulerWorkersClampedToOne(t *testing.T) {
	s := NewScheduler(WithWorkers(-3))
	defer s.Close()
	if s.Workers() != 1 {
		t.Fatalf("workers = %d, want 1", s.Workers())
	}
	done := make(chan struct{})
	s.Spawn(func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("single-worker scheduler did not run task")
	}
}

func TestSchedulerSpawnNilPanics(t *testing.T) {
	s := NewScheduler(WithWorkers(1))
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn(nil) should panic")
		}
	}()
	s.Spawn(nil)
}

func TestSchedulerNestedSpawns(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	var n atomic.Int64
	const fanout = 50
	for i := 0; i < fanout; i++ {
		s.Spawn(func() {
			for j := 0; j < fanout; j++ {
				s.Spawn(func() { n.Add(1) })
			}
		})
	}
	s.Quiesce()
	if got := n.Load(); got != fanout*fanout {
		t.Fatalf("nested spawns executed %d, want %d", got, fanout*fanout)
	}
}

func TestSchedulerQuiesceWaitsForContinuations(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	var done atomic.Bool
	f := Run(s, func() { time.Sleep(10 * time.Millisecond) })
	ThenRun(f, func(Unit) { done.Store(true) })
	s.Quiesce()
	if !done.Load() {
		t.Fatal("Quiesce returned before continuation finished")
	}
}

func TestSchedulerCountersTasksAndBusy(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	s.ResetCounters()
	const total = 200
	for i := 0; i < total; i++ {
		s.Spawn(func() {
			x := 0.0
			for k := 0; k < 10000; k++ {
				x += float64(k)
			}
			_ = x
		})
	}
	s.Quiesce()
	c := s.CountersSnapshot()
	if c.Tasks != total {
		t.Errorf("counted %d tasks, want %d", c.Tasks, total)
	}
	if c.Busy <= 0 {
		t.Error("busy time should be positive")
	}
	if c.Workers != 2 || len(c.PerWorker) != 2 {
		t.Errorf("worker accounting wrong: %+v", c)
	}
	u := c.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization %v out of (0, 1]", u)
	}
}

func TestSchedulerResetCounters(t *testing.T) {
	s := NewScheduler(WithWorkers(1))
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Spawn(func() {})
	}
	s.Quiesce()
	s.ResetCounters()
	c := s.CountersSnapshot()
	if c.Tasks != 0 || c.Busy != 0 {
		t.Fatalf("counters not reset: %+v", c)
	}
}

func TestSchedulerWorkStealing(t *testing.T) {
	// All work lands on few queues (round-robin over 4 workers but the
	// task bodies are slow), so idle workers must steal to finish fast.
	s := NewScheduler(WithWorkers(4))
	defer s.Close()
	s.ResetCounters()
	var n atomic.Int64
	// Spawn a burst from outside; round-robin spreads it, but nested
	// spawns all come from whichever worker runs them, creating imbalance.
	s.Spawn(func() {
		for i := 0; i < 64; i++ {
			s.Spawn(func() {
				time.Sleep(time.Millisecond)
				n.Add(1)
			})
		}
	})
	s.Quiesce()
	if n.Load() != 64 {
		t.Fatalf("ran %d, want 64", n.Load())
	}
	// Not a strict guarantee, but with 64 sleeping tasks spread by
	// round-robin and 4 spinning workers, at least one steal is expected.
	if c := s.CountersSnapshot(); c.Steals == 0 {
		t.Logf("no steals observed (allowed, but unusual): %+v", c)
	}
}

func TestSchedulerUtilizationHighUnderLoad(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	s.ResetCounters()
	var fs []*Void
	for i := 0; i < 64; i++ {
		fs = append(fs, Run(s, func() {
			x := 1.0
			for k := 0; k < 2_000_000; k++ {
				x = x*1.0000001 + 1e-9
			}
			_ = x
		}))
	}
	WaitAll(fs)
	u := s.CountersSnapshot().Utilization()
	if u < 0.5 {
		t.Errorf("utilization %.2f under saturated load, want >= 0.5", u)
	}
}

func TestSchedulerCloseDrains(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	var n atomic.Int64
	for i := 0; i < 1000; i++ {
		s.Spawn(func() { n.Add(1) })
	}
	s.Close()
	if n.Load() != 1000 {
		t.Fatalf("Close lost tasks: ran %d of 1000", n.Load())
	}
}

func TestSchedulerManySmallTasksStress(t *testing.T) {
	s := NewScheduler(WithWorkers(4))
	defer s.Close()
	var n atomic.Int64
	const total = 100000
	for i := 0; i < total; i++ {
		s.Spawn(func() { n.Add(1) })
	}
	s.Quiesce()
	if n.Load() != total {
		t.Fatalf("stress: ran %d of %d", n.Load(), total)
	}
}

func TestSpawnBatchRunsAllTasks(t *testing.T) {
	s := NewScheduler(WithWorkers(4))
	defer s.Close()
	var n atomic.Int64
	const batches, width = 200, 16
	ts := make([]Task, width)
	for i := range ts {
		ts[i] = func() { n.Add(1) }
	}
	for i := 0; i < batches; i++ {
		s.SpawnBatch(ts)
	}
	s.Quiesce()
	if got := n.Load(); got != batches*width {
		t.Fatalf("executed %d tasks, want %d", got, batches*width)
	}
}

func TestSpawnBatchEmptyIsNoop(t *testing.T) {
	s := NewScheduler(WithWorkers(1))
	defer s.Close()
	s.SpawnBatch(nil)
	s.SpawnBatch([]Task{})
	s.Quiesce()
	if got := s.Inflight(); got != 0 {
		t.Fatalf("inflight = %d after empty batches, want 0", got)
	}
}

func TestSpawnBatchNilTaskPanics(t *testing.T) {
	s := NewScheduler(WithWorkers(1))
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("SpawnBatch with a nil task should panic")
		}
	}()
	s.SpawnBatch([]Task{func() {}, nil})
}

func TestSpawnBatchNestedInsideTasks(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	var n atomic.Int64
	inner := make([]Task, 8)
	for i := range inner {
		inner[i] = func() { n.Add(1) }
	}
	outer := make([]Task, 4)
	for i := range outer {
		outer[i] = func() { s.SpawnBatch(inner) }
	}
	s.SpawnBatch(outer)
	s.Quiesce()
	if got := n.Load(); got != int64(len(outer)*len(inner)) {
		t.Fatalf("executed %d inner tasks, want %d", got, len(outer)*len(inner))
	}
}
