package amt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestScheduler(t *testing.T) *Scheduler {
	t.Helper()
	s := NewScheduler(WithWorkers(2))
	t.Cleanup(s.Close)
	return s
}

func TestAsyncReturnsValue(t *testing.T) {
	s := newTestScheduler(t)
	f := Async(s, func() int { return 42 })
	if got := f.Get(); got != 42 {
		t.Fatalf("Get() = %d, want 42", got)
	}
}

func TestGetIsIdempotent(t *testing.T) {
	s := newTestScheduler(t)
	f := Async(s, func() string { return "x" })
	if f.Get() != "x" || f.Get() != "x" {
		t.Fatal("repeated Get should return the same value")
	}
}

func TestMakeReady(t *testing.T) {
	s := newTestScheduler(t)
	f := MakeReady(s, 7)
	if !f.Ready() {
		t.Fatal("MakeReady future should be ready")
	}
	if f.Get() != 7 {
		t.Fatalf("Get() = %d, want 7", f.Get())
	}
}

func TestReadyTransitions(t *testing.T) {
	s := newTestScheduler(t)
	release := make(chan struct{})
	f := Async(s, func() int { <-release; return 1 })
	if f.Ready() {
		t.Fatal("future ready before task ran")
	}
	close(release)
	f.Get()
	if !f.Ready() {
		t.Fatal("future not ready after Get")
	}
}

func TestThenChainsValues(t *testing.T) {
	s := newTestScheduler(t)
	f := Async(s, func() int { return 3 })
	g := Then(f, func(v int) int { return v * v })
	h := Then(g, func(v int) string {
		if v == 9 {
			return "nine"
		}
		return "wrong"
	})
	if got := h.Get(); got != "nine" {
		t.Fatalf("chained value = %q", got)
	}
}

func TestThenOnReadyFuture(t *testing.T) {
	s := newTestScheduler(t)
	f := MakeReady(s, 10)
	g := Then(f, func(v int) int { return v + 1 })
	if got := g.Get(); got != 11 {
		t.Fatalf("Then on ready future = %d, want 11", got)
	}
}

func TestThenRunSideEffect(t *testing.T) {
	s := newTestScheduler(t)
	var got atomic.Int64
	f := Async(s, func() int { return 5 })
	v := ThenRun(f, func(x int) { got.Store(int64(x)) })
	v.Get()
	if got.Load() != 5 {
		t.Fatalf("ThenRun saw %d, want 5", got.Load())
	}
}

func TestLongThenChain(t *testing.T) {
	s := newTestScheduler(t)
	f := MakeReady(s, 0)
	for i := 0; i < 1000; i++ {
		f = Then(f, func(v int) int { return v + 1 })
	}
	if got := f.Get(); got != 1000 {
		t.Fatalf("chain of 1000 increments = %d", got)
	}
}

func TestSetTwicePanics(t *testing.T) {
	s := newTestScheduler(t)
	f := newFuture[int](s)
	f.set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second set should panic")
		}
	}()
	f.set(2)
}

func TestAfterAllEmpty(t *testing.T) {
	s := newTestScheduler(t)
	f := AfterAll(s, nil)
	if !f.Ready() {
		t.Fatal("AfterAll(nil) should be immediately ready")
	}
}

func TestAfterAllWaitsForAll(t *testing.T) {
	s := newTestScheduler(t)
	var n atomic.Int64
	var fs []*Void
	for i := 0; i < 20; i++ {
		fs = append(fs, Run(s, func() {
			time.Sleep(time.Millisecond)
			n.Add(1)
		}))
	}
	AfterAll(s, fs).Get()
	if n.Load() != 20 {
		t.Fatalf("AfterAll completed with %d of 20 done", n.Load())
	}
}

func TestAfterAllRunOrdering(t *testing.T) {
	s := newTestScheduler(t)
	var n atomic.Int64
	var fs []*Void
	for i := 0; i < 10; i++ {
		fs = append(fs, Run(s, func() { n.Add(1) }))
	}
	var seen int64 = -1
	AfterAllRun(s, fs, func() { seen = n.Load() }).Get()
	if seen != 10 {
		t.Fatalf("AfterAllRun body saw %d completions, want 10", seen)
	}
}

func TestAfterAllRunEmptyStillRuns(t *testing.T) {
	s := newTestScheduler(t)
	ran := false
	AfterAllRun(s, nil, func() { ran = true }).Get()
	if !ran {
		t.Fatal("AfterAllRun with no dependencies should still run fn")
	}
}

func TestWhenAllCollectsInOrder(t *testing.T) {
	s := newTestScheduler(t)
	var fs []*Future[int]
	for i := 0; i < 50; i++ {
		i := i
		fs = append(fs, Async(s, func() int {
			time.Sleep(time.Duration(50-i) * time.Microsecond)
			return i
		}))
	}
	vals := WhenAll(s, fs).Get()
	if len(vals) != 50 {
		t.Fatalf("got %d values", len(vals))
	}
	for i, v := range vals {
		if v != i {
			t.Fatalf("vals[%d] = %d; completion order leaked into value order", i, v)
		}
	}
}

func TestWhenAllEmpty(t *testing.T) {
	s := newTestScheduler(t)
	vals := WhenAll[int](s, nil).Get()
	if len(vals) != 0 {
		t.Fatalf("WhenAll(nil) = %v", vals)
	}
}

func TestWaitAll(t *testing.T) {
	s := newTestScheduler(t)
	var n atomic.Int64
	var fs []*Void
	for i := 0; i < 30; i++ {
		fs = append(fs, Run(s, func() { n.Add(1) }))
	}
	WaitAll(fs)
	if n.Load() != 30 {
		t.Fatalf("WaitAll returned with %d of 30 done", n.Load())
	}
}

func TestGetFromManyGoroutines(t *testing.T) {
	s := newTestScheduler(t)
	f := Async(s, func() int {
		time.Sleep(5 * time.Millisecond)
		return 99
	})
	var wg sync.WaitGroup
	errs := make(chan int, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v := f.Get(); v != 99 {
				errs <- v
			}
		}()
	}
	wg.Wait()
	close(errs)
	for v := range errs {
		t.Fatalf("concurrent Get returned %d, want 99", v)
	}
}

func TestDiamondDependency(t *testing.T) {
	// a → (b, c) → d : the canonical dataflow diamond.
	s := newTestScheduler(t)
	a := Async(s, func() int { return 1 })
	b := Then(a, func(v int) int { return v + 10 })
	c := Then(a, func(v int) int { return v + 100 })
	bs := ThenRun(b, func(int) {})
	cs := ThenRun(c, func(int) {})
	var sum atomic.Int64
	ThenRun(b, func(v int) { sum.Add(int64(v)) })
	ThenRun(c, func(v int) { sum.Add(int64(v)) })
	AfterAll(s, []*Void{bs, cs}).Get()
	s.Quiesce()
	if sum.Load() != 112 {
		t.Fatalf("diamond sum = %d, want 112", sum.Load())
	}
}

func TestSchedulerAccessor(t *testing.T) {
	s := newTestScheduler(t)
	f := MakeReady(s, 0)
	if f.Scheduler() != s {
		t.Fatal("Scheduler() should return the owning scheduler")
	}
}

func TestLatchConcurrentArrivals(t *testing.T) {
	var hit atomic.Int64
	l := newLatch(100, func() { hit.Add(1) })
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.arrive()
		}()
	}
	wg.Wait()
	if hit.Load() != 1 {
		t.Fatalf("latch ran done %d times, want exactly 1", hit.Load())
	}
}

func TestRunBatchFuturesComplete(t *testing.T) {
	s := newTestScheduler(t)
	var n atomic.Int64
	fns := make([]func(), 32)
	for i := range fns {
		fns[i] = func() { n.Add(1) }
	}
	outs := RunBatch(s, fns)
	if len(outs) != len(fns) {
		t.Fatalf("RunBatch returned %d futures, want %d", len(outs), len(fns))
	}
	AfterAll(s, outs).Get()
	if got := n.Load(); got != int64(len(fns)) {
		t.Fatalf("ran %d fns, want %d", got, len(fns))
	}
	for i, f := range outs {
		if !f.Ready() {
			t.Fatalf("future %d not ready after AfterAll join", i)
		}
	}
}

func TestRunBatchEmpty(t *testing.T) {
	s := newTestScheduler(t)
	if outs := RunBatch(s, nil); len(outs) != 0 {
		t.Fatalf("RunBatch(nil) returned %d futures, want 0", len(outs))
	}
}
