package amt

import (
	"testing"
	"testing/quick"
)

func TestDequeLIFOForOwner(t *testing.T) {
	var d deque
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		d.pushBottom(&frame{fn: func() { got = append(got, i) }})
	}
	for {
		task := d.popBottom()
		if task == nil {
			break
		}
		task.fn()
	}
	for i, v := range got {
		if v != 9-i {
			t.Fatalf("popBottom order: got %v, want descending from 9", got)
		}
	}
}

func TestDequeFIFOForThief(t *testing.T) {
	var d deque
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		d.pushBottom(&frame{fn: func() { got = append(got, i) }})
	}
	for {
		task := d.popTop()
		if task == nil {
			break
		}
		task.fn()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("popTop order: got %v, want ascending from 0", got)
		}
	}
}

func TestDequeEmptyPops(t *testing.T) {
	var d deque
	if d.popBottom() != nil {
		t.Error("popBottom on empty deque should return nil")
	}
	if d.popTop() != nil {
		t.Error("popTop on empty deque should return nil")
	}
	d.pushBottom(&frame{fn: func() {}})
	d.popBottom()
	if d.popTop() != nil {
		t.Error("popTop after drain should return nil")
	}
}

func TestDequeSize(t *testing.T) {
	var d deque
	if d.size() != 0 {
		t.Fatalf("empty size = %d", d.size())
	}
	for i := 1; i <= 100; i++ {
		d.pushBottom(&frame{fn: func() {}})
		if d.size() != i {
			t.Fatalf("size after %d pushes = %d", i, d.size())
		}
	}
	for i := 99; i >= 0; i-- {
		d.popTop()
		if d.size() != i {
			t.Fatalf("size after pops = %d, want %d", d.size(), i)
		}
	}
}

func TestDequeGrowthPreservesOrder(t *testing.T) {
	var d deque
	const n = 1000 // forces several grow() cycles
	var got []int
	for i := 0; i < n; i++ {
		i := i
		d.pushBottom(&frame{fn: func() { got = append(got, i) }})
	}
	for {
		task := d.popTop()
		if task == nil {
			break
		}
		task.fn()
	}
	if len(got) != n {
		t.Fatalf("drained %d tasks, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: got %d", i, v)
		}
	}
}

func TestDequeInterleavedWraparound(t *testing.T) {
	// Property: any interleaving of pushes with top-pops behaves like a
	// FIFO queue.
	f := func(ops []bool) bool {
		var d deque
		var pushed, popped []int
		next := 0
		for _, isPush := range ops {
			if isPush {
				v := next
				next++
				pushed = append(pushed, v)
				d.pushBottom(&frame{fn: func() { popped = append(popped, v) }})
			} else if task := d.popTop(); task != nil {
				task.fn()
			}
		}
		for {
			task := d.popTop()
			if task == nil {
				break
			}
			task.fn()
		}
		if len(popped) != len(pushed) {
			return false
		}
		for i := range popped {
			if popped[i] != pushed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDequeStealHalf(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, // empty: nothing to steal
		{1, 1}, // a single frame is "half" rounded up
		{2, 1},
		{7, 4}, // ceil(n/2)
		{8, 4},
		{63, 32}, // capped at stealHalfMax
		{64, 32},
		{200, 32},
	}
	for _, c := range cases {
		var d deque
		for i := 0; i < c.n; i++ {
			d.pushBottom(&frame{lo: i})
		}
		got := d.stealHalf(nil)
		if len(got) != c.want {
			t.Fatalf("stealHalf of %d frames took %d, want %d", c.n, len(got), c.want)
		}
		// The sweep takes the oldest frames in FIFO order, like popTop.
		for i, fr := range got {
			if fr.lo != i {
				t.Fatalf("n=%d: stolen[%d].lo = %d, want %d", c.n, i, fr.lo, i)
			}
		}
		if d.size() != c.n-c.want {
			t.Fatalf("n=%d: %d frames left, want %d", c.n, d.size(), c.n-c.want)
		}
		// The remainder must still drain in order from either end.
		if c.n > c.want {
			if fr := d.popTop(); fr.lo != c.want {
				t.Fatalf("n=%d: next popTop = %d, want %d", c.n, fr.lo, c.want)
			}
		}
	}
}

func TestDequeStealHalfReusesBuffer(t *testing.T) {
	var d deque
	for i := 0; i < 10; i++ {
		d.pushBottom(&frame{lo: i})
	}
	buf := make([]*frame, 0, stealHalfMax)
	got := d.stealHalf(buf)
	if len(got) != 5 {
		t.Fatalf("stole %d, want 5", len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("stealHalf should append into the caller's buffer")
	}
}

func TestDequeMixedBottomTop(t *testing.T) {
	var d deque
	mark := func(v int, out *[]int) *frame { return &frame{fn: func() { *out = append(*out, v) }} }
	var got []int
	d.pushBottom(mark(1, &got))
	d.pushBottom(mark(2, &got))
	d.pushBottom(mark(3, &got))
	d.popTop().fn()    // 1
	d.popBottom().fn() // 3
	d.pushBottom(mark(4, &got))
	d.popTop().fn() // 2
	d.popTop().fn() // 4
	want := []int{1, 3, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
