package amt

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

// Tests for the locality layer: affinity-hinted spawns, placement-biased
// ForEachBlockAt, the hit/miss counters, and steal-half migration. The
// contract under test everywhere: hints and steal batching change only
// *where* frames run, never *whether* or *how often*.

// TestForEachBlockAtPropertyExactCover: ForEachBlockAt visits every index
// of [begin, end) exactly once and never an index outside it, for
// arbitrary ranges, grains, and home functions — including out-of-range
// and negative (no-hint) homes — while workers steal concurrently.
func TestForEachBlockAtPropertyExactCover(t *testing.T) {
	s := newTestScheduler(t)
	f := func(b int16, length int16, g int8, homeBase int8, homeStride int8) bool {
		begin, end, grain := boundedRange(b, length, g)
		home := func(lo, hi int) int {
			// Arbitrary affine hint; negative values exercise the
			// unhinted fallback, large ones the modulo reduction.
			return int(homeBase) + lo*int(homeStride)
		}
		n := 0
		if end > begin {
			n = end - begin
		}
		hits := make([]atomic.Int32, n)
		var outside atomic.Int32
		ForEachBlockAt(s, begin, end, grain, home, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i < begin || i >= end {
					outside.Add(1)
				} else {
					hits[i-begin].Add(1)
				}
			}
		}).Get()
		if outside.Load() != 0 {
			return false
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestForEachBlockAtNilHomeMatchesForEachBlock: a nil home function is the
// documented equivalence with plain ForEachBlock.
func TestForEachBlockAtNilHomeMatchesForEachBlock(t *testing.T) {
	s := newTestScheduler(t)
	var n atomic.Int32
	ForEachBlockAt(s, 0, 1000, 64, nil, func(lo, hi int) {
		n.Add(int32(hi - lo))
	}).Get()
	if n.Load() != 1000 {
		t.Fatalf("covered %d indices, want 1000", n.Load())
	}
}

// TestSpawnAtRunsEverything: SpawnAt with in-range, out-of-range and
// negative homes executes every task exactly once.
func TestSpawnAtRunsEverything(t *testing.T) {
	s := newTestScheduler(t)
	const n = 500
	hits := make([]atomic.Int32, n)
	for i := 0; i < n; i++ {
		i := i
		s.SpawnAt(i%7-1, func() { hits[i].Add(1) }) // homes -1..5 on 2 workers
	}
	s.Quiesce()
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, hits[i].Load())
		}
	}
}

// TestSpawnBatchAtRunsEverything: the batched form with a mixed homes
// slice executes every task exactly once; nil homes degrades to
// SpawnBatch; mismatched lengths panic.
func TestSpawnBatchAtRunsEverything(t *testing.T) {
	s := newTestScheduler(t)
	const n = 64
	hits := make([]atomic.Int32, n)
	ts := make([]Task, n)
	homes := make([]int, n)
	for i := range ts {
		i := i
		ts[i] = func() { hits[i].Add(1) }
		homes[i] = i%5 - 2 // negative entries fall back to round-robin
	}
	s.SpawnBatchAt(ts, homes)
	s.SpawnBatchAt(nil, nil)
	s.Quiesce()
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, hits[i].Load())
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SpawnBatchAt with mismatched homes length should panic")
		}
	}()
	s.SpawnBatchAt(ts, homes[:n-1])
}

// TestAffinityCounters: every hinted task is counted exactly once as
// either a hit or a miss, and unhinted tasks are not counted at all.
func TestAffinityCounters(t *testing.T) {
	s := NewScheduler(WithWorkers(2))
	defer s.Close()
	const hinted, unhinted = 300, 200
	for i := 0; i < hinted; i++ {
		s.SpawnAt(i, func() {})
	}
	for i := 0; i < unhinted; i++ {
		s.Spawn(func() {})
	}
	s.Quiesce()
	c := s.CountersSnapshot()
	if c.AffHits+c.AffMisses != hinted {
		t.Fatalf("AffHits+AffMisses = %d+%d, want %d hinted tasks",
			c.AffHits, c.AffMisses, hinted)
	}
	if rate, ok := c.AffinityHitRate(); !ok || rate < 0 || rate > 1 {
		t.Fatalf("AffinityHitRate = %v, %v", rate, ok)
	}
}

// TestAffinityHitRateSingleWorker: with one worker every hint is trivially
// satisfied — the hit rate must be exactly 1.
func TestAffinityHitRateSingleWorker(t *testing.T) {
	s := NewScheduler(WithWorkers(1))
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.SpawnAt(0, func() {})
	}
	s.Quiesce()
	rate, ok := s.CountersSnapshot().AffinityHitRate()
	if !ok || rate != 1 {
		t.Fatalf("hit rate = %v, %v; want 1, true", rate, ok)
	}
	if _, ok := (Counters{}).AffinityHitRate(); ok {
		t.Fatal("empty counters should report no hit rate")
	}
}

// TestStealHalfDrainsPinnedBacklog: every task pinned to worker 0 with
// steal-half enabled — the worst-case imbalance a hint can create. All
// tasks must run exactly once, and the migration counters must show
// multi-frame sweeps (Stolen > Steals would fail only if every sweep
// moved a single frame; at this backlog at least one sweep must batch).
func TestStealHalfDrainsPinnedBacklog(t *testing.T) {
	s := NewScheduler(WithWorkers(4), WithStealHalf(true))
	defer s.Close()
	const n = 4000
	hits := make([]atomic.Int32, n)
	ts := make([]Task, n)
	homes := make([]int, n)
	for i := range ts {
		i := i
		ts[i] = func() {
			hits[i].Add(1)
			for k := 0; k < 100; k++ { // widen the steal window
				_ = k
			}
		}
		homes[i] = 0
	}
	s.SpawnBatchAt(ts, homes)
	s.Quiesce()
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, hits[i].Load())
		}
	}
	c := s.CountersSnapshot()
	if c.Steals > 0 && c.Stolen < c.Steals {
		t.Fatalf("Stolen=%d < Steals=%d: sweeps lost frames", c.Stolen, c.Steals)
	}
	if c.Steals > 0 && c.FramesPerSteal() < 1 {
		t.Fatalf("FramesPerSteal = %v, want >= 1", c.FramesPerSteal())
	}
	if c.Tasks != n {
		t.Fatalf("Tasks = %d, want %d", c.Tasks, n)
	}
}

// TestStealHalfForEachBlockAtExactCover is the race-lane composition test:
// affinity-hinted parallel loops on a steal-half scheduler keep the
// exactly-once contract under concurrent stealing.
func TestStealHalfForEachBlockAtExactCover(t *testing.T) {
	s := NewScheduler(WithWorkers(4), WithStealHalf(true))
	defer s.Close()
	const n, grain = 1 << 14, 32
	home := func(lo, hi int) int { return lo * 4 / n }
	for rep := 0; rep < 8; rep++ {
		hits := make([]atomic.Int32, n)
		ForEachBlockAt(s, 0, n, grain, home, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		}).Get()
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("rep %d: index %d visited %d times", rep, i, hits[i].Load())
			}
		}
	}
}

// TestRunAtThenRunAt: the future-layer wrappers deliver values and
// ordering exactly like their unhinted counterparts.
func TestRunAtThenRunAt(t *testing.T) {
	s := newTestScheduler(t)
	var order atomic.Int32
	a := RunAt(s, 1, func() {
		if !order.CompareAndSwap(0, 1) {
			t.Error("RunAt body ran out of order")
		}
	})
	b := ThenRunAt(a, 0, func(Unit) {
		if !order.CompareAndSwap(1, 2) {
			t.Error("ThenRunAt continuation ran before its parent")
		}
	})
	b.Get()
	if order.Load() != 2 {
		t.Fatalf("order = %d, want 2", order.Load())
	}

	fns := make([]func(), 16)
	var n atomic.Int32
	for i := range fns {
		fns[i] = func() { n.Add(1) }
	}
	AfterAll(s, RunBatchAt(s, fns, []int{0, 1, 2, 3, -1, 5, 6, 7, 0, 1, 2, 3, -1, 5, 6, 7})).Get()
	if n.Load() != 16 {
		t.Fatalf("RunBatchAt ran %d tasks, want 16", n.Load())
	}
}
