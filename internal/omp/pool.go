// Package omp implements a fork-join parallel runtime modeled on OpenMP's
// execution of `#pragma omp parallel for` and parallel regions: a persistent
// team of threads, static loop scheduling, and a full synchronization
// barrier at the end of every loop or region.
//
// It is the comparator runtime for the paper's OpenMP reference
// implementation of LULESH: the cost model of that code — one static split
// plus one barrier per parallel loop, ~30 parallel regions per iteration —
// is exactly what this package reproduces. Like production OpenMP runtimes
// (OMP_WAIT_POLICY), team threads spin briefly at the release and join
// points before parking on a condition variable, so back-to-back loops do
// not pay a futex round trip each. Per-thread productive-time counters
// mirror the paper's manual instrumentation of each parallel region
// (Figure 11).
package omp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// spinRounds bounds the busy-wait at dispatch and join points before a
// thread parks. Tuned to roughly the 10-100 microsecond active-wait window
// of OpenMP runtimes.
const spinRounds = 1 << 14

// Pool is a persistent team of execution threads. Thread 0 is the calling
// goroutine (the "master" thread, as in OpenMP); the remaining n-1 are
// worker goroutines that idle between regions.
//
// A Pool is not reentrant: regions must not be started from inside a region
// (OpenMP without nested parallelism).
type Pool struct {
	n int

	gen  atomic.Int64              // region generation; bumped per dispatch
	job  atomic.Pointer[func(int)] // current region body
	left atomic.Int64              // workers still inside the region

	mu       sync.Mutex
	cond     *sync.Cond // workers park here between regions
	sleepers atomic.Int32
	closed   atomic.Bool

	busy       []atomic.Int64 // per-thread nanoseconds inside region bodies
	regionWall atomic.Int64   // summed wall time of all regions
	regions    atomic.Int64   // number of regions executed

	observer atomic.Pointer[func(tid int, start time.Time, dur time.Duration)]

	wg sync.WaitGroup
}

// SetObserver installs a hook invoked after each thread finishes its part
// of a region, with the thread id and execution span — the fork-join
// feed for a trace.Recorder timeline. The hook runs on the team threads
// and must be cheap and concurrency-safe.
func (p *Pool) SetObserver(fn func(tid int, start time.Time, dur time.Duration)) {
	if fn == nil {
		p.observer.Store(nil)
		return
	}
	p.observer.Store(&fn)
}

// NewPool creates a team with n execution threads (n < 1 is treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n}
	p.cond = sync.NewCond(&p.mu)
	p.busy = make([]atomic.Int64, n)
	p.wg.Add(n - 1)
	for tid := 1; tid < n; tid++ {
		go p.worker(tid)
	}
	return p
}

// Threads reports the team size.
func (p *Pool) Threads() int { return p.n }

// Close shuts the team down. No region may be in flight.
func (p *Pool) Close() {
	p.closed.Store(true)
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) worker(tid int) {
	defer p.wg.Done()
	lastGen := int64(0)
	for {
		// Spin for a new region, then park.
		g := p.gen.Load()
		spun := 0
		for g == lastGen {
			if p.closed.Load() {
				return
			}
			spun++
			if spun < spinRounds {
				runtime.Gosched()
				g = p.gen.Load()
				continue
			}
			p.mu.Lock()
			// Register as sleeper before re-checking gen: the master
			// checks sleepers after bumping gen, so one of the two sides
			// is guaranteed to see the other (no lost wakeup).
			p.sleepers.Add(1)
			g = p.gen.Load()
			if g == lastGen && !p.closed.Load() {
				p.cond.Wait()
				g = p.gen.Load()
			}
			p.sleepers.Add(-1)
			p.mu.Unlock()
		}
		lastGen = g
		job := *p.job.Load()

		start := time.Now()
		job(tid)
		dur := time.Since(start)
		p.busy[tid].Add(int64(dur))
		if obs := p.observer.Load(); obs != nil {
			(*obs)(tid, start, dur)
		}
		p.left.Add(-1)
	}
}

// Parallel executes fn(tid) on every thread of the team, like
// `#pragma omp parallel`. It returns after all threads have finished (the
// implicit barrier at the end of an OpenMP parallel region).
func (p *Pool) Parallel(fn func(tid int)) {
	start := time.Now()
	if p.n > 1 {
		p.job.Store(&fn)
		p.left.Store(int64(p.n - 1))
		p.gen.Add(1)
		if p.sleepers.Load() > 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}

	t0 := time.Now()
	fn(0)
	dur := time.Since(t0)
	p.busy[0].Add(int64(dur))
	if obs := p.observer.Load(); obs != nil {
		(*obs)(0, t0, dur)
	}

	if p.n > 1 {
		// Join: spin, yielding to let workers finish.
		for spun := 0; p.left.Load() > 0; spun++ {
			runtime.Gosched()
		}
	}
	p.regionWall.Add(int64(time.Since(start)))
	p.regions.Add(1)
}

// StaticRange returns the half-open index range [lo, hi) that thread tid of
// nth threads owns under OpenMP static scheduling of n iterations.
func StaticRange(tid, nth, n int) (lo, hi int) {
	chunk := n / nth
	rem := n % nth
	if tid < rem {
		lo = tid * (chunk + 1)
		hi = lo + chunk + 1
		return lo, hi
	}
	lo = rem*(chunk+1) + (tid-rem)*chunk
	hi = lo + chunk
	return lo, hi
}

// ParallelForBlock executes body(lo, hi) over a static partition of
// [0, n) — one contiguous block per thread — with a barrier at the end,
// like `#pragma omp parallel for schedule(static)`.
func (p *Pool) ParallelForBlock(n int, body func(lo, hi int)) {
	p.Parallel(func(tid int) {
		lo, hi := StaticRange(tid, p.n, n)
		if lo < hi {
			body(lo, hi)
		}
	})
}

// ParallelFor executes body(i) for every i in [0, n) with static
// scheduling and a trailing barrier.
func (p *Pool) ParallelFor(n int, body func(i int)) {
	p.ParallelForBlock(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Counters is a snapshot of team activity since the last ResetCounters.
// Utilization corresponds to the paper's Figure 11 measurement for the
// OpenMP reference: time inside parallel-region bodies divided by
// (region wall time × team size), excluding single-threaded portions.
type Counters struct {
	Threads   int
	Wall      time.Duration // summed wall time of all regions
	Busy      time.Duration // summed body time across threads
	Regions   int64
	PerThread []time.Duration
}

// Utilization is the ratio of productive time to total thread time across
// all parallel regions.
func (c Counters) Utilization() float64 {
	den := float64(c.Wall) * float64(c.Threads)
	if den <= 0 {
		return 0
	}
	u := float64(c.Busy) / den
	if u > 1 {
		u = 1
	}
	return u
}

func (c Counters) String() string {
	return fmt.Sprintf("threads=%d regionWall=%v busy=%v util=%.1f%% regions=%d",
		c.Threads, c.Wall, c.Busy, 100*c.Utilization(), c.Regions)
}

// ResetCounters zeroes the productive-time instrumentation.
func (p *Pool) ResetCounters() {
	for i := range p.busy {
		p.busy[i].Store(0)
	}
	p.regionWall.Store(0)
	p.regions.Store(0)
}

// CountersSnapshot returns activity accumulated since the last ResetCounters.
func (p *Pool) CountersSnapshot() Counters {
	c := Counters{Threads: p.n, Regions: p.regions.Load()}
	c.Wall = time.Duration(p.regionWall.Load())
	c.PerThread = make([]time.Duration, p.n)
	for i := range p.busy {
		b := time.Duration(p.busy[i].Load())
		c.PerThread[i] = b
		c.Busy += b
	}
	return c
}
