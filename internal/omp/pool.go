// Package omp implements a fork-join parallel runtime modeled on OpenMP's
// execution of `#pragma omp parallel for` and parallel regions: a persistent
// team of threads, static loop scheduling, and a full synchronization
// barrier at the end of every loop or region.
//
// It is the comparator runtime for the paper's OpenMP reference
// implementation of LULESH: the cost model of that code — one static split
// plus one barrier per parallel loop, ~30 parallel regions per iteration —
// is exactly what this package reproduces. Like production OpenMP runtimes
// (OMP_WAIT_POLICY), team threads spin briefly at the release and join
// points before parking on a condition variable, so back-to-back loops do
// not pay a futex round trip each. Per-thread productive-time counters
// mirror the paper's manual instrumentation of each parallel region
// (Figure 11).
//
// The dispatch/join path is tuned so the reference is a fair baseline for
// the paper's comparison (Section V insists the OpenMP side be well-tuned):
// the region descriptor is published through the generation counter with no
// per-region heap allocation on the static-schedule fast paths, and the
// join is a padded sense-reversing barrier — each thread reports completion
// by writing the region generation into its own cache-line-private flag,
// which the master sweeps, so finishing threads never contend on one
// counter word.
package omp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// spinRounds bounds the busy-wait at dispatch and join points before a
// thread parks. Tuned to roughly the 10-100 microsecond active-wait window
// of OpenMP runtimes.
const spinRounds = 1 << 14

// regionKind selects how a team thread derives its share of the current
// region from the published descriptor.
type regionKind int

const (
	regionFn    regionKind = iota // fn(tid), the general `omp parallel` body
	regionBlock                   // block(lo, hi) over a static share of loopN
	regionElem                    // elem(i) for every i in a static share of loopN
	regionTID                     // blockTID(tid, lo, hi), run even for empty shares
)

// doneFlag is one thread's join flag, padded to its own cache line so the
// sense-reversing barrier's completion stores never false-share.
type doneFlag struct {
	gen atomic.Int64
	_   [56]byte
}

// Pool is a persistent team of execution threads. Thread 0 is the calling
// goroutine (the "master" thread, as in OpenMP); the remaining n-1 are
// worker goroutines that idle between regions.
//
// A Pool is not reentrant: regions must not be started from inside a region
// (OpenMP without nested parallelism).
type Pool struct {
	n int

	// Region descriptor. The plain fields are written by the master before
	// the gen bump and read by workers after observing the new generation;
	// the atomic gen pair orders the accesses (release/acquire), so the
	// descriptor needs no pointer indirection or allocation of its own.
	kind     regionKind
	fn       func(tid int)
	loopN    int
	block    func(lo, hi int)
	elem     func(i int)
	blockTID func(tid, lo, hi int)
	phase    uint32    // solver phase tag of this region (SetPhase)
	released time.Time // region release time; stamped only while a sink is installed

	_    [56]byte     // keep the hot generation word off the descriptor line
	gen  atomic.Int64 // region generation; bumped per dispatch (the sense)
	done []doneFlag   // per-worker padded join flags; done[tid] == gen means finished

	mu       sync.Mutex
	cond     *sync.Cond // workers park here between regions
	sleepers atomic.Int32
	closed   atomic.Bool

	busy       []atomic.Int64 // per-thread nanoseconds inside region bodies
	regionWall atomic.Int64   // summed wall time of all regions
	regions    atomic.Int64   // number of regions executed

	observer atomic.Pointer[func(tid int, start time.Time, dur time.Duration)]

	// curPhase is the phase tag copied into the next region descriptor
	// (SetPhase); sink receives one record per thread per region — the
	// fork-join feed for the perf subsystem, mirroring amt.TaskSink.
	curPhase atomic.Uint32
	sink     atomic.Pointer[TaskSink]

	wg sync.WaitGroup
}

// TaskSink consumes per-thread region-part execution records. It is
// structurally identical to amt.TaskSink so one profiler implementation
// serves both runtimes: worker is the thread id, queueWait is the latency
// from region release to this thread starting its share (the fork-join
// dispatch analog of time spent queued), and stolen is always false —
// static scheduling never migrates work.
type TaskSink interface {
	RecordTask(worker int, phase uint32, start time.Time, dur, queueWait time.Duration, stolen bool)
}

// SetSink installs or removes (nil) the per-part record consumer.
func (p *Pool) SetSink(sink TaskSink) {
	if sink == nil {
		p.sink.Store(nil)
		return
	}
	p.sink.Store(&sink)
}

// SetPhase publishes the phase tag stamped onto subsequently dispatched
// regions — the solver calls it once per kernel family per timestep.
func (p *Pool) SetPhase(ph uint32) { p.curPhase.Store(ph) }

// Phase returns the current phase tag.
func (p *Pool) Phase() uint32 { return p.curPhase.Load() }

// SetObserver installs a hook invoked after each thread finishes its part
// of a region, with the thread id and execution span — the fork-join
// feed for a trace.Recorder timeline. The hook runs on the team threads
// and must be cheap and concurrency-safe.
func (p *Pool) SetObserver(fn func(tid int, start time.Time, dur time.Duration)) {
	if fn == nil {
		p.observer.Store(nil)
		return
	}
	p.observer.Store(&fn)
}

// NewPool creates a team with n execution threads (n < 1 is treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n}
	p.cond = sync.NewCond(&p.mu)
	p.busy = make([]atomic.Int64, n)
	p.done = make([]doneFlag, n)
	p.wg.Add(n - 1)
	for tid := 1; tid < n; tid++ {
		go p.worker(tid)
	}
	return p
}

// Threads reports the team size.
func (p *Pool) Threads() int { return p.n }

// Close shuts the team down. No region may be in flight.
func (p *Pool) Close() {
	p.closed.Store(true)
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// runPart executes thread tid's share of the published region and records
// its productive time.
func (p *Pool) runPart(tid int) {
	start := time.Now()
	switch p.kind {
	case regionFn:
		p.fn(tid)
	case regionBlock:
		lo, hi := StaticRange(tid, p.n, p.loopN)
		if lo < hi {
			p.block(lo, hi)
		}
	case regionElem:
		lo, hi := StaticRange(tid, p.n, p.loopN)
		for i := lo; i < hi; i++ {
			p.elem(i)
		}
	case regionTID:
		lo, hi := StaticRange(tid, p.n, p.loopN)
		p.blockTID(tid, lo, hi)
	}
	dur := time.Since(start)
	p.busy[tid].Add(int64(dur))
	if obs := p.observer.Load(); obs != nil {
		(*obs)(tid, start, dur)
	}
	if sk := p.sink.Load(); sk != nil {
		var qw time.Duration
		if !p.released.IsZero() {
			qw = start.Sub(p.released)
		}
		(*sk).RecordTask(tid, p.phase, start, dur, qw, false)
	}
}

func (p *Pool) worker(tid int) {
	defer p.wg.Done()
	lastGen := int64(0)
	for {
		// Spin for a new region, then park.
		g := p.gen.Load()
		spun := 0
		for g == lastGen {
			if p.closed.Load() {
				return
			}
			spun++
			if spun < spinRounds {
				runtime.Gosched()
				g = p.gen.Load()
				continue
			}
			p.mu.Lock()
			// Register as sleeper before re-checking gen: the master
			// checks sleepers after bumping gen, so one of the two sides
			// is guaranteed to see the other (no lost wakeup).
			p.sleepers.Add(1)
			g = p.gen.Load()
			if g == lastGen && !p.closed.Load() {
				p.cond.Wait()
				g = p.gen.Load()
			}
			p.sleepers.Add(-1)
			p.mu.Unlock()
		}
		lastGen = g
		p.runPart(tid)
		// Sense-reversing arrival: publish this region's generation into
		// the thread's private flag; the master sweeps the flags.
		p.done[tid].gen.Store(g)
	}
}

// dispatch releases the team on the already-written region descriptor,
// runs the master's share, and joins at the padded sense-reversing
// barrier (the implicit barrier at the end of an OpenMP region).
func (p *Pool) dispatch() {
	// Complete the descriptor before the gen bump publishes it: the phase
	// tag, and — only while profiling — the release timestamp workers use
	// to derive their dispatch latency (the fork-join queue wait).
	p.phase = p.curPhase.Load()
	if p.sink.Load() != nil {
		p.released = time.Now()
	} else if !p.released.IsZero() {
		p.released = time.Time{}
	}
	start := time.Now()
	if p.n > 1 {
		g := p.gen.Add(1)
		if p.sleepers.Load() > 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		p.runPart(0)
		for tid := 1; tid < p.n; tid++ {
			for p.done[tid].gen.Load() != g {
				runtime.Gosched()
			}
		}
	} else {
		p.runPart(0)
	}
	p.regionWall.Add(int64(time.Since(start)))
	p.regions.Add(1)
}

// Parallel executes fn(tid) on every thread of the team, like
// `#pragma omp parallel`. It returns after all threads have finished (the
// implicit barrier at the end of an OpenMP parallel region).
func (p *Pool) Parallel(fn func(tid int)) {
	p.kind = regionFn
	p.fn = fn
	p.dispatch()
}

// StaticRange returns the half-open index range [lo, hi) that thread tid of
// nth threads owns under OpenMP static scheduling of n iterations.
func StaticRange(tid, nth, n int) (lo, hi int) {
	chunk := n / nth
	rem := n % nth
	if tid < rem {
		lo = tid * (chunk + 1)
		hi = lo + chunk + 1
		return lo, hi
	}
	lo = rem*(chunk+1) + (tid-rem)*chunk
	hi = lo + chunk
	return lo, hi
}

// ParallelForBlock executes body(lo, hi) over a static partition of
// [0, n) — one contiguous block per thread — with a barrier at the end,
// like `#pragma omp parallel for schedule(static)`. This is a fast path:
// the split happens on each thread from the published descriptor, with no
// per-region closure.
func (p *Pool) ParallelForBlock(n int, body func(lo, hi int)) {
	p.kind = regionBlock
	p.loopN = n
	p.block = body
	p.dispatch()
}

// ParallelFor executes body(i) for every i in [0, n) with static
// scheduling and a trailing barrier.
func (p *Pool) ParallelFor(n int, body func(i int)) {
	p.kind = regionElem
	p.loopN = n
	p.elem = body
	p.dispatch()
}

// ParallelStatic executes body(tid, lo, hi) on every thread, where
// [lo, hi) is the thread's static share of [0, n) — the
// `#pragma omp parallel` + per-thread StaticRange idiom without the
// per-call closure. Unlike ParallelForBlock, body runs on every thread
// even when its share is empty, so per-thread reduction slots can always
// be written.
func (p *Pool) ParallelStatic(n int, body func(tid, lo, hi int)) {
	p.kind = regionTID
	p.loopN = n
	p.blockTID = body
	p.dispatch()
}

// Counters is a snapshot of team activity since the last ResetCounters.
// Utilization corresponds to the paper's Figure 11 measurement for the
// OpenMP reference: time inside parallel-region bodies divided by
// (region wall time × team size), excluding single-threaded portions.
type Counters struct {
	Threads   int
	Wall      time.Duration // summed wall time of all regions
	Busy      time.Duration // summed body time across threads
	Regions   int64
	PerThread []time.Duration
}

// Utilization is the ratio of productive time to total thread time across
// all parallel regions.
func (c Counters) Utilization() float64 {
	den := float64(c.Wall) * float64(c.Threads)
	if den <= 0 {
		return 0
	}
	u := float64(c.Busy) / den
	if u > 1 {
		u = 1
	}
	return u
}

func (c Counters) String() string {
	return fmt.Sprintf("threads=%d regionWall=%v busy=%v util=%.1f%% regions=%d",
		c.Threads, c.Wall, c.Busy, 100*c.Utilization(), c.Regions)
}

// ResetCounters zeroes the productive-time instrumentation.
func (p *Pool) ResetCounters() {
	for i := range p.busy {
		p.busy[i].Store(0)
	}
	p.regionWall.Store(0)
	p.regions.Store(0)
}

// CountersSnapshot returns activity accumulated since the last ResetCounters.
func (p *Pool) CountersSnapshot() Counters {
	c := Counters{Threads: p.n, Regions: p.regions.Load()}
	c.Wall = time.Duration(p.regionWall.Load())
	c.PerThread = make([]time.Duration, p.n)
	for i := range p.busy {
		b := time.Duration(p.busy[i].Load())
		c.PerThread[i] = b
		c.Busy += b
	}
	return c
}
