package omp

import "sync/atomic"

// Work-sharing schedules beyond static: the dynamic and guided loop
// schedules of OpenMP. The LULESH reference uses static scheduling
// everywhere (its loops are uniform), but the region-wise EOS work is
// imbalanced across *loops*, not within them — these schedules let the
// harness demonstrate that intra-loop dynamic scheduling does not recover
// what the task backend gains, which is the paper's point: the imbalance
// LULESH exposes lies across loop boundaries, where OpenMP cannot see it.

// ParallelForDynamic executes body over [0, n) like
// `#pragma omp parallel for schedule(dynamic, chunk)`: threads grab
// fixed-size chunks from a shared counter until the range is exhausted.
func (p *Pool) ParallelForDynamic(n, chunk int, body func(lo, hi int)) {
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	p.Parallel(func(tid int) {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	})
}

// ParallelForGuided executes body over [0, n) like
// `#pragma omp parallel for schedule(guided, minChunk)`: chunk sizes start
// at remaining/threads and decay exponentially to minChunk.
func (p *Pool) ParallelForGuided(n, minChunk int, body func(lo, hi int)) {
	if minChunk < 1 {
		minChunk = 1
	}
	var next atomic.Int64
	p.Parallel(func(tid int) {
		for {
			lo := int(next.Load())
			if lo >= n {
				return
			}
			remaining := n - lo
			chunk := remaining / p.n
			if chunk < minChunk {
				chunk = minChunk
			}
			// Claim [lo, lo+chunk) if no one moved the cursor meanwhile.
			if !next.CompareAndSwap(int64(lo), int64(lo+chunk)) {
				continue
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	})
}
