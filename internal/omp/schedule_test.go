package omp

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestDynamicCoversOnce(t *testing.T) {
	p := newTestPool(t, 4)
	f := func(n16 uint16, c8 uint8) bool {
		n := int(n16) % 3000
		chunk := int(c8)
		hits := make([]atomic.Int32, n)
		p.ParallelForDynamic(n, chunk, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDynamicChunkBound(t *testing.T) {
	p := newTestPool(t, 2)
	p.ParallelForDynamic(100, 7, func(lo, hi int) {
		if hi-lo > 7 || hi-lo < 1 {
			t.Errorf("chunk [%d,%d) violates size 7", lo, hi)
		}
	})
}

func TestDynamicBalancesSkewedWork(t *testing.T) {
	// One heavy iteration early: dynamic scheduling should let the other
	// threads absorb the rest, finishing near max(heavy, rest/threads).
	p := newTestPool(t, 2)
	const n = 64
	start := time.Now()
	p.ParallelForDynamic(n, 1, func(lo, hi int) {
		if lo == 0 {
			time.Sleep(20 * time.Millisecond)
			return
		}
		time.Sleep(500 * time.Microsecond)
	})
	elapsed := time.Since(start)
	// Static would serialize ~32 light iterations behind the heavy one on
	// its thread only if colocated; dynamic should finish in roughly
	// max(20ms, 63*0.5ms) + slack.
	if elapsed > 120*time.Millisecond {
		t.Errorf("dynamic schedule too slow for skewed work: %v", elapsed)
	}
}

func TestGuidedCoversOnce(t *testing.T) {
	p := newTestPool(t, 4)
	for _, n := range []int{0, 1, 5, 100, 4096} {
		hits := make([]atomic.Int32, n)
		p.ParallelForGuided(n, 4, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, hits[i].Load())
			}
		}
	}
}

func TestGuidedSingleThreadTakesAll(t *testing.T) {
	// With one thread the first chunk is remaining/threads = n: guided
	// degenerates to a single chunk, like OpenMP.
	p := newTestPool(t, 1)
	var sizes []int
	p.ParallelForGuided(1000, 8, func(lo, hi int) {
		sizes = append(sizes, hi-lo)
	})
	if len(sizes) != 1 || sizes[0] != 1000 {
		t.Fatalf("guided on one thread made chunks %v, want [1000]", sizes)
	}
}

func TestGuidedChunksDecay(t *testing.T) {
	p := newTestPool(t, 4)
	var mu sync.Mutex
	var sizes []int
	const n = 4096
	p.ParallelForGuided(n, 8, func(lo, hi int) {
		mu.Lock()
		sizes = append(sizes, hi-lo)
		mu.Unlock()
	})
	total, max := 0, 0
	for _, sz := range sizes {
		total += sz
		if sz > max {
			max = sz
		}
	}
	if total != n {
		t.Fatalf("chunks cover %d of %d", total, n)
	}
	if max > n/4 {
		t.Fatalf("largest chunk %d exceeds remaining/threads bound %d", max, n/4)
	}
	if len(sizes) < 4 {
		t.Fatalf("guided produced only %d chunks on 4 threads", len(sizes))
	}
}

func TestGuidedMinChunkRespected(t *testing.T) {
	p := newTestPool(t, 2)
	p.ParallelForGuided(100, 16, func(lo, hi int) {
		if hi-lo < 16 && hi != 100 {
			t.Errorf("interior chunk [%d,%d) below minimum", lo, hi)
		}
	})
}
