package omp

import (
	"sync/atomic"
	"testing"
	"time"
)

type countingSink struct {
	parts  atomic.Int64
	stolen atomic.Int64
	phases [8]atomic.Int64
	waited atomic.Int64
}

func (c *countingSink) RecordTask(worker int, phase uint32, start time.Time,
	dur, queueWait time.Duration, stolen bool) {
	c.parts.Add(1)
	if stolen {
		c.stolen.Add(1)
	}
	if queueWait > 0 {
		c.waited.Add(1)
	}
	if int(phase) < len(c.phases) {
		c.phases[phase].Add(1)
	}
}

func TestPoolSinkReceivesPhasedParts(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	sink := &countingSink{}
	p.SetSink(sink)

	p.SetPhase(4)
	for r := 0; r < 3; r++ {
		p.ParallelForBlock(128, func(lo, hi int) {
			time.Sleep(10 * time.Microsecond)
		})
	}
	p.SetPhase(0)

	// 3 regions x 2 threads, all under phase 4.
	if n := sink.parts.Load(); n != 6 {
		t.Fatalf("sink saw %d parts, want 6", n)
	}
	if got := sink.phases[4].Load(); got != 6 {
		t.Fatalf("phase 4 saw %d parts, want 6", got)
	}
	if sink.stolen.Load() != 0 {
		t.Fatal("fork-join parts must never report stolen")
	}
	if sink.waited.Load() == 0 {
		t.Fatal("no part carried a dispatch-latency stamp")
	}

	// Removing the sink stops delivery and clears the release stamping.
	p.SetSink(nil)
	before := sink.parts.Load()
	p.ParallelForBlock(64, func(lo, hi int) {})
	if sink.parts.Load() != before {
		t.Fatal("sink still invoked after SetSink(nil)")
	}
}
