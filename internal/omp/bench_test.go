package omp

import "testing"

// Microbenchmarks of the fork-join primitives: the per-loop cost the
// OpenMP-style backend pays that the task backend's restructuring avoids.

func BenchmarkEmptyRegion(b *testing.B) {
	p := NewPool(2)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Parallel(func(tid int) {})
	}
}

func BenchmarkParallelForStatic(b *testing.B) {
	p := NewPool(2)
	defer p.Close()
	data := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ParallelForBlock(len(data), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] += 1
			}
		})
	}
}

func BenchmarkParallelForDynamic(b *testing.B) {
	p := NewPool(2)
	defer p.Close()
	data := make([]float64, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ParallelForDynamic(len(data), 4096, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j] += 1
			}
		})
	}
}
