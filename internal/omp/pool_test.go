package omp

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func newTestPool(t *testing.T, n int) *Pool {
	t.Helper()
	p := NewPool(n)
	t.Cleanup(p.Close)
	return p
}

func TestStaticRangeDisjointCover(t *testing.T) {
	// Property: for any n and team size, the per-thread ranges tile [0, n)
	// exactly (the OpenMP static-schedule contract).
	f := func(n16 uint16, nth8 uint8) bool {
		n := int(n16) % 5000
		nth := int(nth8)%16 + 1
		covered := 0
		prevHi := 0
		for tid := 0; tid < nth; tid++ {
			lo, hi := StaticRange(tid, nth, n)
			if lo != prevHi {
				return false // ranges must be contiguous in tid order
			}
			if hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStaticRangeBalance(t *testing.T) {
	// Chunk sizes differ by at most one.
	for _, n := range []int{0, 1, 7, 100, 101, 999} {
		for nth := 1; nth <= 8; nth++ {
			min, max := n, 0
			for tid := 0; tid < nth; tid++ {
				lo, hi := StaticRange(tid, nth, n)
				sz := hi - lo
				if sz < min {
					min = sz
				}
				if sz > max {
					max = sz
				}
			}
			if max-min > 1 {
				t.Fatalf("n=%d nth=%d: chunk sizes range [%d,%d]", n, nth, min, max)
			}
		}
	}
}

func TestPoolSizeClamped(t *testing.T) {
	p := newTestPool(t, 0)
	if p.Threads() != 1 {
		t.Fatalf("Threads() = %d, want 1", p.Threads())
	}
}

func TestParallelRunsAllThreads(t *testing.T) {
	p := newTestPool(t, 4)
	seen := make([]atomic.Int32, 4)
	p.Parallel(func(tid int) { seen[tid].Add(1) })
	for tid := range seen {
		if seen[tid].Load() != 1 {
			t.Fatalf("thread %d ran %d times, want 1", tid, seen[tid].Load())
		}
	}
}

func TestParallelIsABarrier(t *testing.T) {
	p := newTestPool(t, 4)
	var n atomic.Int64
	p.Parallel(func(tid int) {
		for i := 0; i < 100000; i++ {
			_ = i
		}
		n.Add(1)
	})
	if n.Load() != 4 {
		t.Fatalf("Parallel returned with %d of 4 threads done", n.Load())
	}
}

func TestParallelForSums(t *testing.T) {
	p := newTestPool(t, 3)
	n := 10000
	out := make([]int64, n)
	p.ParallelFor(n, func(i int) { out[i] = int64(i) * 2 })
	for i, v := range out {
		if v != int64(i)*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestParallelForBlockCoversOnce(t *testing.T) {
	p := newTestPool(t, 4)
	for _, n := range []int{0, 1, 3, 4, 5, 1000} {
		hits := make([]atomic.Int32, n)
		p.ParallelForBlock(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, hits[i].Load())
			}
		}
	}
}

func TestManyConsecutiveRegions(t *testing.T) {
	// Back-to-back dispatch stress: the spin/park handoff must not lose a
	// region or deadlock.
	p := newTestPool(t, 4)
	var n atomic.Int64
	const regions = 5000
	for r := 0; r < regions; r++ {
		p.Parallel(func(tid int) { n.Add(1) })
	}
	if n.Load() != regions*4 {
		t.Fatalf("executed %d thread-bodies, want %d", n.Load(), regions*4)
	}
}

func TestCountersAccumulateAndReset(t *testing.T) {
	p := newTestPool(t, 2)
	p.ResetCounters()
	const regions = 10
	for r := 0; r < regions; r++ {
		p.ParallelFor(100000, func(i int) { _ = i * i })
	}
	c := p.CountersSnapshot()
	if c.Regions != regions {
		t.Errorf("regions = %d, want %d", c.Regions, regions)
	}
	if c.Busy <= 0 || c.Wall <= 0 {
		t.Errorf("busy/wall not accumulated: %+v", c)
	}
	if u := c.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %v out of (0,1]", u)
	}
	if len(c.PerThread) != 2 {
		t.Errorf("per-thread slice len %d", len(c.PerThread))
	}
	p.ResetCounters()
	c = p.CountersSnapshot()
	if c.Regions != 0 || c.Busy != 0 || c.Wall != 0 {
		t.Errorf("counters not reset: %+v", c)
	}
}

func TestUtilizationZeroWhenEmpty(t *testing.T) {
	c := Counters{Threads: 4}
	if c.Utilization() != 0 {
		t.Fatal("empty counters should report zero utilization")
	}
}

func TestCountersString(t *testing.T) {
	p := newTestPool(t, 2)
	p.ParallelFor(10, func(i int) {})
	if s := p.CountersSnapshot().String(); s == "" {
		t.Fatal("String() empty")
	}
}

func TestSingleThreadPoolRunsInline(t *testing.T) {
	p := newTestPool(t, 1)
	var tids []int
	p.Parallel(func(tid int) { tids = append(tids, tid) })
	if len(tids) != 1 || tids[0] != 0 {
		t.Fatalf("single-thread region ran %v", tids)
	}
}

func TestParallelSharedWrite(t *testing.T) {
	// Threads writing disjoint static ranges must not race (checked under
	// -race) and must produce a complete result.
	p := newTestPool(t, 4)
	n := 4096
	data := make([]float64, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// concurrent reader of an unrelated variable to exercise -race
		_ = len(data)
	}()
	p.ParallelForBlock(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = float64(i)
		}
	})
	wg.Wait()
	for i, v := range data {
		if v != float64(i) {
			t.Fatalf("data[%d] = %v", i, v)
		}
	}
}

func TestWorkersParkAndWakeAfterIdle(t *testing.T) {
	// Let the team exhaust its spin budget and park, then dispatch again:
	// the condvar wakeup path must not lose the region.
	p := newTestPool(t, 3)
	var n atomic.Int64
	p.Parallel(func(tid int) { n.Add(1) })
	time.Sleep(100 * time.Millisecond) // workers park
	p.Parallel(func(tid int) { n.Add(1) })
	if n.Load() != 6 {
		t.Fatalf("ran %d thread-bodies, want 6", n.Load())
	}
}

func TestCloseWhileParked(t *testing.T) {
	p := NewPool(3)
	p.Parallel(func(tid int) {})
	time.Sleep(100 * time.Millisecond) // park
	p.Close()                          // must wake and join parked workers
}

func TestPoolObserver(t *testing.T) {
	p := newTestPool(t, 2)
	var spans atomic.Int64
	p.SetObserver(func(tid int, start time.Time, dur time.Duration) {
		if tid < 0 || tid >= 2 {
			t.Errorf("tid %d out of range", tid)
		}
		spans.Add(1)
	})
	const regions = 5
	for i := 0; i < regions; i++ {
		p.Parallel(func(tid int) {})
	}
	if spans.Load() != 2*regions {
		t.Fatalf("observer saw %d spans, want %d", spans.Load(), 2*regions)
	}
	p.SetObserver(nil)
	before := spans.Load()
	p.Parallel(func(tid int) {})
	if spans.Load() != before {
		t.Fatal("cleared observer still invoked")
	}
}

func TestUtilizationClamp(t *testing.T) {
	c := Counters{Threads: 1, Wall: time.Millisecond, Busy: 2 * time.Millisecond}
	if c.Utilization() != 1 {
		t.Fatalf("utilization must clamp at 1, got %v", c.Utilization())
	}
}

func TestDynamicZeroLength(t *testing.T) {
	p := newTestPool(t, 2)
	p.ParallelForDynamic(0, 8, func(lo, hi int) { t.Error("body ran for n=0") })
	p.ParallelForGuided(0, 8, func(lo, hi int) { t.Error("body ran for n=0") })
}

func TestDynamicChunkClamped(t *testing.T) {
	p := newTestPool(t, 2)
	hits := make([]atomic.Int32, 10)
	p.ParallelForDynamic(10, 0, func(lo, hi int) { // chunk < 1 clamps to 1
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
}
