package domain

import (
	"math"
	"testing"
	"testing/quick"
)

// unitCube fills corner arrays with the canonical unit hexahedron in the
// LULESH local node order.
func unitCube() (x, y, z [8]float64) {
	coords := [8][3]float64{
		{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
	}
	for c := 0; c < 8; c++ {
		x[c], y[c], z[c] = coords[c][0], coords[c][1], coords[c][2]
	}
	return
}

func TestElemVolumeUnitCube(t *testing.T) {
	x, y, z := unitCube()
	if v := ElemVolume(&x, &y, &z); math.Abs(v-1.0) > 1e-14 {
		t.Fatalf("unit cube volume = %v, want 1", v)
	}
}

func TestElemVolumeScaledBox(t *testing.T) {
	x, y, z := unitCube()
	a, b, c := 2.0, 3.0, 0.5
	for i := 0; i < 8; i++ {
		x[i] *= a
		y[i] *= b
		z[i] *= c
	}
	if v := ElemVolume(&x, &y, &z); math.Abs(v-a*b*c) > 1e-12 {
		t.Fatalf("box volume = %v, want %v", v, a*b*c)
	}
}

func TestElemVolumeTranslationInvariant(t *testing.T) {
	f := func(dx, dy, dz float64) bool {
		dx = math.Mod(dx, 1e3)
		dy = math.Mod(dy, 1e3)
		dz = math.Mod(dz, 1e3)
		if math.IsNaN(dx) || math.IsNaN(dy) || math.IsNaN(dz) {
			return true
		}
		x, y, z := unitCube()
		for i := 0; i < 8; i++ {
			x[i] += dx
			y[i] += dy
			z[i] += dz
		}
		v := ElemVolume(&x, &y, &z)
		return math.Abs(v-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestElemVolumeDegenerate(t *testing.T) {
	// Collapse the cube onto the z=0 plane: zero volume.
	x, y, z := unitCube()
	for i := 0; i < 8; i++ {
		z[i] = 0
	}
	if v := ElemVolume(&x, &y, &z); v != 0 {
		t.Fatalf("flat element volume = %v, want 0", v)
	}
}

func TestElemVolumeInvertedIsNegative(t *testing.T) {
	// Swapping the top and bottom faces inverts the element.
	x, y, z := unitCube()
	for i := 0; i < 4; i++ {
		z[i], z[i+4] = z[i+4], z[i]
	}
	if v := ElemVolume(&x, &y, &z); v >= 0 {
		t.Fatalf("inverted element volume = %v, want negative", v)
	}
}

func TestElemVolumeShearInvariant(t *testing.T) {
	// A pure shear preserves volume.
	x, y, z := unitCube()
	for i := 0; i < 8; i++ {
		x[i] += 0.3 * z[i]
	}
	if v := ElemVolume(&x, &y, &z); math.Abs(v-1.0) > 1e-12 {
		t.Fatalf("sheared cube volume = %v, want 1", v)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.HGCoef != 3.0 || p.Qqc != 2.0 || p.RefDens != 1.0 {
		t.Errorf("core constants wrong: %+v", p)
	}
	if p.SS4o3 != 4.0/3.0 {
		t.Errorf("SS4o3 = %v", p.SS4o3)
	}
	if p.DtFixed > 0 {
		t.Error("default time stepping should be variable (DtFixed <= 0)")
	}
	if p.StopTime != 1.0e-2 {
		t.Errorf("StopTime = %v", p.StopTime)
	}
	if p.Emin != -1.0e15 || p.Pmin != 0 {
		t.Errorf("floors wrong: emin=%v pmin=%v", p.Emin, p.Pmin)
	}
}

func TestNewSedovPanicsOnBadRegions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NumReg=0 should panic")
		}
	}()
	NewSedov(Config{EdgeElems: 2, NumReg: 0})
}

func TestNewSedovGeometry(t *testing.T) {
	d := NewSedov(DefaultConfig(4))
	// Total reference volume is the cube volume (1.125)^3.
	sum := 0.0
	for _, v := range d.Volo {
		sum += v
	}
	want := 1.125 * 1.125 * 1.125
	if math.Abs(sum-want) > 1e-12 {
		t.Errorf("total volume = %v, want %v", sum, want)
	}
	// Per-element volume is uniform.
	per := want / float64(d.NumElem())
	for e, v := range d.Volo {
		if math.Abs(v-per) > 1e-12 {
			t.Fatalf("volo[%d] = %v, want %v", e, v, per)
		}
	}
	// The far corner node carries the max coordinate.
	last := d.NumNode() - 1
	if math.Abs(d.X[last]-1.125) > 1e-12 || math.Abs(d.Y[last]-1.125) > 1e-12 ||
		math.Abs(d.Z[last]-1.125) > 1e-12 {
		t.Errorf("far corner at (%v,%v,%v)", d.X[last], d.Y[last], d.Z[last])
	}
}

func TestNewSedovMassConservation(t *testing.T) {
	d := NewSedov(DefaultConfig(5))
	elemMass, nodalMass := 0.0, 0.0
	for _, m := range d.ElemMass {
		elemMass += m
	}
	for _, m := range d.NodalMass {
		nodalMass += m
	}
	if math.Abs(elemMass-nodalMass) > 1e-9 {
		t.Errorf("mass mismatch: elem %v vs nodal %v", elemMass, nodalMass)
	}
}

func TestNewSedovEnergyDeposit(t *testing.T) {
	d := NewSedov(DefaultConfig(45))
	if math.Abs(d.E[0]-3.948746e7) > 1 {
		t.Errorf("s=45 origin energy = %v, want 3.948746e7", d.E[0])
	}
	for e := 1; e < d.NumElem(); e++ {
		if d.E[e] != 0 {
			t.Fatalf("element %d has nonzero initial energy", e)
		}
	}
}

func TestNewSedovEnergyScaling(t *testing.T) {
	// einit scales with (s/45)^3, keeping the problem self-similar.
	d90 := NewSedov(DefaultConfig(6))
	d45 := NewSedov(DefaultConfig(3))
	ratio := d90.E[0] / d45.E[0]
	if math.Abs(ratio-8.0) > 1e-9 {
		t.Errorf("energy ratio for 2x size = %v, want 8", ratio)
	}
}

func TestNewSedovInitialState(t *testing.T) {
	d := NewSedov(DefaultConfig(3))
	for e := 0; e < d.NumElem(); e++ {
		if d.V[e] != 1.0 {
			t.Fatalf("initial relative volume V[%d] = %v", e, d.V[e])
		}
	}
	if d.Deltatime <= 0 {
		t.Error("initial deltatime must be positive")
	}
	if d.Time != 0 || d.Cycle != 0 {
		t.Error("clock not zeroed")
	}
	if d.Dtcourant != 1e20 || d.Dthydro != 1e20 {
		t.Error("constraint sentinels not set")
	}
	for n := 0; n < d.NumNode(); n++ {
		if d.Xd[n] != 0 || d.Yd[n] != 0 || d.Zd[n] != 0 {
			t.Fatal("initial velocities must be zero")
		}
	}
}

func TestCollectElemNodes(t *testing.T) {
	d := NewSedov(DefaultConfig(2))
	var x, y, z [8]float64
	d.CollectElemNodes(0, &x, &y, &z)
	// Element 0 spans [0, h] in each dimension with h = 1.125/2.
	h := 1.125 / 2
	if x[0] != 0 || y[0] != 0 || z[0] != 0 {
		t.Errorf("corner 0 at (%v,%v,%v)", x[0], y[0], z[0])
	}
	if math.Abs(x[6]-h) > 1e-15 || math.Abs(y[6]-h) > 1e-15 || math.Abs(z[6]-h) > 1e-15 {
		t.Errorf("corner 6 at (%v,%v,%v), want (%v,%v,%v)", x[6], y[6], z[6], h, h, h)
	}
	if v := ElemVolume(&x, &y, &z); math.Abs(v-h*h*h) > 1e-12 {
		t.Errorf("element 0 volume %v, want %v", v, h*h*h)
	}
}

func TestTotalEnergy(t *testing.T) {
	d := NewSedov(DefaultConfig(3))
	if got := d.TotalEnergy(); got != d.E[0] {
		t.Errorf("TotalEnergy = %v, want %v (only origin has energy)", got, d.E[0])
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(30)
	if c.EdgeElems != 30 || c.NumReg != 11 || c.Balance != 1 || c.Cost != 1 {
		t.Errorf("DefaultConfig = %+v", c)
	}
}

func TestDomainDimensions(t *testing.T) {
	d := NewSedov(DefaultConfig(4))
	if d.NumElem() != 64 || d.NumNode() != 125 {
		t.Fatalf("dims: %d elems, %d nodes", d.NumElem(), d.NumNode())
	}
	if len(d.E) != 64 || len(d.X) != 125 || len(d.DelvXi) != 64 {
		t.Fatal("array lengths inconsistent with mesh")
	}
}
