package domain

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"lulesh/internal/mesh"
)

// The registered scenario names. Every Domain is stamped with the scenario
// that built it (Domain.Scenario); checkpoints persist the stamp so restore
// rebuilds the immutable topology through the same scenario.
const (
	ScenarioSedov    = "sedov"
	ScenarioPiston   = "piston"
	ScenarioMultimat = "multimat"
)

// ScenarioSpec selects a registered scenario plus its key=value options,
// as parsed from the CLI syntax "name:key=val,key=val". The zero value
// means "unspecified" and resolves to the Sedov default.
type ScenarioSpec struct {
	Name    string
	Options map[string]string
}

// String renders the canonical form of the spec: options sorted by key, so
// two equal specs always print identically (the form stamped into
// checkpoints and BENCH records).
func (s ScenarioSpec) String() string {
	if s.Name == "" {
		return ScenarioSedov
	}
	if len(s.Options) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Options))
	for k := range s.Options {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Options[k])
	}
	return b.String()
}

// Equal reports whether two specs select the same scenario with the same
// effective options. Compare normalized specs (as stamped on a Domain) so
// defaulted and explicit options agree.
func (s ScenarioSpec) Equal(o ScenarioSpec) bool {
	a, b := s, o
	if a.Name == "" {
		a.Name = ScenarioSedov
	}
	if b.Name == "" {
		b.Name = ScenarioSedov
	}
	if a.Name != b.Name || len(a.Options) != len(b.Options) {
		return false
	}
	for k, v := range a.Options {
		if bv, ok := b.Options[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// ParseScenarioSpec parses the CLI scenario syntax:
//
//	""                      -> sedov (the default)
//	"piston"                -> scenario with default options
//	"piston:speed=150"      -> scenario with one option
//	"multimat:regions=96,cost=9"
//
// Parsing is purely syntactic — unknown scenario names and option keys are
// rejected later by Build, which knows the registry. Errors are returned,
// never panicked, for any input (fuzzed).
func ParseScenarioSpec(in string) (ScenarioSpec, error) {
	if in == "" {
		return ScenarioSpec{Name: ScenarioSedov}, nil
	}
	name, rest, hasOpts := strings.Cut(in, ":")
	if name == "" {
		return ScenarioSpec{}, fmt.Errorf("scenario: empty name in %q", in)
	}
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
			return ScenarioSpec{}, fmt.Errorf("scenario: invalid character %q in name %q", r, name)
		}
	}
	spec := ScenarioSpec{Name: name}
	if !hasOpts {
		return spec, nil
	}
	if rest == "" {
		return ScenarioSpec{}, fmt.Errorf("scenario: trailing %q with no options in %q", ":", in)
	}
	spec.Options = make(map[string]string)
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" || v == "" {
			return ScenarioSpec{}, fmt.Errorf("scenario: option %q is not key=value in %q", kv, in)
		}
		if _, dup := spec.Options[k]; dup {
			return ScenarioSpec{}, fmt.Errorf("scenario: duplicate option %q in %q", k, in)
		}
		spec.Options[k] = v
	}
	return spec, nil
}

// UnknownScenarioError reports a spec naming a scenario that is not in the
// registry. It carries the sorted list of registered names so callers
// surfacing the error to users — luleshd's HTTP 400 responses in
// particular — can present the valid choices structurally instead of
// parsing the message.
type UnknownScenarioError struct {
	Name  string   // the unknown scenario name
	Known []string // registered scenario names, sorted
}

func (e *UnknownScenarioError) Error() string {
	return fmt.Sprintf("scenario: unknown scenario %q (have %s)",
		e.Name, strings.Join(e.Known, ", "))
}

// UnknownOptionError reports an option key a scenario does not document.
// Allowed lists the scenario's valid keys (empty when it takes none) so an
// HTTP 400 can tell the client exactly what would have been accepted.
type UnknownOptionError struct {
	Scenario string   // the scenario that rejected the key
	Key      string   // the unknown option key
	Allowed  []string // the scenario's documented keys, in doc order
}

func (e *UnknownOptionError) Error() string {
	if len(e.Allowed) == 0 {
		return fmt.Sprintf("scenario: %s takes no options, got %q", e.Scenario, e.Key)
	}
	return fmt.Sprintf("scenario: %s has no option %q (have %s)",
		e.Scenario, e.Key, strings.Join(e.Allowed, ", "))
}

// OptionDoc documents one scenario option for -h output and the README.
type OptionDoc struct {
	Key     string
	Default string
	Doc     string
}

// Scenario is the problem-setup seam: a registered initial condition
// (energy/velocity fields, boundary conditions, region assignment, time
// stepping) behind which every binary constructs its domains. All
// scenarios run the identical kernels; backends therefore stay bitwise
// comparable per scenario exactly as they are for Sedov.
type Scenario interface {
	// Name is the registry key (the CLI -scenario name).
	Name() string
	// Summary is a one-line physics description.
	Summary() string
	// Stresses says what runtime behaviour the scenario exercises.
	Stresses() string
	// Options documents the accepted key=value options.
	Options() []OptionDoc
	// Build constructs a domain for the box. It must validate opts
	// (unknown keys and out-of-range values are errors, never panics)
	// and stamp the returned Domain's Scenario with the full effective
	// option set, so rebuilt domains (checkpoint restore) are identical.
	Build(cfg BoxConfig, opts map[string]string) (*Domain, error)
}

var scenarios = map[string]Scenario{}

// RegisterScenario adds s to the registry. Duplicate names panic: the
// registry is populated at init time only.
func RegisterScenario(s Scenario) {
	if _, dup := scenarios[s.Name()]; dup {
		panic("domain: duplicate scenario " + s.Name())
	}
	scenarios[s.Name()] = s
}

// LookupScenario returns the registered scenario by name.
func LookupScenario(name string) (Scenario, bool) {
	s, ok := scenarios[name]
	return s, ok
}

// ScenarioNames lists the registered scenarios in sorted order.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuildScenario constructs a domain from a parsed spec. An empty name
// defaults to Sedov.
func BuildScenario(spec ScenarioSpec, cfg BoxConfig) (*Domain, error) {
	name := spec.Name
	if name == "" {
		name = ScenarioSedov
	}
	s, ok := scenarios[name]
	if !ok {
		return nil, &UnknownScenarioError{Name: name, Known: ScenarioNames()}
	}
	return s.Build(cfg, spec.Options)
}

// ValidateScenarioSpec checks that a spec names a registered scenario and
// that its options are acceptable, by building a minimal probe domain.
// Drivers call it once up front so per-rank construction (which has no
// error path) can rely on the spec being buildable.
func ValidateScenarioSpec(spec ScenarioSpec) error {
	_, err := NormalizeScenarioSpec(spec)
	return err
}

// NormalizeScenarioSpec resolves a user-written spec to its canonical
// stamped form — the name with every effective option filled in, exactly
// as Build stamps it on a Domain ("piston" -> "piston:speed=100"). Specs
// must be normalized before comparing a run's scenario against a
// checkpoint tag, which always carries the full option set.
func NormalizeScenarioSpec(spec ScenarioSpec) (ScenarioSpec, error) {
	d, err := BuildScenario(spec, BoxConfig{Nx: 1, Ny: 1, Nz: 1, NumReg: 1})
	if err != nil {
		return ScenarioSpec{}, err
	}
	return d.Scenario, nil
}

// BuildScenarioCube is BuildScenario for the classic cubic single-domain
// problem selected by a Config.
func BuildScenarioCube(spec ScenarioSpec, cfg Config) (*Domain, error) {
	return BuildScenario(spec, BoxConfig{
		Nx: cfg.EdgeElems, Ny: cfg.EdgeElems, Nz: cfg.EdgeElems,
		NumReg: cfg.NumReg, Balance: cfg.Balance, Cost: cfg.Cost,
		DepositEnergy: true,
	})
}

// optFloat reads a float option, enforcing [min, max]. NaN/Inf are
// rejected so fuzzing cannot smuggle a non-finite value into the physics.
func optFloat(opts map[string]string, key string, def, min, max float64) (float64, error) {
	raw, ok := opts[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("scenario: option %s=%q is not a finite number", key, raw)
	}
	if v < min || v > max {
		return 0, fmt.Errorf("scenario: option %s=%v outside [%v, %v]", key, v, min, max)
	}
	return v, nil
}

// optInt reads an integer option, enforcing [min, max].
func optInt(opts map[string]string, key string, def, min, max int) (int, error) {
	raw, ok := opts[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("scenario: option %s=%q is not an integer", key, raw)
	}
	if v < min || v > max {
		return 0, fmt.Errorf("scenario: option %s=%d outside [%d, %d]", key, v, min, max)
	}
	return v, nil
}

// checkKnown rejects option keys the scenario does not document. Keys are
// examined in sorted order so the reported offender is deterministic when
// several are unknown.
func checkKnown(name string, opts map[string]string, docs []OptionDoc) error {
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		known := false
		for _, d := range docs {
			if d.Key == k {
				known = true
				break
			}
		}
		if !known {
			allowed := make([]string, len(docs))
			for i, d := range docs {
				allowed[i] = d.Key
			}
			return &UnknownOptionError{Scenario: name, Key: k, Allowed: allowed}
		}
	}
	return nil
}

func init() {
	RegisterScenario(sedovScenario{})
	RegisterScenario(pistonScenario{})
	RegisterScenario(multimatScenario{})
}

// --- sedov -----------------------------------------------------------------

// sedovScenario is the classic LULESH 2.0 problem: all energy deposited in
// the origin element of a cold cube, expanding as a spherical blast wave.
type sedovScenario struct{}

func (sedovScenario) Name() string { return ScenarioSedov }
func (sedovScenario) Summary() string {
	return "spherical blast wave: all energy in the origin element of a cold cube"
}
func (sedovScenario) Stresses() string {
	return "the paper's baseline: radially growing active zone, mild region imbalance"
}
func (sedovScenario) Options() []OptionDoc { return nil }

func (s sedovScenario) Build(cfg BoxConfig, opts map[string]string) (*Domain, error) {
	if err := checkKnown(ScenarioSedov, opts, s.Options()); err != nil {
		return nil, err
	}
	if err := validateBox(cfg); err != nil {
		return nil, err
	}
	return NewSedovBox(cfg), nil
}

// --- piston ----------------------------------------------------------------

// pistonScenario drives a rigid wall into cold gas: the x-max face gets a
// constant inward velocity (held by a zero-x-acceleration boundary
// condition, the same mechanism as the symmetry planes), launching a
// planar shock that sweeps toward the x=0 symmetry plane. Unlike Sedov,
// the active zone is a moving slab: elements shock-heat in mesh order, so
// the load front migrates across partitions instead of growing radially.
type pistonScenario struct{}

func (pistonScenario) Name() string { return ScenarioPiston }
func (pistonScenario) Summary() string {
	return "impact driver: velocity BC on the x-max face, planar shock sweeping the mesh"
}
func (pistonScenario) Stresses() string {
	return "a load front migrating across partitions; work concentrated in a moving slab"
}
func (pistonScenario) Options() []OptionDoc {
	return []OptionDoc{
		{Key: "speed", Default: "100", Doc: "piston speed (inward, along -x); shock crosses the default cube near the default stop time"},
	}
}

func (s pistonScenario) Build(cfg BoxConfig, opts map[string]string) (*Domain, error) {
	if err := checkKnown(ScenarioPiston, opts, s.Options()); err != nil {
		return nil, err
	}
	if err := validateBox(cfg); err != nil {
		return nil, err
	}
	speed, err := optFloat(opts, "speed", 100, 1e-3, 1e6)
	if err != nil {
		return nil, err
	}
	d := newBox(cfg)
	m := d.Mesh

	// Re-flag the x-max face from a free surface to a moving rigid wall:
	// the monotonic-Q limiter then mirrors gradients there exactly as it
	// does on the symmetry planes.
	nx := m.Nx
	for e := 0; e < m.NumElem; e++ {
		if e%nx == nx-1 {
			m.ElemBC[e] = m.ElemBC[e]&^mesh.XiPFree | mesh.XiPSymm
		}
	}
	// Pin the x-acceleration of the face nodes (appending them to the
	// SymmX set keeps every backend's BC application identical) and give
	// them the piston's constant inward velocity.
	enx, eny, enz := m.Nx+1, m.Ny+1, m.Nz+1
	for k := 0; k < enz; k++ {
		for j := 0; j < eny; j++ {
			n := int32(k*enx*eny + j*enx + (enx - 1))
			m.SymmX = append(m.SymmX, n)
			m.SymmFlags[n] |= mesh.SymmFlagX
			d.Xd[n] = -speed
		}
	}

	// Conservative initial dt: the piston compresses the face cells by at
	// most 5% of an edge length in the first cycle; the Courant and hydro
	// constraints take over from cycle 1.
	spacing := cfg.Spacing
	if spacing == 0 {
		spacing = 1.125 / float64(cfg.Nx)
	}
	d.Deltatime = 0.05 * spacing / speed

	d.Scenario = ScenarioSpec{Name: ScenarioPiston, Options: map[string]string{
		"speed": strconv.FormatFloat(speed, 'g', -1, 64),
	}}
	return d, nil
}

// --- multimat --------------------------------------------------------------

// multimatScenario is the load-imbalance stress case: a Sedov-style blast
// through a mesh shattered into many small regions under the "extreme"
// cost model, cranking the region count and EOS repetition far past the
// paper's Table I setup. This is the regime the locality and
// adaptive-grain machinery exists for.
type multimatScenario struct{}

func (multimatScenario) Name() string { return ScenarioMultimat }
func (multimatScenario) Summary() string {
	return "blast through many small materials under the extreme region cost model"
}
func (multimatScenario) Stresses() string {
	return "region-count and cost imbalance far past Table I; scheduler load balancing"
}
func (multimatScenario) Options() []OptionDoc {
	return []OptionDoc{
		{Key: "regions", Default: "64", Doc: "material region count (1..512)"},
		{Key: "cost", Default: "5", Doc: "extra EOS cost multiplier (0..100)"},
		{Key: "balance", Default: "2", Doc: "region size weighting exponent (0..4)"},
	}
}

func (s multimatScenario) Build(cfg BoxConfig, opts map[string]string) (*Domain, error) {
	if err := checkKnown(ScenarioMultimat, opts, s.Options()); err != nil {
		return nil, err
	}
	if err := validateBox(cfg); err != nil {
		return nil, err
	}
	regions, err := optInt(opts, "regions", 64, 1, 512)
	if err != nil {
		return nil, err
	}
	cost, err := optInt(opts, "cost", 5, 0, 100)
	if err != nil {
		return nil, err
	}
	balance, err := optInt(opts, "balance", 2, 0, 4)
	if err != nil {
		return nil, err
	}
	c := cfg
	c.NumReg, c.Cost, c.Balance = regions, cost, balance
	d := newBox(c)
	d.Regions.Model = mesh.CostModelExtreme
	d.initSedovEnergy(c)
	d.Scenario = ScenarioSpec{Name: ScenarioMultimat, Options: map[string]string{
		"regions": strconv.Itoa(regions),
		"cost":    strconv.Itoa(cost),
		"balance": strconv.Itoa(balance),
	}}
	return d, nil
}

// validateBox rejects box dimensions a hostile (fuzzed) spec could use to
// allocate absurd amounts of memory, returning errors where the raw
// constructors would panic.
func validateBox(cfg BoxConfig) error {
	const maxEdge = 1 << 10
	if cfg.Nx < 1 || cfg.Ny < 1 || cfg.Nz < 1 {
		return fmt.Errorf("scenario: box dimensions must be >= 1, got %dx%dx%d",
			cfg.Nx, cfg.Ny, cfg.Nz)
	}
	if cfg.Nx > maxEdge || cfg.Ny > maxEdge || cfg.Nz > maxEdge {
		return fmt.Errorf("scenario: box dimensions must be <= %d, got %dx%dx%d",
			maxEdge, cfg.Nx, cfg.Ny, cfg.Nz)
	}
	if cfg.NumReg < 1 {
		return fmt.Errorf("scenario: NumReg must be >= 1, got %d", cfg.NumReg)
	}
	return nil
}
