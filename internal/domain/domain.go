// Package domain defines the central LULESH data structure: the Domain,
// which owns every node- and element-centred state array of the simulation,
// plus the Sedov blast wave initialization that the proxy application
// solves. It corresponds to the Domain class of LULESH 2.0.
package domain

import (
	"fmt"
	"math"

	"lulesh/internal/mesh"
)

// Domain holds the complete mutable state of one LULESH problem instance.
// Slices are indexed by node number or element number; see the Mesh for the
// index conventions.
type Domain struct {
	Mesh    *mesh.Mesh
	Regions *mesh.Regions
	Par     Params

	// Scenario identifies the problem setup that built this domain (name
	// plus full effective options); Box is the geometry it was built for.
	// Checkpoints persist both so restore rebuilds the same topology
	// through the scenario registry.
	Scenario ScenarioSpec
	Box      BoxConfig

	// Layout records how the field slices below are backed (see slab.go);
	// nodeSlab/elemSlab/gradSlab are the backing stores under LayoutSlab
	// and nil under LayoutScalar.
	Layout   Layout
	nodeSlab []float64
	elemSlab []float64
	gradSlab []float64

	// Node-centred state.
	X, Y, Z       []float64 // coordinates
	Xd, Yd, Zd    []float64 // velocities
	Xdd, Ydd, Zdd []float64 // accelerations
	Fx, Fy, Fz    []float64 // forces
	NodalMass     []float64

	// Element-centred state.
	E        []float64 // internal energy
	P        []float64 // pressure
	Q        []float64 // artificial viscosity
	Ql, Qq   []float64 // linear and quadratic terms for Q
	V        []float64 // relative volume
	Volo     []float64 // reference (initial) volume
	Vnew     []float64 // new relative volume, temporary per step
	Delv     []float64 // vnew - v
	Vdov     []float64 // volume derivative over volume
	Arealg   []float64 // element characteristic length
	SS       []float64 // sound speed
	ElemMass []float64

	// Principal strains, temporary per step.
	Dxx, Dyy, Dzz []float64

	// Velocity and position gradients, temporary per step.
	DelvXi, DelvEta, DelvZeta []float64
	DelxXi, DelxEta, DelxZeta []float64

	// Time stepping state.
	Time      float64
	Deltatime float64
	Dtcourant float64
	Dthydro   float64
	Cycle     int
}

// Config selects a problem instance.
type Config struct {
	EdgeElems int // problem size s (elements per edge)
	NumReg    int // number of material regions (reference default 11)
	Balance   int // region size weighting (reference -b, default 1)
	Cost      int // extra EOS cost multiplier (reference -c, default 1)
}

// DefaultConfig mirrors the reference defaults for a given problem size.
func DefaultConfig(edgeElems int) Config {
	return Config{EdgeElems: edgeElems, NumReg: 11, Balance: 1, Cost: 1}
}

// BoxConfig selects a general box-shaped (sub)domain, the building block
// of the multi-domain decomposition (internal/dist). The zero values of
// the extra fields reproduce the classic single-domain Sedov setup.
type BoxConfig struct {
	Nx, Ny, Nz int // elements per dimension
	NumReg     int
	Balance    int
	Cost       int

	// CommZMin / CommZMax mark zeta faces shared with neighbour domains.
	CommZMin, CommZMax bool

	// Spacing is the element edge length (0 = 1.125/Nx, the reference's
	// cube spacing). ZOffset shifts the box along z for stacked domains.
	Spacing float64
	ZOffset float64

	// EInit is the Sedov deposit used for the initial time-step formula
	// on every rank (0 = the reference formula scaled by Nx).
	// DepositEnergy controls whether this domain's element 0 actually
	// receives the energy — true only on the rank owning the global
	// origin.
	EInit         float64
	DepositEnergy bool

	// FieldLayout selects the field memory layout (see slab.go). The zero
	// value is LayoutSlab; old checkpoints decode to it, which is safe
	// because both layouts hold identical values at identical indices.
	FieldLayout Layout
}

// NewSedov allocates a Domain and initializes the spherical Sedov blast
// wave problem exactly as LULESH 2.0 does: a cube of edge length 1.125,
// unit relative volumes, all initial energy deposited in the origin
// element, and an initial time step derived from the origin element volume.
func NewSedov(cfg Config) *Domain {
	return NewSedovBox(BoxConfig{
		Nx: cfg.EdgeElems, Ny: cfg.EdgeElems, Nz: cfg.EdgeElems,
		NumReg: cfg.NumReg, Balance: cfg.Balance, Cost: cfg.Cost,
		DepositEnergy: true,
	})
}

// NewSedovBox allocates and initializes a general box (sub)domain.
func NewSedovBox(cfg BoxConfig) *Domain {
	d := newBox(cfg)
	d.initSedovEnergy(cfg)
	d.Scenario = ScenarioSpec{Name: ScenarioSedov}
	return d
}

// newBox allocates a domain and builds everything every scenario shares:
// mesh topology, state arrays, node coordinates, reference volumes and
// masses, unit relative volumes, and a reset clock. Scenarios layer their
// initial energy/velocity fields, boundary conditions and initial time
// step on top.
func newBox(cfg BoxConfig) *Domain {
	if cfg.NumReg < 1 {
		panic(fmt.Sprintf("domain: NumReg must be >= 1, got %d", cfg.NumReg))
	}
	m := mesh.NewBox(cfg.Nx, cfg.Ny, cfg.Nz,
		mesh.WithCommZ(cfg.CommZMin, cfg.CommZMax))
	d := &Domain{
		Mesh:    m,
		Regions: mesh.NewRegions(m, cfg.NumReg, cfg.Balance, cfg.Cost),
		Par:     DefaultParams(),
		Box:     cfg,
	}
	nn, ne := m.NumNode, m.NumElem

	// Field arrays: SoA planes, slab-backed by default (the gradient
	// planes carry ghost slots for COMM faces; see slab.go).
	d.allocFields(nn, ne, m.NumElemGhost, cfg.FieldLayout)

	// Node coordinates: the classic cube spans [0, 1.125] per dimension;
	// stacked boxes use the same spacing shifted by ZOffset.
	sz := cfg.Spacing
	if sz == 0 {
		sz = 1.125 / float64(cfg.Nx)
	}
	nidx := 0
	for plane := 0; plane <= cfg.Nz; plane++ {
		tz := cfg.ZOffset + sz*float64(plane)
		for row := 0; row <= cfg.Ny; row++ {
			ty := sz * float64(row)
			for col := 0; col <= cfg.Nx; col++ {
				d.X[nidx] = sz * float64(col)
				d.Y[nidx] = ty
				d.Z[nidx] = tz
				nidx++
			}
		}
	}

	// Element reference volumes and masses.
	var xl, yl, zl [8]float64
	for e := 0; e < ne; e++ {
		nl := m.Nodelist[8*e : 8*e+8]
		for c := 0; c < 8; c++ {
			xl[c] = d.X[nl[c]]
			yl[c] = d.Y[nl[c]]
			zl[c] = d.Z[nl[c]]
		}
		vol := ElemVolume(&xl, &yl, &zl)
		d.Volo[e] = vol
		d.ElemMass[e] = vol
		for c := 0; c < 8; c++ {
			d.NodalMass[nl[c]] += vol / 8.0
		}
		d.V[e] = 1.0
	}

	d.Dtcourant = 1.0e20
	d.Dthydro = 1.0e20
	d.Time = 0
	d.Cycle = 0
	return d
}

// initSedovEnergy deposits the Sedov blast energy in the origin element,
// scaled so the problem is self-similar across mesh sizes, and derives the
// reference's initial time increment. Non-origin ranks of a multi-domain
// run use the same einit for the time-step formula but deposit nothing.
func (d *Domain) initSedovEnergy(cfg BoxConfig) {
	einit := cfg.EInit
	if einit == 0 {
		scale := float64(cfg.Nx) / 45.0
		einit = 3.948746e+7 * scale * scale * scale
	}
	if cfg.DepositEnergy {
		d.E[0] = einit
	}
	d.Deltatime = (0.5 * math.Cbrt(d.Volo[0])) / math.Sqrt(2.0*einit)
}

// NumElem is the number of mesh elements.
func (d *Domain) NumElem() int { return d.Mesh.NumElem }

// NumNode is the number of mesh nodes.
func (d *Domain) NumNode() int { return d.Mesh.NumNode }

// ElemVolume computes the volume of a hexahedral element from its corner
// coordinates using the triple-product formula of LULESH (CalcElemVolume).
func ElemVolume(x, y, z *[8]float64) float64 {
	const twelveth = 1.0 / 12.0

	dx61 := x[6] - x[1]
	dy61 := y[6] - y[1]
	dz61 := z[6] - z[1]

	dx70 := x[7] - x[0]
	dy70 := y[7] - y[0]
	dz70 := z[7] - z[0]

	dx63 := x[6] - x[3]
	dy63 := y[6] - y[3]
	dz63 := z[6] - z[3]

	dx20 := x[2] - x[0]
	dy20 := y[2] - y[0]
	dz20 := z[2] - z[0]

	dx50 := x[5] - x[0]
	dy50 := y[5] - y[0]
	dz50 := z[5] - z[0]

	dx64 := x[6] - x[4]
	dy64 := y[6] - y[4]
	dz64 := z[6] - z[4]

	dx31 := x[3] - x[1]
	dy31 := y[3] - y[1]
	dz31 := z[3] - z[1]

	dx72 := x[7] - x[2]
	dy72 := y[7] - y[2]
	dz72 := z[7] - z[2]

	dx43 := x[4] - x[3]
	dy43 := y[4] - y[3]
	dz43 := z[4] - z[3]

	dx57 := x[5] - x[7]
	dy57 := y[5] - y[7]
	dz57 := z[5] - z[7]

	dx14 := x[1] - x[4]
	dy14 := y[1] - y[4]
	dz14 := z[1] - z[4]

	dx25 := x[2] - x[5]
	dy25 := y[2] - y[5]
	dz25 := z[2] - z[5]

	tp := func(x1, y1, z1, x2, y2, z2, x3, y3, z3 float64) float64 {
		return x1*(y2*z3-z2*y3) + x2*(z1*y3-y1*z3) + x3*(y1*z2-z1*y2)
	}

	volume := tp(dx31+dx72, dx63, dx20, dy31+dy72, dy63, dy20, dz31+dz72, dz63, dz20) +
		tp(dx43+dx57, dx64, dx70, dy43+dy57, dy64, dy70, dz43+dz57, dz64, dz70) +
		tp(dx14+dx25, dx61, dx50, dy14+dy25, dy61, dy50, dz14+dz25, dz61, dz50)

	return volume * twelveth
}

// CollectElemNodes gathers the coordinates of element e's corner nodes.
func (d *Domain) CollectElemNodes(e int, x, y, z *[8]float64) {
	nl := d.Mesh.Nodelist[8*e : 8*e+8]
	for c := 0; c < 8; c++ {
		x[c] = d.X[nl[c]]
		y[c] = d.Y[nl[c]]
		z[c] = d.Z[nl[c]]
	}
}

// TotalEnergy sums element internal energies (diagnostic; the Sedov blast
// problem reports the origin element energy as its figure of merit).
func (d *Domain) TotalEnergy() float64 {
	t := 0.0
	for _, e := range d.E {
		t += e
	}
	return t
}
