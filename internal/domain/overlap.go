package domain

// Boundary-first scheduling support: a partition-level classification of
// an index space into the spans that touch a communicated z-face and the
// span that does not. The distributed driver computes and posts the
// boundary spans first, overlaps the interior with the in-flight
// exchange, and joins the receive only in front of the work that really
// depends on remote data — the paper's continuation trick applied to the
// ghost protocol.
//
// One plan serves every index space of a slab decomposition, because all
// of them are plane-major along zeta: element indices (plane size Nx·Ny),
// node indices (plane size (Nx+1)·(Ny+1)), and any index list over either
// space (region element lists, symmetry-plane node lists) split with the
// same predicate.

// Span is a half-open index range [Lo, Hi).
type Span struct {
	Lo, Hi int
}

// Len reports the number of indices the span covers.
func (s Span) Len() int { return s.Hi - s.Lo }

// Empty reports whether the span covers nothing.
func (s Span) Empty() bool { return s.Hi <= s.Lo }

// OverlapPlan classifies one plane-major index space of length N into
// boundary spans (indices whose z-plane is shared with a neighbouring
// rank) and the interior span between them. The spans partition [0, N)
// exactly: every index is in precisely one span, which the tests prove by
// exact cover.
type OverlapPlan struct {
	N     int  // index space length
	Plane int  // indices per z-plane
	Lower bool // plane 0 is a communicated face
	Upper bool // the last plane is a communicated face

	// Boundary holds the communicated-face spans in ascending order
	// (at most two; one when the faces coincide on a single-plane slab).
	Boundary []Span

	// Interior is the remaining span (possibly empty).
	Interior Span
}

// NewOverlapPlan builds the classification for an index space of length n
// with the given plane size and communicated faces. A slab thin enough
// that the two faces meet (n <= 2*plane with both faces present)
// degenerates to one boundary span covering everything — the plan never
// double-counts an index.
func NewOverlapPlan(n, plane int, lower, upper bool) OverlapPlan {
	p := OverlapPlan{N: n, Plane: plane, Lower: lower, Upper: upper}
	lo, hi := 0, n
	if lower {
		lo = plane
		if lo > n {
			lo = n
		}
	}
	if upper {
		hi = n - plane
		if hi < lo {
			hi = lo
		}
	}
	if lower && upper && lo >= hi {
		// The faces overlap or touch with nothing between them: one merged
		// boundary span, empty interior.
		p.Boundary = []Span{{0, n}}
		p.Interior = Span{lo, lo}
		return p
	}
	if lower && lo > 0 {
		p.Boundary = append(p.Boundary, Span{0, lo})
	}
	if upper && hi < n {
		p.Boundary = append(p.Boundary, Span{hi, n})
	}
	p.Interior = Span{lo, hi}
	return p
}

// IsBoundary reports whether index i falls in a communicated-face span.
func (p OverlapPlan) IsBoundary(i int) bool {
	for _, s := range p.Boundary {
		if i >= s.Lo && i < s.Hi {
			return true
		}
	}
	return false
}

// SplitIndexList partitions an index list over this plan's space into its
// boundary and interior sublists, preserving the list's order within each
// — so iterating boundary-then-interior (or the reverse) visits exactly
// the original elements, each once, and per-element arithmetic stays
// bitwise independent of the split.
func (p OverlapPlan) SplitIndexList(list []int32) (boundary, interior []int32) {
	if len(p.Boundary) == 0 {
		return nil, list
	}
	nb := 0
	for _, i := range list {
		if p.IsBoundary(int(i)) {
			nb++
		}
	}
	if nb == 0 {
		return nil, list
	}
	if nb == len(list) {
		return list, nil
	}
	boundary = make([]int32, 0, nb)
	interior = make([]int32, 0, len(list)-nb)
	for _, i := range list {
		if p.IsBoundary(int(i)) {
			boundary = append(boundary, i)
		} else {
			interior = append(interior, i)
		}
	}
	return boundary, interior
}
