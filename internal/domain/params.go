package domain

// Params collects every tunable constant of the LULESH 2.0 Sedov problem.
// Field names and defaults match the reference implementation's Domain
// accessors (lulesh-init.cc).
type Params struct {
	// Cutoffs below which small values are snapped to zero.
	ECut float64 // energy tolerance
	PCut float64 // pressure tolerance
	QCut float64 // artificial viscosity tolerance
	VCut float64 // relative volume tolerance
	UCut float64 // velocity tolerance

	// Other constants.
	HGCoef           float64 // hourglass control coefficient
	SS4o3            float64 // 4/3, used by the sound-speed constraint
	QStop            float64 // excessive q indicator
	MonoqMaxSlope    float64
	MonoqLimiterMult float64
	QlcMonoq         float64 // linear term coefficient for q
	QqcMonoq         float64 // quadratic term coefficient for q
	Qqc              float64
	EOSvMax          float64
	EOSvMin          float64
	Pmin             float64 // pressure floor
	Emin             float64 // energy floor
	Dvovmax          float64 // maximum allowable volume change
	RefDens          float64 // reference density

	// Time stepping.
	DtFixed         float64 // fixed dt when > 0, variable dt when <= 0
	DeltaTimeMultLB float64
	DeltaTimeMultUB float64
	DtMax           float64
	StopTime        float64
}

// DefaultParams returns the LULESH 2.0 defaults for the Sedov problem.
func DefaultParams() Params {
	return Params{
		ECut: 1.0e-7,
		PCut: 1.0e-7,
		QCut: 1.0e-7,
		VCut: 1.0e-10,
		UCut: 1.0e-7,

		HGCoef:           3.0,
		SS4o3:            4.0 / 3.0,
		QStop:            1.0e12,
		MonoqMaxSlope:    1.0,
		MonoqLimiterMult: 2.0,
		QlcMonoq:         0.5,
		QqcMonoq:         2.0 / 3.0,
		Qqc:              2.0,
		EOSvMax:          1.0e9,
		EOSvMin:          1.0e-9,
		Pmin:             0.0,
		Emin:             -1.0e15,
		Dvovmax:          0.1,
		RefDens:          1.0,

		DtFixed:         -1.0e-6,
		DeltaTimeMultLB: 1.1,
		DeltaTimeMultUB: 1.2,
		DtMax:           1.0e-2,
		StopTime:        1.0e-2,
	}
}
