package domain

import (
	"testing"
)

// FuzzParseScenarioSpec: the CLI scenario syntax must error on malformed
// input, never panic, and every accepted spec must render a canonical
// String that re-parses to an equal spec.
func FuzzParseScenarioSpec(f *testing.F) {
	for _, seed := range []string{
		"", "sedov", "piston", "piston:speed=150", "multimat:regions=96,cost=9",
		"multimat:balance=2,cost=5,regions=64", ":x=1", "a:", "a:b", "a:=1",
		"a:b=,c=2", "a:b=1,b=2", "p!ston:speed=1", "piston:speed=1e309",
		"piston:speed=NaN", "multimat:regions=99999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseScenarioSpec(in)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		// Canonical form must round-trip.
		back, err := ParseScenarioSpec(spec.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v",
				spec.String(), in, err)
		}
		if !back.Equal(spec) {
			t.Fatalf("round trip %q -> %q -> %+v != %+v", in, spec.String(), back, spec)
		}
	})
}

// FuzzBuildScenario: building from any parsed spec must either error or
// produce a well-formed domain whose region element lists exactly cover
// the element set — the property the per-region kernels depend on.
// Build must never panic and never allocate unboundedly (option ranges
// are clamped).
func FuzzBuildScenario(f *testing.F) {
	for _, seed := range []string{
		"sedov", "piston", "piston:speed=0.001", "piston:speed=1000000",
		"multimat", "multimat:regions=1", "multimat:regions=512,cost=100,balance=4",
		"multimat:regions=513", "multimat:cost=101", "unknown",
	} {
		f.Add(seed, 3)
	}
	f.Fuzz(func(t *testing.T, in string, size int) {
		spec, err := ParseScenarioSpec(in)
		if err != nil {
			return
		}
		if size < 1 || size > 6 {
			size = 2 + (abs(size) % 4) // keep fuzz iterations cheap
		}
		d, err := BuildScenarioCube(spec, DefaultConfig(size))
		if err != nil {
			return
		}
		if d == nil {
			t.Fatalf("BuildScenarioCube(%q) returned nil without error", in)
		}
		if d.Scenario.Name == "" {
			t.Fatalf("built domain not stamped with its scenario (%q)", in)
		}
		// Stamped spec must rebuild an identically-shaped domain — the
		// checkpoint-restore contract.
		again, err := BuildScenario(d.Scenario, d.Box)
		if err != nil {
			t.Fatalf("stamped spec %q does not rebuild: %v", d.Scenario.String(), err)
		}
		if again.NumElem() != d.NumElem() || again.Regions.NumReg != d.Regions.NumReg {
			t.Fatalf("rebuild of %q changed shape", d.Scenario.String())
		}
		assertRegionCover(t, in, d)
	})
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // MinInt
			return 0
		}
		return -v
	}
	return v
}
