package domain

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestUnknownScenarioErrorStructured: BuildScenario must reject unknown
// scenario names with a typed error carrying the full registry, so an
// HTTP layer can render the valid choices without parsing the message.
func TestUnknownScenarioErrorStructured(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"misspelled", "sedovv"},
		{"case-sensitive", "piston2"},
		{"plausible", "blast"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := BuildScenarioCube(ScenarioSpec{Name: tc.in}, DefaultConfig(4))
			if err == nil {
				t.Fatalf("scenario %q accepted", tc.in)
			}
			var use *UnknownScenarioError
			if !errors.As(err, &use) {
				t.Fatalf("error %T is not *UnknownScenarioError: %v", err, err)
			}
			if use.Name != tc.in {
				t.Errorf("Name = %q, want %q", use.Name, tc.in)
			}
			if !reflect.DeepEqual(use.Known, ScenarioNames()) {
				t.Errorf("Known = %v, want %v", use.Known, ScenarioNames())
			}
			for _, n := range use.Known {
				if !strings.Contains(err.Error(), n) {
					t.Errorf("message %q does not list valid scenario %q", err, n)
				}
			}
		})
	}
}

// TestUnknownOptionErrorStructured: every scenario must reject unknown
// option keys with a typed error naming the key and the scenario's valid
// keys — the structure luleshd's 400 responses expose to clients.
func TestUnknownOptionErrorStructured(t *testing.T) {
	cases := []struct {
		name        string
		spec        ScenarioSpec
		wantKey     string
		wantAllowed []string
	}{
		{
			name:        "sedov takes no options",
			spec:        ScenarioSpec{Name: "sedov", Options: map[string]string{"speed": "3"}},
			wantKey:     "speed",
			wantAllowed: []string{},
		},
		{
			name:        "piston misspelled key",
			spec:        ScenarioSpec{Name: "piston", Options: map[string]string{"sped": "3"}},
			wantKey:     "sped",
			wantAllowed: []string{"speed"},
		},
		{
			name: "multimat foreign key",
			spec: ScenarioSpec{Name: "multimat",
				Options: map[string]string{"speed": "3"}},
			wantKey:     "speed",
			wantAllowed: []string{"regions", "cost", "balance"},
		},
		{
			name: "deterministic offender with several unknown keys",
			spec: ScenarioSpec{Name: "multimat",
				Options: map[string]string{"zzz": "1", "aaa": "1"}},
			wantKey:     "aaa", // sorted order: aaa reported first
			wantAllowed: []string{"regions", "cost", "balance"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := BuildScenarioCube(tc.spec, DefaultConfig(4))
			if err == nil {
				t.Fatalf("spec %v accepted", tc.spec)
			}
			var uoe *UnknownOptionError
			if !errors.As(err, &uoe) {
				t.Fatalf("error %T is not *UnknownOptionError: %v", err, err)
			}
			if uoe.Scenario != tc.spec.Name {
				t.Errorf("Scenario = %q, want %q", uoe.Scenario, tc.spec.Name)
			}
			if uoe.Key != tc.wantKey {
				t.Errorf("Key = %q, want %q", uoe.Key, tc.wantKey)
			}
			if len(uoe.Allowed) != len(tc.wantAllowed) {
				t.Fatalf("Allowed = %v, want %v", uoe.Allowed, tc.wantAllowed)
			}
			for i := range uoe.Allowed {
				if uoe.Allowed[i] != tc.wantAllowed[i] {
					t.Fatalf("Allowed = %v, want %v", uoe.Allowed, tc.wantAllowed)
				}
			}
			// The message itself must name the offender and each valid key.
			if !strings.Contains(err.Error(), tc.wantKey) {
				t.Errorf("message %q does not name the unknown key %q", err, tc.wantKey)
			}
			for _, k := range tc.wantAllowed {
				if !strings.Contains(err.Error(), k) {
					t.Errorf("message %q does not list valid key %q", err, k)
				}
			}
		})
	}
}

// TestValidateScenarioSpecStructuredErrors: the up-front validation path
// used by drivers (and luleshd admission) must surface the same typed
// errors as Build.
func TestValidateScenarioSpecStructuredErrors(t *testing.T) {
	var use *UnknownScenarioError
	if err := ValidateScenarioSpec(ScenarioSpec{Name: "nope"}); !errors.As(err, &use) {
		t.Fatalf("ValidateScenarioSpec(unknown name) = %v, want *UnknownScenarioError", err)
	}
	var uoe *UnknownOptionError
	err := ValidateScenarioSpec(ScenarioSpec{Name: "piston",
		Options: map[string]string{"bogus": "1"}})
	if !errors.As(err, &uoe) {
		t.Fatalf("ValidateScenarioSpec(unknown option) = %v, want *UnknownOptionError", err)
	}
	if uoe.Key != "bogus" || uoe.Scenario != "piston" {
		t.Fatalf("got %+v, want Key=bogus Scenario=piston", uoe)
	}
}
