package domain

import (
	"testing"

	"lulesh/internal/mesh"
)

func TestParseScenarioSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    ScenarioSpec
		wantErr bool
	}{
		{in: "", want: ScenarioSpec{Name: "sedov"}},
		{in: "sedov", want: ScenarioSpec{Name: "sedov"}},
		{in: "piston", want: ScenarioSpec{Name: "piston"}},
		{in: "piston:speed=150", want: ScenarioSpec{Name: "piston",
			Options: map[string]string{"speed": "150"}}},
		{in: "multimat:regions=96,cost=9", want: ScenarioSpec{Name: "multimat",
			Options: map[string]string{"regions": "96", "cost": "9"}}},
		{in: ":speed=1", wantErr: true},      // empty name
		{in: "piston:", wantErr: true},       // trailing colon
		{in: "piston:speed", wantErr: true},  // not key=value
		{in: "piston:=5", wantErr: true},     // empty key
		{in: "piston:speed=", wantErr: true}, // empty value
		{in: "pis ton:a=1", wantErr: true},   // bad name character
		{in: "p:a=1,a=2", wantErr: true},     // duplicate key
		{in: "Sedov", wantErr: true},         // names are lower-case
	}
	for _, tc := range cases {
		got, err := ParseScenarioSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseScenarioSpec(%q): want error, got %+v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseScenarioSpec(%q): %v", tc.in, err)
			continue
		}
		if !got.Equal(tc.want) || got.Name != tc.want.Name {
			t.Errorf("ParseScenarioSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestScenarioSpecStringCanonical(t *testing.T) {
	s := ScenarioSpec{Name: "multimat",
		Options: map[string]string{"regions": "96", "balance": "2", "cost": "9"}}
	want := "multimat:balance=2,cost=9,regions=96"
	for i := 0; i < 10; i++ { // map order must never leak
		if got := s.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
	if (ScenarioSpec{}).String() != "sedov" {
		t.Fatalf("zero spec should print as sedov")
	}
	// String round-trips through the parser.
	back, err := ParseScenarioSpec(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round-trip %q -> %+v != %+v", s.String(), back, s)
	}
}

func TestScenarioSpecEqual(t *testing.T) {
	if !(ScenarioSpec{}).Equal(ScenarioSpec{Name: "sedov"}) {
		t.Error("zero spec should equal explicit sedov")
	}
	a := ScenarioSpec{Name: "piston", Options: map[string]string{"speed": "100"}}
	b := ScenarioSpec{Name: "piston", Options: map[string]string{"speed": "101"}}
	if a.Equal(b) {
		t.Error("different option values should not be equal")
	}
	if a.Equal(ScenarioSpec{Name: "piston"}) {
		t.Error("different option sets should not be equal")
	}
}

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	for _, want := range []string{"sedov", "piston", "multimat"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("scenario %q not registered (have %v)", want, names)
		}
		s, ok := LookupScenario(want)
		if !ok || s.Name() != want {
			t.Errorf("LookupScenario(%q) = %v, %v", want, s, ok)
		}
		if s, _ := LookupScenario(want); s.Summary() == "" || s.Stresses() == "" {
			t.Errorf("scenario %q must document itself", want)
		}
	}
	if _, err := BuildScenario(ScenarioSpec{Name: "nope"}, BoxConfig{Nx: 2, Ny: 2, Nz: 2, NumReg: 1}); err == nil {
		t.Error("unknown scenario must be rejected")
	}
}

func TestSedovScenarioMatchesNewSedov(t *testing.T) {
	cfg := DefaultConfig(6)
	ref := NewSedov(cfg)
	got, err := BuildScenarioCube(ScenarioSpec{Name: "sedov"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.E[0] != ref.E[0] || got.Deltatime != ref.Deltatime ||
		got.NumElem() != ref.NumElem() {
		t.Fatalf("sedov scenario diverges from NewSedov: e0 %v vs %v", got.E[0], ref.E[0])
	}
	if got.Scenario.Name != "sedov" || ref.Scenario.Name != "sedov" {
		t.Fatalf("sedov domains must be stamped, got %q / %q",
			got.Scenario.Name, ref.Scenario.Name)
	}
	if err := checkKnownStrict(t, "sedov", "speed"); err == nil {
		t.Error("sedov must reject options")
	}
}

func checkKnownStrict(t *testing.T, name, key string) error {
	t.Helper()
	_, err := BuildScenarioCube(ScenarioSpec{Name: name,
		Options: map[string]string{key: "1"}}, DefaultConfig(2))
	return err
}

func TestPistonScenarioSetup(t *testing.T) {
	d, err := BuildScenarioCube(ScenarioSpec{Name: "piston"}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	m := d.Mesh
	// No energy anywhere: the piston shocks cold gas.
	for e, en := range d.E {
		if en != 0 {
			t.Fatalf("E[%d] = %v, want 0", e, en)
		}
	}
	// Every x-max face node carries the inward speed and a pinned
	// x-acceleration; everything else is at rest.
	enx := m.Nx + 1
	for n := 0; n < m.NumNode; n++ {
		onFace := n%enx == enx-1
		if onFace {
			if d.Xd[n] != -100 {
				t.Fatalf("face node %d: Xd = %v, want -100", n, d.Xd[n])
			}
			if m.SymmFlags[n]&mesh.SymmFlagX == 0 {
				t.Fatalf("face node %d: x-acceleration not pinned", n)
			}
		} else if d.Xd[n] != 0 {
			t.Fatalf("interior node %d: Xd = %v, want 0", n, d.Xd[n])
		}
	}
	// Face elements switched from free surface to moving wall.
	for e := 0; e < m.NumElem; e++ {
		bc := m.ElemBC[e]
		if e%m.Nx == m.Nx-1 {
			if bc&mesh.XiPSymm == 0 || bc&mesh.XiPFree != 0 {
				t.Fatalf("face elem %d: BC %#x not a moving wall", e, bc)
			}
		} else if bc&mesh.XiP != 0 {
			t.Fatalf("interior elem %d: unexpected xi-p BC %#x", e, bc)
		}
	}
	if d.Deltatime <= 0 {
		t.Fatal("piston must set an initial time step")
	}
	if got := d.Scenario.String(); got != "piston:speed=100" {
		t.Fatalf("normalized spec = %q", got)
	}

	// The speed option steers both the face velocity and the stamp.
	fast, err := BuildScenarioCube(ScenarioSpec{Name: "piston",
		Options: map[string]string{"speed": "250"}}, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Xd[enx-1] != -250 {
		t.Fatalf("speed option ignored: Xd = %v", fast.Xd[enx-1])
	}
	if fast.Scenario.String() != "piston:speed=250" {
		t.Fatalf("normalized spec = %q", fast.Scenario.String())
	}

	for _, bad := range []string{"0", "-5", "nan", "inf", "1e300", "x"} {
		if _, err := BuildScenarioCube(ScenarioSpec{Name: "piston",
			Options: map[string]string{"speed": bad}}, DefaultConfig(4)); err == nil {
			t.Errorf("speed=%q must be rejected", bad)
		}
	}
}

func TestMultimatScenarioSetup(t *testing.T) {
	d, err := BuildScenarioCube(ScenarioSpec{Name: "multimat"}, DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if d.Regions.NumReg != 64 || d.Regions.Cost != 5 || d.Regions.Balance != 2 {
		t.Fatalf("defaults not applied: %d regions, cost %d, balance %d",
			d.Regions.NumReg, d.Regions.Cost, d.Regions.Balance)
	}
	if d.Regions.Model != mesh.CostModelExtreme {
		t.Fatalf("cost model = %q, want extreme", d.Regions.Model)
	}
	if d.E[0] == 0 {
		t.Fatal("multimat deposits blast energy at the origin")
	}
	// The extreme model must actually produce a wider rep spread than the
	// reference model with the same parameters.
	maxRef, maxExt := 0, 0
	ref := *d.Regions
	ref.Model = mesh.CostModelReference
	for r := 0; r < d.Regions.NumReg; r++ {
		if v := ref.Rep(r); v > maxRef {
			maxRef = v
		}
		if v := d.Regions.Rep(r); v > maxExt {
			maxExt = v
		}
	}
	if maxExt < 5*maxRef {
		t.Fatalf("extreme model top rep %d not cranked past reference %d", maxExt, maxRef)
	}
	if got := d.Scenario.String(); got != "multimat:balance=2,cost=5,regions=64" {
		t.Fatalf("normalized spec = %q", got)
	}

	over, err := BuildScenarioCube(ScenarioSpec{Name: "multimat",
		Options: map[string]string{"regions": "96", "cost": "9", "balance": "1"}},
		DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if over.Regions.NumReg != 96 || over.Regions.Cost != 9 || over.Regions.Balance != 1 {
		t.Fatalf("options not applied: %+v", over.Regions)
	}
	for k, v := range map[string]string{
		"regions": "0", "cost": "-1", "balance": "9", "regions2": "1",
	} {
		if _, err := BuildScenarioCube(ScenarioSpec{Name: "multimat",
			Options: map[string]string{k: v}}, DefaultConfig(4)); err == nil {
			t.Errorf("%s=%s must be rejected", k, v)
		}
	}
}

// TestScenarioRegionExactCover: for every scenario, the region element
// lists must partition the element set exactly — each element in exactly
// one region, in ascending order. This is the invariant the kernels'
// per-region loops rely on for bitwise reproducibility.
func TestScenarioRegionExactCover(t *testing.T) {
	for _, name := range ScenarioNames() {
		d, err := BuildScenarioCube(ScenarioSpec{Name: name}, DefaultConfig(5))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertRegionCover(t, name, d)
	}
}

func assertRegionCover(t *testing.T, name string, d *Domain) {
	t.Helper()
	seen := make([]int, d.NumElem())
	for r, list := range d.Regions.ElemList {
		prev := int32(-1)
		for _, e := range list {
			if e < 0 || int(e) >= d.NumElem() {
				t.Fatalf("%s: region %d holds out-of-range element %d", name, r, e)
			}
			if e <= prev {
				t.Fatalf("%s: region %d not ascending at element %d", name, r, e)
			}
			prev = e
			seen[e]++
			if d.Regions.RegNumList[e] != int32(r+1) {
				t.Fatalf("%s: element %d RegNumList %d != region %d",
					name, e, d.Regions.RegNumList[e], r+1)
			}
		}
	}
	for e, n := range seen {
		if n != 1 {
			t.Fatalf("%s: element %d covered %d times", name, e, n)
		}
	}
}
