package domain

import "testing"

// TestSlabScalarInitIdentical builds the same scenario under both layouts
// and checks every field holds identical values at identical indices —
// the invariant that makes the layouts interchangeable.
func TestSlabScalarInitIdentical(t *testing.T) {
	for _, spec := range []ScenarioSpec{
		{Name: ScenarioSedov},
		{Name: ScenarioPiston, Options: map[string]string{"speed": "100"}},
		{Name: ScenarioMultimat},
	} {
		cfg := BoxConfig{Nx: 5, Ny: 5, Nz: 5, NumReg: 7, Balance: 1, Cost: 2,
			DepositEnergy: true}
		slab, err := BuildScenario(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FieldLayout = LayoutScalar
		scalar, err := BuildScenario(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if slab.Layout != LayoutSlab || scalar.Layout != LayoutScalar {
			t.Fatalf("%s: layouts %v / %v", spec.Name, slab.Layout, scalar.Layout)
		}
		pairs := []struct {
			name string
			a, b []float64
		}{
			{"X", slab.X, scalar.X}, {"Y", slab.Y, scalar.Y}, {"Z", slab.Z, scalar.Z},
			{"E", slab.E, scalar.E}, {"P", slab.P, scalar.P},
			{"V", slab.V, scalar.V}, {"Volo", slab.Volo, scalar.Volo},
			{"ElemMass", slab.ElemMass, scalar.ElemMass},
			{"NodalMass", slab.NodalMass, scalar.NodalMass},
		}
		for _, pr := range pairs {
			if len(pr.a) != len(pr.b) {
				t.Fatalf("%s/%s: lengths %d vs %d", spec.Name, pr.name, len(pr.a), len(pr.b))
			}
			for i := range pr.a {
				if pr.a[i] != pr.b[i] {
					t.Fatalf("%s/%s[%d]: %v vs %v", spec.Name, pr.name, i, pr.a[i], pr.b[i])
				}
			}
		}
	}
}

// TestSlabViewsCapacityCapped checks that every plane carved from a slab
// is capacity-capped: growing one plane must reallocate, never spill into
// the neighbouring plane's storage.
func TestSlabViewsCapacityCapped(t *testing.T) {
	d := NewSedov(DefaultConfig(4))
	nodePlanes := [][]float64{d.X, d.Y, d.Z, d.Xd, d.Yd, d.Zd,
		d.Xdd, d.Ydd, d.Zdd, d.Fx, d.Fy, d.Fz, d.NodalMass}
	elemPlanes := [][]float64{d.E, d.P, d.Q, d.Ql, d.Qq, d.V, d.Volo,
		d.Vnew, d.Delv, d.Vdov, d.Arealg, d.SS, d.ElemMass,
		d.Dxx, d.Dyy, d.Dzz, d.DelxXi, d.DelxEta, d.DelxZeta,
		d.DelvXi, d.DelvEta, d.DelvZeta}
	for i, p := range append(nodePlanes, elemPlanes...) {
		if cap(p) != len(p) {
			t.Fatalf("plane %d: cap %d > len %d (append could bleed into the next plane)",
				i, cap(p), len(p))
		}
	}
}

// TestBlockViewsAliasPlanes checks NodeBlock and ElemBlock hand out
// windows of the planes themselves, not copies: a write through the block
// must land in the domain's field.
func TestBlockViewsAliasPlanes(t *testing.T) {
	d := NewSedov(DefaultConfig(4))
	lo, hi := 3, 17

	nb := d.NodeBlock(lo, hi)
	if len(nb.X) != hi-lo || len(nb.Mass) != hi-lo {
		t.Fatalf("node block window: %d, want %d", len(nb.X), hi-lo)
	}
	nb.Fx[0] = 42.5
	if d.Fx[lo] != 42.5 {
		t.Fatal("NodeBlock.Fx is not a view of d.Fx")
	}
	nb.Xdd[2] = -1.5
	if d.Xdd[lo+2] != -1.5 {
		t.Fatal("NodeBlock.Xdd is not a view of d.Xdd")
	}

	eb := d.ElemBlock(lo, hi)
	if len(eb.E) != hi-lo || len(eb.DelvZeta) != hi-lo {
		t.Fatalf("elem block window: %d, want %d", len(eb.E), hi-lo)
	}
	eb.P[1] = 7.25
	if d.P[lo+1] != 7.25 {
		t.Fatal("ElemBlock.P is not a view of d.P")
	}
	eb.DelvXi[0] = 3.5
	if d.DelvXi[lo] != 3.5 {
		t.Fatal("ElemBlock.DelvXi is not a view of d.DelvXi")
	}
}
