package domain

// Structure-of-arrays slab layout.
//
// A Domain's field slices can be backed two ways. The slab layout (the
// default) places all node-centred planes in one contiguous allocation and
// all element-centred planes in another, grouped by the phase that touches
// them together: coordinates next to each other, then velocities,
// accelerations, forces, and the nodal mass; element state grouped as
// EOS state, volume bookkeeping, geometry, principal strains and position
// gradients. The scheduler's partition→worker affinity map (PR 2) hands
// each worker a contiguous index block of every index space, so under the
// slab layout a worker's working set is a small number of contiguous runs
// at fixed plane stride — resident lines stay resident across the kernels
// of one phase instead of being scattered over independently-allocated
// slices.
//
// The scalar layout allocates every field separately (the pre-slab
// behaviour). It is kept so luleshverify can prove the slab layout changes
// nothing numerically: field values, index conventions and therefore every
// floating-point operation order are identical under both layouts; only
// the backing memory differs.

// Layout selects how a Domain's field arrays are backed.
type Layout int

const (
	// LayoutSlab backs all node planes and all element planes with one
	// contiguous allocation each (the default).
	LayoutSlab Layout = iota
	// LayoutScalar allocates each field slice separately (the historical
	// layout, kept for A/B verification).
	LayoutScalar
)

// String names the layout for harness output.
func (l Layout) String() string {
	if l == LayoutScalar {
		return "scalar"
	}
	return "slab"
}

// Plane counts of the two slabs. The gradient slab is separate because its
// planes carry ghost slots (NumElemGhost ≥ NumElem) for COMM faces.
const (
	nodePlanes = 13
	elemPlanes = 19
	gradPlanes = 3
)

// carve cuts the next n entries off buf as a capacity-capped view, so an
// append through one plane can never bleed into its neighbour.
func carve(buf []float64, off *int, n int) []float64 {
	v := buf[*off : *off+n : *off+n]
	*off += n
	return v
}

// allocFields populates every field slice of d for nn nodes, ne elements
// and ngh ghost-carrying gradient slots, using the requested layout.
func (d *Domain) allocFields(nn, ne, ngh int, layout Layout) {
	if layout == LayoutScalar {
		d.allocScalar(nn, ne, ngh)
		return
	}
	d.Layout = LayoutSlab
	d.nodeSlab = make([]float64, nodePlanes*nn)
	d.elemSlab = make([]float64, elemPlanes*ne)
	d.gradSlab = make([]float64, gradPlanes*ngh)

	off := 0
	// Coordinates, velocities, accelerations, forces, mass — in the order
	// the nodal phase walks them.
	d.X = carve(d.nodeSlab, &off, nn)
	d.Y = carve(d.nodeSlab, &off, nn)
	d.Z = carve(d.nodeSlab, &off, nn)
	d.Xd = carve(d.nodeSlab, &off, nn)
	d.Yd = carve(d.nodeSlab, &off, nn)
	d.Zd = carve(d.nodeSlab, &off, nn)
	d.Xdd = carve(d.nodeSlab, &off, nn)
	d.Ydd = carve(d.nodeSlab, &off, nn)
	d.Zdd = carve(d.nodeSlab, &off, nn)
	d.Fx = carve(d.nodeSlab, &off, nn)
	d.Fy = carve(d.nodeSlab, &off, nn)
	d.Fz = carve(d.nodeSlab, &off, nn)
	d.NodalMass = carve(d.nodeSlab, &off, nn)

	off = 0
	// EOS state, volume bookkeeping, geometry, strains, position
	// gradients — grouped by the region ordering the scheduler iterates.
	d.E = carve(d.elemSlab, &off, ne)
	d.P = carve(d.elemSlab, &off, ne)
	d.Q = carve(d.elemSlab, &off, ne)
	d.Ql = carve(d.elemSlab, &off, ne)
	d.Qq = carve(d.elemSlab, &off, ne)
	d.V = carve(d.elemSlab, &off, ne)
	d.Volo = carve(d.elemSlab, &off, ne)
	d.Vnew = carve(d.elemSlab, &off, ne)
	d.Delv = carve(d.elemSlab, &off, ne)
	d.Vdov = carve(d.elemSlab, &off, ne)
	d.Arealg = carve(d.elemSlab, &off, ne)
	d.SS = carve(d.elemSlab, &off, ne)
	d.ElemMass = carve(d.elemSlab, &off, ne)
	d.Dxx = carve(d.elemSlab, &off, ne)
	d.Dyy = carve(d.elemSlab, &off, ne)
	d.Dzz = carve(d.elemSlab, &off, ne)
	d.DelxXi = carve(d.elemSlab, &off, ne)
	d.DelxEta = carve(d.elemSlab, &off, ne)
	d.DelxZeta = carve(d.elemSlab, &off, ne)

	off = 0
	d.DelvXi = carve(d.gradSlab, &off, ngh)
	d.DelvEta = carve(d.gradSlab, &off, ngh)
	d.DelvZeta = carve(d.gradSlab, &off, ngh)
}

// allocScalar is the historical one-make-per-field allocation.
func (d *Domain) allocScalar(nn, ne, ngh int) {
	d.Layout = LayoutScalar
	d.X = make([]float64, nn)
	d.Y = make([]float64, nn)
	d.Z = make([]float64, nn)
	d.Xd = make([]float64, nn)
	d.Yd = make([]float64, nn)
	d.Zd = make([]float64, nn)
	d.Xdd = make([]float64, nn)
	d.Ydd = make([]float64, nn)
	d.Zdd = make([]float64, nn)
	d.Fx = make([]float64, nn)
	d.Fy = make([]float64, nn)
	d.Fz = make([]float64, nn)
	d.NodalMass = make([]float64, nn)

	d.E = make([]float64, ne)
	d.P = make([]float64, ne)
	d.Q = make([]float64, ne)
	d.Ql = make([]float64, ne)
	d.Qq = make([]float64, ne)
	d.V = make([]float64, ne)
	d.Volo = make([]float64, ne)
	d.Vnew = make([]float64, ne)
	d.Delv = make([]float64, ne)
	d.Vdov = make([]float64, ne)
	d.Arealg = make([]float64, ne)
	d.SS = make([]float64, ne)
	d.ElemMass = make([]float64, ne)
	d.Dxx = make([]float64, ne)
	d.Dyy = make([]float64, ne)
	d.Dzz = make([]float64, ne)
	d.DelvXi = make([]float64, ngh)
	d.DelvEta = make([]float64, ngh)
	d.DelvZeta = make([]float64, ngh)
	d.DelxXi = make([]float64, ne)
	d.DelxEta = make([]float64, ne)
	d.DelxZeta = make([]float64, ne)
}

// NodeBlock is the [lo,hi) window of the node-centred planes one node
// partition works on: equal-length views that the hot nodal kernels index
// with a shared loop variable, which both expresses the partition's
// working set and lets the compiler eliminate per-element bounds checks.
type NodeBlock struct {
	X, Y, Z       []float64
	Xd, Yd, Zd    []float64
	Xdd, Ydd, Zdd []float64
	Fx, Fy, Fz    []float64
	Mass          []float64
}

// NodeBlock returns the partition window [lo,hi) of every node plane.
func (d *Domain) NodeBlock(lo, hi int) NodeBlock {
	return NodeBlock{
		X: d.X[lo:hi], Y: d.Y[lo:hi], Z: d.Z[lo:hi],
		Xd: d.Xd[lo:hi], Yd: d.Yd[lo:hi], Zd: d.Zd[lo:hi],
		Xdd: d.Xdd[lo:hi], Ydd: d.Ydd[lo:hi], Zdd: d.Zdd[lo:hi],
		Fx: d.Fx[lo:hi], Fy: d.Fy[lo:hi], Fz: d.Fz[lo:hi],
		Mass: d.NodalMass[lo:hi],
	}
}

// ElemBlock is the [lo,hi) window of the element-centred planes one
// element partition works on, the element-space counterpart of NodeBlock.
// The position-gradient planes (Delx··/Delv··) are included because the
// monotonic-Q gradient kernel writes them densely; the Delv·· views cover
// only the owned range even though their backing planes carry ghost slots.
type ElemBlock struct {
	E, P, Q       []float64
	Ql, Qq        []float64
	V, Volo, Vnew []float64
	Delv, Vdov    []float64
	Arealg, SS    []float64
	Mass          []float64
	Dxx, Dyy, Dzz []float64

	DelxXi, DelxEta, DelxZeta []float64
	DelvXi, DelvEta, DelvZeta []float64
}

// ElemBlock returns the partition window [lo,hi) of every element plane.
func (d *Domain) ElemBlock(lo, hi int) ElemBlock {
	return ElemBlock{
		E: d.E[lo:hi], P: d.P[lo:hi], Q: d.Q[lo:hi],
		Ql: d.Ql[lo:hi], Qq: d.Qq[lo:hi],
		V: d.V[lo:hi], Volo: d.Volo[lo:hi], Vnew: d.Vnew[lo:hi],
		Delv: d.Delv[lo:hi], Vdov: d.Vdov[lo:hi],
		Arealg: d.Arealg[lo:hi], SS: d.SS[lo:hi],
		Mass: d.ElemMass[lo:hi],
		Dxx:  d.Dxx[lo:hi], Dyy: d.Dyy[lo:hi], Dzz: d.Dzz[lo:hi],
		DelxXi: d.DelxXi[lo:hi], DelxEta: d.DelxEta[lo:hi], DelxZeta: d.DelxZeta[lo:hi],
		DelvXi: d.DelvXi[lo:hi], DelvEta: d.DelvEta[lo:hi], DelvZeta: d.DelvZeta[lo:hi],
	}
}
