package domain

import (
	"testing"
	"testing/quick"
)

// coverExact asserts the plan's spans partition [0, n) exactly: every
// index appears in precisely one span.
func coverExact(t *testing.T, p OverlapPlan) {
	t.Helper()
	seen := make([]int, p.N)
	mark := func(s Span) {
		for i := s.Lo; i < s.Hi; i++ {
			seen[i]++
		}
	}
	for _, s := range p.Boundary {
		mark(s)
	}
	mark(p.Interior)
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("plan %+v: index %d covered %d times", p, i, c)
		}
	}
}

func TestOverlapPlanCover(t *testing.T) {
	cases := []struct {
		n, plane     int
		lower, upper bool
	}{
		{100, 10, false, false}, // no comm faces: all interior
		{100, 10, true, false},  // first rank of >1
		{100, 10, false, true},  // last rank
		{100, 10, true, true},   // middle rank
		{20, 10, true, true},    // two planes, both faces: fully boundary
		{10, 10, true, true},    // one plane, both faces: merged span
		{10, 10, true, false},   // one plane, one face: fully boundary
		{30, 10, true, true},    // exactly one interior plane
		{0, 10, true, true},     // empty space
	}
	for _, c := range cases {
		p := NewOverlapPlan(c.n, c.plane, c.lower, c.upper)
		coverExact(t, p)
	}
}

func TestOverlapPlanClassification(t *testing.T) {
	// Middle rank, 4 element planes of 9: planes 0 and 3 are boundary.
	p := NewOverlapPlan(36, 9, true, true)
	if len(p.Boundary) != 2 {
		t.Fatalf("want 2 boundary spans, got %v", p.Boundary)
	}
	if p.Boundary[0] != (Span{0, 9}) || p.Boundary[1] != (Span{27, 36}) {
		t.Fatalf("boundary spans %v", p.Boundary)
	}
	if p.Interior != (Span{9, 27}) {
		t.Fatalf("interior span %v", p.Interior)
	}
	for i := 0; i < 36; i++ {
		want := i < 9 || i >= 27
		if got := p.IsBoundary(i); got != want {
			t.Fatalf("IsBoundary(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestOverlapPlanSinglePlaneMerges(t *testing.T) {
	// Both faces on a one-plane slab: the single span must cover each
	// index once (a naive two-span plan would double-compute the plane).
	p := NewOverlapPlan(9, 9, true, true)
	if len(p.Boundary) != 1 || p.Boundary[0] != (Span{0, 9}) {
		t.Fatalf("want one merged span, got %v", p.Boundary)
	}
	if !p.Interior.Empty() {
		t.Fatalf("interior should be empty, got %v", p.Interior)
	}
}

func TestSplitIndexListExactCover(t *testing.T) {
	p := NewOverlapPlan(36, 9, true, true)
	list := []int32{0, 35, 17, 8, 9, 26, 27, 1, 20}
	b, in := p.SplitIndexList(list)
	if got, want := len(b)+len(in), len(list); got != want {
		t.Fatalf("split sizes %d+%d != %d", len(b), len(in), want)
	}
	// Order within each side preserved, classification correct, and the
	// multiset unchanged.
	seen := map[int32]int{}
	for _, i := range b {
		if !p.IsBoundary(int(i)) {
			t.Fatalf("index %d misfiled as boundary", i)
		}
		seen[i]++
	}
	for _, i := range in {
		if p.IsBoundary(int(i)) {
			t.Fatalf("index %d misfiled as interior", i)
		}
		seen[i]++
	}
	for _, i := range list {
		if seen[i] != 1 {
			t.Fatalf("index %d seen %d times", i, seen[i])
		}
	}
	if b[0] != 0 || b[1] != 35 || in[0] != 17 {
		t.Fatalf("order not preserved: b=%v in=%v", b, in)
	}
}

func TestSplitIndexListFastPaths(t *testing.T) {
	list := []int32{3, 4, 5}
	// No boundary spans: the original slice comes back as interior.
	p := NewOverlapPlan(36, 9, false, false)
	b, in := p.SplitIndexList(list)
	if b != nil || &in[0] != &list[0] {
		t.Fatalf("no-boundary split should alias the input")
	}
	// All-boundary list: the original slice comes back as boundary.
	p = NewOverlapPlan(36, 9, true, true)
	all := []int32{0, 1, 35}
	b, in = p.SplitIndexList(all)
	if in != nil || &b[0] != &all[0] {
		t.Fatalf("all-boundary split should alias the input")
	}
}

func TestOverlapPlanCoverProperty(t *testing.T) {
	// Randomized exact-cover: any (planes, plane size, faces) combination
	// partitions its index space exactly.
	f := func(planes, plane uint8, lower, upper bool) bool {
		n := int(planes%12) * int(plane%8+1)
		p := NewOverlapPlan(n, int(plane%8+1), lower, upper)
		seen := make([]int, n)
		for _, s := range p.Boundary {
			for i := s.Lo; i < s.Hi; i++ {
				seen[i]++
			}
		}
		for i := p.Interior.Lo; i < p.Interior.Hi; i++ {
			seen[i]++
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
