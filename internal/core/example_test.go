package core_test

import (
	"fmt"

	"lulesh/internal/core"
	"lulesh/internal/domain"
)

// Run a small Sedov problem on the paper's task-based backend.
func Example() {
	d := domain.NewSedov(domain.DefaultConfig(8))
	b := core.NewBackendTask(d, core.DefaultOptions(8, 2))
	defer b.Close()

	res, err := core.Run(d, b, core.RunConfig{MaxIterations: 10})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s backend, %d cycles, origin energy %.3e\n",
		res.Backend, res.Iterations, res.OriginEnergy)
	// Output: task backend, 10 cycles, origin energy 1.330e+05
}
