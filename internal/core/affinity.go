package core

// Locality-aware task placement for the task backend. The AMT runtime
// load-balances by stealing, but stealing is locality-blind: without a
// placement policy a mesh partition can execute on a different worker at
// every stage of every timestep, so the ~45 kernel launches per iteration
// keep re-loading the partition's state into cold caches. affinityMap is
// the missing layer: a persistent partition→worker table (block
// distribution over the mesh) consulted by every launch site, so the same
// worker re-touches the same mesh slice across stages and timesteps.
// Because element and node indices advance through the mesh in the same
// k-major order, the block maps for the two index spaces assign the same
// spatial slab of the mesh to the same worker, and a partition's nodal
// tasks land next to its element tasks.
//
// The map is a hint, never a constraint: placement honors it, stealing
// ignores it, so load balance (including the region imbalance of
// Figure 10) is preserved and results stay bitwise identical.
type affinityMap struct {
	nw      int
	numElem int
	numNode int

	partElem  int
	partNodal int
	elemHome  []int // element partition index → home worker
	nodeHome  []int // nodal partition index → home worker
}

// newAffinityMap builds the placement table for a mesh with numElem
// elements and numNode nodes on nw workers at the given partition grains.
func newAffinityMap(numElem, numNode, nw, partElem, partNodal int) *affinityMap {
	m := &affinityMap{nw: nw, numElem: numElem, numNode: numNode}
	m.rebuild(partElem, partNodal)
	return m
}

// rebuild recomputes the partition tables for new grains (the adaptive
// grain controller calls this between timesteps). The underlying block
// distribution is grain-independent — a partition's home is derived from
// its first index's position in the mesh — so regrained partitions stay
// close to the workers that already hold their data.
func (m *affinityMap) rebuild(partElem, partNodal int) {
	m.partElem, m.partNodal = partElem, partNodal
	m.elemHome = buildHomes(m.numElem, partElem, m.nw)
	m.nodeHome = buildHomes(m.numNode, partNodal, m.nw)
}

func buildHomes(n, part, nw int) []int {
	homes := make([]int, numPartitions(n, part))
	for p := range homes {
		homes[p] = blockHome(p*part, n, nw)
	}
	return homes
}

// blockHome maps index lo of the space [0, n) to its home worker under a
// block distribution: worker w owns the contiguous slab
// [w*n/nw, (w+1)*n/nw).
func blockHome(lo, n, nw int) int {
	if n <= 0 || nw <= 1 || lo <= 0 {
		return 0
	}
	h := lo * nw / n
	if h >= nw {
		h = nw - 1
	}
	return h
}

// elemWorker returns the home worker of the element partition containing
// element e.
func (m *affinityMap) elemWorker(e int) int {
	return m.elemHome[e/m.partElem]
}

// nodeWorker returns the home worker of the nodal partition containing
// node n.
func (m *affinityMap) nodeWorker(n int) int {
	return m.nodeHome[n/m.partNodal]
}

// regionWorker returns the home worker of a region-chain partition
// covering regList[lo:hi]: the chain inherits the affinity of its element
// range, i.e. of the element partition holding its first element, so the
// EOS re-touches v/p/e/q state still warm from the kinematics stage.
func (m *affinityMap) regionWorker(regList []int32, lo int) int {
	return m.elemWorker(int(regList[lo]))
}
