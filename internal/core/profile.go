package core

import "time"

// PhaseTime is one leapfrog phase's accumulated wall time.
type PhaseTime struct {
	Name  string
	Total time.Duration
}

// profiler accumulates per-phase times in first-seen order. It is used by
// the serial backend only (single goroutine, no locking).
type profiler struct {
	order []string
	total map[string]time.Duration
}

func newProfiler() *profiler {
	return &profiler{total: map[string]time.Duration{}}
}

func (p *profiler) add(name string, d time.Duration) {
	if _, ok := p.total[name]; !ok {
		p.order = append(p.order, name)
	}
	p.total[name] += d
}

func (p *profiler) snapshot() []PhaseTime {
	out := make([]PhaseTime, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, PhaseTime{Name: n, Total: p.total[n]})
	}
	return out
}

// EnableProfiling turns on per-phase wall-time accounting for subsequent
// steps. The phase split matches the paper's discussion of where LULESH
// spends its time (stress and hourglass force calculation dominating
// LagrangeNodal, kinematics and the region-wise EOS dominating
// LagrangeElements).
func (b *BackendSerial) EnableProfiling() {
	if b.prof == nil {
		b.prof = newProfiler()
	}
}

// Profile returns the accumulated per-phase times (nil unless
// EnableProfiling was called).
func (b *BackendSerial) Profile() []PhaseTime {
	if b.prof == nil {
		return nil
	}
	return b.prof.snapshot()
}

// section runs fn, attributing its wall time to the named phase when
// profiling is enabled.
func (b *BackendSerial) section(name string, fn func()) {
	if b.prof == nil {
		fn()
		return
	}
	t0 := time.Now()
	fn()
	b.prof.add(name, time.Since(t0))
}
