package core

import "lulesh/internal/perf"

// Solver phase tags, shared by every backend so the perf subsystem's
// per-phase tables line up across AMT and fork-join runs. They follow the
// paper's kernel families: forces (stress + hourglass), nodal
// position/kinematics, element kinematics and artificial viscosity, the
// per-region EOS chains, the volume commit, and the time-constraint
// reductions.
const (
	PhaseOther       uint32 = iota // untagged work (graph joins, bookkeeping)
	PhaseForce                     // stress + hourglass force kernels
	PhaseNodal                     // force gather, acceleration, velocity, position
	PhaseElements                  // kinematics, strain rate, monotonic Q
	PhaseRegions                   // per-region material / EOS chains
	PhaseVolumes                   // volume commit
	PhaseConstraints               // Courant + hydro constraint reductions
	NumPhases
)

// PhaseNames labels the tags above, indexed by phase id.
var PhaseNames = [NumPhases]string{
	"other", "force", "nodal", "elements", "eos-regions", "volumes", "constraints",
}

// PhaseProfiled is implemented by backends that can feed a perf.Profiler:
// attaching one routes every executed task or region part — tagged with
// the phase constants above — into the profiler's sharded counters.
// SetProfiler(nil) detaches.
type PhaseProfiled interface {
	SetProfiler(*perf.Profiler)
}

// registerPhases labels the canonical solver phases in p.
func registerPhases(p *perf.Profiler) {
	for id, name := range PhaseNames {
		p.SetPhaseName(uint32(id), name)
	}
}

// SetProfiler attaches the profiler to the AMT scheduler's task sink.
func (b *BackendTask) SetProfiler(p *perf.Profiler) {
	if p == nil {
		b.s.SetSink(nil)
		return
	}
	registerPhases(p)
	b.s.SetSink(p)
}

// SetProfiler attaches the profiler to the fork-join pool's region sink.
func (b *BackendOMP) SetProfiler(p *perf.Profiler) {
	if p == nil {
		b.pool.SetSink(nil)
		return
	}
	registerPhases(p)
	b.pool.SetSink(p)
}

// SetProfiler attaches the profiler to the naive backend's scheduler. The
// naive port phases its loops the same way, so its tables are comparable.
func (b *BackendNaive) SetProfiler(p *perf.Profiler) {
	if p == nil {
		b.s.SetSink(nil)
		return
	}
	registerPhases(p)
	b.s.SetSink(p)
}
