package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"lulesh/internal/amt"
	"lulesh/internal/domain"
)

// Tests for the locality layer: the partition→worker affinity map, the
// steal-half switch, and the adaptive grain controller. Like the rest of
// the scheduling machinery these may change only *where* and *in how many
// pieces* work runs — never the answer.

// TestLocalityAblationInvariance: all eight combinations of Affinity ×
// StealHalf × AdaptiveGrain compute results bitwise identical to the
// serial reference (the invariant the luleshverify -locality CI sweep
// checks on the real binary).
func TestLocalityAblationInvariance(t *testing.T) {
	cfg := domain.DefaultConfig(5)
	const steps = 10
	ref := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
		return NewBackendSerial(d)
	})
	for mask := 0; mask < 8; mask++ {
		mask := mask
		t.Run(fmt.Sprintf("mask-%03b", mask), func(t *testing.T) {
			got := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				opt := DefaultOptions(5, 3)
				opt.Affinity = mask&1 != 0
				opt.StealHalf = mask&2 != 0
				opt.AdaptiveGrain = mask&4 != 0
				return NewBackendTask(d, opt)
			})
			compareDomains(t, "task-locality", ref, got)
		})
	}
}

// TestAdaptiveGrainRegrainsAndStaysExact forces the controller through
// actual grain changes — a tiny target idle rate narrows, a huge one
// widens — and checks both that adjustments happen and that the answer
// still matches serial after partitions were resized mid-run.
func TestAdaptiveGrainRegrainsAndStaysExact(t *testing.T) {
	cfg := domain.DefaultConfig(6)
	const steps = 20
	ref := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
		return NewBackendSerial(d)
	})
	for _, tc := range []struct {
		name   string
		target float64
	}{
		// The targets are rigged so the decision is unconditional: any
		// idle rate exceeds 1e-9 (always halve), and any idle rate is
		// below 9.0/3 (always double) — the test must not depend on the
		// actual utilization of the machine it runs on.
		{"narrowing", 1e-9},
		{"widening", 9.0},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var b *BackendTask
			got := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				opt := DefaultOptions(6, 2)
				// Start between the floor and the n/nw ceiling so both
				// directions have room to move.
				opt.PartElem, opt.PartNodal = 128, 128
				opt.AdaptiveGrain = true
				opt.TargetIdle = tc.target
				b = NewBackendTask(d, opt)
				return b
			})
			compareDomains(t, "task-adaptive", ref, got)
			if b.GrainAdjustments() == 0 {
				t.Fatalf("target %v: controller never adjusted the grain", tc.target)
			}
			opt := b.Options()
			if opt.PartElem < grainMinPart || opt.PartNodal < grainMinPart {
				t.Fatalf("grain fell below the floor: %d/%d", opt.PartElem, opt.PartNodal)
			}
		})
	}
}

// TestGrainControllerTick drives the controller with synthetic counters.
func TestGrainControllerTick(t *testing.T) {
	t0 := time.Unix(0, 0)
	g := newGrainController(0.2, t0)

	mk := func(busy time.Duration) amt.Counters {
		return amt.Counters{Workers: 2, Busy: busy}
	}
	// Decisions only fire every grainAdjustEvery-th step.
	for i := 1; i < grainAdjustEvery; i++ {
		if got := g.tick(mk(time.Second), t0.Add(time.Duration(i)*time.Second)); got != 0 {
			t.Fatalf("step %d: decision %d before the window closed", i, got)
		}
	}
	// Window: 4s wall × 2 workers = 8s capacity; 2s busy → idle 0.75 > 0.2.
	if got := g.tick(mk(2*time.Second), t0.Add(4*time.Second)); got != -1 {
		t.Fatalf("starving window: decision %d, want -1 (narrow)", got)
	}
	// Next window: 4s wall, busy delta 7.9s of 8s → idle ~0.0125 < 0.2/3.
	for i := 5; i < 8; i++ {
		g.tick(mk(2*time.Second), t0.Add(time.Duration(i)*time.Second))
	}
	if got := g.tick(mk(9900*time.Millisecond), t0.Add(8*time.Second)); got != 1 {
		t.Fatalf("saturated window: decision %d, want +1 (widen)", got)
	}
	// Dead band: idle between target/3 and target holds.
	for i := 9; i < 12; i++ {
		g.tick(mk(9900*time.Millisecond), t0.Add(time.Duration(i)*time.Second))
	}
	// Busy delta 7.2s of 8s → idle 0.1, inside (0.0667, 0.2).
	if got := g.tick(mk(17100*time.Millisecond), t0.Add(12*time.Second)); got != 0 {
		t.Fatalf("dead band: decision %d, want 0 (hold)", got)
	}
}

// TestGrainControllerGuards: counter resets (negative busy delta),
// zero-width walls and zero workers must skip the decision, not act on
// garbage.
func TestGrainControllerGuards(t *testing.T) {
	t0 := time.Unix(0, 0)
	g := newGrainController(0, t0)
	if g.target != DefaultTargetIdle {
		t.Fatalf("zero target not defaulted: %v", g.target)
	}
	step := func(c amt.Counters, at time.Time) int {
		var last int
		for i := 0; i < grainAdjustEvery; i++ {
			last = g.tick(c, at)
		}
		return last
	}
	big := amt.Counters{Workers: 2, Busy: time.Hour}
	step(big, t0.Add(time.Second))
	// Busy went backwards (ResetCounters mid-run) → resync, no decision.
	if got := step(amt.Counters{Workers: 2, Busy: time.Second}, t0.Add(2*time.Second)); got != 0 {
		t.Fatalf("negative busy delta: decision %d, want 0", got)
	}
	// Zero workers → no decision.
	if got := step(amt.Counters{Workers: 0, Busy: 2 * time.Second}, t0.Add(3*time.Second)); got != 0 {
		t.Fatalf("zero workers: decision %d, want 0", got)
	}
	// Non-advancing wall clock → no decision.
	if got := step(amt.Counters{Workers: 2, Busy: 3 * time.Second}, t0.Add(3*time.Second)); got != 0 {
		t.Fatalf("zero wall: decision %d, want 0", got)
	}
}

// TestScaleGrainBounds: halving and doubling respect the [grainMinPart,
// grainMaxPart] tuning bounds and the one-partition-per-worker ceiling.
func TestScaleGrainBounds(t *testing.T) {
	cases := []struct {
		part, scale, n, nw, want int
	}{
		{1024, 0, 1 << 20, 4, 1024}, // hold
		{1024, -1, 1 << 20, 4, 512}, // halve
		{1024, 1, 1 << 20, 4, 2048}, // double
		{128, -1, 1 << 20, 4, 64},   // halve to the floor
		{64, -1, 1 << 20, 4, 64},    // floor holds
		{8192, 1, 1 << 20, 4, 8192}, // ceiling holds
		{4096, 1, 1 << 20, 4, 8192}, // double to the ceiling
		{1024, 1, 4096, 4, 1024},    // n/nw ceiling: 4096/4
		{2048, 1, 4096, 4, 1024},    // clamp down to n/nw
		{64, 1, 100, 4, 64},         // n/nw below the floor: floor wins
		{512, 1, 1 << 20, 0, 1024},  // degenerate worker count
	}
	for _, c := range cases {
		if got := scaleGrain(c.part, c.scale, c.n, c.nw); got != c.want {
			t.Fatalf("scaleGrain(%d, %+d, n=%d, nw=%d) = %d, want %d",
				c.part, c.scale, c.n, c.nw, got, c.want)
		}
	}
}

// TestAffinityMapBlockDistribution: homes are a non-decreasing block
// distribution over both index spaces, every home is a valid worker, and
// element/node partitions covering the same mesh fraction share a worker.
func TestAffinityMapBlockDistribution(t *testing.T) {
	const ne, nn, nw = 1000, 1331, 4
	m := newAffinityMap(ne, nn, nw, 64, 128)
	last := 0
	for e := 0; e < ne; e++ {
		h := m.elemWorker(e)
		if h < 0 || h >= nw {
			t.Fatalf("elemWorker(%d) = %d out of range", e, h)
		}
		if h < last {
			t.Fatalf("elemWorker not monotonic at %d: %d after %d", e, h, last)
		}
		last = h
	}
	if m.elemWorker(0) != 0 || m.elemWorker(ne-1) != nw-1 {
		t.Fatalf("block ends: first=%d last=%d", m.elemWorker(0), m.elemWorker(ne-1))
	}
	// The same relative mesh position maps to the same worker in both
	// index spaces (up to partition rounding): check the block centers.
	for w := 0; w < nw; w++ {
		e := (2*w + 1) * ne / (2 * nw)
		n := (2*w + 1) * nn / (2 * nw)
		if m.elemWorker(e) != w || m.nodeWorker(n) != w {
			t.Fatalf("center of slab %d: elem→%d node→%d", w, m.elemWorker(e), m.nodeWorker(n))
		}
	}
	// Region chains inherit their first element's home.
	regList := []int32{999, 0, 500}
	if got := m.regionWorker(regList, 0); got != m.elemWorker(999) {
		t.Fatalf("regionWorker = %d, want %d", got, m.elemWorker(999))
	}
	// rebuild with a new grain keeps the distribution (same block ends).
	m.rebuild(32, 256)
	if m.elemWorker(0) != 0 || m.elemWorker(ne-1) != nw-1 {
		t.Fatal("rebuild broke the block distribution")
	}
}

// TestAffinityHitRateHighWhenBalanced: on a balanced run with affinity on,
// most hinted tasks should actually execute on their preferred worker —
// the whole point of the layer. The bound is deliberately loose (steals
// legitimately move work) but catches a placement layer that stopped
// honoring hints entirely (rate ≈ 1/nw). The rate assertion needs real
// parallelism: on a single CPU the running worker legitimately steals
// everything the descheduled worker cannot execute, capping the hit rate
// near 1/nw no matter how frames were placed.
func TestAffinityHitRateHighWhenBalanced(t *testing.T) {
	cfg := domain.DefaultConfig(8)
	d := domain.NewSedov(cfg)
	opt := DefaultOptions(8, 2)
	b := NewBackendTask(d, opt)
	defer b.Close()
	if _, err := Run(d, b, RunConfig{MaxIterations: 20}); err != nil {
		t.Fatal(err)
	}
	c := b.Counters()
	rate, ok := c.AffinityHitRate()
	if !ok {
		t.Fatal("no hinted tasks ran with Affinity on")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Logf("hit rate %.2f on a single CPU (placement unobservable); skipping the bound", rate)
		return
	}
	if rate < 0.55 {
		t.Fatalf("affinity hit rate %.2f: hints are not being honored", rate)
	}
}

// TestAffinityOffNoHintedTasks: with Affinity off the backend must not
// tag any frame.
func TestAffinityOffNoHintedTasks(t *testing.T) {
	cfg := domain.DefaultConfig(5)
	d := domain.NewSedov(cfg)
	opt := DefaultOptions(5, 2)
	opt.Affinity = false
	b := NewBackendTask(d, opt)
	defer b.Close()
	if _, err := Run(d, b, RunConfig{MaxIterations: 5}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Counters().AffinityHitRate(); ok {
		t.Fatal("hinted tasks ran with Affinity off")
	}
}
