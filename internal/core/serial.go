package core

import (
	"lulesh/internal/domain"
	"lulesh/internal/kernels"
)

// buffers holds the mesh-sized temporaries shared by the serial and
// fork-join backends. The reference implementation allocates these per
// call; persisting them across iterations is a pure allocator optimization
// with no numerical effect. All seventeen planes are carved from one
// scratch arena so the working set of consecutive kernels is contiguous.
type buffers struct {
	arena *kernels.Arena

	sigxx, sigyy, sigzz []float64
	determS             []float64 // stress-integration volumes
	determH             []float64 // hourglass volumes (volo*v)

	// Per-element-corner force arrays (8 entries per element) for the two
	// force families.
	fxS, fyS, fzS []float64
	fxH, fyH, fzH []float64

	// Hourglass volume-derivative scratch (8 entries per element).
	dvdx, dvdy, dvdz []float64
	x8n, y8n, z8n    []float64

	vnewc   []float64
	scratch *kernels.EOSScratch
	flag    kernels.Flag
}

func newBuffers(d *domain.Domain) *buffers {
	ne := d.NumElem()
	maxReg := 0
	for _, l := range d.Regions.ElemList {
		if len(l) > maxReg {
			maxReg = len(l)
		}
	}
	// 5 element-sized planes + 12 corner-sized (8·ne) planes + vnewc.
	a := kernels.NewArena((5 + 12*8 + 1) * ne)
	return &buffers{
		arena:   a,
		sigxx:   a.Take(ne),
		sigyy:   a.Take(ne),
		sigzz:   a.Take(ne),
		determS: a.Take(ne),
		determH: a.Take(ne),
		fxS:     a.Take(8 * ne),
		fyS:     a.Take(8 * ne),
		fzS:     a.Take(8 * ne),
		fxH:     a.Take(8 * ne),
		fyH:     a.Take(8 * ne),
		fzH:     a.Take(8 * ne),
		dvdx:    a.Take(8 * ne),
		dvdy:    a.Take(8 * ne),
		dvdz:    a.Take(8 * ne),
		x8n:     a.Take(8 * ne),
		y8n:     a.Take(8 * ne),
		z8n:     a.Take(8 * ne),
		vnewc:   a.Take(ne),
		scratch: kernels.NewEOSScratch(maxReg),
	}
}

// BackendSerial runs every kernel sequentially. It is the ground truth the
// parallel backends are compared against (both for correctness — bitwise —
// and as the single-thread baseline of Figure 9).
type BackendSerial struct {
	buf  *buffers
	prof *profiler
}

// NewBackendSerial creates a serial backend for domains shaped like d.
func NewBackendSerial(d *domain.Domain) *BackendSerial {
	return &BackendSerial{buf: newBuffers(d)}
}

func (b *BackendSerial) Name() string { return "serial" }

// Threads reports 1.
func (b *BackendSerial) Threads() int { return 1 }

// Utilization is not measured for the serial backend.
func (b *BackendSerial) Utilization() (float64, bool) { return 0, false }

// ResetCounters is a no-op.
func (b *BackendSerial) ResetCounters() {}

// Close is a no-op.
func (b *BackendSerial) Close() {}

// Step advances one leapfrog iteration sequentially, in the exact kernel
// order of the reference implementation.
func (b *BackendSerial) Step(d *domain.Domain) error {
	buf := b.buf
	buf.flag.Reset()
	ne := d.NumElem()
	nn := d.NumNode()
	delt := d.Deltatime
	p := &d.Par

	// --- LagrangeNodal -------------------------------------------------
	b.section("stress-force", func() {
		kernels.ZeroForces(d, 0, nn)
		kernels.InitStressTerms(d, buf.sigxx, buf.sigyy, buf.sigzz, 0, ne)
		kernels.IntegrateStress(d, buf.sigxx, buf.sigyy, buf.sigzz, buf.determS,
			buf.fxS, buf.fyS, buf.fzS, 0, ne)
		kernels.GatherCornerForces(d, buf.fxS, buf.fyS, buf.fzS, 0, nn, false)
		kernels.CheckDeterm(buf.determS, 0, ne, &buf.flag)
	})
	if err := buf.flag.Err(); err != nil {
		return err
	}

	b.section("hourglass-force", func() {
		kernels.HourglassPrep(d, buf.dvdx, buf.dvdy, buf.dvdz,
			buf.x8n, buf.y8n, buf.z8n, buf.determH, 0, 0, ne, &buf.flag)
		if buf.flag.Err() != nil {
			return
		}
		if p.HGCoef > 0 {
			kernels.FBHourglass(d, buf.dvdx, buf.dvdy, buf.dvdz,
				buf.x8n, buf.y8n, buf.z8n, buf.determH, p.HGCoef, 0, 0, ne,
				buf.fxH, buf.fyH, buf.fzH)
			kernels.GatherCornerForces(d, buf.fxH, buf.fyH, buf.fzH, 0, nn, true)
		}
	})
	if err := buf.flag.Err(); err != nil {
		return err
	}

	b.section("nodal-update", func() {
		kernels.CalcAcceleration(d, 0, nn)
		kernels.ApplyAccelBCList(d, d.Mesh.SymmX, 0, 0, len(d.Mesh.SymmX))
		kernels.ApplyAccelBCList(d, d.Mesh.SymmY, 1, 0, len(d.Mesh.SymmY))
		kernels.ApplyAccelBCList(d, d.Mesh.SymmZ, 2, 0, len(d.Mesh.SymmZ))
		kernels.CalcVelocity(d, delt, p.UCut, 0, nn)
		kernels.CalcPosition(d, delt, 0, nn)
	})

	// --- LagrangeElements ----------------------------------------------
	b.section("kinematics", func() {
		kernels.CalcKinematics(d, delt, 0, ne)
		kernels.CalcStrainRate(d, 0, ne, &buf.flag)
	})
	if err := buf.flag.Err(); err != nil {
		return err
	}

	b.section("monotonic-q", func() {
		kernels.MonoQGradients(d, 0, ne)
		for _, regList := range d.Regions.ElemList {
			kernels.MonoQRegion(d, regList, 0, len(regList))
		}
		kernels.QStopCheck(d, 0, ne, &buf.flag)
	})
	if err := buf.flag.Err(); err != nil {
		return err
	}

	b.section("eos", func() {
		kernels.CopyVnewc(d, buf.vnewc, 0, ne)
		if p.EOSvMin != 0 {
			kernels.ClampVnewcLow(buf.vnewc, p.EOSvMin, 0, ne)
		}
		if p.EOSvMax != 0 {
			kernels.ClampVnewcHigh(buf.vnewc, p.EOSvMax, 0, ne)
		}
		kernels.CheckVBounds(d, 0, ne, &buf.flag)
		if buf.flag.Err() != nil {
			return
		}
		for r, regList := range d.Regions.ElemList {
			rep := d.Regions.Rep(r)
			kernels.EvalEOS(d, buf.vnewc, regList, buf.scratch, rep, 0, len(regList))
		}
		kernels.UpdateVolumes(d, p.VCut, 0, ne)
	})
	if err := buf.flag.Err(); err != nil {
		return err
	}

	// --- CalcTimeConstraintsForElems ------------------------------------
	b.section("constraints", func() {
		d.Dtcourant = kernels.HugeDt
		d.Dthydro = kernels.HugeDt
		for _, regList := range d.Regions.ElemList {
			if dtc := kernels.CourantConstraint(d, regList, 0, len(regList)); dtc < d.Dtcourant {
				d.Dtcourant = dtc
			}
			if dth := kernels.HydroConstraint(d, regList, 0, len(regList)); dth < d.Dthydro {
				d.Dthydro = dth
			}
		}
	})
	return nil
}
