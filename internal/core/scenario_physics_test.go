package core

import (
	"math"
	"testing"

	"lulesh/internal/domain"
)

// buildScenario constructs a cubic domain for a named scenario or fails
// the test.
func buildScenario(t *testing.T, spec string, size int) *domain.Domain {
	t.Helper()
	s, err := domain.ParseScenarioSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := domain.BuildScenarioCube(s, domain.DefaultConfig(size))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestScenarioBackendsBitwiseIdentical: the scenario seam must preserve
// the repo's core invariant — every backend runs the identical arithmetic
// — for every registered scenario, not just Sedov.
func TestScenarioBackendsBitwiseIdentical(t *testing.T) {
	for _, name := range domain.ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			run := func(mk func(*domain.Domain) Backend) *domain.Domain {
				d := buildScenario(t, name, 6)
				b := mk(d)
				defer b.Close()
				if _, err := Run(d, b, RunConfig{MaxIterations: 15}); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				return d
			}
			ref := run(func(d *domain.Domain) Backend { return NewBackendSerial(d) })
			backends := map[string]func(*domain.Domain) Backend{
				"omp":   func(d *domain.Domain) Backend { return NewBackendOMP(d, 4) },
				"naive": func(d *domain.Domain) Backend { return NewBackendNaive(d, 4) },
				"task": func(d *domain.Domain) Backend {
					return NewBackendTask(d, DefaultOptions(6, 4))
				},
			}
			for bname, mk := range backends {
				got := run(mk)
				for i := range ref.E {
					if ref.E[i] != got.E[i] || ref.P[i] != got.P[i] || ref.V[i] != got.V[i] {
						t.Fatalf("%s/%s: element %d diverges: e %v vs %v",
							name, bname, i, ref.E[i], got.E[i])
					}
				}
				for i := range ref.X {
					if ref.X[i] != got.X[i] || ref.Xd[i] != got.Xd[i] {
						t.Fatalf("%s/%s: node %d diverges", name, bname, i)
					}
				}
			}
		})
	}
}

// TestScenarioPhysicsSanity is the table-driven "is the answer physical"
// suite: one check per scenario that goes beyond bitwise identity.
func TestScenarioPhysicsSanity(t *testing.T) {
	cases := []struct {
		scenario string
		size     int
		steps    int
		check    func(t *testing.T, d *domain.Domain, trail []snapshot)
	}{
		// Sedov: the blast converts internal to kinetic energy without
		// creating any, and the final origin energy lands on the known
		// reference value (checked separately at s=10 below).
		{scenario: "sedov", size: 8, steps: 60, check: checkSedovBudget},
		// Piston: the shock front enters at the x-max face and its
		// position decreases monotonically toward the x=0 plane while
		// the gas ahead of it stays cold.
		{scenario: "piston", size: 8, steps: 120, check: checkPistonFront},
		// Multimat: per-region mass, recomputed from the deformed
		// geometry and the EOS density, is conserved for every region.
		{scenario: "multimat", size: 8, steps: 60, check: checkMultimatMass},
	}
	for _, tc := range cases {
		t.Run(tc.scenario, func(t *testing.T) {
			d := buildScenario(t, tc.scenario, tc.size)
			b := NewBackendSerial(d)
			defer b.Close()
			var trail []snapshot
			for step := 0; step < tc.steps; step++ {
				TimeIncrement(d)
				if err := b.Step(d); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if step%5 == 4 {
					trail = append(trail, snap(d))
				}
			}
			tc.check(t, d, trail)
		})
	}
}

// snapshot records the per-step observables the physics checks consume.
type snapshot struct {
	time       float64
	frontX     float64 // min element-center x with pressure (piston front)
	totalE     float64 // internal + kinetic
	regionMass []float64
}

func snap(d *domain.Domain) snapshot {
	s := snapshot{time: d.Time, frontX: math.Inf(1)}
	for e := 0; e < d.NumElem(); e++ {
		s.totalE += d.E[e] * d.Volo[e]
	}
	for n := 0; n < d.NumNode(); n++ {
		v2 := d.Xd[n]*d.Xd[n] + d.Yd[n]*d.Yd[n] + d.Zd[n]*d.Zd[n]
		s.totalE += 0.5 * d.NodalMass[n] * v2
	}
	var x [8]float64
	var y, z [8]float64
	for e := 0; e < d.NumElem(); e++ {
		if d.P[e] > 1e-6 {
			d.CollectElemNodes(e, &x, &y, &z)
			cx := 0.0
			for _, v := range x {
				cx += v
			}
			cx /= 8
			if cx < s.frontX {
				s.frontX = cx
			}
		}
	}
	s.regionMass = regionMasses(d)
	return s
}

// regionMasses integrates mass per region from the current geometry: the
// density from the relative volume (rho = rho0/V) times the element volume
// recomputed from the node coordinates. Conservation is only exact if the
// kinematics keep V consistent with the deformed geometry — a real
// physics check, not a restatement of constant ElemMass.
func regionMasses(d *domain.Domain) []float64 {
	masses := make([]float64, d.Regions.NumReg)
	var x, y, z [8]float64
	for r, list := range d.Regions.ElemList {
		for _, e := range list {
			d.CollectElemNodes(int(e), &x, &y, &z)
			vol := domain.ElemVolume(&x, &y, &z)
			rho := d.Par.RefDens / d.V[e]
			masses[r] += rho * vol
		}
	}
	return masses
}

func checkSedovBudget(t *testing.T, d *domain.Domain, trail []snapshot) {
	e0 := trail[0].totalE
	prev := math.Inf(1)
	for i, s := range trail {
		if s.totalE > prev*(1+1e-9) {
			t.Fatalf("snapshot %d: energy created: %v -> %v", i, prev, s.totalE)
		}
		prev = s.totalE
	}
	if loss := (e0 - prev) / e0; loss > 0.25 {
		t.Fatalf("dissipation too large: %.1f%%", 100*loss)
	}
}

func checkPistonFront(t *testing.T, d *domain.Domain, trail []snapshot) {
	// The front must exist, start near the x-max face, and march
	// monotonically toward x = 0 (within half an element of jitter from
	// the pressure threshold crossing cells).
	h := 1.125 / float64(d.Mesh.EdgeElems)
	first := trail[0].frontX
	if math.IsInf(first, 1) {
		t.Fatal("no shock formed at the piston face")
	}
	if first < 1.125-3*h {
		t.Fatalf("shock did not start at the piston face: front %v", first)
	}
	prev := math.Inf(1)
	for i, s := range trail {
		if s.frontX > prev+h/2 {
			t.Fatalf("snapshot %d: shock front moved backwards: %v -> %v",
				i, prev, s.frontX)
		}
		if s.frontX < prev {
			prev = s.frontX
		}
	}
	if last := trail[len(trail)-1].frontX; last > first-h {
		t.Fatalf("shock front never advanced: %v -> %v", first, last)
	}
	// Gas well ahead of the front stays cold.
	var x, y, z [8]float64
	for e := 0; e < d.NumElem(); e++ {
		d.CollectElemNodes(e, &x, &y, &z)
		cx := 0.0
		for _, v := range x {
			cx += v
		}
		cx /= 8
		if cx < prev-2*h && math.Abs(d.P[e]) > 1e-6 {
			t.Fatalf("element %d ahead of the front (x=%v < front %v) is pressurized: %v",
				e, cx, prev, d.P[e])
		}
	}
}

func checkMultimatMass(t *testing.T, d *domain.Domain, trail []snapshot) {
	ref := trail[0].regionMass
	for i, s := range trail {
		for r, m := range s.regionMass {
			if ref[r] == 0 {
				continue // empty region
			}
			if rel := math.Abs(m-ref[r]) / ref[r]; rel > 1e-8 {
				t.Fatalf("snapshot %d: region %d mass drifted %.2e (%v -> %v)",
					i, r, rel, ref[r], m)
			}
		}
	}
}

// TestSedovKnownReferenceEnergy anchors the sedov scenario (via the
// registry path) to the validated s=10 full-run origin energy — the same
// number TestKnownOriginEnergySize10 pins for the direct constructor.
func TestSedovKnownReferenceEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("full run in -short mode")
	}
	d := buildScenario(t, "sedov", 10)
	b := NewBackendSerial(d)
	defer b.Close()
	res, err := Run(d, b, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const want = 2.720531e+04
	if math.Abs(res.OriginEnergy-want)/want > 1e-6 {
		t.Errorf("origin energy = %v, want %v", res.OriginEnergy, want)
	}
}
