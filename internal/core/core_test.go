package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"lulesh/internal/domain"
)

func TestTimeIncrementFirstCycle(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(3))
	dt0 := d.Deltatime
	TimeIncrement(d)
	if d.Cycle != 1 {
		t.Fatalf("cycle = %d", d.Cycle)
	}
	if d.Deltatime != dt0 {
		t.Fatalf("first cycle must keep the initial dt: %v vs %v", d.Deltatime, dt0)
	}
	if d.Time != dt0 {
		t.Fatalf("time = %v, want %v", d.Time, dt0)
	}
}

func TestTimeIncrementCourantLimits(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(3))
	TimeIncrement(d) // prime cycle 1
	d.Dtcourant = 1e-5
	d.Dthydro = 1e20
	old := d.Deltatime
	TimeIncrement(d)
	want := 1e-5 / 2.0
	// Growth clamping may cap it at old*ub instead.
	if want > old*d.Par.DeltaTimeMultUB {
		want = old * d.Par.DeltaTimeMultUB
	}
	if math.Abs(d.Deltatime-want) > 1e-20 {
		t.Fatalf("dt = %v, want %v", d.Deltatime, want)
	}
}

func TestTimeIncrementHydroLimit(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(3))
	TimeIncrement(d)
	d.Dtcourant = 1e20
	d.Dthydro = 3e-6
	old := d.Deltatime
	TimeIncrement(d)
	want := 3e-6 * 2.0 / 3.0
	if want/old >= 1 {
		if want/old < d.Par.DeltaTimeMultLB {
			want = old
		} else if want/old > d.Par.DeltaTimeMultUB {
			want = old * d.Par.DeltaTimeMultUB
		}
	}
	if math.Abs(d.Deltatime-want) > 1e-20 {
		t.Fatalf("dt = %v, want %v", d.Deltatime, want)
	}
}

func TestTimeIncrementGrowthClampLB(t *testing.T) {
	// A candidate dt only slightly above the old one (ratio < LB) keeps
	// the old dt, damping oscillations.
	d := domain.NewSedov(domain.DefaultConfig(3))
	TimeIncrement(d)
	old := d.Deltatime
	d.Dtcourant = old * 2.1 // newdt = old * 1.05 < old * 1.1 (LB)
	d.Dthydro = 1e20
	TimeIncrement(d)
	if d.Deltatime != old {
		t.Fatalf("dt = %v, want unchanged %v", d.Deltatime, old)
	}
}

func TestTimeIncrementDtMaxCap(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(3))
	d.Deltatime = 9e-3
	TimeIncrement(d)
	d.Dtcourant = 1e20
	d.Dthydro = 1e20
	TimeIncrement(d)
	if d.Deltatime > d.Par.DtMax {
		t.Fatalf("dt %v exceeds DtMax %v", d.Deltatime, d.Par.DtMax)
	}
}

func TestTimeIncrementFixedDt(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(3))
	d.Par.DtFixed = 1e-6
	TimeIncrement(d)
	TimeIncrement(d)
	if d.Deltatime != 1e-6 {
		t.Fatalf("fixed dt = %v", d.Deltatime)
	}
	if math.Abs(d.Time-2e-6) > 1e-18 {
		t.Fatalf("time = %v", d.Time)
	}
}

func TestTimeIncrementStopsAtStopTime(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(3))
	d.Par.DtFixed = 1e-6
	d.Par.StopTime = 2.5e-6
	TimeIncrement(d) // t = 1e-6
	TimeIncrement(d) // targetdt = 1.5e-6 ∈ (dt, 4dt/3)? 1.5 > 4/3 → t = 2e-6
	TimeIncrement(d) // targetdt = 0.5e-6 < dt → dt clamps to remainder
	if d.Time > d.Par.StopTime+1e-18 {
		t.Fatalf("time %v overshot stop time %v", d.Time, d.Par.StopTime)
	}
}

func TestTimeIncrementSmallTailSplit(t *testing.T) {
	// When the remaining time is just above dt (within 4/3), the step is
	// reduced to 2/3 of dt so the final two steps are balanced.
	d := domain.NewSedov(domain.DefaultConfig(3))
	d.Par.DtFixed = 1e-6
	d.Par.StopTime = 1.2e-6
	TimeIncrement(d)
	want := 2.0 / 3.0 * 1e-6
	if math.Abs(d.Deltatime-want) > 1e-18 {
		t.Fatalf("tail dt = %v, want %v", d.Deltatime, want)
	}
}

func TestRunRespectsMaxIterations(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(5))
	b := NewBackendSerial(d)
	defer b.Close()
	res, err := Run(d, b, RunConfig{MaxIterations: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 7 {
		t.Fatalf("iterations = %d, want 7", res.Iterations)
	}
	if res.Backend != "serial" || res.Size != 5 || res.Regions != 11 {
		t.Fatalf("result metadata wrong: %+v", res)
	}
	if res.OriginEnergy <= 0 {
		t.Fatal("origin energy should remain positive early in the run")
	}
}

func TestRunToCompletion(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(4))
	b := NewBackendSerial(d)
	defer b.Close()
	res, err := Run(d, b, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTime < d.Par.StopTime-1e-12 {
		t.Fatalf("run stopped at t=%v before stop time %v", res.FinalTime, d.Par.StopTime)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations executed")
	}
}

func TestResultFOM(t *testing.T) {
	r := Result{Size: 10, Iterations: 100, Elapsed: time.Second}
	if got := r.FOM(); math.Abs(got-100.0) > 1e-12 {
		t.Fatalf("FOM = %v, want 100 kz/s", got)
	}
	if (Result{Size: 10}).FOM() != 0 {
		t.Fatal("zero-elapsed FOM should be 0")
	}
}

func TestCSVFormat(t *testing.T) {
	if CSVHeader() != "size,regions,iterations,threads,runtime,result" {
		t.Fatalf("header = %q", CSVHeader())
	}
	r := Result{Size: 45, Regions: 11, Iterations: 10, Threads: 24,
		Elapsed: 1500 * time.Millisecond, OriginEnergy: 2.5e5}
	line := r.CSVLine()
	if !strings.HasPrefix(line, "45,11,10,24,1.500000,") {
		t.Fatalf("csv line = %q", line)
	}
	if len(strings.Split(line, ",")) != 6 {
		t.Fatalf("csv line has wrong field count: %q", line)
	}
}

func TestBackendNames(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(3))
	cases := []struct {
		b    Backend
		want string
	}{
		{NewBackendSerial(d), "serial"},
		{NewBackendOMP(d, 2), "omp"},
		{NewBackendNaive(d, 2), "naive"},
		{NewBackendTask(d, DefaultOptions(3, 2)), "task"},
	}
	for _, c := range cases {
		if c.b.Name() != c.want {
			t.Errorf("name = %q, want %q", c.b.Name(), c.want)
		}
		c.b.Close()
	}
}

func TestBackendThreadsReporting(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(3))
	b := NewBackendOMP(d, 3)
	if backendThreads(b) != 3 {
		t.Errorf("omp threads = %d", backendThreads(b))
	}
	b.Close()
	tk := NewBackendTask(d, DefaultOptions(3, 2))
	if backendThreads(tk) != 2 {
		t.Errorf("task threads = %d", backendThreads(tk))
	}
	tk.Close()
}

func TestSerialUtilizationNotMeasured(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(3))
	b := NewBackendSerial(d)
	defer b.Close()
	if _, ok := b.Utilization(); ok {
		t.Fatal("serial backend should not report utilization")
	}
}

func TestRunProgressCallback(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(4))
	b := NewBackendSerial(d)
	defer b.Close()
	var cycles []int
	var lastTime float64
	_, err := Run(d, b, RunConfig{
		MaxIterations: 6,
		Progress: func(cycle int, tm, dt float64) {
			cycles = append(cycles, cycle)
			if tm <= lastTime {
				t.Errorf("time did not advance: %v -> %v", lastTime, tm)
			}
			if dt <= 0 {
				t.Errorf("non-positive dt %v", dt)
			}
			lastTime = tm
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 6 {
		t.Fatalf("progress fired %d times, want 6", len(cycles))
	}
	for i, c := range cycles {
		if c != i+1 {
			t.Fatalf("cycle sequence %v", cycles)
		}
	}
}
