package core

import (
	"testing"

	"lulesh/internal/domain"
)

// TestTaskGraphShape pins the number of tasks the paper-configured backend
// creates per iteration: with fusion on, the graph is
//
//	stress family      : one task per element partition
//	hourglass family   : one task per element partition
//	nodal chains       : one task per node partition
//	element chains     : one task per element partition
//	region chains      : one task per region partition
//	volume commits     : one task per element partition
//	constraint fold    : one task
//
// A change to this count means the orchestration changed shape — the
// paper's "number of tasks remains similar when regions grow" property
// (Figure 10's discussion) depends on it.
func TestTaskGraphShape(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(6))
	opt := DefaultOptions(6, 2)
	b := NewBackendTask(d, opt)
	defer b.Close()

	nPartE := numPartitions(d.NumElem(), opt.PartElem)
	nPartN := numPartitions(d.NumNode(), opt.PartNodal)
	nRegParts := 0
	for _, l := range d.Regions.ElemList {
		nRegParts += numPartitions(len(l), opt.PartElem)
	}
	want := int64(4*nPartE + nPartN + nRegParts + 1)

	// Warm one step (first iteration pays no special cost, but keep the
	// measurement isolated anyway), then count a clean iteration.
	TimeIncrement(d)
	if err := b.Step(d); err != nil {
		t.Fatal(err)
	}
	b.ResetCounters()
	TimeIncrement(d)
	if err := b.Step(d); err != nil {
		t.Fatal(err)
	}
	// Wait for any counter laggards.
	got := b.s.CountersSnapshot().Tasks
	if got != want {
		t.Fatalf("task graph has %d tasks per iteration, want %d "+
			"(4*%d elem parts + %d node parts + %d region parts + 1 fold)",
			got, want, nPartE, nPartN, nRegParts)
	}
}

// TestTaskGraphShapeStableAcrossRegions: the paper observes that the task
// count stays (nearly) constant as the region count grows — only the
// region-partition term can change, and with partition size >> region size
// it grows by at most one task per extra region.
func TestTaskGraphShapeStableAcrossRegions(t *testing.T) {
	count := func(nr int) int64 {
		d := domain.NewSedov(domain.Config{EdgeElems: 6, NumReg: nr, Balance: 1, Cost: 1})
		opt := DefaultOptions(6, 2)
		b := NewBackendTask(d, opt)
		defer b.Close()
		TimeIncrement(d)
		if err := b.Step(d); err != nil {
			t.Fatal(err)
		}
		b.ResetCounters()
		TimeIncrement(d)
		if err := b.Step(d); err != nil {
			t.Fatal(err)
		}
		return b.s.CountersSnapshot().Tasks
	}
	base := count(11)
	grown := count(21)
	if grown-base > 10 {
		t.Fatalf("task count grew from %d to %d across 11→21 regions; "+
			"the graph should stay nearly constant", base, grown)
	}
	// The fork-join model, by contrast, adds ~14 loops per extra region
	// (verified implicitly by the Figure 10 benchmarks).
}
