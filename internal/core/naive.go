package core

import (
	"lulesh/internal/amt"
	"lulesh/internal/domain"
	"lulesh/internal/kernels"
)

// BackendNaive reproduces the prior HPX port of LULESH that the paper uses
// as its negative baseline ([16], measured slower than OpenMP in [17]):
// every loop is replaced 1-to-1 by a parallel for_each on the AMT runtime,
// immediately followed by a blocking wait. Nothing is chained or fused, so
// the code pays one full synchronization barrier per loop — more barriers
// than the OpenMP reference, since grouped parallel regions are split into
// individual loops — plus task-creation overhead on every loop.
type BackendNaive struct {
	s   *amt.Scheduler
	buf *buffers
}

// NewBackendNaive creates the naive for_each backend with the given worker
// count for domains shaped like d.
func NewBackendNaive(d *domain.Domain, threads int) *BackendNaive {
	if threads < 1 {
		threads = 1
	}
	s := amt.NewScheduler(amt.WithWorkers(threads))
	return &BackendNaive{s: s, buf: newBuffers(d)}
}

// grain mirrors a parallel-algorithm default chunker: about four chunks
// per worker for whatever loop length it is handed.
func (b *BackendNaive) grain(n int) int {
	g := n / (b.s.Workers() * 4)
	if g < 1 {
		g = 1
	}
	return g
}

func (b *BackendNaive) Name() string { return "naive" }

// Threads reports the worker count.
func (b *BackendNaive) Threads() int { return b.s.Workers() }

// Utilization reports the AMT scheduler's productive-time ratio.
func (b *BackendNaive) Utilization() (float64, bool) {
	return b.s.CountersSnapshot().Utilization(), true
}

// ResetCounters restarts utilization accounting.
func (b *BackendNaive) ResetCounters() { b.s.ResetCounters() }

// Close shuts the scheduler down.
func (b *BackendNaive) Close() { b.s.Close() }

// each runs body over [0, n) as a parallel for_each and blocks until done —
// the naive port's universal idiom.
func (b *BackendNaive) each(n int, body func(lo, hi int)) {
	amt.ForEachBlock(b.s, 0, n, b.grain(n), body).Get()
}

// Step advances one leapfrog iteration, one barriered for_each per loop.
func (b *BackendNaive) Step(d *domain.Domain) error {
	buf := b.buf
	buf.flag.Reset()
	ne := d.NumElem()
	nn := d.NumNode()
	delt := d.Deltatime
	p := &d.Par

	// --- LagrangeNodal -------------------------------------------------
	b.s.SetPhase(PhaseForce)
	b.each(nn, func(lo, hi int) { kernels.ZeroForces(d, lo, hi) })
	b.each(ne, func(lo, hi int) {
		kernels.InitStressTerms(d, buf.sigxx, buf.sigyy, buf.sigzz, lo, hi)
	})
	b.each(ne, func(lo, hi int) {
		kernels.IntegrateStress(d, buf.sigxx, buf.sigyy, buf.sigzz, buf.determS,
			buf.fxS, buf.fyS, buf.fzS, lo, hi)
	})
	b.each(nn, func(lo, hi int) {
		kernels.GatherCornerForces(d, buf.fxS, buf.fyS, buf.fzS, lo, hi, false)
	})
	b.each(ne, func(lo, hi int) { kernels.CheckDeterm(buf.determS, lo, hi, &buf.flag) })
	if err := buf.flag.Err(); err != nil {
		return err
	}

	b.each(ne, func(lo, hi int) {
		kernels.HourglassPrep(d, buf.dvdx, buf.dvdy, buf.dvdz,
			buf.x8n, buf.y8n, buf.z8n, buf.determH, 0, lo, hi, &buf.flag)
	})
	if err := buf.flag.Err(); err != nil {
		return err
	}
	if p.HGCoef > 0 {
		b.each(ne, func(lo, hi int) {
			kernels.FBHourglass(d, buf.dvdx, buf.dvdy, buf.dvdz,
				buf.x8n, buf.y8n, buf.z8n, buf.determH, p.HGCoef, 0, lo, hi,
				buf.fxH, buf.fyH, buf.fzH)
		})
		b.each(nn, func(lo, hi int) {
			kernels.GatherCornerForces(d, buf.fxH, buf.fyH, buf.fzH, lo, hi, true)
		})
	}

	b.s.SetPhase(PhaseNodal)
	b.each(nn, func(lo, hi int) { kernels.CalcAcceleration(d, lo, hi) })
	// The naive port splits the reference's single BC region into three
	// separate barriered loops.
	b.each(len(d.Mesh.SymmX), func(lo, hi int) {
		kernels.ApplyAccelBCList(d, d.Mesh.SymmX, 0, lo, hi)
	})
	b.each(len(d.Mesh.SymmY), func(lo, hi int) {
		kernels.ApplyAccelBCList(d, d.Mesh.SymmY, 1, lo, hi)
	})
	b.each(len(d.Mesh.SymmZ), func(lo, hi int) {
		kernels.ApplyAccelBCList(d, d.Mesh.SymmZ, 2, lo, hi)
	})
	b.each(nn, func(lo, hi int) { kernels.CalcVelocity(d, delt, p.UCut, lo, hi) })
	b.each(nn, func(lo, hi int) { kernels.CalcPosition(d, delt, lo, hi) })

	// --- LagrangeElements ----------------------------------------------
	b.s.SetPhase(PhaseElements)
	b.each(ne, func(lo, hi int) { kernels.CalcKinematics(d, delt, lo, hi) })
	b.each(ne, func(lo, hi int) { kernels.CalcStrainRate(d, lo, hi, &buf.flag) })
	if err := buf.flag.Err(); err != nil {
		return err
	}

	b.each(ne, func(lo, hi int) { kernels.MonoQGradients(d, lo, hi) })
	for _, regList := range d.Regions.ElemList {
		regList := regList
		b.each(len(regList), func(lo, hi int) {
			kernels.MonoQRegion(d, regList, lo, hi)
		})
	}
	kernels.QStopCheck(d, 0, ne, &buf.flag)
	if err := buf.flag.Err(); err != nil {
		return err
	}

	// Four separate barriered loops where the reference uses one region.
	b.s.SetPhase(PhaseRegions)
	b.each(ne, func(lo, hi int) { kernels.CopyVnewc(d, buf.vnewc, lo, hi) })
	if p.EOSvMin != 0 {
		b.each(ne, func(lo, hi int) {
			kernels.ClampVnewcLow(buf.vnewc, p.EOSvMin, lo, hi)
		})
	}
	if p.EOSvMax != 0 {
		b.each(ne, func(lo, hi int) {
			kernels.ClampVnewcHigh(buf.vnewc, p.EOSvMax, lo, hi)
		})
	}
	b.each(ne, func(lo, hi int) { kernels.CheckVBounds(d, lo, hi, &buf.flag) })
	if err := buf.flag.Err(); err != nil {
		return err
	}

	for r, regList := range d.Regions.ElemList {
		b.evalEOSRegion(d, regList, d.Regions.Rep(r))
	}
	b.s.SetPhase(PhaseVolumes)
	b.each(ne, func(lo, hi int) { kernels.UpdateVolumes(d, p.VCut, lo, hi) })

	// --- CalcTimeConstraintsForElems ------------------------------------
	b.s.SetPhase(PhaseConstraints)
	d.Dtcourant = kernels.HugeDt
	d.Dthydro = kernels.HugeDt
	for _, regList := range d.Regions.ElemList {
		regList := regList
		count := len(regList)
		grain := b.grain(count)
		dtc := amt.Reduce(b.s, 0, count, grain, kernels.HugeDt,
			func(acc float64, i int) float64 {
				v := kernels.CourantConstraint(d, regList, i, i+1)
				if v < acc {
					return v
				}
				return acc
			},
			func(a, c float64) float64 {
				if c < a {
					return c
				}
				return a
			}).Get()
		if dtc < d.Dtcourant {
			d.Dtcourant = dtc
		}
		dth := amt.Reduce(b.s, 0, count, grain, kernels.HugeDt,
			func(acc float64, i int) float64 {
				v := kernels.HydroConstraint(d, regList, i, i+1)
				if v < acc {
					return v
				}
				return acc
			},
			func(a, c float64) float64 {
				if c < a {
					return c
				}
				return a
			}).Get()
		if dth < d.Dthydro {
			d.Dthydro = dth
		}
	}
	b.s.SetPhase(PhaseOther)
	return nil
}

// evalEOSRegion evaluates one region's EOS with a barrier after every loop.
func (b *BackendNaive) evalEOSRegion(d *domain.Domain, regList []int32, rep int) {
	buf := b.buf
	p := &d.Par
	count := len(regList)
	s := buf.scratch
	s.Ensure(count)

	for j := 0; j < rep; j++ {
		b.each(count, func(lo, hi int) { kernels.EOSGather(d, regList, s, lo, lo, hi) })
		b.each(count, func(lo, hi int) {
			kernels.EOSCompression(d, buf.vnewc, regList, s, lo, lo, hi)
		})
		if p.EOSvMin != 0 {
			b.each(count, func(lo, hi int) {
				kernels.EOSClampVMin(d, buf.vnewc, regList, s, p.EOSvMin, lo, lo, hi)
			})
		}
		if p.EOSvMax != 0 {
			b.each(count, func(lo, hi int) {
				kernels.EOSClampVMax(d, buf.vnewc, regList, s, p.EOSvMax, lo, lo, hi)
			})
		}
		b.each(count, func(lo, hi int) { kernels.EOSZeroWork(s, lo, lo, hi) })

		b.each(count, func(lo, hi int) { kernels.EnergyStep1(s, p.Emin, lo, hi) })
		b.each(count, func(lo, hi int) {
			kernels.CalcPressure(s.PHalfStep, s.Bvc, s.Pbvc, s.ENew, s.CompHalfStep,
				buf.vnewc, regList, 0, p.Pmin, p.PCut, p.EOSvMax, lo, hi)
		})
		b.each(count, func(lo, hi int) { kernels.EnergyStep2(s, p.RefDens, lo, hi) })
		b.each(count, func(lo, hi int) { kernels.EnergyStep3(s, p.ECut, p.Emin, lo, hi) })
		b.each(count, func(lo, hi int) {
			kernels.CalcPressure(s.PNew, s.Bvc, s.Pbvc, s.ENew, s.Compression,
				buf.vnewc, regList, 0, p.Pmin, p.PCut, p.EOSvMax, lo, hi)
		})
		b.each(count, func(lo, hi int) {
			kernels.EnergyStep4(s, buf.vnewc, regList, 0, p.RefDens, p.ECut, p.Emin, lo, hi)
		})
		b.each(count, func(lo, hi int) {
			kernels.CalcPressure(s.PNew, s.Bvc, s.Pbvc, s.ENew, s.Compression,
				buf.vnewc, regList, 0, p.Pmin, p.PCut, p.EOSvMax, lo, hi)
		})
		b.each(count, func(lo, hi int) {
			kernels.EnergyStep5(s, buf.vnewc, regList, 0, p.RefDens, p.QCut, lo, hi)
		})
	}

	b.each(count, func(lo, hi int) { kernels.EOSStore(d, regList, s, lo, lo, hi) })
	b.each(count, func(lo, hi int) {
		kernels.CalcSoundSpeed(d, buf.vnewc, regList, s, lo, lo, hi)
	})
}
