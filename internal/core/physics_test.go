package core

import (
	"math"
	"testing"

	"lulesh/internal/domain"
)

func newSmallDomain() *domain.Domain {
	return domain.NewSedov(domain.DefaultConfig(4))
}

// nodeIndex maps lattice coordinates to a node index.
func nodeIndex(d *domain.Domain, i, j, k int) int {
	en := d.Mesh.EdgeNodes
	return k*en*en + j*en + i
}

// TestSedovSolutionAxisSymmetric: the Sedov blast wave with the energy
// deposited at the origin of a cube with symmetry planes is invariant under
// permutation of the coordinate axes. After any number of steps the nodal
// state at (i,j,k) must equal the state at (j,i,k) with x and y exchanged,
// and likewise for the other permutations. This is an end-to-end physics
// check that exercises every kernel.
func TestSedovSolutionAxisSymmetric(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(6))
	b := NewBackendSerial(d)
	defer b.Close()
	if _, err := Run(d, b, RunConfig{MaxIterations: 30}); err != nil {
		t.Fatal(err)
	}
	en := d.Mesh.EdgeNodes
	const tol = 1e-9
	rel := func(a, c float64) float64 {
		den := math.Max(math.Abs(a), math.Abs(c))
		if den < 1e-300 {
			return 0
		}
		return math.Abs(a-c) / den
	}
	for k := 0; k < en; k++ {
		for j := 0; j < en; j++ {
			for i := 0; i < en; i++ {
				a := nodeIndex(d, i, j, k)
				// Swap x and y axes.
				bb := nodeIndex(d, j, i, k)
				if rel(d.X[a], d.Y[bb]) > tol || rel(d.Y[a], d.X[bb]) > tol ||
					rel(d.Z[a], d.Z[bb]) > tol {
					t.Fatalf("xy-swap position asymmetry at (%d,%d,%d): "+
						"(%v,%v,%v) vs (%v,%v,%v)", i, j, k,
						d.X[a], d.Y[a], d.Z[a], d.X[bb], d.Y[bb], d.Z[bb])
				}
				if rel(d.Xd[a], d.Yd[bb]) > tol || rel(d.Yd[a], d.Xd[bb]) > tol {
					t.Fatalf("xy-swap velocity asymmetry at (%d,%d,%d)", i, j, k)
				}
				// Swap y and z axes.
				c := nodeIndex(d, i, k, j)
				if rel(d.Y[a], d.Z[c]) > tol || rel(d.Z[a], d.Y[c]) > tol {
					t.Fatalf("yz-swap asymmetry at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

// TestSedovElementFieldsAxisSymmetric checks element-centred quantities
// under axis permutation.
func TestSedovElementFieldsAxisSymmetric(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(6))
	b := NewBackendSerial(d)
	defer b.Close()
	if _, err := Run(d, b, RunConfig{MaxIterations: 30}); err != nil {
		t.Fatal(err)
	}
	s := d.Mesh.EdgeElems
	elem := func(i, j, k int) int { return k*s*s + j*s + i }
	const tol = 1e-9
	rel := func(a, c float64) float64 {
		den := math.Max(math.Abs(a), math.Abs(c))
		if den < 1e-300 {
			return 0
		}
		return math.Abs(a-c) / den
	}
	for k := 0; k < s; k++ {
		for j := 0; j < s; j++ {
			for i := 0; i < s; i++ {
				a, bb := elem(i, j, k), elem(j, i, k)
				if rel(d.E[a], d.E[bb]) > tol || rel(d.P[a], d.P[bb]) > tol ||
					rel(d.V[a], d.V[bb]) > tol {
					t.Fatalf("element xy-swap asymmetry at (%d,%d,%d): "+
						"e %v vs %v", i, j, k, d.E[a], d.E[bb])
				}
			}
		}
	}
}

// TestSedovEnergyBudget: LULESH stores e as energy per unit reference
// volume (rho0 = 1), so the internal energy of an element is e*volo and
// kinetic energy is 0.5*nodalMass*v^2. The leapfrog scheme never creates
// energy; the hourglass control does (deliberately untracked) negative
// work, so the total dissipates slowly and monotonically. Assert both
// directions: no creation, and bounded dissipation.
func TestSedovEnergyBudget(t *testing.T) {
	energies := func(d *domain.Domain) (internal, kinetic float64) {
		for e := 0; e < d.NumElem(); e++ {
			internal += d.E[e] * d.Volo[e]
		}
		for n := 0; n < d.NumNode(); n++ {
			v2 := d.Xd[n]*d.Xd[n] + d.Yd[n]*d.Yd[n] + d.Zd[n]*d.Zd[n]
			kinetic += 0.5 * d.NodalMass[n] * v2
		}
		return
	}
	d := domain.NewSedov(domain.DefaultConfig(8))
	e0, _ := energies(d)

	b := NewBackendSerial(d)
	defer b.Close()
	prev := e0
	for step := 0; step < 60; step++ {
		TimeIncrement(d)
		if err := b.Step(d); err != nil {
			t.Fatal(err)
		}
		internal, kinetic := energies(d)
		total := internal + kinetic
		if total > prev*(1+1e-9) {
			t.Fatalf("step %d: energy created: %v -> %v", step, prev, total)
		}
		prev = total
	}
	internal, kinetic := energies(d)
	total := internal + kinetic
	if kinetic <= 0 {
		t.Fatal("blast should produce kinetic energy")
	}
	loss := (e0 - total) / e0
	if loss > 0.25 {
		t.Fatalf("dissipation too large: %.1f%% (e0=%v internal=%v kinetic=%v)",
			100*loss, e0, internal, kinetic)
	}
}

// TestSedovShockExpands: pressure must develop away from the origin over
// time — the blast wave moves outward.
func TestSedovShockExpands(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(8))
	b := NewBackendSerial(d)
	defer b.Close()

	countPressurized := func() int {
		n := 0
		for _, p := range d.P {
			if p > 1e-6 {
				n++
			}
		}
		return n
	}
	if _, err := Run(d, b, RunConfig{MaxIterations: 10}); err != nil {
		t.Fatal(err)
	}
	early := countPressurized()
	if _, err := Run(d, b, RunConfig{MaxIterations: 60}); err != nil {
		t.Fatal(err)
	}
	late := countPressurized()
	if late <= early {
		t.Fatalf("shock did not expand: %d -> %d pressurized elements", early, late)
	}
	if early == 0 {
		t.Fatal("no pressure developed at all")
	}
}

// TestSedovVolumesStayPositive: relative volumes must remain positive and
// bounded through the run.
func TestSedovVolumesStayPositive(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(6))
	b := NewBackendSerial(d)
	defer b.Close()
	for step := 0; step < 50; step++ {
		TimeIncrement(d)
		if err := b.Step(d); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for e := 0; e < d.NumElem(); e++ {
			if d.V[e] <= 0 || d.V[e] > 100 {
				t.Fatalf("step %d: V[%d] = %v", step, e, d.V[e])
			}
		}
	}
}

// TestSedovDtRamps: after the first cycles the time step should grow from
// its conservative initial value (bounded by the ub multiplier per step)
// and stay positive.
func TestSedovDtRamps(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(6))
	b := NewBackendSerial(d)
	defer b.Close()
	prev := d.Deltatime
	grew := false
	for step := 0; step < 40; step++ {
		TimeIncrement(d)
		if d.Deltatime <= 0 {
			t.Fatalf("step %d: dt = %v", step, d.Deltatime)
		}
		if d.Deltatime > prev*d.Par.DeltaTimeMultUB*(1+1e-12) {
			t.Fatalf("step %d: dt grew faster than ub: %v -> %v",
				step, prev, d.Deltatime)
		}
		if d.Deltatime > prev {
			grew = true
		}
		prev = d.Deltatime
		if err := b.Step(d); err != nil {
			t.Fatal(err)
		}
	}
	if !grew {
		t.Error("dt never grew during the ramp phase")
	}
}

// TestOriginEnergyDecreases: the origin element expands and converts
// internal energy to kinetic energy, so e(0) decreases monotonically in
// the early phase.
func TestOriginEnergyDecreases(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(6))
	b := NewBackendSerial(d)
	defer b.Close()
	prev := d.E[0]
	for step := 0; step < 30; step++ {
		TimeIncrement(d)
		if err := b.Step(d); err != nil {
			t.Fatal(err)
		}
		if d.E[0] > prev+1e-9 {
			t.Fatalf("step %d: origin energy rose %v -> %v", step, prev, d.E[0])
		}
		prev = d.E[0]
	}
	if prev >= domain.NewSedov(domain.DefaultConfig(6)).E[0] {
		t.Error("origin energy never decreased")
	}
}

// TestKnownOriginEnergySize10: regression anchor — the full s=10 run
// produced this origin energy when the port was validated; all backends
// reproduce it bitwise. Guards against accidental physics changes.
func TestKnownOriginEnergySize10(t *testing.T) {
	if testing.Short() {
		t.Skip("full run in -short mode")
	}
	d := domain.NewSedov(domain.DefaultConfig(10))
	b := NewBackendSerial(d)
	defer b.Close()
	res, err := Run(d, b, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 231 {
		t.Errorf("iterations = %d, want 231", res.Iterations)
	}
	if math.Abs(res.OriginEnergy-2.720531e+04)/2.720531e+04 > 1e-6 {
		t.Errorf("origin energy = %v, want 2.720531e+04", res.OriginEnergy)
	}
}

// TestSedovSimilarityScaling: after the initial transient, the blast
// front follows the Sedov-Taylor similarity solution R(t) ∝ t^(2/5).
// On a coarse mesh with the shock position quantized to element size the
// fitted exponent is loose, but it must sit in the similarity regime and
// far from ballistic (1.0) or diffusive (0.5 with the wrong prefactor
// trend) behaviour.
func TestSedovSimilarityScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("long physics run in -short mode")
	}
	d := domain.NewSedov(domain.DefaultConfig(20))
	b := NewBackendSerial(d)
	defer b.Close()
	s := d.Mesh.EdgeElems
	h := 1.125 / float64(s)
	radiusOfPeak := func() float64 {
		best, bestI := -1.0, 0
		for i := 0; i < s; i++ {
			if p := d.P[i]; p > best {
				best, bestI = p, i
			}
		}
		return (float64(bestI) + 0.5) * h
	}
	var ts, rs []float64
	for step := 0; step < 200; step++ {
		TimeIncrement(d)
		if err := b.Step(d); err != nil {
			t.Fatal(err)
		}
		if step >= 80 && step%10 == 9 { // past the deposit transient
			ts = append(ts, math.Log(d.Time))
			rs = append(rs, math.Log(radiusOfPeak()))
		}
	}
	// Least-squares slope of log R over log t.
	n := float64(len(ts))
	var sx, sy, sxx, sxy float64
	for i := range ts {
		sx += ts[i]
		sy += rs[i]
		sxx += ts[i] * ts[i]
		sxy += ts[i] * rs[i]
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	if slope < 0.2 || slope > 0.6 {
		t.Fatalf("shock-front exponent %.3f outside the Sedov similarity "+
			"band [0.2, 0.6] (theory: 0.4)", slope)
	}
}
