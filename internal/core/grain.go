package core

import (
	"time"

	"lulesh/internal/amt"
)

// The adaptive grain controller: a feedback loop that replaces the static
// Table I partition sizes. The paper tunes partition grain offline per
// (size, threads) pair; the controller instead reads the scheduler's
// per-worker busy/idle counters — the same idle-rate performance counter
// HPX exposes and Figure 11 plots — every few timesteps and adjusts the
// grain to hold the idle rate under a target:
//
//   - idle rate above target  → workers are starving between barriers →
//     halve the partition size, creating more (smaller) tasks to fill the
//     gaps;
//   - idle rate well below target → the pool is saturated → double the
//     partition size, buying back per-task dispatch overhead.
//
// A dead band between the two thresholds prevents oscillation, and grain
// stays within the Table I tuning bounds. Regraining changes only how
// loops are partitioned — kernels, per-datum arithmetic and reduction
// order are grain-invariant — so results remain bitwise identical to the
// serial reference at every setting (asserted by the equivalence tests
// and the luleshverify locality sweep).

const (
	// DefaultTargetIdle is the controller's idle-rate setpoint when
	// Options.TargetIdle is zero.
	DefaultTargetIdle = 0.15

	// grainMinPart / grainMaxPart bound the partition sizes the
	// controller may choose, matching the Table I heuristic bounds.
	grainMinPart = 64
	grainMaxPart = 8192

	// grainAdjustEvery is the number of timesteps between controller
	// decisions — long enough for a measurable busy/idle window, short
	// enough to converge within a reduced-iteration run.
	grainAdjustEvery = 4
)

// grainController accumulates busy/idle windows and emits scale decisions.
type grainController struct {
	target float64

	steps    int
	lastBusy time.Duration
	lastWall time.Time

	adjustments int // grain changes applied (reporting only)
}

func newGrainController(target float64, now time.Time) *grainController {
	if target <= 0 {
		target = DefaultTargetIdle
	}
	return &grainController{target: target, lastWall: now}
}

// tick observes one completed timestep given the scheduler's cumulative
// counters. Every grainAdjustEvery steps it closes the measurement window
// and returns a decision: -1 narrow the grain (halve), +1 widen (double),
// 0 hold.
func (g *grainController) tick(c amt.Counters, now time.Time) int {
	g.steps++
	if g.steps%grainAdjustEvery != 0 {
		return 0
	}
	wall := now.Sub(g.lastWall)
	busy := c.Busy - g.lastBusy
	g.lastBusy = c.Busy
	g.lastWall = now
	if wall <= 0 || c.Workers == 0 || busy < 0 {
		// busy < 0 means the counters were reset mid-window (core.Run
		// resets at start); resynchronize and skip this decision.
		return 0
	}
	util := float64(busy) / (float64(wall) * float64(c.Workers))
	idle := 1 - util
	if idle > g.target {
		return -1
	}
	if idle < g.target/3 {
		return 1
	}
	return 0
}

// scaleGrain applies a controller decision to a partition size for a loop
// of n indices on nw workers, clamping to the tuning bounds and to at
// most one partition-per-worker's worth of widening (a grain so large
// that fewer partitions than workers exist can only raise the idle rate).
func scaleGrain(part, scale, n, nw int) int {
	switch scale {
	case -1:
		part /= 2
	case 1:
		part *= 2
	}
	upper := grainMaxPart
	if nw > 0 {
		if perWorker := n / nw; perWorker < upper {
			upper = perWorker
		}
	}
	if upper < grainMinPart {
		upper = grainMinPart
	}
	if part > upper {
		part = upper
	}
	if part < grainMinPart {
		part = grainMinPart
	}
	return part
}
