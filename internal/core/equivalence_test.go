package core

import (
	"fmt"
	"testing"

	"lulesh/internal/domain"
)

// runSteps advances cfg's Sedov problem n cycles under the given backend
// factory and returns the final domain.
func runSteps(t *testing.T, cfg domain.Config, n int, mk func(*domain.Domain) Backend) *domain.Domain {
	t.Helper()
	d := domain.NewSedov(cfg)
	b := mk(d)
	defer b.Close()
	if _, err := Run(d, b, RunConfig{MaxIterations: n}); err != nil {
		t.Fatalf("%s: %v", b.Name(), err)
	}
	return d
}

// compareDomains checks bitwise equality of every physically meaningful
// state array plus the time-stepping state.
func compareDomains(t *testing.T, name string, a, b *domain.Domain) {
	t.Helper()
	arrays := []struct {
		label string
		x, y  []float64
	}{
		{"X", a.X, b.X}, {"Y", a.Y, b.Y}, {"Z", a.Z, b.Z},
		{"Xd", a.Xd, b.Xd}, {"Yd", a.Yd, b.Yd}, {"Zd", a.Zd, b.Zd},
		{"Xdd", a.Xdd, b.Xdd}, {"Ydd", a.Ydd, b.Ydd}, {"Zdd", a.Zdd, b.Zdd},
		{"Fx", a.Fx, b.Fx}, {"Fy", a.Fy, b.Fy}, {"Fz", a.Fz, b.Fz},
		{"E", a.E, b.E}, {"P", a.P, b.P}, {"Q", a.Q, b.Q},
		{"Ql", a.Ql, b.Ql}, {"Qq", a.Qq, b.Qq},
		{"V", a.V, b.V}, {"Vdov", a.Vdov, b.Vdov},
		{"Arealg", a.Arealg, b.Arealg}, {"SS", a.SS, b.SS},
		{"Delv", a.Delv, b.Delv},
	}
	for _, arr := range arrays {
		for i := range arr.x {
			if arr.x[i] != arr.y[i] {
				t.Fatalf("%s: %s[%d] differs: %v vs %v",
					name, arr.label, i, arr.x[i], arr.y[i])
			}
		}
	}
	if a.Time != b.Time || a.Deltatime != b.Deltatime ||
		a.Dtcourant != b.Dtcourant || a.Dthydro != b.Dthydro || a.Cycle != b.Cycle {
		t.Fatalf("%s: time-stepping state differs: t=%v/%v dt=%v/%v dtc=%v/%v",
			name, a.Time, b.Time, a.Deltatime, b.Deltatime, a.Dtcourant, b.Dtcourant)
	}
}

// TestBackendsBitwiseEquivalent is the central correctness property of the
// reproduction: every backend, at every thread count, executes the same
// floating-point operations in the same order per datum, so the entire
// simulation state must match the serial run bit for bit.
func TestBackendsBitwiseEquivalent(t *testing.T) {
	cfg := domain.DefaultConfig(6)
	const steps = 15
	ref := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
		return NewBackendSerial(d)
	})

	for _, threads := range []int{1, 2, 3, 4} {
		threads := threads
		t.Run(fmt.Sprintf("omp-%dt", threads), func(t *testing.T) {
			got := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				return NewBackendOMP(d, threads)
			})
			compareDomains(t, "omp", ref, got)
		})
		t.Run(fmt.Sprintf("naive-%dt", threads), func(t *testing.T) {
			got := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				return NewBackendNaive(d, threads)
			})
			compareDomains(t, "naive", ref, got)
		})
		t.Run(fmt.Sprintf("task-%dt", threads), func(t *testing.T) {
			got := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				return NewBackendTask(d, DefaultOptions(6, threads))
			})
			compareDomains(t, "task", ref, got)
		})
	}
}

// TestTaskBackendPartitionInvariance: the result must not depend on the
// partition sizes (Table I tunes performance, never values).
func TestTaskBackendPartitionInvariance(t *testing.T) {
	cfg := domain.DefaultConfig(5)
	const steps = 10
	ref := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
		return NewBackendSerial(d)
	})
	for _, part := range []struct{ nodal, elem int }{
		{1, 1}, {7, 13}, {64, 64}, {1000000, 1000000},
	} {
		part := part
		t.Run(fmt.Sprintf("part-%d-%d", part.nodal, part.elem), func(t *testing.T) {
			got := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				opt := DefaultOptions(5, 2)
				opt.PartNodal = part.nodal
				opt.PartElem = part.elem
				return NewBackendTask(d, opt)
			})
			compareDomains(t, "task-part", ref, got)
		})
	}
}

// TestTaskBackendAblationInvariance: every combination of the paper's four
// techniques computes the identical answer — the toggles trade performance,
// not correctness.
func TestTaskBackendAblationInvariance(t *testing.T) {
	cfg := domain.DefaultConfig(5)
	const steps = 8
	ref := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
		return NewBackendSerial(d)
	})
	for mask := 0; mask < 16; mask++ {
		mask := mask
		t.Run(fmt.Sprintf("mask-%04b", mask), func(t *testing.T) {
			got := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				opt := DefaultOptions(5, 2)
				opt.Chain = mask&1 != 0
				opt.Fuse = mask&2 != 0
				opt.ParallelForces = mask&4 != 0
				opt.ParallelRegions = mask&8 != 0
				return NewBackendTask(d, opt)
			})
			compareDomains(t, "task-ablation", ref, got)
		})
	}
}

// TestBackendsEquivalentAcrossRegionCounts covers the Figure 10 parameter
// axis: region decomposition changes the work structure, not the answer's
// backend-independence.
func TestBackendsEquivalentAcrossRegionCounts(t *testing.T) {
	for _, nr := range []int{1, 2, 16, 21} {
		nr := nr
		t.Run(fmt.Sprintf("regions-%d", nr), func(t *testing.T) {
			cfg := domain.Config{EdgeElems: 5, NumReg: nr, Balance: 1, Cost: 1}
			const steps = 8
			ref := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				return NewBackendSerial(d)
			})
			got := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				return NewBackendTask(d, DefaultOptions(5, 2))
			})
			compareDomains(t, "task-regions", ref, got)
			got2 := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				return NewBackendOMP(d, 2)
			})
			compareDomains(t, "omp-regions", ref, got2)
		})
	}
}

// TestBackendsEquivalentFullRun drives a tiny problem to its stop time on
// all backends, covering the dt ramp, shock formation and the final-step
// clamping logic end to end.
func TestBackendsEquivalentFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full run in -short mode")
	}
	cfg := domain.DefaultConfig(4)
	ref := runSteps(t, cfg, 0, func(d *domain.Domain) Backend {
		return NewBackendSerial(d)
	})
	for _, mk := range []struct {
		name string
		f    func(*domain.Domain) Backend
	}{
		{"omp", func(d *domain.Domain) Backend { return NewBackendOMP(d, 2) }},
		{"naive", func(d *domain.Domain) Backend { return NewBackendNaive(d, 2) }},
		{"task", func(d *domain.Domain) Backend { return NewBackendTask(d, DefaultOptions(4, 2)) }},
	} {
		mk := mk
		t.Run(mk.name, func(t *testing.T) {
			got := runSteps(t, cfg, 0, mk.f)
			compareDomains(t, mk.name, ref, got)
		})
	}
}

// TestPrioritizeHeavyRegionsInvariance: the LPT priority heuristic is a
// scheduling hint only — results stay bitwise identical to serial.
func TestPrioritizeHeavyRegionsInvariance(t *testing.T) {
	cfg := domain.DefaultConfig(5)
	const steps = 10
	ref := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
		return NewBackendSerial(d)
	})
	got := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
		opt := DefaultOptions(5, 2)
		opt.PrioritizeHeavyRegions = true
		return NewBackendTask(d, opt)
	})
	compareDomains(t, "task-priority", ref, got)
}

// TestOMPScheduleInvariance: dynamic and guided worksharing change which
// thread runs which chunk, never the per-datum arithmetic.
func TestOMPScheduleInvariance(t *testing.T) {
	cfg := domain.DefaultConfig(5)
	const steps = 10
	ref := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
		return NewBackendSerial(d)
	})
	for _, sched := range []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided} {
		sched := sched
		t.Run(fmt.Sprintf("schedule-%d", sched), func(t *testing.T) {
			got := runSteps(t, cfg, steps, func(d *domain.Domain) Backend {
				return NewBackendOMPSchedule(d, 3, sched)
			})
			compareDomains(t, "omp-schedule", ref, got)
		})
	}
}
