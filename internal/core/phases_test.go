package core

import (
	"testing"

	"lulesh/internal/domain"
	"lulesh/internal/perf"
)

// runProfiled advances a Sedov problem n cycles with a profiler attached and
// returns the final domain plus the profiler snapshot.
func runProfiled(t *testing.T, cfg domain.Config, n int,
	mk func(*domain.Domain) Backend) (*domain.Domain, perf.Snapshot) {
	t.Helper()
	d := domain.NewSedov(cfg)
	b := mk(d)
	defer b.Close()
	pb, ok := b.(PhaseProfiled)
	if !ok {
		t.Fatalf("%s does not implement PhaseProfiled", b.Name())
	}
	p := perf.NewProfiler(4, 0)
	pb.SetProfiler(p)
	if _, err := Run(d, b, RunConfig{MaxIterations: n}); err != nil {
		t.Fatalf("%s: %v", b.Name(), err)
	}
	pb.SetProfiler(nil)
	return d, p.Snapshot()
}

// TestProfilerPhaseAttribution checks that each profiled backend tags the
// paper's kernel families: after a few cycles every solver phase must have
// recorded work, and the records must carry real durations.
func TestProfilerPhaseAttribution(t *testing.T) {
	cfg := domain.DefaultConfig(6)
	const steps = 5
	backends := []struct {
		name string
		mk   func(*domain.Domain) Backend
	}{
		{"task", func(d *domain.Domain) Backend { return NewBackendTask(d, DefaultOptions(6, 2)) }},
		{"omp", func(d *domain.Domain) Backend { return NewBackendOMP(d, 2) }},
		{"naive", func(d *domain.Domain) Backend { return NewBackendNaive(d, 2) }},
	}
	for _, bk := range backends {
		bk := bk
		t.Run(bk.name, func(t *testing.T) {
			_, snap := runProfiled(t, cfg, steps, bk.mk)
			if snap.Tasks == 0 {
				t.Fatal("profiler recorded no tasks")
			}
			got := map[string]perf.PhaseStats{}
			for _, ph := range snap.Phases {
				got[ph.Name] = ph
			}
			for _, want := range []string{
				"force", "nodal", "elements", "eos-regions", "volumes", "constraints",
			} {
				ph, ok := got[want]
				if !ok {
					t.Errorf("phase %q never recorded; got %v", want, snap.Phases)
					continue
				}
				if ph.Count == 0 || ph.Busy <= 0 {
					t.Errorf("phase %q has count=%d busy=%v", want, ph.Count, ph.Busy)
				}
			}
		})
	}
}

// TestProfilerDoesNotPerturbResults is the observability analogue of the
// bitwise-equivalence property: attaching a profiler must not change a
// single bit of the simulation state.
func TestProfilerDoesNotPerturbResults(t *testing.T) {
	cfg := domain.DefaultConfig(6)
	const steps = 10
	for _, bk := range []struct {
		name string
		mk   func(*domain.Domain) Backend
	}{
		{"task", func(d *domain.Domain) Backend { return NewBackendTask(d, DefaultOptions(6, 3)) }},
		{"omp", func(d *domain.Domain) Backend { return NewBackendOMP(d, 3) }},
		{"naive", func(d *domain.Domain) Backend { return NewBackendNaive(d, 3) }},
	} {
		bk := bk
		t.Run(bk.name, func(t *testing.T) {
			plain := runSteps(t, cfg, steps, bk.mk)
			profiled, snap := runProfiled(t, cfg, steps, bk.mk)
			if snap.Tasks == 0 {
				t.Fatal("profiled run recorded nothing")
			}
			compareDomains(t, bk.name, plain, profiled)
		})
	}
}
