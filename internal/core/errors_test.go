package core

import (
	"errors"
	"fmt"
	"testing"

	"lulesh/internal/domain"
	"lulesh/internal/kernels"
)

// backendFactories enumerates all backends for failure-injection tests.
func backendFactories(threads int) []struct {
	name string
	mk   func(*domain.Domain) Backend
} {
	return []struct {
		name string
		mk   func(*domain.Domain) Backend
	}{
		{"serial", func(d *domain.Domain) Backend { return NewBackendSerial(d) }},
		{"omp", func(d *domain.Domain) Backend { return NewBackendOMP(d, threads) }},
		{"naive", func(d *domain.Domain) Backend { return NewBackendNaive(d, threads) }},
		{"task", func(d *domain.Domain) Backend {
			return NewBackendTask(d, DefaultOptions(d.Mesh.EdgeElems, threads))
		}},
	}
}

func TestAllBackendsDetectVolumeError(t *testing.T) {
	for _, f := range backendFactories(2) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			d := domain.NewSedov(domain.DefaultConfig(4))
			b := f.mk(d)
			defer b.Close()
			// Invert an element by crossing its nodes: kinematics will
			// compute a non-positive volume.
			d.V[5] = -1.0
			TimeIncrement(d)
			err := b.Step(d)
			if !errors.Is(err, kernels.ErrVolume) {
				t.Fatalf("err = %v, want ErrVolume", err)
			}
		})
	}
}

func TestAllBackendsDetectQStop(t *testing.T) {
	for _, f := range backendFactories(2) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			d := domain.NewSedov(domain.DefaultConfig(4))
			b := f.mk(d)
			defer b.Close()
			d.Par.QStop = 1e-30 // any developing viscosity trips the check
			// Run a few steps so a shock forms and q becomes nonzero.
			var err error
			for i := 0; i < 50 && err == nil; i++ {
				TimeIncrement(d)
				err = b.Step(d)
			}
			if !errors.Is(err, kernels.ErrQStop) {
				t.Fatalf("err = %v, want ErrQStop", err)
			}
		})
	}
}

func TestRunPropagatesErrorWithCycle(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(4))
	b := NewBackendSerial(d)
	defer b.Close()
	d.V[0] = -1
	_, err := Run(d, b, RunConfig{MaxIterations: 5})
	if err == nil || !errors.Is(err, kernels.ErrVolume) {
		t.Fatalf("Run err = %v", err)
	}
	if got := fmt.Sprint(err); got == kernels.ErrVolume.Error() {
		t.Fatalf("error should carry cycle context: %q", got)
	}
}

func TestBackendsRecoverAfterErrorReset(t *testing.T) {
	// After an error the backend's sticky flag must reset on the next
	// Step call (fresh domain).
	for _, f := range backendFactories(2) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			bad := domain.NewSedov(domain.DefaultConfig(3))
			bad.V[1] = -1
			b := f.mk(bad)
			defer b.Close()
			TimeIncrement(bad)
			if err := b.Step(bad); !errors.Is(err, kernels.ErrVolume) {
				t.Fatalf("setup: %v", err)
			}
			// Heal the domain and step again: the flag must have been
			// cleared, so no stale error.
			bad.V[1] = 1
			TimeIncrement(bad)
			if err := b.Step(bad); err != nil {
				t.Fatalf("flag not reset: %v", err)
			}
		})
	}
}
