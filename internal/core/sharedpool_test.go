package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"lulesh/internal/amt"
	"lulesh/internal/domain"
)

// TestSharedPoolConcurrentJobsBitwise is the multi-tenancy correctness
// property behind luleshd: >=8 task-backend simulations multiplexed
// concurrently onto ONE shared amt worker pool must produce domains
// bitwise identical to the same problems run serially. Concurrency may
// reorder task *execution* across jobs, but each job's dependency graph
// and per-datum floating-point order are fixed, so any divergence means
// job state leaked across contexts. Run under -race this also proves the
// job front-ends are data-race-free.
func TestSharedPoolConcurrentJobsBitwise(t *testing.T) {
	const jobs = 9
	const steps = 10

	// Heterogeneous job mix: sizes and scenarios differ so the jobs'
	// task graphs interleave irregularly on the pool.
	type spec struct {
		scenario string
		size     int
	}
	specs := make([]spec, jobs)
	for i := range specs {
		specs[i] = spec{
			scenario: []string{"sedov", "piston", "multimat"}[i%3],
			size:     4 + i%3, // 4..6
		}
	}

	build := func(sp spec) *domain.Domain {
		d, err := domain.BuildScenarioCube(
			domain.ScenarioSpec{Name: sp.scenario},
			domain.DefaultConfig(sp.size))
		if err != nil {
			t.Fatalf("build %v: %v", sp, err)
		}
		return d
	}

	// Ground truth: each job run to completion on the serial backend.
	refs := make([]*domain.Domain, jobs)
	for i, sp := range specs {
		d := build(sp)
		b := NewBackendSerial(d)
		if _, err := Run(d, b, RunConfig{MaxIterations: steps}); err != nil {
			t.Fatalf("serial job %d: %v", i, err)
		}
		b.Close()
		refs[i] = d
	}

	// Concurrent: all jobs overlap on one 4-worker pool, each through its
	// own NewJob front-end.
	pool := amt.NewScheduler(amt.WithWorkers(4), amt.WithStealHalf(true))
	defer pool.Close()

	got := make([]*domain.Domain, jobs)
	var wg sync.WaitGroup
	wg.Add(jobs)
	errCh := make(chan error, jobs)
	for i, sp := range specs {
		i, sp := i, sp
		go func() {
			defer wg.Done()
			d := build(sp)
			opt := DefaultOptions(sp.size, 4)
			opt.Scheduler = pool.NewJob()
			b := NewBackendTask(d, opt)
			defer b.Close()
			if _, err := Run(d, b, RunConfig{MaxIterations: steps}); err != nil {
				errCh <- fmt.Errorf("concurrent job %d: %w", i, err)
				return
			}
			got[i] = d
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for i := range specs {
		compareDomains(t, fmt.Sprintf("job-%d(%s,s=%d)", i,
			specs[i].scenario, specs[i].size), refs[i], got[i])
	}
	if inf := pool.PoolInflight(); inf != 0 {
		t.Fatalf("pool inflight after all jobs quiesced: %d", inf)
	}
}

// TestSharedPoolBackendCloseLeavesPool: a task backend in shared-pool
// mode must not tear down the external pool on Close, and must report the
// pool's worker count rather than Options.Threads.
func TestSharedPoolBackendCloseLeavesPool(t *testing.T) {
	pool := amt.NewScheduler(amt.WithWorkers(3))
	defer pool.Close()

	cfg := domain.DefaultConfig(4)
	d := domain.NewSedov(cfg)
	opt := DefaultOptions(4, 99) // Threads deliberately wrong
	opt.Scheduler = pool.NewJob()
	b := NewBackendTask(d, opt)
	if b.Threads() != 3 {
		t.Fatalf("shared-pool backend Threads() = %d, want pool's 3", b.Threads())
	}
	if _, err := Run(d, b, RunConfig{MaxIterations: 3}); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// The pool must still execute work for other front-ends.
	d2 := domain.NewSedov(cfg)
	opt2 := DefaultOptions(4, 0)
	opt2.Scheduler = pool.NewJob()
	b2 := NewBackendTask(d2, opt2)
	defer b2.Close()
	if _, err := Run(d2, b2, RunConfig{MaxIterations: 3}); err != nil {
		t.Fatalf("pool unusable after sibling backend Close: %v", err)
	}
}

// TestRunInterrupt: the Interrupt hook stops the run at a step boundary
// with ErrInterrupted, leaving the domain in a consistent mid-run state.
func TestRunInterrupt(t *testing.T) {
	cfg := domain.DefaultConfig(4)
	d := domain.NewSedov(cfg)
	b := NewBackendSerial(d)
	defer b.Close()

	stopAfter := 5
	_, err := Run(d, b, RunConfig{
		MaxIterations: 50,
		Interrupt:     func() bool { return d.Cycle >= stopAfter },
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if d.Cycle != stopAfter {
		t.Fatalf("stopped at cycle %d, want %d", d.Cycle, stopAfter)
	}

	// Never-true interrupt must not change behavior.
	d2 := domain.NewSedov(cfg)
	b2 := NewBackendSerial(d2)
	defer b2.Close()
	if _, err := Run(d2, b2, RunConfig{MaxIterations: 5, Interrupt: func() bool { return false }}); err != nil {
		t.Fatal(err)
	}
	if d2.Cycle != 5 {
		t.Fatalf("cycle = %d, want 5", d2.Cycle)
	}
}
