package core

import (
	"testing"
	"testing/quick"
)

func TestTableIPartitionsPaperValues(t *testing.T) {
	// The tuned values of the paper's Table I.
	cases := []struct{ size, nodal, elem int }{
		{45, 2048, 2048},
		{60, 4096, 2048},
		{75, 8192, 4096},
		{90, 8192, 4096},
		{120, 8192, 2048},
		{150, 8192, 2048},
	}
	for _, c := range cases {
		n, e := TableIPartitions(c.size, 24)
		if n != c.nodal || e != c.elem {
			t.Errorf("size %d: partitions (%d,%d), want (%d,%d)",
				c.size, n, e, c.nodal, c.elem)
		}
	}
}

func TestTableIPartitionsHeuristicBounds(t *testing.T) {
	f := func(s8, t8 uint8) bool {
		size := int(s8)%40 + 2 // off-table sizes
		threads := int(t8)%8 + 1
		n, e := TableIPartitions(size, threads)
		return n >= 64 && n <= 8192 && e >= 64 && e <= 8192
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableIPartitionsHeuristicPowerOfTwo(t *testing.T) {
	for _, size := range []int{5, 10, 20, 30, 40} {
		n, _ := TableIPartitions(size, 2)
		if n&(n-1) != 0 {
			t.Errorf("size %d: heuristic partition %d is not a power of two", size, n)
		}
	}
}

func TestNearestPow2(t *testing.T) {
	// Ties between the two neighbouring powers round down.
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 4}, {5, 4}, {6, 4}, {7, 8},
		{8, 8}, {12, 8}, {13, 16}, {1024, 1024}, {1500, 1024}, {1600, 2048},
	}
	for _, c := range cases {
		if got := nearestPow2(c.in); got != c.want {
			t.Errorf("nearestPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDefaultOptionsEnablesAllTechniques(t *testing.T) {
	o := DefaultOptions(45, 24)
	if !o.Chain || !o.Fuse || !o.ParallelForces || !o.ParallelRegions {
		t.Fatalf("paper configuration must enable all techniques: %+v", o)
	}
	if o.PartNodal != 2048 || o.PartElem != 2048 {
		t.Fatalf("size 45 partitions = (%d,%d)", o.PartNodal, o.PartElem)
	}
	if o.Threads != 24 {
		t.Fatalf("threads = %d", o.Threads)
	}
}

func TestPartitionCoversRange(t *testing.T) {
	f := func(n16 uint16, p8 uint8) bool {
		n := int(n16) % 10000
		part := int(p8)
		next := 0
		ok := true
		partition(n, part, func(lo, hi int) {
			if lo != next || hi <= lo {
				ok = false
			}
			if part >= 1 && hi-lo > part {
				ok = false
			}
			next = hi
		})
		return ok && next == n || (n == 0 && next == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNumPartitions(t *testing.T) {
	cases := []struct{ n, part, want int }{
		{0, 10, 0}, {1, 10, 1}, {10, 10, 1}, {11, 10, 2}, {100, 7, 15},
		{5, 0, 1}, {5, -3, 1},
	}
	for _, c := range cases {
		if got := numPartitions(c.n, c.part); got != c.want {
			t.Errorf("numPartitions(%d,%d) = %d, want %d", c.n, c.part, got, c.want)
		}
	}
	// Consistency with partition().
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, p := range []int{1, 3, 64} {
			count := 0
			partition(n, p, func(lo, hi int) { count++ })
			if count != numPartitions(n, p) {
				t.Errorf("partition(%d,%d) made %d chunks, numPartitions says %d",
					n, p, count, numPartitions(n, p))
			}
		}
	}
}

func TestTaskBackendDefaultsAppliedWhenZero(t *testing.T) {
	d := newSmallDomain()
	opt := Options{Threads: 2, Chain: true, Fuse: true,
		ParallelForces: true, ParallelRegions: true}
	b := NewBackendTask(d, opt)
	defer b.Close()
	got := b.Options()
	if got.PartNodal < 1 || got.PartElem < 1 {
		t.Fatalf("zero partitions not defaulted: %+v", got)
	}
}
