package core

import "time"

// SpanObserver receives one callback per executed task (AMT backends) or
// per region body (fork-join backend), for feeding a trace.Recorder
// timeline. Backends implementing TraceSource accept one.
type SpanObserver = func(worker int, start time.Time, dur time.Duration)

// TraceSource is implemented by backends whose runtime can report
// execution spans.
type TraceSource interface {
	SetObserver(SpanObserver)
}

// SetObserver forwards spans from the fork-join team.
func (b *BackendOMP) SetObserver(fn SpanObserver) { b.pool.SetObserver(fn) }

// SetObserver forwards spans from the AMT scheduler.
func (b *BackendTask) SetObserver(fn SpanObserver) { b.s.SetObserver(fn) }

// SetObserver forwards spans from the AMT scheduler.
func (b *BackendNaive) SetObserver(fn SpanObserver) { b.s.SetObserver(fn) }
