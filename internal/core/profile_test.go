package core

import (
	"sync"
	"testing"
	"time"

	"lulesh/internal/domain"
	"lulesh/internal/trace"
)

func TestSerialProfilingPhases(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(6))
	b := NewBackendSerial(d)
	defer b.Close()
	b.EnableProfiling()
	if _, err := Run(d, b, RunConfig{MaxIterations: 5}); err != nil {
		t.Fatal(err)
	}
	prof := b.Profile()
	want := []string{"stress-force", "hourglass-force", "nodal-update",
		"kinematics", "monotonic-q", "eos", "constraints"}
	if len(prof) != len(want) {
		t.Fatalf("%d phases, want %d: %+v", len(prof), len(want), prof)
	}
	for i, name := range want {
		if prof[i].Name != name {
			t.Fatalf("phase[%d] = %q, want %q", i, prof[i].Name, name)
		}
		if prof[i].Total <= 0 {
			t.Fatalf("phase %q has zero time", name)
		}
	}
}

func TestProfileNilWithoutEnable(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(4))
	b := NewBackendSerial(d)
	defer b.Close()
	if _, err := Run(d, b, RunConfig{MaxIterations: 2}); err != nil {
		t.Fatal(err)
	}
	if b.Profile() != nil {
		t.Fatal("Profile should be nil unless enabled")
	}
}

func TestProfilingDoesNotChangeResults(t *testing.T) {
	run := func(profile bool) float64 {
		d := domain.NewSedov(domain.DefaultConfig(5))
		b := NewBackendSerial(d)
		defer b.Close()
		if profile {
			b.EnableProfiling()
		}
		res, err := Run(d, b, RunConfig{MaxIterations: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.OriginEnergy
	}
	if run(false) != run(true) {
		t.Fatal("profiling altered results")
	}
}

func TestBackendsImplementTraceSource(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(4))
	for _, b := range []Backend{
		NewBackendOMP(d, 2),
		NewBackendNaive(d, 2),
		NewBackendTask(d, DefaultOptions(4, 2)),
	} {
		if _, ok := b.(TraceSource); !ok {
			t.Errorf("%s does not implement TraceSource", b.Name())
		}
		b.Close()
	}
}

func TestTaskBackendFeedsTraceRecorder(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(5))
	b := NewBackendTask(d, DefaultOptions(5, 2))
	defer b.Close()
	rec := trace.NewRecorder(0)
	var mu sync.Mutex
	maxWorker := -1
	b.SetObserver(func(worker int, start time.Time, dur time.Duration) {
		rec.Record("task", worker, start, dur)
		mu.Lock()
		if worker > maxWorker {
			maxWorker = worker
		}
		mu.Unlock()
	})
	if _, err := Run(d, b, RunConfig{MaxIterations: 3}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	mu.Lock()
	defer mu.Unlock()
	if maxWorker < 0 || maxWorker > 1 {
		t.Fatalf("worker ids out of range: max %d", maxWorker)
	}
}

func TestOMPBackendFeedsTraceRecorder(t *testing.T) {
	d := domain.NewSedov(domain.DefaultConfig(5))
	b := NewBackendOMP(d, 2)
	defer b.Close()
	rec := trace.NewRecorder(0)
	b.SetObserver(func(worker int, start time.Time, dur time.Duration) {
		rec.Record("region", worker, start, dur)
	})
	if _, err := Run(d, b, RunConfig{MaxIterations: 2}); err != nil {
		t.Fatal(err)
	}
	// Two threads per region, dozens of regions per iteration.
	if rec.Len() < 50 {
		t.Fatalf("only %d spans for a fork-join run", rec.Len())
	}
}
