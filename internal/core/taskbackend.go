package core

import (
	"sync"

	"lulesh/internal/amt"
	"lulesh/internal/domain"
	"lulesh/internal/kernels"
)

// BackendTask is the paper's contribution: a many-task-based LULESH
// orchestration on the AMT runtime. Per iteration it pre-creates the entire
// task graph (as the paper does for one leapfrog iteration), applying the
// four techniques of Section IV:
//
//   - manual partitioning of every loop into tasks of Options.PartNodal /
//     Options.PartElem indices (Figure 5, Table I),
//   - cross-loop task chains via continuations, keeping only the handful of
//     synchronization barriers that data dependencies force: element→node,
//     node→element, element→neighbour-element, region→join (Figure 6),
//   - fusion of consecutive kernels into one task so a scheduled task runs
//     longer between scheduler invocations (Figure 7),
//   - concurrent launch of independent kernel families: the stress and
//     hourglass force calculations, the per-region material chains, and the
//     volume-update tasks that overlap the EOS (Figure 8 / Section IV).
//
// Task-local temporaries (hourglass scratch, EOS scratch) are pooled and
// sized to one partition, the paper's locality optimization.
type BackendTask struct {
	s   *amt.Scheduler
	opt Options

	// Mesh-sized persistent temporaries.
	sigxx, sigyy, sigzz []float64
	determS, determH    []float64
	fxS, fyS, fzS       []float64
	fxH, fyH, fzH       []float64
	vnewc               []float64

	hgPool  sync.Pool // *hgScratch sized to one element partition
	eosPool sync.Pool // *kernels.EOSScratch sized to one element partition

	// Per-region-partition constraint minima, folded after the join.
	dtcPart, dthPart []float64

	flag kernels.Flag
}

// hgScratch holds the task-local hourglass temporaries for one partition.
type hgScratch struct {
	dvdx, dvdy, dvdz []float64
	x8n, y8n, z8n    []float64
}

func newHGScratch(n int) *hgScratch {
	return &hgScratch{
		dvdx: make([]float64, 8*n),
		dvdy: make([]float64, 8*n),
		dvdz: make([]float64, 8*n),
		x8n:  make([]float64, 8*n),
		y8n:  make([]float64, 8*n),
		z8n:  make([]float64, 8*n),
	}
}

// NewBackendTask creates the many-task backend for domains shaped like d.
func NewBackendTask(d *domain.Domain, opt Options) *BackendTask {
	if opt.Threads < 1 {
		opt.Threads = 1
	}
	if opt.PartNodal < 1 || opt.PartElem < 1 {
		n, e := TableIPartitions(d.Mesh.EdgeElems, opt.Threads)
		if opt.PartNodal < 1 {
			opt.PartNodal = n
		}
		if opt.PartElem < 1 {
			opt.PartElem = e
		}
	}
	ne := d.NumElem()
	b := &BackendTask{
		s:       amt.NewScheduler(amt.WithWorkers(opt.Threads)),
		opt:     opt,
		sigxx:   make([]float64, ne),
		sigyy:   make([]float64, ne),
		sigzz:   make([]float64, ne),
		determS: make([]float64, ne),
		determH: make([]float64, ne),
		fxS:     make([]float64, 8*ne),
		fyS:     make([]float64, 8*ne),
		fzS:     make([]float64, 8*ne),
		fxH:     make([]float64, 8*ne),
		fyH:     make([]float64, 8*ne),
		fzH:     make([]float64, 8*ne),
		vnewc:   make([]float64, ne),
	}
	partE := opt.PartElem
	b.hgPool.New = func() any { return newHGScratch(partE) }
	b.eosPool.New = func() any { return kernels.NewEOSScratch(partE) }

	nParts := 0
	for _, regList := range d.Regions.ElemList {
		nParts += numPartitions(len(regList), partE)
	}
	b.dtcPart = make([]float64, nParts)
	b.dthPart = make([]float64, nParts)
	return b
}

func (b *BackendTask) Name() string { return "task" }

// Threads reports the worker count.
func (b *BackendTask) Threads() int { return b.s.Workers() }

// Utilization reports the AMT scheduler's productive-time ratio (the HPX
// idle-rate counter of Figure 11).
func (b *BackendTask) Utilization() (float64, bool) {
	return b.s.CountersSnapshot().Utilization(), true
}

// ResetCounters restarts utilization accounting.
func (b *BackendTask) ResetCounters() { b.s.ResetCounters() }

// Close shuts the scheduler down.
func (b *BackendTask) Close() { b.s.Close() }

// Options returns the backend's configuration.
func (b *BackendTask) Options() Options { return b.opt }

// Step pre-creates and executes the task graph for one leapfrog iteration.
func (b *BackendTask) Step(d *domain.Domain) error {
	b.flag.Reset()

	// Stage 1: the two independent force families, one chain per element
	// partition each.
	forces := b.launchForces(d)
	if !b.opt.Chain {
		amt.WaitAll(forces)
		if err := b.flag.Err(); err != nil {
			return err
		}
	}

	// Barrier B1 (element→node): nodal chains need all corner forces.
	nodal := b.launchNodal(d, forces)
	if !b.opt.Chain {
		amt.WaitAll(nodal)
	}

	// Barrier B2 (node→element): kinematics needs updated positions and
	// velocities of all corner nodes.
	elems := b.launchElements(d, nodal)
	if !b.opt.Chain {
		amt.WaitAll(elems)
		if err := b.flag.Err(); err != nil {
			return err
		}
	}

	// Barrier B3 (element→neighbour element): the monotonic Q limiter
	// reads neighbour gradients; the volume update and the region chains
	// both depend on stage 3 and run concurrently.
	regionTasks := b.launchRegions(d, elems)
	volTasks := b.launchVolumes(d, elems)

	// Barrier B4 (join): fold the per-partition constraint minima.
	all := append(regionTasks, volTasks...)
	done := amt.AfterAllRun(b.s, all, func() {
		dtc, dth := kernels.HugeDt, kernels.HugeDt
		for _, v := range b.dtcPart {
			if v < dtc {
				dtc = v
			}
		}
		for _, v := range b.dthPart {
			if v < dth {
				dth = v
			}
		}
		d.Dtcourant = dtc
		d.Dthydro = dth
	})
	done.Get()
	return b.flag.Err()
}

// launchForces creates the stress and hourglass force tasks for every
// element partition. With ParallelForces the two families are independent
// tasks; otherwise each partition's hourglass chain is attached behind its
// stress chain.
func (b *BackendTask) launchForces(d *domain.Domain) []*amt.Void {
	if b.opt.Fuse && b.opt.BatchSpawn {
		return b.launchForcesBatched(d)
	}
	p := &d.Par
	var out []*amt.Void
	partition(d.NumElem(), b.opt.PartElem, func(lo, hi int) {
		stressInit := func() {
			kernels.InitStressTerms(d, b.sigxx, b.sigyy, b.sigzz, lo, hi)
		}
		stressIntegrate := func() {
			kernels.IntegrateStress(d, b.sigxx, b.sigyy, b.sigzz, b.determS,
				b.fxS, b.fyS, b.fzS, lo, hi)
			kernels.CheckDeterm(b.determS, lo, hi, &b.flag)
		}
		var stress *amt.Void
		if b.opt.Fuse {
			stress = amt.Run(b.s, func() { stressInit(); stressIntegrate() })
		} else {
			stress = amt.ThenRun(amt.Run(b.s, stressInit),
				func(amt.Unit) { stressIntegrate() })
		}
		out = append(out, stress)

		hg := func() *amt.Void {
			if b.opt.Fuse {
				run := func() {
					sc := b.hgPool.Get().(*hgScratch)
					kernels.HourglassPrep(d, sc.dvdx, sc.dvdy, sc.dvdz,
						sc.x8n, sc.y8n, sc.z8n, b.determH, lo, lo, hi, &b.flag)
					if p.HGCoef > 0 {
						kernels.FBHourglass(d, sc.dvdx, sc.dvdy, sc.dvdz,
							sc.x8n, sc.y8n, sc.z8n, b.determH, p.HGCoef, lo, lo, hi,
							b.fxH, b.fyH, b.fzH)
					}
					b.hgPool.Put(sc)
				}
				if b.opt.ParallelForces {
					return amt.Run(b.s, run)
				}
				return amt.ThenRun(stress, func(amt.Unit) { run() })
			}
			// Unfused: prep and force as chained tasks sharing scratch.
			sc := b.hgPool.Get().(*hgScratch)
			prep := func() {
				kernels.HourglassPrep(d, sc.dvdx, sc.dvdy, sc.dvdz,
					sc.x8n, sc.y8n, sc.z8n, b.determH, lo, lo, hi, &b.flag)
			}
			force := func() {
				if p.HGCoef > 0 {
					kernels.FBHourglass(d, sc.dvdx, sc.dvdy, sc.dvdz,
						sc.x8n, sc.y8n, sc.z8n, b.determH, p.HGCoef, lo, lo, hi,
						b.fxH, b.fyH, b.fzH)
				}
				b.hgPool.Put(sc)
			}
			var t *amt.Void
			if b.opt.ParallelForces {
				t = amt.Run(b.s, prep)
			} else {
				t = amt.ThenRun(stress, func(amt.Unit) { prep() })
			}
			return amt.ThenRun(t, func(amt.Unit) { force() })
		}()
		out = append(out, hg)
	})
	return out
}

// launchForcesBatched is the BatchSpawn variant of launchForces for the
// fused configuration: the independent root tasks of the force stage — the
// entire stage when ParallelForces, the stress family otherwise — are
// submitted with one amt.RunBatch (a single bookkeeping update and wake
// sweep) instead of one spawn/wake round-trip per partition chain. The
// task graph and per-datum arithmetic are identical to launchForces.
func (b *BackendTask) launchForcesBatched(d *domain.Domain) []*amt.Void {
	p := &d.Par
	var roots []func()
	type chainedHG struct {
		stress int // index in roots of the stress task this chain follows
		run    func()
	}
	var chained []chainedHG
	partition(d.NumElem(), b.opt.PartElem, func(lo, hi int) {
		stress := func() {
			kernels.InitStressTerms(d, b.sigxx, b.sigyy, b.sigzz, lo, hi)
			kernels.IntegrateStress(d, b.sigxx, b.sigyy, b.sigzz, b.determS,
				b.fxS, b.fyS, b.fzS, lo, hi)
			kernels.CheckDeterm(b.determS, lo, hi, &b.flag)
		}
		si := len(roots)
		roots = append(roots, stress)
		hg := func() {
			sc := b.hgPool.Get().(*hgScratch)
			kernels.HourglassPrep(d, sc.dvdx, sc.dvdy, sc.dvdz,
				sc.x8n, sc.y8n, sc.z8n, b.determH, lo, lo, hi, &b.flag)
			if p.HGCoef > 0 {
				kernels.FBHourglass(d, sc.dvdx, sc.dvdy, sc.dvdz,
					sc.x8n, sc.y8n, sc.z8n, b.determH, p.HGCoef, lo, lo, hi,
					b.fxH, b.fyH, b.fzH)
			}
			b.hgPool.Put(sc)
		}
		if b.opt.ParallelForces {
			roots = append(roots, hg)
		} else {
			chained = append(chained, chainedHG{si, hg})
		}
	})
	out := amt.RunBatch(b.s, roots)
	for _, c := range chained {
		run := c.run
		out = append(out, amt.ThenRun(out[c.stress], func(amt.Unit) { run() }))
	}
	return out
}

// launchNodal creates one fused chain per node partition: force gather,
// acceleration, boundary conditions, velocity, position.
func (b *BackendTask) launchNodal(d *domain.Domain, forces []*amt.Void) []*amt.Void {
	p := &d.Par
	delt := d.Deltatime
	barrier := amt.AfterAll(b.s, forces)
	var out []*amt.Void
	partition(d.NumNode(), b.opt.PartNodal, func(lo, hi int) {
		gather := func() {
			if p.HGCoef > 0 {
				kernels.GatherTwoCornerForces(d, b.fxS, b.fyS, b.fzS,
					b.fxH, b.fyH, b.fzH, lo, hi)
			} else {
				kernels.GatherCornerForces(d, b.fxS, b.fyS, b.fzS, lo, hi, false)
			}
		}
		accel := func() {
			kernels.CalcAcceleration(d, lo, hi)
			kernels.ApplyAccelBCFlags(d, lo, hi)
		}
		vel := func() { kernels.CalcVelocity(d, delt, p.UCut, lo, hi) }
		pos := func() { kernels.CalcPosition(d, delt, lo, hi) }

		if b.opt.Fuse {
			out = append(out, amt.ThenRun(barrier, func(amt.Unit) {
				gather()
				accel()
				vel()
				pos()
			}))
			return
		}
		t := amt.ThenRun(barrier, func(amt.Unit) { gather() })
		t = amt.ThenRun(t, func(amt.Unit) { accel() })
		t = amt.ThenRun(t, func(amt.Unit) { vel() })
		t = amt.ThenRun(t, func(amt.Unit) { pos() })
		out = append(out, t)
	})
	return out
}

// launchElements creates one chain per element partition: kinematics,
// strain rates, monotonic-Q gradients, the qstop scan, and the vnewc
// preparation with its volume bound check.
func (b *BackendTask) launchElements(d *domain.Domain, nodal []*amt.Void) []*amt.Void {
	p := &d.Par
	delt := d.Deltatime
	barrier := amt.AfterAll(b.s, nodal)
	var out []*amt.Void
	partition(d.NumElem(), b.opt.PartElem, func(lo, hi int) {
		kin := func() {
			kernels.CalcKinematics(d, delt, lo, hi)
			kernels.CalcStrainRate(d, lo, hi, &b.flag)
		}
		grad := func() { kernels.MonoQGradients(d, lo, hi) }
		prep := func() {
			kernels.QStopCheck(d, lo, hi, &b.flag)
			kernels.CopyVnewc(d, b.vnewc, lo, hi)
			if p.EOSvMin != 0 {
				kernels.ClampVnewcLow(b.vnewc, p.EOSvMin, lo, hi)
			}
			if p.EOSvMax != 0 {
				kernels.ClampVnewcHigh(b.vnewc, p.EOSvMax, lo, hi)
			}
			kernels.CheckVBounds(d, lo, hi, &b.flag)
		}
		if b.opt.Fuse {
			out = append(out, amt.ThenRun(barrier, func(amt.Unit) {
				kin()
				grad()
				prep()
			}))
			return
		}
		t := amt.ThenRun(barrier, func(amt.Unit) { kin() })
		t = amt.ThenRun(t, func(amt.Unit) { grad() })
		t = amt.ThenRun(t, func(amt.Unit) { prep() })
		out = append(out, t)
	})
	return out
}

// launchRegions creates the per-region material chains: monotonic Q, the
// repeated EOS evaluation, and the partition's time-constraint minima.
// With ParallelRegions all chains start at the stage-3 barrier; otherwise
// region r+1 waits for region r, as the sequential reference does.
func (b *BackendTask) launchRegions(d *domain.Domain, elems []*amt.Void) []*amt.Void {
	barrier := amt.AfterAll(b.s, elems)
	var out []*amt.Void
	parent := barrier
	pidx := 0
	for r, regList := range d.Regions.ElemList {
		regList := regList
		rep := d.Regions.Rep(r)
		var regionTasks []*amt.Void
		partition(len(regList), b.opt.PartElem, func(lo, hi int) {
			idx := pidx
			pidx++
			monoq := func() { kernels.MonoQRegion(d, regList, lo, hi) }
			eos := func() {
				sc := b.eosPool.Get().(*kernels.EOSScratch)
				kernels.EvalEOS(d, b.vnewc, regList, sc, rep, lo, hi)
				b.eosPool.Put(sc)
			}
			constraints := func() {
				b.dtcPart[idx] = kernels.CourantConstraint(d, regList, lo, hi)
				b.dthPart[idx] = kernels.HydroConstraint(d, regList, lo, hi)
			}
			// Optional LPT heuristic: launch the expensive chains at
			// high priority so they start as early as possible.
			attach := amt.ThenRun[amt.Unit]
			if b.opt.PrioritizeHeavyRegions && rep >= 10 {
				attach = amt.ThenRunHigh[amt.Unit]
			}
			var t *amt.Void
			if b.opt.Fuse {
				t = attach(parent, func(amt.Unit) {
					monoq()
					eos()
					constraints()
				})
			} else {
				t = attach(parent, func(amt.Unit) { monoq() })
				t = attach(t, func(amt.Unit) { eos() })
				t = attach(t, func(amt.Unit) { constraints() })
			}
			regionTasks = append(regionTasks, t)
		})
		out = append(out, regionTasks...)
		// Serialized mode: the next region waits for this one. Empty
		// regions contribute no tasks and must keep the previous parent —
		// AfterAll(nil) is already ready and would detach the next region
		// from the stage-3 barrier.
		if !b.opt.ParallelRegions && len(regionTasks) > 0 {
			parent = amt.AfterAll(b.s, regionTasks)
		}
	}
	return out
}

// launchVolumes creates the volume-commit tasks. They depend only on
// stage 3 (kinematics and the volume bound check) and therefore overlap
// the region chains.
func (b *BackendTask) launchVolumes(d *domain.Domain, elems []*amt.Void) []*amt.Void {
	vCut := d.Par.VCut
	barrier := amt.AfterAll(b.s, elems)
	var out []*amt.Void
	partition(d.NumElem(), b.opt.PartElem, func(lo, hi int) {
		out = append(out, amt.ThenRun(barrier, func(amt.Unit) {
			kernels.UpdateVolumes(d, vCut, lo, hi)
		}))
	})
	return out
}
