package core

import (
	"sync"
	"time"

	"lulesh/internal/amt"
	"lulesh/internal/domain"
	"lulesh/internal/kernels"
)

// BackendTask is the paper's contribution: a many-task-based LULESH
// orchestration on the AMT runtime. Per iteration it pre-creates the entire
// task graph (as the paper does for one leapfrog iteration), applying the
// four techniques of Section IV:
//
//   - manual partitioning of every loop into tasks of Options.PartNodal /
//     Options.PartElem indices (Figure 5, Table I),
//   - cross-loop task chains via continuations, keeping only the handful of
//     synchronization barriers that data dependencies force: element→node,
//     node→element, element→neighbour-element, region→join (Figure 6),
//   - fusion of consecutive kernels into one task so a scheduled task runs
//     longer between scheduler invocations (Figure 7),
//   - concurrent launch of independent kernel families: the stress and
//     hourglass force calculations, the per-region material chains, and the
//     volume-update tasks that overlap the EOS (Figure 8 / Section IV).
//
// Task-local temporaries (hourglass scratch, EOS scratch) are pooled and
// sized to one partition, the paper's locality optimization.
type BackendTask struct {
	s   *amt.Scheduler
	opt Options

	// aff is the locality layer's persistent partition→worker map
	// (Options.Affinity); nil when affinity is off.
	aff *affinityMap
	// grain is the idle-rate feedback controller (Options.AdaptiveGrain);
	// nil when the static Table I grain is used.
	grain *grainController

	// Mesh-sized persistent temporaries, carved from one arena.
	arena               *kernels.Arena
	sigxx, sigyy, sigzz []float64
	determS, determH    []float64
	fxS, fyS, fzS       []float64
	fxH, fyH, fzH       []float64
	vnewc               []float64

	hgPool  sync.Pool // *hgScratch sized to one element partition
	eosPool sync.Pool // *kernels.EOSScratch sized to one element partition

	// Per-region-partition constraint minima, folded after the join.
	dtcPart, dthPart []float64

	flag kernels.Flag
}

// hgScratch holds the task-local hourglass temporaries for one partition,
// carved from a single arena allocation so the six planes one task walks
// in lockstep are contiguous.
type hgScratch struct {
	arena kernels.Arena

	dvdx, dvdy, dvdz []float64
	x8n, y8n, z8n    []float64
}

func newHGScratch(n int) *hgScratch {
	sc := &hgScratch{}
	sc.ensure(n)
	return sc
}

// ensure grows the scratch to hold at least n elements. Needed because
// the adaptive grain controller can widen partitions after scratch of the
// original size has been pooled.
func (sc *hgScratch) ensure(n int) {
	if len(sc.dvdx) >= 8*n {
		return
	}
	sc.arena.Grow(6 * 8 * n)
	sc.dvdx = sc.arena.Take(8 * n)
	sc.dvdy = sc.arena.Take(8 * n)
	sc.dvdz = sc.arena.Take(8 * n)
	sc.x8n = sc.arena.Take(8 * n)
	sc.y8n = sc.arena.Take(8 * n)
	sc.z8n = sc.arena.Take(8 * n)
}

// NewBackendTask creates the many-task backend for domains shaped like d.
func NewBackendTask(d *domain.Domain, opt Options) *BackendTask {
	if opt.Scheduler != nil {
		// Shared-pool mode: the worker count is the pool's, not ours to
		// choose, and grain heuristics must see the real parallelism.
		opt.Threads = opt.Scheduler.Workers()
	}
	if opt.Threads < 1 {
		opt.Threads = 1
	}
	if opt.PartNodal < 1 || opt.PartElem < 1 {
		n, e := TableIPartitions(d.Mesh.EdgeElems, opt.Threads)
		if opt.PartNodal < 1 {
			opt.PartNodal = n
		}
		if opt.PartElem < 1 {
			opt.PartElem = e
		}
	}
	ne := d.NumElem()
	// 5 element-sized planes + 6 corner-sized (8·ne) planes + vnewc.
	a := kernels.NewArena((5 + 6*8 + 1) * ne)
	sched := opt.Scheduler
	if sched == nil {
		sched = amt.NewScheduler(amt.WithWorkers(opt.Threads),
			amt.WithStealHalf(opt.StealHalf))
	}
	b := &BackendTask{
		s:       sched,
		opt:     opt,
		arena:   a,
		sigxx:   a.Take(ne),
		sigyy:   a.Take(ne),
		sigzz:   a.Take(ne),
		determS: a.Take(ne),
		determH: a.Take(ne),
		fxS:     a.Take(8 * ne),
		fyS:     a.Take(8 * ne),
		fzS:     a.Take(8 * ne),
		fxH:     a.Take(8 * ne),
		fyH:     a.Take(8 * ne),
		fzH:     a.Take(8 * ne),
		vnewc:   a.Take(ne),
	}
	partE := opt.PartElem
	b.hgPool.New = func() any { return newHGScratch(partE) }
	b.eosPool.New = func() any { return kernels.NewEOSScratch(partE) }

	if opt.Affinity {
		b.aff = newAffinityMap(ne, d.NumNode(), b.s.Workers(),
			opt.PartElem, opt.PartNodal)
	}
	if opt.AdaptiveGrain {
		b.grain = newGrainController(opt.TargetIdle, time.Now())
	}
	b.sizeRegionParts(d)
	return b
}

// sizeRegionParts (re)allocates the per-region-partition constraint-minima
// arrays for the current element grain.
func (b *BackendTask) sizeRegionParts(d *domain.Domain) {
	nParts := 0
	for _, regList := range d.Regions.ElemList {
		nParts += numPartitions(len(regList), b.opt.PartElem)
	}
	if cap(b.dtcPart) >= nParts {
		b.dtcPart = b.dtcPart[:nParts]
		b.dthPart = b.dthPart[:nParts]
		return
	}
	b.dtcPart = make([]float64, nParts)
	b.dthPart = make([]float64, nParts)
}

// homeElem, homeNode and homeRegion consult the locality map; they return
// -1 (no hint, default placement) when affinity is off.
func (b *BackendTask) homeElem(lo int) int {
	if b.aff == nil {
		return -1
	}
	return b.aff.elemWorker(lo)
}

func (b *BackendTask) homeNode(lo int) int {
	if b.aff == nil {
		return -1
	}
	return b.aff.nodeWorker(lo)
}

func (b *BackendTask) homeRegion(regList []int32, lo int) int {
	if b.aff == nil || lo >= len(regList) {
		return -1
	}
	return b.aff.regionWorker(regList, lo)
}

// getHG / getEOS fetch pooled scratch guaranteed to hold n elements.
func (b *BackendTask) getHG(n int) *hgScratch {
	sc := b.hgPool.Get().(*hgScratch)
	sc.ensure(n)
	return sc
}

func (b *BackendTask) getEOS(n int) *kernels.EOSScratch {
	sc := b.eosPool.Get().(*kernels.EOSScratch)
	sc.Ensure(n)
	return sc
}

func (b *BackendTask) Name() string { return "task" }

// Threads reports the worker count.
func (b *BackendTask) Threads() int { return b.s.Workers() }

// Utilization reports the AMT scheduler's productive-time ratio (the HPX
// idle-rate counter of Figure 11).
func (b *BackendTask) Utilization() (float64, bool) {
	return b.s.CountersSnapshot().Utilization(), true
}

// ResetCounters restarts utilization accounting.
func (b *BackendTask) ResetCounters() { b.s.ResetCounters() }

// Close releases the backend's scheduler front-end. With a private pool
// (Options.Scheduler nil) this shuts the workers down; in shared-pool mode
// it only quiesces this backend's outstanding tasks — the externally owned
// pool keeps serving its other jobs.
func (b *BackendTask) Close() { b.s.Close() }

// Options returns the backend's configuration.
func (b *BackendTask) Options() Options { return b.opt }

// Step pre-creates and executes the task graph for one leapfrog iteration.
func (b *BackendTask) Step(d *domain.Domain) error {
	b.flag.Reset()

	// Stage 1: the two independent force families, one chain per element
	// partition each. Each launch family publishes its phase tag first;
	// continuation frames capture the tag at attach time, so the whole
	// graph is phase-labeled during this sequential construction even
	// though the frames spawn later, when barriers trip.
	b.s.SetPhase(PhaseForce)
	forces := b.launchForces(d)
	if !b.opt.Chain {
		amt.WaitAll(forces)
		if err := b.flag.Err(); err != nil {
			return err
		}
	}

	// Barrier B1 (element→node): nodal chains need all corner forces.
	b.s.SetPhase(PhaseNodal)
	nodal := b.launchNodal(d, forces)
	if !b.opt.Chain {
		amt.WaitAll(nodal)
	}

	// Barrier B2 (node→element): kinematics needs updated positions and
	// velocities of all corner nodes.
	b.s.SetPhase(PhaseElements)
	elems := b.launchElements(d, nodal)
	if !b.opt.Chain {
		amt.WaitAll(elems)
		if err := b.flag.Err(); err != nil {
			return err
		}
	}

	// Barrier B3 (element→neighbour element): the monotonic Q limiter
	// reads neighbour gradients; the volume update and the region chains
	// both depend on stage 3 and run concurrently.
	b.s.SetPhase(PhaseRegions)
	regionTasks := b.launchRegions(d, elems)
	b.s.SetPhase(PhaseVolumes)
	volTasks := b.launchVolumes(d, elems)

	// Barrier B4 (join): fold the per-partition constraint minima.
	b.s.SetPhase(PhaseConstraints)
	all := append(regionTasks, volTasks...)
	done := amt.AfterAllRun(b.s, all, func() {
		dtc, dth := kernels.HugeDt, kernels.HugeDt
		for _, v := range b.dtcPart {
			if v < dtc {
				dtc = v
			}
		}
		for _, v := range b.dthPart {
			if v < dth {
				dth = v
			}
		}
		d.Dtcourant = dtc
		d.Dthydro = dth
	})
	done.Get()
	b.s.SetPhase(PhaseOther)
	if err := b.flag.Err(); err != nil {
		return err
	}

	// The grain controller runs between timesteps, when no tasks are in
	// flight, so regraining never races with launch sites.
	if b.grain != nil {
		b.applyGrain(d, b.grain.tick(b.s.CountersSnapshot(), time.Now()))
	}
	return nil
}

// applyGrain applies a controller decision: rescale both partition sizes,
// resize the per-partition constraint arrays and rebuild the affinity map.
func (b *BackendTask) applyGrain(d *domain.Domain, scale int) {
	if scale == 0 {
		return
	}
	nw := b.s.Workers()
	newElem := scaleGrain(b.opt.PartElem, scale, d.NumElem(), nw)
	newNodal := scaleGrain(b.opt.PartNodal, scale, d.NumNode(), nw)
	if newElem == b.opt.PartElem && newNodal == b.opt.PartNodal {
		return
	}
	b.opt.PartElem, b.opt.PartNodal = newElem, newNodal
	b.grain.adjustments++
	b.sizeRegionParts(d)
	if b.aff != nil {
		b.aff.rebuild(newElem, newNodal)
	}
}

// GrainAdjustments reports how many times the adaptive controller changed
// the partition grain (0 without AdaptiveGrain).
func (b *BackendTask) GrainAdjustments() int {
	if b.grain == nil {
		return 0
	}
	return b.grain.adjustments
}

// Counters exposes the scheduler's activity counters (steals, migrated
// frames, affinity hits) for the benchmark harness and trace export.
func (b *BackendTask) Counters() amt.Counters { return b.s.CountersSnapshot() }

// attachStage attaches one continuation per partition to a stage barrier.
// With BatchSpawn the whole family goes out as a single batched,
// home-interleaved spawn when the barrier trips (one bookkeeping update
// and one wake sweep, and no window in which only one worker's hinted
// frames are visible to thieves); otherwise one ThenRunAt per chain.
func (b *BackendTask) attachStage(barrier *amt.Void, fns []func(amt.Unit), homes []int) []*amt.Void {
	if b.aff == nil {
		homes = nil
	}
	if b.opt.BatchSpawn {
		return amt.ThenRunBatchAt(barrier, fns, homes)
	}
	out := make([]*amt.Void, len(fns))
	for i, fn := range fns {
		home := -1
		if homes != nil {
			home = homes[i]
		}
		out[i] = amt.ThenRunAt(barrier, home, fn)
	}
	return out
}

// launchForces creates the stress and hourglass force tasks for every
// element partition. With ParallelForces the two families are independent
// tasks; otherwise each partition's hourglass chain is attached behind its
// stress chain.
func (b *BackendTask) launchForces(d *domain.Domain) []*amt.Void {
	if b.opt.Fuse && b.opt.BatchSpawn {
		return b.launchForcesBatched(d)
	}
	p := &d.Par
	var out []*amt.Void
	partition(d.NumElem(), b.opt.PartElem, func(lo, hi int) {
		home := b.homeElem(lo)
		stressInit := func() {
			kernels.InitStressTerms(d, b.sigxx, b.sigyy, b.sigzz, lo, hi)
		}
		stressIntegrate := func() {
			kernels.IntegrateStress(d, b.sigxx, b.sigyy, b.sigzz, b.determS,
				b.fxS, b.fyS, b.fzS, lo, hi)
			kernels.CheckDeterm(b.determS, lo, hi, &b.flag)
		}
		var stress *amt.Void
		if b.opt.Fuse {
			stress = amt.RunAt(b.s, home, func() { stressInit(); stressIntegrate() })
		} else {
			stress = amt.ThenRunAt(amt.RunAt(b.s, home, stressInit), home,
				func(amt.Unit) { stressIntegrate() })
		}
		out = append(out, stress)

		hg := func() *amt.Void {
			if b.opt.Fuse {
				run := func() {
					sc := b.getHG(hi - lo)
					kernels.HourglassPrep(d, sc.dvdx, sc.dvdy, sc.dvdz,
						sc.x8n, sc.y8n, sc.z8n, b.determH, lo, lo, hi, &b.flag)
					if p.HGCoef > 0 {
						kernels.FBHourglass(d, sc.dvdx, sc.dvdy, sc.dvdz,
							sc.x8n, sc.y8n, sc.z8n, b.determH, p.HGCoef, lo, lo, hi,
							b.fxH, b.fyH, b.fzH)
					}
					b.hgPool.Put(sc)
				}
				if b.opt.ParallelForces {
					return amt.RunAt(b.s, home, run)
				}
				return amt.ThenRunAt(stress, home, func(amt.Unit) { run() })
			}
			// Unfused: prep and force as chained tasks sharing scratch.
			sc := b.getHG(hi - lo)
			prep := func() {
				kernels.HourglassPrep(d, sc.dvdx, sc.dvdy, sc.dvdz,
					sc.x8n, sc.y8n, sc.z8n, b.determH, lo, lo, hi, &b.flag)
			}
			force := func() {
				if p.HGCoef > 0 {
					kernels.FBHourglass(d, sc.dvdx, sc.dvdy, sc.dvdz,
						sc.x8n, sc.y8n, sc.z8n, b.determH, p.HGCoef, lo, lo, hi,
						b.fxH, b.fyH, b.fzH)
				}
				b.hgPool.Put(sc)
			}
			var t *amt.Void
			if b.opt.ParallelForces {
				t = amt.RunAt(b.s, home, prep)
			} else {
				t = amt.ThenRunAt(stress, home, func(amt.Unit) { prep() })
			}
			return amt.ThenRunAt(t, home, func(amt.Unit) { force() })
		}()
		out = append(out, hg)
	})
	return out
}

// launchForcesBatched is the BatchSpawn variant of launchForces for the
// fused configuration: the independent root tasks of the force stage — the
// entire stage when ParallelForces, the stress family otherwise — are
// submitted with one amt.RunBatch (a single bookkeeping update and wake
// sweep) instead of one spawn/wake round-trip per partition chain. The
// task graph and per-datum arithmetic are identical to launchForces.
func (b *BackendTask) launchForcesBatched(d *domain.Domain) []*amt.Void {
	p := &d.Par
	var roots []func()
	var homes []int
	type chainedHG struct {
		stress int // index in roots of the stress task this chain follows
		home   int
		run    func()
	}
	var chained []chainedHG
	partition(d.NumElem(), b.opt.PartElem, func(lo, hi int) {
		home := b.homeElem(lo)
		stress := func() {
			kernels.InitStressTerms(d, b.sigxx, b.sigyy, b.sigzz, lo, hi)
			kernels.IntegrateStress(d, b.sigxx, b.sigyy, b.sigzz, b.determS,
				b.fxS, b.fyS, b.fzS, lo, hi)
			kernels.CheckDeterm(b.determS, lo, hi, &b.flag)
		}
		si := len(roots)
		roots = append(roots, stress)
		homes = append(homes, home)
		hg := func() {
			sc := b.getHG(hi - lo)
			kernels.HourglassPrep(d, sc.dvdx, sc.dvdy, sc.dvdz,
				sc.x8n, sc.y8n, sc.z8n, b.determH, lo, lo, hi, &b.flag)
			if p.HGCoef > 0 {
				kernels.FBHourglass(d, sc.dvdx, sc.dvdy, sc.dvdz,
					sc.x8n, sc.y8n, sc.z8n, b.determH, p.HGCoef, lo, lo, hi,
					b.fxH, b.fyH, b.fzH)
			}
			b.hgPool.Put(sc)
		}
		if b.opt.ParallelForces {
			roots = append(roots, hg)
			homes = append(homes, home)
		} else {
			chained = append(chained, chainedHG{si, home, hg})
		}
	})
	if b.aff == nil {
		homes = nil
	}
	out := amt.RunBatchAt(b.s, roots, homes)
	for _, c := range chained {
		run := c.run
		out = append(out, amt.ThenRunAt(out[c.stress], c.home, func(amt.Unit) { run() }))
	}
	return out
}

// launchNodal creates one fused chain per node partition: force gather,
// acceleration, boundary conditions, velocity, position.
func (b *BackendTask) launchNodal(d *domain.Domain, forces []*amt.Void) []*amt.Void {
	p := &d.Par
	delt := d.Deltatime
	barrier := amt.AfterAll(b.s, forces)
	var out []*amt.Void
	var fns []func(amt.Unit)
	var homes []int
	partition(d.NumNode(), b.opt.PartNodal, func(lo, hi int) {
		home := b.homeNode(lo)
		gather := func() {
			if p.HGCoef > 0 {
				kernels.GatherTwoCornerForces(d, b.fxS, b.fyS, b.fzS,
					b.fxH, b.fyH, b.fzH, lo, hi)
			} else {
				kernels.GatherCornerForces(d, b.fxS, b.fyS, b.fzS, lo, hi, false)
			}
		}
		accel := func() {
			kernels.CalcAcceleration(d, lo, hi)
			kernels.ApplyAccelBCFlags(d, lo, hi)
		}
		vel := func() { kernels.CalcVelocity(d, delt, p.UCut, lo, hi) }
		pos := func() { kernels.CalcPosition(d, delt, lo, hi) }

		if b.opt.Fuse {
			fns = append(fns, func(amt.Unit) {
				gather()
				accel()
				vel()
				pos()
			})
			homes = append(homes, home)
			return
		}
		t := amt.ThenRunAt(barrier, home, func(amt.Unit) { gather() })
		t = amt.ThenRunAt(t, home, func(amt.Unit) { accel() })
		t = amt.ThenRunAt(t, home, func(amt.Unit) { vel() })
		t = amt.ThenRunAt(t, home, func(amt.Unit) { pos() })
		out = append(out, t)
	})
	if b.opt.Fuse {
		return b.attachStage(barrier, fns, homes)
	}
	return out
}

// launchElements creates one chain per element partition: kinematics,
// strain rates, monotonic-Q gradients, the qstop scan, and the vnewc
// preparation with its volume bound check.
func (b *BackendTask) launchElements(d *domain.Domain, nodal []*amt.Void) []*amt.Void {
	p := &d.Par
	delt := d.Deltatime
	barrier := amt.AfterAll(b.s, nodal)
	var out []*amt.Void
	var fns []func(amt.Unit)
	var homes []int
	partition(d.NumElem(), b.opt.PartElem, func(lo, hi int) {
		home := b.homeElem(lo)
		kin := func() {
			kernels.CalcKinematics(d, delt, lo, hi)
			kernels.CalcStrainRate(d, lo, hi, &b.flag)
		}
		grad := func() { kernels.MonoQGradients(d, lo, hi) }
		prep := func() {
			kernels.QStopCheck(d, lo, hi, &b.flag)
			kernels.CopyVnewc(d, b.vnewc, lo, hi)
			if p.EOSvMin != 0 {
				kernels.ClampVnewcLow(b.vnewc, p.EOSvMin, lo, hi)
			}
			if p.EOSvMax != 0 {
				kernels.ClampVnewcHigh(b.vnewc, p.EOSvMax, lo, hi)
			}
			kernels.CheckVBounds(d, lo, hi, &b.flag)
		}
		if b.opt.Fuse {
			fns = append(fns, func(amt.Unit) {
				kin()
				grad()
				prep()
			})
			homes = append(homes, home)
			return
		}
		t := amt.ThenRunAt(barrier, home, func(amt.Unit) { kin() })
		t = amt.ThenRunAt(t, home, func(amt.Unit) { grad() })
		t = amt.ThenRunAt(t, home, func(amt.Unit) { prep() })
		out = append(out, t)
	})
	if b.opt.Fuse {
		return b.attachStage(barrier, fns, homes)
	}
	return out
}

// launchRegions creates the per-region material chains: monotonic Q, the
// repeated EOS evaluation, and the partition's time-constraint minima.
// With ParallelRegions all chains start at the stage-3 barrier; otherwise
// region r+1 waits for region r, as the sequential reference does.
func (b *BackendTask) launchRegions(d *domain.Domain, elems []*amt.Void) []*amt.Void {
	barrier := amt.AfterAll(b.s, elems)
	var out []*amt.Void
	parent := barrier
	pidx := 0
	// Fused chains of concurrently-running regions all become ready at the
	// same barrier, so they can leave as one batched, home-interleaved
	// spawn; the prioritized heavy chains and the serialized mode keep
	// their individual attachment.
	batchable := b.opt.Fuse && b.opt.ParallelRegions && b.opt.BatchSpawn
	var batchFns []func(amt.Unit)
	var batchHomes []int
	for r, regList := range d.Regions.ElemList {
		regList := regList
		rep := d.Regions.Rep(r)
		var regionTasks []*amt.Void
		partition(len(regList), b.opt.PartElem, func(lo, hi int) {
			idx := pidx
			pidx++
			home := b.homeRegion(regList, lo)
			monoq := func() { kernels.MonoQRegion(d, regList, lo, hi) }
			eos := func() {
				sc := b.getEOS(hi - lo)
				kernels.EvalEOS(d, b.vnewc, regList, sc, rep, lo, hi)
				b.eosPool.Put(sc)
			}
			constraints := func() {
				b.dtcPart[idx] = kernels.CourantConstraint(d, regList, lo, hi)
				b.dthPart[idx] = kernels.HydroConstraint(d, regList, lo, hi)
			}
			// Optional LPT heuristic: launch the expensive chains at
			// high priority so they start as early as possible (the
			// high-priority queue is shared, so priority overrides the
			// affinity hint). Otherwise the chain inherits the affinity
			// of its element range.
			heavy := b.opt.PrioritizeHeavyRegions && rep >= 10
			if batchable && !heavy {
				batchFns = append(batchFns, func(amt.Unit) {
					monoq()
					eos()
					constraints()
				})
				batchHomes = append(batchHomes, home)
				return
			}
			attach := func(p *amt.Void, fn func(amt.Unit)) *amt.Void {
				return amt.ThenRunAt(p, home, fn)
			}
			if heavy {
				attach = amt.ThenRunHigh[amt.Unit]
			}
			var t *amt.Void
			if b.opt.Fuse {
				t = attach(parent, func(amt.Unit) {
					monoq()
					eos()
					constraints()
				})
			} else {
				t = attach(parent, func(amt.Unit) { monoq() })
				t = attach(t, func(amt.Unit) { eos() })
				t = attach(t, func(amt.Unit) { constraints() })
			}
			regionTasks = append(regionTasks, t)
		})
		out = append(out, regionTasks...)
		// Serialized mode: the next region waits for this one. Empty
		// regions contribute no tasks and must keep the previous parent —
		// AfterAll(nil) is already ready and would detach the next region
		// from the stage-3 barrier.
		if !b.opt.ParallelRegions && len(regionTasks) > 0 {
			parent = amt.AfterAll(b.s, regionTasks)
		}
	}
	if len(batchFns) > 0 {
		if b.aff == nil {
			batchHomes = nil
		}
		out = append(out, amt.ThenRunBatchAt(barrier, batchFns, batchHomes)...)
	}
	return out
}

// launchVolumes creates the volume-commit tasks. They depend only on
// stage 3 (kinematics and the volume bound check) and therefore overlap
// the region chains.
func (b *BackendTask) launchVolumes(d *domain.Domain, elems []*amt.Void) []*amt.Void {
	vCut := d.Par.VCut
	barrier := amt.AfterAll(b.s, elems)
	var fns []func(amt.Unit)
	var homes []int
	partition(d.NumElem(), b.opt.PartElem, func(lo, hi int) {
		fns = append(fns, func(amt.Unit) {
			kernels.UpdateVolumes(d, vCut, lo, hi)
		})
		homes = append(homes, b.homeElem(lo))
	})
	return b.attachStage(barrier, fns, homes)
}
