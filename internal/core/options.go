package core

import "lulesh/internal/amt"

// Options configures the task backend (and, where applicable, the other
// parallel backends). The partition sizes correspond to the paper's
// Table I; the boolean toggles correspond to the successive code
// transformations of the paper's Figures 5-8 and are all enabled in the
// paper's final implementation. Disabling one isolates its contribution
// (the ablation experiments).
type Options struct {
	// Threads is the number of execution threads (HPX worker OS-threads,
	// OpenMP team size). 0 means one per available core.
	Threads int

	// PartNodal is the task partition size for node-indexed loops
	// (the LagrangeNodal column of Table I).
	PartNodal int
	// PartElem is the task partition size for element-indexed loops
	// (the LagrangeElements column of Table I).
	PartElem int

	// Chain builds cross-loop task chains with continuations instead of a
	// synchronization barrier after every loop (Figure 6 vs Figure 5).
	Chain bool
	// Fuse combines consecutive kernels into a single task to reduce task
	// count (Figure 7).
	Fuse bool
	// ParallelForces launches the stress-force and hourglass-force task
	// families concurrently instead of sequentially (Figure 8).
	ParallelForces bool
	// ParallelRegions evaluates the per-region material chains
	// concurrently instead of region-after-region (the
	// ApplyMaterialPropertiesForElems parallelization of Section IV).
	ParallelRegions bool

	// BatchSpawn submits the independent root tasks of each iteration's
	// task graph with one batched spawn (amt.SpawnBatch: one bookkeeping
	// update and one wake sweep) instead of one spawn/wake round-trip per
	// task. A dispatch-overhead optimization only — the task graph and the
	// per-datum arithmetic are unchanged. On in the default configuration;
	// separable for ablation.
	BatchSpawn bool

	// Affinity turns on locality-aware task placement: a persistent
	// partition→worker map assigns every element, nodal and region-chain
	// partition a home worker (block distribution over the mesh), and all
	// of the partition's tasks — every stage, every timestep — are spawned
	// with that affinity hint, so the same worker re-touches the same mesh
	// slice across the ~45 kernel launches per iteration. Hints bias
	// placement only; work stealing still rebalances, and results remain
	// bitwise identical. On in the default configuration; separable for
	// ablation.
	Affinity bool

	// StealHalf makes idle workers migrate up to half of a victim's queue
	// per steal sweep instead of one frame, cutting steal attempts on the
	// fine-grained hot path (amt.WithStealHalf). Scheduling-only: results
	// are unchanged. On in the default configuration; separable for
	// ablation.
	StealHalf bool

	// AdaptiveGrain replaces the static Table I partition sizes with a
	// feedback controller: each few timesteps the per-worker busy/idle
	// counters are read and the partition grain is narrowed (more, smaller
	// tasks) when the idle rate exceeds TargetIdle or widened (fewer,
	// larger tasks) when the pool is comfortably busy. Partition sizes
	// stay within the Table I tuning bounds and results remain bitwise
	// identical at every grain. Off by default — it overrides the paper's
	// static Table I tuning and is an extension experiment here.
	AdaptiveGrain bool

	// TargetIdle is the idle-rate setpoint of the AdaptiveGrain
	// controller. 0 means DefaultTargetIdle.
	TargetIdle float64

	// Scheduler, when non-nil, makes the task backend run on this
	// externally owned front-end instead of creating a private worker
	// pool — the multi-tenant mode of the luleshd control plane, where
	// many concurrent simulations each pass a NewJob front-end onto one
	// shared pool. The backend then takes its worker count from the pool,
	// ignores StealHalf (pool-level, fixed at pool creation) and its
	// Close only quiesces the job instead of shutting workers down. The
	// caller retains ownership of the pool.
	Scheduler *amt.Scheduler

	// PrioritizeHeavyRegions schedules the expensive material chains
	// (EOS repetition factor >= 10, the "very expensive regions" of the
	// load-imbalance model) at high priority — a longest-processing-
	// time-first heuristic enabled by the runtime's priority scheduling,
	// which the paper's HPX configuration leaves unused ("we do not
	// utilize different task priorities"). Off in the paper
	// configuration; an extension experiment here.
	PrioritizeHeavyRegions bool
}

// DefaultOptions returns the paper's final configuration for a problem of
// the given edge size: all four techniques enabled and the tuned partition
// sizes of Table I. For sizes outside the paper's sweep a heuristic keeps
// roughly eight partitions per thread, within [64, 8192].
func DefaultOptions(edgeElems, threads int) Options {
	o := Options{
		Threads:         threads,
		Chain:           true,
		Fuse:            true,
		ParallelForces:  true,
		ParallelRegions: true,
		BatchSpawn:      true,
		Affinity:        true,
		StealHalf:       true,
	}
	o.PartNodal, o.PartElem = TableIPartitions(edgeElems, threads)
	return o
}

// TableIPartitions returns the tuned partition sizes of the paper's
// Table I for its six problem sizes, and a load-balance heuristic for any
// other size.
func TableIPartitions(edgeElems, threads int) (nodal, elem int) {
	switch edgeElems {
	case 45:
		return 2048, 2048
	case 60:
		return 4096, 2048
	case 75:
		return 8192, 4096
	case 90:
		return 8192, 4096
	case 120:
		return 8192, 2048
	case 150:
		return 8192, 2048
	}
	ne := edgeElems * edgeElems * edgeElems
	if threads < 1 {
		threads = 1
	}
	p := nearestPow2(ne / (threads * 8))
	if p < 64 {
		p = 64
	}
	if p > 8192 {
		p = 8192
	}
	return p, p
}

func nearestPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	// Round to the nearer of p and 2p.
	if n-p > 2*p-n {
		return 2 * p
	}
	return p
}

// partition invokes fn(lo, hi) for consecutive chunks of [0, n) of at most
// part indices each, in ascending order.
func partition(n, part int, fn func(lo, hi int)) {
	if part < 1 {
		part = n
	}
	for lo := 0; lo < n; lo += part {
		hi := lo + part
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// numPartitions reports how many chunks partition() produces.
func numPartitions(n, part int) int {
	if n <= 0 {
		return 0
	}
	if part < 1 {
		return 1
	}
	return (n + part - 1) / part
}
