package core

import (
	"lulesh/internal/domain"
	"lulesh/internal/kernels"
	"lulesh/internal/omp"
)

// BackendOMP reproduces the execution model of the OpenMP reference
// implementation: every loop of the leapfrog iteration is statically split
// across a persistent thread team with a full synchronization barrier at
// the end (ParallelForBlock), and loop groups that the reference places in
// one `#pragma omp parallel` region share a single dispatch. The equation
// of state is evaluated region-after-region with parallel loops *inside*
// each region — the structural weakness (many small loops, each followed by
// a barrier) that the paper's task-based approach removes.
type BackendOMP struct {
	pool *omp.Pool
	buf  *buffers

	// schedule selects the loop worksharing policy (the reference uses
	// static everywhere; dynamic/guided are provided to demonstrate that
	// intra-loop dynamic scheduling cannot recover the cross-loop
	// imbalance the task backend exploits).
	schedule Schedule

	// Per-thread partial minima for the time-constraint reductions.
	dtcPart, dthPart []float64
}

// Schedule is an OpenMP loop-scheduling policy.
type Schedule int

// Loop schedules.
const (
	ScheduleStatic Schedule = iota
	ScheduleDynamic
	ScheduleGuided
)

// dynChunk is the chunk size used by the dynamic/guided schedules,
// matching a typical `schedule(dynamic, 64)` clause.
const dynChunk = 64

// NewBackendOMP creates a fork-join backend with the given team size
// (0 = one thread per core) for domains shaped like d.
func NewBackendOMP(d *domain.Domain, threads int) *BackendOMP {
	return NewBackendOMPSchedule(d, threads, ScheduleStatic)
}

// NewBackendOMPSchedule creates a fork-join backend using the given loop
// schedule for its worksharing loops. Results are bitwise independent of
// the schedule (per-datum arithmetic never changes).
func NewBackendOMPSchedule(d *domain.Domain, threads int, sched Schedule) *BackendOMP {
	p := omp.NewPool(threads)
	return &BackendOMP{
		pool:     p,
		buf:      newBuffers(d),
		schedule: sched,
		dtcPart:  make([]float64, p.Threads()),
		dthPart:  make([]float64, p.Threads()),
	}
}

// forBlock dispatches one worksharing loop under the configured schedule.
func (b *BackendOMP) forBlock(n int, body func(lo, hi int)) {
	switch b.schedule {
	case ScheduleDynamic:
		b.pool.ParallelForDynamic(n, dynChunk, body)
	case ScheduleGuided:
		b.pool.ParallelForGuided(n, dynChunk, body)
	default:
		b.pool.ParallelForBlock(n, body)
	}
}

func (b *BackendOMP) Name() string { return "omp" }

// Threads reports the team size.
func (b *BackendOMP) Threads() int { return b.pool.Threads() }

// Utilization reports the productive-time ratio across parallel regions.
func (b *BackendOMP) Utilization() (float64, bool) {
	return b.pool.CountersSnapshot().Utilization(), true
}

// ResetCounters restarts utilization accounting.
func (b *BackendOMP) ResetCounters() { b.pool.ResetCounters() }

// Close stops the thread team.
func (b *BackendOMP) Close() { b.pool.Close() }

// Step advances one leapfrog iteration with one fork-join construct per
// reference loop.
func (b *BackendOMP) Step(d *domain.Domain) error {
	buf := b.buf
	pool := b.pool
	buf.flag.Reset()
	ne := d.NumElem()
	nn := d.NumNode()
	delt := d.Deltatime
	p := &d.Par
	nth := pool.Threads()

	// --- LagrangeNodal -------------------------------------------------
	// Each kernel family publishes its phase tag before dispatching; the
	// descriptor carries it to the team, so per-phase tables line up with
	// the task backend's.
	pool.SetPhase(PhaseForce)
	b.forBlock(nn, func(lo, hi int) { kernels.ZeroForces(d, lo, hi) })
	b.forBlock(ne, func(lo, hi int) {
		kernels.InitStressTerms(d, buf.sigxx, buf.sigyy, buf.sigzz, lo, hi)
	})
	b.forBlock(ne, func(lo, hi int) {
		kernels.IntegrateStress(d, buf.sigxx, buf.sigyy, buf.sigzz, buf.determS,
			buf.fxS, buf.fyS, buf.fzS, lo, hi)
	})
	b.forBlock(nn, func(lo, hi int) {
		kernels.GatherCornerForces(d, buf.fxS, buf.fyS, buf.fzS, lo, hi, false)
	})
	b.forBlock(ne, func(lo, hi int) {
		kernels.CheckDeterm(buf.determS, lo, hi, &buf.flag)
	})
	if err := buf.flag.Err(); err != nil {
		return err
	}

	b.forBlock(ne, func(lo, hi int) {
		kernels.HourglassPrep(d, buf.dvdx, buf.dvdy, buf.dvdz,
			buf.x8n, buf.y8n, buf.z8n, buf.determH, 0, lo, hi, &buf.flag)
	})
	if err := buf.flag.Err(); err != nil {
		return err
	}
	if p.HGCoef > 0 {
		b.forBlock(ne, func(lo, hi int) {
			kernels.FBHourglass(d, buf.dvdx, buf.dvdy, buf.dvdz,
				buf.x8n, buf.y8n, buf.z8n, buf.determH, p.HGCoef, 0, lo, hi,
				buf.fxH, buf.fyH, buf.fzH)
		})
		b.forBlock(nn, func(lo, hi int) {
			kernels.GatherCornerForces(d, buf.fxH, buf.fyH, buf.fzH, lo, hi, true)
		})
	}

	pool.SetPhase(PhaseNodal)
	b.forBlock(nn, func(lo, hi int) { kernels.CalcAcceleration(d, lo, hi) })
	// The three symmetry-plane loops share one parallel region in the
	// reference (omp for nowait each).
	pool.Parallel(func(tid int) {
		lo, hi := omp.StaticRange(tid, nth, len(d.Mesh.SymmX))
		kernels.ApplyAccelBCList(d, d.Mesh.SymmX, 0, lo, hi)
		lo, hi = omp.StaticRange(tid, nth, len(d.Mesh.SymmY))
		kernels.ApplyAccelBCList(d, d.Mesh.SymmY, 1, lo, hi)
		lo, hi = omp.StaticRange(tid, nth, len(d.Mesh.SymmZ))
		kernels.ApplyAccelBCList(d, d.Mesh.SymmZ, 2, lo, hi)
	})
	b.forBlock(nn, func(lo, hi int) {
		kernels.CalcVelocity(d, delt, p.UCut, lo, hi)
	})
	b.forBlock(nn, func(lo, hi int) { kernels.CalcPosition(d, delt, lo, hi) })

	// --- LagrangeElements ----------------------------------------------
	pool.SetPhase(PhaseElements)
	b.forBlock(ne, func(lo, hi int) { kernels.CalcKinematics(d, delt, lo, hi) })
	b.forBlock(ne, func(lo, hi int) {
		kernels.CalcStrainRate(d, lo, hi, &buf.flag)
	})
	if err := buf.flag.Err(); err != nil {
		return err
	}

	b.forBlock(ne, func(lo, hi int) { kernels.MonoQGradients(d, lo, hi) })
	for _, regList := range d.Regions.ElemList {
		regList := regList
		b.forBlock(len(regList), func(lo, hi int) {
			kernels.MonoQRegion(d, regList, lo, hi)
		})
	}
	// The qstop scan is serial in the reference.
	kernels.QStopCheck(d, 0, ne, &buf.flag)
	if err := buf.flag.Err(); err != nil {
		return err
	}

	// vnewc preparation: one parallel region, index-aligned loops.
	pool.ParallelStatic(ne, func(tid, lo, hi int) {
		kernels.CopyVnewc(d, buf.vnewc, lo, hi)
		if p.EOSvMin != 0 {
			kernels.ClampVnewcLow(buf.vnewc, p.EOSvMin, lo, hi)
		}
		if p.EOSvMax != 0 {
			kernels.ClampVnewcHigh(buf.vnewc, p.EOSvMax, lo, hi)
		}
		kernels.CheckVBounds(d, lo, hi, &buf.flag)
	})
	if err := buf.flag.Err(); err != nil {
		return err
	}

	pool.SetPhase(PhaseRegions)
	for r, regList := range d.Regions.ElemList {
		b.evalEOSRegion(d, regList, d.Regions.Rep(r))
	}
	pool.SetPhase(PhaseVolumes)
	b.forBlock(ne, func(lo, hi int) {
		kernels.UpdateVolumes(d, p.VCut, lo, hi)
	})

	// --- CalcTimeConstraintsForElems ------------------------------------
	pool.SetPhase(PhaseConstraints)
	d.Dtcourant = kernels.HugeDt
	d.Dthydro = kernels.HugeDt
	for _, regList := range d.Regions.ElemList {
		regList := regList
		count := len(regList)
		pool.ParallelStatic(count, func(tid, lo, hi int) {
			b.dtcPart[tid] = kernels.CourantConstraint(d, regList, lo, hi)
		})
		for _, v := range b.dtcPart {
			if v < d.Dtcourant {
				d.Dtcourant = v
			}
		}
		pool.ParallelStatic(count, func(tid, lo, hi int) {
			b.dthPart[tid] = kernels.HydroConstraint(d, regList, lo, hi)
		})
		for _, v := range b.dthPart {
			if v < d.Dthydro {
				d.Dthydro = v
			}
		}
	}
	pool.SetPhase(PhaseOther)
	return nil
}

// evalEOSRegion evaluates the equation of state for one region with the
// reference's loop-by-loop parallelization: one parallel region for the
// compress/gather block, then one fork-join construct per energy loop.
func (b *BackendOMP) evalEOSRegion(d *domain.Domain, regList []int32, rep int) {
	buf := b.buf
	pool := b.pool
	p := &d.Par
	count := len(regList)
	s := buf.scratch
	s.Ensure(count)

	for j := 0; j < rep; j++ {
		// Gather/compress block: one parallel region, nowait loops over
		// identical index ranges.
		pool.ParallelStatic(count, func(tid, lo, hi int) {
			kernels.EOSGather(d, regList, s, lo, lo, hi)
			kernels.EOSCompression(d, buf.vnewc, regList, s, lo, lo, hi)
			if p.EOSvMin != 0 {
				kernels.EOSClampVMin(d, buf.vnewc, regList, s, p.EOSvMin, lo, lo, hi)
			}
			if p.EOSvMax != 0 {
				kernels.EOSClampVMax(d, buf.vnewc, regList, s, p.EOSvMax, lo, lo, hi)
			}
			kernels.EOSZeroWork(s, lo, lo, hi)
		})

		// CalcEnergyForElems: each loop is its own parallel-for in the
		// reference.
		b.forBlock(count, func(lo, hi int) {
			kernels.EnergyStep1(s, p.Emin, lo, hi)
		})
		b.forBlock(count, func(lo, hi int) {
			kernels.CalcPressure(s.PHalfStep, s.Bvc, s.Pbvc, s.ENew, s.CompHalfStep,
				buf.vnewc, regList, 0, p.Pmin, p.PCut, p.EOSvMax, lo, hi)
		})
		b.forBlock(count, func(lo, hi int) {
			kernels.EnergyStep2(s, p.RefDens, lo, hi)
		})
		b.forBlock(count, func(lo, hi int) {
			kernels.EnergyStep3(s, p.ECut, p.Emin, lo, hi)
		})
		b.forBlock(count, func(lo, hi int) {
			kernels.CalcPressure(s.PNew, s.Bvc, s.Pbvc, s.ENew, s.Compression,
				buf.vnewc, regList, 0, p.Pmin, p.PCut, p.EOSvMax, lo, hi)
		})
		b.forBlock(count, func(lo, hi int) {
			kernels.EnergyStep4(s, buf.vnewc, regList, 0, p.RefDens, p.ECut, p.Emin, lo, hi)
		})
		b.forBlock(count, func(lo, hi int) {
			kernels.CalcPressure(s.PNew, s.Bvc, s.Pbvc, s.ENew, s.Compression,
				buf.vnewc, regList, 0, p.Pmin, p.PCut, p.EOSvMax, lo, hi)
		})
		b.forBlock(count, func(lo, hi int) {
			kernels.EnergyStep5(s, buf.vnewc, regList, 0, p.RefDens, p.QCut, lo, hi)
		})
	}

	b.forBlock(count, func(lo, hi int) {
		kernels.EOSStore(d, regList, s, lo, lo, hi)
	})
	b.forBlock(count, func(lo, hi int) {
		kernels.CalcSoundSpeed(d, buf.vnewc, regList, s, lo, lo, hi)
	})
}
