// Package core implements the paper's contribution: a many-task-based
// LULESH orchestration (BackendTask) plus the comparators it is evaluated
// against — a sequential backend, a fork-join "OpenMP reference" backend,
// and a naive hpx::for_each-style backend. All backends run the identical
// kernels from internal/kernels in the identical floating-point order, so
// their results are bitwise comparable; they differ only in how the work is
// scheduled, which is exactly the variable the paper studies.
package core

import (
	"fmt"
	"time"

	"lulesh/internal/domain"
)

// Backend advances a LULESH domain by one leapfrog iteration under some
// parallel execution strategy.
type Backend interface {
	// Name identifies the backend in harness output.
	Name() string
	// Step performs one LagrangeLeapFrog iteration (nodal update, element
	// update, time constraints). The caller runs TimeIncrement first.
	Step(d *domain.Domain) error
	// Utilization reports the productive-time ratio accumulated since the
	// last ResetCounters, and whether the backend measures one.
	Utilization() (float64, bool)
	// ResetCounters restarts utilization accounting.
	ResetCounters()
	// Close releases worker threads. The backend is unusable afterwards.
	Close()
}

// TimeIncrement computes the next time step from the constraint minima and
// advances the simulation clock, exactly as the reference's TimeIncrement.
func TimeIncrement(d *domain.Domain) {
	targetdt := d.Par.StopTime - d.Time

	if d.Par.DtFixed <= 0 && d.Cycle != 0 {
		olddt := d.Deltatime
		gnewdt := 1.0e20
		if d.Dtcourant < gnewdt {
			gnewdt = d.Dtcourant / 2.0
		}
		if d.Dthydro < gnewdt {
			gnewdt = d.Dthydro * 2.0 / 3.0
		}
		newdt := gnewdt
		ratio := newdt / olddt
		if ratio >= 1.0 {
			if ratio < d.Par.DeltaTimeMultLB {
				newdt = olddt
			} else if ratio > d.Par.DeltaTimeMultUB {
				newdt = olddt * d.Par.DeltaTimeMultUB
			}
		}
		if newdt > d.Par.DtMax {
			newdt = d.Par.DtMax
		}
		d.Deltatime = newdt
	} else if d.Par.DtFixed > 0 {
		d.Deltatime = d.Par.DtFixed
	}

	// Try to prevent very small scaling on the next cycle.
	if targetdt > d.Deltatime && targetdt < 4.0*d.Deltatime/3.0 {
		targetdt = 2.0 * d.Deltatime / 3.0
	}
	if targetdt < d.Deltatime {
		d.Deltatime = targetdt
	}

	d.Time += d.Deltatime
	d.Cycle++
}

// Result summarizes a completed run.
type Result struct {
	Backend      string
	Size         int
	Regions      int
	Threads      int
	Iterations   int           // cycles executed
	Elapsed      time.Duration // wall time of the iteration loop
	FinalTime    float64       // simulation time reached
	OriginEnergy float64       // e(0), the reference's figure of merit
	Utilization  float64       // productive-time ratio, if measured
	HasUtil      bool
}

// FOM is the reference's figure of merit: thousands of element updates per
// second (numElem * iterations / elapsed / 1000).
func (r Result) FOM() float64 {
	ne := r.Size * r.Size * r.Size
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(ne) * float64(r.Iterations) / r.Elapsed.Seconds() / 1000.0
}

// CSVHeader matches the artifact-evaluation column set of the paper.
func CSVHeader() string {
	return "size,regions,iterations,threads,runtime,result"
}

// CSVLine renders one result row in the artifact's CSV format (runtime in
// seconds, result = final origin energy).
func (r Result) CSVLine() string {
	return fmt.Sprintf("%d,%d,%d,%d,%.6f,%.6e",
		r.Size, r.Regions, r.Iterations, r.Threads, r.Elapsed.Seconds(), r.OriginEnergy)
}

// RunConfig controls a driver run.
type RunConfig struct {
	// MaxIterations stops the run after this many cycles when > 0 (the
	// reference's --i flag); otherwise the run continues until the
	// simulation reaches its stop time.
	MaxIterations int

	// Progress, when non-nil, is invoked after every cycle with the cycle
	// number, simulation time and time increment — the reference's -p
	// per-iteration printout, decoupled from I/O.
	Progress func(cycle int, time, dt float64)

	// Interrupt, when non-nil, is polled before every cycle; a true
	// return stops the run at that step boundary with ErrInterrupted.
	// This is the cancellation point for served jobs: between cycles no
	// tasks are in flight, so stopping here never strands a latch or a
	// future, and the domain is left in a consistent post-cycle state.
	Interrupt func() bool
}

// ErrInterrupted is returned by Run when RunConfig.Interrupt stopped the
// run before reaching the stop time or the iteration cap.
var ErrInterrupted = fmt.Errorf("run interrupted")

// Run drives d to completion (or the iteration cap) using backend b and
// returns run statistics. Counters are reset at the start so Utilization
// covers exactly this run.
func Run(d *domain.Domain, b Backend, cfg RunConfig) (Result, error) {
	b.ResetCounters()
	start := time.Now()
	for d.Time < d.Par.StopTime {
		if cfg.MaxIterations > 0 && d.Cycle >= cfg.MaxIterations {
			break
		}
		if cfg.Interrupt != nil && cfg.Interrupt() {
			return Result{}, ErrInterrupted
		}
		TimeIncrement(d)
		if err := b.Step(d); err != nil {
			return Result{}, fmt.Errorf("cycle %d: %w", d.Cycle, err)
		}
		if cfg.Progress != nil {
			cfg.Progress(d.Cycle, d.Time, d.Deltatime)
		}
	}
	elapsed := time.Since(start)
	util, hasUtil := b.Utilization()
	return Result{
		Backend:      b.Name(),
		Size:         d.Mesh.EdgeElems,
		Regions:      d.Regions.NumReg,
		Threads:      backendThreads(b),
		Iterations:   d.Cycle,
		Elapsed:      elapsed,
		FinalTime:    d.Time,
		OriginEnergy: d.E[0],
		Utilization:  util,
		HasUtil:      hasUtil,
	}, nil
}

// threader is implemented by backends that know their thread count.
type threader interface{ Threads() int }

func backendThreads(b Backend) int {
	if t, ok := b.(threader); ok {
		return t.Threads()
	}
	return 1
}
