package perf

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRecord is a fully-populated record with fixed values so the
// marshaled bytes are reproducible.
func goldenRecord() BenchRecord {
	return BenchRecord{
		Name:       "sweep",
		Timestamp:  "2026-01-02T03:04:05Z",
		Scenario:   "piston:speed=100",
		Backend:    "task",
		Workers:    4,
		Size:       20,
		Regions:    11,
		Iterations: 231,
		ElapsedSec: 1.75,
		FOM:        1.056e6,
		GrindUsZC:  0.947,
		Phases: []PhaseStats{
			{ID: 1, Name: "CalcForceForNodes", Count: 231, Steals: 3, Busy: 900 * 1e6, QueueWait: 5e6, P50: 3e6, P95: 4e6, P99: 5e6},
		},
		Counters:    map[string]float64{"steals": 42},
		JobID:       "job-000042",
		QueueWaitUs: 1250,
		Build: BuildInfo{
			GoVersion: "go1.22.0",
			GOOS:      "linux",
			GOARCH:    "amd64",
			NumCPU:    8,
			Host:      "benchhost",
		},
	}
}

func marshalRecord(t *testing.T, r BenchRecord) []byte {
	t.Helper()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return append(data, '\n')
}

// TestBenchRecordGolden pins the exact serialized form — field names,
// key order, indentation — so committed BENCH_<n>.json files stay
// diffable and external consumers of the schema do not silently break.
func TestBenchRecordGolden(t *testing.T) {
	got := marshalRecord(t, goldenRecord())
	path := filepath.Join("testdata", "bench_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("serialized BenchRecord drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestBenchRecordRoundTrip proves marshal→unmarshal is lossless.
func TestBenchRecordRoundTrip(t *testing.T) {
	orig := goldenRecord()
	var back BenchRecord
	if err := json.Unmarshal(marshalRecord(t, orig), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Errorf("round trip lost data:\norig: %+v\nback: %+v", orig, back)
	}
}

// TestBenchRecordKeyOrderStable checks that marshaling emits keys in
// struct declaration order and that repeated marshals are bytewise
// identical — the properties the golden diff workflow relies on.
func TestBenchRecordKeyOrderStable(t *testing.T) {
	a := marshalRecord(t, goldenRecord())
	b := marshalRecord(t, goldenRecord())
	if string(a) != string(b) {
		t.Fatal("two marshals of the same record differ")
	}
	wantOrder := []string{
		`"name"`, `"timestamp"`, `"scenario"`, `"backend"`, `"workers"`,
		`"size"`, `"regions"`, `"iterations"`, `"elapsed_sec"`, `"fom_zps"`,
		`"grind_us_zc"`, `"phases"`, `"counters"`, `"job_id"`,
		`"queue_wait_us"`, `"build"`,
	}
	s := string(a)
	pos := -1
	for _, k := range wantOrder {
		i := strings.Index(s, k)
		if i < 0 {
			t.Fatalf("key %s missing from output", k)
		}
		if i < pos {
			t.Errorf("key %s out of order (at %d, previous key at %d)", k, i, pos)
		}
		pos = i
	}
}

// TestBenchRecordValidate covers the required-field checks the gate
// relies on before comparing records.
func TestBenchRecordValidate(t *testing.T) {
	if err := goldenRecord().Validate(); err != nil {
		t.Fatalf("golden record should validate: %v", err)
	}
	mutations := map[string]func(*BenchRecord){
		"name":       func(r *BenchRecord) { r.Name = "" },
		"backend":    func(r *BenchRecord) { r.Backend = "" },
		"workers":    func(r *BenchRecord) { r.Workers = 0 },
		"iterations": func(r *BenchRecord) { r.Iterations = 0 },
		"elapsed":    func(r *BenchRecord) { r.ElapsedSec = 0 },
		"fom":        func(r *BenchRecord) { r.FOM = -1 },
		"grind":      func(r *BenchRecord) { r.GrindUsZC = -0.5 },
		"queue_wait": func(r *BenchRecord) { r.QueueWaitUs = -1 },
		"build":      func(r *BenchRecord) { r.Build = BuildInfo{} },
	}
	for name, mutate := range mutations {
		r := goldenRecord()
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("record with bad %s validated", name)
		}
	}
}

// TestBenchRecordLegacyCompat: records written before the scenario work
// (no scenario, no grind_us_zc) must still load, validate, key as sedov
// and derive a grind from the FOM.
func TestBenchRecordLegacyCompat(t *testing.T) {
	legacy := `{
  "name": "fig9",
  "timestamp": "2025-12-01T00:00:00Z",
  "backend": "task",
  "workers": 2,
  "size": 16,
  "regions": 11,
  "iterations": 100,
  "elapsed_sec": 0.5,
  "fom_zps": 819200,
  "build": {"go_version": "go1.22.0", "goos": "linux", "goarch": "amd64", "num_cpu": 8}
}`
	var r BenchRecord
	if err := json.Unmarshal([]byte(legacy), &r); err != nil {
		t.Fatalf("unmarshal legacy: %v", err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("legacy record should validate: %v", err)
	}
	if key := r.ConfigKey(); key != "sedov|task|s16|w2" {
		t.Errorf("legacy key = %q, want sedov|task|s16|w2", key)
	}
	if g := r.Grind(); g <= 0 {
		t.Errorf("legacy grind = %v, want derived from FOM", g)
	}
	// Re-marshaling a record that never had the served-job fields must not
	// emit them: committed pre-field baselines stay byte-stable.
	out := marshalRecord(t, r)
	if strings.Contains(string(out), "job_id") || strings.Contains(string(out), "queue_wait_us") {
		t.Errorf("legacy record re-marshal grew served-job keys:\n%s", out)
	}
}

// TestWriteReadBenchJSON round-trips a record through the on-disk slot
// allocator and the gate's reader.
func TestWriteReadBenchJSON(t *testing.T) {
	dir := t.TempDir()
	r0 := goldenRecord()
	p0, err := WriteBenchJSON(dir, r0)
	if err != nil {
		t.Fatal(err)
	}
	r1 := goldenRecord()
	r1.Backend = "omp"
	if _, err := WriteBenchJSON(dir, r1); err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p0) != "BENCH_0.json" {
		t.Errorf("first slot = %s, want BENCH_0.json", p0)
	}
	recs, err := ReadBenchDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("ReadBenchDir returned %d records, want 2", len(recs))
	}
	if !reflect.DeepEqual(recs[0], r0) {
		t.Errorf("slot 0 round trip mismatch:\ngot:  %+v\nwant: %+v", recs[0], r0)
	}
	if recs[1].Backend != "omp" {
		t.Errorf("slot 1 backend = %q, want omp", recs[1].Backend)
	}
}
