package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"lulesh/internal/comm"
	"lulesh/internal/trace"
)

// Fleet aggregation: rank 0 gathers every rank's RankTrace after the
// run and merges them into one Chrome trace — per-rank process rows,
// skew-corrected onto rank 0's clock, with flow arrows connecting each
// send span to its receive — plus the critical-path / stall report.
// Merging is pure (no I/O, no clocks beyond the recorded ones), so the
// adversarial-input tests drive it directly.

// FleetSnapshot is the gathered view: one RankTrace per rank. A rank
// whose snapshot never arrived (died mid-run or during the gather) is
// present with Dead=true so the merge marks the gap instead of
// silently narrowing the fleet.
type FleetSnapshot struct {
	Ranks  int         `json:"ranks"`
	Traces []RankTrace `json:"traces"`
}

// NewFleetSnapshot creates a snapshot with every rank pre-marked dead;
// AddRank flips each slot as its trace arrives.
func NewFleetSnapshot(ranks int) *FleetSnapshot {
	fs := &FleetSnapshot{Ranks: ranks, Traces: make([]RankTrace, ranks)}
	for r := range fs.Traces {
		fs.Traces[r] = RankTrace{Rank: r, Ranks: ranks, Dead: true}
	}
	return fs
}

// AddRank files one rank's trace into its slot (out-of-range ranks are
// ignored — a corrupt snapshot must not panic the aggregator).
func (fs *FleetSnapshot) AddRank(rt RankTrace) {
	if rt.Rank < 0 || rt.Rank >= len(fs.Traces) {
		return
	}
	rt.Dead = false
	fs.Traces[rt.Rank] = rt
}

// WriteJSON serializes the snapshot (the -fleet-out file and the
// luleshbench -stall-report input).
func (fs *FleetSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fs)
}

// LoadFleetSnapshot reads a snapshot written by WriteJSON.
func LoadFleetSnapshot(r io.Reader) (*FleetSnapshot, error) {
	var fs FleetSnapshot
	if err := json.NewDecoder(r).Decode(&fs); err != nil {
		return nil, fmt.Errorf("fleet snapshot: %w", err)
	}
	return &fs, nil
}

// MergeStats reports what the merge could and could not pair up.
type MergeStats struct {
	Flows          int   // send/recv pairs connected by an arrow
	UnmatchedSends int   // sends whose receive never surfaced
	UnmatchedRecvs int   // receives whose send span is missing
	DroppedSpans   int64 // spans the rank-local tracers overflowed away
	DeadRanks      int
}

// flowKey addresses one message across the fleet: sender, receiver,
// stream and ordinal.
type flowKey struct {
	from, to, tag int
	seq           uint64
}

// Timeline rows per rank in the merged trace.
const (
	tidSteps = 0 // one slice per timestep, wall-clock accurate
	tidAttr  = 1 // the step's buckets laid out sequentially (attribution, not literal timing)
	tidNet   = 2 // send/recv span markers; flow arrows land here
)

// netMarkNs is the nominal width of a send/recv marker slice — wide
// enough for viewers to click, far below any real phase duration.
const netMarkNs = 2_000

// Merge builds the fleet Chrome trace. Every timestamp is shifted by
// the rank's OffsetNs onto rank 0's clock before anything is compared
// or drawn; residual skew (the offset is only good to ~RTT/2) is
// clamped so no flow arrow points backwards in time. The merge must
// stay total under adversarial input: dead ranks become labeled empty
// rows, dropped spans become unmatched-arrow counts, and both are
// surfaced in-band as a "fleet gaps" counter track.
func (fs *FleetSnapshot) Merge() (*trace.Recorder, MergeStats) {
	var st MergeStats
	rec := trace.NewRecorder(0)

	// Epoch: the earliest aligned instant anywhere in the fleet.
	var epochNs int64
	seen := false
	for _, rt := range fs.Traces {
		consider := func(ns int64) {
			if ns == 0 {
				return
			}
			ns += rt.OffsetNs
			if !seen || ns < epochNs {
				epochNs, seen = ns, true
			}
		}
		for _, b := range rt.Steps {
			consider(b.StartNs)
		}
		for _, s := range rt.Sends {
			consider(s.TNs)
		}
		for _, s := range rt.Recvs {
			consider(s.TNs)
		}
	}
	if seen {
		rec.SetEpoch(time.Unix(0, epochNs))
	}

	sends := make(map[flowKey]NetSpan)
	for _, rt := range fs.Traces {
		r := rt.Rank
		if rt.Dead {
			st.DeadRanks++
			rec.SetProcessName(r, fmt.Sprintf("rank %d (no data)", r))
			continue
		}
		rec.SetProcessName(r, fmt.Sprintf("rank %d", r))
		rec.SetThreadName(r, tidSteps, "steps")
		rec.SetThreadName(r, tidAttr, "attribution")
		rec.SetThreadName(r, tidNet, "net")
		st.DroppedSpans += rt.SendDrops + rt.RecvDrops

		for _, b := range rt.Steps {
			start := time.Unix(0, b.StartNs+rt.OffsetNs)
			rec.RecordEvent(trace.Event{
				Name: fmt.Sprintf("step %d", b.Step), PID: r, TID: tidSteps,
				Start: start, Dur: time.Duration(b.WallNs),
				Args: map[string]float64{
					"compute_ms":        float64(b.ComputeNs) / 1e6,
					"ghost_wait_ms":     float64(b.GhostNs) / 1e6,
					"allreduce_wait_ms": float64(b.ReduceNs) / 1e6,
					"steal_idle_ms":     float64(b.IdleNs) / 1e6,
				},
			})
			// The attribution lane lays the buckets end to end inside the
			// step window: where the time went, not when it went there.
			t := start
			for _, part := range []struct {
				name string
				ns   int64
			}{
				{"compute", b.ComputeNs},
				{"ghost-wait", b.GhostNs},
				{"allreduce-wait", b.ReduceNs},
				{"steal-idle", b.IdleNs},
			} {
				if part.ns <= 0 {
					continue
				}
				rec.RecordEvent(trace.Event{
					Name: part.name, PID: r, TID: tidAttr,
					Start: t, Dur: time.Duration(part.ns),
				})
				t = t.Add(time.Duration(part.ns))
			}
		}

		for _, s := range rt.Sends {
			k := flowKey{from: r, to: s.Peer, tag: s.Tag, seq: s.Seq}
			if _, dup := sends[k]; dup {
				continue // a resend; the first transmission anchors the arrow
			}
			sp := s
			sp.TNs += rt.OffsetNs // store aligned; recv matching reads this
			sp.Peer = r           // repurposed below as the sending rank
			sends[k] = sp
			rec.RecordEvent(trace.Event{
				Name: fmt.Sprintf("send %s→%d", comm.Tag(s.Tag), k.to), PID: r, TID: tidNet,
				Start: time.Unix(0, sp.TNs), Dur: netMarkNs,
			})
		}
	}

	// Second pass for receives: every send is indexed first so arrival
	// order across ranks cannot hide a pairing.
	recvSeen := make(map[flowKey]bool)
	for _, rt := range fs.Traces {
		if rt.Dead {
			continue
		}
		r := rt.Rank
		for _, s := range rt.Recvs {
			k := flowKey{from: s.Peer, to: r, tag: s.Tag, seq: s.Seq}
			if recvSeen[k] {
				continue // duplicate delivery (resend); keep the first
			}
			recvSeen[k] = true
			at := s.TNs + rt.OffsetNs
			rec.RecordEvent(trace.Event{
				Name: fmt.Sprintf("recv %s←%d", comm.Tag(s.Tag), k.from), PID: r, TID: tidNet,
				Start: time.Unix(0, at), Dur: netMarkNs,
			})
			snd, ok := sends[k]
			if !ok {
				st.UnmatchedRecvs++ // the send span was dropped or the sender died
				continue
			}
			delete(sends, k)
			st.Flows++
			from := snd.TNs
			if at < from {
				at = from // residual skew must not draw a backwards arrow
			}
			rec.RecordFlow(trace.Flow{
				Name:    fmt.Sprintf("%s %d→%d", comm.Tag(s.Tag), k.from, k.to),
				FromPID: snd.Peer, FromTID: tidNet, From: time.Unix(0, from),
				ToPID: r, ToTID: tidNet, To: time.Unix(0, at),
			})
		}
	}
	st.UnmatchedSends = len(sends)

	if st.DeadRanks > 0 || st.DroppedSpans > 0 || st.UnmatchedSends > 0 || st.UnmatchedRecvs > 0 {
		rec.RecordCounter("fleet gaps", time.Unix(0, epochNs), float64(st.DeadRanks))
		rec.RecordEvent(trace.Event{
			Name: "fleet gaps", PID: 0, TID: tidNet,
			Start: time.Unix(0, epochNs), Dur: netMarkNs,
			Args: map[string]float64{
				"dead_ranks":      float64(st.DeadRanks),
				"dropped_spans":   float64(st.DroppedSpans),
				"unmatched_sends": float64(st.UnmatchedSends),
				"unmatched_recvs": float64(st.UnmatchedRecvs),
			},
		})
	}
	return rec, st
}

// StepStall is one timestep's fleet-wide timing: the slowest rank's
// wall defines the step (bulk-synchronous protocol), the slowest
// compute bounds how fast the step could possibly get, and the
// difference is what overlap could reclaim.
type StepStall struct {
	Step     int   `json:"step"`
	WallNs   int64 `json:"wall_ns"`
	CritNs   int64 `json:"crit_ns"`
	Headroom int64 `json:"headroom_ns"`
	SlowRank int   `json:"slow_rank"`
}

// StallReport quantifies the longest dependency chain per step and the
// total overlap headroom — the number ROADMAP item 3 is judged against.
type StallReport struct {
	Ranks int `json:"ranks"`
	Steps int `json:"steps"`

	WallNs     int64 `json:"wall_ns"`     // Σ per-step max rank wall
	CritNs     int64 `json:"crit_ns"`     // Σ per-step max rank compute
	HeadroomNs int64 `json:"headroom_ns"` // Wall − Crit

	// Per-rank bucket totals summed across the fleet.
	ComputeNs int64 `json:"compute_ns"`
	GhostNs   int64 `json:"ghost_ns"`
	ReduceNs  int64 `json:"reduce_ns"`
	IdleNs    int64 `json:"idle_ns"`

	// Coverage is Σ buckets / Σ wall over every (rank, step) — the
	// attribution's books-balance check (≈1 by construction; <1 only
	// where the compute residual clamped at zero).
	Coverage float64 `json:"coverage"`

	Worst []StepStall `json:"worst"` // top steps by headroom
}

// worstSteps bounds the Worst list.
const worstSteps = 5

// BuildStallReport walks the snapshot's per-step buckets. Dead ranks
// contribute nothing; steps only some ranks reported still count, with
// the max taken over the reporters.
func BuildStallReport(fs *FleetSnapshot) StallReport {
	rep := StallReport{Ranks: fs.Ranks}
	type agg struct {
		wall, crit int64
		slow       int
	}
	perStep := map[int]*agg{}
	var bucketSum, wallSum int64
	for _, rt := range fs.Traces {
		if rt.Dead {
			continue
		}
		for _, b := range rt.Steps {
			a := perStep[b.Step]
			if a == nil {
				a = &agg{}
				perStep[b.Step] = a
			}
			if b.WallNs > a.wall {
				a.wall, a.slow = b.WallNs, rt.Rank
			}
			if b.ComputeNs > a.crit {
				a.crit = b.ComputeNs
			}
			rep.ComputeNs += b.ComputeNs
			rep.GhostNs += b.GhostNs
			rep.ReduceNs += b.ReduceNs
			rep.IdleNs += b.IdleNs
			bucketSum += b.ComputeNs + b.GhostNs + b.ReduceNs + b.IdleNs
			wallSum += b.WallNs
		}
	}
	rep.Steps = len(perStep)
	if wallSum > 0 {
		rep.Coverage = float64(bucketSum) / float64(wallSum)
	}
	steps := make([]int, 0, len(perStep))
	for s := range perStep {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	all := make([]StepStall, 0, len(steps))
	for _, s := range steps {
		a := perStep[s]
		rep.WallNs += a.wall
		rep.CritNs += a.crit
		all = append(all, StepStall{
			Step: s, WallNs: a.wall, CritNs: a.crit,
			Headroom: a.wall - a.crit, SlowRank: a.slow,
		})
	}
	rep.HeadroomNs = rep.WallNs - rep.CritNs
	sort.SliceStable(all, func(i, j int) bool { return all[i].Headroom > all[j].Headroom })
	if len(all) > worstSteps {
		all = all[:worstSteps]
	}
	rep.Worst = all
	return rep
}

// WriteText renders the report for terminals and CI logs.
func (rep StallReport) WriteText(w io.Writer) {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Fprintf(w, "Stall report: %d ranks, %d steps\n", rep.Ranks, rep.Steps)
	if rep.Steps == 0 {
		fmt.Fprintf(w, "  (no per-step buckets recorded)\n")
		return
	}
	pct := 0.0
	if rep.WallNs > 0 {
		pct = 100 * float64(rep.HeadroomNs) / float64(rep.WallNs)
	}
	fmt.Fprintf(w, "  fleet wall        %10.2f ms  (sum of per-step slowest-rank wall)\n", ms(rep.WallNs))
	fmt.Fprintf(w, "  critical compute  %10.2f ms  (per-step slowest-rank compute: the dependency chain)\n", ms(rep.CritNs))
	fmt.Fprintf(w, "  overlap headroom  %10.2f ms  (%.1f%% of wall — upper bound for compute/comm overlap)\n", ms(rep.HeadroomNs), pct)
	fmt.Fprintf(w, "  rank totals: compute %.2f ms, ghost-wait %.2f ms, allreduce-wait %.2f ms, steal-idle %.2f ms\n",
		ms(rep.ComputeNs), ms(rep.GhostNs), ms(rep.ReduceNs), ms(rep.IdleNs))
	fmt.Fprintf(w, "  bucket coverage: %.1f%% of measured wall\n", 100*rep.Coverage)
	if len(rep.Worst) > 0 {
		fmt.Fprintf(w, "  worst steps by headroom:\n")
		for _, s := range rep.Worst {
			fmt.Fprintf(w, "    step %4d  wall %8.2f ms  crit %8.2f ms  headroom %8.2f ms  (slowest rank %d)\n",
				s.Step, ms(s.WallNs), ms(s.CritNs), ms(s.Headroom), s.SlowRank)
		}
	}
}
