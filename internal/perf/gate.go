package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The bench gate turns the committed BENCH_<n>.json records into a
// regression test: re-measure the same configurations, compare grind
// times, and fail if any configuration got more than Tolerance slower.
//
// Raw grind times are not comparable across machines, so the default
// mode normalizes by the median slowdown ratio across all matched
// configurations — a uniformly slower (or faster) host shifts every
// ratio equally and cancels out, while a regression in one backend or
// scenario sticks out against the rest. Absolute mode skips the
// normalization and is the right choice when baseline and current were
// measured on the same machine (e.g. back-to-back in CI).

// GateEntry is the verdict for one measured configuration.
type GateEntry struct {
	Key             string  // BenchRecord.ConfigKey of the configuration
	BaselineGrind   float64 // us/zone/cycle in the baseline set
	CurrentGrind    float64 // us/zone/cycle in the current set (0 = missing)
	Ratio           float64 // CurrentGrind / BaselineGrind
	NormalizedRatio float64 // Ratio / median ratio (== Ratio in absolute mode)
	Pass            bool
	Detail          string
}

// GateReport is the outcome of one gate run.
type GateReport struct {
	Entries     []GateEntry
	MedianRatio float64
	Tolerance   float64
	Absolute    bool
}

// Pass reports whether every configuration passed.
func (r GateReport) Pass() bool {
	for _, e := range r.Entries {
		if !e.Pass {
			return false
		}
	}
	return true
}

// String renders the report as the table benchgate prints.
func (r GateReport) String() string {
	var b strings.Builder
	mode := "median-normalized"
	if r.Absolute {
		mode = "absolute"
	}
	fmt.Fprintf(&b, "bench gate: %d configs, tolerance %.0f%%, %s (median ratio %.3f)\n",
		len(r.Entries), r.Tolerance*100, mode, r.MedianRatio)
	for _, e := range r.Entries {
		verdict := "ok"
		if !e.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  %-4s %-40s base %8.3f  now %8.3f  ratio %.3f  norm %.3f  %s\n",
			verdict, e.Key, e.BaselineGrind, e.CurrentGrind, e.Ratio, e.NormalizedRatio, e.Detail)
	}
	return b.String()
}

// Gate compares current records against baseline records keyed by
// configuration. Multiple records per key keep the best (lowest) grind,
// matching how the benchmarks themselves report min-of-reps. A baseline
// key with no current record fails — the gate cannot vouch for what it
// did not measure. Current-only keys are ignored (new configurations are
// not regressions). Median normalization needs at least 3 matched
// configurations to be meaningful; below that the gate falls back to
// absolute ratios.
func Gate(baseline, current []BenchRecord, tolerance float64, absolute bool) (GateReport, error) {
	if tolerance <= 0 {
		return GateReport{}, fmt.Errorf("perf: gate tolerance must be positive, got %v", tolerance)
	}
	base := bestGrindByKey(baseline)
	if len(base) == 0 {
		return GateReport{}, fmt.Errorf("perf: no baseline records with a grind time")
	}
	cur := bestGrindByKey(current)

	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	rep := GateReport{Tolerance: tolerance, Absolute: absolute, MedianRatio: 1}
	var ratios []float64
	for _, k := range keys {
		if g, ok := cur[k]; ok && g > 0 {
			ratios = append(ratios, g/base[k])
		}
	}
	if !absolute && len(ratios) >= 3 {
		rep.MedianRatio = median(ratios)
	}

	for _, k := range keys {
		e := GateEntry{Key: k, BaselineGrind: base[k]}
		g, ok := cur[k]
		if !ok || g <= 0 {
			e.Detail = "no current measurement"
			rep.Entries = append(rep.Entries, e)
			continue
		}
		e.CurrentGrind = g
		e.Ratio = g / base[k]
		e.NormalizedRatio = e.Ratio / rep.MedianRatio
		// A config fails only when it is slower than tolerated both
		// absolutely and relative to the fleet median: a config still
		// within tolerance of its recorded baseline is not a regression
		// just because its neighbours happened to speed up. (In absolute
		// mode NormalizedRatio == Ratio, so the two conditions coincide.)
		e.Pass = e.NormalizedRatio <= 1+tolerance || e.Ratio <= 1+tolerance
		if !e.Pass {
			e.Detail = fmt.Sprintf("%.0f%% slower than tolerated", (e.NormalizedRatio-1)*100)
		}
		rep.Entries = append(rep.Entries, e)
	}
	return rep, nil
}

func bestGrindByKey(recs []BenchRecord) map[string]float64 {
	m := make(map[string]float64)
	for _, r := range recs {
		g := r.Grind()
		if g <= 0 {
			continue
		}
		k := r.ConfigKey()
		if old, ok := m[k]; !ok || g < old {
			m[k] = g
		}
	}
	return m
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// ReadBenchDir loads and validates every BENCH_<n>.json in dir, sorted by
// slot number via the lexicographic glob order of equal-width names first
// and numeric suffix second.
func ReadBenchDir(dir string) ([]BenchRecord, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Slice(paths, func(i, j int) bool {
		return benchSlot(paths[i]) < benchSlot(paths[j])
	})
	var recs []BenchRecord
	for _, p := range paths {
		r, err := ReadBenchJSON(p)
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// ReadBenchJSON loads one record and validates it.
func ReadBenchJSON(path string) (BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchRecord{}, err
	}
	var r BenchRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return BenchRecord{}, fmt.Errorf("perf: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return BenchRecord{}, fmt.Errorf("perf: %s: %w", path, err)
	}
	return r, nil
}

func benchSlot(path string) int {
	name := filepath.Base(path)
	var n int
	if _, err := fmt.Sscanf(name, "BENCH_%d.json", &n); err != nil {
		return 1 << 30
	}
	return n
}
