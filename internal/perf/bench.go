package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"
)

// BenchRecord is the machine-readable result of one benchmark run —
// figure-of-merit, per-phase breakdown, counter snapshot and enough
// build/host context to compare records across PRs. luleshbench writes one
// BENCH_<n>.json per -record run.
//
// JSON key order is the struct field order and therefore stable across
// runs — committed records diff cleanly. New fields must be appended with
// omitempty so old records keep validating.
type BenchRecord struct {
	Name       string             `json:"name"`
	Timestamp  string             `json:"timestamp"`
	Scenario   string             `json:"scenario,omitempty"` // canonical spec ("" = sedov, pre-scenario records)
	Backend    string             `json:"backend"`
	Workers    int                `json:"workers"`
	Size       int                `json:"size,omitempty"` // mesh edge elements
	Regions    int                `json:"regions,omitempty"`
	Iterations int                `json:"iterations"`
	ElapsedSec float64            `json:"elapsed_sec"`
	FOM        float64            `json:"fom_zps"`               // zones/second
	GrindUsZC  float64            `json:"grind_us_zc,omitempty"` // microseconds per zone per cycle
	Phases     []PhaseStats       `json:"phases,omitempty"`
	Counters   map[string]float64 `json:"counters,omitempty"`

	// JobID and QueueWaitUs are stamped by luleshd on served-job results:
	// the job's server-assigned identifier and the time the job spent in
	// the admission queue before its first cycle (microseconds). Both are
	// omitempty, so CLI-produced records and all committed baselines are
	// byte-identical to the pre-field format.
	JobID       string  `json:"job_id,omitempty"`
	QueueWaitUs float64 `json:"queue_wait_us,omitempty"`

	Build BuildInfo `json:"build"`
}

// Validate checks the invariants every written record must satisfy; the
// bench gate refuses files that fail it rather than comparing garbage.
func (r BenchRecord) Validate() error {
	switch {
	case r.Name == "":
		return fmt.Errorf("perf: record missing name")
	case r.Backend == "":
		return fmt.Errorf("perf: record %q missing backend", r.Name)
	case r.Workers < 1:
		return fmt.Errorf("perf: record %q has %d workers", r.Name, r.Workers)
	case r.Iterations < 1:
		return fmt.Errorf("perf: record %q has %d iterations", r.Name, r.Iterations)
	case r.ElapsedSec <= 0:
		return fmt.Errorf("perf: record %q has elapsed %v", r.Name, r.ElapsedSec)
	case r.FOM <= 0:
		return fmt.Errorf("perf: record %q has FOM %v", r.Name, r.FOM)
	case r.GrindUsZC < 0:
		return fmt.Errorf("perf: record %q has grind %v", r.Name, r.GrindUsZC)
	case r.QueueWaitUs < 0:
		return fmt.Errorf("perf: record %q has queue wait %v", r.Name, r.QueueWaitUs)
	case r.Build.GoVersion == "":
		return fmt.Errorf("perf: record %q missing build info", r.Name)
	}
	return nil
}

// ConfigKey identifies the measured configuration — the unit the bench
// gate compares across record sets. Records of the same key measure the
// same work.
func (r BenchRecord) ConfigKey() string {
	sc := r.Scenario
	if sc == "" {
		sc = "sedov"
	}
	return fmt.Sprintf("%s|%s|s%d|w%d", sc, r.Backend, r.Size, r.Workers)
}

// Grind returns the grind time in us/zone/cycle, deriving it from the FOM
// for pre-scenario records that did not store it.
func (r BenchRecord) Grind() float64 {
	if r.GrindUsZC > 0 {
		return r.GrindUsZC
	}
	if r.FOM > 0 {
		return 1e6 / r.FOM
	}
	return 0
}

// BuildInfo pins the toolchain and host a record was produced on. New
// fields are appended with omitempty so older records (and the golden
// file) keep deserializing and serializing byte-identically.
type BuildInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	Host       string `json:"host,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	GitRev     string `json:"git_rev,omitempty"`
}

// CurrentBuildInfo fills a BuildInfo from the running binary. The git
// revision comes from the binary's embedded VCS stamp (present when the
// build ran inside a checkout; absent under `go test` and plain `go
// run`, where the field stays empty) — enough for benchgate failures to
// be traced to the exact commit that produced a record.
func CurrentBuildInfo() BuildInfo {
	host, _ := os.Hostname()
	return BuildInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Host:       host,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitRev:     gitRevision(),
	}
}

// gitRevision extracts the vcs.revision setting (shortened) from the
// running binary's build info, "" when the binary carries no VCS stamp.
func gitRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			rev := s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if mod := findSetting(bi, "vcs.modified"); mod == "true" {
				rev += "+dirty"
			}
			return rev
		}
	}
	return ""
}

func findSetting(bi *debug.BuildInfo, key string) string {
	for _, s := range bi.Settings {
		if s.Key == key {
			return s.Value
		}
	}
	return ""
}

// WriteBenchJSON writes rec to the first unused BENCH_<n>.json in dir
// (n counts up from 0) and returns the chosen path. The sequential
// numbering keeps one file per run, so the perf trajectory across PRs is
// a directory listing instead of a grep through experiments_raw.txt.
func WriteBenchJSON(dir string, rec BenchRecord) (string, error) {
	if rec.Timestamp == "" {
		rec.Timestamp = time.Now().UTC().Format(time.RFC3339)
	}
	if rec.Build == (BuildInfo{}) {
		rec.Build = CurrentBuildInfo()
	}
	var path string
	for n := 0; ; n++ {
		path = filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		} else if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("perf: no free BENCH_<n>.json slot in %s", dir)
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	// O_EXCL guards the slot against a concurrent writer picking the same n.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
