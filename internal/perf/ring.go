package perf

import "sync/atomic"

// span is one raw task execution record held in a ring: fixed-size, no
// pointers, so a ring slot never allocates or retains memory.
type span struct {
	startNs int64 // start, nanoseconds since the profiler epoch
	durNs   int64
	phase   uint32
	worker  int32
}

// spanRing is a bounded single-producer/single-consumer ring buffer. The
// producer is the worker owning the shard (RecordTask); the consumer is
// the drainer (DrainSpans). head counts pushes, tail counts pops; both
// only grow, and the slot index is the count modulo capacity.
//
// Ordering: the producer plain-writes the slot and then publishes it with
// a head release-store; the consumer acquires head before reading slots,
// and its tail release-store hands the freed slots back. Each side writes
// only its own counter, so the pair forms the classic lock-free SPSC
// protocol — full means push fails (the caller counts a drop) rather than
// blocking the hot path.
type spanRing struct {
	buf  []span
	head atomic.Int64 // producer-owned
	_    [56]byte     // keep the two counters off one cache line
	tail atomic.Int64 // consumer-owned
}

func newSpanRing(capacity int) *spanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &spanRing{buf: make([]span, capacity)}
}

// push appends s, returning false when the ring is full.
func (r *spanRing) push(s span) bool {
	h := r.head.Load()
	if h-r.tail.Load() >= int64(len(r.buf)) {
		return false
	}
	r.buf[h%int64(len(r.buf))] = s
	r.head.Store(h + 1)
	return true
}

// drain appends every buffered span to out and frees the slots.
func (r *spanRing) drain(out []span) []span {
	t := r.tail.Load()
	h := r.head.Load()
	for ; t < h; t++ {
		out = append(out, r.buf[t%int64(len(r.buf))])
	}
	r.tail.Store(t)
	return out
}

// size reports the number of buffered spans (approximate under concurrent
// pushes).
func (r *spanRing) size() int {
	return int(r.head.Load() - r.tail.Load())
}
