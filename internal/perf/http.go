package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lulesh/internal/stats"
)

// Server exposes live counter snapshots over HTTP:
//
//	/metrics       Prometheus text exposition of all per-phase counters
//	/metrics.json  the same Snapshot (plus extra gauges) as JSON
//	/debug/pprof/  the standard net/http/pprof handlers
//
// It runs on its own mux so importing net/http/pprof does not pollute
// http.DefaultServeMux for embedders.
type Server struct {
	Addr   string // actual listen address (resolved ":0" included)
	ln     net.Listener
	srv    *http.Server
	p      atomic.Pointer[Profiler]
	labels atomic.Value // rendered base label set, e.g. `rank="3"`
	peers  atomic.Value // func() []string: fleet scrape targets (rank 0)
	text   atomic.Value // func(io.Writer): raw exposition appended per scrape
}

// SetTextSource installs a hook invoked on every /metrics scrape after the
// profiler series; whatever it writes is appended verbatim to the
// exposition. This is the escape hatch for producers whose series carry
// their *own* per-sample labels — luleshd appends one block per live job
// with job="<id>" — which the extra-gauges hook (bare names, server-wide
// labels only) cannot express. The hook runs on the scrape goroutine and
// must be concurrency-safe; nil removes it.
func (s *Server) SetTextSource(fn func(w io.Writer)) {
	if fn == nil {
		fn = func(io.Writer) {}
	}
	s.text.Store(fn)
}

// SetLabels attaches constant labels to every Prometheus series the
// server exposes. Multi-process runs label each rank's endpoint with
// rank="N", so one scraper aggregating all ranks keeps the series
// apart.
func (s *Server) SetLabels(labels map[string]string) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", sanitizeMetricName(k), labels[k]))
	}
	s.labels.Store(strings.Join(parts, ","))
}

func (s *Server) baseLabels() string {
	if v, ok := s.labels.Load().(string); ok {
		return v
	}
	return ""
}

// StartServer begins serving the profiler's counters on addr (host:port;
// ":0" picks a free port, reported via Server.Addr). extra, when non-nil,
// is invoked per scrape and its gauges are appended to both the
// Prometheus and JSON outputs — the hook for scheduler-level counters
// (utilization, steals, parks) that live outside the profiler.
func StartServer(addr string, p *Profiler, extra func() map[string]float64) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln}
	s.p.Store(p)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// no-store: scrapes are live samples; a proxy replaying a cached
		// body would feed the scraper stale counters.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Header().Set("Cache-Control", "no-store")
		writePrometheus(w, s.snapshot(), callExtra(extra), s.baseLabels())
		if fn, ok := s.text.Load().(func(w io.Writer)); ok {
			fn(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Snapshot
			Extra map[string]float64 `json:"extra,omitempty"`
		}{s.snapshot(), callExtra(extra)})
	})
	mux.HandleFunc("/fleet/metrics", s.serveFleet)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// SetProfiler swaps which profiler the endpoints report — used by
// luleshbench so the live dashboard follows the measurement currently
// running. Safe to call while scrapes are in flight.
func (s *Server) SetProfiler(p *Profiler) { s.p.Store(p) }

func (s *Server) snapshot() Snapshot {
	if p := s.p.Load(); p != nil {
		return p.Snapshot()
	}
	return Snapshot{}
}

// Close stops the server.
func (s *Server) Close() { s.srv.Close() }

// EnableFleet turns on /fleet/metrics: each scrape fetches every peer
// address's /metrics (the local rank included, so the fleet view is
// complete from one URL) and merges the bodies into one exposition.
// peers is called per scrape — the target list may change as ranks come
// and go. Rank 0 of a wire run enables this; other ranks leave it off
// and /fleet/metrics answers 404.
func (s *Server) EnableFleet(peers func() []string) { s.peers.Store(peers) }

// fleetScrapeTimeout bounds each per-rank fetch: a hung rank must not
// stall the whole fleet scrape past the scraper's own deadline.
const fleetScrapeTimeout = 2 * time.Second

func (s *Server) serveFleet(w http.ResponseWriter, r *http.Request) {
	fn, ok := s.peers.Load().(func() []string)
	if !ok || fn == nil {
		http.Error(w, "fleet aggregation not enabled on this rank", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.Header().Set("Cache-Control", "no-store")
	client := &http.Client{Timeout: fleetScrapeTimeout}
	bodies := make([][]byte, 0, 8)
	errs := 0
	for _, addr := range fn() {
		resp, err := client.Get("http://" + addr + "/metrics")
		if err != nil {
			errs++
			fmt.Fprintf(w, "# fleet: scrape of %s failed: %v\n", addr, err)
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			errs++
			fmt.Fprintf(w, "# fleet: scrape of %s failed: status %d\n", addr, resp.StatusCode)
			continue
		}
		bodies = append(bodies, body)
	}
	w.Write(MergeMetricsText(bodies))
	fmt.Fprintf(w, "# TYPE lulesh_fleet_scrape_errors gauge\nlulesh_fleet_scrape_errors %d\n", errs)
	fmt.Fprintf(w, "# TYPE lulesh_fleet_ranks gauge\nlulesh_fleet_ranks %d\n", len(bodies))
}

// MergeMetricsText concatenates Prometheus text expositions, keeping
// only the first # HELP / # TYPE line per metric name: per-rank bodies
// repeat the metadata, and scrapers reject duplicate TYPE declarations.
// The samples themselves stay distinct through their rank="N" labels.
func MergeMetricsText(bodies [][]byte) []byte {
	var out bytes.Buffer
	seen := map[string]bool{}
	for _, body := range bodies {
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
				if seen[line] {
					continue
				}
				// Key on the directive + metric name so differing help texts
				// cannot smuggle in a duplicate TYPE.
				fields := strings.Fields(line)
				if len(fields) >= 3 {
					key := fields[1] + " " + fields[2]
					if seen[key] {
						continue
					}
					seen[key] = true
				}
				seen[line] = true
			} else if line == "" {
				continue
			}
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.Bytes()
}

func callExtra(extra func() map[string]float64) map[string]float64 {
	if extra == nil {
		return nil
	}
	return extra()
}

// labelset renders a Prometheus label block from alternating key/value
// pairs plus the server's constant base labels (e.g. rank="3"); it
// returns "" when there is nothing to attach.
func labelset(base string, kv ...string) string {
	parts := make([]string, 0, len(kv)/2+1)
	for i := 0; i+1 < len(kv); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	if base != "" {
		parts = append(parts, base)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// writePrometheus renders the snapshot in the Prometheus text exposition
// format (hand-rolled: the repo takes no dependencies). Phase duration
// histograms follow the cumulative le-bucket convention so standard
// histogram_quantile queries work on them. base is a constant label set
// attached to every series (rank="N" on multi-process runs).
func writePrometheus(w io.Writer, snap Snapshot, extra map[string]float64, base string) {
	bare := labelset(base)
	fmt.Fprintf(w, "# HELP lulesh_wall_seconds Wall time covered by the profiler epoch.\n")
	fmt.Fprintf(w, "# TYPE lulesh_wall_seconds gauge\n")
	fmt.Fprintf(w, "lulesh_wall_seconds%s %g\n", bare, snap.Wall.Seconds())
	fmt.Fprintf(w, "# HELP lulesh_workers Worker shard count.\n")
	fmt.Fprintf(w, "# TYPE lulesh_workers gauge\n")
	fmt.Fprintf(w, "lulesh_workers%s %d\n", bare, snap.Workers)
	fmt.Fprintf(w, "# HELP lulesh_utilization Busy time over wall x workers (Figure 11 quantity).\n")
	fmt.Fprintf(w, "# TYPE lulesh_utilization gauge\n")
	fmt.Fprintf(w, "lulesh_utilization%s %g\n", bare, snap.Utilization())
	fmt.Fprintf(w, "# HELP lulesh_span_drops_total Spans dropped by full per-worker rings.\n")
	fmt.Fprintf(w, "# TYPE lulesh_span_drops_total counter\n")
	fmt.Fprintf(w, "lulesh_span_drops_total%s %d\n", bare, snap.SpanDrops)

	fmt.Fprintf(w, "# HELP lulesh_phase_tasks_total Tasks executed per phase.\n")
	fmt.Fprintf(w, "# TYPE lulesh_phase_tasks_total counter\n")
	for _, ps := range snap.Phases {
		fmt.Fprintf(w, "lulesh_phase_tasks_total%s %d\n", labelset(base, "phase", ps.Name), ps.Count)
	}
	fmt.Fprintf(w, "# HELP lulesh_phase_busy_seconds Summed task-body time per phase.\n")
	fmt.Fprintf(w, "# TYPE lulesh_phase_busy_seconds counter\n")
	for _, ps := range snap.Phases {
		fmt.Fprintf(w, "lulesh_phase_busy_seconds%s %g\n", labelset(base, "phase", ps.Name), ps.Busy.Seconds())
	}
	fmt.Fprintf(w, "# HELP lulesh_phase_queue_wait_seconds Summed enqueue-to-start wait per phase.\n")
	fmt.Fprintf(w, "# TYPE lulesh_phase_queue_wait_seconds counter\n")
	for _, ps := range snap.Phases {
		fmt.Fprintf(w, "lulesh_phase_queue_wait_seconds%s %g\n", labelset(base, "phase", ps.Name), ps.QueueWait.Seconds())
	}
	fmt.Fprintf(w, "# HELP lulesh_phase_steals_total Tasks that executed after a steal migration, per phase.\n")
	fmt.Fprintf(w, "# TYPE lulesh_phase_steals_total counter\n")
	for _, ps := range snap.Phases {
		fmt.Fprintf(w, "lulesh_phase_steals_total%s %d\n", labelset(base, "phase", ps.Name), ps.Steals)
	}

	fmt.Fprintf(w, "# HELP lulesh_phase_duration_seconds Task duration distribution per phase.\n")
	fmt.Fprintf(w, "# TYPE lulesh_phase_duration_seconds histogram\n")
	for _, ps := range snap.Phases {
		var cum int64
		for i, n := range ps.Hist.Counts {
			cum += n
			if n == 0 && i < len(ps.Hist.Counts)-1 {
				continue // keep the exposition compact; cumulative stays correct
			}
			le := float64(stats.HistUpper(i)) / 1e9
			fmt.Fprintf(w, "lulesh_phase_duration_seconds_bucket%s %d\n",
				labelset(base, "phase", ps.Name, "le", trimFloat(le)), cum)
		}
		fmt.Fprintf(w, "lulesh_phase_duration_seconds_bucket%s %d\n",
			labelset(base, "phase", ps.Name, "le", "+Inf"), ps.Count)
		fmt.Fprintf(w, "lulesh_phase_duration_seconds_sum%s %g\n",
			labelset(base, "phase", ps.Name), ps.Busy.Seconds())
		fmt.Fprintf(w, "lulesh_phase_duration_seconds_count%s %d\n",
			labelset(base, "phase", ps.Name), ps.Count)
	}

	if len(extra) > 0 {
		keys := make([]string, 0, len(extra))
		for k := range extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			name := "lulesh_" + sanitizeMetricName(k)
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			fmt.Fprintf(w, "%s%s %g\n", name, bare, extra[k])
		}
	}
}

// sanitizeMetricName maps an arbitrary counter label to a valid Prometheus
// metric name.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", f), "0"), ".")
}
