package perf

import (
	"encoding/binary"
	"math"
	"sync"
	"time"

	"lulesh/internal/comm"
)

// Distributed tracing: per-rank span collection and the step-time
// attribution phases. The NetTracer below implements comm.TraceSink, so
// both message layers — the in-process endpoint and the wire fabric —
// feed it paired send/recv spans; the dist driver adds per-step wall
// buckets; fleet.go merges one RankTrace per rank into the fleet view.

// Attribution phases registered into a dist run's profiler, so the
// compute/wait split flows through the existing Prometheus series,
// histograms and per-phase exit table unchanged. Phase 0 stays the
// catch-all "other".
const (
	PhaseDistCompute   uint32 = 1 // step wall minus all waits
	PhaseDistGhostWait uint32 = 2 // blocked in ghost/boundary exchanges
	PhaseDistWaitRed   uint32 = 3 // blocked in the dt allreduce
	PhaseDistStealIdle uint32 = 4 // hybrid pool idle inside parallel regions
)

// RegisterDistPhases names the attribution phases on a profiler used by
// the distributed driver (one shard per rank in-process, one per
// process on the wire).
func RegisterDistPhases(p *Profiler) {
	p.SetPhaseName(PhaseDistCompute, "compute")
	p.SetPhaseName(PhaseDistGhostWait, "ghost-wait")
	p.SetPhaseName(PhaseDistWaitRed, "allreduce-wait")
	p.SetPhaseName(PhaseDistStealIdle, "steal-idle")
}

// NetSpan is one recorded message event: a send or its paired receive.
// The (Peer, Tag, Seq) triple plus the direction identifies the pairing
// — rank a's send (to=b, tag, seq) matches rank b's recv (from=a, tag,
// seq) — which is what the merger draws flow arrows from.
type NetSpan struct {
	Peer   int    `json:"peer"`
	Tag    int    `json:"tag"`
	Seq    uint64 `json:"seq"`
	Step   int    `json:"step"`
	TNs    int64  `json:"t_ns"` // local clock, unix nanoseconds
	Bytes  int    `json:"bytes"`
	SendNs int64  `json:"send_ns,omitempty"` // recvs only: sender's header clock
}

// StepBucket is one timestep's wall-time attribution on one rank. The
// buckets sum to Wall exactly by construction (compute is the residual;
// measured-bucket overshoot is trimmed idle-first, see the dist driver's
// attributeStep), which is the invariant the stall report and its tests
// lean on.
type StepBucket struct {
	Step      int   `json:"step"`
	StartNs   int64 `json:"start_ns"` // local clock at cycle start
	WallNs    int64 `json:"wall_ns"`
	ComputeNs int64 `json:"compute_ns"`
	GhostNs   int64 `json:"ghost_ns"`
	ReduceNs  int64 `json:"reduce_ns"`
	IdleNs    int64 `json:"idle_ns"`
}

// RankTrace is one rank's complete trace contribution: its clock
// relation to rank 0, its per-step buckets, and its message spans.
// Workers JSON-encode it and ship it to rank 0 over the fabric
// (comm.TagTrace) after the run.
type RankTrace struct {
	Rank      int          `json:"rank"`
	Ranks     int          `json:"ranks"`
	OffsetNs  int64        `json:"offset_ns"` // add to local clocks → rank-0 clock
	RTTNs     int64        `json:"rtt_ns"`    // round trip the offset rode on
	Steps     []StepBucket `json:"steps"`
	Sends     []NetSpan    `json:"sends"`
	Recvs     []NetSpan    `json:"recvs"`
	SendDrops int64        `json:"send_drops,omitempty"` // spans lost to the cap
	RecvDrops int64        `json:"recv_drops,omitempty"`
	Dead      bool         `json:"dead,omitempty"` // no snapshot arrived for this rank
}

// netSpanCap bounds a NetTracer's per-direction storage. Long runs
// overflow it; the drop counters keep the truncation visible, exactly
// like the span-ring accounting.
const netSpanCap = 1 << 17

// NetTracer collects message spans from the comm or wire layer. Safe
// for concurrent use (the wire fabric records from its writer and
// reader goroutines). Implements comm.TraceSink.
type NetTracer struct {
	mu        sync.Mutex
	limit     int
	sends     []NetSpan
	recvs     []NetSpan
	sendDrops int64
	recvDrops int64
}

// NewNetTracer creates a tracer holding up to limit spans per direction
// (0 = netSpanCap).
func NewNetTracer(limit int) *NetTracer {
	if limit <= 0 {
		limit = netSpanCap
	}
	return &NetTracer{limit: limit}
}

// RecordSend implements comm.TraceSink.
func (t *NetTracer) RecordSend(peer int, tag comm.Tag, seq uint64, step, bytes int, at time.Time) {
	t.mu.Lock()
	if len(t.sends) < t.limit {
		t.sends = append(t.sends, NetSpan{
			Peer: peer, Tag: int(tag), Seq: seq, Step: step,
			TNs: at.UnixNano(), Bytes: bytes,
		})
	} else {
		t.sendDrops++
	}
	t.mu.Unlock()
}

// RecordRecv implements comm.TraceSink.
func (t *NetTracer) RecordRecv(peer int, tag comm.Tag, seq uint64, step, bytes int, at time.Time, sendNs int64) {
	t.mu.Lock()
	if len(t.recvs) < t.limit {
		t.recvs = append(t.recvs, NetSpan{
			Peer: peer, Tag: int(tag), Seq: seq, Step: step,
			TNs: at.UnixNano(), Bytes: bytes, SendNs: sendNs,
		})
	} else {
		t.recvDrops++
	}
	t.mu.Unlock()
}

// Drain moves the collected spans and drop counts into rt, leaving the
// tracer empty.
func (t *NetTracer) Drain(rt *RankTrace) {
	t.mu.Lock()
	rt.Sends = append(rt.Sends, t.sends...)
	rt.Recvs = append(rt.Recvs, t.recvs...)
	rt.SendDrops += t.sendDrops
	rt.RecvDrops += t.recvDrops
	t.sends, t.recvs = nil, nil
	t.sendDrops, t.recvDrops = 0, 0
	t.mu.Unlock()
}

// EncodeBlob packs arbitrary bytes into the float64 slabs the comm
// fabric moves: one length-prefix float (the byte count as raw bits)
// followed by ceil(n/8) floats of payload, all bit-cast so no value
// round-trips through float arithmetic. The trace gather rides the
// ordinary data path with this.
func EncodeBlob(b []byte) []float64 {
	out := make([]float64, 1+(len(b)+7)/8)
	out[0] = math.Float64frombits(uint64(len(b)))
	var chunk [8]byte
	for i := 1; i < len(out); i++ {
		n := copy(chunk[:], b[(i-1)*8:])
		for j := n; j < 8; j++ {
			chunk[j] = 0
		}
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[:]))
	}
	return out
}

// DecodeBlob unpacks EncodeBlob's framing. ok is false when the slab is
// malformed (short, or a length that does not fit the payload).
func DecodeBlob(f []float64) (b []byte, ok bool) {
	if len(f) == 0 {
		return nil, false
	}
	n := math.Float64bits(f[0])
	if n > uint64(8*(len(f)-1)) {
		return nil, false
	}
	b = make([]byte, 8*(len(f)-1))
	for i, v := range f[1:] {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b[:n], true
}
