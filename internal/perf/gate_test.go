package perf

import (
	"strings"
	"testing"
)

// gateRecord builds a minimal valid record for one configuration with
// the given grind time (us/zone/cycle).
func gateRecord(scenario, backend string, size, workers int, grind float64) BenchRecord {
	return BenchRecord{
		Name:       "sweep",
		Timestamp:  "2026-01-02T03:04:05Z",
		Scenario:   scenario,
		Backend:    backend,
		Workers:    workers,
		Size:       size,
		Regions:    11,
		Iterations: 100,
		ElapsedSec: grind * float64(size*size*size) * 100 / 1e6,
		FOM:        1e6 / grind,
		GrindUsZC:  grind,
		Build:      BuildInfo{GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 8},
	}
}

func gateBaseline() []BenchRecord {
	return []BenchRecord{
		gateRecord("sedov", "task", 16, 4, 1.00),
		gateRecord("piston:speed=100", "task", 16, 4, 0.90),
		gateRecord("multimat:balance=2,cost=5,regions=64", "task", 16, 4, 1.40),
		gateRecord("sedov", "serial", 16, 1, 2.00),
	}
}

// scale returns the baseline with every grind multiplied by f, except
// keys listed in bump which get an extra factor.
func scale(f float64, bump map[string]float64) []BenchRecord {
	recs := gateBaseline()
	for i := range recs {
		g := recs[i].GrindUsZC * f
		if extra, ok := bump[recs[i].ConfigKey()]; ok {
			g *= extra
		}
		recs[i].GrindUsZC = g
		recs[i].FOM = 1e6 / g
	}
	return recs
}

// TestGateSyntheticRegression is the acceptance demo: a >10% grind-time
// regression in one configuration must fail the gate while the
// unregressed configurations pass.
func TestGateSyntheticRegression(t *testing.T) {
	regressedKey := "piston:speed=100|task|s16|w4"
	rep, err := Gate(gateBaseline(), scale(1.0, map[string]float64{regressedKey: 1.25}), 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatalf("gate passed a 25%% regression:\n%s", rep)
	}
	for _, e := range rep.Entries {
		if e.Key == regressedKey && e.Pass {
			t.Errorf("regressed config %s passed", e.Key)
		}
		if e.Key != regressedKey && !e.Pass {
			t.Errorf("unregressed config %s failed:\n%s", e.Key, rep)
		}
	}
	if !strings.Contains(rep.String(), "FAIL") {
		t.Errorf("report does not mark the failure:\n%s", rep)
	}
}

// TestGateWithinTolerance: a 5% wobble on one config is noise, not a
// regression.
func TestGateWithinTolerance(t *testing.T) {
	rep, err := Gate(gateBaseline(), scale(1.0, map[string]float64{"sedov|task|s16|w4": 1.05}), 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Errorf("gate failed a 5%% wobble:\n%s", rep)
	}
}

// TestGateMedianAbsorbsUniformShift: a slower host scales every grind
// equally; the default mode must not flag that, but absolute mode must.
func TestGateMedianAbsorbsUniformShift(t *testing.T) {
	current := scale(1.8, nil) // everything 80% slower — different machine
	rep, err := Gate(gateBaseline(), current, 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Errorf("median mode flagged a uniform host shift:\n%s", rep)
	}
	abs, err := Gate(gateBaseline(), current, 0.10, true)
	if err != nil {
		t.Fatal(err)
	}
	if abs.Pass() {
		t.Errorf("absolute mode accepted an 80%% slowdown:\n%s", abs)
	}
}

// TestGateCatchesRegressionOnSlowerHost: the combination that matters in
// CI — everything shifted by the host, plus one real regression on top.
func TestGateCatchesRegressionOnSlowerHost(t *testing.T) {
	regressedKey := "sedov|serial|s16|w1"
	rep, err := Gate(gateBaseline(), scale(1.5, map[string]float64{regressedKey: 1.30}), 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatalf("gate missed a 30%% regression hidden under a host shift:\n%s", rep)
	}
	for _, e := range rep.Entries {
		if e.Key == regressedKey && e.Pass {
			t.Errorf("regressed config %s passed", e.Key)
		}
	}
}

// TestGateMissingCurrentFails: a baseline config the current run did not
// measure cannot be vouched for.
func TestGateMissingCurrentFails(t *testing.T) {
	rep, err := Gate(gateBaseline(), gateBaseline()[:2], 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Errorf("gate passed with unmeasured baseline configs:\n%s", rep)
	}
}

// TestGateFewConfigsFallsBackToAbsolute: with fewer than 3 matched
// configs the median is meaningless, so ratios are taken as-is — a
// single-config regression must still fail.
func TestGateFewConfigsFallsBackToAbsolute(t *testing.T) {
	base := gateBaseline()[:1]
	cur := scale(1.0, map[string]float64{base[0].ConfigKey(): 1.5})[:1]
	rep, err := Gate(base, cur, 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Errorf("single-config regression normalized away:\n%s", rep)
	}
}

// TestGateBestOfReps: several records for the same key keep the lowest
// grind on both sides, matching min-of-reps benchmark reporting.
func TestGateBestOfReps(t *testing.T) {
	base := []BenchRecord{
		gateRecord("sedov", "task", 16, 4, 1.00),
		gateRecord("sedov", "task", 16, 4, 1.50), // noisy rep, ignored
	}
	cur := []BenchRecord{
		gateRecord("sedov", "task", 16, 4, 2.00), // noisy rep, ignored
		gateRecord("sedov", "task", 16, 4, 1.02),
	}
	rep, err := Gate(base, cur, 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 || !rep.Entries[0].Pass {
		t.Errorf("best-of-reps comparison failed:\n%s", rep)
	}
	if rep.Entries[0].Ratio > 1.05 {
		t.Errorf("ratio %v, want ~1.02 (best vs best)", rep.Entries[0].Ratio)
	}
}

// TestGateNeighbourSpeedupIsNotARegression: when most configs get faster
// (warm cache, quieter machine) a config that merely stayed put has an
// inflated normalized ratio — but it is within tolerance of its own
// baseline, so it must not fail.
func TestGateNeighbourSpeedupIsNotARegression(t *testing.T) {
	stayedPut := "sedov|serial|s16|w1"
	current := scale(0.8, map[string]float64{stayedPut: 1.0 / 0.8}) // everyone -20%, this one flat
	rep, err := Gate(gateBaseline(), current, 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Errorf("config at its own baseline failed because neighbours sped up:\n%s", rep)
	}
}

// TestGateErrors covers the refuse-to-run paths.
func TestGateErrors(t *testing.T) {
	if _, err := Gate(gateBaseline(), gateBaseline(), 0, false); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := Gate(nil, gateBaseline(), 0.10, false); err == nil {
		t.Error("empty baseline accepted")
	}
}
