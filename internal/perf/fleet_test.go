package perf

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"lulesh/internal/comm"
)

// renderTrace merges the snapshot and decodes the Chrome JSON it writes;
// every adversarial case must still come out as one well-formed array.
func renderTrace(t *testing.T, fs *FleetSnapshot) ([]map[string]any, MergeStats) {
	t.Helper()
	rec, st := fs.Merge()
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	return evs, st
}

func countPh(evs []map[string]any, ph string) int {
	n := 0
	for _, e := range evs {
		if e["ph"] == ph {
			n++
		}
	}
	return n
}

// base builds a healthy 2-rank snapshot: one step each, one message
// rank 0 → rank 1 on the ghost stream.
func baseSnapshot(skewNs int64) *FleetSnapshot {
	const t0 = int64(1_000_000_000_000) // arbitrary unix-nano origin
	fs := NewFleetSnapshot(2)
	fs.AddRank(RankTrace{
		Rank: 0, Ranks: 2,
		Steps: []StepBucket{{Step: 1, StartNs: t0, WallNs: 10e6,
			ComputeNs: 8e6, GhostNs: 2e6}},
		Sends: []NetSpan{{Peer: 1, Tag: int(comm.TagDelvXi), Seq: 0, Step: 1,
			TNs: t0 + 1e6, Bytes: 64}},
	})
	// Rank 1's clock runs skewNs behind rank 0's; its OffsetNs says so.
	fs.AddRank(RankTrace{
		Rank: 1, Ranks: 2, OffsetNs: skewNs, RTTNs: 50_000,
		Steps: []StepBucket{{Step: 1, StartNs: t0 - skewNs, WallNs: 10e6,
			ComputeNs: 7e6, GhostNs: 3e6}},
		Recvs: []NetSpan{{Peer: 0, Tag: int(comm.TagDelvXi), Seq: 0, Step: 1,
			TNs: t0 - skewNs + 2e6, Bytes: 64, SendNs: t0 + 1e6}},
	})
	return fs
}

// A rank with heavy clock skew must still produce exactly one flow
// arrow, pointing forward in time after alignment.
func TestFleetMergeAlignsClockSkew(t *testing.T) {
	for _, skew := range []int64{0, 3e9, -3e9} {
		evs, st := renderTrace(t, baseSnapshot(skew))
		if st.Flows != 1 || st.UnmatchedSends != 0 || st.UnmatchedRecvs != 0 {
			t.Fatalf("skew %d: stats %+v, want exactly one clean flow", skew, st)
		}
		if n := countPh(evs, "s"); n != 1 {
			t.Fatalf("skew %d: %d flow starts, want 1", skew, n)
		}
		var sTs, fTs float64
		for _, e := range evs {
			switch e["ph"] {
			case "s":
				sTs = e["ts"].(float64)
			case "f":
				fTs = e["ts"].(float64)
			}
		}
		if fTs < sTs {
			t.Errorf("skew %d: arrow points backwards (%v -> %v)", skew, sTs, fTs)
		}
		// Both ranks got named rows.
		names := 0
		for _, e := range evs {
			if e["name"] == "process_name" {
				names++
			}
		}
		if names != 2 {
			t.Errorf("skew %d: %d process names, want 2", skew, names)
		}
	}
}

// Residual skew beyond the offset estimate makes a recv appear before
// its send; the arrow must be clamped, never drawn backwards.
func TestFleetMergeClampsResidualSkew(t *testing.T) {
	fs := baseSnapshot(0)
	fs.Traces[1].Recvs[0].TNs = fs.Traces[0].Sends[0].TNs - 5e6 // "arrived" before it left
	evs, st := renderTrace(t, fs)
	if st.Flows != 1 {
		t.Fatalf("stats %+v, want one flow", st)
	}
	var sTs, fTs float64
	for _, e := range evs {
		switch e["ph"] {
		case "s":
			sTs = e["ts"].(float64)
		case "f":
			fTs = e["ts"].(float64)
		}
	}
	if fTs < sTs {
		t.Errorf("clamp failed: arrow %v -> %v", sTs, fTs)
	}
}

// Dropped spans on either side must surface as unmatched counts and an
// in-band "fleet gaps" marker — and never a dangling arrow endpoint.
func TestFleetMergeDroppedSpans(t *testing.T) {
	fs := baseSnapshot(0)
	fs.Traces[1].Recvs = nil   // the recv span was lost
	fs.Traces[1].RecvDrops = 1 // and the tracer said so
	fs.Traces[0].Sends = append(fs.Traces[0].Sends, NetSpan{
		Peer: 1, Tag: int(comm.TagReduce), Seq: 9, TNs: 2_000_000_000_000})
	fs.Traces[1].Recvs = append(fs.Traces[1].Recvs, NetSpan{
		Peer: 0, Tag: int(comm.TagForceX), Seq: 4, TNs: 2_000_000_000_000})

	evs, st := renderTrace(t, fs)
	if st.Flows != 0 {
		t.Errorf("%d flows from unpaired spans, want 0", st.Flows)
	}
	if st.UnmatchedSends != 2 || st.UnmatchedRecvs != 1 || st.DroppedSpans != 1 {
		t.Errorf("stats %+v, want 2 unmatched sends, 1 unmatched recv, 1 dropped", st)
	}
	if n := countPh(evs, "s") + countPh(evs, "f"); n != 0 {
		t.Errorf("%d dangling flow endpoints", n)
	}
	gaps := false
	for _, e := range evs {
		if e["name"] == "fleet gaps" {
			gaps = true
		}
	}
	if !gaps {
		t.Error("no in-band fleet-gaps marker")
	}
}

// Duplicate sends and deliveries (wire resends) collapse to one arrow.
func TestFleetMergeDedupsResends(t *testing.T) {
	fs := baseSnapshot(0)
	fs.Traces[0].Sends = append(fs.Traces[0].Sends, fs.Traces[0].Sends[0]) // retransmit
	fs.Traces[1].Recvs = append(fs.Traces[1].Recvs, fs.Traces[1].Recvs[0]) // dup delivery
	_, st := renderTrace(t, fs)
	if st.Flows != 1 || st.UnmatchedSends != 0 || st.UnmatchedRecvs != 0 {
		t.Errorf("stats %+v, want the resend folded into one flow", st)
	}
}

// A rank that died mid-run (no snapshot gathered) keeps a labeled row;
// the merge stays total and the gap is counted.
func TestFleetMergeDeadRank(t *testing.T) {
	fs := NewFleetSnapshot(3)
	base := baseSnapshot(0)
	fs.AddRank(base.Traces[0])
	fs.AddRank(base.Traces[1])
	// Rank 2 never reported; rank 1's send to it dangles.
	fs.Traces[1].Sends = append(fs.Traces[1].Sends, NetSpan{
		Peer: 2, Tag: int(comm.TagForceY), Seq: 0, TNs: 1_000_000_500_000})

	evs, st := renderTrace(t, fs)
	if st.DeadRanks != 1 {
		t.Fatalf("DeadRanks = %d, want 1", st.DeadRanks)
	}
	if st.UnmatchedSends != 1 {
		t.Errorf("UnmatchedSends = %d, want 1 (send into the dead rank)", st.UnmatchedSends)
	}
	found := false
	for _, e := range evs {
		if e["name"] == "process_name" {
			args := e["args"].(map[string]any)
			if args["name"] == "rank 2 (no data)" {
				found = true
			}
		}
	}
	if !found {
		t.Error("dead rank lost its labeled row")
	}
}

// AddRank must ignore snapshots claiming impossible ranks.
func TestFleetAddRankOutOfRange(t *testing.T) {
	fs := NewFleetSnapshot(2)
	fs.AddRank(RankTrace{Rank: -1})
	fs.AddRank(RankTrace{Rank: 2})
	for r, rt := range fs.Traces {
		if !rt.Dead || rt.Rank != r {
			t.Errorf("slot %d corrupted: %+v", r, rt)
		}
	}
}

func TestFleetSnapshotJSONRoundTrip(t *testing.T) {
	fs := baseSnapshot(7)
	var buf bytes.Buffer
	if err := fs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFleetSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ranks != fs.Ranks || len(got.Traces) != len(fs.Traces) {
		t.Fatalf("round trip lost shape: %+v", got)
	}
	if got.Traces[1].OffsetNs != 7 || len(got.Traces[0].Sends) != 1 {
		t.Errorf("round trip lost content: %+v", got.Traces)
	}
	if _, err := LoadFleetSnapshot(strings.NewReader("{")); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestStallReportSums(t *testing.T) {
	fs := NewFleetSnapshot(2)
	mk := func(rank int, walls, computes []int64) RankTrace {
		rt := RankTrace{Rank: rank, Ranks: 2}
		for i := range walls {
			w, c := walls[i], computes[i]
			rt.Steps = append(rt.Steps, StepBucket{
				Step: i + 1, StartNs: int64(i) * 100e6, WallNs: w,
				ComputeNs: c, GhostNs: w - c, // buckets sum to wall exactly
			})
		}
		return rt
	}
	fs.AddRank(mk(0, []int64{10e6, 20e6}, []int64{8e6, 5e6}))
	fs.AddRank(mk(1, []int64{12e6, 15e6}, []int64{6e6, 14e6}))

	rep := BuildStallReport(fs)
	if rep.Steps != 2 || rep.Ranks != 2 {
		t.Fatalf("shape: %+v", rep)
	}
	if rep.WallNs != 12e6+20e6 {
		t.Errorf("WallNs = %d, want per-step max summed (32e6)", rep.WallNs)
	}
	if rep.CritNs != 8e6+14e6 {
		t.Errorf("CritNs = %d, want 22e6", rep.CritNs)
	}
	if rep.HeadroomNs != rep.WallNs-rep.CritNs {
		t.Errorf("headroom %d != wall-crit", rep.HeadroomNs)
	}
	if math.Abs(rep.Coverage-1) > 1e-12 {
		t.Errorf("coverage %v, want exactly 1 (buckets constructed to sum)", rep.Coverage)
	}
	if len(rep.Worst) != 2 || rep.Worst[0].Headroom < rep.Worst[1].Headroom {
		t.Errorf("worst list unsorted: %+v", rep.Worst)
	}
	if rep.Worst[0].Step != 2 || rep.Worst[0].SlowRank != 0 {
		t.Errorf("worst step %+v, want step 2 slowest on rank 0", rep.Worst[0])
	}

	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"Stall report: 2 ranks, 2 steps", "overlap headroom", "worst steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}

	// Empty snapshot: total, zeroed, no division by zero.
	empty := BuildStallReport(NewFleetSnapshot(4))
	if empty.Steps != 0 || empty.Coverage != 0 {
		t.Errorf("empty report: %+v", empty)
	}
	buf.Reset()
	empty.WriteText(&buf)
	if !strings.Contains(buf.String(), "no per-step buckets") {
		t.Errorf("empty report text: %s", buf.String())
	}
}

func TestBlobRoundTrip(t *testing.T) {
	for n := 0; n <= 33; n++ {
		in := make([]byte, n)
		for i := range in {
			in[i] = byte(3*i + 1)
		}
		f := EncodeBlob(in)
		out, ok := DecodeBlob(f)
		if !ok || !bytes.Equal(out, in) {
			t.Fatalf("n=%d: round trip failed (ok=%v, %x != %x)", n, ok, out, in)
		}
	}
	if _, ok := DecodeBlob(nil); ok {
		t.Error("empty slab accepted")
	}
	// A length prefix larger than the payload must be rejected.
	bad := EncodeBlob([]byte{1, 2, 3})
	bad[0] = math.Float64frombits(1 << 40)
	if _, ok := DecodeBlob(bad); ok {
		t.Error("oversized length prefix accepted")
	}
}

// The NetTracer cap must count drops instead of growing without bound.
func TestNetTracerCap(t *testing.T) {
	tr := NewNetTracer(2)
	for i := 0; i < 5; i++ {
		tr.RecordSend(1, comm.TagForceX, uint64(i), 0, 8, time.Now())
		tr.RecordRecv(1, comm.TagForceX, uint64(i), 0, 8, time.Now(), 0)
	}
	var rt RankTrace
	tr.Drain(&rt)
	if len(rt.Sends) != 2 || len(rt.Recvs) != 2 {
		t.Errorf("kept %d/%d spans, want 2/2", len(rt.Sends), len(rt.Recvs))
	}
	if rt.SendDrops != 3 || rt.RecvDrops != 3 {
		t.Errorf("drops %d/%d, want 3/3", rt.SendDrops, rt.RecvDrops)
	}
	// Drained clean: a second drain adds nothing.
	var rt2 RankTrace
	tr.Drain(&rt2)
	if len(rt2.Sends) != 0 || rt2.SendDrops != 0 {
		t.Errorf("drain left residue: %+v", rt2)
	}
}

// Merged traces viewers can open need a step row carrying the bucket
// args; spot-check one event end to end.
func TestFleetMergeStepArgs(t *testing.T) {
	evs, _ := renderTrace(t, baseSnapshot(0))
	for _, e := range evs {
		if e["name"] == "step 1" && e["pid"].(float64) == 0 {
			args := e["args"].(map[string]any)
			if args["compute_ms"].(float64) != 8 || args["ghost_wait_ms"].(float64) != 2 {
				t.Errorf("step args %v", args)
			}
			return
		}
	}
	t.Error("rank 0 step slice missing")
}
