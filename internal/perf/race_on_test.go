//go:build race

package perf

// raceEnabled reports whether the race detector is compiled in; the
// overhead gate skips itself under -race, where instrumented atomics cost
// an order of magnitude more than in a normal build.
const raceEnabled = true
