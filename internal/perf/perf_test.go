package perf

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lulesh/internal/trace"
)

func TestRecordTaskAggregation(t *testing.T) {
	p := NewProfiler(2, 0)
	p.SetPhaseName(1, "force")
	base := time.Now()
	// Worker 0: two force tasks; worker 1: one force (stolen, with wait)
	// and one untagged.
	p.RecordTask(0, 1, base, 4*time.Microsecond, 0, false)
	p.RecordTask(0, 1, base, 4*time.Microsecond, 0, false)
	p.RecordTask(1, 1, base, 8*time.Microsecond, 2*time.Microsecond, true)
	p.RecordTask(1, 0, base, time.Microsecond, 0, false)

	snap := p.Snapshot()
	if snap.Tasks != 4 || len(snap.Phases) != 2 {
		t.Fatalf("snapshot totals wrong: %+v", snap)
	}
	var force, other *PhaseStats
	for i := range snap.Phases {
		switch snap.Phases[i].Name {
		case "force":
			force = &snap.Phases[i]
		case "other":
			other = &snap.Phases[i]
		}
	}
	if force == nil || other == nil {
		t.Fatalf("phases missing: %+v", snap.Phases)
	}
	if force.Count != 3 || force.Busy != 16*time.Microsecond {
		t.Fatalf("force stats wrong: %+v", force)
	}
	if force.Steals != 1 || force.QueueWait != 2*time.Microsecond {
		t.Fatalf("force steal/wait wrong: %+v", force)
	}
	if force.PerWorker[0] != 8*time.Microsecond || force.PerWorker[1] != 8*time.Microsecond {
		t.Fatalf("per-worker split wrong: %v", force.PerWorker)
	}
	if force.Hist.N() != 3 || force.P50 <= 0 {
		t.Fatalf("histogram wrong: N=%d p50=%v", force.Hist.N(), force.P50)
	}
	if other.Count != 1 {
		t.Fatalf("other stats wrong: %+v", other)
	}
}

func TestRecordTaskFoldsOutOfRange(t *testing.T) {
	p := NewProfiler(1, 0)
	base := time.Now()
	p.RecordTask(-3, MaxPhases+7, base, time.Microsecond, 0, false) // both clamp
	p.RecordTask(5, 0, base, time.Microsecond, 0, false)            // worker folds mod 1
	snap := p.Snapshot()
	if snap.Tasks != 2 || len(snap.Phases) != 1 || snap.Phases[0].ID != 0 {
		t.Fatalf("clamping failed: %+v", snap)
	}
}

func TestPhaseNames(t *testing.T) {
	p := NewProfiler(1, 0)
	if p.PhaseName(0) != "other" {
		t.Fatalf("phase 0 = %q", p.PhaseName(0))
	}
	if p.PhaseName(7) != "phase7" {
		t.Fatalf("unnamed phase = %q", p.PhaseName(7))
	}
	p.SetPhaseName(7, "eos")
	if p.PhaseName(7) != "eos" {
		t.Fatalf("named phase = %q", p.PhaseName(7))
	}
	p.SetPhaseName(MaxPhases+1, "ignored") // must not panic
	if p.PhaseName(MaxPhases+1) != "other" {
		t.Fatal("out-of-range name lookup must fold to phase 0")
	}
}

func TestSpanRingSPSC(t *testing.T) {
	r := newSpanRing(4)
	for i := 0; i < 4; i++ {
		if !r.push(span{startNs: int64(i)}) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.push(span{}) {
		t.Fatal("push succeeded on full ring")
	}
	out := r.drain(nil)
	if len(out) != 4 || out[0].startNs != 0 || out[3].startNs != 3 {
		t.Fatalf("drain wrong: %+v", out)
	}
	if r.size() != 0 {
		t.Fatalf("ring not empty after drain: %d", r.size())
	}
	// Wrap-around: slots freed by the drain are reusable.
	for i := 0; i < 4; i++ {
		if !r.push(span{startNs: int64(10 + i)}) {
			t.Fatalf("push %d failed after drain", i)
		}
	}
	out = r.drain(out[:0])
	if len(out) != 4 || out[0].startNs != 10 {
		t.Fatalf("wrapped drain wrong: %+v", out)
	}
}

func TestSpanRingConcurrentProducerConsumer(t *testing.T) {
	r := newSpanRing(64)
	const total = 10000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < total; {
			if r.push(span{startNs: int64(i)}) {
				i++
			}
		}
	}()
	var got []span
	for len(got) < total {
		got = r.drain(got)
	}
	wg.Wait()
	for i, s := range got {
		if s.startNs != int64(i) {
			t.Fatalf("span %d out of order: %d", i, s.startNs)
		}
	}
}

func TestDrainSpansAndDrops(t *testing.T) {
	p := NewProfiler(2, 8)
	p.SetPhaseName(2, "eos")
	base := time.Now()
	for i := 0; i < 12; i++ { // overflows worker 0's ring of 8
		p.RecordTask(0, 2, base, time.Microsecond, 0, false)
	}
	p.RecordTask(1, 2, base, time.Microsecond, 0, false)

	rec := trace.NewRecorder(0)
	n := p.DrainSpans(rec)
	if n != 9 { // 8 from worker 0 + 1 from worker 1
		t.Fatalf("drained %d spans, want 9", n)
	}
	if rec.Len() != 9 {
		t.Fatalf("recorder holds %d events", rec.Len())
	}
	evs := rec.Events()
	if evs[0].Name != "eos" {
		t.Fatalf("span name = %q", evs[0].Name)
	}
	snap := p.Snapshot()
	if snap.SpanDrops != 4 {
		t.Fatalf("SpanDrops = %d, want 4", snap.SpanDrops)
	}
	// Draining freed the ring: more records fit now.
	p.RecordTask(0, 2, base, time.Microsecond, 0, false)
	if got := p.DrainSpans(rec); got != 1 {
		t.Fatalf("post-drain record not buffered: %d", got)
	}
}

func TestEnableSpansToggle(t *testing.T) {
	p := NewProfiler(1, 4)
	base := time.Now()
	p.EnableSpans(false)
	p.RecordTask(0, 0, base, time.Microsecond, 0, false)
	rec := trace.NewRecorder(0)
	if n := p.DrainSpans(rec); n != 0 {
		t.Fatalf("spans recorded while disabled: %d", n)
	}
	p.EnableSpans(true)
	p.RecordTask(0, 0, base, time.Microsecond, 0, false)
	if n := p.DrainSpans(rec); n != 1 {
		t.Fatalf("spans not recorded after re-enable: %d", n)
	}
	// Aggregates accumulate regardless of the span toggle.
	if snap := p.Snapshot(); snap.Tasks != 2 {
		t.Fatalf("aggregate lost: %d tasks", snap.Tasks)
	}
	// A ring-less profiler cannot enable spans.
	q := NewProfiler(1, 0)
	q.EnableSpans(true)
	q.RecordTask(0, 0, base, time.Microsecond, 0, false) // must not panic
}

func TestMarkStepSeries(t *testing.T) {
	p := NewProfiler(2, 0)
	p.SetPhaseName(1, "force")
	base := time.Now()
	p.RecordTask(0, 1, base, 10*time.Millisecond, 0, false)
	p.MarkStep(1)
	p.RecordTask(1, 1, base, 20*time.Millisecond, 0, false)
	p.RecordTask(1, 0, base, 5*time.Millisecond, 0, false)
	p.MarkStep(2)

	series := p.Series()
	if len(series) != 2 {
		t.Fatalf("%d samples", len(series))
	}
	if series[0].Step != 1 || series[0].Busy != 10*time.Millisecond {
		t.Fatalf("sample 1 wrong: %+v", series[0])
	}
	s2 := series[1]
	if s2.Busy != 25*time.Millisecond {
		t.Fatalf("sample 2 busy = %v", s2.Busy)
	}
	if len(s2.PhaseBusy) < 2 || s2.PhaseBusy[1] != 20*time.Millisecond ||
		s2.PhaseBusy[0] != 5*time.Millisecond {
		t.Fatalf("sample 2 phase deltas wrong: %+v", s2)
	}
	if s2.PhaseN[1] != 1 || s2.PhaseN[0] != 1 {
		t.Fatalf("sample 2 phase counts wrong: %+v", s2)
	}
	if s2.Wall <= 0 || s2.Util < 0 || s2.Util > 1 {
		t.Fatalf("sample 2 wall/util out of range: %+v", s2)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	p := NewProfiler(4, 32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := time.Now()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					p.RecordTask(w, uint32(i%3), base, time.Microsecond,
						time.Nanosecond, i%7 == 0)
				}
			}
		}()
	}
	rec := trace.NewRecorder(0)
	for i := 0; i < 30; i++ {
		p.Snapshot()
		p.MarkStep(i)
		p.DrainSpans(rec)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	snap := p.Snapshot()
	if snap.Tasks == 0 {
		t.Fatal("no tasks recorded")
	}
}

func TestSnapshotTable(t *testing.T) {
	p := NewProfiler(1, 0)
	p.SetPhaseName(1, "force")
	p.RecordTask(0, 1, time.Now(), 5*time.Microsecond, time.Microsecond, true)
	var sb strings.Builder
	if err := p.Snapshot().Table().Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"phase", "force", "qwait", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output %q missing %q", out, want)
		}
	}
}

func TestSnapshotUtilization(t *testing.T) {
	if u := (Snapshot{}).Utilization(); u != 0 {
		t.Fatalf("empty snapshot util = %v", u)
	}
	s := Snapshot{Wall: time.Second, Workers: 2, Busy: time.Second}
	if u := s.Utilization(); u != 0.5 {
		t.Fatalf("util = %v, want 0.5", u)
	}
	s.Busy = 5 * time.Second
	if u := s.Utilization(); u != 1 {
		t.Fatalf("util not clamped: %v", u)
	}
}
