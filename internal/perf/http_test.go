package perf

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServerEndpoints(t *testing.T) {
	p := NewProfiler(2, 0)
	p.SetPhaseName(1, "force")
	p.RecordTask(0, 1, time.Now(), 5*time.Microsecond, time.Microsecond, true)
	p.RecordTask(1, 1, time.Now(), 3*time.Microsecond, 0, false)

	srv, err := StartServer("127.0.0.1:0", p, func() map[string]float64 {
		return map[string]float64{"amt utilization": 0.75}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	prom := fetch(t, base+"/metrics")
	for _, want := range []string{
		`lulesh_phase_tasks_total{phase="force"} 2`,
		`lulesh_phase_steals_total{phase="force"} 1`,
		"lulesh_phase_duration_seconds_bucket",
		`le="+Inf"`,
		"lulesh_utilization",
		"lulesh_amt_utilization 0.75",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}

	js := fetch(t, base+"/metrics.json")
	var decoded struct {
		Tasks  int64 `json:"tasks"`
		Phases []struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
		} `json:"phases"`
		Extra map[string]float64 `json:"extra"`
	}
	if err := json.Unmarshal([]byte(js), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, js)
	}
	if decoded.Tasks != 2 || len(decoded.Phases) != 1 || decoded.Phases[0].Name != "force" {
		t.Fatalf("JSON snapshot wrong: %s", js)
	}
	if decoded.Extra["amt utilization"] != 0.75 {
		t.Fatalf("extra gauges missing: %s", js)
	}

	pprofIdx := fetch(t, base+"/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Fatalf("pprof index wrong:\n%s", pprofIdx)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"amt utilization": "amt_utilization",
		"steals/total":    "steals_total",
		"9lives":          "_lives",
		"ok_name":         "ok_name",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteBenchJSONNumbering(t *testing.T) {
	dir := t.TempDir()
	rec := BenchRecord{Name: "figure9", Backend: "task", Workers: 2,
		Iterations: 100, ElapsedSec: 1.5, FOM: 12345}
	p0, err := WriteBenchJSON(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p0) != "BENCH_0.json" {
		t.Fatalf("first record at %s", p0)
	}
	p1, err := WriteBenchJSON(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_1.json" {
		t.Fatalf("second record at %s", p1)
	}
	data, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("record not valid JSON: %v", err)
	}
	if back.FOM != 12345 || back.Name != "figure9" {
		t.Fatalf("round-trip wrong: %+v", back)
	}
	if back.Build.GoVersion == "" || back.Timestamp == "" {
		t.Fatalf("build/timestamp not auto-filled: %+v", back)
	}
}
