// Package perf is the performance-counter subsystem: per-worker sharded,
// lock-free recording of task execution records (phase, span, queue wait,
// steal flag) fed by the runtimes' task sinks, aggregated on demand into
// per-phase busy/steal/queue-wait breakdowns with log-bucketed duration
// histograms — the reproduction of HPX's idle-rate performance counters
// and APEX task profiles that the paper's Figure 11 analysis rests on.
//
// The write path touches only the recording worker's own shard: a handful
// of uncontended atomic adds per task plus an optional push into the
// worker's single-producer/single-consumer span ring. No mutex is taken
// until a snapshot, drain or step mark reads the shards. The same
// Profiler value satisfies both amt.TaskSink and omp.TaskSink, so the AMT
// and fork-join backends feed identical per-phase tables.
package perf

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lulesh/internal/stats"
	"lulesh/internal/trace"
)

// MaxPhases bounds the phase registry. Phase 0 is the untagged default
// ("other"); out-of-range tags are folded into it rather than growing the
// fixed-size shards (growth would race with the lock-free writers).
const MaxPhases = 32

// cell accumulates one (worker, phase) combination. A cell has exactly one
// writer — the worker owning the shard — so the atomics are uncontended;
// they exist to give concurrent snapshot readers a torn-free view.
type cell struct {
	count   atomic.Int64
	busyNs  atomic.Int64
	qwaitNs atomic.Int64
	steals  atomic.Int64
	hist    [stats.HistBuckets]atomic.Int64
}

// shard is one worker's private recording area.
type shard struct {
	cells [MaxPhases]cell
	ring  *spanRing // nil when span recording is disabled
	drops atomic.Int64
}

// Profiler implements the runtimes' TaskSink interfaces and aggregates the
// records into phase-level statistics.
type Profiler struct {
	shards  []*shard
	epoch   time.Time
	spansOn atomic.Bool

	mu     sync.Mutex
	names  [MaxPhases]string
	series []StepSample
	// last per-phase busy/count totals at the previous MarkStep, for
	// per-step deltas.
	lastBusy  [MaxPhases]int64
	lastCount [MaxPhases]int64
	lastMark  time.Time
}

// NewProfiler creates a profiler with one shard per worker. ringCap, when
// positive, allocates a span ring of that capacity per worker and enables
// raw span recording (for trace export); zero keeps the profiler
// aggregate-only. Worker ids outside [0, workers) fold onto shard
// id % workers, so a mis-sized profiler degrades to shared shards instead
// of a panic.
func NewProfiler(workers, ringCap int) *Profiler {
	if workers < 1 {
		workers = 1
	}
	p := &Profiler{shards: make([]*shard, workers), epoch: time.Now()}
	p.names[0] = "other"
	for i := range p.shards {
		sh := &shard{}
		if ringCap > 0 {
			sh.ring = newSpanRing(ringCap)
		}
		p.shards[i] = sh
	}
	if ringCap > 0 {
		p.spansOn.Store(true)
	}
	return p
}

// Workers reports the shard count.
func (p *Profiler) Workers() int { return len(p.shards) }

// SetPhaseName labels a phase id for snapshots and exports. Ids at or
// past MaxPhases are ignored. Safe to call while recording is live.
func (p *Profiler) SetPhaseName(id uint32, name string) {
	if id >= MaxPhases {
		return
	}
	p.mu.Lock()
	p.names[id] = name
	p.mu.Unlock()
}

// PhaseName returns the label of a phase id ("phase<N>" when unnamed).
func (p *Profiler) PhaseName(id uint32) string {
	if id >= MaxPhases {
		id = 0
	}
	p.mu.Lock()
	n := p.names[id]
	p.mu.Unlock()
	if n == "" {
		return fmt.Sprintf("phase%d", id)
	}
	return n
}

// EnableSpans toggles raw span recording into the per-worker rings
// (no-op when the profiler was built without rings).
func (p *Profiler) EnableSpans(on bool) {
	if on && p.shards[0].ring == nil {
		return
	}
	p.spansOn.Store(on)
}

// RecordTask consumes one task execution record. It is the TaskSink
// implementation shared by the AMT scheduler and the fork-join pool: the
// write path is a handful of uncontended atomic adds on the recording
// worker's own shard, plus an optional SPSC ring push.
func (p *Profiler) RecordTask(worker int, phase uint32, start time.Time,
	dur, queueWait time.Duration, stolen bool) {

	if worker < 0 {
		worker = 0
	}
	sh := p.shards[worker%len(p.shards)]
	if phase >= MaxPhases {
		phase = 0
	}
	c := &sh.cells[phase]
	c.count.Add(1)
	c.busyNs.Add(int64(dur))
	if queueWait > 0 {
		c.qwaitNs.Add(int64(queueWait))
	}
	if stolen {
		c.steals.Add(1)
	}
	c.hist[stats.HistBucket(int64(dur))].Add(1)
	if p.spansOn.Load() && sh.ring != nil {
		if !sh.ring.push(span{
			startNs: start.Sub(p.epoch).Nanoseconds(),
			durNs:   int64(dur),
			phase:   phase,
			worker:  int32(worker),
		}) {
			sh.drops.Add(1)
		}
	}
}

// PhaseStats is the aggregate view of one phase across all workers.
type PhaseStats struct {
	ID        uint32          `json:"id"`
	Name      string          `json:"name"`
	Count     int64           `json:"count"`
	Steals    int64           `json:"steals"`
	Busy      time.Duration   `json:"busy_ns"`
	QueueWait time.Duration   `json:"queue_wait_ns"`
	P50       time.Duration   `json:"p50_ns"`
	P95       time.Duration   `json:"p95_ns"`
	P99       time.Duration   `json:"p99_ns"`
	PerWorker []time.Duration `json:"per_worker_busy_ns,omitempty"`
	Hist      stats.Histogram `json:"-"`
}

// Snapshot is a consistent-enough aggregate of everything recorded since
// the profiler's creation. Individual counters are read atomically; the
// set is not a single atomic cut, which is fine for monitoring output.
type Snapshot struct {
	Epoch     time.Time     `json:"epoch"`
	Wall      time.Duration `json:"wall_ns"`
	Workers   int           `json:"workers"`
	Tasks     int64         `json:"tasks"`
	Busy      time.Duration `json:"busy_ns"`
	SpanDrops int64         `json:"span_drops"`
	Phases    []PhaseStats  `json:"phases"`
}

// Utilization is recorded busy time over wall time x workers — the
// Figure 11 quantity, measured from the profiler's own records.
func (s Snapshot) Utilization() float64 {
	den := float64(s.Wall) * float64(s.Workers)
	if den <= 0 {
		return 0
	}
	u := float64(s.Busy) / den
	if u > 1 {
		u = 1
	}
	return u
}

// Snapshot aggregates the shards into per-phase statistics. Phases with no
// recorded task are omitted.
func (p *Profiler) Snapshot() Snapshot {
	snap := Snapshot{Epoch: p.epoch, Wall: time.Since(p.epoch), Workers: len(p.shards)}
	for ph := uint32(0); ph < MaxPhases; ph++ {
		ps := PhaseStats{ID: ph, PerWorker: make([]time.Duration, len(p.shards))}
		for wi, sh := range p.shards {
			c := &sh.cells[ph]
			n := c.count.Load()
			if n == 0 {
				continue
			}
			b := time.Duration(c.busyNs.Load())
			ps.Count += n
			ps.Busy += b
			ps.PerWorker[wi] = b
			ps.QueueWait += time.Duration(c.qwaitNs.Load())
			ps.Steals += c.steals.Load()
			for i := range c.hist {
				ps.Hist.AddBucket(i, c.hist[i].Load())
			}
		}
		if ps.Count == 0 {
			continue
		}
		ps.Name = p.PhaseName(ph)
		ps.P50, ps.P95, ps.P99 = ps.Hist.P50(), ps.Hist.P95(), ps.Hist.P99()
		snap.Tasks += ps.Count
		snap.Busy += ps.Busy
		snap.Phases = append(snap.Phases, ps)
	}
	for _, sh := range p.shards {
		snap.SpanDrops += sh.drops.Load()
	}
	return snap
}

// StepSample is one timestep's slice of the per-phase utilization series —
// the data behind a Figure 11-style timeline.
type StepSample struct {
	Step      int             `json:"step"`
	Wall      time.Duration   `json:"wall_ns"` // wall time since the previous mark
	Busy      time.Duration   `json:"busy_ns"` // summed busy delta, all phases
	Util      float64         `json:"util"`    // Busy / (Wall x workers)
	PhaseBusy []time.Duration `json:"phase_busy_ns"`
	PhaseN    []int64         `json:"phase_tasks"`
}

// MarkStep closes the current step window: it computes the per-phase busy
// and task-count deltas since the previous mark and appends one StepSample
// to the series. Call once per timestep from the driver loop (not from
// workers); the cost is one pass over the shards.
func (p *Profiler) MarkStep(step int) {
	var busy, count [MaxPhases]int64
	for _, sh := range p.shards {
		for ph := 0; ph < MaxPhases; ph++ {
			busy[ph] += sh.cells[ph].busyNs.Load()
			count[ph] += sh.cells[ph].count.Load()
		}
	}
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	last := p.lastMark
	if last.IsZero() {
		last = p.epoch
	}
	s := StepSample{Step: step, Wall: now.Sub(last)}
	for ph := 0; ph < MaxPhases; ph++ {
		db := busy[ph] - p.lastBusy[ph]
		dn := count[ph] - p.lastCount[ph]
		if db != 0 || dn != 0 {
			for len(s.PhaseBusy) <= ph {
				s.PhaseBusy = append(s.PhaseBusy, 0)
				s.PhaseN = append(s.PhaseN, 0)
			}
			s.PhaseBusy[ph] = time.Duration(db)
			s.PhaseN[ph] = dn
		}
		s.Busy += time.Duration(db)
	}
	if den := float64(s.Wall) * float64(len(p.shards)); den > 0 {
		s.Util = float64(s.Busy) / den
		if s.Util > 1 {
			s.Util = 1
		}
	}
	p.lastBusy, p.lastCount, p.lastMark = busy, count, now
	p.series = append(p.series, s)
}

// Series returns a copy of the accumulated per-step samples.
func (p *Profiler) Series() []StepSample {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]StepSample, len(p.series))
	copy(out, p.series)
	return out
}

// DrainSpans moves every span currently buffered in the per-worker rings
// into the trace recorder (one batched append per ring), labeled with the
// phase name and the worker id as the timeline row. Returns the number of
// spans moved. Call from a single drainer goroutine — the rings are
// single-consumer.
func (p *Profiler) DrainSpans(rec *trace.Recorder) int {
	var buf []span
	var events []trace.Event
	total := 0
	for _, sh := range p.shards {
		if sh.ring == nil {
			continue
		}
		buf = sh.ring.drain(buf[:0])
		if len(buf) == 0 {
			continue
		}
		events = events[:0]
		for _, s := range buf {
			events = append(events, trace.Event{
				Name:  p.PhaseName(s.phase),
				TID:   int(s.worker),
				Start: p.epoch.Add(time.Duration(s.startNs)),
				Dur:   time.Duration(s.durNs),
			})
		}
		rec.RecordBatch(events)
		total += len(events)
	}
	return total
}

// Table renders the per-phase breakdown as a stats.Table — the
// utilization table the binaries print at exit.
func (s Snapshot) Table() *stats.Table {
	t := stats.NewTable("phase", "tasks", "busy", "busy%", "qwait", "steals",
		"p50", "p95", "p99")
	for _, ps := range s.Phases {
		share := 0.0
		if s.Busy > 0 {
			share = 100 * float64(ps.Busy) / float64(s.Busy)
		}
		t.AddRow(ps.Name, ps.Count, ps.Busy.Round(time.Microsecond),
			fmt.Sprintf("%.1f%%", share),
			ps.QueueWait.Round(time.Microsecond), ps.Steals,
			ps.P50, ps.P95, ps.P99)
	}
	return t
}
