package perf

import (
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"lulesh/internal/amt"
)

// The CI observability gate: instrumented-vs-disabled ForEachBlock
// overhead must stay within a small budget, or the sharded recording path
// has regressed into exactly the perturbation it was built to avoid.
//
// Methodology: trials interleave the two arms and flip their order every
// trial, so slow drift in the container hits both equally, and the
// comparison uses each arm's minimum — the standard robust estimator for
// "what does this code cost", immune to the scheduler-noise outliers a
// median still samples. Task bodies run ~4 µs of arithmetic — the paper's
// fine-grain regime, where per-task overhead is most visible.

// spinWork burns roughly 4 µs of CPU per call on this container and
// returns a value the compiler cannot elide.
func spinWork(lo, hi int) float64 {
	acc := 1.0
	for i := lo; i < hi; i++ {
		for k := 0; k < 220; k++ {
			acc = acc*1.0000001 + float64(k&7)
		}
	}
	return acc
}

var spinSink float64

func runRegions(s *amt.Scheduler, regions, n, grain int) time.Duration {
	start := time.Now()
	for r := 0; r < regions; r++ {
		amt.ForEachBlock(s, 0, n, grain, func(lo, hi int) {
			spinSink += spinWork(lo, hi)
		}).Get()
	}
	return time.Since(start)
}

func minimum(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[0]
}

func TestForEachBlockOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("overhead gate skipped under -race: instrumented atomics dominate")
	}
	budget := 3.0 // percent
	if env := os.Getenv("PERF_OVERHEAD_BUDGET"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("bad PERF_OVERHEAD_BUDGET %q: %v", env, err)
		}
		budget = v
	}

	s := amt.NewScheduler(amt.WithWorkers(runtime.GOMAXPROCS(0)))
	defer s.Close()
	p := NewProfiler(s.Workers(), 0) // aggregate-only: the steady-state CI mode

	const (
		trials  = 11
		regions = 12
		n       = 2048
		grain   = 16 // 128 tasks x ~4 µs per region
	)
	runRegions(s, regions, n, grain) // warm the pool and the frame cache

	var off, on []time.Duration
	measureOff := func() { s.SetSink(nil); off = append(off, runRegions(s, regions, n, grain)) }
	measureOn := func() { s.SetSink(p); on = append(on, runRegions(s, regions, n, grain)) }
	for i := 0; i < trials; i++ {
		if i%2 == 0 {
			measureOff()
			measureOn()
		} else {
			measureOn()
			measureOff()
		}
	}
	s.SetSink(nil)

	mOff, mOn := minimum(off), minimum(on)
	overhead := 100 * (float64(mOn) - float64(mOff)) / float64(mOff)
	t.Logf("disabled min %v, instrumented min %v, overhead %.2f%% (budget %.1f%%)",
		mOff, mOn, overhead, budget)
	if snap := p.Snapshot(); snap.Tasks == 0 {
		t.Fatal("instrumented arm recorded no tasks — gate measured nothing")
	}
	if overhead > budget {
		t.Errorf("instrumented ForEachBlock overhead %.2f%% exceeds %.1f%% budget "+
			"(disabled %v, instrumented %v)", overhead, budget, mOff, mOn)
	}
}

// Benchmarks for the EXPERIMENTS.md overhead table.

func BenchmarkRecordTask(b *testing.B) {
	p := NewProfiler(1, 0)
	base := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.RecordTask(0, 1, base, 5*time.Microsecond, time.Microsecond, i&7 == 0)
	}
}

func BenchmarkRecordTaskWithSpans(b *testing.B) {
	p := NewProfiler(1, 1<<16)
	base := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.RecordTask(0, 1, base, 5*time.Microsecond, time.Microsecond, false)
		if i&(1<<14-1) == 0 {
			for _, sh := range p.shards { // keep the ring from saturating
				sh.ring.drain(nil)
			}
		}
	}
}

func benchmarkForEachBlock(b *testing.B, sinkOn bool) {
	s := amt.NewScheduler(amt.WithWorkers(runtime.GOMAXPROCS(0)))
	defer s.Close()
	if sinkOn {
		s.SetSink(NewProfiler(s.Workers(), 0))
	}
	runRegions(s, 2, 2048, 16) // warmup
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runRegions(s, 1, 2048, 16)
	}
}

func BenchmarkForEachBlockDisabled(b *testing.B) { benchmarkForEachBlock(b, false) }
func BenchmarkForEachBlockProfiled(b *testing.B) { benchmarkForEachBlock(b, true) }
