package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lulesh/internal/perf"
)

// Store persists completed job results as perf.BenchRecord JSON, one
// JOB_<id>.json per job — the served counterpart of luleshbench's
// committed BENCH_<n>.json trajectory, sharing the schema so the same
// tooling (benchgate readers, Validate) consumes both. Writes are
// write-through and atomic (tmp + rename); Flush additionally commits an
// INDEX.json manifest, which the drain path calls before exit.
type Store struct {
	dir string

	mu    sync.Mutex
	index map[string]string // job id -> file path
}

// OpenStore creates dir if needed and indexes any results a previous
// server life left there.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, index: make(map[string]string)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "JOB_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(strings.TrimPrefix(name, "JOB_"), ".json")
		s.index[id] = filepath.Join(dir, name)
	}
	return s, nil
}

// Put validates and persists a job's result record, stamping the
// timestamp and toolchain build info the same way the bench writer does.
func (s *Store) Put(rec perf.BenchRecord) error {
	if rec.JobID == "" {
		return fmt.Errorf("serve: result record has no job id")
	}
	if rec.Timestamp == "" {
		rec.Timestamp = time.Now().UTC().Format(time.RFC3339)
	}
	if rec.Build == (perf.BuildInfo{}) {
		rec.Build = perf.CurrentBuildInfo()
	}
	if err := rec.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(s.dir, "JOB_"+rec.JobID+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	s.mu.Lock()
	s.index[rec.JobID] = path
	s.mu.Unlock()
	return nil
}

// Get loads one job's record; the bool reports whether it exists.
func (s *Store) Get(jobID string) (perf.BenchRecord, bool, error) {
	s.mu.Lock()
	path, ok := s.index[jobID]
	s.mu.Unlock()
	if !ok {
		return perf.BenchRecord{}, false, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return perf.BenchRecord{}, false, err
	}
	var rec perf.BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return perf.BenchRecord{}, false, err
	}
	return rec, true, nil
}

// Len reports how many results are stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Flush commits INDEX.json: the sorted job-id → file manifest. Individual
// results are already durable (Put is write-through); the manifest gives
// scrapers and the next server life a one-read view of what completed.
func (s *Store) Flush() error {
	s.mu.Lock()
	ids := make([]string, 0, len(s.index))
	for id := range s.index {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	manifest := struct {
		Results []string `json:"results"`
	}{Results: ids}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := filepath.Join(s.dir, "INDEX.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, "INDEX.json"))
}
