package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lulesh/internal/core"
	"lulesh/internal/domain"
)

// waitState polls until the job reaches a terminal state or the deadline.
func waitState(t *testing.T, m *Manager, id string, timeout time.Duration) JobStatus {
	t.Helper()
	j, ok := m.Get(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	deadline := time.Now().Add(timeout)
	for {
		st := m.Status(j)
		switch st.State {
		case StateDone, StateFailed, StateCancelled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// serialEnergy runs spec's problem on the serial backend and returns the
// final origin energy — the bitwise ground truth for a served job.
func serialEnergy(t *testing.T, sp JobSpec) float64 {
	t.Helper()
	spec, err := domain.ParseScenarioSpec(sp.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	cfg := domain.DefaultConfig(sp.Size)
	if sp.Regions > 0 {
		cfg.NumReg = sp.Regions
	}
	d, err := domain.BuildScenarioCube(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBackendSerial(d)
	defer b.Close()
	if _, err := core.Run(d, b, core.RunConfig{MaxIterations: sp.Iterations}); err != nil {
		t.Fatal(err)
	}
	return d.E[0]
}

// TestConcurrentJobsBitwiseVsSerial is the acceptance-criteria test: >=8
// overlapping jobs submitted to one manager — all multiplexed as isolated
// job contexts on ONE shared amt pool — must each produce a final origin
// energy bitwise identical to the same problem run serially. Run under
// -race this also proves the whole control plane is race-clean.
func TestConcurrentJobsBitwiseVsSerial(t *testing.T) {
	m, err := NewManager(Config{
		Workers:    4,
		MaxRunning: 10, // all jobs genuinely overlap
		ResultsDir: t.TempDir(),
		EventEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	specs := make([]JobSpec, 10)
	for i := range specs {
		specs[i] = JobSpec{
			Scenario:   []string{"sedov", "piston", "multimat:regions=16"}[i%3],
			Size:       4 + i%3,
			Iterations: 8,
			Backend:    "task",
			Tenant:     fmt.Sprintf("tenant-%d", i%4),
		}
	}

	ids := make([]string, len(specs))
	for i, sp := range specs {
		j, err := m.Submit(sp)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = j.ID
	}
	for i, id := range ids {
		st := waitState(t, m, id, 30*time.Second)
		if st.State != StateDone {
			t.Fatalf("job %s: state %s (%s)", id, st.State, st.Error)
		}
		rec, ok, err := m.Store().Get(id)
		if err != nil || !ok {
			t.Fatalf("job %s: result missing (%v)", id, err)
		}
		if rec.JobID != id {
			t.Errorf("record job id %q, want %q", rec.JobID, id)
		}
		if rec.QueueWaitUs < 0 {
			t.Errorf("job %s: negative queue wait", id)
		}
		if err := rec.Validate(); err != nil {
			t.Errorf("job %s: record invalid: %v", id, err)
		}
		got := rec.Counters["origin_energy"]
		want := serialEnergy(t, specs[i])
		if got != want {
			t.Errorf("job %s (%s s=%d): origin energy %x, serial %x — NOT bitwise identical",
				id, specs[i].Scenario, specs[i].Size, got, want)
		}
	}
	if inf := m.Pool().PoolInflight(); inf != 0 {
		t.Errorf("pool inflight after all jobs done: %d", inf)
	}
}

// TestAdmissionControl: a manager with a tiny zone budget must serve the
// first job and reject the overflow with a 429-coded AdmissionError
// carrying Retry-After; an unsatisfiably large job gets 400, not 429.
func TestAdmissionControl(t *testing.T) {
	m, err := NewManager(Config{
		Workers:          1,
		MaxRunning:       1,
		MaxQueued:        4,
		MaxInflightZones: 400, // one 6^3=216 job fits; two do not
		ResultsDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Saturate the budget with a job whose iteration cap is effectively
	// unbounded, so it is still in flight whenever the second submission
	// arrives; it is cancelled below once the rejections are asserted.
	j1, err := m.Submit(JobSpec{Size: 6, Iterations: 100000})
	if err != nil {
		t.Fatalf("first job rejected: %v", err)
	}
	_, err = m.Submit(JobSpec{Size: 6, Iterations: 1})
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("overflow submit: err %v, want *AdmissionError", err)
	}
	if adm.Code != 429 {
		t.Fatalf("overflow code = %d, want 429", adm.Code)
	}
	if adm.RetryAfter <= 0 {
		t.Error("429 rejection carries no Retry-After")
	}

	// A small job still fits alongside: 216+27 < 400.
	if _, err := m.Submit(JobSpec{Size: 3, Iterations: 1}); err != nil {
		t.Fatalf("small job should fit in the remaining budget: %v", err)
	}

	// Unsatisfiable: bigger than the whole budget, even on an idle server.
	_, err = m.Submit(JobSpec{Size: 10, Iterations: 1})
	if !errors.As(err, &adm) || adm.Code != 400 {
		t.Fatalf("unsatisfiable job: err %v, want 400 AdmissionError", err)
	}

	m.Cancel(j1.ID)
	waitState(t, m, j1.ID, 30*time.Second)

	// Budget released after completion: the previously rejected shape fits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err = m.Submit(JobSpec{Size: 6, Iterations: 1}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("budget never released: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueueRejection: the queue-length bound rejects with 429
// independently of the zone budget.
func TestQueueRejection(t *testing.T) {
	m, err := NewManager(Config{
		Workers:    1,
		MaxRunning: 1,
		MaxQueued:  2,
		ResultsDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer func() { // cancel the blockers so Close returns promptly
		for _, st := range m.List() {
			m.Cancel(st.ID)
		}
	}()

	// One effectively-unbounded job occupies the single executor; further
	// ones pile up in the queue until the cap rejects one. With one
	// executor at most one job can leave the queue concurrently, so at
	// worst MaxQueued+2 submissions force a rejection.
	var adm *AdmissionError
	for i := 0; i < 4; i++ {
		if _, err := m.Submit(JobSpec{Size: 6, Iterations: 100000}); err != nil {
			if !errors.As(err, &adm) || adm.Code != 429 {
				t.Fatalf("full-queue submit: err %v, want 429 AdmissionError", err)
			}
			return
		}
	}
	t.Fatal("queue bound of 2 never rejected a submission")
}

// TestCancelQueuedAndRunning: cancelling a queued job finalizes it
// without running; cancelling a running job stops it at a cycle boundary.
func TestCancelQueuedAndRunning(t *testing.T) {
	m, err := NewManager(Config{
		Workers:    2,
		MaxRunning: 1, // force queueing
		ResultsDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	running, err := m.Submit(JobSpec{Size: 8, Iterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(JobSpec{Size: 4, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}

	if !m.Cancel(queued.ID) {
		t.Fatal("cancel of queued job reported missing")
	}
	if !m.Cancel(running.ID) {
		t.Fatal("cancel of running job reported missing")
	}
	st := waitState(t, m, running.ID, 30*time.Second)
	if st.State != StateCancelled {
		t.Errorf("running job state = %s, want cancelled", st.State)
	}
	st = waitState(t, m, queued.ID, 30*time.Second)
	if st.State != StateCancelled {
		t.Errorf("queued job state = %s, want cancelled", st.State)
	}
	if m.Cancel("job-999999") {
		t.Error("cancel of unknown job reported found")
	}
}

// TestFairQueueOrdering: with one tenant holding a deep backlog, a
// second tenant's job must dispatch before the backlog drains — the
// no-starvation property of start-time fair queueing.
func TestFairQueueOrdering(t *testing.T) {
	q := newFairQueue()
	mk := func(seq int64, tenant string, cost, weight float64) *Job {
		return &Job{ID: fmt.Sprintf("j%d", seq), seq: seq,
			tenant: tenant, cost: cost, weight: weight}
	}
	// Tenant A floods 10 equal jobs, then tenant B submits one.
	for i := int64(0); i < 10; i++ {
		q.push(mk(i, "A", 100, 1))
	}
	q.push(mk(10, "B", 100, 1))

	first := q.pop()
	if first.tenant != "A" || first.seq != 0 {
		t.Fatalf("first pop = %s/%s, want A's first job", first.tenant, first.ID)
	}
	second := q.pop()
	if second.tenant != "B" {
		t.Fatalf("second pop = %s (%s), want tenant B jumping the backlog", second.tenant, second.ID)
	}

	// Weights: tenant C at weight 2 fits two jobs in the virtual span
	// tenant A uses for one.
	q2 := newFairQueue()
	q2.push(mk(1, "A", 100, 1))
	q2.push(mk(2, "A", 100, 1))
	q2.push(mk(3, "C", 100, 2))
	q2.push(mk(4, "C", 100, 2))
	order := []string{}
	for q2.len() > 0 {
		order = append(order, q2.pop().tenant)
	}
	want := []string{"C", "A", "C", "A"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("weighted order = %v, want %v", order, want)
		}
	}
}

// TestDrainLifecycle: Drain stops admissions with a 503-coded error,
// waits for in-flight jobs, and flushes the store (INDEX.json present).
func TestDrainLifecycle(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(Config{Workers: 2, MaxRunning: 2, ResultsDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	j, err := m.Submit(JobSpec{Size: 4, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Drain(20 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := waitState(t, m, j.ID, time.Second)
	if st.State != StateDone {
		t.Errorf("in-flight job after drain: %s, want done", st.State)
	}
	_, err = m.Submit(JobSpec{Size: 4, Iterations: 1})
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Code != 503 {
		t.Fatalf("submit while draining: err %v, want 503 AdmissionError", err)
	}
	if _, ok, _ := m.Store().Get(j.ID); !ok {
		t.Error("drained job's result not in store")
	}
}

// TestValidateSpecErrors: table-driven admission validation.
func TestValidateSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		sp   JobSpec
		frag string // substring the error must contain
	}{
		{"size too small", JobSpec{Size: 1}, "size"},
		{"size too big", JobSpec{Size: 65}, "size"},
		{"bad iterations", JobSpec{Iterations: -1}, "iterations"},
		{"bad weight", JobSpec{Weight: 1000}, "weight"},
		{"bad backend", JobSpec{Backend: "gpu"}, "backend"},
		{"bad scenario", JobSpec{Scenario: "blast"}, "unknown scenario"},
		{"bad option", JobSpec{Scenario: "piston:sped=3"}, "no option"},
		{"bad spec syntax", JobSpec{Scenario: "piston:=="}, "key=value"},
		{"faults without dist", JobSpec{Faults: "drop=0.1"}, "dist"},
		{"ranks without dist", JobSpec{Ranks: 4}, "dist"},
		{"bad fault profile", JobSpec{Backend: "dist", Faults: "nope"}, "fault"},
		{"bad ranks", JobSpec{Backend: "dist", Ranks: 99}, "ranks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := tc.sp
			_, err := validateSpec(&sp)
			if err == nil {
				t.Fatalf("spec %+v accepted", tc.sp)
			}
			if !containsFold(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func containsFold(s, frag string) bool {
	return len(frag) == 0 || stringsContainsFold(s, frag)
}

func stringsContainsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for k := 0; k < len(sub); k++ {
			a, b := s[i+k], sub[k]
			if 'A' <= a && a <= 'Z' {
				a += 'a' - 'A'
			}
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			if a != b {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
