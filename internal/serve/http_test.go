package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	if cfg.ResultsDir == "" {
		cfg.ResultsDir = t.TempDir()
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		// Cancel stragglers so Close never waits out a long blocker job.
		for _, st := range m.List() {
			m.Cancel(st.ID)
		}
		m.Close()
	})
	return m, srv
}

func postJob(t *testing.T, srv *httptest.Server, body string) (*http.Response, JobStatus) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, st
}

// TestHTTPSubmitStatusResult drives the full REST lifecycle of one job:
// 202 + Location on submit, status polling, 409 + Retry-After while
// unfinished is tolerated, then a validated BenchRecord from /result.
func TestHTTPSubmitStatusResult(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, EventEvery: 1})

	resp, st := postJob(t, srv, `{"scenario":"sedov","size":4,"iterations":6,"tenant":"acme"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+st.ID {
		t.Errorf("Location = %q, want /jobs/%s", loc, st.ID)
	}
	if st.Tenant != "acme" || st.Size != 4 {
		t.Errorf("submit echo: %+v", st)
	}

	// Poll /result until 200; unfinished polls must answer 409 with
	// Retry-After, never 404/500.
	deadline := time.Now().Add(30 * time.Second)
	var rec struct {
		JobID    string             `json:"job_id"`
		Counters map[string]float64 `json:"counters"`
		FOM      float64            `json:"fom_zps"`
	}
	for {
		r, err := http.Get(srv.URL + "/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusOK {
			if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
				t.Fatalf("decode result: %v", err)
			}
			r.Body.Close()
			break
		}
		if r.StatusCode != http.StatusConflict {
			t.Fatalf("result poll status = %d, want 200 or 409", r.StatusCode)
		}
		if r.Header.Get("Retry-After") == "" {
			t.Error("409 without Retry-After header")
		}
		r.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec.JobID != st.ID {
		t.Errorf("result job_id = %q, want %q", rec.JobID, st.ID)
	}
	if rec.Counters["origin_energy"] == 0 {
		t.Error("result carries no origin_energy counter")
	}

	// Status endpoint agrees.
	r, err := http.Get(srv.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	json.NewDecoder(r.Body).Decode(&got)
	r.Body.Close()
	if got.State != StateDone || got.Cycle != 6 {
		t.Errorf("final status = %+v, want done at cycle 6", got)
	}

	// Unknown job: 404.
	r, _ = http.Get(srv.URL + "/jobs/job-999999")
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", r.StatusCode)
	}
}

// TestHTTPStructuredScenarioError: a bad scenario option must come back as
// a structured 400 naming the unknown key and the valid alternatives.
func TestHTTPStructuredScenarioError(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"scenario":"piston:sped=3"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.UnknownKey != "sped" {
		t.Errorf("unknown_key = %q, want sped", e.UnknownKey)
	}
	if e.Scenario != "piston" {
		t.Errorf("scenario = %q, want piston", e.Scenario)
	}
	if len(e.Valid) == 0 {
		t.Error("structured 400 lists no valid keys")
	}

	// Unknown scenario name: same envelope, valid = registry names.
	resp2, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"scenario":"blastwave"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var e2 apiError
	json.NewDecoder(resp2.Body).Decode(&e2)
	if resp2.StatusCode != http.StatusBadRequest || e2.UnknownKey != "blastwave" || len(e2.Valid) == 0 {
		t.Errorf("unknown scenario: status %d envelope %+v", resp2.StatusCode, e2)
	}
}

// TestHTTPAdmission429 exercises the wire shape of an admission rejection:
// status 429 plus a Retry-After header.
func TestHTTPAdmission429(t *testing.T) {
	_, srv := newTestServer(t, Config{
		Workers: 1, MaxRunning: 1, MaxQueued: 4, MaxInflightZones: 400,
	})

	// The blocker job's iteration cap is effectively unbounded so it is
	// still holding the budget when the overflow submission arrives; the
	// server cleanup cancels it.
	resp, _ := postJob(t, srv, `{"size":6,"iterations":100000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp2, _ := postJob(t, srv, `{"size":6,"iterations":1}`)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestHTTPEventsSSE subscribes to a job's event stream and asserts the SSE
// framing: a queued/running state frame, per-cycle progress frames with
// energies, and a terminal done frame, after which the stream ends.
func TestHTTPEventsSSE(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, EventEvery: 1})

	_, st := postJob(t, srv, `{"size":4,"iterations":5}`)
	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	type frame struct{ event, data string }
	var frames []frame
	sc := bufio.NewScanner(resp.Body)
	cur := frame{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			frames = append(frames, cur)
			cur = frame{}
		}
	}
	// The server closes the stream after the terminal frame, ending Scan.

	var progress, done int
	for _, f := range frames {
		switch f.event {
		case "progress":
			progress++
			var p struct {
				Cycle  int     `json:"cycle"`
				Energy float64 `json:"energy"`
				Dt     float64 `json:"dt"`
			}
			if err := json.Unmarshal([]byte(f.data), &p); err != nil {
				t.Fatalf("progress frame %q: %v", f.data, err)
			}
			if p.Cycle < 1 || p.Cycle > 5 {
				t.Errorf("progress cycle %d outside run", p.Cycle)
			}
			if p.Energy == 0 {
				t.Errorf("progress frame without energy: %q", f.data)
			}
		case "done":
			done++
		case "failed", "cancelled":
			t.Fatalf("unexpected terminal frame %s: %s", f.event, f.data)
		}
	}
	if progress == 0 {
		t.Error("no progress frames streamed")
	}
	if done != 1 {
		t.Errorf("done frames = %d, want exactly 1", done)
	}
	if frames[len(frames)-1].event != "done" {
		t.Errorf("stream did not end with the terminal frame: %+v", frames[len(frames)-1])
	}
}

// TestHTTPCancelAndGone: DELETE cancels; /result on a cancelled job is 410.
func TestHTTPCancelAndGone(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 1, MaxRunning: 1})

	_, st := postJob(t, srv, `{"size":8,"iterations":5000}`)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	waitState(t, m, st.ID, 30*time.Second)

	r, _ := http.Get(srv.URL + "/jobs/" + st.ID + "/result")
	r.Body.Close()
	if r.StatusCode != http.StatusGone {
		t.Errorf("result of cancelled job = %d, want 410", r.StatusCode)
	}
}

// TestHTTPHealthAndDrain: healthz flips to 503 once draining, and new
// submissions are refused with 503 + Retry-After.
func TestHTTPHealthAndDrain(t *testing.T) {
	m, srv := newTestServer(t, Config{Workers: 1})

	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", r.StatusCode)
	}

	if err := m.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	r, _ = http.Get(srv.URL + "/healthz")
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", r.StatusCode)
	}
	resp, _ := postJob(t, srv, `{"size":4}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
}

// TestHTTPList: the listing returns jobs in admission order.
func TestHTTPList(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	var ids []string
	for i := 0; i < 3; i++ {
		_, st := postJob(t, srv, fmt.Sprintf(`{"size":4,"iterations":2,"tenant":"t%d"}`, i))
		ids = append(ids, st.ID)
	}
	r, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(out.Jobs))
	}
	for i, j := range out.Jobs {
		if j.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (admission order)", i, j.ID, ids[i])
		}
	}
}
