// Package serve is the luleshd control plane: a multi-tenant job manager
// that admits simulation jobs over HTTP/JSON, multiplexes them onto ONE
// shared amt worker pool via isolated job contexts (amt.NewJob front-ends),
// streams per-step progress over SSE, and persists completed results as
// perf.BenchRecord JSON.
//
// The three scheduler-shaped pieces are:
//
//   - admission control: a bounded budget of in-flight zones (the memory
//     and compute proxy — a job's zone count is its mesh volume) and a
//     bounded queue; a submission that would exceed either is rejected
//     with 429 + Retry-After rather than queued without bound,
//   - weighted fair queueing (wfq.go): queued jobs dispatch in virtual
//     finish-tag order per tenant, so thousands of small jobs from one
//     tenant cannot starve another tenant's work,
//   - isolated job contexts: each running job gets its own amt front-end
//     (phase tags, task sink, in-flight count) on the shared pool plus its
//     own perf.Profiler, so per-job attribution and cancellation never
//     touch other jobs. Physics is bitwise identical to a serial run of
//     the same job — proven in the package tests.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lulesh/internal/amt"
	"lulesh/internal/comm"
	"lulesh/internal/core"
	"lulesh/internal/dist"
	"lulesh/internal/domain"
	"lulesh/internal/perf"
)

// JobSpec is the client-submitted description of one simulation job —
// the POST /jobs body. The shape productizes the Ramble-style workload
// variables: scenario plus geometry plus schedule toggles.
type JobSpec struct {
	// Scenario is the registry spec, "name" or "name:key=val,...".
	// Empty selects sedov.
	Scenario string `json:"scenario,omitempty"`
	// Size is the cubic mesh edge in elements (default 8).
	Size int `json:"size,omitempty"`
	// Iterations caps the cycle count (default 10).
	Iterations int `json:"iterations,omitempty"`
	// Backend: "task" (default; shared-pool many-task), "serial", or
	// "dist" (in-process multi-rank with overlap/fault options).
	Backend string `json:"backend,omitempty"`

	// Tenant is the fair-queueing principal ("" = "default"): jobs are
	// scheduled to give each tenant a weighted fair share of pool work.
	Tenant string `json:"tenant,omitempty"`
	// Weight scales the tenant share for this job (default 1, max 100).
	Weight float64 `json:"weight,omitempty"`

	// Regions/Balance/Cost override the region model (0 = scenario
	// default), mirroring the CLI flags.
	Regions int `json:"regions,omitempty"`
	Balance int `json:"balance,omitempty"`
	Cost    int `json:"cost,omitempty"`

	// Locality / scheduling toggles (nil = backend default on). Only
	// meaningful for backend "task".
	Affinity        *bool `json:"affinity,omitempty"`
	Chain           *bool `json:"chain,omitempty"`
	Fuse            *bool `json:"fuse,omitempty"`
	ParallelForces  *bool `json:"parallel_forces,omitempty"`
	ParallelRegions *bool `json:"parallel_regions,omitempty"`
	BatchSpawn      *bool `json:"batch_spawn,omitempty"`
	AdaptiveGrain   *bool `json:"adaptive_grain,omitempty"` // default off

	// Distributed options (backend "dist" only).
	Ranks    int  `json:"ranks,omitempty"`    // default 2
	Async    bool `json:"async,omitempty"`    // overlapped exchange schedule
	Coalesce bool `json:"coalesce,omitempty"` // coalesced ghost frames
	Tree     bool `json:"tree,omitempty"`     // binomial-tree dt allreduce
	// Faults is a comm fault-injection profile ("drop=0.05,dup=0.02,...");
	// validated at admission, applied with FaultSeed.
	Faults    string `json:"faults,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Job is one admitted simulation job.
type Job struct {
	ID   string
	Spec JobSpec

	// Scheduling tags (immutable after admission).
	seq    int64
	tenant string
	weight float64
	cost   float64 // zones × iterations, the fair-share work unit
	zones  int64

	// Fair-queue virtual tags (owned by fairQueue under the manager lock).
	vstart, vfinish float64

	// Mutable state, guarded by the manager lock.
	state     State
	err       string
	created   time.Time
	started   time.Time
	finished  time.Time
	queueWait time.Duration
	cycle     int64 // last completed cycle (updated atomically by Progress)

	cancel atomic.Bool
	hub    *eventHub
	prof   *perf.Profiler // per-job profiler (task backend), for job="<id>" metrics
}

// JobStatus is the externally visible snapshot of a Job (GET /jobs/{id}).
type JobStatus struct {
	ID          string  `json:"id"`
	State       State   `json:"state"`
	Error       string  `json:"error,omitempty"`
	Tenant      string  `json:"tenant"`
	Scenario    string  `json:"scenario"`
	Backend     string  `json:"backend"`
	Size        int     `json:"size"`
	Iterations  int     `json:"iterations"`
	Zones       int64   `json:"zones"`
	Cycle       int64   `json:"cycle"`
	QueueWaitUs float64 `json:"queue_wait_us,omitempty"`
	ElapsedSec  float64 `json:"elapsed_sec,omitempty"`
}

// Config sizes the manager.
type Config struct {
	// Workers is the shared pool's worker count (default GOMAXPROCS).
	Workers int
	// MaxRunning bounds concurrently *executing* jobs (executor
	// goroutines; default 4× workers — served jobs are small, and
	// oversubscribing executors keeps the pool busy while one job is in
	// its serial between-cycle section).
	MaxRunning int
	// MaxQueued bounds the admission queue (default 1024).
	MaxQueued int
	// MaxInflightZones bounds the summed zone counts of queued+running
	// jobs — the admission controller's memory/compute budget (default
	// 4M zones). A job bigger than the whole budget is rejected as
	// unsatisfiable (400), not retryable (429).
	MaxInflightZones int64
	// ResultsDir is where completed results persist (default
	// "luleshd-results").
	ResultsDir string
	// EventEvery publishes a progress event each N cycles (default 1).
	EventEvery int
	// EventRing is the per-job SSE replay buffer (default 64).
	EventRing int
	// StealHalf configures the shared pool (default true).
	StealHalf bool
}

func (c *Config) fillDefaults() {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.MaxRunning < 1 {
		c.MaxRunning = 4 * c.Workers
	}
	if c.MaxQueued < 1 {
		c.MaxQueued = 1024
	}
	if c.MaxInflightZones < 1 {
		c.MaxInflightZones = 4 << 20
	}
	if c.ResultsDir == "" {
		c.ResultsDir = "luleshd-results"
	}
	if c.EventEvery < 1 {
		c.EventEvery = 1
	}
	if c.EventRing < 1 {
		c.EventRing = 64
	}
}

// AdmissionError is a structured submission rejection carrying the HTTP
// status the control plane should answer with. Code 429 rejections are
// retryable after RetryAfter; 400 means the spec itself is invalid; 503
// means the server is draining for shutdown.
type AdmissionError struct {
	Code       int
	Reason     string
	RetryAfter time.Duration // nonzero on 429/503
}

func (e *AdmissionError) Error() string { return e.Reason }

// Manager is the multi-tenant job scheduler: one shared amt pool, an
// admission-controlled fair queue in front of it, and a bounded set of
// executor goroutines draining the queue.
type Manager struct {
	cfg   Config
	pool  *amt.Scheduler
	store *Store

	mu          sync.Mutex
	cond        *sync.Cond // signals executors: queue non-empty or closing
	queue       *fairQueue
	jobs        map[string]*Job
	order       []string // admission order, for listings
	seq         int64
	zonesQueued int64 // zones admitted, not yet finished (queued+running)
	running     int
	draining    bool
	closed      bool
	wg          sync.WaitGroup

	// Aggregate counters for the metrics endpoint.
	submitted  atomic.Int64
	rejected   atomic.Int64 // 429s
	completed  atomic.Int64
	failed     atomic.Int64
	cancelled  atomic.Int64
	busyNanos  atomic.Int64 // summed job wall time
	queueNanos atomic.Int64 // summed queue wait
}

// NewManager builds the pool, opens the results store and starts the
// executors.
func NewManager(cfg Config) (*Manager, error) {
	cfg.fillDefaults()
	store, err := OpenStore(cfg.ResultsDir)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg: cfg,
		pool: amt.NewScheduler(amt.WithWorkers(cfg.Workers),
			amt.WithStealHalf(cfg.StealHalf)),
		store: store,
		queue: newFairQueue(),
		jobs:  make(map[string]*Job),
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(cfg.MaxRunning)
	for i := 0; i < cfg.MaxRunning; i++ {
		go m.executor()
	}
	return m, nil
}

// Pool exposes the shared scheduler (tests; metric hooks).
func (m *Manager) Pool() *amt.Scheduler { return m.pool }

// Store exposes the results store.
func (m *Manager) Store() *Store { return m.store }

// maxServedSize caps a single served job's mesh edge; beyond this the
// zone budget math still works but one job would monopolize the pool for
// far longer than an interactive control plane should allow.
const maxServedSize = 64

// validateSpec normalizes sp and returns its zone count, or a 400-coded
// AdmissionError. Scenario errors pass through the domain package's
// structured types (UnknownScenarioError / UnknownOptionError), so the
// HTTP layer can render the valid choices.
func validateSpec(sp *JobSpec) (int64, error) {
	if sp.Size == 0 {
		sp.Size = 8
	}
	if sp.Iterations == 0 {
		sp.Iterations = 10
	}
	if sp.Backend == "" {
		sp.Backend = "task"
	}
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if sp.Weight == 0 {
		sp.Weight = 1
	}
	bad := func(format string, args ...any) error {
		return &AdmissionError{Code: 400, Reason: fmt.Sprintf(format, args...)}
	}
	if sp.Size < 2 || sp.Size > maxServedSize {
		return 0, bad("size %d outside [2, %d]", sp.Size, maxServedSize)
	}
	if sp.Iterations < 1 || sp.Iterations > 100000 {
		return 0, bad("iterations %d outside [1, 100000]", sp.Iterations)
	}
	if sp.Weight < 0.01 || sp.Weight > 100 {
		return 0, bad("weight %g outside [0.01, 100]", sp.Weight)
	}
	if len(sp.Tenant) > 64 {
		return 0, bad("tenant name longer than 64 bytes")
	}
	spec, err := domain.ParseScenarioSpec(sp.Scenario)
	if err != nil {
		return 0, &AdmissionError{Code: 400, Reason: err.Error()}
	}
	if err := domain.ValidateScenarioSpec(spec); err != nil {
		// Keep the structured scenario error wrapped so errors.As works
		// on the chain while the HTTP layer still gets a 400 code.
		return 0, fmt.Errorf("%w", err)
	}
	switch sp.Backend {
	case "task", "serial":
		if sp.Faults != "" {
			return 0, bad("faults require backend \"dist\", got %q", sp.Backend)
		}
		if sp.Ranks != 0 {
			return 0, bad("ranks require backend \"dist\"")
		}
		return int64(sp.Size) * int64(sp.Size) * int64(sp.Size), nil
	case "dist":
		if sp.Ranks == 0 {
			sp.Ranks = 2
		}
		if sp.Ranks < 2 || sp.Ranks > 16 {
			return 0, bad("ranks %d outside [2, 16]", sp.Ranks)
		}
		if sp.Faults != "" {
			if _, err := comm.ParseFaultPlan(sp.Faults, sp.FaultSeed); err != nil {
				return 0, bad("fault profile: %v", err)
			}
		}
		// Each rank holds a size×size×size slab.
		return int64(sp.Ranks) * int64(sp.Size) * int64(sp.Size) * int64(sp.Size), nil
	default:
		return 0, bad("unknown backend %q (have task, serial, dist)", sp.Backend)
	}
}

// Submit admits a job (or rejects it with an *AdmissionError / structured
// scenario error). On success the job is queued and will run when the
// fair queue schedules it.
func (m *Manager) Submit(sp JobSpec) (*Job, error) {
	zones, err := validateSpec(&sp)
	if err != nil {
		return nil, err
	}
	if zones > m.cfg.MaxInflightZones {
		return nil, &AdmissionError{Code: 400,
			Reason: fmt.Sprintf("job needs %d zones, above the server's whole budget %d — unsatisfiable",
				zones, m.cfg.MaxInflightZones)}
	}

	m.mu.Lock()
	if m.draining || m.closed {
		m.mu.Unlock()
		return nil, &AdmissionError{Code: 503,
			Reason: "server is draining; not accepting new jobs", RetryAfter: 10 * time.Second}
	}
	if m.queue.len() >= m.cfg.MaxQueued {
		m.mu.Unlock()
		m.rejected.Add(1)
		return nil, &AdmissionError{Code: 429,
			Reason:     fmt.Sprintf("admission queue full (%d jobs)", m.cfg.MaxQueued),
			RetryAfter: m.retryEstimateLocked()}
	}
	if m.zonesQueued+zones > m.cfg.MaxInflightZones {
		retry := m.retryEstimateLocked()
		m.mu.Unlock()
		m.rejected.Add(1)
		return nil, &AdmissionError{Code: 429,
			Reason: fmt.Sprintf("in-flight zone budget exhausted (%d of %d zones committed, job needs %d)",
				m.zonesQueued, m.cfg.MaxInflightZones, zones),
			RetryAfter: retry}
	}
	m.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%06d", m.seq),
		Spec:    sp,
		seq:     m.seq,
		tenant:  sp.Tenant,
		weight:  sp.Weight,
		cost:    float64(zones) * float64(sp.Iterations),
		zones:   zones,
		state:   StateQueued,
		created: time.Now(),
		hub:     newEventHub(m.cfg.EventRing),
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.zonesQueued += zones
	m.queue.push(j)
	m.cond.Signal()
	m.mu.Unlock()

	m.submitted.Add(1)
	j.hub.publish("state", fmt.Sprintf(`{"id":%q,"state":"queued"}`, j.ID))
	return j, nil
}

// retryEstimateLocked guesses a Retry-After from recent service times:
// mean job wall time so far, floored at one second. Called with m.mu held.
func (m *Manager) retryEstimateLocked() time.Duration {
	n := m.completed.Load() + m.failed.Load()
	if n == 0 {
		return time.Second
	}
	mean := time.Duration(m.busyNanos.Load() / n)
	if mean < time.Second {
		return time.Second
	}
	return mean
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	return j, ok
}

// Cancel requests cancellation. Queued jobs cancel as soon as an executor
// pops them; running task/serial jobs stop at the next cycle boundary
// (dist jobs run to completion — their rank loops poll no interrupt). The
// bool reports whether the job exists.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	j.cancel.Store(true)
	return true
}

// Status snapshots a job.
func (m *Manager) Status(j *Job) JobStatus {
	m.mu.Lock()
	st := JobStatus{
		ID:         j.ID,
		State:      j.state,
		Error:      j.err,
		Tenant:     j.tenant,
		Scenario:   j.Spec.Scenario,
		Backend:    j.Spec.Backend,
		Size:       j.Spec.Size,
		Iterations: j.Spec.Iterations,
		Zones:      j.zones,
		Cycle:      atomic.LoadInt64(&j.cycle),
	}
	if st.Scenario == "" {
		st.Scenario = "sedov"
	}
	if !j.started.IsZero() {
		st.QueueWaitUs = float64(j.queueWait.Microseconds())
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.ElapsedSec = end.Sub(j.started).Seconds()
	}
	m.mu.Unlock()
	return st
}

// List snapshots every job in admission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j, ok := m.Get(id); ok {
			out = append(out, m.Status(j))
		}
	}
	return out
}

// Draining reports whether the manager has stopped admitting jobs.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// executor is one job-runner goroutine: it pops fair-queue winners and
// runs them to completion on the shared pool.
func (m *Manager) executor() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.queue.len() == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed && m.queue.len() == 0 {
			m.mu.Unlock()
			return
		}
		j := m.queue.pop()
		if j.cancel.Load() {
			m.finishLocked(j, StateCancelled, "cancelled while queued")
			m.mu.Unlock()
			m.finishEvents(j, StateCancelled, "cancelled while queued")
			continue
		}
		j.state = StateRunning
		j.started = time.Now()
		j.queueWait = j.started.Sub(j.created)
		m.running++
		m.mu.Unlock()

		m.queueNanos.Add(int64(j.queueWait))
		j.hub.publish("state", fmt.Sprintf(`{"id":%q,"state":"running","queue_wait_us":%d}`,
			j.ID, j.queueWait.Microseconds()))
		rec, err := m.runJob(j)

		// Persist BEFORE the state flips to done: a client that observes
		// state "done" must always be able to fetch the stored record. A
		// persistence failure marks the job failed instead, so clients
		// never chase a result that was not durably recorded.
		var state State
		var msg string
		switch {
		case errors.Is(err, core.ErrInterrupted) || (err == nil && j.cancel.Load()):
			state, msg = StateCancelled, "cancelled"
		case err != nil:
			state, msg = StateFailed, err.Error()
		default:
			if perr := m.store.Put(rec); perr != nil {
				state, msg = StateFailed, "persist: "+perr.Error()
			} else {
				state = StateDone
			}
		}

		m.mu.Lock()
		m.running--
		m.finishLocked(j, state, msg)
		m.mu.Unlock()
		m.finishEvents(j, state, msg)
	}
}

// finishLocked moves j to a terminal state and releases its zone budget.
// Caller holds m.mu.
func (m *Manager) finishLocked(j *Job, st State, msg string) {
	j.state = st
	j.err = msg
	j.finished = time.Now()
	m.zonesQueued -= j.zones
	if !j.started.IsZero() {
		m.busyNanos.Add(int64(j.finished.Sub(j.started)))
	}
	switch st {
	case StateDone:
		m.completed.Add(1)
	case StateFailed:
		m.failed.Add(1)
	case StateCancelled:
		m.cancelled.Add(1)
	}
	// Wake Drain waiters (they wait on the same cond).
	m.cond.Broadcast()
}

// finishEvents publishes the terminal SSE frame and closes the stream.
func (m *Manager) finishEvents(j *Job, st State, msg string) {
	payload := struct {
		ID    string `json:"id"`
		State State  `json:"state"`
		Error string `json:"error,omitempty"`
		Cycle int64  `json:"cycle"`
	}{j.ID, st, msg, atomic.LoadInt64(&j.cycle)}
	data, _ := json.Marshal(payload)
	name := "done"
	if st != StateDone {
		name = string(st) // "failed" / "cancelled"
	}
	j.hub.publish(name, string(data))
	j.hub.close()
}

// runJob executes one admitted job and returns its result record.
func (m *Manager) runJob(j *Job) (perf.BenchRecord, error) {
	if j.Spec.Backend == "dist" {
		return m.runDistJob(j)
	}

	spec, err := domain.ParseScenarioSpec(j.Spec.Scenario)
	if err != nil {
		return perf.BenchRecord{}, err
	}
	cfg := domain.DefaultConfig(j.Spec.Size)
	if j.Spec.Regions > 0 {
		cfg.NumReg = j.Spec.Regions
	}
	if j.Spec.Balance > 0 {
		cfg.Balance = j.Spec.Balance
	}
	if j.Spec.Cost > 0 {
		cfg.Cost = j.Spec.Cost
	}
	d, err := domain.BuildScenarioCube(spec, cfg)
	if err != nil {
		return perf.BenchRecord{}, err
	}

	var b core.Backend
	switch j.Spec.Backend {
	case "serial":
		b = core.NewBackendSerial(d)
	default: // task, on the shared pool through an isolated job context
		opt := core.DefaultOptions(j.Spec.Size, m.cfg.Workers)
		opt.Scheduler = m.pool.NewJob()
		applyToggle := func(dst *bool, src *bool) {
			if src != nil {
				*dst = *src
			}
		}
		applyToggle(&opt.Affinity, j.Spec.Affinity)
		applyToggle(&opt.Chain, j.Spec.Chain)
		applyToggle(&opt.Fuse, j.Spec.Fuse)
		applyToggle(&opt.ParallelForces, j.Spec.ParallelForces)
		applyToggle(&opt.ParallelRegions, j.Spec.ParallelRegions)
		applyToggle(&opt.BatchSpawn, j.Spec.BatchSpawn)
		applyToggle(&opt.AdaptiveGrain, j.Spec.AdaptiveGrain)
		bt := core.NewBackendTask(d, opt)
		j.prof = perf.NewProfiler(m.cfg.Workers, 0)
		bt.SetProfiler(j.prof)
		b = bt
	}
	defer b.Close()

	every := m.cfg.EventEvery
	res, err := core.Run(d, b, core.RunConfig{
		MaxIterations: j.Spec.Iterations,
		Interrupt:     func() bool { return j.cancel.Load() },
		Progress: func(cycle int, t, dt float64) {
			atomic.StoreInt64(&j.cycle, int64(cycle))
			if cycle%every != 0 && cycle != j.Spec.Iterations {
				return
			}
			// Progress runs between cycles: no tasks in flight, so the
			// energy read is stable and racefree.
			j.hub.publish("progress", fmt.Sprintf(
				`{"id":%q,"cycle":%d,"time":%g,"dt":%g,"energy":%g}`,
				j.ID, cycle, t, dt, d.E[0]))
		},
	})
	if err != nil {
		return perf.BenchRecord{}, err
	}

	rec := perf.BenchRecord{
		Name:        "serve",
		Scenario:    d.Scenario.String(),
		Backend:     res.Backend,
		Workers:     res.Threads,
		Size:        res.Size,
		Regions:     res.Regions,
		Iterations:  res.Iterations,
		ElapsedSec:  res.Elapsed.Seconds(),
		FOM:         res.FOM(),
		JobID:       j.ID,
		QueueWaitUs: float64(j.queueWait.Microseconds()),
		Counters:    map[string]float64{"origin_energy": res.OriginEnergy},
	}
	if rec.FOM > 0 {
		rec.GrindUsZC = 1e6 / rec.FOM
	}
	if j.prof != nil {
		rec.Phases = j.prof.Snapshot().Phases
	}
	return rec, nil
}

// runDistJob executes a multi-rank in-process job. Rank loops carry their
// own schedulers (rank parallelism, not pool tasks), so dist jobs trade
// pool sharing for the overlap/fault features; the admission budget still
// bounds them.
func (m *Manager) runDistJob(j *Job) (perf.BenchRecord, error) {
	spec, err := domain.ParseScenarioSpec(j.Spec.Scenario)
	if err != nil {
		return perf.BenchRecord{}, err
	}
	cfg := dist.Config{
		Nx: j.Spec.Size, Ny: j.Spec.Size, NzPerRank: j.Spec.Size,
		Ranks:         j.Spec.Ranks,
		Scenario:      spec,
		Async:         j.Spec.Async,
		Coalesce:      j.Spec.Coalesce,
		TreeReduce:    j.Spec.Tree,
		MaxIterations: j.Spec.Iterations,
	}
	if j.Spec.Regions > 0 {
		cfg.NumReg = j.Spec.Regions
	}
	if j.Spec.Balance > 0 {
		cfg.Balance = j.Spec.Balance
	}
	if j.Spec.Cost > 0 {
		cfg.Cost = j.Spec.Cost
	}
	if j.Spec.Faults != "" {
		plan, ferr := comm.ParseFaultPlan(j.Spec.Faults, j.Spec.FaultSeed)
		if ferr != nil {
			return perf.BenchRecord{}, ferr
		}
		cfg.Faults = plan
		cfg.CheckpointEvery = 5
		cfg.MaxRestarts = 3
	}
	res, err := dist.Run(cfg)
	if err != nil {
		return perf.BenchRecord{}, err
	}
	atomic.StoreInt64(&j.cycle, int64(res.Iterations))
	rec := perf.BenchRecord{
		Name:        "serve",
		Scenario:    spec.String(),
		Backend:     "dist",
		Workers:     j.Spec.Ranks,
		Size:        j.Spec.Size,
		Iterations:  res.Iterations,
		ElapsedSec:  res.Elapsed.Seconds(),
		JobID:       j.ID,
		QueueWaitUs: float64(j.queueWait.Microseconds()),
		Counters: map[string]float64{
			"origin_energy": res.OriginEnergy,
			"total_energy":  res.TotalEnergy,
			"recoveries":    float64(res.Recoveries),
		},
	}
	if res.Elapsed > 0 {
		rec.FOM = float64(j.zones) * float64(res.Iterations) / res.Elapsed.Seconds() / 1000.0
	}
	if rec.FOM > 0 {
		rec.GrindUsZC = 1e6 / rec.FOM
	}
	return rec, nil
}

// Drain stops admitting jobs (new submissions get 503) and waits up to
// deadline for queued and running jobs to finish. Jobs still unfinished
// at the deadline are cancelled and awaited briefly. The results store is
// flushed before returning — the SIGTERM path of luleshd.
func (m *Manager) Drain(deadline time.Duration) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()

	limit := time.Now().Add(deadline)
	m.waitIdle(limit)

	// Deadline passed with work still in flight: cancel everything and
	// give the executors one more beat to observe it.
	m.mu.Lock()
	for _, j := range m.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			j.cancel.Store(true)
		}
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.waitIdle(time.Now().Add(deadline))

	return m.store.Flush()
}

// waitIdle blocks until no job is queued or running, or the time limit.
func (m *Manager) waitIdle(limit time.Time) {
	for {
		m.mu.Lock()
		idle := m.queue.len() == 0 && m.running == 0
		m.mu.Unlock()
		if idle || time.Now().After(limit) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close shuts the manager down: drains briefly, stops the executors,
// flushes the store and closes the shared pool.
func (m *Manager) Close() error {
	m.mu.Lock()
	m.draining = true
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	err := m.store.Flush()
	m.pool.Close()
	return err
}

// MetricsExtra is the aggregate-gauge hook for perf.StartServer.
func (m *Manager) MetricsExtra() map[string]float64 {
	m.mu.Lock()
	queued := m.queue.len()
	running := m.running
	zones := m.zonesQueued
	draining := 0.0
	if m.draining {
		draining = 1
	}
	m.mu.Unlock()
	out := map[string]float64{
		"jobs_queued":         float64(queued),
		"jobs_running":        float64(running),
		"jobs_submitted":      float64(m.submitted.Load()),
		"jobs_rejected":       float64(m.rejected.Load()),
		"jobs_completed":      float64(m.completed.Load()),
		"jobs_failed":         float64(m.failed.Load()),
		"jobs_cancelled":      float64(m.cancelled.Load()),
		"zones_inflight":      float64(zones),
		"draining":            draining,
		"results_stored":      float64(m.store.Len()),
		"pool_tasks_inflight": float64(m.pool.PoolInflight()),
	}
	if n := m.completed.Load() + m.failed.Load(); n > 0 {
		out["job_wall_seconds_mean"] = (time.Duration(m.busyNanos.Load() / n)).Seconds()
		out["job_queue_wait_seconds_mean"] = (time.Duration(m.queueNanos.Load() / n)).Seconds()
	}
	return out
}
