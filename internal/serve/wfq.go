package serve

import "container/heap"

// fairQueue implements start-time fair queueing (SFQ) across tenants: each
// job is tagged with a virtual start time — the maximum of the global
// virtual time and its tenant's last finish tag — and a virtual finish
// time start + cost/weight. Jobs dispatch in ascending finish-tag order.
//
// The effect is weighted max-min fairness over queue *service*, not FIFO:
// a tenant that dumps a thousand jobs advances its own finish tags far
// into the virtual future, so a second tenant submitting one small job
// immediately sorts ahead of the backlog — thousands of concurrent small
// jobs share the pool without one tenant starving the rest. Cost is the
// job's zone-cycle volume (zones × iterations), so fairness is in work,
// not job count; weight buys a tenant proportionally more of the pool.
//
// Not goroutine-safe: the Manager serializes access under its own lock.
type fairQueue struct {
	vtime   float64            // virtual start tag of the job most recently dispatched
	tenants map[string]float64 // per-tenant last virtual finish tag
	h       jobHeap
}

func newFairQueue() *fairQueue {
	return &fairQueue{tenants: make(map[string]float64)}
}

// push tags j and inserts it. cost and weight must be positive.
func (q *fairQueue) push(j *Job) {
	start := q.vtime
	if last, ok := q.tenants[j.tenant]; ok && last > start {
		start = last
	}
	j.vstart = start
	j.vfinish = start + j.cost/j.weight
	q.tenants[j.tenant] = j.vfinish
	heap.Push(&q.h, j)
}

// pop removes and returns the job with the smallest finish tag, advancing
// the virtual clock to its start tag (the SFQ rule: v(t) is the start tag
// of the job in service). Returns nil when empty.
func (q *fairQueue) pop() *Job {
	if len(q.h) == 0 {
		return nil
	}
	j := heap.Pop(&q.h).(*Job)
	if j.vstart > q.vtime {
		q.vtime = j.vstart
	}
	// Prune tenants whose backlog has fully drained past the clock —
	// their next job restarts from vtime anyway, and dropping the entry
	// keeps the map bounded on a long-lived server with many one-shot
	// tenants.
	if last, ok := q.tenants[j.tenant]; ok && last <= q.vtime && q.tenantIdle(j.tenant) {
		delete(q.tenants, j.tenant)
	}
	return j
}

// tenantIdle reports whether no queued job belongs to the tenant.
func (q *fairQueue) tenantIdle(tenant string) bool {
	for _, j := range q.h {
		if j.tenant == tenant {
			return false
		}
	}
	return true
}

func (q *fairQueue) len() int { return len(q.h) }

// jobHeap is a min-heap ordered by virtual finish tag; submission sequence
// breaks ties so equal-tag jobs dispatch in arrival order.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if h[i].vfinish != h[k].vfinish {
		return h[i].vfinish < h[k].vfinish
	}
	return h[i].seq < h[k].seq
}
func (h jobHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
