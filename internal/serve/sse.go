package serve

import (
	"fmt"
	"io"
	"sync"
)

// Event is one Server-Sent-Events frame of a job's stream: a named event
// with a JSON payload and a monotonically increasing id (the SSE `id:`
// field, so reconnecting clients can spot gaps).
type Event struct {
	ID   int64
	Name string // "progress", "state", "done", "failed", "cancelled"
	Data string // JSON payload
}

// eventHub fans a job's event stream out to any number of SSE subscribers.
// A bounded replay ring keeps the most recent events so a subscriber that
// attaches mid-run (or reconnects) sees recent history plus everything
// live from that point; the terminal event is always retained, so a
// subscriber attaching after completion still receives it and a proper
// stream end instead of a hang.
type eventHub struct {
	mu     sync.Mutex
	ring   []Event // last ringCap events, oldest first
	cap    int
	nextID int64
	subs   map[chan Event]struct{}
	closed bool
}

func newEventHub(ringCap int) *eventHub {
	if ringCap < 1 {
		ringCap = 1
	}
	return &eventHub{cap: ringCap, subs: make(map[chan Event]struct{})}
}

// publish appends an event to the ring and delivers it to every live
// subscriber. A subscriber whose channel is full has its oldest pending
// events displaced — progress frames are samples, and a slow reader must
// not stall the simulation's Progress callback.
func (h *eventHub) publish(name, data string) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	ev := Event{ID: h.nextID, Name: name, Data: data}
	h.nextID++
	if len(h.ring) == h.cap {
		copy(h.ring, h.ring[1:])
		h.ring[len(h.ring)-1] = ev
	} else {
		h.ring = append(h.ring, ev)
	}
	for ch := range h.subs {
		for {
			select {
			case ch <- ev:
			default:
				select {
				case <-ch: // drop the oldest pending frame
				default:
				}
				continue
			}
			break
		}
	}
	h.mu.Unlock()
}

// close ends the stream after a terminal event has been published:
// subscriber channels are closed so their SSE handlers return.
func (h *eventHub) close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		for ch := range h.subs {
			close(ch)
		}
		h.subs = nil
	}
	h.mu.Unlock()
}

// subscribe returns the replay backlog plus a live channel (nil when the
// stream has already closed — the backlog then ends with the terminal
// event). unsubscribe must be called unless the channel was nil.
func (h *eventHub) subscribe(buf int) (backlog []Event, ch chan Event) {
	if buf < 1 {
		buf = 1 // an unbuffered channel would deadlock publish's drop-oldest loop
	}
	h.mu.Lock()
	backlog = append(backlog, h.ring...)
	if !h.closed {
		ch = make(chan Event, buf)
		h.subs[ch] = struct{}{}
	}
	h.mu.Unlock()
	return backlog, ch
}

func (h *eventHub) unsubscribe(ch chan Event) {
	h.mu.Lock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
	h.mu.Unlock()
}

// writeSSE renders one event in the SSE wire format.
func writeSSE(w io.Writer, ev Event) error {
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Name, ev.Data)
	return err
}
