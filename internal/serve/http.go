package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"lulesh/internal/domain"
)

// Handler returns the control plane's HTTP API:
//
//	POST   /jobs             submit a JobSpec, 202 + status (429/503 on admission)
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        job status
//	GET    /jobs/{id}/events SSE stream: state / progress / terminal frames
//	GET    /jobs/{id}/result completed result (perf.BenchRecord JSON)
//	DELETE /jobs/{id}        cancel (idempotent)
//	GET    /healthz          liveness + drain state
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", m.handleSubmit)
	mux.HandleFunc("GET /jobs", m.handleList)
	mux.HandleFunc("GET /jobs/{id}", m.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/events", m.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result", m.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", m.handleCancel)
	mux.HandleFunc("GET /healthz", m.handleHealth)
	return mux
}

// apiError is the JSON error envelope. Scenario spec mistakes carry the
// structured detail from the domain package: the offending key plus the
// valid alternatives, so a 400 is actionable without reading server code.
type apiError struct {
	Error      string   `json:"error"`
	Scenario   string   `json:"scenario,omitempty"`    // scenario that rejected an option
	UnknownKey string   `json:"unknown_key,omitempty"` // offending option key or scenario name
	Valid      []string `json:"valid,omitempty"`       // accepted names/keys
	RetryAfter int      `json:"retry_after_sec,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps an admission/validation error to its HTTP shape.
func writeError(w http.ResponseWriter, err error) {
	var adm *AdmissionError
	if errors.As(err, &adm) {
		resp := apiError{Error: adm.Reason}
		if adm.RetryAfter > 0 {
			sec := int(adm.RetryAfter.Round(time.Second).Seconds())
			if sec < 1 {
				sec = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(sec))
			resp.RetryAfter = sec
		}
		writeJSON(w, adm.Code, resp)
		return
	}
	var use *domain.UnknownScenarioError
	if errors.As(err, &use) {
		writeJSON(w, http.StatusBadRequest, apiError{
			Error: err.Error(), UnknownKey: use.Name, Valid: use.Known})
		return
	}
	var uoe *domain.UnknownOptionError
	if errors.As(err, &uoe) {
		writeJSON(w, http.StatusBadRequest, apiError{
			Error: err.Error(), Scenario: uoe.Scenario,
			UnknownKey: uoe.Key, Valid: uoe.Allowed})
		return
	}
	writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
}

const maxSpecBytes = 1 << 20

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp JobSpec
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "read body: " + err.Error()})
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &sp); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "parse spec: " + err.Error()})
			return
		}
	}
	j, err := m.Submit(sp)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, m.Status(j))
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{m.List()})
}

func (m *Manager) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job " + r.PathValue("id")})
		return nil, false
	}
	return j, true
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := m.jobFromPath(w, r); ok {
		writeJSON(w, http.StatusOK, m.Status(j))
	}
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := m.jobFromPath(w, r)
	if !ok {
		return
	}
	m.Cancel(j.ID)
	writeJSON(w, http.StatusOK, m.Status(j))
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := m.jobFromPath(w, r)
	if !ok {
		return
	}
	st := m.Status(j)
	switch st.State {
	case StateDone:
		rec, ok, err := m.store.Get(j.ID)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
		if !ok {
			writeJSON(w, http.StatusNotFound, apiError{Error: "result not persisted"})
			return
		}
		writeJSON(w, http.StatusOK, rec)
	case StateFailed, StateCancelled:
		writeJSON(w, http.StatusGone, apiError{Error: fmt.Sprintf("job %s: %s", st.State, st.Error)})
	default:
		// Not finished yet: tell the client when to look again.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, apiError{
			Error: "job not finished (state " + string(st.State) + ")", RetryAfter: 1})
	}
}

// handleEvents streams the job's SSE feed: replay of the recent ring,
// then live frames until the job reaches a terminal state or the client
// disconnects.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := m.jobFromPath(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	backlog, ch := j.hub.subscribe(64)
	for _, ev := range backlog {
		if writeSSE(w, ev) != nil {
			if ch != nil {
				j.hub.unsubscribe(ch)
			}
			return
		}
	}
	fl.Flush()
	if ch == nil {
		return // stream already ended; backlog carried the terminal event
	}
	defer j.hub.unsubscribe(ch)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // terminal event delivered, hub closed
			}
			if writeSSE(w, ev) != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (m *Manager) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if m.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
	}{status})
}

// WriteJobMetrics renders per-job Prometheus series with job="<id>"
// labels — the perf.Server text-source hook. Queued and running jobs are
// always exported; terminal jobs export until scraped off the books by
// retention (they stay while the manager lives, letting one final scrape
// observe the terminal state).
func (m *Manager) WriteJobMetrics(w io.Writer) {
	type row struct {
		j  *Job
		st JobStatus
	}
	m.mu.Lock()
	rows := make([]row, 0, len(m.order))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			rows = append(rows, row{j: j})
		}
	}
	m.mu.Unlock()
	for i := range rows {
		rows[i].st = m.Status(rows[i].j)
	}

	fmt.Fprintf(w, "# TYPE lulesh_job_state gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "lulesh_job_state{job=%q,tenant=%q,state=%q,backend=%q} 1\n",
			r.st.ID, r.st.Tenant, r.st.State, r.st.Backend)
	}
	fmt.Fprintf(w, "# TYPE lulesh_job_cycle gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "lulesh_job_cycle{job=%q} %d\n", r.st.ID, r.st.Cycle)
	}
	fmt.Fprintf(w, "# TYPE lulesh_job_queue_wait_seconds gauge\n")
	for _, r := range rows {
		if r.st.QueueWaitUs > 0 {
			fmt.Fprintf(w, "lulesh_job_queue_wait_seconds{job=%q} %g\n",
				r.st.ID, r.st.QueueWaitUs/1e6)
		}
	}
	fmt.Fprintf(w, "# TYPE lulesh_job_elapsed_seconds gauge\n")
	for _, r := range rows {
		if r.st.ElapsedSec > 0 {
			fmt.Fprintf(w, "lulesh_job_elapsed_seconds{job=%q} %g\n", r.st.ID, r.st.ElapsedSec)
		}
	}
	// Per-job busy time from the isolated profilers: the attribution the
	// job-context refactor exists for.
	fmt.Fprintf(w, "# TYPE lulesh_job_busy_seconds gauge\n")
	for _, r := range rows {
		if r.j.prof != nil {
			fmt.Fprintf(w, "lulesh_job_busy_seconds{job=%q} %g\n",
				r.st.ID, r.j.prof.Snapshot().Busy.Seconds())
		}
	}
}
