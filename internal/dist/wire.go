package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lulesh/internal/checkpoint"
	"lulesh/internal/comm"
	"lulesh/internal/domain"
	"lulesh/internal/perf"
	"lulesh/internal/wire"
)

// Multi-process execution: one rank per OS process over the TCP fabric
// of internal/wire. RunWire is the per-process counterpart of Run — the
// same rank code, the same exchange protocol, the same recovery
// classification — with the restart loop lifted out into wire.Launch
// (the whole fabric relaunches together, every process restoring from
// the last checkpoint epoch committed on disk by all ranks).

// WireOptions carries the per-process knobs of a multi-process run.
type WireOptions struct {
	// Rank is this process's rank in the fabric of Config.Ranks.
	Rank int

	// Rendezvous is rank 0's bootstrap address.
	Rendezvous string

	// Cookie is the run's shared handshake secret.
	Cookie string

	// CheckpointDir, with Config.CheckpointEvery, makes coordinated
	// checkpoints durable across process boundaries: each rank writes
	// ckpt-e<epoch>-r<rank>.lulcp atomically (tmp + rename), and a
	// relaunched fabric restores from the newest epoch for which every
	// rank's blob exists and passes its CRC.
	CheckpointDir string

	// FinalStateFile, when set, receives this rank's final domain as a
	// rank-checkpoint blob — the artifact luleshverify -net compares
	// bitwise against an in-process run.
	FinalStateFile string

	// AttemptsTaken counts fabric relaunches (0 = first attempt). A
	// positive value disables one-shot failure plans (Faults.CrashStep,
	// KillAtStep): the crash already happened on a previous attempt, and
	// replaying it would crash every recovery too.
	AttemptsTaken int

	// KillAtStep > 0 makes this process SIGKILL itself at that cycle —
	// real process death for the chaos lane, as opposed to the modeled
	// crash of Faults.CrashStep.
	KillAtStep int

	Heartbeat   time.Duration // wire keepalive interval
	PeerTimeout time.Duration // wire silence budget
}

// RunWire executes this process's single rank of a multi-process run and
// returns its local view of the result (Result.Ranks holds one entry;
// TotalEnergy and OriginEnergy are globally gathered on rank 0 only).
// A recoverable failure — a lost peer, an exchange timeout — comes back
// still classified, so the caller can exit wire.ExitRecoverable and let
// the launcher restart the fabric from the last committed checkpoint.
func RunWire(cfg Config, w WireOptions) (Result, error) {
	if cfg.Ranks < 1 {
		return Result{}, fmt.Errorf("dist: need at least 1 rank, got %d", cfg.Ranks)
	}
	if w.Rank < 0 || w.Rank >= cfg.Ranks {
		return Result{}, fmt.Errorf("dist: wire rank %d out of [0,%d)", w.Rank, cfg.Ranks)
	}
	if err := domain.ValidateScenarioSpec(cfg.Scenario); err != nil {
		return Result{}, fmt.Errorf("dist: %w", err)
	}

	// One-shot fault plans are consumed by the attempt that took them:
	// a relaunched fabric runs them disabled, or recovery would loop.
	faults := cfg.Faults
	if w.AttemptsTaken > 0 && faults != nil && faults.CrashStep > 0 {
		fp := *faults
		fp.CrashStep = 0
		faults = &fp
	}
	killAt := w.KillAtStep
	if w.AttemptsTaken > 0 {
		killAt = 0
	}
	var tr comm.Transport
	if faults.Active() {
		// Every process builds the same seeded injector; the per-pair
		// PRNG streams depend only on (seed, pair), so the distributed
		// fault schedule matches the in-process one exactly.
		tr = comm.NewFaultInjector(*faults, cfg.Ranks)
	}
	if cfg.Latency > 0 {
		// The in-process fabric honours Config.Latency natively; over the
		// wire the delay transport stamps it into each frame's header and
		// the receiver sleeps the residual, so both fabrics pay the same
		// deterministic one-way link latency.
		tr = comm.NewDelay(cfg.Latency, tr)
	}

	// The schedule string participates in the wire handshake: every
	// overlap toggle must match across the fabric, or a mixed run would
	// deadlock on mismatched tags/topology — refusing at Join turns that
	// into an immediate geometry error.
	schedule := "sync"
	if cfg.Async {
		schedule = "async"
	}
	if cfg.TreeReduce {
		schedule += "+tree"
	}
	if cfg.Coalesce {
		schedule += "+coalesce"
	}
	fab, err := wire.Join(wire.Config{
		Rank:       w.Rank,
		Size:       cfg.Ranks,
		Rendezvous: w.Rendezvous,
		Cookie:     w.Cookie,
		Geometry: wire.Geometry{
			Size:       cfg.Nx,
			Iterations: cfg.MaxIterations,
			Schedule:   schedule,
		},
		Heartbeat:   w.Heartbeat,
		PeerTimeout: w.PeerTimeout,
	})
	if err != nil {
		return Result{}, err
	}
	// On every exit path the fabric closes; a failing rank thereby sends
	// FIN/RST to its peers, which detect the loss faster than any
	// deadline would.
	defer fab.Close()

	// Wire runs record message spans at the wire layer — the fabric's
	// writer/reader goroutines, where the header clock lives — so the
	// endpoint-layer sink stays disconnected (SetTraceSink no-ops on a
	// remote cluster). Attach before Cluster starts those goroutines.
	var tracer *perf.NetTracer
	if cfg.Trace {
		tracer = perf.NewNetTracer(0)
		fab.SetTracer(tracer)
	}

	cluster := fab.Cluster(comm.Options{
		Transport:        tr,
		ExchangeDeadline: cfg.ExchangeDeadline,
		RetryLimit:       cfg.RetryLimit,
	})
	if cfg.Monitor != nil {
		cfg.Monitor.observe(cluster)
		cfg.Monitor.AddSource(fab.Gauges)
	}

	var store *fileStore
	var d *domain.Domain
	restored := false
	if w.CheckpointDir != "" && cfg.CheckpointEvery > 0 {
		if err := os.MkdirAll(w.CheckpointDir, 0o755); err != nil {
			return Result{}, fmt.Errorf("dist: checkpoint dir: %w", err)
		}
		store = &fileStore{dir: w.CheckpointDir, ranks: cfg.Ranks}
		epoch, ok, err := store.latestCommitted()
		if err != nil {
			return Result{}, err
		}
		if ok {
			blob, err := store.load(epoch, w.Rank)
			if err != nil {
				return Result{}, err
			}
			dd, meta, err := checkpoint.LoadRank(bytes.NewReader(blob))
			if err != nil {
				return Result{}, fmt.Errorf("dist: restore epoch %d: %w", epoch, err)
			}
			if meta.Rank != w.Rank || meta.Ranks != cfg.Ranks {
				return Result{}, fmt.Errorf("dist: restore epoch %d: blob is rank %d/%d, want %d/%d",
					epoch, meta.Rank, meta.Ranks, w.Rank, cfg.Ranks)
			}
			if err := checkpoint.ExpectScenario(dd, cfg.Scenario); err != nil {
				return Result{}, fmt.Errorf("dist: restore epoch %d: %w", epoch, err)
			}
			d = dd
			restored = true
			if cfg.Monitor != nil {
				cfg.Monitor.restores.Add(1)
			}
		}
	}

	rk := newRankWith(cfg, cluster, w.Rank, d)
	defer rk.close()
	rk.restored = restored
	if tracer != nil {
		rk.tracer = tracer
		// Every wire process owns its profiler outright, so each one
		// closes its own step windows (in-process, rank 0 does it for the
		// shared profiler).
		rk.markStep = cfg.Profiler != nil
		rk.stepMark = func(cycle int) {
			fab.SetStep(cycle)
			// Refresh the clock-offset estimate as the run progresses;
			// the min-RTT filter keeps the best sample.
			if cycle%wireClockResync == 0 {
				fab.SyncClock(1)
			}
		}
	}
	if store != nil {
		rk.store = store
	}
	if killAt > 0 {
		rk.epochHook = func(cycle int) {
			if cycle >= killAt {
				// Real process death: SIGKILL leaves no deferred close, no
				// flush, no goodbye — exactly what the failure detector and
				// the launcher's restart path must handle.
				p, _ := os.FindProcess(os.Getpid())
				p.Kill()
				time.Sleep(10 * time.Second) // never outrun our own kill
			}
		}
	}

	start := time.Now()
	if err := rk.run(cfg.MaxIterations); err != nil {
		return Result{}, fmt.Errorf("rank %d: %w", w.Rank, err)
	}
	elapsed := time.Since(start)

	// Global energy: a rank-ascending gather onto rank 0, the same
	// deterministic fold order the in-process Result uses.
	localE := 0.0
	for e := 0; e < rk.d.NumElem(); e++ {
		localE += rk.d.E[e] * rk.d.Volo[e]
	}
	total := localE
	if cfg.Ranks > 1 {
		if w.Rank == 0 {
			for r := 1; r < cfg.Ranks; r++ {
				theirs, err := rk.ep.RecvDeadline(r, comm.TagReduce)
				if err != nil {
					return Result{}, fmt.Errorf("rank 0: energy gather: %w", err)
				}
				total += theirs[0]
			}
		} else {
			rk.ep.Send(0, comm.TagReduce, []float64{localE})
		}
	}

	if w.FinalStateFile != "" {
		if err := writeFinalState(w.FinalStateFile, rk); err != nil {
			return Result{}, err
		}
	}

	// Trace gather: before Goodbye (the resend service must stay live),
	// after the energy gather (no run traffic left to perturb). Workers
	// ship their RankTrace to rank 0 as a JSON blob bit-cast onto the
	// ordinary float64 data path; a rank that dies here stays marked Dead
	// in the fleet snapshot rather than failing the run.
	var fleet *perf.FleetSnapshot
	if cfg.Trace {
		off, rtt, _ := fab.RootOffset()
		rt := rk.rankTrace(int64(off), int64(rtt))
		if w.Rank == 0 {
			fleet = perf.NewFleetSnapshot(cfg.Ranks)
			fleet.AddRank(rt)
			for r := 1; r < cfg.Ranks; r++ {
				blob, err := rk.ep.RecvDeadline(r, comm.TagTrace)
				if err != nil {
					continue
				}
				raw, ok := perf.DecodeBlob(blob)
				if !ok {
					continue
				}
				var prt perf.RankTrace
				if json.Unmarshal(raw, &prt) != nil {
					continue
				}
				fleet.AddRank(prt)
			}
		} else {
			if raw, err := json.Marshal(rt); err == nil {
				rk.ep.Send(0, comm.TagTrace, perf.EncodeBlob(raw))
			}
		}
	}

	// Orderly exit: announce the end of run and keep servicing resend
	// requests until every peer has said goodbye too (or the grace runs
	// out) — a rank that finished first must not strand a peer still
	// recovering an injected loss of this rank's final message.
	fab.Goodbye()
	fab.Linger(rk.ep, lingerGrace())

	res := Result{
		Iterations:  rk.d.Cycle,
		FinalTime:   rk.d.Time,
		TotalEnergy: total,
		Elapsed:     elapsed,
		Recoveries:  w.AttemptsTaken,
		Fabric:      cluster.FabricStats(),
		Ranks: []RankStats{{
			Rank:     rk.id,
			Comm:     rk.ep.StatsSnapshot(),
			StepTime: rk.stepTime,
		}},
	}
	if w.Rank == 0 {
		res.OriginEnergy = rk.d.E[0]
		res.Fleet = fleet
	}
	if store != nil {
		res.Checkpoints = store.filed
	}
	return res, nil
}

// wireClockResync is the step period of the in-run clock-offset refresh
// (a single ping to rank 0; the min-RTT sample wins).
const wireClockResync = 64

// lingerGrace bounds the post-run resend-service window: long enough for
// a peer to walk its full retry backoff against us, short enough not to
// stall a clean shutdown noticeably.
func lingerGrace() time.Duration {
	const floor = 500 * time.Millisecond
	return max(floor, 2*comm.DefaultExchangeDeadline)
}

// writeFinalState saves the rank's final domain as a rank-checkpoint
// blob via tmp + rename, so the verifier never reads a torn file.
func writeFinalState(path string, rk *rank) error {
	var buf bytes.Buffer
	meta := checkpoint.RankMeta{Rank: rk.id, Ranks: rk.cfg.Ranks, Epoch: rk.d.Cycle}
	if err := checkpoint.SaveRank(&buf, rk.d, rk.boxCfg, meta); err != nil {
		return fmt.Errorf("dist: final state: %w", err)
	}
	return atomicWrite(path, buf.Bytes())
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// fileStore is the on-disk ckptSink of a multi-process run: one blob per
// (epoch, rank) under a shared directory. Atomic rename makes a blob
// all-or-nothing, and "committed" means every rank's blob for the epoch
// exists and passes checkpoint.Verify — a rank that died mid-epoch
// leaves that epoch unusable, never half-restored.
type fileStore struct {
	dir   string
	ranks int
	filed int64 // epochs this rank has written (local count)
}

func ckptFile(epoch, rank int) string {
	return fmt.Sprintf("ckpt-e%08d-r%04d.lulcp", epoch, rank)
}

func (s *fileStore) put(epoch, rank int, blob []byte) error {
	if err := atomicWrite(filepath.Join(s.dir, ckptFile(epoch, rank)), blob); err != nil {
		return fmt.Errorf("dist: checkpoint write: %w", err)
	}
	s.filed++
	return nil
}

func (s *fileStore) load(epoch, rank int) ([]byte, error) {
	blob, err := os.ReadFile(filepath.Join(s.dir, ckptFile(epoch, rank)))
	if err != nil {
		return nil, fmt.Errorf("dist: checkpoint read: %w", err)
	}
	return blob, nil
}

// latestCommitted scans the directory for the newest epoch with a valid
// blob from every rank. All processes of a relaunched fabric scan the
// same quiesced directory (their predecessors are dead before the
// launcher forks), so they agree on the restore point without talking.
func (s *fileStore) latestCommitted() (epoch int, ok bool, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, false, fmt.Errorf("dist: checkpoint scan: %w", err)
	}
	present := make(map[int]int) // epoch -> ranks seen
	for _, e := range entries {
		var ep, r int
		if n, _ := fmt.Sscanf(e.Name(), "ckpt-e%08d-r%04d.lulcp", &ep, &r); n != 2 {
			continue
		}
		if r >= 0 && r < s.ranks {
			present[ep]++
		}
	}
	epochs := make([]int, 0, len(present))
	for ep, n := range present {
		if n == s.ranks {
			epochs = append(epochs, ep)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(epochs)))
	for _, ep := range epochs {
		if s.epochValid(ep) {
			return ep, true, nil
		}
	}
	return 0, false, nil
}

// epochValid checks every rank's blob for the epoch against its CRC.
func (s *fileStore) epochValid(epoch int) bool {
	for r := 0; r < s.ranks; r++ {
		f, err := os.Open(filepath.Join(s.dir, ckptFile(epoch, r)))
		if err != nil {
			return false
		}
		err = checkpoint.Verify(f)
		f.Close()
		if err != nil {
			return false
		}
	}
	return true
}
