//go:build race

package dist

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation distorts the timing assumptions of latency tests.
const raceEnabled = true
