package dist

import (
	"math"
	"testing"

	"lulesh/internal/domain"
	"lulesh/internal/perf"
)

// sameDomains asserts two rank sets hold bitwise-identical state in
// every array the physics advances — far stricter than comparing the
// two energy scalars.
func sameDomains(t *testing.T, label string, a, b []*domain.Domain) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d ranks", label, len(a), len(b))
	}
	for r := range a {
		da, db := a[r], b[r]
		arrays := []struct {
			name string
			x, y []float64
		}{
			{"E", da.E, db.E}, {"P", da.P, db.P}, {"Q", da.Q, db.Q},
			{"V", da.V, db.V},
			{"X", da.X, db.X}, {"Y", da.Y, db.Y}, {"Z", da.Z, db.Z},
			{"Xd", da.Xd, db.Xd}, {"Yd", da.Yd, db.Yd}, {"Zd", da.Zd, db.Zd},
		}
		for _, arr := range arrays {
			if len(arr.x) != len(arr.y) {
				t.Fatalf("%s: rank %d %s length %d vs %d",
					label, r, arr.name, len(arr.x), len(arr.y))
			}
			for i := range arr.x {
				if math.Float64bits(arr.x[i]) != math.Float64bits(arr.y[i]) {
					t.Fatalf("%s: rank %d %s[%d]: %v vs %v",
						label, r, arr.name, i, arr.x[i], arr.y[i])
				}
			}
		}
	}
}

// TestOverlapToggleMatrixBitwise: every combination of the three overlap
// toggles — boundary-first schedule, tree allreduce, coalesced frames —
// must reproduce the synchronous baseline bit for bit, in every state
// array of every rank.
func TestOverlapToggleMatrixBitwise(t *testing.T) {
	const s = 4
	base := Config{
		Nx: s, Ny: s, NzPerRank: s, Ranks: 3,
		NumReg: 5, Balance: 1, Cost: 1, MaxIterations: 15,
	}
	refRes, refDoms, err := RunDomains(base)
	if err != nil {
		t.Fatal(err)
	}
	for mask := 1; mask < 8; mask++ {
		cfg := base
		cfg.Async = mask&1 != 0
		cfg.TreeReduce = mask&2 != 0
		cfg.Coalesce = mask&4 != 0
		label := ""
		for _, f := range []struct {
			on   bool
			name string
		}{{cfg.Async, "async"}, {cfg.TreeReduce, "tree"}, {cfg.Coalesce, "coalesce"}} {
			if f.on {
				if label != "" {
					label += "+"
				}
				label += f.name
			}
		}
		res, doms, err := RunDomains(cfg)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.OriginEnergy != refRes.OriginEnergy || res.TotalEnergy != refRes.TotalEnergy {
			t.Fatalf("%s: energies (%v, %v) vs sync (%v, %v)", label,
				res.OriginEnergy, res.TotalEnergy, refRes.OriginEnergy, refRes.TotalEnergy)
		}
		if res.FinalTime != refRes.FinalTime || res.Iterations != refRes.Iterations {
			t.Fatalf("%s: time stepping diverged", label)
		}
		sameDomains(t, label, refDoms, doms)
	}
}

// TestOverlapThinSlabDegenerate: NzPerRank=1 collapses the boundary
// classification — both communicated faces live on the same plane, so
// the plan must merge them into one span instead of computing the plane
// twice. The overlapped schedule must still match the synchronous one.
func TestOverlapThinSlabDegenerate(t *testing.T) {
	base := Config{
		Nx: 4, Ny: 4, NzPerRank: 1, Ranks: 4,
		NumReg: 1, Balance: 1, Cost: 1, MaxIterations: 10,
	}
	_, refDoms, err := RunDomains(base)
	if err != nil {
		t.Fatal(err)
	}
	over := base
	over.Async = true
	over.TreeReduce = true
	over.Coalesce = true
	_, doms, err := RunDomains(over)
	if err != nil {
		t.Fatal(err)
	}
	sameDomains(t, "thin-slab overlap", refDoms, doms)
}

// TestTreeReduceMessageCounts pins down the point of the binomial tree:
// rank 0 handles ⌈log2 n⌉ reduction messages per step instead of n−1,
// and coalescing cuts the per-peer ghost frames from six to two. The
// in-process fabric makes the counts exact: per cycle rank 0 (one
// neighbour) sends 3 force + 3 gradient planes plus its reduction
// traffic, and the only other message is the init-time nodal-mass send.
func TestTreeReduceMessageCounts(t *testing.T) {
	const ranks = 8
	base := Config{
		Nx: 2, Ny: 2, NzPerRank: 2, Ranks: ranks,
		NumReg: 1, Balance: 1, Cost: 1, MaxIterations: 5,
	}
	sent := func(cfg Config) (perCycle int64, iters int) {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Ranks[0].Comm.Sent, res.Iterations
	}

	linSent, linIters := sent(base)
	tree := base
	tree.TreeReduce = true
	treeSent, treeIters := sent(tree)
	both := tree
	both.Coalesce = true
	bothSent, bothIters := sent(both)

	if linIters != treeIters || linIters != bothIters {
		t.Fatalf("iteration counts diverged: %d/%d/%d", linIters, treeIters, bothIters)
	}
	n := int64(linIters)
	// Linear: 6 ghost sends + 7 broadcast fan-out sends per cycle, plus
	// the nodal-mass send. Tree: the fan-out drops to log2(8) = 3.
	// Coalesced: the 6 ghost sends become 2.
	if want := 1 + n*(6+ranks-1); linSent != want {
		t.Errorf("linear rank-0 sends: %d, want %d", linSent, want)
	}
	if want := 1 + n*(6+3); treeSent != want {
		t.Errorf("tree rank-0 sends: %d, want %d", treeSent, want)
	}
	if want := 1 + n*(2+3); bothSent != want {
		t.Errorf("tree+coalesce rank-0 sends: %d, want %d", bothSent, want)
	}
}

// TestAttributeStep: the wall attribution must hand back buckets that
// sum exactly to wall, trimming any measured-bucket overshoot from the
// least-trusted bucket first (steal-idle, then allreduce-wait, then
// ghost-wait) instead of letting the waits exceed the step window.
func TestAttributeStep(t *testing.T) {
	cases := []struct {
		name                       string
		wall, ghost, red, idle     int64
		wantC, wantG, wantR, wantI int64
	}{
		{"plain residual", 100, 20, 10, 5, 65, 20, 10, 5},
		{"exact fit", 100, 60, 30, 10, 0, 60, 30, 10},
		{"trim idle first", 100, 60, 30, 20, 0, 60, 30, 10},
		{"trim idle then red", 100, 60, 50, 20, 0, 60, 40, 0},
		{"trim into ghost", 100, 150, 30, 20, 0, 100, 0, 0},
		{"zero exchange", 100, 0, 0, 0, 100, 0, 0, 0},
		{"negative deltas clamped", 100, -5, -7, -1, 100, 0, 0, 0},
	}
	for _, c := range cases {
		gotC, gotG, gotR, gotI := attributeStep(c.wall, c.ghost, c.red, c.idle)
		if gotC != c.wantC || gotG != c.wantG || gotR != c.wantR || gotI != c.wantI {
			t.Errorf("%s: attributeStep(%d,%d,%d,%d) = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				c.name, c.wall, c.ghost, c.red, c.idle,
				gotC, gotG, gotR, gotI, c.wantC, c.wantG, c.wantR, c.wantI)
		}
		if sum := gotC + gotG + gotR + gotI; sum != c.wall {
			t.Errorf("%s: buckets sum to %d, want wall %d", c.name, sum, c.wall)
		}
	}
}

// TestZeroExchangePhaseRows is the regression test for the exit-table
// mislabeling: a single-rank run never exchanges and never reduces over
// the fabric, yet the profiler mirror used to record zero-duration
// ghost-wait and allreduce-wait tasks every cycle, surfacing spurious
// wait rows (and, with the old clamp path, inflated wait shares) in the
// per-phase exit table. Phases with nothing to report must stay absent.
func TestZeroExchangePhaseRows(t *testing.T) {
	prof := perf.NewProfiler(1, 0)
	perf.RegisterDistPhases(prof)
	res, err := Run(Config{
		Nx: 4, Ny: 4, NzPerRank: 4, Ranks: 1,
		NumReg: 1, Balance: 1, Cost: 1, MaxIterations: 8,
		Trace: true, Profiler: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("run did not advance")
	}
	rows := map[string]bool{}
	for _, ph := range prof.Snapshot().Phases {
		rows[ph.Name] = true
	}
	if !rows["compute"] {
		t.Error("compute row missing from the phase table")
	}
	for _, name := range []string{"ghost-wait", "allreduce-wait"} {
		if rows[name] {
			t.Errorf("zero-exchange run grew a spurious %q phase row", name)
		}
	}
	// And the buckets attribute the whole wall to compute.
	for _, b := range res.Fleet.Traces[0].Steps {
		if b.GhostNs != 0 || b.ReduceNs != 0 {
			t.Fatalf("step %d: nonzero wait buckets (%d, %d) without exchanges",
				b.Step, b.GhostNs, b.ReduceNs)
		}
		if b.ComputeNs+b.IdleNs != b.WallNs {
			t.Fatalf("step %d: buckets do not sum to wall", b.Step)
		}
	}
}
