package dist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lulesh/internal/checkpoint"
	"lulesh/internal/comm"
	"lulesh/internal/domain"
	"lulesh/internal/wire"
)

// runWireFabric hosts a whole multi-process fabric inside the test: one
// goroutine per rank calling RunWire against a fresh rendezvous, the
// exact code path the launcher's worker processes execute (TCP sockets
// included), minus the fork.
func runWireFabric(t *testing.T, cfg Config, opts func(rank int) WireOptions) []Result {
	t.Helper()
	rdv, err := wire.PickRendezvous()
	if err != nil {
		t.Fatalf("PickRendezvous: %v", err)
	}
	results := make([]Result, cfg.Ranks)
	errs := make([]error, cfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := opts(r)
			w.Rank = r
			w.Rendezvous = rdv
			w.Cookie = "dist-test"
			results[r], errs[r] = RunWire(cfg, w)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results
}

// TestWireMatchesInProcess: the TCP fabric must be invisible — a run
// with every exchange crossing a real socket ends bitwise identical to
// the in-process run with the same decomposition, rank by rank.
func TestWireMatchesInProcess(t *testing.T) {
	cfg := Config{
		Nx: 4, Ny: 4, NzPerRank: 4, Ranks: 3,
		NumReg: 3, Balance: 1, Cost: 1, MaxIterations: 15,
	}
	ref, doms, err := RunDomains(cfg)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	dir := t.TempDir()
	final := func(r int) string { return filepath.Join(dir, fmt.Sprintf("final-r%d.lulcp", r)) }
	results := runWireFabric(t, cfg, func(r int) WireOptions {
		return WireOptions{FinalStateFile: final(r)}
	})

	if got, want := results[0].TotalEnergy, ref.TotalEnergy; got != want {
		t.Errorf("total energy: wire %v, in-process %v", got, want)
	}
	if got, want := results[0].OriginEnergy, ref.OriginEnergy; got != want {
		t.Errorf("origin energy: wire %v, in-process %v", got, want)
	}
	for r := 0; r < cfg.Ranks; r++ {
		f, err := os.Open(final(r))
		if err != nil {
			t.Fatalf("rank %d final state: %v", r, err)
		}
		got, meta, err := checkpoint.LoadRank(f)
		f.Close()
		if err != nil {
			t.Fatalf("rank %d final state: %v", r, err)
		}
		if meta.Rank != r || meta.Ranks != cfg.Ranks {
			t.Fatalf("rank %d blob labeled %d/%d", r, meta.Rank, meta.Ranks)
		}
		if !domainsEqual(doms[r], got) {
			t.Errorf("rank %d: wire state differs from in-process state", r)
		}
	}
}

// TestWireSurvivesFaults: drop/dup/reorder injection composes with the
// socket transport unchanged, and the recovered run still lands on the
// fault-free answer.
func TestWireSurvivesFaults(t *testing.T) {
	cfg := Config{
		Nx: 4, Ny: 4, NzPerRank: 4, Ranks: 2,
		NumReg: 3, Balance: 1, Cost: 1, MaxIterations: 12,
	}
	ref, err := Run(cfg)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	plan, err := comm.ParseFaultPlan("drop=0.05,dup=0.05,reorder=0.1", 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	results := runWireFabric(t, cfg, func(r int) WireOptions { return WireOptions{} })
	if results[0].TotalEnergy != ref.TotalEnergy {
		t.Errorf("faulty wire run: total energy %v, want %v",
			results[0].TotalEnergy, ref.TotalEnergy)
	}
}

// TestWireCheckpointRestore: a relaunched fabric (AttemptsTaken > 0)
// restores every rank from the newest fully-committed epoch in the
// shared directory and converges to the uninterrupted answer.
func TestWireCheckpointRestore(t *testing.T) {
	cfg := Config{
		Nx: 4, Ny: 4, NzPerRank: 4, Ranks: 2,
		NumReg: 3, Balance: 1, Cost: 1, MaxIterations: 16,
		CheckpointEvery: 4,
	}
	ref, err := Run(cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	dir := t.TempDir()
	// Attempt 0: run only half way, leaving committed checkpoints behind
	// (the interrupted first life of the fabric).
	half := cfg
	half.MaxIterations = 8
	runWireFabric(t, half, func(r int) WireOptions {
		return WireOptions{CheckpointDir: dir}
	})

	// Attempt 1: the "relaunch" resumes from epoch 8 and finishes.
	results := runWireFabric(t, cfg, func(r int) WireOptions {
		return WireOptions{CheckpointDir: dir, AttemptsTaken: 1}
	})
	if results[0].TotalEnergy != ref.TotalEnergy {
		t.Errorf("restored run: total energy %v, want %v",
			results[0].TotalEnergy, ref.TotalEnergy)
	}
	if results[0].Recoveries != 1 {
		t.Errorf("restored run reports %d recoveries, want 1", results[0].Recoveries)
	}
}

// TestFileStoreLatestCommitted: only epochs with a valid blob from every
// rank count; partial and corrupt epochs are skipped, newest first.
func TestFileStoreLatestCommitted(t *testing.T) {
	dir := t.TempDir()
	s := &fileStore{dir: dir, ranks: 2}

	if _, ok, err := s.latestCommitted(); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want none", ok, err)
	}

	blob := func(epoch, rank int) []byte {
		d := domain.NewSedov(domain.Config{EdgeElems: 2, NumReg: 1, Balance: 1, Cost: 1})
		var buf bytes.Buffer
		meta := checkpoint.RankMeta{Rank: rank, Ranks: 2, Epoch: epoch}
		if err := checkpoint.SaveRank(&buf, d, domain.BoxConfig{}, meta); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Epoch 4: fully committed. Epoch 8: rank 1 missing. Epoch 12: rank 0
	// corrupt. The newest usable epoch is 4.
	for r := 0; r < 2; r++ {
		if err := s.put(4, r, blob(4, r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.put(8, 0, blob(8, 0)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if err := s.put(12, r, blob(12, r)); err != nil {
			t.Fatal(err)
		}
	}
	corrupt := filepath.Join(dir, ckptFile(12, 0))
	raw, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(corrupt, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	epoch, ok, err := s.latestCommitted()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || epoch != 4 {
		t.Errorf("latestCommitted = %d, %v; want 4, true", epoch, ok)
	}
}

// domainsEqual is the bitwise state comparison the verifier uses,
// duplicated here over the fields the exchange protocol touches.
func domainsEqual(a, b *domain.Domain) bool {
	pairs := [][2][]float64{
		{a.X, b.X}, {a.Y, b.Y}, {a.Z, b.Z},
		{a.Xd, b.Xd}, {a.Yd, b.Yd}, {a.Zd, b.Zd},
		{a.E, b.E}, {a.P, b.P}, {a.Q, b.Q}, {a.V, b.V}, {a.SS, b.SS},
	}
	for _, pr := range pairs {
		if len(pr[0]) != len(pr[1]) {
			return false
		}
		for i := range pr[0] {
			if pr[0][i] != pr[1][i] {
				return false
			}
		}
	}
	return a.Time == b.Time && a.Cycle == b.Cycle
}
