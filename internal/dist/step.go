package dist

import (
	"lulesh/internal/comm"
	"lulesh/internal/domain"
	"lulesh/internal/kernels"
	"lulesh/internal/omp"
)

// The per-iteration protocol, in both exchange schedules. Helper methods
// operate on index ranges so the overlapped schedule can run boundary
// planes first; both schedules execute the same arithmetic per datum.

// join is the continuation seam of the overlapped schedule: a pending
// receive whose completion gates exactly the work that depends on remote
// data. Then blocks on the receive and runs the dependent continuation —
// the single-goroutine-per-rank analogue of the paper's future.then()
// chaining (an endpoint is not safe for concurrent use, so the overlap is
// schedule-driven: everything before Then already ran while the messages
// were in flight).
type join struct {
	wait func() error
}

// Then completes the join: wait for the remote data, then run the
// dependent work.
func (j join) Then(cont func()) error {
	if err := j.wait(); err != nil {
		return err
	}
	cont()
	return nil
}

// computeForces runs the stress and hourglass element kernels for
// elements [lo, hi), filling the per-corner force arrays. In hybrid mode
// the range is split over the rank's team.
func (r *rank) computeForces(lo, hi int) {
	d := r.d
	r.rangeBlock(lo, hi, func(a, b int) {
		kernels.InitStressTerms(d, r.sigxx, r.sigyy, r.sigzz, a, b)
		kernels.IntegrateStress(d, r.sigxx, r.sigyy, r.sigzz, r.determS,
			r.fxS, r.fyS, r.fzS, a, b)
		kernels.CheckDeterm(r.determS, a, b, &r.flag)
		kernels.HourglassPrep(d, r.dvdx, r.dvdy, r.dvdz,
			r.x8n, r.y8n, r.z8n, r.determH, 0, a, b, &r.flag)
		if d.Par.HGCoef > 0 {
			kernels.FBHourglass(d, r.dvdx, r.dvdy, r.dvdz,
				r.x8n, r.y8n, r.z8n, r.determH, d.Par.HGCoef, 0, a, b,
				r.fxH, r.fyH, r.fzH)
		}
	})
}

// gatherForces sums corner forces into nodal forces for nodes [lo, hi).
func (r *rank) gatherForces(lo, hi int) {
	d := r.d
	r.rangeBlock(lo, hi, func(a, b int) {
		kernels.GatherCornerForces(d, r.fxS, r.fyS, r.fzS, a, b, false)
		if d.Par.HGCoef > 0 {
			kernels.GatherCornerForces(d, r.fxH, r.fyH, r.fzH, a, b, true)
		}
	})
}

// sendBoundaryForces transmits the shared-plane nodal forces to the
// neighbours (LULESH's CommSend for the SBN phase).
func (r *rank) sendBoundaryForces() {
	d := r.d
	if r.hasLower() {
		copy(r.packX, d.Fx[:r.planeN])
		copy(r.packY, d.Fy[:r.planeN])
		copy(r.packZ, d.Fz[:r.planeN])
		r.ep.Send(r.id-1, comm.TagForceX, r.packX)
		r.ep.Send(r.id-1, comm.TagForceY, r.packY)
		r.ep.Send(r.id-1, comm.TagForceZ, r.packZ)
	}
	if r.hasUpper() {
		base := r.upperNodeBase()
		copy(r.packX, d.Fx[base:])
		copy(r.packY, d.Fy[base:])
		copy(r.packZ, d.Fz[base:])
		r.ep.Send(r.id+1, comm.TagForceX, r.packX)
		r.ep.Send(r.id+1, comm.TagForceY, r.packY)
		r.ep.Send(r.id+1, comm.TagForceZ, r.packZ)
	}
}

// recvBoundaryForces receives the neighbours' shared-plane forces and sums
// them into the local planes (LULESH's CommSBN: sum boundary nodes). On
// the fault-tolerant fabric each receive runs under the exchange deadline;
// a peer that stays silent past the retry budget surfaces as an error.
func (r *rank) recvBoundaryForces() error {
	d := r.d
	if r.hasLower() {
		fx, err := r.ep.RecvDeadline(r.id-1, comm.TagForceX)
		if err != nil {
			return err
		}
		fy, err := r.ep.RecvDeadline(r.id-1, comm.TagForceY)
		if err != nil {
			return err
		}
		fz, err := r.ep.RecvDeadline(r.id-1, comm.TagForceZ)
		if err != nil {
			return err
		}
		for i := 0; i < r.planeN; i++ {
			d.Fx[i] += fx[i]
			d.Fy[i] += fy[i]
			d.Fz[i] += fz[i]
		}
	}
	if r.hasUpper() {
		base := r.upperNodeBase()
		fx, err := r.ep.RecvDeadline(r.id+1, comm.TagForceX)
		if err != nil {
			return err
		}
		fy, err := r.ep.RecvDeadline(r.id+1, comm.TagForceY)
		if err != nil {
			return err
		}
		fz, err := r.ep.RecvDeadline(r.id+1, comm.TagForceZ)
		if err != nil {
			return err
		}
		for i := 0; i < r.planeN; i++ {
			d.Fx[base+i] += fx[i]
			d.Fy[base+i] += fy[i]
			d.Fz[base+i] += fz[i]
		}
	}
	return nil
}

// sendBoundaryForcesCoalesced is sendBoundaryForces with the three force
// planes packed into a single Fx|Fy|Fz frame per peer (TagForces): one
// message per (peer, direction) instead of three.
func (r *rank) sendBoundaryForcesCoalesced() {
	d := r.d
	pn := r.planeN
	pack := func(base int) {
		copy(r.packCoal[0:pn], d.Fx[base:base+pn])
		copy(r.packCoal[pn:2*pn], d.Fy[base:base+pn])
		copy(r.packCoal[2*pn:3*pn], d.Fz[base:base+pn])
	}
	if r.hasLower() {
		pack(0)
		r.ep.Send(r.id-1, comm.TagForces, r.packCoal)
	}
	if r.hasUpper() {
		pack(r.upperNodeBase())
		r.ep.Send(r.id+1, comm.TagForces, r.packCoal)
	}
}

// recvBoundaryForcesCoalesced receives one TagForces frame per peer and
// sums the three packed planes into the local boundary nodes. The sum
// order per node is identical to the three-message path, so the schedules
// stay bitwise-comparable.
func (r *rank) recvBoundaryForcesCoalesced() error {
	d := r.d
	pn := r.planeN
	unpack := func(peer, base int) error {
		f, err := r.ep.RecvDeadline(peer, comm.TagForces)
		if err != nil {
			return err
		}
		for i := 0; i < pn; i++ {
			d.Fx[base+i] += f[i]
			d.Fy[base+i] += f[pn+i]
			d.Fz[base+i] += f[2*pn+i]
		}
		return nil
	}
	if r.hasLower() {
		if err := unpack(r.id-1, 0); err != nil {
			return err
		}
	}
	if r.hasUpper() {
		if err := unpack(r.id+1, r.upperNodeBase()); err != nil {
			return err
		}
	}
	return nil
}

// sendForces / recvForces dispatch the force exchange to the configured
// framing (per-axis messages, or one coalesced frame per peer).
func (r *rank) sendForces() {
	if r.coalesce {
		r.sendBoundaryForcesCoalesced()
		return
	}
	r.sendBoundaryForces()
}

func (r *rank) recvForces() error {
	if r.coalesce {
		return r.recvBoundaryForcesCoalesced()
	}
	return r.recvBoundaryForces()
}

// nodalUpdate integrates acceleration, boundary conditions, velocity and
// position for all nodes.
func (r *rank) nodalUpdate() {
	d := r.d
	nn := d.NumNode()
	delt := d.Deltatime
	r.rangeBlock(0, nn, func(a, b int) { kernels.CalcAcceleration(d, a, b) })
	r.rangeBlock(0, len(d.Mesh.SymmX), func(a, b int) {
		kernels.ApplyAccelBCList(d, d.Mesh.SymmX, 0, a, b)
	})
	r.rangeBlock(0, len(d.Mesh.SymmY), func(a, b int) {
		kernels.ApplyAccelBCList(d, d.Mesh.SymmY, 1, a, b)
	})
	r.rangeBlock(0, len(d.Mesh.SymmZ), func(a, b int) {
		kernels.ApplyAccelBCList(d, d.Mesh.SymmZ, 2, a, b)
	})
	r.rangeBlock(0, nn, func(a, b int) {
		kernels.CalcVelocity(d, delt, d.Par.UCut, a, b)
	})
	r.rangeBlock(0, nn, func(a, b int) { kernels.CalcPosition(d, delt, a, b) })
}

// nodalChain runs the post-force nodal integration — acceleration,
// symmetry boundary conditions, velocity, position — over a set of node
// spans with the matching pre-split symmetry lists. Every kernel in the
// chain is per-node, so running it over the boundary spans and the
// interior span separately is bitwise identical to one full-range pass;
// the overlapped schedule uses that to start the interior chain before
// the remote force sums (which only touch boundary-plane nodes) have
// arrived.
func (r *rank) nodalChain(spans []domain.Span, symmX, symmY, symmZ []int32) {
	d := r.d
	delt := d.Deltatime
	for _, s := range spans {
		r.rangeBlock(s.Lo, s.Hi, func(a, b int) { kernels.CalcAcceleration(d, a, b) })
	}
	r.rangeBlock(0, len(symmX), func(a, b int) {
		kernels.ApplyAccelBCList(d, symmX, 0, a, b)
	})
	r.rangeBlock(0, len(symmY), func(a, b int) {
		kernels.ApplyAccelBCList(d, symmY, 1, a, b)
	})
	r.rangeBlock(0, len(symmZ), func(a, b int) {
		kernels.ApplyAccelBCList(d, symmZ, 2, a, b)
	})
	for _, s := range spans {
		r.rangeBlock(s.Lo, s.Hi, func(a, b int) {
			kernels.CalcVelocity(d, delt, d.Par.UCut, a, b)
		})
	}
	for _, s := range spans {
		r.rangeBlock(s.Lo, s.Hi, func(a, b int) { kernels.CalcPosition(d, delt, a, b) })
	}
}

// kinematicsRange runs the element kinematics and monotonic-Q gradients
// for elements [lo, hi).
func (r *rank) kinematicsRange(lo, hi int) {
	d := r.d
	r.rangeBlock(lo, hi, func(a, b int) {
		kernels.CalcKinematics(d, d.Deltatime, a, b)
		kernels.CalcStrainRate(d, a, b, &r.flag)
		kernels.MonoQGradients(d, a, b)
	})
}

// sendBoundaryGradients transmits the boundary element planes' delv
// gradients (LULESH's CommMonoQ).
func (r *rank) sendBoundaryGradients() {
	d := r.d
	ne := d.NumElem()
	if r.hasLower() {
		r.ep.Send(r.id-1, comm.TagDelvXi, d.DelvXi[:r.planeE])
		r.ep.Send(r.id-1, comm.TagDelvEta, d.DelvEta[:r.planeE])
		r.ep.Send(r.id-1, comm.TagDelvZeta, d.DelvZeta[:r.planeE])
	}
	if r.hasUpper() {
		base := ne - r.planeE
		r.ep.Send(r.id+1, comm.TagDelvXi, d.DelvXi[base:ne])
		r.ep.Send(r.id+1, comm.TagDelvEta, d.DelvEta[base:ne])
		r.ep.Send(r.id+1, comm.TagDelvZeta, d.DelvZeta[base:ne])
	}
}

// recvBoundaryGradients fills the ghost gradient slots with the
// neighbours' boundary planes, under the exchange deadline on the
// fault-tolerant fabric.
func (r *rank) recvBoundaryGradients() error {
	d := r.d
	m := d.Mesh
	if r.hasLower() {
		xi, err := r.ep.RecvDeadline(r.id-1, comm.TagDelvXi)
		if err != nil {
			return err
		}
		eta, err := r.ep.RecvDeadline(r.id-1, comm.TagDelvEta)
		if err != nil {
			return err
		}
		zeta, err := r.ep.RecvDeadline(r.id-1, comm.TagDelvZeta)
		if err != nil {
			return err
		}
		copy(d.DelvXi[m.GhostZMin:m.GhostZMin+r.planeE], xi)
		copy(d.DelvEta[m.GhostZMin:m.GhostZMin+r.planeE], eta)
		copy(d.DelvZeta[m.GhostZMin:m.GhostZMin+r.planeE], zeta)
	}
	if r.hasUpper() {
		xi, err := r.ep.RecvDeadline(r.id+1, comm.TagDelvXi)
		if err != nil {
			return err
		}
		eta, err := r.ep.RecvDeadline(r.id+1, comm.TagDelvEta)
		if err != nil {
			return err
		}
		zeta, err := r.ep.RecvDeadline(r.id+1, comm.TagDelvZeta)
		if err != nil {
			return err
		}
		copy(d.DelvXi[m.GhostZMax:m.GhostZMax+r.planeE], xi)
		copy(d.DelvEta[m.GhostZMax:m.GhostZMax+r.planeE], eta)
		copy(d.DelvZeta[m.GhostZMax:m.GhostZMax+r.planeE], zeta)
	}
	return nil
}

// sendBoundaryGradientsCoalesced packs the three gradient planes into a
// single DelvXi|DelvEta|DelvZeta frame per peer (TagDelv).
func (r *rank) sendBoundaryGradientsCoalesced() {
	d := r.d
	ne := d.NumElem()
	pe := r.planeE
	pack := func(base int) []float64 {
		frame := r.packCoal[:3*pe]
		copy(frame[0:pe], d.DelvXi[base:base+pe])
		copy(frame[pe:2*pe], d.DelvEta[base:base+pe])
		copy(frame[2*pe:3*pe], d.DelvZeta[base:base+pe])
		return frame
	}
	if r.hasLower() {
		r.ep.Send(r.id-1, comm.TagDelv, pack(0))
	}
	if r.hasUpper() {
		r.ep.Send(r.id+1, comm.TagDelv, pack(ne-pe))
	}
}

// recvBoundaryGradientsCoalesced receives one TagDelv frame per peer and
// scatters the packed planes into the ghost gradient slots.
func (r *rank) recvBoundaryGradientsCoalesced() error {
	d := r.d
	m := d.Mesh
	pe := r.planeE
	unpack := func(peer, ghost int) error {
		g, err := r.ep.RecvDeadline(peer, comm.TagDelv)
		if err != nil {
			return err
		}
		copy(d.DelvXi[ghost:ghost+pe], g[0:pe])
		copy(d.DelvEta[ghost:ghost+pe], g[pe:2*pe])
		copy(d.DelvZeta[ghost:ghost+pe], g[2*pe:3*pe])
		return nil
	}
	if r.hasLower() {
		if err := unpack(r.id-1, m.GhostZMin); err != nil {
			return err
		}
	}
	if r.hasUpper() {
		if err := unpack(r.id+1, m.GhostZMax); err != nil {
			return err
		}
	}
	return nil
}

// sendGradients / recvGradients dispatch the gradient exchange to the
// configured framing.
func (r *rank) sendGradients() {
	if r.coalesce {
		r.sendBoundaryGradientsCoalesced()
		return
	}
	r.sendBoundaryGradients()
}

func (r *rank) recvGradients() error {
	if r.coalesce {
		return r.recvBoundaryGradientsCoalesced()
	}
	return r.recvBoundaryGradients()
}

// materialsAndConstraints runs the region Q, EOS, volume commit and local
// time-constraint minima — entirely rank-local. Error flags raised here
// are reported by the caller after the step: unlike the single-domain
// backends, a distributed rank must never abandon the exchange protocol
// mid-iteration, or its peers would deadlock or read mismatched tags; the
// failure travels through the dt reduction instead.
func (r *rank) materialsAndConstraints() error {
	for _, regList := range r.d.Regions.ElemList {
		r.monoQLists(regList)
	}
	return r.materialsTail()
}

// monoQLists applies the region monotonic-Q kernel over one element list
// (boundary sublist, interior sublist, or a full region list — the kernel
// is per-element, so any partition of a region list computes identical
// values).
func (r *rank) monoQLists(regList []int32) {
	d := r.d
	r.rangeBlock(0, len(regList), func(a, b int) {
		kernels.MonoQRegion(d, regList, a, b)
	})
}

// materialsTail is everything after the region Q: the q-stop check, EOS,
// volume commit and local time-constraint minima — entirely rank-local,
// so both schedules share it verbatim.
func (r *rank) materialsTail() error {
	d := r.d
	ne := d.NumElem()
	p := &d.Par

	r.rangeBlock(0, ne, func(a, b int) { kernels.QStopCheck(d, a, b, &r.flag) })

	r.rangeBlock(0, ne, func(a, b int) {
		kernels.CopyVnewc(d, r.vnewc, a, b)
		if p.EOSvMin != 0 {
			kernels.ClampVnewcLow(r.vnewc, p.EOSvMin, a, b)
		}
		if p.EOSvMax != 0 {
			kernels.ClampVnewcHigh(r.vnewc, p.EOSvMax, a, b)
		}
		kernels.CheckVBounds(d, a, b, &r.flag)
	})
	for reg, regList := range d.Regions.ElemList {
		rep := d.Regions.Rep(reg)
		r.evalEOSRegion(regList, rep)
	}
	r.rangeBlock(0, ne, func(a, b int) { kernels.UpdateVolumes(d, p.VCut, a, b) })

	d.Dtcourant = kernels.HugeDt
	d.Dthydro = kernels.HugeDt
	for _, regList := range d.Regions.ElemList {
		dtc, dth := r.constraintMins(regList)
		if dtc < d.Dtcourant {
			d.Dtcourant = dtc
		}
		if dth < d.Dthydro {
			d.Dthydro = dth
		}
	}
	return nil
}

// evalEOSRegion evaluates one region's EOS. In hybrid mode the region list
// is partitioned across the team, each thread with its own scratch — the
// partitioned evaluation is value-identical to the whole-region one.
func (r *rank) evalEOSRegion(regList []int32, rep int) {
	if r.pool == nil {
		kernels.EvalEOS(r.d, r.vnewc, regList, r.scratch, rep, 0, len(regList))
		return
	}
	n := len(regList)
	nth := r.pool.Threads()
	r.pool.Parallel(func(tid int) {
		lo, hi := omp.StaticRange(tid, nth, n)
		if lo < hi {
			kernels.EvalEOS(r.d, r.vnewc, regList, r.scratches[tid], rep, lo, hi)
		}
	})
}

// constraintMins folds the region's time constraints, splitting across the
// team in hybrid mode (min is exact, so the split cannot change the value).
func (r *rank) constraintMins(regList []int32) (float64, float64) {
	if r.pool == nil {
		return kernels.CourantConstraint(r.d, regList, 0, len(regList)),
			kernels.HydroConstraint(r.d, regList, 0, len(regList))
	}
	n := len(regList)
	nth := r.pool.Threads()
	r.pool.Parallel(func(tid int) {
		lo, hi := omp.StaticRange(tid, nth, n)
		r.dtcPart[tid] = kernels.CourantConstraint(r.d, regList, lo, hi)
		r.dthPart[tid] = kernels.HydroConstraint(r.d, regList, lo, hi)
	})
	dtc, dth := kernels.HugeDt, kernels.HugeDt
	for tid := 0; tid < nth; tid++ {
		if r.dtcPart[tid] < dtc {
			dtc = r.dtcPart[tid]
		}
		if r.dthPart[tid] < dth {
			dth = r.dthPart[tid]
		}
	}
	return dtc, dth
}

// stepSynchronous is the MPI-style schedule: compute a full phase, then
// block on the exchange at the phase boundary.
func (r *rank) stepSynchronous() error {
	d := r.d
	ne := d.NumElem()
	nn := d.NumNode()
	r.flag.Reset()

	// LagrangeNodal.
	r.rangeBlock(0, nn, func(a, b int) { kernels.ZeroForces(d, a, b) })
	r.computeForces(0, ne)
	r.gatherForces(0, nn)
	r.sendForces()
	if err := r.recvForces(); err != nil { // blocking phase boundary
		return err
	}
	r.nodalUpdate()

	// LagrangeElements.
	r.kinematicsRange(0, ne)
	r.sendGradients()
	if err := r.recvGradients(); err != nil { // blocking phase boundary
		return err
	}

	if err := r.materialsAndConstraints(); err != nil {
		return err
	}
	return r.flag.Err()
}

// stepOverlapped is the asynchronous schedule: boundary planes are
// computed and sent first, interior work overlaps the message flight, and
// each receive is a join placed directly in front of the work that
// actually reads remote data — nothing else waits on it.
//
// The force join gates only the boundary nodal chain: the remote force
// sums land exclusively on the shared node planes, so the interior
// acceleration/BC/velocity/position chain runs while the frames are in
// flight. The gradient join gates only the boundary-plane region Q: the
// ghost gradient slots are read exclusively by elements on the
// communicated faces, so the interior region Q overlaps that exchange
// too. Every kernel involved is per-datum, so the split execution stays
// bitwise identical to the synchronous schedule — luleshverify asserts
// it, per scenario, over the real wire.
func (r *rank) stepOverlapped() error {
	d := r.d
	nn := d.NumNode()
	r.flag.Reset()

	r.rangeBlock(0, nn, func(a, b int) { kernels.ZeroForces(d, a, b) })

	// Boundary element planes first so their nodal planes can be posted
	// while the interior computes.
	for _, s := range r.elemPlan.Boundary {
		r.computeForces(s.Lo, s.Hi)
	}
	for _, s := range r.nodePlan.Boundary {
		r.gatherForces(s.Lo, s.Hi)
	}
	r.sendForces()
	forces := join{wait: r.recvForces}

	// Interior force work and the full interior nodal chain overlap the
	// force frames.
	if s := r.elemPlan.Interior; !s.Empty() {
		r.computeForces(s.Lo, s.Hi)
	}
	if s := r.nodePlan.Interior; !s.Empty() {
		r.gatherForces(s.Lo, s.Hi)
		r.nodalChain([]domain.Span{s}, r.symmXI, r.symmYI, r.symmZI)
	}
	if err := forces.Then(func() {
		r.nodalChain(r.nodePlan.Boundary, r.symmXB, r.symmYB, r.symmZB)
	}); err != nil {
		return err
	}

	// Boundary kinematics/gradients first, post, interior overlaps — and
	// the interior region Q runs before the ghost slots have arrived.
	for _, s := range r.elemPlan.Boundary {
		r.kinematicsRange(s.Lo, s.Hi)
	}
	r.sendGradients()
	grads := join{wait: r.recvGradients}

	if s := r.elemPlan.Interior; !s.Empty() {
		r.kinematicsRange(s.Lo, s.Hi)
	}
	for _, regList := range r.regInterior {
		r.monoQLists(regList)
	}
	if err := grads.Then(func() {
		for _, regList := range r.regBoundary {
			r.monoQLists(regList)
		}
	}); err != nil {
		return err
	}

	if err := r.materialsTail(); err != nil {
		return err
	}
	return r.flag.Err()
}
