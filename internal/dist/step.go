package dist

import (
	"lulesh/internal/comm"
	"lulesh/internal/kernels"
	"lulesh/internal/omp"
)

// The per-iteration protocol, in both exchange schedules. Helper methods
// operate on index ranges so the overlapped schedule can run boundary
// planes first; both schedules execute the same arithmetic per datum.

// computeForces runs the stress and hourglass element kernels for
// elements [lo, hi), filling the per-corner force arrays. In hybrid mode
// the range is split over the rank's team.
func (r *rank) computeForces(lo, hi int) {
	d := r.d
	r.rangeBlock(lo, hi, func(a, b int) {
		kernels.InitStressTerms(d, r.sigxx, r.sigyy, r.sigzz, a, b)
		kernels.IntegrateStress(d, r.sigxx, r.sigyy, r.sigzz, r.determS,
			r.fxS, r.fyS, r.fzS, a, b)
		kernels.CheckDeterm(r.determS, a, b, &r.flag)
		kernels.HourglassPrep(d, r.dvdx, r.dvdy, r.dvdz,
			r.x8n, r.y8n, r.z8n, r.determH, 0, a, b, &r.flag)
		if d.Par.HGCoef > 0 {
			kernels.FBHourglass(d, r.dvdx, r.dvdy, r.dvdz,
				r.x8n, r.y8n, r.z8n, r.determH, d.Par.HGCoef, 0, a, b,
				r.fxH, r.fyH, r.fzH)
		}
	})
}

// gatherForces sums corner forces into nodal forces for nodes [lo, hi).
func (r *rank) gatherForces(lo, hi int) {
	d := r.d
	r.rangeBlock(lo, hi, func(a, b int) {
		kernels.GatherCornerForces(d, r.fxS, r.fyS, r.fzS, a, b, false)
		if d.Par.HGCoef > 0 {
			kernels.GatherCornerForces(d, r.fxH, r.fyH, r.fzH, a, b, true)
		}
	})
}

// sendBoundaryForces transmits the shared-plane nodal forces to the
// neighbours (LULESH's CommSend for the SBN phase).
func (r *rank) sendBoundaryForces() {
	d := r.d
	if r.hasLower() {
		copy(r.packX, d.Fx[:r.planeN])
		copy(r.packY, d.Fy[:r.planeN])
		copy(r.packZ, d.Fz[:r.planeN])
		r.ep.Send(r.id-1, comm.TagForceX, r.packX)
		r.ep.Send(r.id-1, comm.TagForceY, r.packY)
		r.ep.Send(r.id-1, comm.TagForceZ, r.packZ)
	}
	if r.hasUpper() {
		base := r.upperNodeBase()
		copy(r.packX, d.Fx[base:])
		copy(r.packY, d.Fy[base:])
		copy(r.packZ, d.Fz[base:])
		r.ep.Send(r.id+1, comm.TagForceX, r.packX)
		r.ep.Send(r.id+1, comm.TagForceY, r.packY)
		r.ep.Send(r.id+1, comm.TagForceZ, r.packZ)
	}
}

// recvBoundaryForces receives the neighbours' shared-plane forces and sums
// them into the local planes (LULESH's CommSBN: sum boundary nodes). On
// the fault-tolerant fabric each receive runs under the exchange deadline;
// a peer that stays silent past the retry budget surfaces as an error.
func (r *rank) recvBoundaryForces() error {
	d := r.d
	if r.hasLower() {
		fx, err := r.ep.RecvDeadline(r.id-1, comm.TagForceX)
		if err != nil {
			return err
		}
		fy, err := r.ep.RecvDeadline(r.id-1, comm.TagForceY)
		if err != nil {
			return err
		}
		fz, err := r.ep.RecvDeadline(r.id-1, comm.TagForceZ)
		if err != nil {
			return err
		}
		for i := 0; i < r.planeN; i++ {
			d.Fx[i] += fx[i]
			d.Fy[i] += fy[i]
			d.Fz[i] += fz[i]
		}
	}
	if r.hasUpper() {
		base := r.upperNodeBase()
		fx, err := r.ep.RecvDeadline(r.id+1, comm.TagForceX)
		if err != nil {
			return err
		}
		fy, err := r.ep.RecvDeadline(r.id+1, comm.TagForceY)
		if err != nil {
			return err
		}
		fz, err := r.ep.RecvDeadline(r.id+1, comm.TagForceZ)
		if err != nil {
			return err
		}
		for i := 0; i < r.planeN; i++ {
			d.Fx[base+i] += fx[i]
			d.Fy[base+i] += fy[i]
			d.Fz[base+i] += fz[i]
		}
	}
	return nil
}

// nodalUpdate integrates acceleration, boundary conditions, velocity and
// position for all nodes.
func (r *rank) nodalUpdate() {
	d := r.d
	nn := d.NumNode()
	delt := d.Deltatime
	r.rangeBlock(0, nn, func(a, b int) { kernels.CalcAcceleration(d, a, b) })
	r.rangeBlock(0, len(d.Mesh.SymmX), func(a, b int) {
		kernels.ApplyAccelBCList(d, d.Mesh.SymmX, 0, a, b)
	})
	r.rangeBlock(0, len(d.Mesh.SymmY), func(a, b int) {
		kernels.ApplyAccelBCList(d, d.Mesh.SymmY, 1, a, b)
	})
	r.rangeBlock(0, len(d.Mesh.SymmZ), func(a, b int) {
		kernels.ApplyAccelBCList(d, d.Mesh.SymmZ, 2, a, b)
	})
	r.rangeBlock(0, nn, func(a, b int) {
		kernels.CalcVelocity(d, delt, d.Par.UCut, a, b)
	})
	r.rangeBlock(0, nn, func(a, b int) { kernels.CalcPosition(d, delt, a, b) })
}

// kinematicsRange runs the element kinematics and monotonic-Q gradients
// for elements [lo, hi).
func (r *rank) kinematicsRange(lo, hi int) {
	d := r.d
	r.rangeBlock(lo, hi, func(a, b int) {
		kernels.CalcKinematics(d, d.Deltatime, a, b)
		kernels.CalcStrainRate(d, a, b, &r.flag)
		kernels.MonoQGradients(d, a, b)
	})
}

// sendBoundaryGradients transmits the boundary element planes' delv
// gradients (LULESH's CommMonoQ).
func (r *rank) sendBoundaryGradients() {
	d := r.d
	ne := d.NumElem()
	if r.hasLower() {
		r.ep.Send(r.id-1, comm.TagDelvXi, d.DelvXi[:r.planeE])
		r.ep.Send(r.id-1, comm.TagDelvEta, d.DelvEta[:r.planeE])
		r.ep.Send(r.id-1, comm.TagDelvZeta, d.DelvZeta[:r.planeE])
	}
	if r.hasUpper() {
		base := ne - r.planeE
		r.ep.Send(r.id+1, comm.TagDelvXi, d.DelvXi[base:ne])
		r.ep.Send(r.id+1, comm.TagDelvEta, d.DelvEta[base:ne])
		r.ep.Send(r.id+1, comm.TagDelvZeta, d.DelvZeta[base:ne])
	}
}

// recvBoundaryGradients fills the ghost gradient slots with the
// neighbours' boundary planes, under the exchange deadline on the
// fault-tolerant fabric.
func (r *rank) recvBoundaryGradients() error {
	d := r.d
	m := d.Mesh
	if r.hasLower() {
		xi, err := r.ep.RecvDeadline(r.id-1, comm.TagDelvXi)
		if err != nil {
			return err
		}
		eta, err := r.ep.RecvDeadline(r.id-1, comm.TagDelvEta)
		if err != nil {
			return err
		}
		zeta, err := r.ep.RecvDeadline(r.id-1, comm.TagDelvZeta)
		if err != nil {
			return err
		}
		copy(d.DelvXi[m.GhostZMin:m.GhostZMin+r.planeE], xi)
		copy(d.DelvEta[m.GhostZMin:m.GhostZMin+r.planeE], eta)
		copy(d.DelvZeta[m.GhostZMin:m.GhostZMin+r.planeE], zeta)
	}
	if r.hasUpper() {
		xi, err := r.ep.RecvDeadline(r.id+1, comm.TagDelvXi)
		if err != nil {
			return err
		}
		eta, err := r.ep.RecvDeadline(r.id+1, comm.TagDelvEta)
		if err != nil {
			return err
		}
		zeta, err := r.ep.RecvDeadline(r.id+1, comm.TagDelvZeta)
		if err != nil {
			return err
		}
		copy(d.DelvXi[m.GhostZMax:m.GhostZMax+r.planeE], xi)
		copy(d.DelvEta[m.GhostZMax:m.GhostZMax+r.planeE], eta)
		copy(d.DelvZeta[m.GhostZMax:m.GhostZMax+r.planeE], zeta)
	}
	return nil
}

// materialsAndConstraints runs the region Q, EOS, volume commit and local
// time-constraint minima — entirely rank-local. Error flags raised here
// are reported by the caller after the step: unlike the single-domain
// backends, a distributed rank must never abandon the exchange protocol
// mid-iteration, or its peers would deadlock or read mismatched tags; the
// failure travels through the dt reduction instead.
func (r *rank) materialsAndConstraints() error {
	d := r.d
	ne := d.NumElem()
	p := &d.Par

	for _, regList := range d.Regions.ElemList {
		regList := regList
		r.rangeBlock(0, len(regList), func(a, b int) {
			kernels.MonoQRegion(d, regList, a, b)
		})
	}
	r.rangeBlock(0, ne, func(a, b int) { kernels.QStopCheck(d, a, b, &r.flag) })

	r.rangeBlock(0, ne, func(a, b int) {
		kernels.CopyVnewc(d, r.vnewc, a, b)
		if p.EOSvMin != 0 {
			kernels.ClampVnewcLow(r.vnewc, p.EOSvMin, a, b)
		}
		if p.EOSvMax != 0 {
			kernels.ClampVnewcHigh(r.vnewc, p.EOSvMax, a, b)
		}
		kernels.CheckVBounds(d, a, b, &r.flag)
	})
	for reg, regList := range d.Regions.ElemList {
		rep := d.Regions.Rep(reg)
		r.evalEOSRegion(regList, rep)
	}
	r.rangeBlock(0, ne, func(a, b int) { kernels.UpdateVolumes(d, p.VCut, a, b) })

	d.Dtcourant = kernels.HugeDt
	d.Dthydro = kernels.HugeDt
	for _, regList := range d.Regions.ElemList {
		dtc, dth := r.constraintMins(regList)
		if dtc < d.Dtcourant {
			d.Dtcourant = dtc
		}
		if dth < d.Dthydro {
			d.Dthydro = dth
		}
	}
	return nil
}

// evalEOSRegion evaluates one region's EOS. In hybrid mode the region list
// is partitioned across the team, each thread with its own scratch — the
// partitioned evaluation is value-identical to the whole-region one.
func (r *rank) evalEOSRegion(regList []int32, rep int) {
	if r.pool == nil {
		kernels.EvalEOS(r.d, r.vnewc, regList, r.scratch, rep, 0, len(regList))
		return
	}
	n := len(regList)
	nth := r.pool.Threads()
	r.pool.Parallel(func(tid int) {
		lo, hi := omp.StaticRange(tid, nth, n)
		if lo < hi {
			kernels.EvalEOS(r.d, r.vnewc, regList, r.scratches[tid], rep, lo, hi)
		}
	})
}

// constraintMins folds the region's time constraints, splitting across the
// team in hybrid mode (min is exact, so the split cannot change the value).
func (r *rank) constraintMins(regList []int32) (float64, float64) {
	if r.pool == nil {
		return kernels.CourantConstraint(r.d, regList, 0, len(regList)),
			kernels.HydroConstraint(r.d, regList, 0, len(regList))
	}
	n := len(regList)
	nth := r.pool.Threads()
	r.pool.Parallel(func(tid int) {
		lo, hi := omp.StaticRange(tid, nth, n)
		r.dtcPart[tid] = kernels.CourantConstraint(r.d, regList, lo, hi)
		r.dthPart[tid] = kernels.HydroConstraint(r.d, regList, lo, hi)
	})
	dtc, dth := kernels.HugeDt, kernels.HugeDt
	for tid := 0; tid < nth; tid++ {
		if r.dtcPart[tid] < dtc {
			dtc = r.dtcPart[tid]
		}
		if r.dthPart[tid] < dth {
			dth = r.dthPart[tid]
		}
	}
	return dtc, dth
}

// stepSynchronous is the MPI-style schedule: compute a full phase, then
// block on the exchange at the phase boundary.
func (r *rank) stepSynchronous() error {
	d := r.d
	ne := d.NumElem()
	nn := d.NumNode()
	r.flag.Reset()

	// LagrangeNodal.
	r.rangeBlock(0, nn, func(a, b int) { kernels.ZeroForces(d, a, b) })
	r.computeForces(0, ne)
	r.gatherForces(0, nn)
	r.sendBoundaryForces()
	if err := r.recvBoundaryForces(); err != nil { // blocking phase boundary
		return err
	}
	r.nodalUpdate()

	// LagrangeElements.
	r.kinematicsRange(0, ne)
	r.sendBoundaryGradients()
	if err := r.recvBoundaryGradients(); err != nil { // blocking phase boundary
		return err
	}

	if err := r.materialsAndConstraints(); err != nil {
		return err
	}
	return r.flag.Err()
}

// stepOverlapped is the asynchronous schedule: boundary planes are
// computed and sent first, the interior overlaps the message flight, and
// receives happen as late as the data dependency allows.
func (r *rank) stepOverlapped() error {
	d := r.d
	ne := d.NumElem()
	nn := d.NumNode()
	pe, pn := r.planeE, r.planeN
	r.flag.Reset()

	r.rangeBlock(0, nn, func(a, b int) { kernels.ZeroForces(d, a, b) })

	// Boundary element planes first so their nodal planes can be sent
	// while the interior computes.
	lowE, highE := 0, ne
	if r.hasLower() {
		r.computeForces(0, pe)
		lowE = pe
	}
	if r.hasUpper() {
		r.computeForces(ne-pe, ne)
		highE = ne - pe
	}
	if r.hasLower() {
		r.gatherForces(0, pn)
	}
	if r.hasUpper() {
		r.gatherForces(nn-pn, nn)
	}
	r.sendBoundaryForces()

	// Interior overlaps the force messages.
	if lowE < highE {
		r.computeForces(lowE, highE)
	}
	lo, hi := 0, nn
	if r.hasLower() {
		lo = pn
	}
	if r.hasUpper() {
		hi = nn - pn
	}
	if lo < hi {
		r.gatherForces(lo, hi)
	}
	if err := r.recvBoundaryForces(); err != nil {
		return err
	}
	r.nodalUpdate()

	// Boundary kinematics/gradients first, send, interior overlaps.
	lowE, highE = 0, ne
	if r.hasLower() {
		r.kinematicsRange(0, pe)
		lowE = pe
	}
	if r.hasUpper() {
		r.kinematicsRange(ne-pe, ne)
		highE = ne - pe
	}
	r.sendBoundaryGradients()
	if lowE < highE {
		r.kinematicsRange(lowE, highE)
	}
	if err := r.recvBoundaryGradients(); err != nil {
		return err
	}

	if err := r.materialsAndConstraints(); err != nil {
		return err
	}
	return r.flag.Err()
}
