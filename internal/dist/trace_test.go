package dist

import (
	"os"
	"strconv"
	"testing"
	"time"

	"lulesh/internal/perf"
)

// TestTracedRunBitwiseAndBuckets: turning tracing on must not move a
// single bit of the physics, and the fleet snapshot it produces must
// hold per-step buckets that sum to the step wall (compute is the
// clamped residual) plus paired message spans for every live rank.
func TestTracedRunBitwiseAndBuckets(t *testing.T) {
	const size = 6
	const ranks = 3
	const steps = 10
	base := Config{
		Nx: size, Ny: size, NzPerRank: size, Ranks: ranks,
		NumReg: 1, Balance: 1, Cost: 1, MaxIterations: steps,
		ThreadsPerRank: 2, // exercise the instrumented fork-join path
	}

	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Fleet != nil {
		t.Fatal("untraced run produced a fleet snapshot")
	}

	traced := base
	traced.Trace = true
	prof := perf.NewProfiler(ranks, 0)
	perf.RegisterDistPhases(prof)
	traced.Profiler = prof
	got, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}

	if got.OriginEnergy != ref.OriginEnergy || got.TotalEnergy != ref.TotalEnergy {
		t.Errorf("tracing perturbed the physics: energies (%v, %v) vs (%v, %v)",
			got.OriginEnergy, got.TotalEnergy, ref.OriginEnergy, ref.TotalEnergy)
	}
	if got.FinalTime != ref.FinalTime || got.Iterations != ref.Iterations {
		t.Errorf("tracing perturbed time stepping: %v/%d vs %v/%d",
			got.FinalTime, got.Iterations, ref.FinalTime, ref.Iterations)
	}

	fs := got.Fleet
	if fs == nil {
		t.Fatal("traced run returned no fleet snapshot")
	}
	if fs.Ranks != ranks || len(fs.Traces) != ranks {
		t.Fatalf("fleet holds %d/%d ranks, want %d", fs.Ranks, len(fs.Traces), ranks)
	}
	for r, rt := range fs.Traces {
		if rt.Dead {
			t.Fatalf("rank %d marked dead in an in-process run", r)
		}
		if rt.OffsetNs != 0 {
			t.Errorf("rank %d: in-process offset %d, want 0 (one clock)", r, rt.OffsetNs)
		}
		if len(rt.Steps) != got.Iterations {
			t.Errorf("rank %d recorded %d step buckets, want %d", r, len(rt.Steps), got.Iterations)
		}
		for _, b := range rt.Steps {
			if b.WallNs <= 0 {
				t.Fatalf("rank %d step %d: wall %d", r, b.Step, b.WallNs)
			}
			sum := b.ComputeNs + b.GhostNs + b.ReduceNs + b.IdleNs
			// Buckets sum to wall by construction; only a clamped compute
			// residual can leave a (small) gap. Accept the 5% books-balance
			// criterion per step.
			if sum > b.WallNs || float64(b.WallNs-sum) > 0.05*float64(b.WallNs)+float64(time.Millisecond) {
				t.Errorf("rank %d step %d: buckets %d vs wall %d", r, b.Step, sum, b.WallNs)
			}
		}
		// Every interior rank exchanges every step; even rank edges talk
		// both force and gradient faces, so spans must exist both ways.
		if len(rt.Sends) == 0 || len(rt.Recvs) == 0 {
			t.Errorf("rank %d: %d sends, %d recvs, want both > 0", r, len(rt.Sends), len(rt.Recvs))
		}
	}

	rep := perf.BuildStallReport(fs)
	if rep.Steps != got.Iterations || rep.Ranks != ranks {
		t.Errorf("stall report covers %d steps / %d ranks, want %d / %d",
			rep.Steps, rep.Ranks, got.Iterations, ranks)
	}
	if rep.Coverage <= 0.95 || rep.Coverage > 1.0+1e-9 {
		t.Errorf("attribution coverage %.4f, want within 5%% of 1", rep.Coverage)
	}
	if rep.HeadroomNs < 0 {
		t.Errorf("negative overlap headroom %d", rep.HeadroomNs)
	}

	// The profiler mirror saw the same steps as perf phases.
	snap := prof.Snapshot()
	if snap.Tasks == 0 {
		t.Error("profiler mirror recorded no attribution tasks")
	}

	// The merged trace renders with flow arrows and no dead ranks.
	rec, st := fs.Merge()
	if rec == nil {
		t.Fatal("merge returned no recorder")
	}
	if st.DeadRanks != 0 {
		t.Errorf("merge found %d dead ranks", st.DeadRanks)
	}
	if st.Flows == 0 {
		t.Error("merge drew no flow arrows")
	}
}

// TestDistTraceOverheadBudget gates the cross-rank tracing cost the same
// way perf's TestForEachBlockOverheadBudget gates the profiler: paired
// traced/untraced runs, interleaved order, min-of-trials. Override the
// budget with DIST_TRACE_OVERHEAD_BUDGET (percent).
func TestDistTraceOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead gate is not meaningful under -short")
	}
	if raceEnabled {
		t.Skip("race detector skews instrumentation cost")
	}
	budget := 3.0
	if s := os.Getenv("DIST_TRACE_OVERHEAD_BUDGET"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("DIST_TRACE_OVERHEAD_BUDGET=%q: %v", s, err)
		}
		budget = v
	}

	// Enough work per run that per-step instrumentation is measured
	// against real compute rather than setup noise.
	cfg := Config{
		Nx: 12, Ny: 12, NzPerRank: 12, Ranks: 2,
		NumReg: 1, Balance: 1, Cost: 1, MaxIterations: 20,
	}
	run := func(trace bool) time.Duration {
		c := cfg
		c.Trace = trace
		start := time.Now()
		if _, err := Run(c); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	run(false) // warmup: page in code and the allocator
	run(true)

	const trials = 7
	offs := make([]time.Duration, 0, trials)
	ons := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		if i%2 == 0 {
			offs = append(offs, run(false))
			ons = append(ons, run(true))
		} else {
			ons = append(ons, run(true))
			offs = append(offs, run(false))
		}
	}
	mOff, mOn := minDuration(offs), minDuration(ons)
	overhead := 100 * (float64(mOn) - float64(mOff)) / float64(mOff)
	t.Logf("untraced %v, traced %v, overhead %.2f%% (budget %.1f%%)", mOff, mOn, overhead, budget)
	if overhead > budget {
		t.Errorf("tracing overhead %.2f%% exceeds budget %.1f%%", overhead, budget)
	}
}

func minDuration(ds []time.Duration) time.Duration {
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}
