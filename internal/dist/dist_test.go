package dist

import (
	"math"
	"testing"
	"time"

	"lulesh/internal/core"
	"lulesh/internal/domain"
)

// TestSingleRankMatchesSerialBitwise: with one rank there are no
// communication faces, so the distributed driver must reproduce the
// single-domain serial backend exactly.
func TestSingleRankMatchesSerialBitwise(t *testing.T) {
	const size = 6
	const steps = 12
	res, err := Run(Config{
		Nx: size, Ny: size, NzPerRank: size, Ranks: 1,
		NumReg: 11, Balance: 1, Cost: 1, MaxIterations: steps,
	})
	if err != nil {
		t.Fatal(err)
	}

	d := domain.NewSedov(domain.DefaultConfig(size))
	b := core.NewBackendSerial(d)
	defer b.Close()
	ref, err := core.Run(d, b, core.RunConfig{MaxIterations: steps})
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginEnergy != ref.OriginEnergy {
		t.Fatalf("origin energy %v != serial %v", res.OriginEnergy, ref.OriginEnergy)
	}
	if res.FinalTime != ref.FinalTime || res.Iterations != ref.Iterations {
		t.Fatalf("time stepping diverged: %v/%d vs %v/%d",
			res.FinalTime, res.Iterations, ref.FinalTime, ref.Iterations)
	}
}

// TestTwoRanksMatchMonolithicBox: a 2-rank stack must reproduce the same
// physics as a single tall-box domain. The decomposition regroups the
// shared-plane force summation ((4 corners)+(4 corners) instead of 8 in
// CSR order), so agreement is to tight tolerance rather than bitwise.
func TestTwoRanksMatchMonolithicBox(t *testing.T) {
	const s = 4
	const ranks = 2
	const steps = 12

	res, err := Run(Config{
		Nx: s, Ny: s, NzPerRank: s, Ranks: ranks,
		NumReg: 1, Balance: 1, Cost: 1, MaxIterations: steps,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Monolithic reference: one tall box with the same total extent.
	d := domain.NewSedovBox(domain.BoxConfig{
		Nx: s, Ny: s, Nz: ranks * s,
		NumReg: 1, Balance: 1, Cost: 1,
		DepositEnergy: true,
	})
	b := core.NewBackendSerial(d)
	defer b.Close()
	ref, err := core.Run(d, b, core.RunConfig{MaxIterations: steps})
	if err != nil {
		t.Fatal(err)
	}

	relDiff := func(a, c float64) float64 {
		den := math.Max(math.Abs(a), math.Abs(c))
		if den < 1e-300 {
			return 0
		}
		return math.Abs(a-c) / den
	}
	if d := relDiff(res.OriginEnergy, ref.OriginEnergy); d > 1e-9 {
		t.Fatalf("origin energy differs by %v: %v vs %v",
			d, res.OriginEnergy, ref.OriginEnergy)
	}
	refTotal := 0.0
	for e := 0; e < d.NumElem(); e++ {
		refTotal += d.E[e] * d.Volo[e]
	}
	if diff := relDiff(res.TotalEnergy, refTotal); diff > 1e-9 {
		t.Fatalf("total energy differs by %v: %v vs %v",
			diff, res.TotalEnergy, refTotal)
	}
	if res.Iterations != ref.Iterations {
		t.Fatalf("cycle counts differ: %d vs %d", res.Iterations, ref.Iterations)
	}
	if relDiff(res.FinalTime, ref.FinalTime) > 1e-12 {
		t.Fatalf("final times differ: %v vs %v", res.FinalTime, ref.FinalTime)
	}
}

// TestThreeRanks: deeper stacks run and conserve sensible physics.
func TestThreeRanks(t *testing.T) {
	const s = 4
	res, err := Run(Config{
		Nx: s, Ny: s, NzPerRank: s, Ranks: 3,
		NumReg: 3, Balance: 1, Cost: 1, MaxIterations: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginEnergy <= 0 {
		t.Fatalf("origin energy %v", res.OriginEnergy)
	}
	if res.TotalEnergy <= 0 {
		t.Fatalf("total energy %v", res.TotalEnergy)
	}
	if len(res.Ranks) != 3 {
		t.Fatalf("rank stats missing: %d", len(res.Ranks))
	}
	// Interior rank talks to two neighbours; it must have sent more
	// messages than the end ranks.
	if res.Ranks[1].Comm.Sent <= res.Ranks[0].Comm.Sent {
		t.Fatalf("interior rank sent %d <= end rank %d",
			res.Ranks[1].Comm.Sent, res.Ranks[0].Comm.Sent)
	}
}

// TestSyncAsyncBitwiseIdentical: the overlapped schedule reorders
// computation and communication but performs the identical arithmetic, so
// the results must match bit for bit.
func TestSyncAsyncBitwiseIdentical(t *testing.T) {
	const s = 4
	base := Config{
		Nx: s, Ny: s, NzPerRank: s, Ranks: 2,
		NumReg: 5, Balance: 1, Cost: 1, MaxIterations: 20,
	}
	syncCfg := base
	asyncCfg := base
	asyncCfg.Async = true

	a, err := Run(syncCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(asyncCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OriginEnergy != b.OriginEnergy {
		t.Fatalf("origin energy: sync %v vs async %v", a.OriginEnergy, b.OriginEnergy)
	}
	if a.TotalEnergy != b.TotalEnergy {
		t.Fatalf("total energy: sync %v vs async %v", a.TotalEnergy, b.TotalEnergy)
	}
	if a.FinalTime != b.FinalTime || a.Iterations != b.Iterations {
		t.Fatal("time stepping diverged between schedules")
	}
}

// TestAsyncFullRunStable: the overlapped schedule survives a complete run
// of a small stack.
func TestAsyncFullRunStable(t *testing.T) {
	if testing.Short() {
		t.Skip("full run in -short mode")
	}
	res, err := Run(Config{
		Nx: 4, Ny: 4, NzPerRank: 4, Ranks: 2,
		NumReg: 11, Balance: 1, Cost: 1, Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTime < 1e-2-1e-9 {
		t.Fatalf("run stopped early at %v", res.FinalTime)
	}
}

// TestRanksValidation rejects empty clusters.
func TestRanksValidation(t *testing.T) {
	if _, err := Run(Config{Nx: 2, Ny: 2, NzPerRank: 2, Ranks: 0, NumReg: 1}); err == nil {
		t.Fatal("Ranks=0 should error")
	}
}

// TestDomainsDecomposition checks the per-rank domain geometry.
func TestDomainsDecomposition(t *testing.T) {
	cfg := Config{Nx: 3, Ny: 3, NzPerRank: 2, Ranks: 3, NumReg: 1}
	ds := Domains(cfg)
	if len(ds) != 3 {
		t.Fatalf("%d domains", len(ds))
	}
	h := 1.125 / 3.0
	for r, d := range ds {
		if d.Mesh.Nz != 2 {
			t.Fatalf("rank %d Nz = %d", r, d.Mesh.Nz)
		}
		wantZ := h * float64(2*r)
		if math.Abs(d.Z[0]-wantZ) > 1e-12 {
			t.Fatalf("rank %d z offset %v, want %v", r, d.Z[0], wantZ)
		}
		if (d.Mesh.CommZMin != (r > 0)) || (d.Mesh.CommZMax != (r < 2)) {
			t.Fatalf("rank %d comm faces wrong", r)
		}
		if r == 0 && d.E[0] == 0 {
			t.Fatal("rank 0 must own the energy deposit")
		}
		if r > 0 && d.E[0] != 0 {
			t.Fatalf("rank %d has spurious energy", r)
		}
	}
	// Consecutive slabs tile z exactly.
	top := ds[0].Z[ds[0].NumNode()-1]
	if math.Abs(top-ds[1].Z[0]) > 1e-12 {
		t.Fatalf("slabs do not tile: %v vs %v", top, ds[1].Z[0])
	}
}

// TestErrorPropagatesAcrossRanks: a failure on one rank must abort the
// whole cluster instead of deadlocking the others.
func TestErrorPropagatesAcrossRanks(t *testing.T) {
	cfg := Config{
		Nx: 4, Ny: 4, NzPerRank: 4, Ranks: 2,
		NumReg: 1, Balance: 1, Cost: 1, MaxIterations: 100,
	}
	// Poison via an impossible qstop on every rank's params is not
	// reachable from Config; instead force a volume error by running a
	// huge iteration count on a tiny, violent problem... the standard
	// Sedov setup never fails, so drive the protocol directly.
	cluster := newTestCluster(cfg)
	done := make(chan error, 2)
	for i, rk := range cluster {
		rk := rk
		if i == 1 {
			rk.d.V[0] = -1 // invalid state detected by hourglass prep
		}
		go func() { done <- rk.run(cfg.MaxIterations) }()
	}
	err0, err1 := <-done, <-done
	if err0 == nil && err1 == nil {
		t.Fatal("no rank reported the failure")
	}
}

// newTestCluster builds connected ranks without running them.
func newTestCluster(cfg Config) []*rank {
	c := newCommCluster(cfg.Ranks)
	out := make([]*rank, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		out[r] = newRank(cfg, c, r)
	}
	return out
}

// TestAsyncHidesLatency: on a fabric with link latency, the overlapped
// schedule must accumulate materially less blocked time than the
// synchronous schedule — the quantitative content of the paper's
// future-work claim.
func TestAsyncHidesLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the compute/latency ratio")
	}
	// The interior compute per phase must exceed the link latency for the
	// overlap to hide it fully: 16^3 elements per rank give a few
	// milliseconds of interior work per phase against 2 ms latency.
	base := Config{
		Nx: 16, Ny: 16, NzPerRank: 16, Ranks: 2,
		NumReg: 1, Balance: 1, Cost: 1,
		MaxIterations: 8, Latency: 2 * time.Millisecond,
	}
	wait := func(cfg Config) time.Duration {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		for _, rs := range res.Ranks {
			total += rs.Comm.Wait
		}
		return total
	}
	syncCfg, asyncCfg := base, base
	asyncCfg.Async = true
	// Sync pays the full latency at two phase boundaries per iteration;
	// async overlaps it with interior computation. Timing noise (loaded
	// machines, coverage instrumentation) can swamp one attempt, so allow
	// a few tries before declaring the mechanism broken.
	var syncWait, asyncWait time.Duration
	for attempt := 0; attempt < 4; attempt++ {
		syncWait = wait(syncCfg)
		asyncWait = wait(asyncCfg)
		if asyncWait < syncWait*3/4 {
			if syncWait < 8*2*base.Latency/2 {
				t.Fatalf("sync wait %v implausibly small for %v latency",
					syncWait, base.Latency)
			}
			return
		}
	}
	t.Errorf("overlap did not hide latency in any attempt: async wait %v vs sync wait %v",
		asyncWait, syncWait)
}

// TestHybridThreadsBitwiseInvariant: MPI+X execution (threads within each
// rank) must not change any value relative to serial-per-rank execution.
func TestHybridThreadsBitwiseInvariant(t *testing.T) {
	base := Config{
		Nx: 5, Ny: 5, NzPerRank: 5, Ranks: 2,
		NumReg: 5, Balance: 1, Cost: 1, MaxIterations: 15,
	}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	hybrid := base
	hybrid.ThreadsPerRank = 2
	got, err := Run(hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if serial.OriginEnergy != got.OriginEnergy || serial.TotalEnergy != got.TotalEnergy {
		t.Fatalf("hybrid execution changed results: %v/%v vs %v/%v",
			serial.OriginEnergy, serial.TotalEnergy, got.OriginEnergy, got.TotalEnergy)
	}
	if serial.Iterations != got.Iterations || serial.FinalTime != got.FinalTime {
		t.Fatal("hybrid execution changed time stepping")
	}
}

// TestHybridAsyncCombination: overlap + per-rank threading compose.
func TestHybridAsyncCombination(t *testing.T) {
	cfg := Config{
		Nx: 5, Ny: 5, NzPerRank: 5, Ranks: 2,
		NumReg: 3, Balance: 1, Cost: 1, MaxIterations: 10,
		Async: true, ThreadsPerRank: 2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(Config{
		Nx: 5, Ny: 5, NzPerRank: 5, Ranks: 2,
		NumReg: 3, Balance: 1, Cost: 1, MaxIterations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginEnergy != ref.OriginEnergy {
		t.Fatalf("hybrid async differs: %v vs %v", res.OriginEnergy, ref.OriginEnergy)
	}
}
