// Package dist implements the paper's future-work experiment: multi-domain
// LULESH across simulated ranks, comparing a synchronous MPI-style
// exchange (compute everything, then block on neighbour data at each phase
// boundary) against an asynchronous exchange that overlaps communication
// with computation (boundary data is computed and sent first, interior
// work proceeds while messages are in flight) — the advantage the paper
// anticipates from "the asynchronous mechanisms of HPX instead of the
// mostly synchronous data exchange mechanisms of MPI".
//
// The global problem is an Nx × Ny × (Ranks·NzPerRank) box decomposed into
// slabs along zeta, one rank per slab, mirroring LULESH 2.0's domain
// decomposition restricted to one dimension. Each rank runs the identical
// kernels from internal/kernels; the per-iteration protocol exchanges
//
//   - boundary-plane nodal forces (summed on both owners, LULESH's
//     CommSBN),
//   - boundary-plane monotonic-Q velocity gradients into ghost element
//     slots (LULESH's CommMonoQ),
//   - the global minima of the Courant and hydro time constraints
//     (the dt allreduce).
//
// The synchronous and asynchronous schedules execute bitwise-identical
// arithmetic — only the overlap differs — which the tests assert.
package dist

import (
	"fmt"
	"sync"
	"time"

	"lulesh/internal/comm"
	"lulesh/internal/core"
	"lulesh/internal/domain"
	"lulesh/internal/kernels"
	"lulesh/internal/omp"
)

// Config describes a multi-domain run.
type Config struct {
	// Nx, Ny are the per-rank (and global) lateral element counts;
	// NzPerRank is each slab's height. Ranks stacks that many slabs.
	Nx, Ny, NzPerRank int
	Ranks             int

	NumReg  int
	Balance int
	Cost    int

	// Async selects the overlapped exchange schedule.
	Async bool

	// ThreadsPerRank enables hybrid "MPI+X" execution: each rank
	// parallelizes its loops over a fork-join team of this size
	// (<= 1 = serial per rank, the MPI-everywhere model). Results are
	// bitwise independent of this setting.
	ThreadsPerRank int

	// Latency is the simulated one-way link latency of the fabric
	// (0 = instant delivery). With a nonzero latency the synchronous
	// schedule pays it as blocked time at every phase boundary while the
	// overlapped schedule computes through it.
	Latency time.Duration

	// MaxIterations caps the cycle count (0 = run to stop time).
	MaxIterations int
}

// DefaultConfig gives a cubic slab per rank with the reference region
// defaults.
func DefaultConfig(size, ranks int) Config {
	return Config{
		Nx: size, Ny: size, NzPerRank: size, Ranks: ranks,
		NumReg: 11, Balance: 1, Cost: 1,
	}
}

// RankStats reports one rank's communication behaviour.
type RankStats struct {
	Rank     int
	Comm     comm.Stats
	StepTime time.Duration // total time inside Step
}

// Result summarizes a completed multi-domain run.
type Result struct {
	Iterations   int
	FinalTime    float64
	OriginEnergy float64 // e(0) of rank 0, the global origin element
	TotalEnergy  float64 // sum of e*volo over all ranks
	Elapsed      time.Duration
	Ranks        []RankStats
}

// Run executes the multi-domain problem and returns the global result.
// Each rank runs on its own goroutine with serial in-rank kernels (the
// MPI-everywhere execution model).
func Run(cfg Config) (Result, error) {
	if cfg.Ranks < 1 {
		return Result{}, fmt.Errorf("dist: need at least 1 rank, got %d", cfg.Ranks)
	}
	cluster := comm.NewClusterLatency(cfg.Ranks, cfg.Latency)
	ranks := make([]*rank, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		ranks[r] = newRank(cfg, cluster, r)
	}

	start := time.Now()
	errs := make([]error, cfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = ranks[r].run(cfg.MaxIterations)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, rk := range ranks {
		rk.close()
	}

	for r, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("rank %d: %w", r, err)
		}
	}

	res := Result{
		Iterations: ranks[0].d.Cycle,
		FinalTime:  ranks[0].d.Time,
		Elapsed:    elapsed,
	}
	res.OriginEnergy = ranks[0].d.E[0]
	for _, rk := range ranks {
		for e := 0; e < rk.d.NumElem(); e++ {
			res.TotalEnergy += rk.d.E[e] * rk.d.Volo[e]
		}
		res.Ranks = append(res.Ranks, RankStats{
			Rank:     rk.id,
			Comm:     rk.ep.StatsSnapshot(),
			StepTime: rk.stepTime,
		})
	}
	return res, nil
}

// Domains builds the per-rank domains of a configuration without running
// them (and without the init-time nodal-mass exchange) — used by tests
// that inspect the decomposition.
func Domains(cfg Config) []*domain.Domain {
	cluster := comm.NewCluster(cfg.Ranks)
	out := make([]*domain.Domain, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		out[r] = newRank(cfg, cluster, r).d
	}
	return out
}

// rank is one slab's executor.
type rank struct {
	id    int
	cfg   Config
	d     *domain.Domain
	ep    *comm.Endpoint
	flag  kernels.Flag
	async bool

	// Mesh-sized temporaries (the serial backend's working set).
	sigxx, sigyy, sigzz []float64
	determS, determH    []float64
	fxS, fyS, fzS       []float64
	fxH, fyH, fzH       []float64
	dvdx, dvdy, dvdz    []float64
	x8n, y8n, z8n       []float64
	vnewc               []float64
	scratch             *kernels.EOSScratch

	// pool is the per-rank fork-join team for hybrid MPI+X execution
	// (nil = serial rank). scratches holds one EOS scratch per team
	// thread for the partitioned region evaluation.
	pool      *omp.Pool
	scratches []*kernels.EOSScratch
	dtcPart   []float64
	dthPart   []float64

	planeN int // nodes per z-plane
	planeE int // elements per z-plane

	// Packing buffers for plane exchanges.
	packX, packY, packZ []float64

	stepTime time.Duration
}

func newRank(cfg Config, cluster *comm.Cluster, id int) *rank {
	bc := domain.BoxConfig{
		Nx: cfg.Nx, Ny: cfg.Ny, Nz: cfg.NzPerRank,
		NumReg: cfg.NumReg, Balance: cfg.Balance, Cost: cfg.Cost,
		CommZMin:      id > 0,
		CommZMax:      id < cfg.Ranks-1,
		DepositEnergy: id == 0,
	}
	spacing := 1.125 / float64(cfg.Nx)
	bc.Spacing = spacing
	bc.ZOffset = spacing * float64(cfg.NzPerRank*id)
	d := domain.NewSedovBox(bc)

	ne := d.NumElem()
	maxReg := 0
	for _, l := range d.Regions.ElemList {
		if len(l) > maxReg {
			maxReg = len(l)
		}
	}
	r := &rank{
		id: id, cfg: cfg, d: d,
		ep:      cluster.Endpoint(id),
		async:   cfg.Async,
		sigxx:   make([]float64, ne),
		sigyy:   make([]float64, ne),
		sigzz:   make([]float64, ne),
		determS: make([]float64, ne),
		determH: make([]float64, ne),
		fxS:     make([]float64, 8*ne),
		fyS:     make([]float64, 8*ne),
		fzS:     make([]float64, 8*ne),
		fxH:     make([]float64, 8*ne),
		fyH:     make([]float64, 8*ne),
		fzH:     make([]float64, 8*ne),
		dvdx:    make([]float64, 8*ne),
		dvdy:    make([]float64, 8*ne),
		dvdz:    make([]float64, 8*ne),
		x8n:     make([]float64, 8*ne),
		y8n:     make([]float64, 8*ne),
		z8n:     make([]float64, 8*ne),
		vnewc:   make([]float64, ne),
		scratch: kernels.NewEOSScratch(maxReg),
		planeN:  (cfg.Nx + 1) * (cfg.Ny + 1),
		planeE:  cfg.Nx * cfg.Ny,
	}
	r.packX = make([]float64, r.planeN)
	r.packY = make([]float64, r.planeN)
	r.packZ = make([]float64, r.planeN)
	if cfg.ThreadsPerRank > 1 {
		r.pool = omp.NewPool(cfg.ThreadsPerRank)
		r.scratches = make([]*kernels.EOSScratch, cfg.ThreadsPerRank)
		for i := range r.scratches {
			r.scratches[i] = kernels.NewEOSScratch(maxReg)
		}
		r.dtcPart = make([]float64, cfg.ThreadsPerRank)
		r.dthPart = make([]float64, cfg.ThreadsPerRank)
	}
	return r
}

// rangeBlock applies body over [lo, hi), splitting it across the rank's
// team when hybrid execution is enabled.
func (r *rank) rangeBlock(lo, hi int, body func(lo, hi int)) {
	if r.pool == nil || hi-lo == 0 {
		if lo < hi {
			body(lo, hi)
		}
		return
	}
	r.pool.ParallelForBlock(hi-lo, func(a, b int) {
		body(lo+a, lo+b)
	})
}

// close releases the rank's team.
func (r *rank) close() {
	if r.pool != nil {
		r.pool.Close()
	}
}

func (r *rank) hasLower() bool { return r.id > 0 }
func (r *rank) hasUpper() bool { return r.id < r.cfg.Ranks-1 }

// lowerNodes / upperNodes index the shared node planes.
func (r *rank) lowerNodeBase() int { return 0 }
func (r *rank) upperNodeBase() int { return r.d.NumNode() - r.planeN }

// exchangeNodalMass sums the shared-plane nodal masses across neighbour
// ranks during initialization (both owners end up with the global value).
func (r *rank) exchangeNodalMass() {
	if r.hasLower() {
		copy(r.packX, r.d.NodalMass[:r.planeN])
		r.ep.Send(r.id-1, comm.TagNodalMass, r.packX)
	}
	if r.hasUpper() {
		copy(r.packX, r.d.NodalMass[r.upperNodeBase():])
		r.ep.Send(r.id+1, comm.TagNodalMass, r.packX)
	}
	if r.hasLower() {
		theirs := r.ep.Recv(r.id-1, comm.TagNodalMass)
		for i, v := range theirs {
			r.d.NodalMass[i] += v
		}
	}
	if r.hasUpper() {
		theirs := r.ep.Recv(r.id+1, comm.TagNodalMass)
		base := r.upperNodeBase()
		for i, v := range theirs {
			r.d.NodalMass[base+i] += v
		}
	}
}

// run drives the leapfrog to the stop time (or the iteration cap). All
// ranks make identical time-stepping decisions because the constraint
// minima are globally reduced every cycle.
func (r *rank) run(maxIter int) error {
	d := r.d
	// The init-time mass exchange happens here, where every rank has a
	// live goroutine to answer.
	r.exchangeNodalMass()
	for d.Time < d.Par.StopTime {
		if maxIter > 0 && d.Cycle >= maxIter {
			break
		}
		core.TimeIncrement(d)
		t0 := time.Now()
		err := r.step()
		r.stepTime += time.Since(t0)

		// Propagate errors to every rank through the reduction so no one
		// deadlocks waiting for a failed neighbour.
		code := 0.0
		if err != nil {
			code = -1
		}
		mins := r.ep.AllReduceMin([]float64{d.Dtcourant, d.Dthydro, code})
		if err != nil {
			return fmt.Errorf("cycle %d: %w", d.Cycle, err)
		}
		if mins[2] < 0 {
			return fmt.Errorf("cycle %d: aborted by failing peer", d.Cycle)
		}
		d.Dtcourant, d.Dthydro = mins[0], mins[1]
	}
	return nil
}

// step advances one leapfrog iteration with the selected exchange
// schedule. The constraint minima are left in d.Dtcourant / d.Dthydro for
// the caller's global reduction.
func (r *rank) step() error {
	if r.async {
		return r.stepOverlapped()
	}
	return r.stepSynchronous()
}

// newCommCluster is a test seam for building a fabric of the right size.
func newCommCluster(n int) *comm.Cluster { return comm.NewCluster(n) }
