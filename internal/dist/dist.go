// Package dist implements the paper's future-work experiment: multi-domain
// LULESH across simulated ranks, comparing a synchronous MPI-style
// exchange (compute everything, then block on neighbour data at each phase
// boundary) against an asynchronous exchange that overlaps communication
// with computation (boundary data is computed and sent first, interior
// work proceeds while messages are in flight) — the advantage the paper
// anticipates from "the asynchronous mechanisms of HPX instead of the
// mostly synchronous data exchange mechanisms of MPI".
//
// The global problem is an Nx × Ny × (Ranks·NzPerRank) box decomposed into
// slabs along zeta, one rank per slab, mirroring LULESH 2.0's domain
// decomposition restricted to one dimension. Each rank runs the identical
// kernels from internal/kernels; the per-iteration protocol exchanges
//
//   - boundary-plane nodal forces (summed on both owners, LULESH's
//     CommSBN),
//   - boundary-plane monotonic-Q velocity gradients into ghost element
//     slots (LULESH's CommMonoQ),
//   - the global minima of the Courant and hydro time constraints
//     (the dt allreduce).
//
// The synchronous and asynchronous schedules execute bitwise-identical
// arithmetic — only the overlap differs — which the tests assert.
//
// # Fault tolerance
//
// A run with Faults, ExchangeDeadline or CheckpointEvery set executes on a
// fault-tolerant fabric (comm.NewClusterOptions): every exchange runs
// under deadline/retry/backoff semantics, so dropped or delayed boundary
// planes and dt contributions are re-requested instead of deadlocking, and
// coordinated checkpoints every CheckpointEvery cycles let Run restart the
// whole cluster from the last committed epoch when a rank is lost (an
// injected crash, or a peer declared dead by exchange deadline). Restart
// is exact: the recovered run is bitwise-identical to an unfaulted run of
// the same configuration, which the tests assert. See DISTRIBUTED.md.
package dist

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lulesh/internal/checkpoint"
	"lulesh/internal/comm"
	"lulesh/internal/core"
	"lulesh/internal/domain"
	"lulesh/internal/kernels"
	"lulesh/internal/omp"
	"lulesh/internal/perf"
)

// Config describes a multi-domain run.
type Config struct {
	// Nx, Ny are the per-rank (and global) lateral element counts;
	// NzPerRank is each slab's height. Ranks stacks that many slabs.
	Nx, Ny, NzPerRank int
	Ranks             int

	NumReg  int
	Balance int
	Cost    int

	// Scenario selects the problem setup each rank builds through the
	// scenario registry (zero value = sedov). Restores reject epoch
	// blobs whose recorded scenario tag disagrees with this.
	Scenario domain.ScenarioSpec

	// Async selects the overlapped exchange schedule: boundary planes are
	// computed and posted first, interior work overlaps the in-flight
	// exchange, and each receive is joined only in front of the work that
	// depends on remote data (see stepOverlapped).
	Async bool

	// TreeReduce routes the dt allreduce over a binomial tree
	// (comm.AllReduceMinTree) instead of the linear gather to rank 0:
	// the root handles O(log n) messages per step instead of O(n), and
	// the critical path is 2·⌈log2 n⌉ hops. Bitwise identical — min is
	// exact, so the fold order cannot change the value.
	TreeReduce bool

	// Coalesce packs each step's per-peer boundary slabs into one frame
	// per (peer, direction): the three force planes travel as a single
	// TagForces message and the three gradient planes as a single
	// TagDelv message, cutting the hot path's message count (and wire
	// frames, each with a 40-byte header and its own syscall) 3×.
	Coalesce bool

	// ThreadsPerRank enables hybrid "MPI+X" execution: each rank
	// parallelizes its loops over a fork-join team of this size
	// (<= 1 = serial per rank, the MPI-everywhere model). Results are
	// bitwise independent of this setting.
	ThreadsPerRank int

	// Latency is the simulated one-way link latency of the fabric
	// (0 = instant delivery). With a nonzero latency the synchronous
	// schedule pays it as blocked time at every phase boundary while the
	// overlapped schedule computes through it.
	Latency time.Duration

	// MaxIterations caps the cycle count (0 = run to stop time).
	MaxIterations int

	// Faults injects deterministic message/rank failures (nil = none).
	// Any active plan switches the fabric into fault-tolerant mode.
	Faults *comm.FaultPlan

	// ExchangeDeadline bounds each wait for an expected message before a
	// resend request is issued (0 = comm.DefaultExchangeDeadline when the
	// fault-tolerant fabric is active). Setting it without Faults still
	// enables the fault-tolerant fabric — useful as pure failure
	// detection.
	ExchangeDeadline time.Duration

	// RetryLimit is the resend-request budget per exchange before a peer
	// is declared dead (0 = comm.DefaultRetryLimit).
	RetryLimit int

	// CheckpointEvery takes a coordinated checkpoint of all ranks every
	// that many cycles (0 = none). Requires no fabric support; restart
	// uses the last epoch for which every rank committed a blob.
	CheckpointEvery int

	// MaxRestarts bounds how many times Run restarts the cluster after a
	// recoverable failure before giving up.
	MaxRestarts int

	// Monitor, when non-nil, receives live fabric references and
	// fault-tolerance counters for the -metrics-addr endpoint.
	Monitor *Monitor

	// Trace enables distributed tracing: every rank records per-step
	// compute / ghost-wait / allreduce-wait / steal-idle buckets plus
	// paired send/recv message spans, gathered into Result.Fleet (and,
	// on a wire run, shipped to rank 0 over the fabric). Tracing never
	// changes the arithmetic — traced runs stay bitwise identical.
	Trace bool

	// Profiler, when non-nil with Trace set, additionally receives the
	// attribution buckets as perf phases (shard = rank), so they surface
	// on the live Prometheus endpoint and the per-phase exit table.
	Profiler *perf.Profiler
}

// DefaultConfig gives a cubic slab per rank with the reference region
// defaults.
func DefaultConfig(size, ranks int) Config {
	return Config{
		Nx: size, Ny: size, NzPerRank: size, Ranks: ranks,
		NumReg: 11, Balance: 1, Cost: 1,
	}
}

// faultTolerant reports whether the run needs the fault-tolerant fabric.
func (cfg Config) faultTolerant() bool {
	return cfg.Faults.Active() || cfg.ExchangeDeadline > 0
}

// RankStats reports one rank's communication behaviour.
type RankStats struct {
	Rank     int
	Comm     comm.Stats
	StepTime time.Duration // total time inside Step
}

// Result summarizes a completed multi-domain run.
type Result struct {
	Iterations   int
	FinalTime    float64
	OriginEnergy float64 // e(0) of rank 0, the global origin element
	TotalEnergy  float64 // sum of e*volo over all ranks
	Elapsed      time.Duration
	Ranks        []RankStats

	// Fault-tolerance outcomes (zero on a reliable run).
	Recoveries  int   // cluster restarts taken after rank failures
	Checkpoints int64 // coordinated checkpoint epochs committed
	Fabric      comm.FabricStats

	// Fleet holds every rank's trace when Config.Trace was set: the
	// input to the merged Chrome trace and the stall report. On a wire
	// run only rank 0 carries it (the gather lands there).
	Fleet *perf.FleetSnapshot
}

// Run executes the multi-domain problem and returns the global result.
// Each rank runs on its own goroutine with serial in-rank kernels (the
// MPI-everywhere execution model). With fault tolerance configured, Run
// restarts the cluster from the last coordinated checkpoint (or from the
// initial state when none committed yet) after a recoverable rank
// failure, up to MaxRestarts times.
func Run(cfg Config) (Result, error) {
	res, _, err := runToCompletion(cfg)
	return res, err
}

// RunDomains is Run, additionally returning every rank's final domain —
// the ground truth the multi-process verifier compares wire runs
// against, state array by state array.
func RunDomains(cfg Config) (Result, []*domain.Domain, error) {
	res, ranks, err := runToCompletion(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	doms := make([]*domain.Domain, len(ranks))
	for i, rk := range ranks {
		doms[i] = rk.d
	}
	return res, doms, nil
}

func runToCompletion(cfg Config) (Result, []*rank, error) {
	if cfg.Ranks < 1 {
		return Result{}, nil, fmt.Errorf("dist: need at least 1 rank, got %d", cfg.Ranks)
	}
	if err := domain.ValidateScenarioSpec(cfg.Scenario); err != nil {
		return Result{}, nil, fmt.Errorf("dist: %w", err)
	}
	var inj *comm.FaultInjector
	if cfg.Faults.Active() {
		inj = comm.NewFaultInjector(*cfg.Faults, cfg.Ranks)
	}
	var store *ckptStore
	if cfg.CheckpointEvery > 0 {
		store = newCkptStore(cfg.Ranks)
	}
	recoveries := 0
	start := time.Now()
	for {
		res, ranks, errs := runAttempt(cfg, inj, store)
		firstErr, allRecoverable := summarize(errs)
		if firstErr == nil {
			// Elapsed spans the whole run, including failed attempts,
			// failure-detection stalls, and restarts — that is the honest
			// cost of recovery as seen by the caller.
			res.Elapsed = time.Since(start)
			res.Recoveries = recoveries
			if store != nil {
				store.mu.Lock()
				res.Checkpoints = store.committed
				store.mu.Unlock()
			}
			return res, ranks, nil
		}
		if !allRecoverable || recoveries >= cfg.MaxRestarts {
			return Result{}, nil, firstErr
		}
		recoveries++
		if inj != nil {
			inj.Reset()
		}
		if store != nil {
			store.drop()
		}
		if cfg.Monitor != nil {
			cfg.Monitor.recoveries.Add(1)
		}
	}
}

// summarize picks the first rank error and classifies the set: recovery is
// only legal when every failure is a communication-layer one.
func summarize(errs []error) (first error, allRecoverable bool) {
	allRecoverable = true
	for r, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = fmt.Errorf("rank %d: %w", r, err)
		}
		if !recoverable(err) {
			allRecoverable = false
		}
	}
	return first, allRecoverable
}

// runAttempt executes one cluster lifetime: fresh domains, or domains
// restored from the store's last committed checkpoint.
func runAttempt(cfg Config, inj *comm.FaultInjector, store *ckptStore) (Result, []*rank, []error) {
	var cluster *comm.Cluster
	if cfg.faultTolerant() {
		var tr comm.Transport
		if inj != nil {
			tr = inj
		}
		cluster = comm.NewClusterOptions(cfg.Ranks, comm.Options{
			Latency:          cfg.Latency,
			Transport:        tr,
			ExchangeDeadline: cfg.ExchangeDeadline,
			RetryLimit:       cfg.RetryLimit,
		})
	} else {
		cluster = comm.NewClusterLatency(cfg.Ranks, cfg.Latency)
	}
	if cfg.Monitor != nil {
		cfg.Monitor.observe(cluster)
	}

	ranks := make([]*rank, cfg.Ranks)
	errs := make([]error, cfg.Ranks)
	if blobs, _, ok := restorePoint(store); ok {
		for r := 0; r < cfg.Ranks; r++ {
			d, meta, err := checkpoint.LoadRank(bytes.NewReader(blobs[r]))
			if err != nil {
				errs[r] = fmt.Errorf("restore: %w", err)
				return Result{}, nil, errs
			}
			if meta.Rank != r || meta.Ranks != cfg.Ranks {
				errs[r] = fmt.Errorf("restore: blob for rank %d/%d in slot %d",
					meta.Rank, meta.Ranks, r)
				return Result{}, nil, errs
			}
			if err := checkpoint.ExpectScenario(d, cfg.Scenario); err != nil {
				errs[r] = fmt.Errorf("restore rank %d: %w", r, err)
				return Result{}, nil, errs
			}
			ranks[r] = newRankWith(cfg, cluster, r, d)
			ranks[r].restored = true
		}
		if cfg.Monitor != nil {
			cfg.Monitor.restores.Add(1)
		}
	} else {
		for r := 0; r < cfg.Ranks; r++ {
			ranks[r] = newRankWith(cfg, cluster, r, nil)
		}
	}
	// Guard against the typed-nil trap: assigning a nil *ckptStore into
	// the interface field would make the rank's nil check pass.
	if store != nil {
		for _, rk := range ranks {
			rk.store = store
		}
	}
	if cfg.Trace {
		// In-process endpoints record message spans themselves; on a wire
		// run SetTraceSink no-ops and the fabric's reader/writer record
		// instead (never both layers at once).
		for _, rk := range ranks {
			rk.ep.SetTraceSink(rk.tracer)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	var finished atomic.Int64
	for r := 0; r < cfg.Ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = ranks[r].run(cfg.MaxIterations)
			finished.Add(1)
			// Linger: a peer may still be waiting on a resend of this
			// rank's final message (e.g. the last dt broadcast was
			// dropped). Keep answering recovery traffic until every rank
			// has left its protocol loop.
			if cfg.faultTolerant() {
				for finished.Load() < int64(cfg.Ranks) {
					ranks[r].ep.Poll()
					time.Sleep(50 * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, rk := range ranks {
		rk.close()
	}

	res := Result{
		Iterations: ranks[0].d.Cycle,
		FinalTime:  ranks[0].d.Time,
		Elapsed:    elapsed,
		Fabric:     cluster.FabricStats(),
	}
	res.OriginEnergy = ranks[0].d.E[0]
	for _, rk := range ranks {
		for e := 0; e < rk.d.NumElem(); e++ {
			res.TotalEnergy += rk.d.E[e] * rk.d.Volo[e]
		}
		res.Ranks = append(res.Ranks, RankStats{
			Rank:     rk.id,
			Comm:     rk.ep.StatsSnapshot(),
			StepTime: rk.stepTime,
		})
	}
	if cfg.Trace {
		// One process, one clock: every rank's offset to "rank 0" is zero.
		fleet := perf.NewFleetSnapshot(cfg.Ranks)
		for _, rk := range ranks {
			fleet.AddRank(rk.rankTrace(0, 0))
		}
		res.Fleet = fleet
	}
	return res, ranks, errs
}

// restorePoint fetches the last committed checkpoint, if any.
func restorePoint(store *ckptStore) ([][]byte, int, bool) {
	if store == nil {
		return nil, 0, false
	}
	return store.latest()
}

// Domains builds the per-rank domains of a configuration without running
// them (and without the init-time nodal-mass exchange) — used by tests
// that inspect the decomposition.
func Domains(cfg Config) []*domain.Domain {
	cluster := comm.NewCluster(cfg.Ranks)
	out := make([]*domain.Domain, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		out[r] = newRank(cfg, cluster, r).d
	}
	return out
}

// rank is one slab's executor.
type rank struct {
	id     int
	cfg    Config
	boxCfg domain.BoxConfig
	d      *domain.Domain
	ep     *comm.Endpoint
	flag   kernels.Flag
	async  bool

	// Overlap machinery: the dt-reduction topology and slab-coalescing
	// toggles, the boundary/interior classification of both index spaces,
	// and the symmetry-plane node lists and region element lists pre-split
	// along the same seam (so the overlapped schedule's split loops visit
	// exactly the original elements).
	treeReduce             bool
	coalesce               bool
	nodePlan               domain.OverlapPlan
	elemPlan               domain.OverlapPlan
	symmXB, symmYB, symmZB []int32   // boundary-plane sublists
	symmXI, symmYI, symmZI []int32   // interior sublists
	regBoundary            [][]int32 // per-region boundary-plane elements
	regInterior            [][]int32 // per-region interior elements

	// Fault tolerance: the coordinated-checkpoint sink (in-memory for an
	// in-process cluster, on-disk for a wire run), and whether this
	// rank's domain was restored from it (restored ranks skip the
	// init-time nodal-mass exchange — the checkpoint carries the
	// exchanged masses). epochHook, when set, runs at the top of every
	// cycle; the wire chaos test uses it to kill the process for real.
	store     ckptSink
	restored  bool
	epochHook func(cycle int)

	// Mesh-sized temporaries (the serial backend's working set).
	sigxx, sigyy, sigzz []float64
	determS, determH    []float64
	fxS, fyS, fzS       []float64
	fxH, fyH, fzH       []float64
	dvdx, dvdy, dvdz    []float64
	x8n, y8n, z8n       []float64
	vnewc               []float64
	scratch             *kernels.EOSScratch

	// pool is the per-rank fork-join team for hybrid MPI+X execution
	// (nil = serial rank). scratches holds one EOS scratch per team
	// thread for the partitioned region evaluation.
	pool      *omp.Pool
	scratches []*kernels.EOSScratch
	dtcPart   []float64
	dthPart   []float64

	planeN int // nodes per z-plane
	planeE int // elements per z-plane

	// Packing buffers for plane exchanges; packCoal is the coalesced
	// triple-plane frame (Coalesce mode).
	packX, packY, packZ []float64
	packCoal            []float64

	stepTime time.Duration

	// Distributed tracing (Config.Trace): tracer collects message spans,
	// buckets the per-step wall attribution, idleNs the team's
	// accumulated steal-idle from instrumented parallel regions. prof,
	// when set, mirrors the buckets into perf phases (worker = rank, so
	// the phase table splits per rank); markStep closes its step window
	// on rank 0. stepMark is the wire driver's per-cycle hook (frame
	// stamping + periodic clock refresh).
	trace    bool
	tracer   *perf.NetTracer
	buckets  []perf.StepBucket
	idleNs   int64
	prof     *perf.Profiler
	markStep bool
	stepMark func(cycle int)
}

func newRank(cfg Config, cluster *comm.Cluster, id int) *rank {
	return newRankWith(cfg, cluster, id, nil)
}

// newRankWith builds a rank around an existing domain (a checkpoint
// restore) or, when d is nil, a fresh slab built by cfg.Scenario. The spec
// must have passed domain.ValidateScenarioSpec (the drivers check it once
// up front), so a build failure here is a programming error.
func newRankWith(cfg Config, cluster *comm.Cluster, id int, d *domain.Domain) *rank {
	bc := domain.BoxConfig{
		Nx: cfg.Nx, Ny: cfg.Ny, Nz: cfg.NzPerRank,
		NumReg: cfg.NumReg, Balance: cfg.Balance, Cost: cfg.Cost,
		CommZMin:      id > 0,
		CommZMax:      id < cfg.Ranks-1,
		DepositEnergy: id == 0,
	}
	spacing := 1.125 / float64(cfg.Nx)
	bc.Spacing = spacing
	bc.ZOffset = spacing * float64(cfg.NzPerRank*id)
	if d == nil {
		var err error
		d, err = domain.BuildScenario(cfg.Scenario, bc)
		if err != nil {
			panic(fmt.Sprintf("dist: unvalidated scenario %q: %v",
				cfg.Scenario.String(), err))
		}
	}

	ne := d.NumElem()
	maxReg := 0
	for _, l := range d.Regions.ElemList {
		if len(l) > maxReg {
			maxReg = len(l)
		}
	}
	r := &rank{
		id: id, cfg: cfg, boxCfg: bc, d: d,
		ep:      cluster.Endpoint(id),
		async:   cfg.Async,
		sigxx:   make([]float64, ne),
		sigyy:   make([]float64, ne),
		sigzz:   make([]float64, ne),
		determS: make([]float64, ne),
		determH: make([]float64, ne),
		fxS:     make([]float64, 8*ne),
		fyS:     make([]float64, 8*ne),
		fzS:     make([]float64, 8*ne),
		fxH:     make([]float64, 8*ne),
		fyH:     make([]float64, 8*ne),
		fzH:     make([]float64, 8*ne),
		dvdx:    make([]float64, 8*ne),
		dvdy:    make([]float64, 8*ne),
		dvdz:    make([]float64, 8*ne),
		x8n:     make([]float64, 8*ne),
		y8n:     make([]float64, 8*ne),
		z8n:     make([]float64, 8*ne),
		vnewc:   make([]float64, ne),
		scratch: kernels.NewEOSScratch(maxReg),
		planeN:  (cfg.Nx + 1) * (cfg.Ny + 1),
		planeE:  cfg.Nx * cfg.Ny,
	}
	r.packX = make([]float64, r.planeN)
	r.packY = make([]float64, r.planeN)
	r.packZ = make([]float64, r.planeN)
	r.treeReduce = cfg.TreeReduce
	r.coalesce = cfg.Coalesce
	if cfg.Coalesce {
		// One buffer serves both coalesced exchanges: the force frame is
		// 3·planeN wide, the gradient frame 3·planeE (< 3·planeN).
		r.packCoal = make([]float64, 3*r.planeN)
	}
	// The boundary-first classification is cheap enough to build
	// unconditionally; only the overlapped schedule consumes it.
	nn := d.NumNode()
	r.nodePlan = domain.NewOverlapPlan(nn, r.planeN, bc.CommZMin, bc.CommZMax)
	r.elemPlan = domain.NewOverlapPlan(ne, r.planeE, bc.CommZMin, bc.CommZMax)
	r.symmXB, r.symmXI = r.nodePlan.SplitIndexList(d.Mesh.SymmX)
	r.symmYB, r.symmYI = r.nodePlan.SplitIndexList(d.Mesh.SymmY)
	r.symmZB, r.symmZI = r.nodePlan.SplitIndexList(d.Mesh.SymmZ)
	r.regBoundary = make([][]int32, len(d.Regions.ElemList))
	r.regInterior = make([][]int32, len(d.Regions.ElemList))
	for i, l := range d.Regions.ElemList {
		r.regBoundary[i], r.regInterior[i] = r.elemPlan.SplitIndexList(l)
	}
	if cfg.Trace {
		r.trace = true
		r.tracer = perf.NewNetTracer(0)
		r.prof = cfg.Profiler
		r.markStep = cfg.Profiler != nil && id == 0
	}
	if cfg.ThreadsPerRank > 1 {
		r.pool = omp.NewPool(cfg.ThreadsPerRank)
		r.scratches = make([]*kernels.EOSScratch, cfg.ThreadsPerRank)
		for i := range r.scratches {
			r.scratches[i] = kernels.NewEOSScratch(maxReg)
		}
		r.dtcPart = make([]float64, cfg.ThreadsPerRank)
		r.dthPart = make([]float64, cfg.ThreadsPerRank)
	}
	return r
}

// rangeBlock applies body over [lo, hi), splitting it across the rank's
// team when hybrid execution is enabled. Under tracing each region also
// accumulates the team's steal-idle: the region's wall time minus the
// mean per-thread busy time is the share of the fork-join where threads
// sat without work.
func (r *rank) rangeBlock(lo, hi int, body func(lo, hi int)) {
	if r.pool == nil || hi-lo == 0 {
		if lo < hi {
			body(lo, hi)
		}
		return
	}
	if !r.trace {
		r.pool.ParallelForBlock(hi-lo, func(a, b int) {
			body(lo+a, lo+b)
		})
		return
	}
	var busy atomic.Int64
	t0 := time.Now()
	r.pool.ParallelForBlock(hi-lo, func(a, b int) {
		s := time.Now()
		body(lo+a, lo+b)
		busy.Add(int64(time.Since(s)))
	})
	if idle := int64(time.Since(t0)) - busy.Load()/int64(r.cfg.ThreadsPerRank); idle > 0 {
		r.idleNs += idle
	}
}

// close releases the rank's team.
func (r *rank) close() {
	if r.pool != nil {
		r.pool.Close()
	}
}

func (r *rank) hasLower() bool { return r.id > 0 }
func (r *rank) hasUpper() bool { return r.id < r.cfg.Ranks-1 }

// lowerNodeBase / upperNodeBase index the shared node planes.
func (r *rank) lowerNodeBase() int { return 0 }
func (r *rank) upperNodeBase() int { return r.d.NumNode() - r.planeN }

// exchangeNodalMass sums the shared-plane nodal masses across neighbour
// ranks during initialization (both owners end up with the global value).
func (r *rank) exchangeNodalMass() error {
	if r.hasLower() {
		copy(r.packX, r.d.NodalMass[:r.planeN])
		r.ep.Send(r.id-1, comm.TagNodalMass, r.packX)
	}
	if r.hasUpper() {
		copy(r.packX, r.d.NodalMass[r.upperNodeBase():])
		r.ep.Send(r.id+1, comm.TagNodalMass, r.packX)
	}
	if r.hasLower() {
		theirs, err := r.ep.RecvDeadline(r.id-1, comm.TagNodalMass)
		if err != nil {
			return err
		}
		for i, v := range theirs {
			r.d.NodalMass[i] += v
		}
	}
	if r.hasUpper() {
		theirs, err := r.ep.RecvDeadline(r.id+1, comm.TagNodalMass)
		if err != nil {
			return err
		}
		base := r.upperNodeBase()
		for i, v := range theirs {
			r.d.NodalMass[base+i] += v
		}
	}
	return nil
}

// run drives the leapfrog to the stop time (or the iteration cap). All
// ranks make identical time-stepping decisions because the constraint
// minima are globally reduced every cycle.
func (r *rank) run(maxIter int) error {
	d := r.d
	// The init-time mass exchange happens here, where every rank has a
	// live goroutine to answer. A restored rank skips it: the checkpoint
	// already carries the exchanged masses, and the neighbours (also
	// restored) are not sending.
	if !r.restored {
		if err := r.exchangeNodalMass(); err != nil {
			return err
		}
	}
	for d.Time < d.Par.StopTime {
		if maxIter > 0 && d.Cycle >= maxIter {
			break
		}
		core.TimeIncrement(d)
		// The comm epoch is the cycle number; an injected whole-rank crash
		// abandons the protocol right here, before any of the cycle's
		// sends, like a node dying between timesteps.
		if err := r.ep.EnterEpoch(d.Cycle); err != nil {
			return err
		}
		if r.epochHook != nil {
			r.epochHook(d.Cycle)
		}
		var cycleStart time.Time
		var ghost0, red0 time.Duration
		var idle0 int64
		if r.trace {
			r.ep.SetTraceStep(d.Cycle)
			if r.stepMark != nil {
				r.stepMark(d.Cycle)
			}
			ghost0, red0 = r.ep.WaitBuckets()
			idle0 = r.idleNs
			cycleStart = time.Now()
		}
		t0 := time.Now()
		err := r.step()
		r.stepTime += time.Since(t0)

		// A communication failure means a peer is gone: abandon the
		// protocol immediately (the other survivors' deadlines fire too)
		// and let the driver restart from the last checkpoint. A physics
		// error instead travels through the dt reduction so every rank
		// aborts deterministically without deadlocking.
		if err != nil && recoverable(err) {
			return fmt.Errorf("cycle %d: %w", d.Cycle, err)
		}
		code := 0.0
		if err != nil {
			code = -1
		}
		mins, rerr := r.allReduceMin([]float64{d.Dtcourant, d.Dthydro, code})
		if rerr != nil {
			return fmt.Errorf("cycle %d: dt reduction: %w", d.Cycle, rerr)
		}
		if err != nil {
			return fmt.Errorf("cycle %d: %w", d.Cycle, err)
		}
		if mins[2] < 0 {
			return fmt.Errorf("cycle %d: %w", d.Cycle, errPeerAbort)
		}
		d.Dtcourant, d.Dthydro = mins[0], mins[1]
		if r.trace {
			r.recordCycle(d.Cycle, cycleStart, ghost0, red0, idle0)
		}

		if err := r.maybeCheckpoint(); err != nil {
			return err
		}
	}
	return nil
}

// allReduceMin dispatches the dt reduction to the configured topology:
// the linear gather to rank 0, or the binomial tree when TreeReduce is
// set. Both produce bitwise-identical minima.
func (r *rank) allReduceMin(vals []float64) ([]float64, error) {
	if r.treeReduce {
		return r.ep.AllReduceMinTree(vals)
	}
	return r.ep.AllReduceMin(vals)
}

// attributeStep closes one timestep's wall attribution: compute is the
// residual after the measured wait and idle buckets. The measured buckets
// can overshoot the wall they are attributed to (a wait that began before
// the cycle window, timer granularity), which used to be absorbed by
// clamping compute at zero while the waits kept their full values — so
// the buckets no longer summed to wall, a zero-exchange step could show
// pure wait, and the per-phase exit table inherited the inflated rows.
// Now the overshoot is trimmed from the least-trusted bucket first
// (steal-idle, then allreduce-wait, then ghost-wait) so the four buckets
// sum exactly to wall, the invariant the stall report and the Chrome
// attribution lanes rely on.
func attributeStep(wall, ghost, red, idle int64) (compute, g, r, i int64) {
	g, r, i = max64(ghost, 0), max64(red, 0), max64(idle, 0)
	compute = wall - g - r - i
	if compute >= 0 {
		return compute, g, r, i
	}
	over := -compute
	compute = 0
	for _, b := range []*int64{&i, &r, &g} {
		cut := over
		if cut > *b {
			cut = *b
		}
		*b -= cut
		over -= cut
		if over == 0 {
			break
		}
	}
	return compute, g, r, i
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// recordCycle closes one timestep's attribution bucket. Wall spans the
// cycle start through the dt allreduce; ghost/reduce waits are the
// endpoint counters' deltas, steal-idle the instrumented team regions',
// and compute the residual after attributeStep's trimming — so the four
// buckets sum to wall by construction, the invariant the stall report
// checks. Zero-duration buckets are not mirrored into perf phases: a
// recorded-but-empty phase would still count a task and surface a
// spurious ghost-wait/allreduce-wait row in the exit table on runs that
// never exchanged (single rank, zero-step).
func (r *rank) recordCycle(cycle int, start time.Time, ghost0, red0 time.Duration, idle0 int64) {
	wall := int64(time.Since(start))
	ghost1, red1 := r.ep.WaitBuckets()
	compute, ghost, red, idle := attributeStep(
		wall, int64(ghost1-ghost0), int64(red1-red0), r.idleNs-idle0)
	r.buckets = append(r.buckets, perf.StepBucket{
		Step: cycle, StartNs: start.UnixNano(), WallNs: wall,
		ComputeNs: compute, GhostNs: ghost, ReduceNs: red, IdleNs: idle,
	})
	if p := r.prof; p != nil {
		record := func(phase uint32, ns int64) {
			if ns > 0 {
				p.RecordTask(r.id, phase, start, time.Duration(ns), 0, false)
			}
		}
		record(perf.PhaseDistCompute, compute)
		record(perf.PhaseDistGhostWait, ghost)
		record(perf.PhaseDistWaitRed, red)
		record(perf.PhaseDistStealIdle, idle)
		if r.markStep {
			p.MarkStep(cycle)
		}
	}
}

// rankTrace assembles this rank's complete trace contribution — buckets
// plus drained message spans — stamped with its clock relation to rank 0
// (zero for in-process clusters, which share one clock).
func (r *rank) rankTrace(offsetNs, rttNs int64) perf.RankTrace {
	rt := perf.RankTrace{
		Rank: r.id, Ranks: r.cfg.Ranks,
		OffsetNs: offsetNs, RTTNs: rttNs,
		Steps: r.buckets,
	}
	if r.tracer != nil {
		r.tracer.Drain(&rt)
	}
	return rt
}

// step advances one leapfrog iteration with the selected exchange
// schedule. The constraint minima are left in d.Dtcourant / d.Dthydro for
// the caller's global reduction.
func (r *rank) step() error {
	if r.async {
		return r.stepOverlapped()
	}
	return r.stepSynchronous()
}

// newCommCluster is a test seam for building a fabric of the right size.
func newCommCluster(n int) *comm.Cluster { return comm.NewCluster(n) }
