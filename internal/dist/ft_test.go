package dist

import (
	"testing"
	"time"

	"lulesh/internal/comm"
)

// ftBase is the shared problem for the fault-tolerance tests: small enough
// to run in milliseconds, two communication faces, several regions.
func ftBase() Config {
	return Config{
		Nx: 4, Ny: 4, NzPerRank: 4, Ranks: 2,
		NumReg: 3, Balance: 1, Cost: 1, MaxIterations: 20,
	}
}

// TestFaultyRunBitwiseIdentical: with messages dropped, delayed, duplicated
// and reordered, every fault must be recovered by the retry protocol before
// the physics reads the data — so the result is bitwise identical to an
// unfaulted run.
func TestFaultyRunBitwiseIdentical(t *testing.T) {
	ref, err := Run(ftBase())
	if err != nil {
		t.Fatal(err)
	}

	faulty := ftBase()
	faulty.Faults = &comm.FaultPlan{
		Seed: 12345,
		Drop: 0.08, Delay: 0.05, DelayBy: 200 * time.Microsecond,
		Duplicate: 0.05, Reorder: 0.05,
	}
	faulty.ExchangeDeadline = 10 * time.Millisecond
	faulty.RetryLimit = 6
	got, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}

	if got.OriginEnergy != ref.OriginEnergy {
		t.Fatalf("origin energy: faulted %v vs clean %v", got.OriginEnergy, ref.OriginEnergy)
	}
	if got.TotalEnergy != ref.TotalEnergy {
		t.Fatalf("total energy: faulted %v vs clean %v", got.TotalEnergy, ref.TotalEnergy)
	}
	if got.FinalTime != ref.FinalTime || got.Iterations != ref.Iterations {
		t.Fatal("time stepping diverged under faults")
	}
	if got.Fabric.Injected.Dropped == 0 {
		t.Fatal("fault plan committed no drops — the test exercised nothing")
	}
	if got.Fabric.Retries == 0 {
		t.Fatal("drops happened but the recovery protocol issued no retries")
	}
	if got.Recoveries != 0 {
		t.Fatalf("message faults should not need a restart, took %d", got.Recoveries)
	}
}

// TestCrashRecoveryFromCheckpoint: rank 1 dies at step 17; the cluster has
// coordinated checkpoints every 5 cycles, so the driver restarts from epoch
// 15 and the final state matches the unfaulted run bit for bit.
func TestCrashRecoveryFromCheckpoint(t *testing.T) {
	ref, err := Run(ftBase())
	if err != nil {
		t.Fatal(err)
	}

	mon := &Monitor{}
	crash := ftBase()
	crash.Faults = &comm.FaultPlan{Seed: 7, CrashRank: 1, CrashStep: 17}
	crash.ExchangeDeadline = 10 * time.Millisecond
	crash.RetryLimit = 3
	crash.CheckpointEvery = 5
	crash.MaxRestarts = 2
	crash.Monitor = mon
	got, err := Run(crash)
	if err != nil {
		t.Fatal(err)
	}

	if got.Recoveries != 1 {
		t.Fatalf("expected exactly 1 recovery, got %d", got.Recoveries)
	}
	if got.Checkpoints == 0 {
		t.Fatal("no coordinated checkpoints committed")
	}
	if got.OriginEnergy != ref.OriginEnergy || got.TotalEnergy != ref.TotalEnergy {
		t.Fatalf("restarted run diverged: %v/%v vs %v/%v",
			got.OriginEnergy, got.TotalEnergy, ref.OriginEnergy, ref.TotalEnergy)
	}
	if got.FinalTime != ref.FinalTime || got.Iterations != ref.Iterations {
		t.Fatal("restarted run's time stepping diverged")
	}

	g := mon.Gauges()
	if g["comm recoveries total"] != 1 {
		t.Fatalf("monitor recoveries gauge = %v", g["comm recoveries total"])
	}
	if g["comm checkpoints total"] == 0 {
		t.Fatal("monitor checkpoint gauge not bumped")
	}
	if g["comm restores total"] != 1 {
		t.Fatalf("monitor restores gauge = %v", g["comm restores total"])
	}
}

// TestCrashRestartFromScratch: a crash before any checkpoint committed
// restarts the whole run from its initial state — slower, but still exact.
func TestCrashRestartFromScratch(t *testing.T) {
	ref, err := Run(ftBase())
	if err != nil {
		t.Fatal(err)
	}

	crash := ftBase()
	crash.Faults = &comm.FaultPlan{Seed: 7, CrashRank: 0, CrashStep: 5}
	crash.ExchangeDeadline = 10 * time.Millisecond
	crash.RetryLimit = 3
	crash.MaxRestarts = 1
	got, err := Run(crash)
	if err != nil {
		t.Fatal(err)
	}
	if got.Recoveries != 1 {
		t.Fatalf("expected 1 recovery, got %d", got.Recoveries)
	}
	if got.OriginEnergy != ref.OriginEnergy || got.TotalEnergy != ref.TotalEnergy {
		t.Fatal("from-scratch restart diverged from the unfaulted run")
	}
}

// TestCrashWithoutRestartBudgetFails: MaxRestarts 0 means a crash is fatal
// and surfaces as the comm-layer error instead of hanging.
func TestCrashWithoutRestartBudgetFails(t *testing.T) {
	crash := ftBase()
	crash.Faults = &comm.FaultPlan{Seed: 7, CrashRank: 1, CrashStep: 5}
	crash.ExchangeDeadline = 5 * time.Millisecond
	crash.RetryLimit = 2
	if _, err := Run(crash); err == nil {
		t.Fatal("crash with no restart budget should fail the run")
	} else if !recoverable(err) {
		t.Fatalf("failure should carry the recoverable comm error, got: %v", err)
	}
}

// TestCheckpointingDoesNotPerturb: taking coordinated checkpoints on a
// reliable fabric must not change any result value.
func TestCheckpointingDoesNotPerturb(t *testing.T) {
	ref, err := Run(ftBase())
	if err != nil {
		t.Fatal(err)
	}
	ck := ftBase()
	ck.CheckpointEvery = 3
	got, err := Run(ck)
	if err != nil {
		t.Fatal(err)
	}
	if got.OriginEnergy != ref.OriginEnergy || got.TotalEnergy != ref.TotalEnergy ||
		got.FinalTime != ref.FinalTime {
		t.Fatal("checkpointing changed the physics")
	}
	if got.Checkpoints == 0 {
		t.Fatal("no checkpoints committed")
	}
}

// TestPhysicsErrorNotRetried: a deterministic physics failure must abort
// every rank (via the dt reduction) and must NOT be classified recoverable —
// a restart would simply hit it again.
func TestPhysicsErrorNotRetried(t *testing.T) {
	cfg := ftBase()
	cfg.ExchangeDeadline = 20 * time.Millisecond
	cfg.RetryLimit = 3
	cluster := comm.NewClusterOptions(cfg.Ranks, comm.Options{
		Transport:        comm.Reliable{},
		ExchangeDeadline: cfg.ExchangeDeadline,
		RetryLimit:       cfg.RetryLimit,
	})
	ranks := make([]*rank, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		ranks[r] = newRankWith(cfg, cluster, r, nil)
	}
	ranks[1].d.V[0] = -1 // poison: detected by the element kernels
	done := make(chan error, cfg.Ranks)
	for _, rk := range ranks {
		rk := rk
		go func() { done <- rk.run(cfg.MaxIterations) }()
	}
	var sawErr bool
	for range ranks {
		if err := <-done; err != nil {
			sawErr = true
			if recoverable(err) {
				t.Fatalf("physics failure misclassified as recoverable: %v", err)
			}
		}
	}
	if !sawErr {
		t.Fatal("poisoned run reported no error")
	}
}

// TestAsyncScheduleUnderFaults: the overlapped schedule runs the same
// recovery protocol; drops must not break it or change its results.
func TestAsyncScheduleUnderFaults(t *testing.T) {
	base := ftBase()
	base.Async = true
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.Faults = &comm.FaultPlan{Seed: 9, Drop: 0.06, Duplicate: 0.04}
	faulty.ExchangeDeadline = 10 * time.Millisecond
	faulty.RetryLimit = 6
	got, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if got.OriginEnergy != ref.OriginEnergy || got.TotalEnergy != ref.TotalEnergy {
		t.Fatal("async schedule diverged under faults")
	}
}
