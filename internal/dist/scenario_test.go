package dist

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"lulesh/internal/checkpoint"
	"lulesh/internal/core"
	"lulesh/internal/domain"
)

// TestDistPistonMatchesMonolithic: the piston scenario decomposes across
// ranks like sedov does — a 2-rank stack reproduces the monolithic tall
// box to tight tolerance (the shared-plane force summation regroups, so
// not bitwise).
func TestDistPistonMatchesMonolithic(t *testing.T) {
	const s = 4
	const ranks = 2
	const steps = 12

	res, err := Run(Config{
		Nx: s, Ny: s, NzPerRank: s, Ranks: ranks,
		NumReg: 1, Balance: 1, Cost: 1, MaxIterations: steps,
		Scenario: domain.ScenarioSpec{Name: domain.ScenarioPiston},
	})
	if err != nil {
		t.Fatal(err)
	}

	d, err := domain.BuildScenario(
		domain.ScenarioSpec{Name: domain.ScenarioPiston},
		domain.BoxConfig{Nx: s, Ny: s, Nz: ranks * s, NumReg: 1, Balance: 1, Cost: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewBackendSerial(d)
	defer b.Close()
	ref, err := core.Run(d, b, core.RunConfig{MaxIterations: steps})
	if err != nil {
		t.Fatal(err)
	}

	refTotal := 0.0
	for e := 0; e < d.NumElem(); e++ {
		refTotal += d.E[e] * d.Volo[e]
	}
	if refTotal <= 0 {
		t.Fatalf("piston reference deposited no energy after %d steps", steps)
	}
	relDiff := func(a, c float64) float64 {
		den := math.Max(math.Abs(a), math.Abs(c))
		if den < 1e-300 {
			return 0
		}
		return math.Abs(a-c) / den
	}
	if diff := relDiff(res.TotalEnergy, refTotal); diff > 1e-9 {
		t.Fatalf("total energy differs by %v: %v vs %v", diff, res.TotalEnergy, refTotal)
	}
	if res.Iterations != ref.Iterations || relDiff(res.FinalTime, ref.FinalTime) > 1e-12 {
		t.Fatalf("time stepping diverged: %v/%d vs %v/%d",
			res.FinalTime, res.Iterations, ref.FinalTime, ref.Iterations)
	}
}

// TestDistMultimatRuns: the multimat scenario's per-rank region sets and
// extreme cost model survive the distributed driver.
func TestDistMultimatRuns(t *testing.T) {
	const s = 4
	res, err := Run(Config{
		Nx: s, Ny: s, NzPerRank: s, Ranks: 2,
		NumReg: 1, Balance: 1, Cost: 1, MaxIterations: 10,
		Scenario: domain.ScenarioSpec{Name: domain.ScenarioMultimat,
			Options: map[string]string{"regions": "16"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergy <= 0 {
		t.Fatalf("total energy %v", res.TotalEnergy)
	}
	doms := Domains(Config{
		Nx: s, Ny: s, NzPerRank: s, Ranks: 2,
		NumReg: 1, Balance: 1, Cost: 1,
		Scenario: domain.ScenarioSpec{Name: domain.ScenarioMultimat,
			Options: map[string]string{"regions": "16"}},
	})
	for r, d := range doms {
		if d.Regions.NumReg != 16 {
			t.Fatalf("rank %d: regions = %d, want 16", r, d.Regions.NumReg)
		}
		if d.Scenario.Name != domain.ScenarioMultimat {
			t.Fatalf("rank %d: scenario tag %q", r, d.Scenario.Name)
		}
	}
}

// TestDistUnknownScenarioRejected: a bad spec fails fast, before any rank
// or fabric is built.
func TestDistUnknownScenarioRejected(t *testing.T) {
	_, err := Run(Config{
		Nx: 2, Ny: 2, NzPerRank: 2, Ranks: 1, NumReg: 1, MaxIterations: 1,
		Scenario: domain.ScenarioSpec{Name: "nope"},
	})
	if err == nil {
		t.Fatal("unknown scenario must be rejected")
	}
}

// TestDistRestoreScenarioMismatchRejected: a committed checkpoint epoch
// written by one scenario must not restart a run configured for another.
func TestDistRestoreScenarioMismatchRejected(t *testing.T) {
	cfg := Config{
		Nx: 4, Ny: 4, NzPerRank: 4, Ranks: 1,
		NumReg: 1, Balance: 1, Cost: 1, MaxIterations: 5,
		Scenario: domain.ScenarioSpec{Name: domain.ScenarioPiston},
	}

	// File a committed sedov epoch into the store, as if a previous sedov
	// run had checkpointed here.
	bc := domain.BoxConfig{Nx: 4, Ny: 4, Nz: 4, NumReg: 1, Balance: 1, Cost: 1,
		DepositEnergy: true, Spacing: 1.125 / 4}
	d, err := domain.BuildScenario(domain.ScenarioSpec{}, bc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := checkpoint.SaveRank(&buf, d, bc,
		checkpoint.RankMeta{Rank: 0, Ranks: 1, Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	store := newCkptStore(1)
	if err := store.put(3, 0, buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	_, _, errs := runAttempt(cfg, nil, store)
	if errs[0] == nil || !errors.Is(errs[0], checkpoint.ErrScenarioMismatch) {
		t.Fatalf("want ErrScenarioMismatch, got %v", errs[0])
	}
}
