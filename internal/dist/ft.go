package dist

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"lulesh/internal/checkpoint"
	"lulesh/internal/comm"
)

// Fault-tolerant execution: coordinated checkpoints, failure detection by
// exchange deadline, and restart-from-last-checkpoint. See DISTRIBUTED.md
// for the protocol walk-through.

// errPeerAbort marks a run aborted because a peer reported a physics
// failure through the dt reduction. It is not recoverable: the physics is
// deterministic, so a restart would fail at the same cycle.
var errPeerAbort = errors.New("dist: aborted by failing peer")

// recoverable reports whether a rank error is a communication-layer
// failure that checkpoint/restart can repair (an injected crash, or a
// peer declared dead by exchange deadline) rather than a deterministic
// physics error that would simply recur.
func recoverable(err error) bool {
	return errors.Is(err, comm.ErrRankCrashed) || errors.Is(err, comm.ErrExchangeTimeout)
}

// Recoverable is the exported classification for multi-process drivers:
// a worker whose RunWire fails with a recoverable error should exit with
// wire.ExitRecoverable so the launcher relaunches the fabric from the
// last committed checkpoint; any other failure is fatal.
func Recoverable(err error) bool { return recoverable(err) }

// ckptSink is where a rank files its coordinated checkpoint blobs: the
// in-memory ckptStore for the in-process cluster, the on-disk fileStore
// for a multi-process wire run.
type ckptSink interface {
	put(epoch, rank int, blob []byte) error
}

// ckptStore collects one coordinated checkpoint per epoch: each rank files
// its blob after the epoch's dt reduction, and the epoch commits only when
// every rank has filed — a half-written epoch (a rank crashed mid-
// checkpoint) is never restored from.
type ckptStore struct {
	mu        sync.Mutex
	ranks     int
	epoch     int      // last committed epoch (-1 = none)
	blobs     [][]byte // committed blobs, one per rank
	pending   map[int][][]byte
	committed int64 // epochs committed (monotonic, for Result/metrics)
}

func newCkptStore(ranks int) *ckptStore {
	return &ckptStore{ranks: ranks, epoch: -1, pending: make(map[int][][]byte)}
}

// put files one rank's blob for an epoch, committing the epoch once all
// ranks have filed.
func (s *ckptStore) put(epoch, rank int, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot := s.pending[epoch]
	if slot == nil {
		slot = make([][]byte, s.ranks)
		s.pending[epoch] = slot
	}
	slot[rank] = blob
	for _, b := range slot {
		if b == nil {
			return nil
		}
	}
	delete(s.pending, epoch)
	if epoch > s.epoch {
		s.epoch, s.blobs = epoch, slot
		s.committed++
	}
	return nil
}

// latest returns the last committed epoch's blobs.
func (s *ckptStore) latest() (blobs [][]byte, epoch int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blobs, s.epoch, s.epoch >= 0
}

// drop discards uncommitted epochs (stale partials from a failed attempt).
func (s *ckptStore) drop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = make(map[int][][]byte)
}

// maybeCheckpoint files this rank's coordinated checkpoint when the cycle
// lands on the checkpoint period. Called after the dt reduction, so every
// rank saves the identical globally-reduced time-stepping state.
func (r *rank) maybeCheckpoint() error {
	if r.store == nil || r.cfg.CheckpointEvery <= 0 || r.d.Cycle%r.cfg.CheckpointEvery != 0 {
		return nil
	}
	var buf bytes.Buffer
	meta := checkpoint.RankMeta{Rank: r.id, Ranks: r.cfg.Ranks, Epoch: r.d.Cycle}
	if err := checkpoint.SaveRank(&buf, r.d, r.boxCfg, meta); err != nil {
		return fmt.Errorf("checkpoint at cycle %d: %w", r.d.Cycle, err)
	}
	if err := r.store.put(r.d.Cycle, r.id, buf.Bytes()); err != nil {
		return fmt.Errorf("checkpoint at cycle %d: %w", r.d.Cycle, err)
	}
	if r.cfg.Monitor != nil {
		r.cfg.Monitor.checkpoints.Add(1)
	}
	return nil
}

// Monitor receives live references and counters as a fault-tolerant run
// constructs them, for export on the -metrics-addr endpoint: pass one in
// Config.Monitor and serve Gauges() as the perf server's extra gauges.
type Monitor struct {
	mu      sync.Mutex
	cluster *comm.Cluster
	extra   []func() map[string]float64

	recoveries  atomic.Int64
	checkpoints atomic.Int64
	restores    atomic.Int64
}

// observe points the monitor at the attempt's live fabric.
func (m *Monitor) observe(c *comm.Cluster) {
	m.mu.Lock()
	m.cluster = c
	m.mu.Unlock()
}

// AddSource registers an extra gauge source merged into Gauges — the
// wire fabric registers its network counters (bytes, frames, queue
// depth) here so a multi-process run's metrics endpoint carries the
// network phase alongside the comm-layer counters.
func (m *Monitor) AddSource(g func() map[string]float64) {
	m.mu.Lock()
	m.extra = append(m.extra, g)
	m.mu.Unlock()
}

// Gauges snapshots the fault-tolerance counters in the perf server's
// extra-gauge format: comm-layer retry/timeout/resend activity, injected
// faults, and the driver's checkpoint/recovery progress.
func (m *Monitor) Gauges() map[string]float64 {
	g := map[string]float64{
		"comm recoveries total":  float64(m.recoveries.Load()),
		"comm checkpoints total": float64(m.checkpoints.Load()),
		"comm restores total":    float64(m.restores.Load()),
	}
	m.mu.Lock()
	c := m.cluster
	extra := m.extra
	m.mu.Unlock()
	for _, src := range extra {
		for k, v := range src() {
			g[k] = v
		}
	}
	if c != nil {
		fs := c.FabricStats()
		g["comm retries total"] = float64(fs.Retries)
		g["comm timeouts total"] = float64(fs.Timeouts)
		g["comm resends served total"] = float64(fs.ResendsServed)
		g["comm duplicates dropped total"] = float64(fs.DuplicatesDropped)
		g["comm overflow dropped total"] = float64(fs.OverflowDropped)
		g["comm crashes total"] = float64(fs.Crashes)
		g["comm faults dropped total"] = float64(fs.Injected.Dropped)
		g["comm faults delayed total"] = float64(fs.Injected.Delayed)
		g["comm faults duplicated total"] = float64(fs.Injected.Duplicated)
		g["comm faults reordered total"] = float64(fs.Injected.Reordered)
	}
	return g
}
